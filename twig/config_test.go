package twig_test

import (
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/twig"
)

func svcs() []twig.ServiceConfig {
	return []twig.ServiceConfig{{Name: "a", QoSTargetMs: 5, MaxLoadRPS: 1000}}
}

func TestQuickConfigShrinksPaperConfig(t *testing.T) {
	q := twig.QuickConfig(svcs(), 18, 100)
	p := twig.PaperConfig(svcs(), 18, 100)
	if q.Agent.Spec.SharedHidden[0] >= p.Agent.Spec.SharedHidden[0] {
		t.Fatal("quick config must use a smaller network")
	}
	if q.Agent.Epsilon.EndStep >= p.Agent.Epsilon.EndStep &&
		p.Agent.Epsilon.EndStep != 0 {
		t.Fatal("quick config must anneal faster")
	}
	if p.Agent.Spec.SharedHidden[0] != 512 || p.Agent.Spec.BranchHidden != 128 || p.Agent.Spec.Dropout != 0.5 {
		t.Fatalf("paper config deviates from Sec. IV: %+v", p.Agent.Spec)
	}
	// Both must construct working managers.
	cores := make([]int, 18)
	for i := range cores {
		cores[i] = i
	}
	if twig.NewManager(q, cores) == nil || twig.NewManager(p, cores) == nil {
		t.Fatal("constructors")
	}
}

func TestRewardConfigExposed(t *testing.T) {
	cfg := twig.QuickConfig(svcs(), 18, 100)
	if cfg.Reward.Theta != 0.5 || cfg.Reward.Phi != 3 || cfg.Reward.Floor != -100 {
		t.Fatalf("reward defaults %+v", cfg.Reward)
	}
}

func TestPowerModelRoundtripThroughFacade(t *testing.T) {
	samples := make([]twig.PowerSample, 0, 40)
	for load := 0.2; load <= 0.8; load += 0.2 {
		for c := 2; c <= 18; c += 4 {
			for f := 1.2; f <= 2.0; f += 0.4 {
				samples = append(samples, twig.PowerSample{
					LoadFrac: load, Cores: c, FreqGHz: f,
					DynamicW: 10*load + 0.9*float64(c) + 6*f,
				})
			}
		}
	}
	m, err := twig.FitPowerModel(samples, 25, newRand())
	if err != nil {
		t.Fatal(err)
	}
	if m.Estimate(0.5, 8, 1.6) <= 0 {
		t.Fatal("estimate")
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
