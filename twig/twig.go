// Package twig is the public API of the Twig reproduction: a
// quality-of-service-aware task manager for colocated latency-critical
// services that learns core-count and DVFS assignments with a
// multi-agent branching dueling Q-network driven by hardware performance
// counters (Nishtala et al., HPCA 2020).
//
// The package re-exports the manager (Twig-S for a single service,
// Twig-C for colocated services), the baselines it is evaluated against,
// and the simulated server substrate that stands in for the paper's
// dual-socket Xeon testbed. A minimal control loop looks like:
//
//	srv := twig.NewServer(twig.DefaultServerConfig(), specs)
//	mgr := twig.NewTwigS(svcCfg, srv.ManagedCores(), srv.MaxPowerW())
//	obs := twig.InitialObservation(srv)
//	for t := 0; t < seconds; t++ {
//	    asg := mgr.Decide(obs)
//	    res := srv.MustStep(asg, loads) // or Step for a validated error
//	    obs = twig.ObservationFrom(srv, res)
//	}
//
// See examples/ for runnable programs and DESIGN.md for the full system
// inventory.
package twig

import (
	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Core manager types (Sec. III of the paper).
type (
	// Manager is the Twig task manager: system monitor, multi-agent BDQ
	// learning agent, and mapper module behind one Decide call per
	// monitoring interval.
	Manager = core.Manager
	// Config configures a Manager.
	Config = core.Config
	// ServiceConfig describes one managed service (QoS target, profiled
	// maximum load, fitted power model).
	ServiceConfig = core.ServiceConfig
	// RewardConfig holds the Eq. 1 parameters (θ, φ, ϕ).
	RewardConfig = core.RewardConfig
	// PowerModel is the per-service Eq. 2 power model.
	PowerModel = core.PowerModel
	// PowerSample is one power-profiling measurement.
	PowerSample = core.PowerSample
	// Request is a per-service (cores, DVFS) resource request.
	Request = core.Request
	// Mapper assigns requests to concrete cores with locality ordering
	// and resource arbitration.
	Mapper = core.Mapper
	// Monitor smooths per-service PMC vectors over η intervals.
	Monitor = core.Monitor
)

// Controller-side types shared by Twig and the baselines.
type (
	// Controller is the interface every task manager implements.
	Controller = ctrl.Controller
	// Observation is the per-interval system view a Controller receives.
	Observation = ctrl.Observation
	// ServiceObs is one service's slice of an Observation.
	ServiceObs = ctrl.ServiceObs
	// Guard wraps any Controller with observation sanitising, panic
	// containment, action validation and a QoS circuit breaker.
	Guard = ctrl.Guard
	// GuardConfig tunes a Guard; GuardHealth counts its interventions.
	GuardConfig = ctrl.GuardConfig
	GuardHealth = ctrl.GuardHealth
)

// Fault-injection types for robustness studies: a FaultScenario armed in
// a ServerConfig yields a deterministic, seed-reproducible schedule of
// sensor, actuator, core and service failures (see DESIGN.md, "Fault
// model and degraded-mode operation").
type (
	// FaultScenario is a declarative set of fault rates and crash cadence.
	FaultScenario = faults.Scenario
	// FaultEvent is one scheduled fault occurrence.
	FaultEvent = faults.Event
)

// NewGuard wraps a controller in the resilient harness.
func NewGuard(inner Controller, cfg GuardConfig) *Guard { return ctrl.NewGuard(inner, cfg) }

// DefaultGuardConfig returns the recommended guard settings for a
// managed core set.
func DefaultGuardConfig(managed []int) GuardConfig { return ctrl.DefaultGuardConfig(managed) }

// FaultScenarioNames lists the built-in named scenarios ("none",
// "sensor", "actuator", "crash", "flashcrowd", "hostile").
func FaultScenarioNames() []string { return faults.Names() }

// NamedFaultScenario returns a built-in scenario by name.
func NamedFaultScenario(name string) (FaultScenario, error) { return faults.Named(name) }

// Simulated-platform types (the substrate substituting the paper's
// testbed; see DESIGN.md §2).
type (
	// Server is the simulated dual-socket node.
	Server = sim.Server
	// ServerConfig assembles a simulated server.
	ServerConfig = sim.Config
	// ServiceSpec attaches a QoS target and seed to a service profile.
	ServiceSpec = sim.ServiceSpec
	// Assignment is a full mapping decision for one interval.
	Assignment = sim.Assignment
	// Allocation is one service's cores + DVFS for one interval.
	Allocation = sim.Allocation
	// StepResult is the outcome of one simulated interval.
	StepResult = sim.StepResult
	// Profile is a service's static characterisation.
	Profile = service.Profile
	// LoadPattern yields offered load over time.
	LoadPattern = loadgen.Pattern
)

// DVFS constants of the modelled platform.
const (
	MinFreqGHz = platform.MinFreqGHz
	MaxFreqGHz = platform.MaxFreqGHz
)

// NewServer builds a simulated server hosting the given services.
func NewServer(cfg ServerConfig, specs []ServiceSpec) *Server {
	return sim.NewServer(cfg, specs)
}

// DefaultServerConfig returns the paper's evaluation platform: two
// 18-core sockets, 1.2–2.0 GHz DVFS, ~68 GB/s memory bandwidth and a
// 45 MB LLC per socket.
func DefaultServerConfig() ServerConfig { return sim.DefaultConfig() }

// LookupProfile returns a built-in Tailbench-style service profile
// ("masstree", "xapian", "moses", "img-dnn", "memcached", "web-search").
func LookupProfile(name string) (Profile, error) { return service.Lookup(name) }

// TailbenchServices lists the four Table II services.
func TailbenchServices() []string { return service.TailbenchNames() }

// CalibrateQoSTarget measures a service's p99 latency at maximum load on
// a full socket at the highest DVFS setting — the Table II methodology.
func CalibrateQoSTarget(p Profile, cfg ServerConfig, seconds int, seed int64) float64 {
	return sim.CalibrateQoSTarget(p, cfg, seconds, seed)
}

// NewTwigS creates a Twig-S manager for a single latency-critical
// service with the paper's hyper-parameters.
func NewTwigS(svc ServiceConfig, managedCores []int, maxPowerW float64) *Manager {
	return NewManager(core.DefaultConfig([]ServiceConfig{svc}, len(managedCores), maxPowerW), managedCores)
}

// NewTwigC creates a Twig-C manager coordinating several colocated
// services with the paper's hyper-parameters.
func NewTwigC(svcs []ServiceConfig, managedCores []int, maxPowerW float64) *Manager {
	return NewManager(core.DefaultConfig(svcs, len(managedCores), maxPowerW), managedCores)
}

// NewManager creates a manager from an explicit Config, for callers that
// tune hyper-parameters.
func NewManager(cfg Config, managedCores []int) *Manager {
	return core.NewManager(cfg, managedCores)
}

// QuickConfig returns a scaled-down manager configuration (smaller
// network, ε annealed over ~3800 steps instead of 25 000, several
// gradient updates per interval) that learns in minutes of simulated
// time. PaperConfig gives Sec. IV's exact hyper-parameters.
func QuickConfig(svcs []ServiceConfig, numCores int, maxPowerW float64) Config {
	cfg := core.DefaultConfig(svcs, numCores, maxPowerW)
	cfg.Agent.Spec.SharedHidden = []int{64, 48}
	cfg.Agent.Spec.BranchHidden = 32
	cfg.Agent.Gamma = 0.9
	cfg.Agent.TrainPerStep = 3
	cfg.Agent.BatchSize = 32
	cfg.Agent.TargetSync = 100
	cfg.Agent.PERAnnealSteps = 5000
	cfg.Agent.Epsilon = bdq.EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.01, MidStep: 2000, EndStep: 3800}
	return cfg
}

// PaperConfig returns the manager configuration with the paper's exact
// hyper-parameters (Sec. IV): 512/256 shared units, 128 per branch,
// dropout 0.5, Adam 0.0025, minibatch 64, γ 0.99, target sync 150, PER
// 10⁶ with α 0.6 / β 0.4→1, ε 1→0.1@10 000→0.01@25 000.
func PaperConfig(svcs []ServiceConfig, numCores int, maxPowerW float64) Config {
	cfg := core.DefaultConfig(svcs, numCores, maxPowerW)
	cfg.Agent.Spec.SharedHidden = []int{512, 256}
	cfg.Agent.Spec.BranchHidden = 128
	cfg.Agent.Spec.Dropout = 0.5
	return cfg
}

// FitPowerModel fits the Eq. 2 per-service power model to profiling
// samples (random grid search over ridge strength, 5-fold CV).
var FitPowerModel = core.FitPowerModel

// ProfilePower runs the Sec. IV power-profiling campaign on a simulated
// server: three load levels, alternate core counts and DVFS states with
// unused cores hot-unplugged.
var ProfilePower = core.ProfilePower

// Load patterns for driving experiments.
type (
	// FixedLoad is a constant request rate.
	FixedLoad = loadgen.Fixed
	// StepWiseLoad is the paper's varying-load ladder (Figs. 10–11).
	StepWiseLoad = loadgen.StepWise
	// DiurnalLoad is a day/night sinusoid.
	DiurnalLoad = loadgen.Diurnal
)

// NewStepWiseLoad builds the paper's step-wise monotonic load generator.
func NewStepWiseLoad(minRPS, maxRPS, changeFactor float64, periodS int) *StepWiseLoad {
	return loadgen.NewStepWise(minRPS, maxRPS, changeFactor, periodS)
}

// ObservationTracker converts step results into controller observations
// while tracking per-service queue depth across intervals, so
// ServiceObs.QueueGrowing reflects an actual increase. Control loops that
// run for more than one interval should use a tracker rather than the
// stateless ObservationFrom.
type ObservationTracker = ctrl.ObservationTracker

// ObservationFrom converts a simulation step result into the controller
// observation for the next interval. It is stateless, so QueueGrowing is
// set whenever the queue is non-empty; loops should prefer an
// ObservationTracker, which compares against the previous interval
// exactly as the experiment runners do.
func ObservationFrom(srv *Server, res StepResult) Observation {
	return ctrl.ObservationFromStep(srv, res)
}

// InitialObservation bootstraps a control loop before any measurement.
func InitialObservation(srv *Server) Observation {
	return ctrl.InitialObservation(srv)
}
