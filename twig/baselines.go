package twig

import "github.com/twig-sched/twig/internal/baselines"

// Baseline task managers the paper evaluates Twig against (Sec. V-A).
type (
	// Static pins every core at the highest DVFS setting.
	Static = baselines.Static
	// Hipster is the hybrid heuristic + tabular-Q manager (HPCA'17).
	Hipster = baselines.Hipster
	// HipsterConfig carries Hipster's published parameters.
	HipsterConfig = baselines.HipsterConfig
	// Heracles is the multi-level feedback controller (ISCA'15).
	Heracles = baselines.Heracles
	// HeraclesConfig carries Heracles' controller thresholds.
	HeraclesConfig = baselines.HeraclesConfig
	// Parties is the one-resource-at-a-time controller (ASPLOS'19).
	Parties = baselines.Parties
	// PartiesConfig carries PARTIES' controller parameters.
	PartiesConfig = baselines.PartiesConfig
)

// NewStatic creates the static mapping over the managed cores.
func NewStatic(managedCores []int, services int) *Static {
	return baselines.NewStatic(managedCores, services)
}

// NewHipster creates a Hipster controller (single service).
func NewHipster(cfg HipsterConfig, managedCores []int) *Hipster {
	return baselines.NewHipster(cfg, managedCores)
}

// DefaultHipsterConfig returns Sec. V-A's Hipster settings.
func DefaultHipsterConfig() HipsterConfig { return baselines.DefaultHipsterConfig() }

// NewHeracles creates a Heracles controller (single service).
func NewHeracles(cfg HeraclesConfig, managedCores []int) *Heracles {
	return baselines.NewHeracles(cfg, managedCores)
}

// DefaultHeraclesConfig returns Sec. V-A's Heracles thresholds for the
// given socket TDP.
func DefaultHeraclesConfig(tdpW float64) HeraclesConfig {
	return baselines.DefaultHeraclesConfig(tdpW)
}

// NewParties creates a PARTIES controller for k colocated services.
func NewParties(cfg PartiesConfig, managedCores []int, k int) *Parties {
	return baselines.NewParties(cfg, managedCores, k)
}

// DefaultPartiesConfig returns Sec. V-A's PARTIES parameters.
func DefaultPartiesConfig() PartiesConfig { return baselines.DefaultPartiesConfig() }
