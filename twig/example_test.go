package twig_test

import (
	"fmt"

	"github.com/twig-sched/twig/twig"
)

// Example shows the complete Twig control loop on the simulated server:
// calibrate a QoS target, build a manager, and run observe→decide→act
// once per monitoring interval.
func Example() {
	prof, _ := twig.LookupProfile("masstree")
	cfg := twig.DefaultServerConfig()
	target := twig.CalibrateQoSTarget(prof, cfg, 30, 1)

	srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: prof, QoSTargetMs: target, Seed: 1}})
	svc := twig.ServiceConfig{Name: prof.Name, QoSTargetMs: target, MaxLoadRPS: prof.MaxLoadRPS}
	mgr := twig.NewManager(
		twig.QuickConfig([]twig.ServiceConfig{svc}, len(srv.ManagedCores()), srv.MaxPowerW()),
		srv.ManagedCores())

	obs := twig.InitialObservation(srv)
	for t := 0; t < 25; t++ {
		asg := mgr.Decide(obs)
		res := srv.MustStep(asg, []float64{0.3 * prof.MaxLoadRPS})
		obs = twig.ObservationFrom(srv, res)
	}
	fmt.Println(srv.Clock(), "intervals managed by", mgr.Name())
	// Output: 25 intervals managed by twig-s
}
