package twig_test

import (
	"testing"

	"github.com/twig-sched/twig/twig"
)

// TestPublicAPIEndToEnd drives the documented control loop: build a
// server, a Twig-S manager, and step them together.
func TestPublicAPIEndToEnd(t *testing.T) {
	prof, err := twig.LookupProfile("masstree")
	if err != nil {
		t.Fatal(err)
	}
	cfg := twig.DefaultServerConfig()
	target := twig.CalibrateQoSTarget(prof, cfg, 30, 1)
	if target <= 0 {
		t.Fatalf("target = %v", target)
	}
	srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: prof, QoSTargetMs: target, Seed: 1}})
	mgr := twig.NewTwigS(twig.ServiceConfig{
		Name:        prof.Name,
		QoSTargetMs: target,
		MaxLoadRPS:  prof.MaxLoadRPS,
	}, srv.ManagedCores(), srv.MaxPowerW())

	obs := twig.InitialObservation(srv)
	var pattern twig.LoadPattern = twig.FixedLoad(0.4 * prof.MaxLoadRPS)
	for ts := 0; ts < 50; ts++ {
		asg := mgr.Decide(obs)
		res := srv.MustStep(asg, []float64{pattern.RPS(ts)})
		obs = twig.ObservationFrom(srv, res)
	}
	if srv.Clock() != 50 {
		t.Fatalf("clock = %d", srv.Clock())
	}
	if srv.EnergyJ() <= 0 {
		t.Fatal("no energy accounted")
	}
	if mgr.Agent().ReplayLen() == 0 {
		t.Fatal("manager did not learn")
	}
}

func TestPublicAPITwigCAndBaselines(t *testing.T) {
	a, _ := twig.LookupProfile("masstree")
	b, _ := twig.LookupProfile("xapian")
	cfg := twig.DefaultServerConfig()
	srv := twig.NewServer(cfg, []twig.ServiceSpec{
		{Profile: a, QoSTargetMs: 6, Seed: 1},
		{Profile: b, QoSTargetMs: 15, Seed: 2},
	})
	mgr := twig.NewTwigC([]twig.ServiceConfig{
		{Name: a.Name, QoSTargetMs: 6, MaxLoadRPS: a.MaxLoadRPS},
		{Name: b.Name, QoSTargetMs: 15, MaxLoadRPS: b.MaxLoadRPS},
	}, srv.ManagedCores(), srv.MaxPowerW())
	if mgr.Name() != "twig-c" {
		t.Fatal("expected twig-c")
	}

	controllers := []twig.Controller{
		mgr,
		twig.NewStatic(srv.ManagedCores(), 2),
		twig.NewParties(twig.DefaultPartiesConfig(), srv.ManagedCores(), 2),
	}
	obs := twig.InitialObservation(srv)
	for _, c := range controllers {
		asg := c.Decide(obs)
		if len(asg.PerService) != 2 {
			t.Fatalf("%s produced %d allocations", c.Name(), len(asg.PerService))
		}
	}
}

func TestPublicAPISingleServiceBaselines(t *testing.T) {
	cores := make([]int, 18)
	for i := range cores {
		cores[i] = i
	}
	h := twig.NewHipster(twig.DefaultHipsterConfig(), cores)
	e := twig.NewHeracles(twig.DefaultHeraclesConfig(120), cores)
	obs := twig.Observation{Services: []twig.ServiceObs{{P99Ms: 1, QoSTargetMs: 10, MaxLoadRPS: 1000}}}
	if len(h.Decide(obs).PerService) != 1 || len(e.Decide(obs).PerService) != 1 {
		t.Fatal("single-service baselines")
	}
	if twig.MinFreqGHz != 1.2 || twig.MaxFreqGHz != 2.0 {
		t.Fatal("platform constants")
	}
	if len(twig.TailbenchServices()) != 4 {
		t.Fatal("Tailbench services")
	}
	if _, err := twig.LookupProfile("nope"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestPublicStepWiseLoad(t *testing.T) {
	s := twig.NewStepWiseLoad(100, 500, 0.2, 200)
	if s.RPS(0) != 100 {
		t.Fatal("stepwise start")
	}
	d := twig.DiurnalLoad{MinRPS: 10, MaxRPS: 20, PeriodS: 100}
	if v := d.RPS(0); v < 10 || v > 20 {
		t.Fatal("diurnal range")
	}
}

// TestPublicFaultsAndGuard drives the robustness surface end to end
// through the public API: a named fault scenario armed on the server and
// a guarded manager stepping through it.
func TestPublicFaultsAndGuard(t *testing.T) {
	prof, err := twig.LookupProfile("masstree")
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := twig.NamedFaultScenario("hostile")
	if err != nil {
		t.Fatal(err)
	}
	if len(twig.FaultScenarioNames()) < 4 {
		t.Fatalf("scenarios: %v", twig.FaultScenarioNames())
	}

	cfg := twig.DefaultServerConfig()
	cfg.Faults = &scenario
	srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: prof, QoSTargetMs: 5, Seed: 1}})
	mgr := twig.NewTwigS(twig.ServiceConfig{
		Name:        prof.Name,
		QoSTargetMs: 5,
		MaxLoadRPS:  prof.MaxLoadRPS,
	}, srv.ManagedCores(), srv.MaxPowerW())
	guarded := twig.NewGuard(mgr, twig.DefaultGuardConfig(srv.ManagedCores()))
	if guarded.Name() != mgr.Name()+"+guard" {
		t.Fatalf("name = %q", guarded.Name())
	}

	obs := twig.InitialObservation(srv)
	var faultsSeen []twig.FaultEvent
	for ts := 0; ts < 120; ts++ {
		asg := guarded.Decide(obs)
		res, err := srv.Step(asg, []float64{0.3 * prof.MaxLoadRPS})
		if err != nil {
			t.Fatalf("guarded assignment rejected at t=%d: %v", ts, err)
		}
		faultsSeen = append(faultsSeen, res.Faults...)
		obs = twig.ObservationFrom(srv, res)
	}
	if len(faultsSeen) == 0 {
		t.Fatal("hostile scenario injected nothing in 120 s")
	}
	if guarded.Health().ObsRepaired == 0 {
		t.Fatal("guard repaired nothing under a hostile scenario")
	}
}
