package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
)

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 3, 2, rng)
	x := mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := d.Forward(x, false)
	if y.Rows != 2 || y.Cols != 2 {
		t.Fatalf("Forward shape %dx%d, want 2x2", y.Rows, y.Cols)
	}
}

func TestDenseWrongInputPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(mat.New(1, 4), false)
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := mat.FromRows([][]float64{{-1, 0, 2}})
	y := r.Forward(x, true)
	want := []float64{0, 0, 2}
	for i, v := range y.Data {
		if v != want[i] {
			t.Fatalf("ReLU = %v", y.Data)
		}
	}
	g := r.Backward(mat.FromRows([][]float64{{5, 5, 5}}))
	wantG := []float64{0, 0, 5}
	for i, v := range g.Data {
		if v != wantG[i] {
			t.Fatalf("ReLU grad = %v", g.Data)
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(0.5, rng)
	x := mat.FromRows([][]float64{{1, 2, 3, 4}})
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout in eval mode must be identity")
		}
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(0.5, rng)
	const n = 20000
	x := mat.New(1, n)
	x.Fill(1)
	y := d.Forward(x, true)
	m := mat.Mean(y.Data)
	if math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", m)
	}
	// Backward must use the same mask.
	g := d.Backward(y)
	for i := range g.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 1.0")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

// TestGradientCheck verifies the analytic gradients of a
// Dense→ReLU→Dense network against central finite differences.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewSequential(
		NewDense("l1", 4, 6, rng),
		NewReLU(),
		NewDense("l2", 6, 3, rng),
	)
	x := mat.New(5, 4)
	target := mat.New(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}

	lossAt := func() float64 {
		pred := net.Forward(x, false)
		l, _ := MSE(pred, target)
		return l
	}

	net.ZeroGrad()
	pred := net.Forward(x, false)
	_, grad := MSE(pred, target)
	net.Backward(grad)

	const eps = 1e-5
	for _, p := range net.Params() {
		for i := 0; i < len(p.Value.Data); i += 7 { // sample every 7th weight
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lPlus := lossAt()
			p.Value.Data[i] = orig - eps
			lMinus := lossAt()
			p.Value.Data[i] = orig
			numeric := (lPlus - lMinus) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-6*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// TestAdamFitsLinearFunction ensures the optimiser actually minimises:
// a 1-layer net must recover y = 2x + 1.
func TestAdamFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(NewDense("lin", 1, 1, rng))
	opt := NewAdam(0.05)
	x := mat.New(32, 1)
	y := mat.New(32, 1)
	for epoch := 0; epoch < 400; epoch++ {
		for i := 0; i < 32; i++ {
			v := rng.Float64()*4 - 2
			x.Set(i, 0, v)
			y.Set(i, 0, 2*v+1)
		}
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, grad := MSE(pred, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	w := net.Params()[0].Value.At(0, 0)
	b := net.Params()[1].Value.At(0, 0)
	if math.Abs(w-2) > 0.05 || math.Abs(b-1) > 0.05 {
		t.Fatalf("fit w=%v b=%v, want 2, 1", w, b)
	}
	if opt.StepCount() != 400 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

func TestGradClipping(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Data[0] = 30
	p.Grad.Data[1] = 40 // norm 50
	clipGlobalNorm([]*Param{p}, 5)
	norm := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("clipped norm = %v, want 5", norm)
	}
	// Below the cap: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 1, 1
	clipGlobalNorm([]*Param{p}, 5)
	if p.Grad.Data[0] != 1 {
		t.Fatal("clip modified small gradient")
	}
}

func TestWeightedMSE(t *testing.T) {
	pred := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	target := mat.FromRows([][]float64{{0, 2}, {3, 2}})
	loss, grad, absErr := WeightedMSE(pred, target, []float64{1, 0.5})
	if absErr[0] != 0.5 || absErr[1] != 1 {
		t.Fatalf("absErr = %v", absErr)
	}
	// row0: d=(1,0) w=1 → ½·1 ; row1: d=(0,2) w=0.5 → ½·0.5·4=1 ; /4
	if math.Abs(loss-(0.5+1)/4) > 1e-12 {
		t.Fatalf("loss = %v", loss)
	}
	if grad.At(0, 0) != 0.25 || grad.At(1, 1) != 0.25 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestTargetNetworkSync(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	online := NewSequential(NewDense("a", 2, 3, rng), NewReLU(), NewDense("b", 3, 1, rng))
	target := NewSequential(NewDense("a", 2, 3, rng), NewReLU(), NewDense("b", 3, 1, rng))
	target.CopyValuesFrom(online)
	x := mat.FromRows([][]float64{{0.5, -0.5}})
	y1 := online.Forward(x, false)
	y2 := target.Forward(x, false)
	if math.Abs(y1.At(0, 0)-y2.At(0, 0)) > 1e-12 {
		t.Fatal("target net differs after sync")
	}
	if online.NumParams() != 2*3+3+3*1+1 {
		t.Fatalf("NumParams = %d", online.NumParams())
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(NewDense("a", 3, 4, rng), NewReLU(), NewDense("b", 4, 2, rng))
	var buf bytes.Buffer
	if err := Save(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	net2 := NewSequential(NewDense("a", 3, 4, rng), NewReLU(), NewDense("b", 4, 2, rng))
	if err := Load(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	x := mat.FromRows([][]float64{{1, 2, 3}})
	y1 := net.Forward(x, false)
	y2 := net2.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("loaded network produces different output")
		}
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(NewDense("a", 3, 4, rng))
	snap := Snapshot(net.Params())
	other := NewSequential(NewDense("a", 3, 5, rng))
	if err := Restore(other.Params(), snap); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	third := NewSequential(NewDense("zzz", 3, 4, rng))
	if err := Restore(third.Params(), snap); err == nil {
		t.Fatal("expected name mismatch error")
	}
}

func TestResetMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSequential(NewDense("a", 2, 2, rng))
	opt := NewAdam(0.01)
	net.ZeroGrad()
	pred := net.Forward(mat.New(1, 2), true)
	_, grad := MSE(pred, mat.New(1, 2))
	net.Backward(grad)
	opt.Step(net.Params())
	if net.Params()[0].m == nil {
		t.Fatal("moments not allocated")
	}
	ResetMoments(net.Params())
	if net.Params()[0].m != nil {
		t.Fatal("ResetMoments did not clear state")
	}
}
