package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
)

// TestStepAndZeroGradFlatBitIdentical trains two arena-adopted copies
// of one network in lockstep — one stepping per-param, one through the
// fused slab pass — and requires bitwise-equal values, moments and
// zeroed grads at every step, with and without global-norm clipping.
func TestStepAndZeroGradFlatBitIdentical(t *testing.T) {
	for _, maxNorm := range []float64{0, 0.25} {
		perParam := buildArenaNet(11)
		flat := buildArenaNet(11)
		arena := NewArena(ShapesOf(flat.Params()), 2)
		idP := arena.Alloc()
		arena.Adopt(idP, perParam.Params())
		idF := arena.Alloc()
		arena.Adopt(idF, flat.Params())
		value, grad, m, v := arena.SlotSlabs(idF)

		optP := NewAdam(0.01)
		optF := NewAdam(0.01)
		optP.MaxGradNorm = maxNorm
		optF.MaxGradNorm = maxNorm

		rng := rand.New(rand.NewSource(42))
		x := mat.New(4, 5)
		gout := mat.New(4, 3)
		for step := 0; step < 25; step++ {
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			for i := range gout.Data {
				gout.Data[i] = rng.NormFloat64()
			}
			for _, net := range []*Sequential{perParam, flat} {
				net.Forward(x, true)
				net.Backward(gout)
			}
			optP.StepAndZeroGrad(perParam.Params())
			optF.StepAndZeroGradFlat(flat.Params(), value, grad, m, v)
			requireParamsBitsEqual(t, "flat-vs-perparam", flat.Params(), perParam.Params())
			for i, p := range perParam.Params() {
				fp := flat.Params()[i]
				for j := range p.m.Data {
					if math.Float64bits(fp.m.Data[j]) != math.Float64bits(p.m.Data[j]) ||
						math.Float64bits(fp.v.Data[j]) != math.Float64bits(p.v.Data[j]) {
						t.Fatalf("maxNorm=%v step %d: param %q moment %d diverged", maxNorm, step, p.Name, j)
					}
				}
			}
			for i, g := range grad {
				if g != 0 {
					t.Fatalf("maxNorm=%v step %d: grad slab element %d not zeroed: %v", maxNorm, step, i, g)
				}
			}
		}
	}
}

// TestStepAndZeroGradFlatRejectsHeapParams: the fused pass requires
// arena-adopted params (slab views); a heap param must panic loudly
// rather than silently updating the wrong memory.
func TestStepAndZeroGradFlatRejectsHeapParams(t *testing.T) {
	net := buildArenaNet(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-arena params")
		}
	}()
	opt := NewAdam(0.01)
	slab := make([]float64, 128)
	opt.StepAndZeroGradFlat(net.Params(), slab, slab, slab, slab)
}
