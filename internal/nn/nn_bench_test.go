package nn

import (
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
)

// paperNet builds the paper-size shared trunk (11→512→256) for the
// micro-benchmarks behind Table III.
func paperNet(rng *rand.Rand) *Sequential {
	return NewSequential(
		NewDense("l1", 11, 512, rng),
		NewReLU(),
		NewDense("l2", 512, 256, rng),
		NewReLU(),
		NewDense("out", 256, 27, rng),
	)
}

func BenchmarkForwardBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := paperNet(rng)
	x := mat.New(64, 11)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkForwardBackwardBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := paperNet(rng)
	x := mat.New(64, 11)
	target := mat.New(64, 27)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	opt := NewAdam(0.0025)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, grad := MSE(pred, target)
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := paperNet(rng)
	opt := NewAdam(0.0025)
	params := net.Params()
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params)
	}
}
