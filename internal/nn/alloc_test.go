package nn

import (
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
)

// TestForwardBackwardZeroAlloc pins the workspace refactor: once a
// network has seen a batch size, Forward and Backward reuse the cached
// buffers and perform zero heap allocations.
func TestForwardBackwardZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(
		NewDense("l1", 32, 64, rng),
		NewReLU(),
		NewDropout(0.5, rng),
		NewDense("l2", 64, 8, rng),
	)
	x := mat.New(16, 32)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	grad := mat.New(16, 8)
	grad.Fill(0.01)

	for i := 0; i < 3; i++ {
		net.Forward(x, true)
		net.Backward(grad)
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.Forward(x, true)
		net.Backward(grad)
	})
	if allocs != 0 {
		t.Fatalf("warm Forward+Backward allocates %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceAlternatingBatches verifies that alternating between two
// batch sizes — Twig's steady state of one-row inference interleaved with
// minibatch training — stays allocation-free once both are cached.
func TestWorkspaceAlternatingBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(NewDense("l", 16, 24, rng), NewReLU())
	one := mat.New(1, 16)
	batch := mat.New(8, 16)
	for i := 0; i < 2; i++ {
		net.Forward(one, false)
		net.Forward(batch, true)
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.Forward(one, false)
		net.Forward(batch, true)
	})
	if allocs != 0 {
		t.Fatalf("alternating batch sizes allocates %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceOwnership documents the reuse contract: a second Forward
// with the same batch size overwrites the previously returned matrix.
func TestWorkspaceOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense("l", 4, 4, rng)
	x := mat.New(2, 4)
	y1 := d.Forward(x, false)
	y2 := d.Forward(x, false)
	if y1 != y2 {
		t.Fatalf("Forward with an unchanged batch size must reuse its workspace")
	}
}
