package nn

import (
	"math"

	"github.com/twig-sched/twig/internal/mat"
)

// Adam implements the Adam optimiser (Kingma & Ba, 2014) with the bias
// correction of the original paper. Twig uses a learning rate of 0.0025.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	// MaxGradNorm, when positive, rescales the global gradient so its
	// L2 norm does not exceed this value before the update is applied.
	MaxGradNorm float64

	step int
}

// NewAdam returns an Adam optimiser with the given learning rate and the
// standard β₁=0.9, β₂=0.999, ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to every parameter and increments the
// internal timestep used for bias correction.
func (a *Adam) Step(params []*Param) { a.apply(params, false) }

// StepAndZeroGrad applies one Adam update and clears each parameter's
// gradient in the same pass, fusing the ZeroGrad that would otherwise
// precede the next backward pass. Gradients are write-only between the
// optimiser step and the next backward (checkpoints do not capture
// them), so step-then-zero is exactly equivalent to zero-before-reuse.
func (a *Adam) StepAndZeroGrad(params []*Param) { a.apply(params, true) }

// apply is the single-pass Adam kernel. The per-element update is the
// exact expression of the original loop — only loop-invariant
// subexpressions (β constants, bias corrections, slice headers) are
// hoisted, which does not change any rounding.
func (a *Adam) apply(params []*Param, zeroGrad bool) {
	a.step++
	if a.MaxGradNorm > 0 {
		clipGlobalNorm(params, a.MaxGradNorm)
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	lr, eps := a.LR, a.Epsilon
	b1, omb1 := a.Beta1, 1-a.Beta1
	b2, omb2 := a.Beta2, 1-a.Beta2
	for _, p := range params {
		if p.m == nil && !p.adoptMoments() {
			p.m = mat.New(p.Value.Rows, p.Value.Cols)
			p.v = mat.New(p.Value.Rows, p.Value.Cols)
		}
		md, vd, pd, gd := p.m.Data, p.v.Data, p.Value.Data, p.Grad.Data
		for i, g := range gd {
			m := b1*md[i] + omb1*g
			v := b2*vd[i] + omb2*g*g
			md[i] = m
			vd[i] = v
			pd[i] -= lr * (m / c1) / (math.Sqrt(v/c2) + eps)
			if zeroGrad {
				gd[i] = 0
			}
		}
	}
}

// StepAndZeroGradFlat is StepAndZeroGrad for parameters that live in
// one contiguous arena slot (see Arena.SlotSlabs): instead of walking
// params one tensor at a time, the update runs as a single pass over
// the slot's value/grad/moment slabs. Params is still consulted for
// norm clipping (same element order — the slabs are tightly packed in
// Params() order) and for lazy moment adoption, so the result is
// bitwise identical to StepAndZeroGrad on the same parameters.
func (a *Adam) StepAndZeroGradFlat(params []*Param, value, grad, m, v []float64) {
	a.step++
	if a.MaxGradNorm > 0 {
		clipGlobalNormFlat(grad, a.MaxGradNorm)
	}
	for _, p := range params {
		if p.m == nil && !p.adoptMoments() {
			panic("nn: StepAndZeroGradFlat param " + p.Name + " not arena-adopted")
		}
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	lr, eps := a.LR, a.Epsilon
	b1, omb1 := a.Beta1, 1-a.Beta1
	b2, omb2 := a.Beta2, 1-a.Beta2
	md, vd, pd := m, v, value
	for i, g := range grad {
		mm := b1*md[i] + omb1*g
		vv := b2*vd[i] + omb2*g*g
		md[i] = mm
		vd[i] = vv
		pd[i] -= lr * (mm / c1) / (math.Sqrt(vv/c2) + eps)
		grad[i] = 0
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// Reset clears the optimiser timestep (moment estimates are kept on the
// parameters and cleared by ResetMoments).
func (a *Adam) Reset() { a.step = 0 }

// ResetMoments clears the per-parameter moment estimates, e.g. after
// transfer learning re-initialises a layer.
func ResetMoments(params []*Param) {
	for _, p := range params {
		p.m = nil
		p.v = nil
	}
}

// clipGlobalNormFlat is clipGlobalNorm over one contiguous grad slab.
// The slab covers the same elements in the same (Params) order, so the
// squared-sum accumulation rounds identically; the rescale multiplies
// each element once, like the per-param Scale calls.
func clipGlobalNormFlat(grad []float64, maxNorm float64) {
	var sq float64
	for _, g := range grad {
		sq += g * g
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for i := range grad {
		grad[i] *= scale
	}
}

func clipGlobalNorm(params []*Param, maxNorm float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}
