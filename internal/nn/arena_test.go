package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/mat"
)

func buildArenaNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewDense("l1", 5, 16, rng),
		NewReLU(),
		NewDense("l2", 16, 3, rng),
	)
}

func requireParamsBitsEqual(t *testing.T, tag string, got, want []*Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", tag, len(got), len(want))
	}
	for i := range want {
		for j, w := range want[i].Value.Data {
			g := got[i].Value.Data[j]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: param %q element %d: %v != %v", tag, want[i].Name, j, g, w)
			}
		}
	}
}

// TestArenaTrainingBitIdentical trains a heap-backed and an
// arena-adopted copy of the same network in lockstep and requires
// bitwise-equal parameters, gradients and checkpoints throughout —
// adoption may move memory but must not change a single rounding.
func TestArenaTrainingBitIdentical(t *testing.T) {
	solo := buildArenaNet(7)
	pooled := buildArenaNet(7)
	arena := NewArena(ShapesOf(pooled.Params()), 2)
	id := arena.Alloc()
	arena.Adopt(id, pooled.Params())

	optS := NewAdam(0.01)
	optP := NewAdam(0.01)
	rng := rand.New(rand.NewSource(99))
	x := mat.New(4, 5)
	want := mat.New(4, 3)
	for step := 0; step < 20; step++ {
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range want.Data {
			want.Data[i] = rng.NormFloat64()
		}
		for net, opt := range map[*Sequential]*Adam{solo: optS, pooled: optP} {
			out := net.Forward(x, true)
			grad := mat.New(4, 3)
			for i := range grad.Data {
				grad.Data[i] = out.Data[i] - want.Data[i]
			}
			net.Backward(grad)
			opt.StepAndZeroGrad(net.Params())
		}
		requireParamsBitsEqual(t, "train", pooled.Params(), solo.Params())
	}

	// Checkpoint bytes must be identical too — the arena must not
	// change what EncodeParams writes (including moment presence).
	es, ep := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	EncodeParams(es, solo.Params())
	EncodeParams(ep, pooled.Params())
	if !bytes.Equal(es.Bytes(), ep.Bytes()) {
		t.Fatal("arena-adopted checkpoint bytes differ from heap-backed")
	}
}

// TestArenaUntrainedMomentsStayLazy pins that adoption alone does not
// make Adam moments live — an untrained pooled agent checkpoints
// exactly like an untrained solo agent (hasMoments=false).
func TestArenaUntrainedMomentsStayLazy(t *testing.T) {
	solo := buildArenaNet(3)
	pooled := buildArenaNet(3)
	arena := NewArena(ShapesOf(pooled.Params()), 0)
	arena.Adopt(arena.Alloc(), pooled.Params())

	es, ep := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	EncodeParams(es, solo.Params())
	EncodeParams(ep, pooled.Params())
	if !bytes.Equal(es.Bytes(), ep.Bytes()) {
		t.Fatal("adoption made untrained moments live")
	}

	// ResetMoments then retrain: the lazy re-adoption must zero the
	// views like a fresh allocation.
	opt := NewAdam(0.01)
	x := mat.New(1, 5)
	x.Fill(1)
	out := pooled.Forward(x, true)
	pooled.Backward(out)
	opt.StepAndZeroGrad(pooled.Params())
	ResetMoments(pooled.Params())
	for _, p := range pooled.Params() {
		if p.m != nil {
			t.Fatal("ResetMoments left moments live")
		}
	}
	opt.StepAndZeroGrad(pooled.Params())
	for _, p := range pooled.Params() {
		if p.m != p.am {
			t.Fatal("lazy re-adoption did not reuse the arena views")
		}
	}
}

// TestArenaSlotLifecycle pins deterministic slot reuse: release + alloc
// hands back the lowest freed id, chunk growth keeps old views valid,
// and misuse panics.
func TestArenaSlotLifecycle(t *testing.T) {
	shapes := []ParamShape{{Name: "p", Rows: 2, Cols: 3}}
	a := NewArena(shapes, 2)
	ids := []int{a.Alloc(), a.Alloc(), a.Alloc(), a.Alloc(), a.Alloc()}
	for i, id := range ids {
		if id != i {
			t.Fatalf("alloc %d returned %d", i, id)
		}
	}
	if a.Live() != 5 {
		t.Fatalf("Live() = %d, want 5", a.Live())
	}

	// Views created before growth must still address their slot.
	p := NewParam("p", 2, 3)
	p.Value.Fill(7)
	a.Adopt(ids[1], []*Param{p})
	pre := p.Value.Data
	for i := 0; i < 20; i++ {
		a.Alloc() // force more chunks
	}
	if &pre[0] != &p.Value.Data[0] || p.Value.At(0, 0) != 7 {
		t.Fatal("chunk growth invalidated an adopted view")
	}

	a.Release(ids[3])
	a.Release(ids[0])
	a.Release(ids[4])
	if got := a.Alloc(); got != 0 {
		t.Fatalf("alloc after release returned %d, want 0 (lowest)", got)
	}
	if got := a.Alloc(); got != 3 {
		t.Fatalf("alloc after release returned %d, want 3", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.Release(ids[4])
	a.Release(ids[4])
}
