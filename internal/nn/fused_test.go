package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/mat"
)

// Golden equality tests for the fused hot path: a NewDenseReLU +
// StepAndZeroGrad training loop must match the unfused NewDense + NewReLU
// + ZeroGrad + Step loop to the last bit — parameter values, Adam
// moments and per-step outputs compared as raw float bits (%x), serial
// and parallel, and across a checkpoint round-trip taken mid-training.

// buildUnfused and buildFused construct the same 22→64→32→1 regressor
// from the same seed; the fused variant collapses each Dense+ReLU pair.
func buildUnfused(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewDense("h1", 22, 64, rng),
		NewReLU(),
		NewDense("h2", 64, 32, rng),
		NewReLU(),
		NewDense("out", 32, 1, rng),
	)
}

func buildFused(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewDenseReLU("h1", 22, 64, rng),
		NewDenseReLU("h2", 64, 32, rng),
		NewDense("out", 32, 1, rng),
	)
}

// trainBatch runs one forward/backward on deterministic data and returns
// the prediction matrix (a workspace — compare before the next step).
func trainBatch(net *Sequential, rng *rand.Rand, xb, yb *mat.Matrix) *mat.Matrix {
	for i := range xb.Data {
		xb.Data[i] = rng.NormFloat64()
	}
	for i := range yb.Data {
		yb.Data[i] = rng.NormFloat64()
	}
	pred := net.Forward(xb, true)
	_, grad := MSE(pred, yb)
	net.Backward(grad)
	return pred
}

func requireParamsBitEqual(t *testing.T, tag string, fused, unfused []*Param) {
	t.Helper()
	if len(fused) != len(unfused) {
		t.Fatalf("%s: %d params vs %d", tag, len(fused), len(unfused))
	}
	for i, pf := range fused {
		pu := unfused[i]
		if pf.Name != pu.Name {
			t.Fatalf("%s: param %d name %q vs %q", tag, i, pf.Name, pu.Name)
		}
		for j := range pf.Value.Data {
			if got, want := math.Float64bits(pf.Value.Data[j]), math.Float64bits(pu.Value.Data[j]); got != want {
				t.Fatalf("%s: %s value[%d] = %x, unfused %x", tag, pf.Name, j, got, want)
			}
		}
		if (pf.m == nil) != (pu.m == nil) {
			t.Fatalf("%s: %s moment presence differs", tag, pf.Name)
		}
		if pf.m == nil {
			continue
		}
		for j := range pf.m.Data {
			if math.Float64bits(pf.m.Data[j]) != math.Float64bits(pu.m.Data[j]) {
				t.Fatalf("%s: %s m[%d] differs: %x vs %x", tag, pf.Name, j,
					math.Float64bits(pf.m.Data[j]), math.Float64bits(pu.m.Data[j]))
			}
			if math.Float64bits(pf.v.Data[j]) != math.Float64bits(pu.v.Data[j]) {
				t.Fatalf("%s: %s v[%d] differs: %x vs %x", tag, pf.Name, j,
					math.Float64bits(pf.v.Data[j]), math.Float64bits(pu.v.Data[j]))
			}
		}
	}
}

// runFusedVsUnfused trains both variants for steps steps on identical
// data, checking outputs and full optimiser state bitwise after every
// step. Batch 64 crosses the packed-GEMM and parallel thresholds;
// batch 1 stays on the streaming path.
func runFusedVsUnfused(t *testing.T, batch, steps int) {
	unfused := buildUnfused(7)
	fused := buildFused(7)
	requireParamsBitEqual(t, "init", fused.Params(), unfused.Params())

	optU := NewAdam(0.0025)
	optF := NewAdam(0.0025)
	rngU := rand.New(rand.NewSource(99))
	rngF := rand.New(rand.NewSource(99))
	xbU, ybU := mat.New(batch, 22), mat.New(batch, 1)
	xbF, ybF := mat.New(batch, 22), mat.New(batch, 1)

	for s := 0; s < steps; s++ {
		unfused.ZeroGrad()
		predU := trainBatch(unfused, rngU, xbU, ybU)
		predF := trainBatch(fused, rngF, xbF, ybF)
		for i := range predU.Data {
			if math.Float64bits(predU.Data[i]) != math.Float64bits(predF.Data[i]) {
				t.Fatalf("step %d: pred[%d] fused %x, unfused %x", s, i,
					math.Float64bits(predF.Data[i]), math.Float64bits(predU.Data[i]))
			}
		}
		optU.Step(unfused.Params())
		optF.StepAndZeroGrad(fused.Params())
		requireParamsBitEqual(t, "after step", fused.Params(), unfused.Params())
	}
}

func TestFusedMatchesUnfusedSerial(t *testing.T) {
	saved := mat.Parallelism()
	defer mat.SetParallelism(saved)
	mat.SetParallelism(1)
	runFusedVsUnfused(t, 64, 25)
	runFusedVsUnfused(t, 1, 25) // streaming (non-packed) path
}

func TestFusedMatchesUnfusedParallel(t *testing.T) {
	saved := mat.Parallelism()
	defer mat.SetParallelism(saved)
	mat.SetParallelism(8)
	runFusedVsUnfused(t, 64, 25)
}

// TestFusedCheckpointRoundTrip trains the fused network, checkpoints
// mid-run, keeps training, then restores into a fresh fused network and
// replays the tail — the replay must land on bit-identical state, and
// the checkpoint must also restore into an *unfused* network (same
// param names/shapes) and train on to the same bits.
func TestFusedCheckpointRoundTrip(t *testing.T) {
	const batch, head, tail = 64, 10, 10
	fused := buildFused(7)
	opt := NewAdam(0.0025)
	rng := rand.New(rand.NewSource(99))
	xb, yb := mat.New(batch, 22), mat.New(batch, 1)
	for s := 0; s < head; s++ {
		trainBatch(fused, rng, xb, yb)
		opt.StepAndZeroGrad(fused.Params())
	}
	enc := checkpoint.NewEncoder()
	EncodeParams(enc, fused.Params())
	opt.EncodeState(enc)
	blob := enc.Bytes()
	// Seed for the identical data stream every tail replay consumes.
	tailSeed := rng.Int63()

	run := func(net *Sequential, o *Adam, tag string) {
		dec := checkpoint.NewDecoder(blob)
		if err := DecodeParams(dec, net.Params()); err != nil {
			t.Fatalf("%s: decode params: %v", tag, err)
		}
		if err := o.DecodeState(dec); err != nil {
			t.Fatalf("%s: decode opt: %v", tag, err)
		}
		r := rand.New(rand.NewSource(tailSeed))
		x, y := mat.New(batch, 22), mat.New(batch, 1)
		for s := 0; s < tail; s++ {
			net.ZeroGrad()
			trainBatch(net, r, x, y)
			o.Step(net.Params())
		}
	}

	fusedR := buildFused(7)
	optFR := NewAdam(0.0025)
	run(fusedR, optFR, "fused-restore")

	unfusedR := buildUnfused(7)
	optUR := NewAdam(0.0025)
	run(unfusedR, optUR, "unfused-restore")

	requireParamsBitEqual(t, "restored tails", fusedR.Params(), unfusedR.Params())

	// The original keeps training through the same tail; all three must agree.
	r := rand.New(rand.NewSource(tailSeed))
	for s := 0; s < tail; s++ {
		trainBatch(fused, r, xb, yb)
		opt.StepAndZeroGrad(fused.Params())
	}
	requireParamsBitEqual(t, "original vs restored", fused.Params(), fusedR.Params())
}
