// Package nn implements the small feed-forward neural-network machinery
// Twig needs: dense layers, ReLU, inverted dropout, mean-squared-error
// loss, Xavier/He initialisation, the Adam optimiser, gradient clipping
// and snapshot/restore for target networks and transfer learning. It is
// CPU-only and uses only the standard library.
package nn

import "github.com/twig-sched/twig/internal/mat"

// Param is a learnable tensor together with its gradient accumulator and
// the optimiser state attached to it.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix

	// Adam first/second moment estimates, allocated lazily by the
	// optimiser so that inference-only networks carry no extra state.
	m, v *mat.Matrix

	// am/av are pre-carved arena views (see Arena.Adopt) the lazy
	// allocation adopts — zeroed, exactly like a fresh allocation —
	// instead of hitting the heap. Nil for non-pooled params.
	am, av *mat.Matrix
}

// NewParam allocates a zeroed parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: mat.New(rows, cols),
		Grad:  mat.New(rows, cols),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// CopyValueFrom copies src's value (not gradient or optimiser state).
func (p *Param) CopyValueFrom(src *Param) { p.Value.CopyFrom(src.Value) }
