package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/twig-sched/twig/internal/mat"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch (rows = samples) and Backward consumes the gradient of the loss
// with respect to the layer output, accumulating parameter gradients and
// returning the gradient with respect to the layer input.
//
// Ownership contract: the matrices Forward and Backward return are
// reusable workspaces owned by the layer, keyed by batch size. They stay
// valid until the layer's next Forward/Backward call with the same batch
// size; callers that need to retain results across calls must Clone
// them. This is what makes a steady-state training step allocation-free.
type Layer interface {
	Forward(x *mat.Matrix, train bool) *mat.Matrix
	Backward(gradOut *mat.Matrix) *mat.Matrix
	Params() []*Param
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W       *Param // In×Out
	B       *Param // 1×Out

	lastX *mat.Matrix // cached input for Backward

	out     workspace // y, batch×Out
	gradIn  workspace // gradient wrt input, batch×In
	dW      *mat.Matrix
	colSums []float64
}

// NewDense creates a Dense layer with He-initialised weights (suitable for
// the ReLU activations used throughout Twig) and zero biases.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".B", 1, out),
	}
	d.InitHe(rng)
	return d
}

// InitHe re-initialises the weights with He (Kaiming) normal init and
// zeroes the biases. Used both at construction and by transfer learning
// when the final layer is re-randomised.
func (d *Dense) InitHe(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(d.In))
	for i := range d.W.Value.Data {
		d.W.Value.Data[i] = rng.NormFloat64() * std
	}
	d.B.Value.Zero()
}

// Forward computes y = x·W + b for a batch x (rows = samples).
func (d *Dense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense %s expects %d inputs, got %d", d.W.Name, d.In, x.Cols))
	}
	d.lastX = x
	y := d.out.get(x.Rows, d.Out)
	mat.Mul(y, x, d.W.Value)
	y.AddRowBroadcast(d.B.Value.Data)
	return y
}

// Backward accumulates dW = xᵀ·g and db = Σ_rows g, returning g·Wᵀ.
func (d *Dense) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if d.lastX == nil {
		panic("nn: Dense.Backward before Forward")
	}
	if d.dW == nil {
		d.dW = mat.New(d.In, d.Out)
		d.colSums = make([]float64, d.Out)
	}
	mat.MulTransA(d.dW, d.lastX, gradOut)
	d.W.Grad.AddScaled(1, d.dW)
	gradOut.ColSumsInto(d.colSums)
	mat.Axpy(1, d.colSums, d.B.Grad.Data)

	gradIn := d.gradIn.get(gradOut.Rows, d.In)
	mat.MulTransB(gradIn, gradOut, d.W.Value)
	return gradIn
}

// Params returns the layer's weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	lastX *mat.Matrix

	out  workspace
	grad workspace
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(0, x).
func (r *ReLU) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	r.lastX = x
	y := r.out.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if r.lastX == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	g := r.grad.get(gradOut.Rows, gradOut.Cols)
	for i, v := range r.lastX.Data {
		if v > 0 {
			g.Data[i] = gradOut.Data[i]
		} else {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil: ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout implements inverted dropout: during training each activation is
// zeroed with probability Rate and the survivors are scaled by 1/(1−Rate)
// so that evaluation requires no rescaling. The paper uses Rate = 0.5
// after every fully connected layer.
type Dropout struct {
	Rate float64
	rng  *rand.Rand

	mask *mat.Matrix

	maskWS workspace
	out    workspace
	grad   workspace
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the dropout mask when train is true and is the identity
// otherwise.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	d.mask = d.maskWS.get(x.Rows, x.Cols)
	y := d.out.get(x.Rows, x.Cols)
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = inv
			y.Data[i] = v * inv
		} else {
			d.mask.Data[i] = 0
			y.Data[i] = 0
		}
	}
	return y
}

// Backward applies the same mask to the incoming gradient.
func (d *Dropout) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return gradOut
	}
	g := d.grad.get(gradOut.Rows, gradOut.Cols)
	mat.Hadamard(g, gradOut, d.mask)
	return g
}

// Params returns nil: Dropout has no learnable parameters.
func (d *Dropout) Params() []*Param { return nil }
