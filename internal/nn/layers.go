package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/twig-sched/twig/internal/mat"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch (rows = samples) and Backward consumes the gradient of the loss
// with respect to the layer output, accumulating parameter gradients and
// returning the gradient with respect to the layer input.
//
// Ownership contract: the matrices Forward and Backward return are
// reusable workspaces owned by the layer, keyed by batch size. They stay
// valid until the layer's next Forward/Backward call with the same batch
// size; callers that need to retain results across calls must Clone
// them. This is what makes a steady-state training step allocation-free.
type Layer interface {
	Forward(x *mat.Matrix, train bool) *mat.Matrix
	Backward(gradOut *mat.Matrix) *mat.Matrix
	Params() []*Param
}

// Dense is a fully connected layer: y = x·W + b. With FuseReLU set it is
// a Dense+ReLU pair collapsed into one layer: the activation runs in the
// GEMM epilogue on Forward, and Backward folds the activation-gradient
// mask and the bias column sums into a single sweep before the gradient
// GEMMs. Both directions are bit-identical to the unfused
// Dense-then-ReLU stack (the ReLU mask "post-activation output > 0" is
// equivalent to "pre-activation input > 0").
type Dense struct {
	In, Out  int
	W        *Param // In×Out
	B        *Param // 1×Out
	FuseReLU bool

	lastX   *mat.Matrix // cached input for Backward
	lastOut *mat.Matrix // cached output (mask source when FuseReLU)

	// packW holds persistent packed weight panels (see mat.PackedB).
	// Owners that track weight epochs (bdq.Network) refresh it after
	// every weight mutation; while set, Forward runs the packed kernels
	// at any batch size and skips MulBiasAct's per-call packing —
	// bitwise identical, pack cost paid once per weight change instead
	// of once per product.
	packW *mat.PackedB

	out     workspace // y, batch×Out
	gradIn  workspace // gradient wrt input, batch×In
	gm      workspace // masked gradient, batch×Out (FuseReLU only)
	colSums []float64
}

// NewDense creates a Dense layer with He-initialised weights (suitable for
// the ReLU activations used throughout Twig) and zero biases.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".B", 1, out),
	}
	d.InitHe(rng)
	return d
}

// NewDenseReLU creates a fused Dense+ReLU layer: one Layer that computes
// relu(x·W + b) without materialising the pre-activation, replacing a
// NewDense followed by NewReLU bit-for-bit.
func NewDenseReLU(name string, in, out int, rng *rand.Rand) *Dense {
	d := NewDense(name, in, out, rng)
	d.FuseReLU = true
	return d
}

// InitHe re-initialises the weights with He (Kaiming) normal init and
// zeroes the biases. Used both at construction and by transfer learning
// when the final layer is re-randomised.
func (d *Dense) InitHe(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(d.In))
	for i := range d.W.Value.Data {
		d.W.Value.Data[i] = rng.NormFloat64() * std
	}
	d.B.Value.Zero()
}

// Forward computes y = x·W + b (relu'd when FuseReLU) for a batch x
// (rows = samples). Bias and activation are applied in the GEMM epilogue.
func (d *Dense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense %s expects %d inputs, got %d", d.W.Name, d.In, x.Cols))
	}
	d.lastX = x
	y := d.out.get(x.Rows, d.Out)
	act := mat.ActIdentity
	if d.FuseReLU {
		act = mat.ActReLU
	}
	if d.packW != nil {
		mat.MulPackedBiasAct(y, x, d.packW, d.B.Value.Data, act)
	} else {
		mat.MulBiasAct(y, x, d.W.Value, d.B.Value.Data, act)
	}
	d.lastOut = y
	return y
}

// RefreshPack (re)builds the persistent packed weight panels from the
// current W. The caller owns the refresh discipline: call after every
// weight mutation (bdq.Network keys this on its weight epoch), or never
// — a Dense without packs stays on the per-call packing path.
func (d *Dense) RefreshPack() {
	if d.packW == nil {
		d.packW = &mat.PackedB{}
	}
	d.packW.RepackFrom(d.W.Value)
}

// Pack returns the persistent packed panels, or nil before the first
// RefreshPack. Pooled grouped products share these panels with the
// layer's own Forward.
func (d *Dense) Pack() *mat.PackedB { return d.packW }

// ClearPack drops the persistent panels; Forward falls back to
// MulBiasAct's per-call packing.
func (d *Dense) ClearPack() { d.packW = nil }

// Backward accumulates dW = xᵀ·g and db = Σ_rows g, returning g·Wᵀ.
// When FuseReLU is set, g is first masked by the activation gradient;
// the mask application and the bias column sums share one sweep, and the
// weight-gradient GEMM accumulates directly into W.Grad.
func (d *Dense) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if d.lastX == nil {
		panic("nn: Dense.Backward before Forward")
	}
	if d.colSums == nil {
		d.colSums = make([]float64, d.Out)
	}
	g := gradOut
	if d.FuseReLU {
		gm := d.gm.get(gradOut.Rows, gradOut.Cols)
		// Fused sweep: mask by "output > 0" (⟺ pre-activation > 0) and
		// build the bias column sums in the same row-major order as
		// ColSumsInto, so the sums are bit-identical to the unfused pair.
		for j := range d.colSums {
			d.colSums[j] = 0
		}
		for i := 0; i < gradOut.Rows; i++ {
			grow := gradOut.Row(i)
			yrow := d.lastOut.Row(i)
			mrow := gm.Row(i)
			for j, v := range grow {
				if yrow[j] > 0 {
					mrow[j] = v
					d.colSums[j] += v
				} else {
					mrow[j] = 0
				}
			}
		}
		g = gm
	} else {
		gradOut.ColSumsInto(d.colSums)
	}
	mat.MulTransAAcc(d.W.Grad, d.lastX, g)
	mat.Axpy(1, d.colSums, d.B.Grad.Data)

	gradIn := d.gradIn.get(g.Rows, d.In)
	mat.MulTransB(gradIn, g, d.W.Value)
	return gradIn
}

// Params returns the layer's weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	lastX *mat.Matrix

	out  workspace
	grad workspace
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(0, x).
func (r *ReLU) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	r.lastX = x
	y := r.out.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if r.lastX == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	g := r.grad.get(gradOut.Rows, gradOut.Cols)
	for i, v := range r.lastX.Data {
		if v > 0 {
			g.Data[i] = gradOut.Data[i]
		} else {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil: ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout implements inverted dropout: during training each activation is
// zeroed with probability Rate and the survivors are scaled by 1/(1−Rate)
// so that evaluation requires no rescaling. The paper uses Rate = 0.5
// after every fully connected layer.
type Dropout struct {
	Rate float64
	rng  *rand.Rand

	mask *mat.Matrix

	maskWS workspace
	out    workspace
	grad   workspace
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the dropout mask when train is true and is the identity
// otherwise.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	d.mask = d.maskWS.get(x.Rows, x.Cols)
	y := d.out.get(x.Rows, x.Cols)
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = inv
			y.Data[i] = v * inv
		} else {
			d.mask.Data[i] = 0
			y.Data[i] = 0
		}
	}
	return y
}

// ApplyTrain runs Forward's train-mode body over caller-owned buffers:
// it draws a fresh mask from the layer's RNG into mask and writes the
// rescaled, dropped activations of x into y. The pooled training path
// uses it to keep each member's RNG draw sequence (row-major over the
// member's own activations, exactly like its solo Forward) while the
// activations live as bands of a stacked matrix. x, y and mask must
// share a shape; x's Data is consumed in row-major order.
func (d *Dropout) ApplyTrain(y, mask, x *mat.Matrix) {
	keep := 1 - d.Rate
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			mask.Data[i] = inv
			y.Data[i] = v * inv
		} else {
			mask.Data[i] = 0
			y.Data[i] = 0
		}
	}
}

// Backward applies the same mask to the incoming gradient.
func (d *Dropout) Backward(gradOut *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return gradOut
	}
	g := d.grad.get(gradOut.Rows, gradOut.Cols)
	mat.Hadamard(g, gradOut, d.mask)
	return g
}

// Params returns nil: Dropout has no learnable parameters.
func (d *Dropout) Params() []*Param { return nil }
