package nn

import (
	"fmt"

	"github.com/twig-sched/twig/internal/mat"
)

// Arena is a pooled parameter store for agents sharing one
// architecture: each agent occupies a slot whose value, gradient and
// Adam-moment tensors live in contiguous per-chunk slabs, so the
// per-agent optimiser sweep walks linear memory instead of scattered
// heap allocations, and slot alloc/free maps directly onto fleet
// membership churn (admit/drain/failover).
//
// Adoption rebinds the matrices *inside* existing Param structs to slab
// views — layers, cached Params() slices and checkpoint encode/decode
// all read through the same *Param pointers, so no constructor or
// checkpoint code changes. Bitwise nothing changes either: the data is
// copied element-for-element, and the Adam moment views only become
// live exactly when the lazy allocation in Adam.apply would have fired,
// zeroed exactly as a fresh allocation would be.
//
// Chunks are never reallocated once handed out, so views stay valid as
// the arena grows.
type Arena struct {
	shapes  []ParamShape
	offsets []int // element offset of each param within a slot
	perSlot int   // floats per slot

	slotsPerChunk int
	chunks        []*arenaChunk
	free          []int // released slot ids, popped lowest-first
	next          int   // lowest never-allocated slot id
	live          int
}

// ParamShape is one tensor of the shared architecture.
type ParamShape struct {
	Name string
	Rows int
	Cols int
}

// arenaChunk owns the four slabs for slotsPerChunk consecutive slots.
type arenaChunk struct {
	value, grad, m, v []float64
}

// ShapesOf captures the architecture of a parameter list, the template
// every slot of an arena is laid out from.
func ShapesOf(params []*Param) []ParamShape {
	shapes := make([]ParamShape, len(params))
	for i, p := range params {
		shapes[i] = ParamShape{Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols}
	}
	return shapes
}

// NewArena builds an empty arena for the given architecture, growing in
// chunks of slotsPerChunk agents (0 picks a default).
func NewArena(shapes []ParamShape, slotsPerChunk int) *Arena {
	if slotsPerChunk <= 0 {
		slotsPerChunk = 8
	}
	a := &Arena{shapes: shapes, slotsPerChunk: slotsPerChunk}
	a.offsets = make([]int, len(shapes))
	for i, s := range shapes {
		if s.Rows < 0 || s.Cols < 0 {
			panic(fmt.Sprintf("nn: arena shape %q is %dx%d", s.Name, s.Rows, s.Cols))
		}
		a.offsets[i] = a.perSlot
		a.perSlot += s.Rows * s.Cols
	}
	return a
}

// Alloc claims a slot id, lowest available first so a drain + admit at
// the same membership reuses the same storage deterministically.
func (a *Arena) Alloc() int {
	a.live++
	if len(a.free) > 0 {
		// Pop the smallest released id (the list is kept sorted).
		id := a.free[0]
		a.free = a.free[1:]
		return id
	}
	id := a.next
	a.next++
	for id/a.slotsPerChunk >= len(a.chunks) {
		n := a.slotsPerChunk * a.perSlot
		a.chunks = append(a.chunks, &arenaChunk{
			value: make([]float64, n),
			grad:  make([]float64, n),
			m:     make([]float64, n),
			v:     make([]float64, n),
		})
	}
	return id
}

// Release returns a slot to the free list. The caller must drop every
// Param adopted into it first — the storage is reused by the next
// Alloc.
func (a *Arena) Release(id int) {
	if id < 0 || id >= a.next {
		panic(fmt.Sprintf("nn: arena release of unknown slot %d", id))
	}
	for _, f := range a.free {
		if f == id {
			panic(fmt.Sprintf("nn: arena double release of slot %d", id))
		}
	}
	a.live--
	// Sorted insert keeps Alloc deterministic (lowest id first).
	at := len(a.free)
	for i, f := range a.free {
		if f > id {
			at = i
			break
		}
	}
	a.free = append(a.free, 0)
	copy(a.free[at+1:], a.free[at:])
	a.free[at] = id
}

// Live reports the number of currently allocated slots.
func (a *Arena) Live() int { return a.live }

// PerSlot reports the floats one slot occupies (per tensor kind).
func (a *Arena) PerSlot() int { return a.perSlot }

// SlotSlabs returns the slot's four contiguous slab segments — values,
// gradients, first and second Adam moments — that every param adopted
// into the slot views, tightly packed in Params() order. The fused
// optimiser pass (Adam.StepAndZeroGradFlat) walks these instead of the
// per-param tensors.
func (a *Arena) SlotSlabs(id int) (value, grad, m, v []float64) {
	chunk := a.chunks[id/a.slotsPerChunk]
	lo := (id % a.slotsPerChunk) * a.perSlot
	hi := lo + a.perSlot
	return chunk.value[lo:hi:hi], chunk.grad[lo:hi:hi], chunk.m[lo:hi:hi], chunk.v[lo:hi:hi]
}

// Adopt moves params into slot id: every tensor is copied into the slab
// and the Param's matrices are rebound to slab views. Params must match
// the arena's architecture exactly. Live Adam moments move with the
// param; lazy (nil) moments stay lazy — the pre-carved views are
// attached on the Param and become live, zeroed, exactly when the
// optimiser's lazy allocation would have fired.
func (a *Arena) Adopt(id int, params []*Param) {
	if len(params) != len(a.shapes) {
		panic(fmt.Sprintf("nn: arena adopt of %d params into %d-tensor slots", len(params), len(a.shapes)))
	}
	chunk := a.chunks[id/a.slotsPerChunk]
	base := (id % a.slotsPerChunk) * a.perSlot
	for i, p := range params {
		s := a.shapes[i]
		if p.Name != s.Name || p.Value.Rows != s.Rows || p.Value.Cols != s.Cols {
			panic(fmt.Sprintf("nn: arena adopt param %d is %q %dx%d, slot wants %q %dx%d",
				i, p.Name, p.Value.Rows, p.Value.Cols, s.Name, s.Rows, s.Cols))
		}
		lo := base + a.offsets[i]
		hi := lo + s.Rows*s.Cols
		value := mat.FromSlice(s.Rows, s.Cols, chunk.value[lo:hi:hi])
		grad := mat.FromSlice(s.Rows, s.Cols, chunk.grad[lo:hi:hi])
		am := mat.FromSlice(s.Rows, s.Cols, chunk.m[lo:hi:hi])
		av := mat.FromSlice(s.Rows, s.Cols, chunk.v[lo:hi:hi])
		value.CopyFrom(p.Value)
		grad.CopyFrom(p.Grad)
		am.Zero()
		av.Zero()
		p.Value, p.Grad = value, grad
		if p.m != nil {
			am.CopyFrom(p.m)
			av.CopyFrom(p.v)
			p.m, p.v = am, av
		}
		p.am, p.av = am, av
	}
}

// Detach rebinds params to private heap storage (deep copies of their
// current matrices), severing every arena view. Called before a slot is
// released so a drained agent keeps its full state — values, gradients
// and live Adam moments — and remains usable and checkpointable
// standalone while the slot's slabs are reused.
func Detach(params []*Param) {
	for _, p := range params {
		p.Value = p.Value.Clone()
		p.Grad = p.Grad.Clone()
		if p.m != nil {
			p.m = p.m.Clone()
			p.v = p.v.Clone()
		}
		p.am, p.av = nil, nil
	}
}

// adoptMoments activates a Param's pre-carved arena moment views if it
// has any, zeroed like a fresh allocation. Reports whether it did.
func (p *Param) adoptMoments() bool {
	if p.am == nil {
		return false
	}
	p.am.Zero()
	p.av.Zero()
	p.m, p.v = p.am, p.av
	return true
}
