package nn

import "github.com/twig-sched/twig/internal/mat"

// Sequential chains layers so that the output of one feeds the next. It
// is itself a Layer, so sub-networks (the BDQ shared trunk and branches)
// compose naturally.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the batch through every layer in order.
func (s *Sequential) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse
// order, returning the gradient with respect to the network input.
func (s *Sequential) Backward(gradOut *mat.Matrix) *mat.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears the gradients of every parameter in the network.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// CopyValuesFrom copies parameter values from src into s. Both networks
// must have identical architectures (same parameter shapes in the same
// order). Used to synchronise target networks.
func (s *Sequential) CopyValuesFrom(src *Sequential) {
	dst := s.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic("nn: CopyValuesFrom parameter count mismatch")
	}
	for i := range dst {
		dst[i].CopyValueFrom(from[i])
	}
}

// NumParams returns the total number of scalar learnable parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.Value.Data)
	}
	return n
}
