package nn

import "github.com/twig-sched/twig/internal/mat"

// maxCachedBatches bounds how many batch sizes a layer caches a buffer
// for. Twig's steady state alternates exactly two — one-row action
// selection and minibatch training — so the bound only matters for
// callers that churn through many shapes; their evicted buffers recycle
// through the shared mat scratch pool instead of the garbage collector.
const maxCachedBatches = 4

// workspace caches one reusable matrix per batch size (row count). A
// layer owns one workspace per buffer it previously allocated fresh on
// every call; in steady state get is a map hit and performs zero heap
// allocations. Workspaces are not safe for concurrent use — a network
// must be driven from one goroutine at a time, as was already true of
// the cached activations.
type workspace struct {
	byRows map[int]*mat.Matrix
}

// get returns the cached rows×cols buffer, allocating (via the shared
// scratch pool) on first use of a batch size. The contents are
// unspecified; callers overwrite every element or zero it explicitly.
func (w *workspace) get(rows, cols int) *mat.Matrix {
	m := w.byRows[rows]
	if m != nil && m.Cols == cols {
		return m
	}
	if w.byRows == nil {
		w.byRows = make(map[int]*mat.Matrix, 2)
	}
	if m != nil {
		mat.PutScratch(m)
	} else if len(w.byRows) >= maxCachedBatches {
		for r, old := range w.byRows {
			if r != rows {
				mat.PutScratch(old)
				delete(w.byRows, r)
				break
			}
		}
	}
	m = mat.GetScratch(rows, cols)
	w.byRows[rows] = m
	return m
}
