package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/twig-sched/twig/internal/mat"
)

// ParamSnapshot is the serialisable form of one parameter tensor.
type ParamSnapshot struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Snapshot captures the current values of params. The result is
// independent of the live network and safe to mutate or persist.
func Snapshot(params []*Param) []ParamSnapshot {
	out := make([]ParamSnapshot, len(params))
	for i, p := range params {
		out[i] = ParamSnapshot{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: mat.Clone(p.Value.Data),
		}
	}
	return out
}

// Restore loads a snapshot back into params. Shapes must match; names
// are checked to catch architecture drift between save and load, and
// every error says exactly which parameter disagreed and how.
func Restore(params []*Param, snap []ParamSnapshot) error {
	if len(params) != len(snap) {
		return fmt.Errorf("nn: snapshot has %d params %v, network has %d params %v",
			len(snap), snapshotNames(snap), len(params), paramNames(params))
	}
	for i, p := range params {
		s := snap[i]
		if p.Name != s.Name {
			return fmt.Errorf("nn: param %d is %q in the network but %q in the snapshot", i, p.Name, s.Name)
		}
		if p.Value.Rows != s.Rows || p.Value.Cols != s.Cols {
			return fmt.Errorf("nn: param %q is %dx%d in the network but %dx%d in the snapshot",
				p.Name, p.Value.Rows, p.Value.Cols, s.Rows, s.Cols)
		}
		if len(s.Data) != s.Rows*s.Cols {
			return fmt.Errorf("nn: param %q snapshot carries %d values for shape %dx%d",
				p.Name, len(s.Data), s.Rows, s.Cols)
		}
		copy(p.Value.Data, s.Data)
	}
	return nil
}

func paramNames(params []*Param) []string {
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return names
}

func snapshotNames(snap []ParamSnapshot) []string {
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	return names
}

// Save gob-encodes a snapshot of params to w.
func Save(w io.Writer, params []*Param) error {
	return gob.NewEncoder(w).Encode(Snapshot(params))
}

// Load gob-decodes a snapshot from r into params.
func Load(r io.Reader, params []*Param) error {
	var snap []ParamSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	return Restore(params, snap)
}
