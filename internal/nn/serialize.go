package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/twig-sched/twig/internal/mat"
)

// ParamSnapshot is the serialisable form of one parameter tensor.
type ParamSnapshot struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Snapshot captures the current values of params. The result is
// independent of the live network and safe to mutate or persist.
func Snapshot(params []*Param) []ParamSnapshot {
	out := make([]ParamSnapshot, len(params))
	for i, p := range params {
		out[i] = ParamSnapshot{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: mat.Clone(p.Value.Data),
		}
	}
	return out
}

// Restore loads a snapshot back into params. Shapes must match; names are
// checked to catch architecture drift between save and load.
func Restore(params []*Param, snap []ParamSnapshot) error {
	if len(params) != len(snap) {
		return fmt.Errorf("nn: snapshot has %d params, network has %d", len(snap), len(params))
	}
	for i, p := range params {
		s := snap[i]
		if p.Value.Rows != s.Rows || p.Value.Cols != s.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d != snapshot %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, s.Rows, s.Cols)
		}
		if p.Name != s.Name {
			return fmt.Errorf("nn: param %q does not match snapshot entry %q", p.Name, s.Name)
		}
		copy(p.Value.Data, s.Data)
	}
	return nil
}

// Save gob-encodes a snapshot of params to w.
func Save(w io.Writer, params []*Param) error {
	return gob.NewEncoder(w).Encode(Snapshot(params))
}

// Load gob-decodes a snapshot from r into params.
func Load(r io.Reader, params []*Param) error {
	var snap []ParamSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	return Restore(params, snap)
}
