package nn

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/mat"
)

// EncodeParams writes the full learnable state of params: values plus
// the Adam first/second moment estimates when the optimiser has
// allocated them. Gradients are transient (rebuilt by the next backward
// pass) and are not captured.
func EncodeParams(e *checkpoint.Encoder, params []*Param) {
	e.Int(len(params))
	for _, p := range params {
		e.String(p.Name)
		e.Int(p.Value.Rows)
		e.Int(p.Value.Cols)
		e.F64s(p.Value.Data)
		if p.m != nil {
			e.Bool(true)
			e.F64s(p.m.Data)
			e.F64s(p.v.Data)
		} else {
			e.Bool(false)
		}
	}
}

// DecodeParams restores state written by EncodeParams into a network of
// the same architecture, validating each parameter's name and shape so
// a mismatched restore says exactly which tensor disagrees.
func DecodeParams(d *checkpoint.Decoder, params []*Param) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, network has %d", n, len(params))
	}
	for i, p := range params {
		name := d.String()
		rows, cols := d.Int(), d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: param %d is %q in checkpoint, %q in network", i, name, p.Name)
		}
		if rows != p.Value.Rows || cols != p.Value.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d in checkpoint, %dx%d in network",
				name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		vals := d.F64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(vals) != rows*cols {
			return fmt.Errorf("nn: param %q has %d values for shape %dx%d", name, len(vals), rows, cols)
		}
		copy(p.Value.Data, vals)
		hasMoments := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if !hasMoments {
			p.m, p.v = nil, nil
			continue
		}
		m, v := d.F64s(), d.F64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(m) != rows*cols || len(v) != rows*cols {
			return fmt.Errorf("nn: param %q moment lengths %d/%d for shape %dx%d",
				name, len(m), len(v), rows, cols)
		}
		if p.m == nil && !p.adoptMoments() {
			p.m = mat.New(rows, cols)
			p.v = mat.New(rows, cols)
		}
		copy(p.m.Data, m)
		copy(p.v.Data, v)
	}
	return nil
}

// EncodeState writes the optimiser's bias-correction timestep. The
// hyper-parameters (LR, betas, clipping) are configuration and are
// re-supplied at construction.
func (a *Adam) EncodeState(e *checkpoint.Encoder) {
	e.Int(a.step)
}

// DecodeState restores the optimiser timestep.
func (a *Adam) DecodeState(d *checkpoint.Decoder) error {
	step := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("nn: negative Adam step %d in checkpoint", step)
	}
	a.step = step
	return nil
}
