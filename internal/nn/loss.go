package nn

import "github.com/twig-sched/twig/internal/mat"

// MSE returns the mean-squared-error ½·mean((pred−target)²) together with
// the gradient of that loss with respect to pred. The ½ factor gives the
// clean gradient (pred−target)/N.
func MSE(pred, target *mat.Matrix) (loss float64, grad *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	n := float64(len(pred.Data))
	grad = mat.New(pred.Rows, pred.Cols)
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += 0.5 * d * d
		grad.Data[i] = d / n
	}
	return loss / n, grad
}

// WeightedMSE is MSE with a per-sample weight (importance-sampling weights
// from prioritised replay). weights has one entry per row of pred; every
// column of a row shares its weight. It also returns the per-row absolute
// TD errors used to update replay priorities.
func WeightedMSE(pred, target *mat.Matrix, weights []float64) (loss float64, grad *mat.Matrix, absErr []float64) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: WeightedMSE shape mismatch")
	}
	if len(weights) != pred.Rows {
		panic("nn: WeightedMSE weights length mismatch")
	}
	n := float64(len(pred.Data))
	grad = mat.New(pred.Rows, pred.Cols)
	absErr = make([]float64, pred.Rows)
	for r := 0; r < pred.Rows; r++ {
		w := weights[r]
		var rowAbs float64
		for c := 0; c < pred.Cols; c++ {
			i := r*pred.Cols + c
			d := pred.Data[i] - target.Data[i]
			loss += 0.5 * w * d * d
			grad.Data[i] = w * d / n
			if a := d; a < 0 {
				rowAbs -= a
			} else {
				rowAbs += a
			}
		}
		absErr[r] = rowAbs / float64(pred.Cols)
	}
	return loss / n, grad, absErr
}
