// Package rng provides a serializable random source: the stdlib
// generator wrapped in a draw counter, so a stream's exact position can
// be checkpointed as (seed, count) and restored by reseeding and
// fast-forwarding. The wrapper forwards Int63 and Uint64 unchanged —
// every stream produced through this package is bit-identical to one
// built directly on math/rand with the same seed, which is what lets
// checkpointing slot under the existing deterministic simulator and
// agents without perturbing a single historical draw.
package rng

import (
	"fmt"
	"math/rand"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// maxFastForward bounds the draw count accepted from a checkpoint.
// Legitimate runs stay far below this (the hottest stream draws a few
// per request-second); a corrupt or hostile count must error instead of
// spinning the restore for hours.
const maxFastForward = 1 << 33

// Source is a counting rand.Source64. Both Int63 and Uint64 advance the
// underlying stdlib generator exactly one step, so a single counter
// captures the stream position regardless of which mix of calls
// consumed it.
type Source struct {
	seed  int64
	count uint64
	src   rand.Source64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws the next value, advancing the counter.
func (s *Source) Int63() int64 {
	s.count++
	return s.src.Int63()
}

// Uint64 draws the next value, advancing the counter.
func (s *Source) Uint64() uint64 {
	s.count++
	return s.src.Uint64()
}

// Seed resets the stream to a fresh seed with a zero counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.count = 0
	s.src.Seed(seed)
}

// Pos returns the stream position as (seed, draws since seeding).
func (s *Source) Pos() (seed int64, count uint64) { return s.seed, s.count }

// EncodeState writes the stream position.
func (s *Source) EncodeState(e *checkpoint.Encoder) {
	e.I64(s.seed)
	e.U64(s.count)
}

// DecodeState restores the stream position by reseeding and replaying
// count draws. The live generator afterwards produces exactly the draws
// the encoded one would have produced next.
func (s *Source) DecodeState(d *checkpoint.Decoder) error {
	seed := d.I64()
	count := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if count > maxFastForward {
		return fmt.Errorf("rng: draw count %d exceeds fast-forward limit %d (corrupt checkpoint?)", count, uint64(maxFastForward))
	}
	s.Seed(seed)
	for i := uint64(0); i < count; i++ {
		s.src.Uint64()
	}
	s.count = count
	return nil
}

// Rand couples a *rand.Rand with its counting source so call sites keep
// the full math/rand API while the stream stays checkpointable.
type Rand struct {
	*rand.Rand
	src *Source
}

// New returns a Rand whose stream is bit-identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	s := NewSource(seed)
	return &Rand{Rand: rand.New(s), src: s}
}

// Source returns the counting source for checkpointing.
func (r *Rand) Source() *Source { return r.src }
