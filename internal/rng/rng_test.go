package rng

import (
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// The wrapper must not perturb the stream: every derived draw type has
// to match a raw math/rand generator with the same seed.
func TestStreamMatchesStdlib(t *testing.T) {
	ours := New(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if a, b := ours.Float64(), ref.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 1:
			if a, b := ours.Intn(97), ref.Intn(97); a != b {
				t.Fatalf("Intn diverged at draw %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := ours.NormFloat64(), ref.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 3:
			if a, b := ours.Uint64(), ref.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at draw %d: %d vs %d", i, a, b)
			}
		case 4:
			if a, b := ours.ExpFloat64(), ref.ExpFloat64(); a != b {
				t.Fatalf("ExpFloat64 diverged at draw %d: %v vs %v", i, a, b)
			}
		}
	}
}

// Restore mid-stream and check the continuation is the exact suffix the
// uninterrupted generator produces.
func TestRoundTripResumesExactly(t *testing.T) {
	orig := New(7)
	for i := 0; i < 137; i++ {
		orig.Float64()
		if i%3 == 0 {
			orig.NormFloat64() // variable draws per call via rejection sampling
		}
	}
	e := checkpoint.NewEncoder()
	orig.Source().EncodeState(e)

	restored := New(999) // wrong seed, wrong position: DecodeState must fix both
	d := checkpoint.NewDecoder(e.Bytes())
	if err := restored.Source().DecodeState(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if a, b := orig.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("diverged %d draws after restore: %d vs %d", i, a, b)
		}
	}
	seed, _ := restored.Source().Pos()
	if seed != 7 {
		t.Fatalf("restored seed %d, want 7", seed)
	}
}

func TestDecodeRejectsHostileCount(t *testing.T) {
	e := checkpoint.NewEncoder()
	e.I64(1)
	e.U64(1 << 60) // absurd draw count must error, not hang
	d := checkpoint.NewDecoder(e.Bytes())
	if err := NewSource(0).DecodeState(d); err == nil {
		t.Fatal("hostile draw count accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	d := checkpoint.NewDecoder([]byte{1, 2, 3})
	if err := NewSource(0).DecodeState(d); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
