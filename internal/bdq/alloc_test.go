package bdq

import (
	"testing"

	"github.com/twig-sched/twig/internal/replay"
)

// TestAgentObserveZeroAlloc pins the workspace refactor end to end: a
// warm Agent.Observe — store the transition, sample a prioritised
// minibatch, double-DQN forward/backward and the Adam step — performs
// zero heap allocations.
func TestAgentObserveZeroAlloc(t *testing.T) {
	spec := Spec{
		StateDim:     12,
		Agents:       2,
		Dims:         []int{6, 5},
		SharedHidden: []int{32, 16},
		BranchHidden: 8,
		Dropout:      0.5,
	}
	a := NewAgent(AgentConfig{
		Spec:           spec,
		BatchSize:      16,
		ReplayCapacity: 4096,
		UsePER:         true,
		Seed:           3,
	})
	state := make([]float64, spec.StateDim)
	next := make([]float64, spec.StateDim)
	for i := range state {
		state[i] = 0.2
		next[i] = 0.25
	}
	tr := replay.Transition{
		State:     state,
		Actions:   []int{1, 2, 3, 4},
		Rewards:   []float64{1, 1},
		NextState: next,
	}
	for i := 0; i < 3*16; i++ {
		a.Observe(tr)
	}
	allocs := testing.AllocsPerRun(20, func() {
		a.Observe(tr)
	})
	if allocs != 0 {
		t.Fatalf("warm Agent.Observe allocates %.1f times per run, want 0", allocs)
	}
}

// TestTrainStepWorkspaceReuseMatchesFresh verifies that the reused
// TrainStep scratch does not leak state between steps: two agents with
// identical seeds and inputs stay in lockstep across many training steps
// (the second agent is driven through the same Observe sequence).
func TestTrainStepWorkspaceReuseMatchesFresh(t *testing.T) {
	build := func() *Agent {
		return NewAgent(AgentConfig{
			Spec: Spec{
				StateDim:     8,
				Agents:       1,
				Dims:         []int{4, 3},
				SharedHidden: []int{16},
				BranchHidden: 8,
			},
			BatchSize:      8,
			ReplayCapacity: 512,
			UsePER:         true,
			Seed:           11,
		})
	}
	a1, a2 := build(), build()
	state := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 64; i++ {
		next := []float64{0, 1, 2, 3, 4, 5, 6, float64(i % 7)}
		tr := replay.Transition{State: state, Actions: []int{i % 4, i % 3}, Rewards: []float64{float64(i % 3)}, NextState: next}
		l1 := a1.Observe(tr)
		l2 := a2.Observe(tr)
		if l1 != l2 {
			t.Fatalf("step %d: losses diverged: %v vs %v", i, l1, l2)
		}
		state = next
	}
	q1 := a1.QValues(state)
	q2 := a2.QValues(state)
	for k := range q1 {
		for d := range q1[k] {
			for j := range q1[k][d] {
				if q1[k][d][j] != q2[k][d][j] {
					t.Fatalf("Q[%d][%d][%d] diverged: %v vs %v", k, d, j, q1[k][d][j], q2[k][d][j])
				}
			}
		}
	}
}
