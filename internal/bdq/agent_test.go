package bdq

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/replay"
)

func TestEpsilonSchedule(t *testing.T) {
	e := EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.01, MidStep: 100, EndStep: 200}
	if e.At(0) != 1 {
		t.Fatalf("At(0) = %v", e.At(0))
	}
	if got := e.At(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("At(50) = %v", got)
	}
	if got := e.At(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("At(100) = %v", got)
	}
	if got := e.At(150); math.Abs(got-0.055) > 1e-12 {
		t.Fatalf("At(150) = %v", got)
	}
	if e.At(500) != 0.01 {
		t.Fatalf("At(500) = %v", e.At(500))
	}
	zero := EpsilonSchedule{End: 0.05}
	if zero.At(10) != 0.05 {
		t.Fatal("degenerate schedule should return End")
	}
}

func TestAgentConfigDefaults(t *testing.T) {
	c := AgentConfig{Spec: smallSpec()}.Defaults()
	if c.Gamma != 0.99 || c.LearningRate != 0.0025 || c.BatchSize != 64 ||
		c.TargetSync != 150 || c.ReplayCapacity != 1_000_000 ||
		c.PERAlpha != 0.6 || c.PERBeta0 != 0.4 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Epsilon.MidStep != 10_000 || c.Epsilon.EndStep != 25_000 {
		t.Fatalf("epsilon defaults = %+v", c.Epsilon)
	}
}

func testAgentConfig(seed int64) AgentConfig {
	return AgentConfig{
		Spec: Spec{
			StateDim:     4,
			Agents:       2,
			Dims:         []int{3, 2},
			SharedHidden: []int{24, 16},
			BranchHidden: 12,
		},
		LearningRate: 0.005,
		BatchSize:    16,
		TargetSync:   25,
		UsePER:       true,
		Epsilon:      EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.02, MidStep: 300, EndStep: 600},
		Seed:         seed,
	}
}

func TestAgentActionShapesAndRanges(t *testing.T) {
	a := NewAgent(testAgentConfig(1))
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 50; i++ {
		acts := a.SelectActions(state)
		if len(acts) != 2 {
			t.Fatalf("agents = %d", len(acts))
		}
		for _, per := range acts {
			if per[0] < 0 || per[0] >= 3 || per[1] < 0 || per[1] >= 2 {
				t.Fatalf("out-of-range actions %v", per)
			}
		}
	}
	if a.Step() != 50 {
		t.Fatalf("Step = %d", a.Step())
	}
	// SelectGreedy must not advance the step counter.
	a.SelectGreedy(state)
	if a.Step() != 50 {
		t.Fatal("SelectGreedy advanced step counter")
	}
}

func TestAgentObservePanicsOnBadTransition(t *testing.T) {
	a := NewAgent(testAgentConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Observe(replay.Transition{
		State:     []float64{0, 0, 0, 0},
		Actions:   []int{1}, // want 2 agents × 2 dims = 4
		Rewards:   []float64{0, 0},
		NextState: []float64{0, 0, 0, 0},
	})
}

// TestAgentLearnsContextualBandit: two agents, state bit s_k tells agent
// k which action of dimension 0 is rewarded. After training, the greedy
// policy must match the context for both agents — this exercises the
// whole pipeline: PER, target net, dueling backprop, per-agent heads.
func TestAgentLearnsContextualBandit(t *testing.T) {
	cfg := testAgentConfig(7)
	a := NewAgent(cfg)
	rng := rand.New(rand.NewSource(42))

	rewardFor := func(state []float64, acts [][]int) []float64 {
		r := make([]float64, 2)
		for k := 0; k < 2; k++ {
			want := 0
			if state[k] > 0.5 {
				want = 2
			}
			if acts[k][0] == want {
				r[k] = 1
			} else {
				r[k] = -1
			}
		}
		return r
	}
	newState := func() []float64 {
		return []float64{float64(rng.Intn(2)), float64(rng.Intn(2)), 0.5, 0.5}
	}

	state := newState()
	for step := 0; step < 900; step++ {
		acts := a.SelectActions(state)
		r := rewardFor(state, acts)
		next := newState()
		flat := []int{acts[0][0], acts[0][1], acts[1][0], acts[1][1]}
		a.Observe(replay.Transition{
			State: state, Actions: flat, Rewards: r, NextState: next,
		})
		state = next
	}

	correct := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		s := newState()
		acts := a.SelectGreedy(s)
		r := rewardFor(s, acts)
		if r[0] > 0 {
			correct++
		}
		if r[1] > 0 {
			correct++
		}
	}
	frac := float64(correct) / (2 * trials)
	if frac < 0.9 {
		t.Fatalf("greedy policy correct %.2f of the time, want ≥ 0.9", frac)
	}
}

func TestAgentSaveLoadRoundtrip(t *testing.T) {
	a := NewAgent(testAgentConfig(3))
	state := []float64{0.3, 0.6, 0.1, 0.9}
	// Perturb weights via a few training steps.
	for i := 0; i < 40; i++ {
		acts := a.SelectActions(state)
		flat := []int{acts[0][0], acts[0][1], acts[1][0], acts[1][1]}
		a.Observe(replay.Transition{State: state, Actions: flat, Rewards: []float64{1, -1}, NextState: state})
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(testAgentConfig(99))
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	ga := a.SelectGreedy(state)
	gb := b.SelectGreedy(state)
	for k := range ga {
		for d := range ga[k] {
			if ga[k][d] != gb[k][d] {
				t.Fatalf("greedy actions differ after load: %v vs %v", ga, gb)
			}
		}
	}
}

func TestAgentTransferResetsExploration(t *testing.T) {
	a := NewAgent(testAgentConfig(4))
	state := []float64{0.1, 0.1, 0.1, 0.1}
	for i := 0; i < 700; i++ {
		a.SelectActions(state)
	}
	before := a.Epsilon()
	if before > 0.05 {
		t.Fatalf("epsilon before transfer = %v", before)
	}
	a.Transfer(0)
	if a.Epsilon() != 1 {
		t.Fatalf("epsilon after Transfer(0) = %v", a.Epsilon())
	}
}

func TestFlatDQNEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFlatDQN(4, []int{18, 9}, []int{8}, rng)
	if f.NumActions() != 162 {
		t.Fatalf("NumActions = %d", f.NumActions())
	}
	for idx := 0; idx < 162; idx += 13 {
		if got := f.Encode(f.Decode(idx)); got != idx {
			t.Fatalf("Encode(Decode(%d)) = %d", idx, got)
		}
	}
	acts := f.Decode(161)
	if acts[0] != 17 || acts[1] != 8 {
		t.Fatalf("Decode(161) = %v", acts)
	}
}

func TestQTableEntriesMatchesPaperExample(t *testing.T) {
	// Paper: 25 buckets × 3^30 entries ≈ 5.15e15.
	got := QTableEntries(25, 30, 3)
	want := 25 * math.Pow(3, 30)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("QTableEntries = %v, want %v", got, want)
	}
	// Memory in the order of TBs at 8 bytes per entry, as claimed.
	if got*8 < 1e15 {
		t.Fatal("paper example should be petabyte-scale raw, TB-scale with any packing")
	}
}

// TestBranchingVsFlatMemory: the headline memory-complexity claim — the
// BDQ grows linearly in dimensions while the flat DQN grows
// exponentially.
func TestBranchingVsFlatMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := Spec{
		StateDim:     11,
		Agents:       1,
		Dims:         []int{30, 30, 30},
		SharedHidden: []int{512, 256},
		BranchHidden: 128,
	}
	b := NewNetwork(spec, rng)
	f := NewFlatDQN(11, []int{30, 30, 30}, []int{512, 256}, rng)
	if f.NumActions() != 27000 {
		t.Fatalf("flat actions = %d", f.NumActions())
	}
	if b.NumParams() >= f.NumParams() {
		t.Fatalf("BDQ params %d should be < flat DQN params %d", b.NumParams(), f.NumParams())
	}
	// Twig-S claim: under 5 MB for D=3, N=30.
	if b.MemoryBytes() > 5<<20 {
		t.Fatalf("BDQ memory %d B exceeds 5 MB", b.MemoryBytes())
	}
}
