package bdq

import (
	"fmt"
	"sync"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
	"github.com/twig-sched/twig/internal/replay"
)

// AgentPool batches the network compute of many agents that share one
// architecture. Each member keeps its own weights, replay buffer, RNG
// stream and step counters — decision-making stays per-agent — but the
// eval-mode forwards (action selection and both TD-target sweeps) run
// as one block-diagonal grouped GEMM over all queued members, against
// persistent packed weight panels instead of the streaming batch-1
// kernels.
//
// The pooled path is bit-identical to the per-agent one: the grouped
// kernels honour mat's ascending-k accumulation contract band by band,
// per-agent RNG streams are independent so cross-agent phase
// interleaving reorders no agent's own draws, and the train-mode
// forward/backward (whose Dropout draws must stay in-stream) remains
// strictly per-agent. TestPoolBitIdentical* pins this.
//
// Parameters live in a pooled nn.Arena: admit maps to slot alloc +
// adopt, drain maps to detach + release, so fleet membership churn
// reuses slabs deterministically. All methods are safe for concurrent
// use; the pool's mutex serialises flushes against attach/close.
type AgentPool struct {
	mu      sync.Mutex
	members []*PooledAgent

	// template, fixed by the first Attach
	spec  Spec
	batch int // minibatch rows, uniform across members

	arena *nn.Arena
	stack map[int]*stackWS // keyed by stacked row count

	selScratch []*PooledAgent // flushSelectLocked's member list, reused
}

// PooledAgent is an Agent whose batched operations route through an
// AgentPool. The embedded Agent's checkpoint, transfer and inspection
// API is unchanged; Observe/SelectActions/SelectGreedy are overridden
// with pooled equivalents, and the Queue*/Take* pairs expose the
// two-phase form fleet engines use to batch across members.
type PooledAgent struct {
	*Agent
	pool       *AgentPool
	slotOnline int
	slotTarget int
	onlinePack *netPack
	targetPack *netPack
	closed     bool

	// queued work and results, guarded by pool.mu
	hasObs    bool
	obs       replay.Transition
	hasSel    bool
	selState  []float64
	selGreedy bool
	acts      [][]int
	actsBuf   [2][][]int // double-buffered action storage, flipped per select flush
	actsFlip  int
	loss      float64
}

// netPack caches one network's packed weight panels, keyed by the
// network's weight epoch so any parameter mutation forces a repack.
// groups holds, per Denses() position, the ready-made grouped-GEMM
// operand (panels + bias) so the per-layer stacking loop is a struct
// copy instead of a map lookup.
type netPack struct {
	epoch  int
	packs  map[*nn.Dense]*mat.PackedB
	groups []mat.Group
}

func newNetPack() *netPack {
	return &netPack{epoch: -1, packs: make(map[*nn.Dense]*mat.PackedB)}
}

func (np *netPack) refresh(n *Network) {
	if np.epoch == n.weightEpoch {
		return
	}
	ds := n.Denses()
	if cap(np.groups) < len(ds) {
		np.groups = make([]mat.Group, len(ds))
	}
	np.groups = np.groups[:len(ds)]
	for i, d := range ds {
		pb := np.packs[d]
		if pb == nil {
			pb = &mat.PackedB{}
			np.packs[d] = pb
		}
		pb.RepackFrom(d.W.Value)
		np.groups[i] = mat.Group{Packed: pb, Bias: d.B.Value.Data}
	}
	np.epoch = n.weightEpoch
}

// stackWS holds the grouped-forward intermediates for one stacked row
// count, mirroring Network.Forward's workspace layout.
type stackWS struct {
	x      *mat.Matrix   // stacked input
	trunk  []*mat.Matrix // per shared layer
	valHid *mat.Matrix   // value-stream hidden, reused per stream
	vals   []*mat.Matrix // per value stream: rows×1
	advHid []*mat.Matrix // per dimension
	advScr []*mat.Matrix // per dimension: advantage head output scratch
	out   *Output // stacked Q
	means []float64
	pks   []*netPack // per-member pack caches, resolved once per eval

	// Layer-group cache: per dense position, the grouped-GEMM operand
	// list for the member set the cache was built against. Rebuilt only
	// when membership, network side (online/target) or any member's
	// weight epoch changes — a greedy select loop rebuilds never, so the
	// hot flush writes no pointer-bearing structs (no GC write
	// barriers).
	lgGroups [][]mat.Group
	lgFor    []*PooledAgent
	lgEpochs []int
	lgTarget bool
	lgValid  bool
}

// NewAgentPool returns an empty pool; the first Attach fixes the
// architecture template.
func NewAgentPool() *AgentPool { return &AgentPool{stack: make(map[int]*stackWS)} }

// Attach moves an agent into the pool: both networks' parameters are
// adopted into the arena (bit-identically — see nn.Arena) and the
// returned handle routes batched operations through the pool. The
// agent's spec and minibatch shape must match the pool template.
func (p *AgentPool) Attach(a *Agent) *PooledAgent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.arena == nil {
		p.spec = a.cfg.Spec
		p.batch = a.cfg.BatchSize
		p.arena = nn.NewArena(nn.ShapesOf(a.online.Params()), 0)
	}
	if !specEqual(p.spec, a.cfg.Spec) || p.batch != a.cfg.BatchSize {
		panic(fmt.Sprintf("bdq: pool template (spec %+v, batch %d) does not match agent (spec %+v, batch %d)",
			p.spec, p.batch, a.cfg.Spec, a.cfg.BatchSize))
	}
	pa := &PooledAgent{
		Agent:      a,
		pool:       p,
		slotOnline: p.arena.Alloc(),
		slotTarget: p.arena.Alloc(),
		onlinePack: newNetPack(),
		targetPack: newNetPack(),
	}
	p.arena.Adopt(pa.slotOnline, a.online.Params())
	p.arena.Adopt(pa.slotTarget, a.target.Params())
	p.members = append(p.members, pa)
	return pa
}

func specEqual(a, b Spec) bool {
	if a.StateDim != b.StateDim || a.Agents != b.Agents || a.BranchHidden != b.BranchHidden ||
		a.Dropout != b.Dropout || a.SharedValue != b.SharedValue ||
		len(a.Dims) != len(b.Dims) || len(a.SharedHidden) != len(b.SharedHidden) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	for i := range a.SharedHidden {
		if a.SharedHidden[i] != b.SharedHidden[i] {
			return false
		}
	}
	return true
}

// Pool returns the AgentPool this member belongs to.
func (pa *PooledAgent) Pool() *AgentPool { return pa.pool }

// Members returns the number of live members.
func (p *AgentPool) Members() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// Close drains the member out of the pool: its parameters are detached
// from the arena (deep-copied, so the agent remains fully usable and
// checkpointable standalone) and the slots are released for reuse.
// Idempotent.
func (pa *PooledAgent) Close() {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if pa.closed {
		return
	}
	pa.closed = true
	nn.Detach(pa.Agent.online.Params())
	nn.Detach(pa.Agent.target.Params())
	p.arena.Release(pa.slotOnline)
	p.arena.Release(pa.slotTarget)
	for i, m := range p.members {
		if m == pa {
			p.members = append(p.members[:i], p.members[i+1:]...)
			break
		}
	}
}

// QueueObserve queues a transition for the next FlushStep's batched
// training phase.
func (pa *PooledAgent) QueueObserve(t replay.Transition) {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.ensureOpen()
	pa.obs = t
	pa.hasObs = true
}

// QueueSelect queues an action selection (ε-greedy, or pure greedy)
// for the next FlushStep's batched selection phase. The state is
// copied.
func (pa *PooledAgent) QueueSelect(state []float64, greedy bool) {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.ensureOpen()
	if len(state) != p.spec.StateDim {
		panic(fmt.Sprintf("bdq: state dim %d != %d", len(state), p.spec.StateDim))
	}
	if pa.selState == nil {
		pa.selState = make([]float64, p.spec.StateDim)
	}
	copy(pa.selState, state)
	pa.selGreedy = greedy
	pa.hasSel = true
}

func (pa *PooledAgent) ensureOpen() {
	if pa.closed {
		panic("bdq: operation on closed pool member")
	}
}

// TakeActions returns the actions selected by the last FlushStep. The
// returned slices are double-buffered member storage: they stay valid
// through the member's next select flush and are overwritten by the one
// after that. Callers that hold actions longer must copy them.
func (pa *PooledAgent) TakeActions() [][]int {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	acts := pa.acts
	pa.acts = nil
	return acts
}

// TakeLoss returns the training loss of the last FlushStep (0 when the
// member did not train).
func (pa *PooledAgent) TakeLoss() float64 {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return pa.loss
}

// Observe is the pooled single-agent form: queue, flush, take. When
// other members have queued work it is flushed too (the batched path
// is order-preserving per member, so this is safe).
func (pa *PooledAgent) Observe(t replay.Transition) float64 {
	pa.QueueObserve(t)
	pa.pool.FlushStep()
	return pa.TakeLoss()
}

// SelectActions is the pooled ε-greedy selection for one member.
func (pa *PooledAgent) SelectActions(state []float64) [][]int {
	pa.QueueSelect(state, false)
	pa.pool.FlushStep()
	return pa.TakeActions()
}

// SelectGreedy is the pooled pure-exploitation selection for one
// member (no step advance, no exploration draws).
func (pa *PooledAgent) SelectGreedy(state []float64) [][]int {
	pa.QueueSelect(state, true)
	pa.pool.FlushStep()
	return pa.TakeActions()
}

// FlushStep runs all queued work: first the batched training phase
// (every queued transition is stored; warm members train with batched
// TD-target forwards and per-member backprop), then the batched
// selection phase (one grouped forward for all queued selections).
// Training precedes selection, matching the per-agent Observe-then-
// Select order of a control interval.
func (p *AgentPool) FlushStep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushTrainLocked()
	p.flushSelectLocked()
}

func (p *AgentPool) flushTrainLocked() {
	var warm []*PooledAgent
	for _, m := range p.members {
		if !m.hasObs {
			continue
		}
		m.hasObs = false
		m.loss = 0
		if m.Agent.observeAdd(m.obs) {
			warm = append(warm, m)
		}
		m.obs = replay.Transition{}
	}
	if len(warm) == 0 {
		return
	}
	maxRounds := 0
	for _, m := range warm {
		if r := m.Agent.cfg.TrainPerStep; r > maxRounds {
			maxRounds = r
		}
	}
	n := p.batch
	for round := 0; round < maxRounds; round++ {
		var act []*PooledAgent
		for _, m := range warm {
			if m.Agent.cfg.TrainPerStep > round {
				act = append(act, m)
			}
		}
		if len(act) == 0 {
			break
		}
		// Phase 1: per-member minibatch sampling (own RNG streams).
		for _, m := range act {
			m.Agent.trainWorkspace()
			if got := m.Agent.trainSample(); got != n {
				panic(fmt.Sprintf("bdq: pooled member sampled %d rows, pool batch is %d", got, n))
			}
		}
		// Phase 2+3: batched online forward on s′, per-member argmax.
		ws := p.stackWorkspace(len(act) * n)
		for s, m := range act {
			x := ws.x.RowsView(s*n, (s+1)*n)
			x.CopyFrom(m.Agent.train.next)
		}
		onlineOut := p.stackedEval(act, false, ws, n)
		for s, m := range act {
			m.Agent.trainArgmax(bandOutput(onlineOut, s, n), n)
		}
		// Phase 4: batched target forward on s′ (same stacked input).
		targetOut := p.stackedEval(act, true, ws, n)
		// Phases 5–7: per-member targets, train-mode backprop (Dropout
		// draws stay in each member's own stream) and commit.
		for s, m := range act {
			tv := bandOutput(targetOut, s, n)
			m.Agent.trainTargets(tv, n)
			m.loss = m.Agent.trainBackprop(tv, n)
			m.Agent.trainCommit()
		}
	}
}

func (p *AgentPool) flushSelectLocked() {
	sel := p.selScratch[:0]
	for _, m := range p.members {
		if m.hasSel {
			sel = append(sel, m)
		}
	}
	p.selScratch = sel
	if len(sel) == 0 {
		return
	}
	ws := p.stackWorkspace(len(sel))
	for s, m := range sel {
		copy(ws.x.Row(s), m.selState)
	}
	out := p.stackedEval(sel, false, ws, 1)
	K, D := p.spec.Agents, len(p.spec.Dims)
	for s, m := range sel {
		m.actsFlip ^= 1
		acts := m.actsBuf[m.actsFlip]
		if acts == nil {
			acts = make([][]int, K)
			for k := range acts {
				acts[k] = make([]int, D)
			}
			m.actsBuf[m.actsFlip] = acts
		}
		for k := 0; k < K; k++ {
			for d := 0; d < D; d++ {
				acts[k][d] = mat.Argmax(out.Q[k][d].Row(s))
			}
		}
		if !m.selGreedy {
			acts = m.Agent.applyExploration(acts)
		}
		m.acts = acts
		m.hasSel = false
	}
}

// stackWorkspace returns the grouped-forward workspace for the given
// stacked row count, building it on first use.
func (p *AgentPool) stackWorkspace(rows int) *stackWS {
	if ws := p.stack[rows]; ws != nil {
		return ws
	}
	spec := p.spec
	numValues := spec.Agents
	if spec.SharedValue {
		numValues = 1
	}
	ws := &stackWS{
		x:      mat.New(rows, spec.StateDim),
		valHid: mat.New(rows, spec.BranchHidden),
		means:  make([]float64, rows),
		out:    &Output{Q: make([][]*mat.Matrix, spec.Agents)},
	}
	for _, h := range spec.SharedHidden {
		ws.trunk = append(ws.trunk, mat.New(rows, h))
	}
	for v := 0; v < numValues; v++ {
		ws.vals = append(ws.vals, mat.New(rows, 1))
	}
	for _, na := range spec.Dims {
		ws.advHid = append(ws.advHid, mat.New(rows, spec.BranchHidden))
		ws.advScr = append(ws.advScr, mat.New(rows, na))
	}
	for k := range ws.out.Q {
		ws.out.Q[k] = make([]*mat.Matrix, len(spec.Dims))
		for d, na := range spec.Dims {
			ws.out.Q[k][d] = mat.New(rows, na)
		}
	}
	p.stack[rows] = ws
	return ws
}

// pack returns the member's pack cache for the online or target
// network, refreshed to the network's current weight epoch.
func (pa *PooledAgent) pack(target bool) *netPack {
	if target {
		pa.targetPack.refresh(pa.Agent.target)
		return pa.targetPack
	}
	pa.onlinePack.refresh(pa.Agent.online)
	return pa.onlinePack
}

func (pa *PooledAgent) net(target bool) *Network {
	if target {
		return pa.Agent.target
	}
	return pa.Agent.online
}

// stackedEval runs the eval-mode forward of every member's online (or
// target) network over the stacked input ws.x, one grouped GEMM per
// layer position, into the stacked Output. The dueling aggregation is
// element-for-element the arithmetic of Network.Forward, and each
// member's band is bit-identical to its own Forward over its rows.
func (p *AgentPool) stackedEval(members []*PooledAgent, target bool, ws *stackWS, rowsPer int) *Output {
	spec := p.spec
	T := len(spec.SharedHidden)
	K, D := spec.Agents, len(spec.Dims)
	numValues := K
	if spec.SharedValue {
		numValues = 1
	}
	if cap(ws.pks) < len(members) {
		ws.pks = make([]*netPack, len(members))
	}
	pks := ws.pks[:len(members)]
	for s, m := range members {
		pks[s] = m.pack(target) // refresh once; layers read the group cache
	}
	// All members share one architecture, so layer activations (FuseReLU)
	// are read from the first member's network.
	ref := members[0].net(target).Denses()
	ws.refreshLayerGroups(members, pks, target, len(ref))
	layer := func(dst, src *mat.Matrix, idx int) {
		var act mat.Activation = mat.ActIdentity
		if ref[idx].FuseReLU {
			act = mat.ActReLU
		}
		mat.MulGroupedBiasAct(dst, src, rowsPer, ws.lgGroups[idx], act)
	}

	cur := ws.x
	for li := 0; li < T; li++ {
		layer(ws.trunk[li], cur, li)
		cur = ws.trunk[li]
	}
	z := cur
	for v := 0; v < numValues; v++ {
		layer(ws.valHid, z, T+2*v)
		layer(ws.vals[v], ws.valHid, T+2*v+1)
	}
	for d := 0; d < D; d++ {
		layer(ws.advHid[d], z, T+2*numValues+d)
	}
	for k := 0; k < K; k++ {
		v := ws.vals[0]
		if !spec.SharedValue {
			v = ws.vals[k]
		}
		for d := 0; d < D; d++ {
			layer(ws.advScr[d], ws.advHid[d], T+2*numValues+D+k*D+d)
			a := ws.advScr[d]
			q := ws.out.Q[k][d]
			a.RowMeansInto(ws.means)
			for b := 0; b < a.Rows; b++ {
				vb := v.At(b, 0)
				arow := a.Row(b)
				qrow := q.Row(b)
				for j := range qrow {
					qrow[j] = vb + arow[j] - ws.means[b]
				}
			}
		}
	}
	return ws.out
}

// refreshLayerGroups revalidates the workspace's per-layer group lists
// against the current member set and weight epochs, rebuilding them
// only on a change. Steady-state greedy selection (no weight updates,
// stable membership) reuses the cache untouched.
func (ws *stackWS) refreshLayerGroups(members []*PooledAgent, pks []*netPack, target bool, layers int) {
	valid := ws.lgValid && ws.lgTarget == target && len(ws.lgFor) == len(members)
	if valid {
		for s, m := range members {
			if ws.lgFor[s] != m || ws.lgEpochs[s] != pks[s].epoch {
				valid = false
				break
			}
		}
	}
	if valid {
		return
	}
	if len(ws.lgGroups) != layers {
		ws.lgGroups = make([][]mat.Group, layers)
	}
	for idx := 0; idx < layers; idx++ {
		g := ws.lgGroups[idx]
		if cap(g) < len(members) {
			g = make([]mat.Group, len(members))
		}
		g = g[:len(members)]
		for s := range pks {
			g[s] = pks[s].groups[idx]
		}
		ws.lgGroups[idx] = g
	}
	ws.lgFor = append(ws.lgFor[:0], members...)
	if cap(ws.lgEpochs) < len(members) {
		ws.lgEpochs = make([]int, len(members))
	}
	ws.lgEpochs = ws.lgEpochs[:len(members)]
	for s := range pks {
		ws.lgEpochs[s] = pks[s].epoch
	}
	ws.lgTarget = target
	ws.lgValid = true
}

// bandOutput views member band s (rows [s·n, (s+1)·n)) of a stacked
// Output.
func bandOutput(out *Output, s, n int) *Output {
	Q := make([][]*mat.Matrix, len(out.Q))
	for k := range out.Q {
		Q[k] = make([]*mat.Matrix, len(out.Q[k]))
		for d := range out.Q[k] {
			Q[k][d] = out.Q[k][d].RowsView(s*n, (s+1)*n)
		}
	}
	return &Output{Q: Q}
}

// Pools is a registry of agent pools keyed by architecture, so fleet
// engines whose nodes run differently shaped managers (daemon
// membership generations, heterogeneous clusters) still share a pool —
// and its arena and pack caches — between same-shaped agents.
type Pools struct {
	mu sync.Mutex
	m  map[string]*AgentPool
}

// NewPools returns an empty registry.
func NewPools() *Pools { return &Pools{m: make(map[string]*AgentPool)} }

// For returns the pool for the agent config's architecture signature,
// creating it on first use.
func (ps *Pools) For(cfg AgentConfig) *AgentPool {
	cfg = cfg.Defaults()
	key := fmt.Sprintf("%d|%d|%v|%v|%d|%g|%t|b%d",
		cfg.Spec.StateDim, cfg.Spec.Agents, cfg.Spec.Dims, cfg.Spec.SharedHidden,
		cfg.Spec.BranchHidden, cfg.Spec.Dropout, cfg.Spec.SharedValue, cfg.BatchSize)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	pool := ps.m[key]
	if pool == nil {
		pool = NewAgentPool()
		ps.m[key] = pool
	}
	return pool
}

// FlushStep flushes every pool in the registry (deterministic order is
// unnecessary: members are independent and each pool's own flush is
// order-preserving per member).
func (ps *Pools) FlushStep() {
	ps.mu.Lock()
	pools := make([]*AgentPool, 0, len(ps.m))
	for _, p := range ps.m {
		pools = append(pools, p)
	}
	ps.mu.Unlock()
	for _, p := range pools {
		p.FlushStep()
	}
}
