package bdq

import (
	"fmt"
	"sync"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
	"github.com/twig-sched/twig/internal/replay"
)

// AgentPool batches the network compute of many agents that share one
// architecture. Each member keeps its own weights, replay buffer, RNG
// stream and step counters — decision-making stays per-agent — but the
// eval-mode forwards (action selection and both TD-target sweeps) run
// as one block-diagonal grouped GEMM over all queued members, against
// persistent packed weight panels instead of the streaming batch-1
// kernels.
//
// The pooled path is bit-identical to the per-agent one: the grouped
// kernels honour mat's ascending-k accumulation contract band by band,
// per-agent RNG streams are independent so cross-agent phase
// interleaving reorders no agent's own draws, and the train-mode
// forward/backward (whose Dropout draws must stay in-stream) remains
// strictly per-agent. TestPoolBitIdentical* pins this.
//
// Parameters live in a pooled nn.Arena: admit maps to slot alloc +
// adopt, drain maps to detach + release, so fleet membership churn
// reuses slabs deterministically. All methods are safe for concurrent
// use; the pool's mutex serialises flushes against attach/close.
type AgentPool struct {
	mu      sync.Mutex
	members []*PooledAgent

	// template, fixed by the first Attach
	spec  Spec
	batch int // minibatch rows, uniform across members

	arena *nn.Arena
	stack map[int]*stackWS // keyed by stacked row count

	selScratch  []*PooledAgent // flushSelectLocked's member list, reused
	warmScratch []*PooledAgent // flushTrainLocked's stored-and-warm list, reused
	actScratch  []*PooledAgent // flushTrainLocked's per-round active list, reused
}

// PooledAgent is an Agent whose batched operations route through an
// AgentPool. The embedded Agent's checkpoint, transfer and inspection
// API is unchanged; Observe/SelectActions/SelectGreedy are overridden
// with pooled equivalents, and the Queue*/Take* pairs expose the
// two-phase form fleet engines use to batch across members.
type PooledAgent struct {
	*Agent
	pool       *AgentPool
	slotOnline int
	slotTarget int
	onlinePack *netPack
	targetPack *netPack
	closed     bool

	// cached arena slab views of the online slot, for the fused flat
	// optimiser pass (valid until Close releases the slot)
	onlineVal, onlineGrad, onlineM, onlineV []float64

	// queued work and results, guarded by pool.mu
	hasObs    bool
	obs       replay.Transition
	hasSel    bool
	selState  []float64
	selGreedy bool
	acts      [][]int
	actsBuf   [2][][]int // double-buffered action storage, flipped per select flush
	actsFlip  int
	loss      float64
}

// netPack caches one network's grouped-GEMM operands, keyed by the
// network's weight epoch so any parameter mutation forces a rebuild.
// The packed panels themselves live on the dense layers (refreshed by
// Network.ensurePacks), shared with the network's own Forward — groups
// holds, per Denses() position, the ready-made operand (panels + bias)
// so the per-layer stacking loop is a struct copy instead of a lookup.
type netPack struct {
	epoch  int
	groups []mat.Group
}

func newNetPack() *netPack { return &netPack{epoch: -1} }

func (np *netPack) refresh(n *Network) {
	if np.epoch == n.weightEpoch {
		return
	}
	n.ensurePacks()
	ds := n.Denses()
	if cap(np.groups) < len(ds) {
		np.groups = make([]mat.Group, len(ds))
	}
	np.groups = np.groups[:len(ds)]
	for i, d := range ds {
		np.groups[i] = mat.Group{Packed: d.Pack(), Bias: d.B.Value.Data}
	}
	np.epoch = n.weightEpoch
}

// stackWS holds the grouped-forward intermediates for one stacked row
// count, mirroring Network.Forward's workspace layout.
type stackWS struct {
	x      *mat.Matrix   // stacked input
	trunk  []*mat.Matrix // per shared layer
	valHid *mat.Matrix   // value-stream hidden, reused per stream
	vals   []*mat.Matrix // per value stream: rows×1
	advHid []*mat.Matrix // per dimension
	advScr []*mat.Matrix // per dimension: advantage head output scratch
	out   *Output // stacked Q
	means []float64
	pks   []*netPack // per-member pack caches, resolved once per eval

	// Layer-group cache: per dense position, the grouped-GEMM operand
	// list for the member set the cache was built against. Rebuilt only
	// when membership, network side (online/target) or any member's
	// weight epoch changes — a greedy select loop rebuilds never, so the
	// hot flush writes no pointer-bearing structs (no GC write
	// barriers).
	lgGroups [][]mat.Group
	lgFor    []*PooledAgent
	lgEpochs []int
	lgTarget bool
	lgValid  bool

	train *trainStack // lazily built grouped-training scratch
}

// trainStack holds the stacked train-mode forward activations and the
// stacked backward scratch for one stacked row count — the pooled
// equivalents of each member's layer caches and Network.bwdWS. The
// train-mode forward needs its own output (ts.q) and per-stream value
// hiddens because the TD targets keep reading the eval workspace
// (ws.out) while the loss consumes the train-mode Q.
type trainStack struct {
	q     *Output          // train-mode stacked Q
	gradQ [][]*mat.Matrix  // [K][D] rows×Dims[d] loss gradient
	z     *mat.Matrix      // trunk output feeding the streams (set per forward)

	drop []*mat.Matrix // per trunk layer: post-dropout activations
	mask []*mat.Matrix // per trunk layer: inverted-dropout masks
	valHid []*mat.Matrix // per value stream: rows×BranchHidden hidden

	sharedGrad *mat.Matrix   // rows×repr gradient entering the trunk
	gv         *mat.Matrix   // rows×1 value-stream gradient
	combined   *mat.Matrix   // rows×BranchHidden, summed over agents
	centered   []*mat.Matrix // per dimension: rows×Dims[d]
	gBH1, gBH2 *mat.Matrix   // rows×BranchHidden backward scratch
	gRepr      *mat.Matrix   // rows×repr upstream-gradient scratch
	gTrunk     []*mat.Matrix // per trunk layer: dropout-masked gradient
	gmTrunk    []*mat.Matrix // per trunk layer: ReLU-masked gradient
	gTrunkIn   []*mat.Matrix // per trunk layer li>0: rows×h_{li−1} upstream
	colSums    []float64     // widest dense output
	wg, wv     []*mat.Matrix // per-member W.Grad / W.Value operand lists

	bands []trainBand   // cached per-member band views
	xband []*mat.Matrix // per-member band views of ws.x

	// Per trunk layer, per member: band views for the train-forward
	// dropout sweep (built only when the spec has Dropout).
	dropBand, maskBand, trunkBand [][]*mat.Matrix
}

// trainBand is the band view of member s over the stacked train-mode
// output, eval target output and loss gradient — the per-member shapes
// trainTargets/trainLossGrad consume.
type trainBand struct {
	q, tgt *Output
	gq     [][]*mat.Matrix
}

// NewAgentPool returns an empty pool; the first Attach fixes the
// architecture template.
func NewAgentPool() *AgentPool { return &AgentPool{stack: make(map[int]*stackWS)} }

// Attach moves an agent into the pool: both networks' parameters are
// adopted into the arena (bit-identically — see nn.Arena) and the
// returned handle routes batched operations through the pool. The
// agent's spec and minibatch shape must match the pool template.
func (p *AgentPool) Attach(a *Agent) *PooledAgent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.arena == nil {
		p.spec = a.cfg.Spec
		p.batch = a.cfg.BatchSize
		p.arena = nn.NewArena(nn.ShapesOf(a.online.Params()), 0)
	}
	if !specEqual(p.spec, a.cfg.Spec) || p.batch != a.cfg.BatchSize {
		panic(fmt.Sprintf("bdq: pool template (spec %+v, batch %d) does not match agent (spec %+v, batch %d)",
			p.spec, p.batch, a.cfg.Spec, a.cfg.BatchSize))
	}
	pa := &PooledAgent{
		Agent:      a,
		pool:       p,
		slotOnline: p.arena.Alloc(),
		slotTarget: p.arena.Alloc(),
		onlinePack: newNetPack(),
		targetPack: newNetPack(),
	}
	p.arena.Adopt(pa.slotOnline, a.online.Params())
	p.arena.Adopt(pa.slotTarget, a.target.Params())
	pa.onlineVal, pa.onlineGrad, pa.onlineM, pa.onlineV = p.arena.SlotSlabs(pa.slotOnline)
	p.members = append(p.members, pa)
	return pa
}

func specEqual(a, b Spec) bool {
	if a.StateDim != b.StateDim || a.Agents != b.Agents || a.BranchHidden != b.BranchHidden ||
		a.Dropout != b.Dropout || a.SharedValue != b.SharedValue ||
		len(a.Dims) != len(b.Dims) || len(a.SharedHidden) != len(b.SharedHidden) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	for i := range a.SharedHidden {
		if a.SharedHidden[i] != b.SharedHidden[i] {
			return false
		}
	}
	return true
}

// Pool returns the AgentPool this member belongs to.
func (pa *PooledAgent) Pool() *AgentPool { return pa.pool }

// Members returns the number of live members.
func (p *AgentPool) Members() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// Close drains the member out of the pool: its parameters are detached
// from the arena (deep-copied, so the agent remains fully usable and
// checkpointable standalone) and the slots are released for reuse.
// Idempotent.
func (pa *PooledAgent) Close() {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if pa.closed {
		return
	}
	pa.closed = true
	nn.Detach(pa.Agent.online.Params())
	nn.Detach(pa.Agent.target.Params())
	p.arena.Release(pa.slotOnline)
	p.arena.Release(pa.slotTarget)
	for i, m := range p.members {
		if m == pa {
			p.members = append(p.members[:i], p.members[i+1:]...)
			break
		}
	}
}

// QueueObserve queues a transition for the next FlushStep's batched
// training phase.
func (pa *PooledAgent) QueueObserve(t replay.Transition) {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.queueObserveLocked(t)
}

func (pa *PooledAgent) queueObserveLocked(t replay.Transition) {
	pa.ensureOpen()
	pa.obs = t
	pa.hasObs = true
}

// QueueSelect queues an action selection (ε-greedy, or pure greedy)
// for the next FlushStep's batched selection phase. The state is
// copied.
func (pa *PooledAgent) QueueSelect(state []float64, greedy bool) {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.queueSelectLocked(state, greedy)
}

func (pa *PooledAgent) queueSelectLocked(state []float64, greedy bool) {
	pa.ensureOpen()
	if len(state) != pa.pool.spec.StateDim {
		panic(fmt.Sprintf("bdq: state dim %d != %d", len(state), pa.pool.spec.StateDim))
	}
	if pa.selState == nil {
		pa.selState = make([]float64, pa.pool.spec.StateDim)
	}
	copy(pa.selState, state)
	pa.selGreedy = greedy
	pa.hasSel = true
}

func (pa *PooledAgent) ensureOpen() {
	if pa.closed {
		panic("bdq: operation on closed pool member")
	}
}

// TakeActions returns the actions selected by the last FlushStep. The
// returned slices are double-buffered member storage: they stay valid
// through the member's next select flush and are overwritten by the one
// after that. Callers that hold actions longer must copy them.
func (pa *PooledAgent) TakeActions() [][]int {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	acts := pa.acts
	pa.acts = nil
	return acts
}

// TakeLoss returns the training loss of the last FlushStep (0 when the
// member did not train).
func (pa *PooledAgent) TakeLoss() float64 {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return pa.loss
}

// Observe is the pooled single-agent form: queue, flush, take, under
// one lock acquisition. When other members have queued work it is
// flushed too (the batched path is order-preserving per member, so
// this is safe).
func (pa *PooledAgent) Observe(t replay.Transition) float64 {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.queueObserveLocked(t)
	p.flushTrainLocked()
	p.flushSelectLocked()
	return pa.loss
}

// SelectActions is the pooled ε-greedy selection for one member.
func (pa *PooledAgent) SelectActions(state []float64) [][]int {
	return pa.selectOneLocked(state, false)
}

// SelectGreedy is the pooled pure-exploitation selection for one
// member (no step advance, no exploration draws).
func (pa *PooledAgent) SelectGreedy(state []float64) [][]int {
	return pa.selectOneLocked(state, true)
}

// selectOneLocked is the combined queue-flush-take selection path:
// identical work to QueueSelect + FlushStep + TakeActions, but with a
// single lock acquisition. When no other member has a selection
// queued, the solo fall-through runs directly on the caller's state —
// no queue round-trip, no state copy.
func (pa *PooledAgent) selectOneLocked(state []float64, greedy bool) [][]int {
	p := pa.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pa.ensureOpen()
	if len(state) != p.spec.StateDim {
		panic(fmt.Sprintf("bdq: state dim %d != %d", len(state), p.spec.StateDim))
	}
	p.flushTrainLocked()
	for _, m := range p.members {
		if m.hasSel {
			// Another member queued a selection: batch with it through
			// the grouped flush, exactly as FlushStep would.
			pa.queueSelectLocked(state, greedy)
			p.flushSelectLocked()
			acts := pa.acts
			pa.acts = nil
			return acts
		}
	}
	return p.selectSingle(pa, state, greedy)
}

// FlushStep runs all queued work: first the batched training phase
// (every queued transition is stored; warm members train with batched
// TD-target forwards and per-member backprop), then the batched
// selection phase (one grouped forward for all queued selections).
// Training precedes selection, matching the per-agent Observe-then-
// Select order of a control interval.
func (p *AgentPool) FlushStep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushTrainLocked()
	p.flushSelectLocked()
}

func (p *AgentPool) flushTrainLocked() {
	warm := p.warmScratch[:0]
	for _, m := range p.members {
		if !m.hasObs {
			continue
		}
		m.hasObs = false
		m.loss = 0
		if m.Agent.observeAdd(m.obs) {
			warm = append(warm, m)
		}
		m.obs = replay.Transition{}
	}
	p.warmScratch = warm
	if len(warm) == 0 {
		return
	}
	maxRounds := 0
	for _, m := range warm {
		if r := m.Agent.cfg.TrainPerStep; r > maxRounds {
			maxRounds = r
		}
	}
	n := p.batch
	for round := 0; round < maxRounds; round++ {
		act := p.actScratch[:0]
		for _, m := range warm {
			if m.Agent.cfg.TrainPerStep > round {
				act = append(act, m)
			}
		}
		p.actScratch = act
		if len(act) == 0 {
			break
		}
		if len(act) == 1 {
			// A lone warm member has nothing to batch against: the
			// grouped stacking would only add copy and packing overhead.
			// Run the monolithic step — bit-identical by construction
			// (the pooled phases replicate exactly this sequence).
			m := act[0]
			m.loss = m.Agent.TrainStep()
			continue
		}
		// Phase 1: per-member minibatch sampling (own RNG streams).
		for _, m := range act {
			m.Agent.trainWorkspace()
			if got := m.Agent.trainSample(); got != n {
				panic(fmt.Sprintf("bdq: pooled member sampled %d rows, pool batch is %d", got, n))
			}
		}
		// Phase 2+3: batched online forward on s′, per-member argmax.
		// stackedEval writes into ws.out, which ts.bands[s].tgt views:
		// until phase 4 overwrites it, the tgt bands hold the online
		// outputs the argmax reads.
		ws := p.stackWorkspace(len(act) * n)
		ts := ws.trainStack(p, len(act))
		for s, m := range act {
			ts.xband[s].CopyFrom(m.Agent.train.next)
		}
		p.stackedEval(act, false, ws, n)
		for s, m := range act {
			m.Agent.trainArgmax(ts.bands[s].tgt, n)
		}
		// Phase 4: batched target forward on s′ (same stacked input).
		p.stackedEval(act, true, ws, n)
		// Phase 5: per-member bootstrap targets from the target bands.
		for s, m := range act {
			m.Agent.trainTargets(ts.bands[s].tgt, n)
		}
		// Phase 6: batched train-mode forward on s (grouped GEMMs, with
		// each member's Dropout draws taken from its own stream in its
		// solo order), then per-member loss and Q-gradient extraction.
		for s, m := range act {
			ts.xband[s].CopyFrom(m.Agent.train.states)
		}
		p.stackedTrainForward(act, ws, ts, n)
		for s, m := range act {
			m.loss = m.Agent.trainLossGrad(ts.bands[s].q, ts.bands[s].tgt, ts.bands[s].gq, n)
		}
		// Phase 7: batched backward — per-member mask/bias sweeps plus
		// grouped weight-gradient and upstream-gradient GEMMs, in each
		// member's exact solo operation order.
		p.stackedBackward(act, ws, ts, n)
		// Phase 8: per-member commit, with the Adam step fused into one
		// pass over each member's contiguous arena slabs.
		for _, m := range act {
			m.Agent.trainCommitPooled(m.onlineVal, m.onlineGrad, m.onlineM, m.onlineV)
		}
	}
}

func (p *AgentPool) flushSelectLocked() {
	sel := p.selScratch[:0]
	for _, m := range p.members {
		if m.hasSel {
			sel = append(sel, m)
		}
	}
	p.selScratch = sel
	if len(sel) == 0 {
		return
	}
	if len(sel) == 1 {
		m := sel[0]
		m.acts = p.selectSingle(m, m.selState, m.selGreedy)
		m.hasSel = false
		return
	}
	ws := p.stackWorkspace(len(sel))
	for s, m := range sel {
		copy(ws.x.Row(s), m.selState)
	}
	out := p.stackedEval(sel, false, ws, 1)
	K, D := p.spec.Agents, len(p.spec.Dims)
	for s, m := range sel {
		m.actsFlip ^= 1
		acts := m.actsBuf[m.actsFlip]
		if acts == nil {
			acts = make([][]int, K)
			for k := range acts {
				acts[k] = make([]int, D)
			}
			m.actsBuf[m.actsFlip] = acts
		}
		for k := 0; k < K; k++ {
			for d := 0; d < D; d++ {
				acts[k][d] = mat.Argmax(out.Q[k][d].Row(s))
			}
		}
		if !m.selGreedy {
			acts = m.Agent.applyExploration(acts)
		}
		m.acts = acts
		m.hasSel = false
	}
}

// selectSingle is the lone-selector fall-through: skip the grouped
// stacking and run the member's own eval forward (itself on persistent
// packed panels), writing the argmax into the double-buffered action
// storage — the solo path minus its per-call allocations, bit-identical
// to both the solo and grouped paths.
func (p *AgentPool) selectSingle(m *PooledAgent, state []float64, greedy bool) [][]int {
	out := m.Agent.online.Forward(m.Agent.stateInput(state), false)
	K, D := p.spec.Agents, len(p.spec.Dims)
	m.actsFlip ^= 1
	acts := m.actsBuf[m.actsFlip]
	if acts == nil {
		acts = make([][]int, K)
		for k := range acts {
			acts[k] = make([]int, D)
		}
		m.actsBuf[m.actsFlip] = acts
	}
	for k := 0; k < K; k++ {
		for d := 0; d < D; d++ {
			acts[k][d] = mat.Argmax(out.Q[k][d].Row(0))
		}
	}
	if !greedy {
		acts = m.Agent.applyExploration(acts)
	}
	return acts
}

// stackWorkspace returns the grouped-forward workspace for the given
// stacked row count, building it on first use.
func (p *AgentPool) stackWorkspace(rows int) *stackWS {
	if ws := p.stack[rows]; ws != nil {
		return ws
	}
	spec := p.spec
	numValues := spec.Agents
	if spec.SharedValue {
		numValues = 1
	}
	ws := &stackWS{
		x:      mat.New(rows, spec.StateDim),
		valHid: mat.New(rows, spec.BranchHidden),
		means:  make([]float64, rows),
		out:    &Output{Q: make([][]*mat.Matrix, spec.Agents)},
	}
	for _, h := range spec.SharedHidden {
		ws.trunk = append(ws.trunk, mat.New(rows, h))
	}
	for v := 0; v < numValues; v++ {
		ws.vals = append(ws.vals, mat.New(rows, 1))
	}
	for _, na := range spec.Dims {
		ws.advHid = append(ws.advHid, mat.New(rows, spec.BranchHidden))
		ws.advScr = append(ws.advScr, mat.New(rows, na))
	}
	for k := range ws.out.Q {
		ws.out.Q[k] = make([]*mat.Matrix, len(spec.Dims))
		for d, na := range spec.Dims {
			ws.out.Q[k][d] = mat.New(rows, na)
		}
	}
	p.stack[rows] = ws
	return ws
}

// pack returns the member's pack cache for the online or target
// network, refreshed to the network's current weight epoch.
func (pa *PooledAgent) pack(target bool) *netPack {
	if target {
		pa.targetPack.refresh(pa.Agent.target)
		return pa.targetPack
	}
	pa.onlinePack.refresh(pa.Agent.online)
	return pa.onlinePack
}

func (pa *PooledAgent) net(target bool) *Network {
	if target {
		return pa.Agent.target
	}
	return pa.Agent.online
}

// stackedEval runs the eval-mode forward of every member's online (or
// target) network over the stacked input ws.x, one grouped GEMM per
// layer position, into the stacked Output. The dueling aggregation is
// element-for-element the arithmetic of Network.Forward, and each
// member's band is bit-identical to its own Forward over its rows.
func (p *AgentPool) stackedEval(members []*PooledAgent, target bool, ws *stackWS, rowsPer int) *Output {
	spec := p.spec
	T := len(spec.SharedHidden)
	K, D := spec.Agents, len(spec.Dims)
	numValues := K
	if spec.SharedValue {
		numValues = 1
	}
	if cap(ws.pks) < len(members) {
		ws.pks = make([]*netPack, len(members))
	}
	pks := ws.pks[:len(members)]
	for s, m := range members {
		pks[s] = m.pack(target) // refresh once; layers read the group cache
	}
	// All members share one architecture, so layer activations (FuseReLU)
	// are read from the first member's network.
	ref := members[0].net(target).Denses()
	ws.refreshLayerGroups(members, pks, target, len(ref))
	layer := func(dst, src *mat.Matrix, idx int) {
		var act mat.Activation = mat.ActIdentity
		if ref[idx].FuseReLU {
			act = mat.ActReLU
		}
		mat.MulGroupedBiasAct(dst, src, rowsPer, ws.lgGroups[idx], act)
	}

	cur := ws.x
	for li := 0; li < T; li++ {
		layer(ws.trunk[li], cur, li)
		cur = ws.trunk[li]
	}
	z := cur
	for v := 0; v < numValues; v++ {
		layer(ws.valHid, z, T+2*v)
		layer(ws.vals[v], ws.valHid, T+2*v+1)
	}
	for d := 0; d < D; d++ {
		layer(ws.advHid[d], z, T+2*numValues+d)
	}
	for k := 0; k < K; k++ {
		v := ws.vals[0]
		if !spec.SharedValue {
			v = ws.vals[k]
		}
		for d := 0; d < D; d++ {
			layer(ws.advScr[d], ws.advHid[d], T+2*numValues+D+k*D+d)
			a := ws.advScr[d]
			q := ws.out.Q[k][d]
			a.RowMeansInto(ws.means)
			for b := 0; b < a.Rows; b++ {
				vb := v.At(b, 0)
				arow := a.Row(b)
				qrow := q.Row(b)
				for j := range qrow {
					qrow[j] = vb + arow[j] - ws.means[b]
				}
			}
		}
	}
	return ws.out
}

// refreshLayerGroups revalidates the workspace's per-layer group lists
// against the current member set and weight epochs, rebuilding them
// only on a change. Steady-state greedy selection (no weight updates,
// stable membership) reuses the cache untouched.
func (ws *stackWS) refreshLayerGroups(members []*PooledAgent, pks []*netPack, target bool, layers int) {
	valid := ws.lgValid && ws.lgTarget == target && len(ws.lgFor) == len(members)
	if valid {
		for s, m := range members {
			if ws.lgFor[s] != m || ws.lgEpochs[s] != pks[s].epoch {
				valid = false
				break
			}
		}
	}
	if valid {
		return
	}
	if len(ws.lgGroups) != layers {
		ws.lgGroups = make([][]mat.Group, layers)
	}
	for idx := 0; idx < layers; idx++ {
		g := ws.lgGroups[idx]
		if cap(g) < len(members) {
			g = make([]mat.Group, len(members))
		}
		g = g[:len(members)]
		for s := range pks {
			g[s] = pks[s].groups[idx]
		}
		ws.lgGroups[idx] = g
	}
	ws.lgFor = append(ws.lgFor[:0], members...)
	if cap(ws.lgEpochs) < len(members) {
		ws.lgEpochs = make([]int, len(members))
	}
	ws.lgEpochs = ws.lgEpochs[:len(members)]
	for s := range pks {
		ws.lgEpochs[s] = pks[s].epoch
	}
	ws.lgTarget = target
	ws.lgValid = true
}

// trainStack returns the grouped-training scratch bound to this
// stacked workspace, building it on first use. The stacked row count
// fixes the member count (rows = members × pool batch), so the band
// views are carved once.
func (ws *stackWS) trainStack(p *AgentPool, members int) *trainStack {
	if ws.train != nil {
		return ws.train
	}
	spec := p.spec
	rows := ws.x.Rows
	n := p.batch
	T := len(spec.SharedHidden)
	repr := spec.SharedHidden[T-1]
	numValues := spec.Agents
	if spec.SharedValue {
		numValues = 1
	}
	ts := &trainStack{
		q:          &Output{Q: make([][]*mat.Matrix, spec.Agents)},
		gradQ:      make([][]*mat.Matrix, spec.Agents),
		sharedGrad: mat.New(rows, repr),
		gv:         mat.New(rows, 1),
		combined:   mat.New(rows, spec.BranchHidden),
		centered:   make([]*mat.Matrix, len(spec.Dims)),
		gBH1:       mat.New(rows, spec.BranchHidden),
		gBH2:       mat.New(rows, spec.BranchHidden),
		gRepr:      mat.New(rows, repr),
	}
	for k := range ts.q.Q {
		ts.q.Q[k] = make([]*mat.Matrix, len(spec.Dims))
		ts.gradQ[k] = make([]*mat.Matrix, len(spec.Dims))
		for d, na := range spec.Dims {
			ts.q.Q[k][d] = mat.New(rows, na)
			ts.gradQ[k][d] = mat.New(rows, na)
		}
	}
	maxOut := spec.BranchHidden
	for _, h := range spec.SharedHidden {
		if h > maxOut {
			maxOut = h
		}
	}
	for d, na := range spec.Dims {
		ts.centered[d] = mat.New(rows, na)
		if na > maxOut {
			maxOut = na
		}
	}
	ts.colSums = make([]float64, maxOut)
	for li, h := range spec.SharedHidden {
		if spec.Dropout > 0 {
			ts.drop = append(ts.drop, mat.New(rows, h))
			ts.mask = append(ts.mask, mat.New(rows, h))
			ts.gTrunk = append(ts.gTrunk, mat.New(rows, h))
		}
		ts.gmTrunk = append(ts.gmTrunk, mat.New(rows, h))
		if li > 0 {
			ts.gTrunkIn = append(ts.gTrunkIn, mat.New(rows, spec.SharedHidden[li-1]))
		} else {
			ts.gTrunkIn = append(ts.gTrunkIn, nil)
		}
	}
	for v := 0; v < numValues; v++ {
		ts.valHid = append(ts.valHid, mat.New(rows, spec.BranchHidden))
	}
	ts.bands = make([]trainBand, members)
	ts.xband = make([]*mat.Matrix, members)
	for s := range ts.bands {
		ts.bands[s] = trainBand{
			q:   bandOutput(ts.q, s, n),
			tgt: bandOutput(ws.out, s, n),
			gq:  bandGradQ(ts.gradQ, s, n),
		}
		ts.xband[s] = ws.x.RowsView(s*n, (s+1)*n)
	}
	if spec.Dropout > 0 {
		ts.dropBand = make([][]*mat.Matrix, T)
		ts.maskBand = make([][]*mat.Matrix, T)
		ts.trunkBand = make([][]*mat.Matrix, T)
		for li := 0; li < T; li++ {
			ts.dropBand[li] = make([]*mat.Matrix, members)
			ts.maskBand[li] = make([]*mat.Matrix, members)
			ts.trunkBand[li] = make([]*mat.Matrix, members)
			for s := 0; s < members; s++ {
				r0, r1 := s*n, (s+1)*n
				ts.dropBand[li][s] = ts.drop[li].RowsView(r0, r1)
				ts.maskBand[li][s] = ts.mask[li].RowsView(r0, r1)
				ts.trunkBand[li][s] = ws.trunk[li].RowsView(r0, r1)
			}
		}
	}
	ws.train = ts
	return ts
}

// stackedTrainForward runs the train-mode forward of every member's
// online network over the stacked minibatch states in ws.x: grouped
// GEMMs for every dense layer, per-member-band Dropout (each member's
// RNG draws taken from its own stream in its solo order — row-major
// per layer, trunk layer 0 before layer 1), and the dueling assembly
// into ts.q. Each member's band is bit-identical to its own
// Forward(states, true).
func (p *AgentPool) stackedTrainForward(act []*PooledAgent, ws *stackWS, ts *trainStack, rowsPer int) {
	spec := p.spec
	T := len(spec.SharedHidden)
	K, D := spec.Agents, len(spec.Dims)
	numValues := K
	if spec.SharedValue {
		numValues = 1
	}
	if cap(ws.pks) < len(act) {
		ws.pks = make([]*netPack, len(act))
	}
	pks := ws.pks[:len(act)]
	for s, m := range act {
		pks[s] = m.pack(false)
	}
	ref := act[0].Agent.online.Denses()
	ws.refreshLayerGroups(act, pks, false, len(ref))
	layer := func(dst, src *mat.Matrix, idx int) {
		var a mat.Activation = mat.ActIdentity
		if ref[idx].FuseReLU {
			a = mat.ActReLU
		}
		mat.MulGroupedBiasAct(dst, src, rowsPer, ws.lgGroups[idx], a)
	}

	cur := ws.x
	for li := 0; li < T; li++ {
		layer(ws.trunk[li], cur, li)
		cur = ws.trunk[li]
		if spec.Dropout > 0 {
			for s, m := range act {
				m.Agent.online.trunkDropout(li).ApplyTrain(
					ts.dropBand[li][s], ts.maskBand[li][s], ts.trunkBand[li][s])
			}
			cur = ts.drop[li]
		}
	}
	ts.z = cur
	for v := 0; v < numValues; v++ {
		layer(ts.valHid[v], cur, T+2*v)
		layer(ws.vals[v], ts.valHid[v], T+2*v+1)
	}
	for d := 0; d < D; d++ {
		layer(ws.advHid[d], cur, T+2*numValues+d)
	}
	for k := 0; k < K; k++ {
		v := ws.vals[0]
		if !spec.SharedValue {
			v = ws.vals[k]
		}
		for d := 0; d < D; d++ {
			layer(ws.advScr[d], ws.advHid[d], T+2*numValues+D+k*D+d)
			a := ws.advScr[d]
			q := ts.q.Q[k][d]
			a.RowMeansInto(ws.means)
			for b := 0; b < a.Rows; b++ {
				vb := v.At(b, 0)
				arow := a.Row(b)
				qrow := q.Row(b)
				for j := range qrow {
					qrow[j] = vb + arow[j] - ws.means[b]
				}
			}
		}
	}
}

// groupedDenseBackward replicates Dense.Backward for the dense at
// Denses() position idx of every active member over stacked bands: the
// per-member mask/column-sum sweep keeps each member's solo arithmetic
// (and accumulates its bias gradient), then one grouped GEMM
// accumulates every member's weight gradient and one more computes the
// stacked upstream gradient. lastOut/gm are the ReLU mask source and
// masked-gradient buffer (nil for linear layers); gradIn nil skips the
// upstream product (trunk layer 0, whose input gradient is unread).
func (p *AgentPool) groupedDenseBackward(act []*PooledAgent, ts *trainStack, idx int, lastX, lastOut, g, gm, gradIn *mat.Matrix, n int) {
	fuse := lastOut != nil
	width := g.Cols
	cs := ts.colSums[:width]
	geff := g
	if fuse {
		geff = gm
	}
	for s, m := range act {
		dn := m.Agent.online.Denses()[idx]
		r0 := s * n
		if fuse {
			// Dense.Backward's fused sweep: mask by "output > 0" and
			// build the bias column sums row-major, per member band.
			for j := range cs {
				cs[j] = 0
			}
			for i := r0; i < r0+n; i++ {
				grow := g.Row(i)
				yrow := lastOut.Row(i)
				mrow := gm.Row(i)
				for j, v := range grow {
					if yrow[j] > 0 {
						mrow[j] = v
						cs[j] += v
					} else {
						mrow[j] = 0
					}
				}
			}
		} else {
			gb := mat.Matrix{Rows: n, Cols: width, Data: g.Data[r0*width : (r0+n)*width]}
			gb.ColSumsInto(cs)
		}
		mat.Axpy(1, cs, dn.B.Grad.Data)
	}
	wg := ts.wg[:0]
	for _, m := range act {
		wg = append(wg, m.Agent.online.Denses()[idx].W.Grad)
	}
	ts.wg = wg
	mat.MulGroupedTransAAcc(wg, lastX, geff, n)
	if gradIn == nil {
		return
	}
	wv := ts.wv[:0]
	for _, m := range act {
		wv = append(wv, m.Agent.online.Denses()[idx].W.Value)
	}
	ts.wv = wv
	mat.MulGroupedTransB(gradIn, geff, n, wv)
}

// stackedBackward replicates Network.Backward for every member band
// simultaneously: value streams, centred advantage gradients with the
// 1/K rescale into the shared advantage hidden, the 1/D rescale, and
// the trunk in reverse through each member's dropout masks — every
// per-band op in the member's exact solo order, every GEMM grouped
// block-diagonally.
func (p *AgentPool) stackedBackward(act []*PooledAgent, ws *stackWS, ts *trainStack, n int) {
	spec := p.spec
	rows := len(act) * n
	T := len(spec.SharedHidden)
	K := float64(spec.Agents)
	D := float64(len(spec.Dims))
	numValues := spec.Agents
	if spec.SharedValue {
		numValues = 1
	}
	z := ts.z
	ts.sharedGrad.Zero()

	// Value streams: dV[b] = Σ_d Σ_a gradQ[k][d][b][a]; with SharedValue
	// the single stream accumulates every agent's gradient.
	valueStream := func(v int) {
		p.groupedDenseBackward(act, ts, T+2*v+1, ts.valHid[v], nil, ts.gv, nil, ts.gBH1, n)
		p.groupedDenseBackward(act, ts, T+2*v, z, ts.valHid[v], ts.gBH1, ts.gBH2, ts.gRepr, n)
		mat.Add(ts.sharedGrad, ts.sharedGrad, ts.gRepr)
	}
	if spec.SharedValue {
		gv := ts.gv
		gv.Zero()
		for k := 0; k < spec.Agents; k++ {
			for d := range spec.Dims {
				g := ts.gradQ[k][d]
				for r := 0; r < rows; r++ {
					gv.Data[r] += mat.Sum(g.Row(r))
				}
			}
		}
		valueStream(0)
	} else {
		for k := 0; k < spec.Agents; k++ {
			gv := ts.gv
			gv.Zero()
			for d := range spec.Dims {
				g := ts.gradQ[k][d]
				for r := 0; r < rows; r++ {
					gv.Data[r] += mat.Sum(g.Row(r))
				}
			}
			valueStream(k)
		}
	}

	// Advantage modules: centred gradients, heads in agent order, 1/K
	// before the shared hidden layer.
	for d := range spec.Dims {
		combined := ts.combined
		combined.Zero()
		for k := 0; k < spec.Agents; k++ {
			g := ts.gradQ[k][d]
			centered := ts.centered[d]
			g.RowMeansInto(ws.means)
			for r := 0; r < rows; r++ {
				grow := g.Row(r)
				crow := centered.Row(r)
				for j := range crow {
					crow[j] = grow[j] - ws.means[r]
				}
			}
			p.groupedDenseBackward(act, ts, T+2*numValues+len(spec.Dims)+k*len(spec.Dims)+d,
				ws.advHid[d], nil, centered, nil, ts.gBH1, n)
			mat.Add(combined, combined, ts.gBH1)
		}
		combined.Scale(1 / K)
		p.groupedDenseBackward(act, ts, T+2*numValues+d, z, ws.advHid[d], combined, ts.gBH2, ts.gRepr, n)
		mat.Add(ts.sharedGrad, ts.sharedGrad, ts.gRepr)
	}

	ts.sharedGrad.Scale(1 / D)

	// Trunk in reverse: dropout mask, then the fused DenseReLU backward.
	g := ts.sharedGrad
	for li := T - 1; li >= 0; li-- {
		if spec.Dropout > 0 {
			mat.Hadamard(ts.gTrunk[li], g, ts.mask[li])
			g = ts.gTrunk[li]
		}
		lastX := ws.x
		if li > 0 {
			lastX = ws.trunk[li-1]
			if spec.Dropout > 0 {
				lastX = ts.drop[li-1]
			}
		}
		var gradIn *mat.Matrix
		if li > 0 {
			gradIn = ts.gTrunkIn[li]
		}
		p.groupedDenseBackward(act, ts, li, lastX, ws.trunk[li], g, ts.gmTrunk[li], gradIn, n)
		g = gradIn
	}
}

// bandOutput views member band s (rows [s·n, (s+1)·n)) of a stacked
// Output.
func bandOutput(out *Output, s, n int) *Output {
	Q := make([][]*mat.Matrix, len(out.Q))
	for k := range out.Q {
		Q[k] = make([]*mat.Matrix, len(out.Q[k]))
		for d := range out.Q[k] {
			Q[k][d] = out.Q[k][d].RowsView(s*n, (s+1)*n)
		}
	}
	return &Output{Q: Q}
}

// bandGradQ views member band s of the stacked loss gradient, in the
// [K][D] shape trainLossGrad fills.
func bandGradQ(gradQ [][]*mat.Matrix, s, n int) [][]*mat.Matrix {
	Q := make([][]*mat.Matrix, len(gradQ))
	for k := range gradQ {
		Q[k] = make([]*mat.Matrix, len(gradQ[k]))
		for d := range gradQ[k] {
			Q[k][d] = gradQ[k][d].RowsView(s*n, (s+1)*n)
		}
	}
	return Q
}

// Pools is a registry of agent pools keyed by architecture, so fleet
// engines whose nodes run differently shaped managers (daemon
// membership generations, heterogeneous clusters) still share a pool —
// and its arena and pack caches — between same-shaped agents.
type Pools struct {
	mu sync.Mutex
	m  map[string]*AgentPool
}

// NewPools returns an empty registry.
func NewPools() *Pools { return &Pools{m: make(map[string]*AgentPool)} }

// For returns the pool for the agent config's architecture signature,
// creating it on first use.
func (ps *Pools) For(cfg AgentConfig) *AgentPool {
	cfg = cfg.Defaults()
	key := fmt.Sprintf("%d|%d|%v|%v|%d|%g|%t|b%d",
		cfg.Spec.StateDim, cfg.Spec.Agents, cfg.Spec.Dims, cfg.Spec.SharedHidden,
		cfg.Spec.BranchHidden, cfg.Spec.Dropout, cfg.Spec.SharedValue, cfg.BatchSize)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	pool := ps.m[key]
	if pool == nil {
		pool = NewAgentPool()
		ps.m[key] = pool
	}
	return pool
}

// FlushStep flushes every pool in the registry (deterministic order is
// unnecessary: members are independent and each pool's own flush is
// order-preserving per member).
func (ps *Pools) FlushStep() {
	ps.mu.Lock()
	pools := make([]*AgentPool, 0, len(ps.m))
	for _, p := range ps.m {
		pools = append(pools, p)
	}
	ps.mu.Unlock()
	for _, p := range pools {
		p.FlushStep()
	}
}
