package bdq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twig-sched/twig/internal/replay"
)

func TestTrainPerStepMultipliesUpdates(t *testing.T) {
	mk := func(per int) *Agent {
		cfg := testAgentConfig(1)
		cfg.TrainPerStep = per
		cfg.TargetSync = 1_000_000 // avoid sync noise
		return NewAgent(cfg)
	}
	run := func(a *Agent) int {
		state := []float64{0.1, 0.2, 0.3, 0.4}
		for i := 0; i < 40; i++ {
			acts := a.SelectActions(state)
			flat := []int{acts[0][0], acts[0][1], acts[1][0], acts[1][1]}
			a.Observe(replay.Transition{State: state, Actions: flat, Rewards: []float64{1, 1}, NextState: state})
		}
		return a.trainSteps
	}
	one := run(mk(1))
	three := run(mk(3))
	if three != 3*one {
		t.Fatalf("trainSteps %d vs %d, want 3x", three, one)
	}
}

func TestTargetPerBranchMode(t *testing.T) {
	cfg := testAgentConfig(2)
	cfg.TargetMode = TargetPerBranch
	a := NewAgent(cfg)
	state := []float64{0.1, 0.2, 0.3, 0.4}
	// Just exercise the per-branch target path end to end.
	var loss float64
	for i := 0; i < 60; i++ {
		acts := a.SelectActions(state)
		flat := []int{acts[0][0], acts[0][1], acts[1][0], acts[1][1]}
		loss = a.Observe(replay.Transition{State: state, Actions: flat, Rewards: []float64{2, -1}, NextState: state})
	}
	if loss <= 0 {
		t.Fatalf("loss = %v, training inactive", loss)
	}
	// Values must approach the constant-reward fixed points per agent:
	// Q₀* = 2/(1−γ), Q₁* = −1/(1−γ) with γ = 0.99 default? cfg uses
	// default gamma 0.99 → just check the sign separation.
	q := a.QValues(state)
	if q[0][0][0] <= q[1][0][0] {
		t.Fatalf("agent with reward 2 must value higher than agent with −1: %v vs %v",
			q[0][0][0], q[1][0][0])
	}
}

func TestQValuesShape(t *testing.T) {
	a := NewAgent(testAgentConfig(3))
	q := a.QValues([]float64{0, 0, 0, 0})
	if len(q) != 2 || len(q[0]) != 2 || len(q[0][0]) != 3 || len(q[0][1]) != 2 {
		t.Fatalf("QValues shape %d/%d/%d", len(q), len(q[0]), len(q[0][0]))
	}
}

func TestDoneTransitionsTruncateBootstrap(t *testing.T) {
	cfg := testAgentConfig(4)
	cfg.Spec.Agents = 1
	cfg.Spec.Dims = []int{2}
	cfg.Spec.StateDim = 2
	cfg.Gamma = 0.9
	a := NewAgent(cfg)
	state := []float64{0.5, 0.5}
	// Every transition terminal with reward 3 → Q* = 3 exactly.
	for i := 0; i < 600; i++ {
		acts := a.SelectActions(state)
		a.Observe(replay.Transition{
			State: state, Actions: []int{acts[0][0]}, Rewards: []float64{3},
			NextState: state, Done: true,
		})
	}
	q := a.QValues(state)
	for _, v := range q[0][0] {
		if v < 2 || v > 4 {
			t.Fatalf("terminal Q = %v, want ≈ 3 (no bootstrap)", v)
		}
	}
}

// Property: the ε schedule is non-increasing over time and bounded by
// [End, Start].
func TestEpsilonMonotoneProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mid := 1 + rng.Intn(500)
		e := EpsilonSchedule{
			Start:   1,
			Mid:     0.05 + rng.Float64()*0.5,
			End:     0.01,
			MidStep: mid,
			EndStep: mid + 1 + rng.Intn(500),
		}
		prev := e.At(0)
		for s := 0; s < e.EndStep+100; s += 7 {
			v := e.At(s)
			if v > prev+1e-12 || v < e.End-1e-12 || v > e.Start+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: selected actions always lie inside each branch's range, for
// any ε and any state in [0,1]^d.
func TestActionBoundsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64) bool {
		a := NewAgent(testAgentConfig(seed))
		rng := rand.New(rand.NewSource(seed))
		state := make([]float64, 4)
		for trial := 0; trial < 15; trial++ {
			for i := range state {
				state[i] = rng.Float64()
			}
			for k, per := range a.SelectActions(state) {
				for d, act := range per {
					if act < 0 || act >= a.cfg.Spec.Dims[d] {
						return false
					}
					_ = k
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
