package bdq

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/nn"
	"github.com/twig-sched/twig/internal/replay"
)

// CheckpointName labels a standalone agent section.
func (a *Agent) CheckpointName() string { return "bdq-agent" }

// EncodeState writes everything the agent needs to continue training
// bit-identically: the ε-schedule position (environment step counter),
// gradient-update counter (drives target sync), Adam timestep, RNG
// stream position, online and target networks with their Adam moments,
// and the full replay buffer. The architecture spec goes in first as a
// fingerprint so a checkpoint cannot restore into a differently shaped
// agent.
func (a *Agent) EncodeState(e *checkpoint.Encoder) {
	spec := a.cfg.Spec
	e.Int(spec.StateDim)
	e.Int(spec.Agents)
	e.Ints(spec.Dims)
	e.Int(a.step)
	e.Int(a.trainSteps)
	a.opt.EncodeState(e)
	a.rng.Source().EncodeState(e)
	nn.EncodeParams(e, a.online.Params())
	nn.EncodeParams(e, a.target.Params())
	replay.EncodeBufferKind(e, a.buffer)
	a.buffer.EncodeState(e)
}

// DecodeState restores state written by EncodeState into an agent
// constructed with the same configuration.
func (a *Agent) DecodeState(d *checkpoint.Decoder) error {
	spec := a.cfg.Spec
	stateDim, agents := d.Int(), d.Int()
	dims := d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	if stateDim != spec.StateDim || agents != spec.Agents || !sameInts(dims, spec.Dims) {
		return fmt.Errorf("bdq: checkpoint spec (state %d, agents %d, dims %v) does not match live agent (state %d, agents %d, dims %v)",
			stateDim, agents, dims, spec.StateDim, spec.Agents, spec.Dims)
	}
	step, trainSteps := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if step < 0 || trainSteps < 0 {
		return fmt.Errorf("bdq: negative step counters (%d, %d) in checkpoint", step, trainSteps)
	}
	if err := a.opt.DecodeState(d); err != nil {
		return err
	}
	if err := a.rng.Source().DecodeState(d); err != nil {
		return err
	}
	if err := nn.DecodeParams(d, a.online.Params()); err != nil {
		return fmt.Errorf("bdq: online network: %w", err)
	}
	if err := nn.DecodeParams(d, a.target.Params()); err != nil {
		return fmt.Errorf("bdq: target network: %w", err)
	}
	if err := replay.CheckBufferKind(d, a.buffer); err != nil {
		return err
	}
	if err := a.buffer.DecodeState(d); err != nil {
		return err
	}
	a.step = step
	a.trainSteps = trainSteps
	a.online.noteWeightsChanged()
	a.target.noteWeightsChanged()
	return nil
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
