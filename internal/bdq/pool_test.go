package bdq

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/replay"
)

// Golden differential: the pooled path (grouped GEMM over persistent
// packed panels, batched TD forwards, arena-backed parameters) must be
// bit-identical to the per-agent path — proven by comparing selected
// actions, losses and full checkpoint bytes (weights, Adam moments,
// RNG draw positions, replay state) after lockstep trajectories.

func poolTestCfg(seed int64) AgentConfig {
	return AgentConfig{
		Spec: Spec{
			StateDim:     12,
			Agents:       2,
			Dims:         []int{5, 4},
			SharedHidden: []int{32, 16},
			BranchHidden: 8,
			Dropout:      0.5, // exercises train-mode RNG draw ordering
		},
		BatchSize:      8,
		WarmupSteps:    8,
		TargetSync:     5,
		UsePER:         true,
		PERAnnealSteps: 100,
		Seed:           seed,
	}
}

func testState(dim, ai, t int) []float64 {
	s := make([]float64, dim)
	for j := range s {
		s[j] = math.Sin(float64(ai*1009 + t*7 + j*13))
	}
	return s
}

func testRewards(k, ai, t int) []float64 {
	r := make([]float64, k)
	for i := range r {
		r[i] = math.Cos(float64(ai*31+t*3+i)) * 0.5
	}
	return r
}

func flatActs(acts [][]int) []int {
	var out []int
	for _, row := range acts {
		out = append(out, row...)
	}
	return out
}

func encodeAgent(a *Agent) []byte {
	e := checkpoint.NewEncoder()
	a.EncodeState(e)
	return e.Bytes()
}

// drive steps a solo and a pooled population through the same
// deterministic environment in lockstep, comparing actions each
// interval and checkpoint bytes at the end.
func drive(t *testing.T, agents []*Agent, pooled []*PooledAgent, pool *AgentPool, steps, startT int, greedyEvery int) {
	t.Helper()
	S := len(agents)
	spec := agents[0].cfg.Spec
	K, D := spec.Agents, len(spec.Dims)
	prevState := make([][]float64, S)
	prevActsSolo := make([][]int, S)
	prevActsPool := make([][]int, S)
	for tt := startT; tt < startT+steps; tt++ {
		greedy := greedyEvery > 0 && tt%greedyEvery == 0
		// Per-agent path: observe then select, agent by agent.
		soloActs := make([][][]int, S)
		for i, a := range agents {
			state := testState(spec.StateDim, i, tt)
			if prevState[i] != nil {
				a.Observe(replay.Transition{
					State:     prevState[i],
					Actions:   prevActsSolo[i],
					Rewards:   testRewards(K, i, tt),
					NextState: state,
				})
			}
			if greedy {
				soloActs[i] = a.SelectGreedy(state)
			} else {
				soloActs[i] = a.SelectActions(state)
			}
		}
		// Pooled path: queue everything, one flush, then collect.
		for i, pa := range pooled {
			state := testState(spec.StateDim, i, tt)
			if prevState[i] != nil {
				pa.QueueObserve(replay.Transition{
					State:     prevState[i],
					Actions:   prevActsPool[i],
					Rewards:   testRewards(K, i, tt),
					NextState: state,
				})
			}
			pa.QueueSelect(state, greedy)
		}
		pool.FlushStep()
		for i, pa := range pooled {
			got := pa.TakeActions()
			if fmt.Sprint(got) != fmt.Sprint(soloActs[i]) {
				t.Fatalf("t=%d agent %d: pooled actions %v != solo %v", tt, i, got, soloActs[i])
			}
			prevState[i] = testState(spec.StateDim, i, tt)
			prevActsSolo[i] = flatActs(soloActs[i])
			prevActsPool[i] = flatActs(got)
			if len(prevActsSolo[i]) != K*D {
				t.Fatalf("bad action shape")
			}
		}
	}
	for i := range agents {
		if !bytes.Equal(encodeAgent(agents[i]), encodeAgent(pooled[i].Agent)) {
			t.Fatalf("agent %d: pooled checkpoint bytes diverged from solo", i)
		}
	}
}

func TestPoolBitIdenticalSelectAndTrain(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			saved := mat.Parallelism()
			defer mat.SetParallelism(saved)
			mat.SetParallelism(par)

			const S = 3
			var agents []*Agent
			var pooled []*PooledAgent
			pool := NewAgentPool()
			for i := 0; i < S; i++ {
				agents = append(agents, NewAgent(poolTestCfg(int64(100+i))))
				pooled = append(pooled, pool.Attach(NewAgent(poolTestCfg(int64(100+i)))))
			}
			drive(t, agents, pooled, pool, 40, 0, 7) // mixes ε-greedy and pure-greedy intervals
		})
	}
}

// TestPoolBitIdenticalVariantConfigs drives the grouped training path
// through the branches the default config leaves cold: global gradient
// clipping (the flat Adam pass clips over the slab), per-branch
// bootstrap targets, the shared-value ablation and a dropout-free
// trunk, each against solo twins.
func TestPoolBitIdenticalVariantConfigs(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*AgentConfig)
	}{
		{"maxgradnorm", func(c *AgentConfig) { c.MaxGradNorm = 0.5 }},
		{"perbranch", func(c *AgentConfig) { c.TargetMode = TargetPerBranch }},
		{"sharedvalue", func(c *AgentConfig) { c.Spec.SharedValue = true }},
		{"nodropout", func(c *AgentConfig) { c.Spec.Dropout = 0 }},
		{"trainperstep", func(c *AgentConfig) { c.TrainPerStep = 2; c.MaxGradNorm = 1.5 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			const S = 2
			var agents []*Agent
			var pooled []*PooledAgent
			pool := NewAgentPool()
			for i := 0; i < S; i++ {
				cfg := poolTestCfg(int64(300 + i))
				v.mut(&cfg)
				agents = append(agents, NewAgent(cfg))
				cfg2 := poolTestCfg(int64(300 + i))
				v.mut(&cfg2)
				pooled = append(pooled, pool.Attach(NewAgent(cfg2)))
			}
			drive(t, agents, pooled, pool, 30, 0, 9)
		})
	}
}

// TestPoolConcurrentTraining hammers the pool from one goroutine per
// member, each running full Observe/Select cycles concurrently — the
// fleet-engine shape. Run with -race this checks the grouped training
// phases (stacked workspaces, arena slabs, shared pack panels) against
// data races; member counts shrink and grow mid-run via churn.
func TestPoolConcurrentTraining(t *testing.T) {
	const S = 4
	pool := NewAgentPool()
	var pooled []*PooledAgent
	for i := 0; i < S; i++ {
		pooled = append(pooled, pool.Attach(NewAgent(poolTestCfg(int64(400+i)))))
	}
	done := make(chan struct{}, S)
	for i, pa := range pooled {
		go func(i int, pa *PooledAgent) {
			defer func() { done <- struct{}{} }()
			spec := pa.Agent.cfg.Spec
			var prevState []float64
			var prevActs []int
			for tt := 0; tt < 40; tt++ {
				state := testState(spec.StateDim, i, tt)
				if prevState != nil {
					pa.Observe(replay.Transition{
						State:     prevState,
						Actions:   prevActs,
						Rewards:   testRewards(spec.Agents, i, tt),
						NextState: state,
					})
				}
				prevActs = flatActs(pa.SelectActions(state))
				prevState = state
			}
		}(i, pa)
	}
	for range pooled {
		<-done
	}
	// Churn under load: drain one member, admit a replacement, train on.
	pooled[2].Close()
	repl := pool.Attach(NewAgent(poolTestCfg(999)))
	solo := NewAgent(poolTestCfg(999))
	drive(t, []*Agent{solo}, []*PooledAgent{repl}, pool, 15, 0, 0)
}

// TestPoolSingleMemberBitIdentical pins the degenerate pool (S=1, the
// daemon shape): still packed-kernel batched, still bit-identical.
func TestPoolSingleMemberBitIdentical(t *testing.T) {
	pool := NewAgentPool()
	pa := pool.Attach(NewAgent(poolTestCfg(42)))
	solo := NewAgent(poolTestCfg(42))
	drive(t, []*Agent{solo}, []*PooledAgent{pa}, pool, 30, 0, 0)
}

// TestPoolDrainRestore is the churn round-trip: a pooled fleet is
// checkpointed, one member is drained, and restoring the survivors into
// a smaller pooled membership — and into plain solo agents — yields
// hex-float-identical continuations.
func TestPoolDrainRestore(t *testing.T) {
	const S = 3
	pool := NewAgentPool()
	var pooled []*PooledAgent
	for i := 0; i < S; i++ {
		pooled = append(pooled, pool.Attach(NewAgent(poolTestCfg(int64(200+i)))))
	}
	// Train past warmup so Adam moments, PER priorities and RNG
	// positions are all non-trivial, then checkpoint every member.
	drive(t, []*Agent{
		NewAgent(poolTestCfg(200)), NewAgent(poolTestCfg(201)), NewAgent(poolTestCfg(202)),
	}, pooled, pool, 25, 0, 0)
	snaps := make([][]byte, S)
	for i, pa := range pooled {
		snaps[i] = encodeAgent(pa.Agent)
	}

	// Drain member 1. Its slots are released; survivors keep training.
	pooled[1].Close()
	if pool.Members() != S-1 {
		t.Fatalf("Members() = %d after drain", pool.Members())
	}

	// Restore the survivors' checkpoints into (a) a fresh smaller pooled
	// membership and (b) solo agents, and drive both: trajectories must
	// match bit-for-bit.
	pool2 := NewAgentPool()
	var restoredPool []*PooledAgent
	var restoredSolo []*Agent
	for _, i := range []int{0, 2} {
		pa := pool2.Attach(NewAgent(poolTestCfg(int64(200 + i))))
		if err := pa.Agent.DecodeState(checkpoint.NewDecoder(snaps[i])); err != nil {
			t.Fatalf("pooled restore %d: %v", i, err)
		}
		restoredPool = append(restoredPool, pa)
		sa := NewAgent(poolTestCfg(int64(200 + i)))
		if err := sa.DecodeState(checkpoint.NewDecoder(snaps[i])); err != nil {
			t.Fatalf("solo restore %d: %v", i, err)
		}
		restoredSolo = append(restoredSolo, sa)
	}
	drive(t, restoredSolo, restoredPool, pool2, 20, 25, 5)

	// The drained member detached with full state: it must continue
	// exactly like a solo agent restored from its snapshot.
	ref := NewAgent(poolTestCfg(201))
	if err := ref.DecodeState(checkpoint.NewDecoder(snaps[1])); err != nil {
		t.Fatalf("drained ref restore: %v", err)
	}
	drained := pooled[1].Agent
	if err := drained.DecodeState(checkpoint.NewDecoder(snaps[1])); err != nil {
		t.Fatalf("drained restore: %v", err)
	}
	for tt := 25; tt < 40; tt++ {
		st := testState(12, 1, tt)
		if fmt.Sprint(drained.SelectActions(st)) != fmt.Sprint(ref.SelectActions(st)) {
			t.Fatalf("t=%d: drained member diverged from solo reference", tt)
		}
	}
	if !bytes.Equal(encodeAgent(drained), encodeAgent(ref)) {
		t.Fatal("drained member checkpoint diverged from solo reference")
	}
}

// TestPoolSlotReuse pins deterministic arena slot reuse across churn:
// drain + admit lands in the released slots and trains correctly.
func TestPoolSlotReuse(t *testing.T) {
	pool := NewAgentPool()
	a0 := pool.Attach(NewAgent(poolTestCfg(1)))
	a1 := pool.Attach(NewAgent(poolTestCfg(2)))
	if a0.slotOnline != 0 || a1.slotOnline != 2 {
		t.Fatalf("unexpected initial slots %d, %d", a0.slotOnline, a1.slotOnline)
	}
	a0.Close()
	a0.Close() // idempotent
	a2 := pool.Attach(NewAgent(poolTestCfg(3)))
	if a2.slotOnline != 0 || a2.slotTarget != 1 {
		t.Fatalf("admit after drain got slots %d/%d, want 0/1", a2.slotOnline, a2.slotTarget)
	}
	solo := NewAgent(poolTestCfg(3))
	drive(t, []*Agent{solo}, []*PooledAgent{a2}, pool, 15, 0, 0)

	defer func() {
		if recover() == nil {
			t.Fatal("use after close did not panic")
		}
	}()
	a0.QueueSelect(testState(12, 0, 0), true)
}
