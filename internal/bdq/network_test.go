package bdq

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
)

func smallSpec() Spec {
	return Spec{
		StateDim:     6,
		Agents:       2,
		Dims:         []int{4, 3},
		SharedHidden: []int{16, 8},
		BranchHidden: 8,
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{StateDim: 1},
		{StateDim: 1, Agents: 1},
		{StateDim: 1, Agents: 1, Dims: []int{2}},
		{StateDim: 1, Agents: 1, Dims: []int{2}, SharedHidden: []int{4}},
		{StateDim: 1, Agents: 1, Dims: []int{0}, SharedHidden: []int{4}, BranchHidden: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d should be invalid", i)
		}
	}
	if err := smallSpec().Validate(); err != nil {
		t.Fatalf("smallSpec invalid: %v", err)
	}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(smallSpec(), rng)
	x := mat.New(5, 6)
	out := net.Forward(x, false)
	if len(out.Q) != 2 {
		t.Fatalf("agents = %d", len(out.Q))
	}
	if out.Q[0][0].Rows != 5 || out.Q[0][0].Cols != 4 {
		t.Fatalf("Q[0][0] shape %dx%d", out.Q[0][0].Rows, out.Q[0][0].Cols)
	}
	if out.Q[1][1].Cols != 3 {
		t.Fatalf("Q[1][1] cols = %d", out.Q[1][1].Cols)
	}
}

// TestDuelingIdentifiability: Q − V must have zero mean over actions, by
// construction of the aggregation Q = V + A − mean(A).
func TestDuelingIdentifiability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(smallSpec(), rng)
	x := mat.New(3, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := net.Forward(x, false)
	for k := range out.Q {
		for d := range out.Q[k] {
			q := out.Q[k][d]
			// mean over actions must be identical across dimensions
			// for the same (agent,row): it equals V_k(s).
			for b := 0; b < q.Rows; b++ {
				m0 := mat.Mean(out.Q[k][0].Row(b))
				md := mat.Mean(q.Row(b))
				if math.Abs(m0-md) > 1e-9 {
					t.Fatalf("row %d: mean Q differs across dims: %v vs %v", b, m0, md)
				}
			}
		}
	}
}

// TestPerAgentActionsDiffer: different agents must be able to prefer
// different actions (the per-agent output heads decouple them).
func TestPerAgentActionsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(smallSpec(), rng)
	x := mat.New(1, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := net.Forward(x, false)
	acts := out.GreedyActions()
	if len(acts) != 2 || len(acts[0]) != 2 {
		t.Fatalf("GreedyActions shape %v", acts)
	}
	// With random init the heads are independent; the probability all
	// dims agree across agents by chance is small but non-zero, so try
	// several inputs and require at least one disagreement.
	differ := false
	for trial := 0; trial < 20 && !differ; trial++ {
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		a := net.Forward(x, false).GreedyActions()
		if a[0][0] != a[1][0] || a[0][1] != a[1][1] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("agents never disagree: advantage heads appear shared")
	}
}

// TestNetworkGradientCheck verifies Backward against finite differences
// through the full dueling, branching, multi-agent graph, with the 1/K
// and 1/D rescaling disabled (rescaling is verified separately).
func TestNetworkGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := smallSpec()
	net := NewNetwork(spec, rng)
	net.noRescale = true
	x := mat.New(3, spec.StateDim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Loss: ½ Σ (Q − T)² with fixed random targets T.
	targets := make([][]*mat.Matrix, spec.Agents)
	for k := range targets {
		targets[k] = make([]*mat.Matrix, len(spec.Dims))
		for d := range targets[k] {
			targets[k][d] = mat.New(3, spec.Dims[d])
			for i := range targets[k][d].Data {
				targets[k][d].Data[i] = rng.NormFloat64()
			}
		}
	}
	lossAt := func() float64 {
		// The loop below pokes parameter values directly; announce the
		// mutation so Forward repacks its persistent weight panels.
		net.noteWeightsChanged()
		out := net.Forward(x, false)
		var l float64
		for k := range out.Q {
			for d := range out.Q[k] {
				for i, q := range out.Q[k][d].Data {
					dlt := q - targets[k][d].Data[i]
					l += 0.5 * dlt * dlt
				}
			}
		}
		return l
	}

	net.ZeroGrad()
	out := net.Forward(x, false)
	gradQ := make([][]*mat.Matrix, spec.Agents)
	for k := range gradQ {
		gradQ[k] = make([]*mat.Matrix, len(spec.Dims))
		for d := range gradQ[k] {
			g := mat.New(3, spec.Dims[d])
			mat.Sub(g, out.Q[k][d], targets[k][d])
			gradQ[k][d] = g
		}
	}
	net.Backward(gradQ)

	const eps = 1e-5
	for _, p := range net.Params() {
		for i := 0; i < len(p.Value.Data); i += 5 {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// TestGradientRescaling checks the paper's 1/K and 1/D rescaling by
// comparing a rescaled network against an identical unrescaled one. A
// gradient with zero row-sums silences the value path, isolating the
// advantage path: advantage-hidden gradients must shrink by 1/K and the
// trunk gradient by 1/(K·D).
func TestGradientRescaling(t *testing.T) {
	spec := smallSpec()
	build := func() *Network {
		return NewNetwork(spec, rand.New(rand.NewSource(11)))
	}
	scaled, plain := build(), build()
	plain.noRescale = true

	x := mat.New(2, spec.StateDim)
	r := rand.New(rand.NewSource(12))
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	mkGrad := func() [][]*mat.Matrix {
		gq := make([][]*mat.Matrix, spec.Agents)
		for k := range gq {
			gq[k] = make([]*mat.Matrix, len(spec.Dims))
			for d := range gq[k] {
				g := mat.New(2, spec.Dims[d])
				for b := 0; b < 2; b++ {
					row := g.Row(b)
					// zero-sum pattern: +1, −1, 0, 0, ...
					row[0], row[1] = 1, -1
				}
				gq[k][d] = g
			}
		}
		return gq
	}
	scaled.ZeroGrad()
	scaled.Forward(x, false)
	scaled.Backward(mkGrad())
	plain.ZeroGrad()
	plain.Forward(x, false)
	plain.Backward(mkGrad())

	K := float64(spec.Agents)
	D := float64(len(spec.Dims))
	cmp := func(name string, a, b []*matParam, factor float64) {
		for i := range a {
			for j := range a[i].grad {
				want := b[i].grad[j] * factor
				if math.Abs(a[i].grad[j]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s grad[%d][%d] = %v, want %v (factor %v)", name, i, j, a[i].grad[j], want, factor)
				}
			}
		}
	}
	cmp("advHidden", paramsOf(scaled.advHidden[0].Params()), paramsOf(plain.advHidden[0].Params()), 1/K)
	cmp("shared", paramsOf(scaled.shared.Params()), paramsOf(plain.shared.Params()), 1/(K*D))
	// Output heads sit above the rescaling points: unscaled.
	cmp("advOut", paramsOf(scaled.advOut[1][1].Params()), paramsOf(plain.advOut[1][1].Params()), 1)
}

type matParam struct {
	value, grad []float64
}

func paramsOf(ps []*nn.Param) []*matParam {
	out := make([]*matParam, len(ps))
	for i, p := range ps {
		out[i] = &matParam{p.Value.Data, p.Grad.Data}
	}
	return out
}

func TestTargetCopyAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewNetwork(smallSpec(), rng)
	b := NewNetwork(smallSpec(), rng)
	b.CopyValuesFrom(a)
	x := mat.New(1, 6)
	x.Data[0] = 1
	qa := a.Forward(x, false).Q[0][0].Row(0)
	qb := b.Forward(x, false).Q[0][0].Row(0)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("copied network differs")
		}
	}
}

func TestReinitOutputLayersKeepsTrunk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(smallSpec(), rng)
	trunkBefore := mat.Clone(net.shared.Params()[0].Value.Data)
	headBefore := mat.Clone(net.advOut[0][0].W.Value.Data)
	valueHeadBefore := mat.Clone(net.OutputParams()[0].Value.Data)
	net.ReinitOutputLayers(rng)
	for i, v := range net.shared.Params()[0].Value.Data {
		if v != trunkBefore[i] {
			t.Fatal("trunk modified by transfer re-init")
		}
	}
	changed := false
	for i, v := range net.advOut[0][0].W.Value.Data {
		if v != headBefore[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("advantage head not re-initialised")
	}
	changed = false
	for i, v := range net.OutputParams()[0].Value.Data {
		if v != valueHeadBefore[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("value head not re-initialised")
	}
}

func TestNumParamsMatchesArchitecture(t *testing.T) {
	spec := smallSpec()
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(spec, rng)
	// shared: 6·16+16 + 16·8+8
	shared := 6*16 + 16 + 16*8 + 8
	// values: 2 × (8·8+8 + 8·1+1)
	values := 2 * (8*8 + 8 + 8*1 + 1)
	// advHidden: 2 × (8·8+8)
	advH := 2 * (8*8 + 8)
	// advOut: agents×dims heads: (8·4+4)+(8·3+3) per agent ×2
	advO := 2 * ((8*4 + 4) + (8*3 + 3))
	want := shared + values + advH + advO
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if net.MemoryBytes() != want*8 {
		t.Fatal("MemoryBytes")
	}
}

// TestSharedValueAblation: with SharedValue the mean Q over actions (=
// V(s)) must be identical across agents, and the parameter count drops
// by one value stream.
func TestSharedValueAblation(t *testing.T) {
	spec := smallSpec()
	spec.SharedValue = true
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(spec, rng)
	x := mat.New(2, spec.StateDim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := net.Forward(x, false)
	for b := 0; b < 2; b++ {
		v0 := mat.Mean(out.Q[0][0].Row(b))
		v1 := mat.Mean(out.Q[1][0].Row(b))
		if math.Abs(v0-v1) > 1e-9 {
			t.Fatalf("shared V differs across agents: %v vs %v", v0, v1)
		}
	}
	perAgent := NewNetwork(smallSpec(), rand.New(rand.NewSource(21)))
	if net.NumParams() >= perAgent.NumParams() {
		t.Fatal("shared value must shrink the network")
	}
	// Backward must run without panicking and produce gradients.
	net.ZeroGrad()
	net.Forward(x, false)
	gq := make([][]*mat.Matrix, spec.Agents)
	for k := range gq {
		gq[k] = make([]*mat.Matrix, len(spec.Dims))
		for d := range gq[k] {
			g := mat.New(2, spec.Dims[d])
			g.Fill(0.1)
			gq[k][d] = g
		}
	}
	net.Backward(gq)
	if net.values[0].Params()[0].Grad.MaxAbs() == 0 {
		t.Fatal("shared value stream received no gradient")
	}
}
