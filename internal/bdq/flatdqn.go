package bdq

import (
	"math/rand"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
)

// FlatDQN is a vanilla deep Q-network whose single output head enumerates
// the full cross-product of all action dimensions. It exists for the
// ablation and memory-complexity experiments (Sec. V-B1): with D
// dimensions of N actions each its head has N^D outputs, versus N·D for
// the branching architecture.
type FlatDQN struct {
	Dims []int
	net  *nn.Sequential
	out  int
}

// NewFlatDQN builds a flat DQN with the given hidden widths.
func NewFlatDQN(stateDim int, dims []int, hidden []int, rng *rand.Rand) *FlatDQN {
	out := 1
	for _, d := range dims {
		out *= d
	}
	var layers []nn.Layer
	in := stateDim
	for i, h := range hidden {
		layers = append(layers, nn.NewDenseReLU(flatName("h", i), in, h, rng))
		in = h
	}
	layers = append(layers, nn.NewDense("out", in, out, rng))
	return &FlatDQN{Dims: append([]int(nil), dims...), net: nn.NewSequential(layers...), out: out}
}

func flatName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// NumActions returns the size of the flattened action space (N^D).
func (f *FlatDQN) NumActions() int { return f.out }

// NumParams returns the number of scalar learnable parameters.
func (f *FlatDQN) NumParams() int { return f.net.NumParams() }

// MemoryBytes estimates the float64 parameter footprint.
func (f *FlatDQN) MemoryBytes() int { return f.NumParams() * 8 }

// Forward evaluates the Q-values over the flattened action space.
func (f *FlatDQN) Forward(states *mat.Matrix, train bool) *mat.Matrix {
	return f.net.Forward(states, train)
}

// Params exposes the learnable parameters.
func (f *FlatDQN) Params() []*nn.Param { return f.net.Params() }

// Encode converts one action per dimension into a flattened index using
// mixed-radix positional encoding.
func (f *FlatDQN) Encode(actions []int) int {
	idx := 0
	for d, a := range actions {
		idx = idx*f.Dims[d] + a
	}
	return idx
}

// Decode inverts Encode.
func (f *FlatDQN) Decode(idx int) []int {
	actions := make([]int, len(f.Dims))
	for d := len(f.Dims) - 1; d >= 0; d-- {
		actions[d] = idx % f.Dims[d]
		idx /= f.Dims[d]
	}
	return actions
}

// QTableEntries returns the number of entries a tabular Q-learning agent
// (Hipster-style) needs for b state buckets, D action dimensions and N
// actions per dimension: b·N^D. Returned as float64 because the paper's
// example (25·3³⁰) overflows int ranges long before it fits in memory.
func QTableEntries(buckets, dims, actionsPerDim int) float64 {
	entries := float64(buckets)
	for i := 0; i < dims; i++ {
		entries *= float64(actionsPerDim)
	}
	return entries
}
