package bdq

import (
	"fmt"
	"io"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
	"github.com/twig-sched/twig/internal/replay"
	"github.com/twig-sched/twig/internal/rng"
)

// TargetMode selects how the bootstrap target aggregates the branch
// Q-values of the next state.
type TargetMode int

const (
	// TargetMeanBranches averages the per-branch target Q-values, the
	// aggregation recommended by the BDQ paper. The default.
	TargetMeanBranches TargetMode = iota
	// TargetPerBranch bootstraps each branch from its own maximum.
	TargetPerBranch
)

// EpsilonSchedule is Twig's two-phase linear annealing: ε starts at
// Start, reaches Mid at MidStep and End at EndStep, then stays at End.
type EpsilonSchedule struct {
	Start, Mid, End  float64
	MidStep, EndStep int
}

// At returns ε at the given step.
func (e EpsilonSchedule) At(step int) float64 {
	switch {
	case e.MidStep <= 0:
		return e.End
	case step <= 0:
		return e.Start
	case step < e.MidStep:
		f := float64(step) / float64(e.MidStep)
		return e.Start + f*(e.Mid-e.Start)
	case step < e.EndStep:
		f := float64(step-e.MidStep) / float64(e.EndStep-e.MidStep)
		return e.Mid + f*(e.End-e.Mid)
	default:
		return e.End
	}
}

// AgentConfig configures a Q-learning agent around a multi-agent BDQ.
// Zero values select the paper's hyper-parameters via Defaults.
type AgentConfig struct {
	Spec Spec

	Gamma        float64
	LearningRate float64
	BatchSize    int
	TargetSync   int // online→target copy period, in training steps
	WarmupSteps  int // transitions stored before training starts
	// TrainPerStep is the number of gradient updates per Observe call
	// (1 by default; scaled-down experiment profiles use more to match
	// the paper's longer schedules).
	TrainPerStep   int
	ReplayCapacity int
	UsePER         bool
	PERAlpha       float64
	PERBeta0       float64
	PERAnnealSteps int
	Epsilon        EpsilonSchedule
	TargetMode     TargetMode
	MaxGradNorm    float64
	Seed           int64
}

// Defaults fills unset fields with the hyper-parameters of Sec. IV:
// Adam lr 0.0025, minibatch 64, γ 0.99, target sync 150, PER buffer 10⁶
// with α 0.6 and β 0.4→1, ε 1→0.1@10000→0.01@25000.
func (c AgentConfig) Defaults() AgentConfig {
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.0025
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.TargetSync == 0 {
		c.TargetSync = 150
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = c.BatchSize
	}
	if c.TrainPerStep == 0 {
		c.TrainPerStep = 1
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 1_000_000
	}
	if c.PERAlpha == 0 {
		c.PERAlpha = 0.6
	}
	if c.PERBeta0 == 0 {
		c.PERBeta0 = 0.4
	}
	if c.PERAnnealSteps == 0 {
		c.PERAnnealSteps = 25_000
	}
	if c.Epsilon == (EpsilonSchedule{}) {
		c.Epsilon = EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.01, MidStep: 10_000, EndStep: 25_000}
	}
	return c
}

// Agent is the deep Q-learning agent of Algorithm 1: it selects branch
// actions ε-greedily, stores transitions, trains the online network from
// (prioritised) replay and periodically synchronises the target network.
type Agent struct {
	cfg    AgentConfig
	online *Network
	target *Network
	buffer replay.Buffer
	opt    *nn.Adam
	rng    *rng.Rand

	step       int // environment steps (action selections)
	trainSteps int // gradient updates

	greedyState *mat.Matrix // reusable 1×StateDim input for greedy/QValues
	train       *trainWS    // reusable TrainStep scratch (BatchSize rows)
}

// trainWS is the per-agent TrainStep scratch. BatchSize is constant for
// an agent's lifetime, so one lazily built set of buffers makes every
// steady-state training step allocation-free.
type trainWS struct {
	batch  replay.Batch
	states *mat.Matrix
	next   *mat.Matrix
	argmax [][][]int     // [K][D][batch] online-net action selections on s′
	y      [][]float64   // [K][batch] bootstrap targets
	gradQ  [][]*mat.Matrix
	tdErr  []float64
}

func (a *Agent) trainWorkspace() *trainWS {
	if a.train != nil {
		return a.train
	}
	spec := a.cfg.Spec
	K, D, n := spec.Agents, len(spec.Dims), a.cfg.BatchSize
	ws := &trainWS{
		states: mat.New(n, spec.StateDim),
		next:   mat.New(n, spec.StateDim),
		argmax: make([][][]int, K),
		y:      make([][]float64, K),
		gradQ:  make([][]*mat.Matrix, K),
		tdErr:  make([]float64, n),
	}
	for k := 0; k < K; k++ {
		ws.argmax[k] = make([][]int, D)
		ws.gradQ[k] = make([]*mat.Matrix, D)
		ws.y[k] = make([]float64, n)
		for d := 0; d < D; d++ {
			ws.argmax[k][d] = make([]int, n)
			ws.gradQ[k][d] = mat.New(n, spec.Dims[d])
		}
	}
	a.train = ws
	return ws
}

// NewAgent constructs an agent; cfg is completed with Defaults first.
func NewAgent(cfg AgentConfig) *Agent {
	cfg = cfg.Defaults()
	r := rng.New(cfg.Seed)
	online := NewNetwork(cfg.Spec, r.Rand)
	target := NewNetwork(cfg.Spec, r.Rand)
	target.CopyValuesFrom(online)
	var buf replay.Buffer
	if cfg.UsePER {
		buf = replay.NewPrioritized(cfg.ReplayCapacity, cfg.PERAlpha, cfg.PERBeta0, cfg.PERAnnealSteps)
	} else {
		buf = replay.NewUniform(cfg.ReplayCapacity)
	}
	opt := nn.NewAdam(cfg.LearningRate)
	opt.MaxGradNorm = cfg.MaxGradNorm
	return &Agent{cfg: cfg, online: online, target: target, buffer: buf, opt: opt, rng: r}
}

// Config returns the (defaulted) configuration.
func (a *Agent) Config() AgentConfig { return a.cfg }

// Online exposes the online network (used by experiments that inspect
// parameter counts or persist weights).
func (a *Agent) Online() *Network { return a.online }

// Epsilon returns the exploration rate at the current step.
func (a *Agent) Epsilon() float64 { return a.cfg.Epsilon.At(a.step) }

// Step returns the number of environment steps taken so far.
func (a *Agent) Step() int { return a.step }

// SelectActions chooses one action per agent and dimension ε-greedily:
// each branch independently explores with probability ε, as in
// action-branching architectures. The environment step counter advances.
func (a *Agent) SelectActions(state []float64) [][]int {
	return a.applyExploration(a.greedy(state))
}

// applyExploration advances the environment step counter and overlays
// per-branch ε-greedy exploration on greedy selections — the RNG draws
// of SelectActions, in the same per-agent order, factored out so the
// pooled path can batch the greedy forward and keep the draws exact.
func (a *Agent) applyExploration(acts [][]int) [][]int {
	eps := a.Epsilon()
	a.step++
	for k := range acts {
		for d := range acts[k] {
			if a.rng.Float64() < eps {
				acts[k][d] = a.rng.Intn(a.cfg.Spec.Dims[d])
			}
		}
	}
	return acts
}

// SelectGreedy returns the pure-exploitation actions without advancing
// the step counter (used after the learning phase, per Sec. V).
func (a *Agent) SelectGreedy(state []float64) [][]int { return a.greedy(state) }

// stateInput copies state into the agent's reusable 1×StateDim matrix.
func (a *Agent) stateInput(state []float64) *mat.Matrix {
	if len(state) != a.cfg.Spec.StateDim {
		panic(fmt.Sprintf("bdq: state dim %d != %d", len(state), a.cfg.Spec.StateDim))
	}
	if a.greedyState == nil {
		a.greedyState = mat.New(1, a.cfg.Spec.StateDim)
	}
	copy(a.greedyState.Data, state)
	return a.greedyState
}

func (a *Agent) greedy(state []float64) [][]int {
	return a.online.Forward(a.stateInput(state), false).GreedyActions()
}

// QValues returns the online network's Q-values for a single state:
// out[agent][dim][action]. Useful for analysis and debugging.
func (a *Agent) QValues(state []float64) [][][]float64 {
	out := a.online.Forward(a.stateInput(state), false)
	qs := make([][][]float64, len(out.Q))
	for k := range out.Q {
		qs[k] = make([][]float64, len(out.Q[k]))
		for d := range out.Q[k] {
			qs[k][d] = mat.Clone(out.Q[k][d].Row(0))
		}
	}
	return qs
}

// Observe stores a transition and, once warm, performs one training step.
// It returns the minibatch loss (0 when no training happened).
func (a *Agent) Observe(t replay.Transition) float64 {
	if !a.observeAdd(t) {
		return 0
	}
	var loss float64
	for i := 0; i < a.cfg.TrainPerStep; i++ {
		loss = a.TrainStep()
	}
	return loss
}

// observeAdd validates and stores a transition, reporting whether the
// buffer is warm enough to train — Observe's preamble, shared with the
// pooled path.
func (a *Agent) observeAdd(t replay.Transition) bool {
	if len(t.Actions) != a.cfg.Spec.Agents*len(a.cfg.Spec.Dims) {
		panic("bdq: transition action count mismatch")
	}
	if len(t.Rewards) != a.cfg.Spec.Agents {
		panic("bdq: transition reward count mismatch")
	}
	a.buffer.Add(t)
	return a.buffer.Len() >= a.cfg.WarmupSteps
}

// TrainStep samples a minibatch, forms per-branch TD targets with the
// target network (actions chosen by the online network — double DQN
// style), backpropagates the weighted squared error, applies Adam and
// periodically syncs the target network. Returns the minibatch loss.
//
// The step is split into phases so the pooled path (pool.go) can run
// the eval-mode forwards of many agents as one grouped GEMM while
// keeping every agent's own operation order — and therefore its RNG
// draw order and every rounding — exactly as the monolithic step had.
func (a *Agent) TrainStep() float64 {
	ws := a.trainWorkspace()
	n := a.trainSample()
	onlineNext := a.online.Forward(ws.next, false)
	a.trainArgmax(onlineNext, n)
	targetNext := a.target.Forward(ws.next, false)
	a.trainTargets(targetNext, n)
	loss := a.trainBackprop(targetNext, n)
	a.trainCommit()
	return loss
}

// trainSample draws the minibatch and fills the state/next-state
// matrices. Returns the batch row count (always BatchSize — SampleInto
// samples with replacement).
func (a *Agent) trainSample() int {
	ws := a.trainWorkspace()
	a.buffer.SampleInto(&ws.batch, a.cfg.BatchSize, a.rng.Rand)
	n := len(ws.batch.Transitions)
	for i, t := range ws.batch.Transitions {
		copy(ws.states.Row(i), t.State)
		copy(ws.next.Row(i), t.NextState)
	}
	return n
}

// trainArgmax extracts the online network's action selections on s′
// (double-DQN style) from an eval forward over ws.next.
func (a *Agent) trainArgmax(onlineNext *Output, n int) {
	spec := a.cfg.Spec
	ws := a.train
	for k := 0; k < spec.Agents; k++ {
		for d := range spec.Dims {
			for b := 0; b < n; b++ {
				ws.argmax[k][d][b] = mat.Argmax(onlineNext.Q[k][d].Row(b))
			}
		}
	}
}

// trainTargets forms the per-agent bootstrap values y[k][b] from the
// target network's eval forward over ws.next.
func (a *Agent) trainTargets(targetNext *Output, n int) {
	spec := a.cfg.Spec
	D := len(spec.Dims)
	ws := a.train
	for k := 0; k < spec.Agents; k++ {
		for b := 0; b < n; b++ {
			t := ws.batch.Transitions[b]
			if t.Done {
				ws.y[k][b] = t.Rewards[k]
				continue
			}
			var boot float64
			for d := 0; d < D; d++ {
				boot += targetNext.Q[k][d].At(b, ws.argmax[k][d][b])
			}
			if a.cfg.TargetMode == TargetMeanBranches {
				boot /= float64(D)
			}
			ws.y[k][b] = t.Rewards[k] + a.cfg.Gamma*boot
		}
	}
}

// trainBackprop forwards the current states in training mode, builds
// the gradient — only the taken action of each branch receives error —
// backpropagates it and returns the (normalised) minibatch loss.
//
// The train-mode forward overwrites the eval Output of the same batch
// size (both use the network's workspace); argmax was extracted first.
// Gradients are already zero: parameters start that way and the
// optimiser step in trainCommit clears them as it consumes them.
func (a *Agent) trainBackprop(targetNext *Output, n int) float64 {
	ws := a.train
	out := a.online.Forward(ws.states, true)
	loss := a.trainLossGrad(out, targetNext, ws.gradQ, n)
	a.online.Backward(ws.gradQ)
	return loss
}

// trainLossGrad builds the Q-gradient and TD errors from a train-mode
// forward over ws.states — trainBackprop's loss loop, factored out so
// the pooled path can point it at band views of stacked outputs (and
// a stacked gradient) while keeping every member's arithmetic exact.
// gradQ is overwritten; the (normalised) minibatch loss is returned.
func (a *Agent) trainLossGrad(out, targetNext *Output, gradQ [][]*mat.Matrix, n int) float64 {
	spec := a.cfg.Spec
	K, D := spec.Agents, len(spec.Dims)
	ws := a.train
	var loss float64
	for b := range ws.tdErr {
		ws.tdErr[b] = 0
	}
	denom := float64(n * K * D)
	for k := 0; k < K; k++ {
		for d := 0; d < D; d++ {
			g := gradQ[k][d]
			g.Zero()
			for b := 0; b < n; b++ {
				act := ws.batch.Transitions[b].Actions[k*D+d]
				target := ws.y[k][b]
				if a.cfg.TargetMode == TargetPerBranch && !ws.batch.Transitions[b].Done {
					target = ws.batch.Transitions[b].Rewards[k] +
						a.cfg.Gamma*targetNext.Q[k][d].At(b, ws.argmax[k][d][b])
				}
				diff := out.Q[k][d].At(b, act) - target
				w := ws.batch.Weights[b]
				loss += 0.5 * w * diff * diff
				g.Set(b, act, w*diff/denom)
				if diff < 0 {
					ws.tdErr[b] -= diff / float64(K*D)
				} else {
					ws.tdErr[b] += diff / float64(K*D)
				}
			}
		}
	}
	return loss / denom
}

// trainCommit applies the optimiser step, updates replay priorities and
// periodically syncs the target network.
func (a *Agent) trainCommit() {
	ws := a.train
	a.opt.StepAndZeroGrad(a.online.Params())
	a.online.noteWeightsChanged()
	a.buffer.UpdatePriorities(ws.batch.Indices, ws.tdErr)

	a.trainSteps++
	if a.trainSteps%a.cfg.TargetSync == 0 {
		a.target.CopyValuesFrom(a.online)
	}
}

// trainCommitPooled is trainCommit with the optimiser step fused into
// one pass over the agent's contiguous arena slabs (Adam's flat form is
// bitwise identical to the per-param sweep — the slabs are tightly
// packed in Params() order). Only pool members have slabs to pass.
func (a *Agent) trainCommitPooled(value, grad, m, v []float64) {
	ws := a.train
	a.opt.StepAndZeroGradFlat(a.online.Params(), value, grad, m, v)
	a.online.noteWeightsChanged()
	a.buffer.UpdatePriorities(ws.batch.Indices, ws.tdErr)

	a.trainSteps++
	if a.trainSteps%a.cfg.TargetSync == 0 {
		a.target.CopyValuesFrom(a.online)
	}
}

// Transfer applies transfer learning (Sec. IV): the output layers of both
// networks are re-initialised while the shared representation and hidden
// layers keep their trained weights, and exploration is restarted at the
// given step of the ε schedule.
func (a *Agent) Transfer(restartStep int) {
	a.online.ReinitOutputLayers(a.rng.Rand)
	a.target.CopyValuesFrom(a.online)
	a.step = restartStep
}

// Save persists the online network weights.
func (a *Agent) Save(w io.Writer) error { return nn.Save(w, a.online.Params()) }

// Load restores online weights from r and syncs the target network.
func (a *Agent) Load(r io.Reader) error {
	if err := nn.Load(r, a.online.Params()); err != nil {
		return err
	}
	a.online.noteWeightsChanged()
	a.target.CopyValuesFrom(a.online)
	return nil
}

// ReplayLen returns the number of stored transitions.
func (a *Agent) ReplayLen() int { return a.buffer.Len() }
