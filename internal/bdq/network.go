// Package bdq implements the branching dueling Q-network (BDQ) of
// Tavakoli et al. and the multi-agent extension introduced by Twig
// (Sec. III-A): a shared state representation, one state-value stream per
// learning agent ("state agents"), and per-action-dimension advantage
// modules whose deepest (hidden) layer is shared across agents while each
// agent keeps its own linear output head. Gradients are rescaled by 1/K
// (number of agents) before entering the deepest advantage layer and by
// 1/D (number of action dimensions) before entering the shared
// representation, exactly as described in the paper.
package bdq

import (
	"fmt"
	"math/rand"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
)

// Spec describes the multi-agent BDQ architecture. Twig-S uses Agents=1;
// Twig-C uses one agent per colocated service. Every agent shares the
// same action dimensions (e.g. Dims = [18 cores, 9 DVFS states]).
type Spec struct {
	// StateDim is the total network input width: the concatenated,
	// feature-scaled PMC vectors of all agents.
	StateDim int
	// Agents is K, the number of learning agents (services).
	Agents int
	// Dims lists the number of discrete actions in each action
	// dimension (branch), shared by every agent.
	Dims []int
	// SharedHidden are the widths of the shared representation layers
	// (the paper uses [512, 256]).
	SharedHidden []int
	// BranchHidden is the width of the single hidden layer in each
	// advantage module and each state-value stream (the paper uses 128).
	BranchHidden int
	// Dropout is the drop probability applied after each fully
	// connected hidden layer (the paper uses 0.5). Zero disables it.
	Dropout float64
	// SharedValue collapses the per-agent state-value streams into one
	// stream shared by every agent — the ablation of Twig's multi-agent
	// contribution (Sec. III-A introduces per-agent "state agents"
	// precisely because simultaneous agents otherwise disturb each
	// other's learning).
	SharedValue bool
}

// Validate reports whether the spec is structurally usable.
func (s Spec) Validate() error {
	switch {
	case s.StateDim <= 0:
		return fmt.Errorf("bdq: StateDim = %d", s.StateDim)
	case s.Agents <= 0:
		return fmt.Errorf("bdq: Agents = %d", s.Agents)
	case len(s.Dims) == 0:
		return fmt.Errorf("bdq: no action dimensions")
	case len(s.SharedHidden) == 0:
		return fmt.Errorf("bdq: no shared hidden layers")
	case s.BranchHidden <= 0:
		return fmt.Errorf("bdq: BranchHidden = %d", s.BranchHidden)
	}
	for i, n := range s.Dims {
		if n <= 0 {
			return fmt.Errorf("bdq: Dims[%d] = %d", i, n)
		}
	}
	return nil
}

// Network is one instance (online or target) of the multi-agent BDQ.
type Network struct {
	spec Spec

	shared    *nn.Sequential   // input → shared representation
	values    []*nn.Sequential // K state-value streams: hidden → 1
	advHidden []*nn.Sequential // D shared advantage hidden layers
	advOut    [][]*nn.Dense    // [K][D] per-agent linear output heads

	// cached forward activations for Backward
	lastShared *mat.Matrix
	lastAdvHid []*mat.Matrix

	// reusable per-batch-size workspaces; see Forward's ownership note.
	fwd map[int]*fwdWS
	bwd map[int]*bwdWS

	params []*nn.Param // cached Params() result; layer set is immutable
	denses []*nn.Dense // cached dense-layer enumeration for the pool

	// weightEpoch counts parameter mutations (optimiser steps, target
	// syncs, loads, transfers). The persistent packed panels are keyed
	// by it, so a stale pack can never be used after the weights change
	// through *any* path.
	weightEpoch int
	// packEpoch is the weight epoch the dense layers' persistent packs
	// were last rebuilt at (−1 before the first pack).
	packEpoch int

	// noRescale disables the 1/K and 1/D gradient rescaling so tests
	// can compare Backward against exact finite differences.
	noRescale bool
}

// Output holds the per-agent, per-dimension Q-values for a batch:
// Q[k][d] is batch×Dims[d].
type Output struct {
	Q [][]*mat.Matrix
}

// fwdWS holds the Forward outputs for one batch size.
type fwdWS struct {
	out   *Output
	means []float64 // per-row advantage means
}

// bwdWS holds the Backward scratch for one batch size.
type bwdWS struct {
	sharedGrad *mat.Matrix   // batch×repr gradient entering the trunk
	gv         *mat.Matrix   // batch×1 value-stream gradient
	combined   *mat.Matrix   // batch×BranchHidden, summed over agents
	centered   []*mat.Matrix // per dimension: batch×Dims[d]
	means      []float64
}

// NewNetwork builds a network with He-initialised weights drawn from rng.
func NewNetwork(spec Spec, rng *rand.Rand) *Network {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n := &Network{spec: spec, packEpoch: -1}

	var layers []nn.Layer
	in := spec.StateDim
	for i, h := range spec.SharedHidden {
		layers = append(layers, nn.NewDenseReLU(fmt.Sprintf("shared%d", i), in, h, rng))
		if spec.Dropout > 0 {
			layers = append(layers, nn.NewDropout(spec.Dropout, rng))
		}
		in = h
	}
	n.shared = nn.NewSequential(layers...)
	repr := in

	numValues := spec.Agents
	if spec.SharedValue {
		numValues = 1
	}
	for k := 0; k < numValues; k++ {
		n.values = append(n.values, nn.NewSequential(
			nn.NewDenseReLU(fmt.Sprintf("value%d.h", k), repr, spec.BranchHidden, rng),
			nn.NewDense(fmt.Sprintf("value%d.out", k), spec.BranchHidden, 1, rng),
		))
	}
	for d := range spec.Dims {
		n.advHidden = append(n.advHidden, nn.NewSequential(
			nn.NewDenseReLU(fmt.Sprintf("adv%d.h", d), repr, spec.BranchHidden, rng),
		))
	}
	n.advOut = make([][]*nn.Dense, spec.Agents)
	for k := 0; k < spec.Agents; k++ {
		n.advOut[k] = make([]*nn.Dense, len(spec.Dims))
		for d, na := range spec.Dims {
			n.advOut[k][d] = nn.NewDense(fmt.Sprintf("adv%d.out%d", d, k), spec.BranchHidden, na, rng)
		}
	}
	return n
}

// Spec returns the architecture description.
func (n *Network) Spec() Spec { return n.spec }

// fwdWorkspace returns the reusable Output (and row-mean scratch) for
// the given batch size, building it on first use.
func (n *Network) fwdWorkspace(batch int) *fwdWS {
	if ws := n.fwd[batch]; ws != nil {
		return ws
	}
	if n.fwd == nil {
		n.fwd = make(map[int]*fwdWS, 2)
	}
	ws := &fwdWS{
		out:   &Output{Q: make([][]*mat.Matrix, n.spec.Agents)},
		means: make([]float64, batch),
	}
	for k := range ws.out.Q {
		ws.out.Q[k] = make([]*mat.Matrix, len(n.spec.Dims))
		for d, na := range n.spec.Dims {
			ws.out.Q[k][d] = mat.New(batch, na)
		}
	}
	n.fwd[batch] = ws
	return ws
}

// Forward computes Q-values for a batch of states (rows = samples,
// columns = StateDim). The dueling aggregation subtracts the per-row mean
// advantage so V is identifiable: Q = V + A − mean(A).
//
// The returned Output is a workspace owned by the network, keyed by
// batch size: it is overwritten by the network's next Forward call with
// the same batch size. Callers that need Q-values to survive longer must
// clone them (see Agent.QValues).
func (n *Network) Forward(states *mat.Matrix, train bool) *Output {
	n.ensurePacks()
	z := n.shared.Forward(states, train)
	n.lastShared = z
	if n.lastAdvHid == nil {
		n.lastAdvHid = make([]*mat.Matrix, len(n.spec.Dims))
	}
	for d := range n.spec.Dims {
		n.lastAdvHid[d] = n.advHidden[d].Forward(z, train)
	}
	ws := n.fwdWorkspace(states.Rows)
	out := ws.out
	// With SharedValue every agent reads the same V(s); forward it once.
	var sharedV *mat.Matrix
	if n.spec.SharedValue {
		sharedV = n.values[0].Forward(z, train)
	}
	for k := 0; k < n.spec.Agents; k++ {
		v := sharedV
		if v == nil {
			v = n.values[k].Forward(z, train) // batch×1
		}
		for d := range n.spec.Dims {
			a := n.advOut[k][d].Forward(n.lastAdvHid[d], train)
			q := out.Q[k][d]
			a.RowMeansInto(ws.means)
			for b := 0; b < a.Rows; b++ {
				vb := v.At(b, 0)
				arow := a.Row(b)
				qrow := q.Row(b)
				for j := range qrow {
					qrow[j] = vb + arow[j] - ws.means[b]
				}
			}
		}
	}
	return out
}

// Backward propagates the gradient of the loss with respect to every
// Q output. gradQ must have the same shape as a Forward Output. It
// applies the dueling decomposition, the 1/K rescale before the deepest
// advantage layer, and the 1/D rescale before the shared representation.
func (n *Network) Backward(gradQ [][]*mat.Matrix) {
	if n.lastShared == nil {
		panic("bdq: Backward before Forward")
	}
	batch := n.lastShared.Rows
	ws := n.bwdWorkspace(batch, n.lastShared.Cols)
	sharedGrad := ws.sharedGrad
	sharedGrad.Zero()
	K := float64(n.spec.Agents)
	D := float64(len(n.spec.Dims))
	if n.noRescale {
		K, D = 1, 1
	}

	// Per-agent value gradient: dQ/dV = 1 for every action of every
	// dimension, so dV[b] = Σ_d Σ_a gradQ[k][d][b][a]. With SharedValue
	// the single stream accumulates every agent's gradient.
	if n.spec.SharedValue {
		gv := ws.gv
		gv.Zero()
		for k := 0; k < n.spec.Agents; k++ {
			for d := range n.spec.Dims {
				g := gradQ[k][d]
				for b := 0; b < batch; b++ {
					gv.Data[b] += mat.Sum(g.Row(b))
				}
			}
		}
		gIn := n.values[0].Backward(gv)
		mat.Add(sharedGrad, sharedGrad, gIn)
	} else {
		for k := 0; k < n.spec.Agents; k++ {
			gv := ws.gv
			gv.Zero()
			for d := range n.spec.Dims {
				g := gradQ[k][d]
				for b := 0; b < batch; b++ {
					gv.Data[b] += mat.Sum(g.Row(b))
				}
			}
			gIn := n.values[k].Backward(gv)
			mat.Add(sharedGrad, sharedGrad, gIn)
		}
	}

	// Per-dimension advantage gradient. Because Q subtracts the mean
	// advantage, dA[a] = g[a] − mean(g). The combined gradient from the
	// K per-agent output heads is rescaled by 1/K before entering the
	// deepest (hidden) advantage layer.
	for d := range n.spec.Dims {
		combined := ws.combined
		combined.Zero()
		for k := 0; k < n.spec.Agents; k++ {
			g := gradQ[k][d]
			centered := ws.centered[d]
			g.RowMeansInto(ws.means)
			for b := 0; b < g.Rows; b++ {
				grow := g.Row(b)
				crow := centered.Row(b)
				for j := range crow {
					crow[j] = grow[j] - ws.means[b]
				}
			}
			gHid := n.advOut[k][d].Backward(centered)
			mat.Add(combined, combined, gHid)
		}
		combined.Scale(1 / K)
		gIn := n.advHidden[d].Backward(combined)
		mat.Add(sharedGrad, sharedGrad, gIn)
	}

	sharedGrad.Scale(1 / D)
	n.shared.Backward(sharedGrad)
}

// bwdWorkspace returns the reusable Backward scratch for the given batch
// size, building it on first use.
func (n *Network) bwdWorkspace(batch, repr int) *bwdWS {
	if ws := n.bwd[batch]; ws != nil {
		return ws
	}
	if n.bwd == nil {
		n.bwd = make(map[int]*bwdWS, 2)
	}
	ws := &bwdWS{
		sharedGrad: mat.New(batch, repr),
		gv:         mat.New(batch, 1),
		combined:   mat.New(batch, n.spec.BranchHidden),
		centered:   make([]*mat.Matrix, len(n.spec.Dims)),
		means:      make([]float64, batch),
	}
	for d, na := range n.spec.Dims {
		ws.centered[d] = mat.New(batch, na)
	}
	n.bwd[batch] = ws
	return ws
}

// Params returns all learnable parameters in a deterministic order
// (shared trunk, value streams, advantage hiddens, advantage heads).
// The slice is cached — the network's layer set never changes — so hot
// paths (ZeroGrad, the optimiser step) don't rebuild it. Callers must
// not append to or reorder the returned slice.
func (n *Network) Params() []*nn.Param {
	if n.params != nil {
		return n.params
	}
	ps := n.shared.Params()
	for _, v := range n.values {
		ps = append(ps, v.Params()...)
	}
	for _, a := range n.advHidden {
		ps = append(ps, a.Params()...)
	}
	for _, row := range n.advOut {
		for _, o := range row {
			ps = append(ps, o.Params()...)
		}
	}
	n.params = ps
	return ps
}

// noteWeightsChanged invalidates any packed-panel caches keyed on this
// network's weights. Every code path that mutates parameter values must
// call it (CopyValuesFrom and ReinitOutputLayers do so themselves; the
// agent bumps after optimiser steps and checkpoint/weight loads).
func (n *Network) noteWeightsChanged() { n.weightEpoch++ }

// ensurePacks refreshes every dense layer's persistent packed weight
// panels to the current weight epoch, so weights are packed exactly
// once per mutation instead of once per product. Forward calls it; the
// pool's grouped products (netPack) share the same panels. Packed
// products are bit-identical to the per-call-packing path
// (mat.MulPackedBiasAct's contract), so this changes no result.
func (n *Network) ensurePacks() {
	if n.packEpoch == n.weightEpoch {
		return
	}
	for _, d := range n.Denses() {
		d.RefreshPack()
	}
	n.packEpoch = n.weightEpoch
}

// Denses enumerates every dense layer in a deterministic order (trunk,
// value streams, advantage hiddens, advantage heads) — the traversal
// the pooled forward and its pack caches share. Cached; callers must
// not mutate the slice.
func (n *Network) Denses() []*nn.Dense {
	if n.denses != nil {
		return n.denses
	}
	var ds []*nn.Dense
	for _, l := range n.shared.Layers {
		if d, ok := l.(*nn.Dense); ok {
			ds = append(ds, d)
		}
	}
	for _, v := range n.values {
		for _, l := range v.Layers {
			if d, ok := l.(*nn.Dense); ok {
				ds = append(ds, d)
			}
		}
	}
	for _, a := range n.advHidden {
		for _, l := range a.Layers {
			if d, ok := l.(*nn.Dense); ok {
				ds = append(ds, d)
			}
		}
	}
	for _, row := range n.advOut {
		ds = append(ds, row...)
	}
	n.denses = ds
	return ds
}

// trunkDenses returns the dense layers of the shared trunk in forward
// order (dropout layers, identity in eval mode, are skipped).
func (n *Network) trunkDenses() []*nn.Dense {
	return n.Denses()[:len(n.spec.SharedHidden)]
}

// trunkDropout returns the dropout layer following trunk dense li, or
// nil when the spec disables dropout. The trunk interleaves
// [dense, dropout] pairs, so the layer sits at index 2·li+1.
func (n *Network) trunkDropout(li int) *nn.Dropout {
	if n.spec.Dropout <= 0 {
		return nil
	}
	return n.shared.Layers[2*li+1].(*nn.Dropout)
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// CopyValuesFrom copies all parameter values from src (target-network
// synchronisation). Architectures must match.
func (n *Network) CopyValuesFrom(src *Network) {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic("bdq: CopyValuesFrom architecture mismatch")
	}
	for i := range dst {
		dst[i].CopyValueFrom(from[i])
	}
	n.noteWeightsChanged()
}

// NumParams returns the number of scalar learnable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value.Data)
	}
	return total
}

// MemoryBytes returns an estimate of the parameter memory footprint
// (float64 weights), used by the memory-complexity experiment.
func (n *Network) MemoryBytes() int { return n.NumParams() * 8 }

// OutputParams returns the parameters of the final (output) layers: the
// per-agent value heads and per-agent advantage heads. Transfer learning
// re-initialises exactly these.
func (n *Network) OutputParams() []*nn.Param {
	var ps []*nn.Param
	for _, v := range n.values {
		// last Dense of the value stream
		last := v.Layers[len(v.Layers)-1].(*nn.Dense)
		ps = append(ps, last.Params()...)
	}
	for _, row := range n.advOut {
		for _, o := range row {
			ps = append(ps, o.Params()...)
		}
	}
	return ps
}

// ReinitOutputLayers randomises the final layers (transfer learning,
// Sec. IV): the trained shared representation and hidden layers are kept
// while the specialised output heads are re-drawn.
func (n *Network) ReinitOutputLayers(rng *rand.Rand) {
	for _, v := range n.values {
		v.Layers[len(v.Layers)-1].(*nn.Dense).InitHe(rng)
	}
	for _, row := range n.advOut {
		for _, o := range row {
			o.InitHe(rng)
		}
	}
	nn.ResetMoments(n.OutputParams())
	n.noteWeightsChanged()
}

// GreedyActions returns, for each agent and dimension, the argmax action
// of the (single-row) forward output.
func (o *Output) GreedyActions() [][]int {
	acts := make([][]int, len(o.Q))
	for k := range o.Q {
		acts[k] = make([]int, len(o.Q[k]))
		for d := range o.Q[k] {
			acts[k][d] = mat.Argmax(o.Q[k][d].Row(0))
		}
	}
	return acts
}
