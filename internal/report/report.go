// Package report renders experiment results for humans and machines:
// aligned text tables, CSV export (encoding/csv) for plotting outside
// the repository, and compact ASCII charts (sparklines, horizontal bars)
// used by the command-line tools to visualise traces without any
// graphics dependency.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text/CSV table.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; values are formatted with %v (floats with %g).
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case float32:
			row[i] = trimFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e9 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.4g", x)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC 4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a compact unicode sparkline, scaling
// min..max across the eight block heights. Empty input yields "".
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// HBar renders a horizontal bar of the given value scaled so max fills
// width characters, annotated with the value.
func HBar(value, max float64, width int) string {
	if width <= 0 {
		width = 20
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// Percent formats a fraction as a fixed-width percentage.
func Percent(frac float64) string { return fmt.Sprintf("%5.1f%%", frac*100) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
