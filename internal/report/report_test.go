package report

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableTextAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1.0)
	tb.AddRow("a-much-longer-name", 123.456)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Value column starts at the same offset on every line.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1][idx:], "1") {
		t.Fatalf("misaligned: %q", lines[1])
	}
	if tb.Len() != 2 {
		t.Fatal("Len")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", 2.5) // comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"x,y"`) {
		t.Fatalf("CSV quoting: %q", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("CSV header: %q", got)
	}
}

func TestFloatFormatting(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Fatalf("integer float = %q", trimFloat(3))
	}
	if trimFloat(3.14159) != "3.142" {
		t.Fatalf("float = %q", trimFloat(3.14159))
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline length %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series = %q", flat)
		}
	}
}

func TestHBar(t *testing.T) {
	full := HBar(10, 10, 10)
	if utf8.RuneCountInString(full) != 10 || strings.Contains(full, "·") {
		t.Fatalf("full bar = %q", full)
	}
	half := HBar(5, 10, 10)
	if strings.Count(half, "█") != 5 {
		t.Fatalf("half bar = %q", half)
	}
	if strings.Count(HBar(-1, 10, 10), "█") != 0 {
		t.Fatal("negative clamps")
	}
	if strings.Count(HBar(20, 10, 10), "█") != 10 {
		t.Fatal("overflow clamps")
	}
	if HBar(1, 2, 0) == "" {
		t.Fatal("zero width defaults")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.985) != " 98.5%" {
		t.Fatalf("Percent = %q", Percent(0.985))
	}
}
