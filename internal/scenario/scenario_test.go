package scenario

import (
	"strconv"
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// fingerprint serialises a trace with hex-float exactness: two traces
// share a fingerprint iff they are bit-identical.
func fingerprint(tr *loadgen.Trace) string {
	var b strings.Builder
	for t := 0; t < tr.Len(); t++ {
		b.WriteString(strconv.FormatFloat(tr.RPS(t), 'x', -1, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestPresets(t *testing.T) {
	names := Names()
	want := []string{"agentic-burst", "cloud-edge", "diurnal"}
	if len(names) != len(want) {
		t.Fatalf("presets = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("presets = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		sp := MustNamed(n)
		if err := sp.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", n, err)
		}
		if sp.Name != n {
			t.Fatalf("preset %s names itself %s", n, sp.Name)
		}
	}
	if _, err := Named("nope"); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestWorldsExpansion(t *testing.T) {
	sp := MustNamed("cloud-edge")
	worlds, err := sp.Worlds(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 3 || sp.TotalNodes() != 3 {
		t.Fatalf("cloud-edge expands to %d worlds", len(worlds))
	}
	if worlds[0].Name != "cloud-edge/cloud0" || worlds[2].Name != "cloud-edge/edge1" {
		t.Fatalf("world names %s %s", worlds[0].Name, worlds[2].Name)
	}
	for i, w := range worlds {
		if w.NodeIndex != i {
			t.Fatalf("world %d indexed %d", i, w.NodeIndex)
		}
		if len(w.Traces) != len(w.Class.Mix) || len(w.Services) != len(w.Traces) {
			t.Fatalf("world %s traces/mix mismatch", w.Name)
		}
		for _, tr := range w.Traces {
			if tr.Len() != sp.DurationS || !tr.Loop {
				t.Fatalf("world %s trace len %d loop %v", w.Name, tr.Len(), tr.Loop)
			}
			for s := 0; s < tr.Len(); s++ {
				if v := tr.RPS(s); v < 0 || v != v {
					t.Fatalf("world %s rps(%d) = %v", w.Name, s, v)
				}
			}
		}
	}

	// Tier shapes: the cloud node runs the paper SKU behind the WAN
	// tax, the edge nodes a capped single-socket SKU close to users.
	cloud := worlds[0].SimConfig(1)
	if cloud.Platform.Sockets != 2 || cloud.ManagedSocket != 1 || cloud.LatencyTaxMs != 6 {
		t.Fatalf("cloud sim config %+v", cloud)
	}
	edge := worlds[1].SimConfig(1)
	if edge.Platform.Sockets != 1 || edge.ManagedSocket != 0 || edge.LatencyTaxMs != 1 {
		t.Fatalf("edge sim config %+v", edge)
	}
	if lo, hi := edge.Platform.FreqRange(); lo != 1.2 || hi != 1.6 {
		t.Fatalf("edge DVFS range [%v,%v]", lo, hi)
	}

	specs := worlds[1].ServiceSpecs(7, func(string) float64 { return 9 })
	if len(specs) != 2 || specs[0].QoSTargetMs != 9 || specs[1].Seed != 7+101 {
		t.Fatalf("service specs %+v", specs)
	}
}

// TestWorldsDeterminism pins the engine's contract: same (spec, seed)
// gives byte-identical traces, different seeds differ, and sibling
// nodes of one class draw distinct streams.
func TestWorldsDeterminism(t *testing.T) {
	for _, name := range Names() {
		sp := MustNamed(name)
		a, err := sp.Worlds(42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := sp.Worlds(42)
		c, _ := sp.Worlds(43)
		for i := range a {
			for j := range a[i].Traces {
				fa := fingerprint(a[i].Traces[j])
				if fa != fingerprint(b[i].Traces[j]) {
					t.Fatalf("%s world %d trace %d: same seed differs", name, i, j)
				}
				if fa == fingerprint(c[i].Traces[j]) {
					t.Fatalf("%s world %d trace %d: seed 42 and 43 coincide", name, i, j)
				}
			}
		}
		if len(a) > 1 && fingerprint(a[0].Traces[0]) == fingerprint(a[1].Traces[0]) {
			t.Fatalf("%s: sibling nodes share a trace", name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Spec { return MustNamed("diurnal") }
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"bad generator", func(s *Spec) { s.Gen = "wat" }},
		{"short duration", func(s *Spec) { s.DurationS = 10 }},
		{"no classes", func(s *Spec) { s.Classes = nil }},
		{"zero count", func(s *Spec) { s.Classes[0].Count = 0 }},
		{"unknown service", func(s *Spec) { s.Classes[0].Mix[0].Service = "wat" }},
		{"bad fraction", func(s *Spec) { s.Classes[0].Mix[0].LoadFrac = 0 }},
		{"negative tax", func(s *Spec) { s.Classes[0].LatencyTaxMs = -1 }},
		{"bad burstiness", func(s *Spec) { s.Classes[0].Burstiness = 2 }},
		{"inverted DVFS", func(s *Spec) { s.Classes[0].Platform.MinFreqGHz = 1.8; s.Classes[0].Platform.MaxFreqGHz = 1.3 }},
		{"empty mix", func(s *Spec) { s.Classes[0].Mix = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := base()
			tc.mutate(&sp)
			if err := sp.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
			if _, err := sp.Worlds(1); err == nil {
				t.Fatal("Worlds must reject an invalid spec")
			}
		})
	}
}
