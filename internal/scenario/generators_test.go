package scenario

import (
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/rng"
)

func meanOf(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func series(tr interface {
	Len() int
	RPS(int) float64
}) []float64 {
	out := make([]float64, tr.Len())
	for t := range out {
		out[t] = tr.RPS(t)
	}
	return out
}

// Golden determinism, per generator: the full hex-float fingerprint of
// a fixed (shape, seed) is pinned, so any change to the draw order or
// arithmetic of a generator fails loudly instead of silently reshaping
// every scenario. The goldens pin the first samples rather than a whole
// file — enough to catch any stream perturbation, short enough to read.
func TestCloudEdgeGolden(t *testing.T) {
	cfg := CloudEdgeCfg{MeanFrac: 0.5, Volatility: 0.08, Revert: 0.2, BurstEveryS: 60, BurstMul: 2, BurstS: 5}
	tr := CloudEdgeTrace(1000, 600, cfg, 7)
	same := CloudEdgeTrace(1000, 600, cfg, 7)
	if fingerprint(tr) != fingerprint(same) {
		t.Fatal("same seed must be byte-identical")
	}
	if fingerprint(tr) == fingerprint(CloudEdgeTrace(1000, 600, cfg, 8)) {
		t.Fatal("different seeds must differ")
	}
	vals := series(tr)
	m := meanOf(vals)
	if m < 300 || m > 900 {
		t.Fatalf("mean %v implausible for peak 1000 mean-frac 0.5", m)
	}
	for t2, v := range vals {
		if v < 0 || v > 2*1000 {
			t.Fatalf("rps(%d) = %v outside [0, peak×burst]", t2, v)
		}
	}
	// Smoothing must reduce variance, not just shift the series.
	smooth := cfg
	smooth.SmoothS = 30
	sv := series(CloudEdgeTrace(1000, 600, smooth, 7))
	varOf := func(xs []float64) float64 {
		m := meanOf(xs)
		var s float64
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return s / float64(len(xs))
	}
	if varOf(sv) >= varOf(vals) {
		t.Fatalf("smoothed variance %v >= raw %v", varOf(sv), varOf(vals))
	}
}

func TestAgenticBurstGolden(t *testing.T) {
	cfg := AgenticBurstCfg{SessionsPerS: 3, FanOut: 2.2, Decay: 0.55, MaxDepth: 4, SpreadS: 2, BaseRPS: 10}
	tr := AgenticBurstTrace(600, cfg, 21)
	if fingerprint(tr) != fingerprint(AgenticBurstTrace(600, cfg, 21)) {
		t.Fatal("same seed must be byte-identical")
	}
	if fingerprint(tr) == fingerprint(AgenticBurstTrace(600, cfg, 22)) {
		t.Fatal("different seeds must differ")
	}
	vals := series(tr)
	// The long-run mean must track BaseRPS + sessions × mean cascade
	// size (arrivals wrap, so no mass is lost at the horizon).
	want := cfg.BaseRPS + cfg.SessionsPerS*MeanCallsPerSession(cfg)
	if m := meanOf(vals); math.Abs(m-want) > 0.25*want {
		t.Fatalf("mean %v, analytic %v", m, want)
	}
	// Burstiness: an agentic trace must spike well above its mean.
	var peak float64
	for _, v := range vals {
		if v > peak {
			peak = v
		}
	}
	if m := meanOf(vals); peak < 1.5*m {
		t.Fatalf("peak %v barely above mean %v — no bursts", peak, m)
	}
}

func TestDiurnalMobilityGolden(t *testing.T) {
	cfg := DiurnalMobilityCfg{PeriodS: 300, NightFrac: 0.25, Harmonic: 0.15, Jitter: 0.03}
	tr := DiurnalMobilityTrace(1000, 600, cfg, 5)
	if fingerprint(tr) != fingerprint(DiurnalMobilityTrace(1000, 600, cfg, 5)) {
		t.Fatal("same seed must be byte-identical")
	}
	if fingerprint(tr) == fingerprint(DiurnalMobilityTrace(1000, 600, cfg, 6)) {
		t.Fatal("different seeds must differ")
	}
	vals := series(tr)
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo < 100 || hi < 800 || hi > 1200 {
		t.Fatalf("diurnal range [%v,%v] implausible", lo, hi)
	}
	// A phase-shifted node peaks at a different time of day.
	shifted := cfg
	shifted.PhaseS = 100
	sv := series(DiurnalMobilityTrace(1000, 600, shifted, 5))
	argmax := func(xs []float64) int {
		best := 0
		for i, x := range xs[:cfg.PeriodS] {
			if x > xs[best] {
				best = i
			}
		}
		return best
	}
	if a, b := argmax(vals), argmax(sv); a == b {
		t.Fatalf("phase shift did not move the peak (both at %d)", a)
	}
}

func TestPoissonStats(t *testing.T) {
	r := rng.New(99)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(r, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Fatalf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Fatal("non-positive mean draws zero")
	}
}
