package scenario

import (
	"math"

	"github.com/twig-sched/twig/internal/rng"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// The three generators below are pure functions of (shape, length,
// seed): every draw comes from one rng.New(seed) stream consumed in a
// fixed order, so equal inputs give byte-identical traces and the
// golden determinism tests can pin them.

// CloudEdgeCfg shapes one tier of the cloud-edge family.
type CloudEdgeCfg struct {
	// MeanFrac is the long-run mean load as a fraction of peak.
	MeanFrac float64
	// Volatility is the per-second random-walk step (fraction of peak);
	// Revert pulls the walk back toward MeanFrac (0..1].
	Volatility float64
	Revert     float64
	// BurstEveryS, when positive, triggers Poisson offload bursts with
	// that mean spacing: the load multiplies by BurstMul for BurstS
	// seconds (a neighbouring tier shedding traffic here).
	BurstEveryS int
	BurstMul    float64
	BurstS      int
	// SmoothS, when > 1, applies a trailing moving average — the
	// statistical multiplexing an aggregation tier sees.
	SmoothS int
}

// CloudEdgeTrace generates n seconds of tiered cloud-edge load peaking
// at peakRPS.
func CloudEdgeTrace(peakRPS float64, n int, cfg CloudEdgeCfg, seed int64) *loadgen.Trace {
	r := rng.New(seed)
	raw := make([]float64, n)
	level := cfg.MeanFrac
	burstLeft := 0
	for t := 0; t < n; t++ {
		level += cfg.Revert*(cfg.MeanFrac-level) + cfg.Volatility*r.NormFloat64()
		if level < 0 {
			level = 0
		}
		if level > 1 {
			level = 1
		}
		mul := 1.0
		if cfg.BurstEveryS > 0 {
			if burstLeft == 0 && r.Float64() < 1/float64(cfg.BurstEveryS) {
				burstLeft = cfg.BurstS
			}
			if burstLeft > 0 {
				mul = cfg.BurstMul
				burstLeft--
			}
		}
		raw[t] = peakRPS * level * mul
	}
	if cfg.SmoothS > 1 {
		sm := make([]float64, n)
		var sum float64
		for t := 0; t < n; t++ {
			sum += raw[t]
			if t >= cfg.SmoothS {
				sum -= raw[t-cfg.SmoothS]
			}
			win := t + 1
			if win > cfg.SmoothS {
				win = cfg.SmoothS
			}
			sm[t] = sum / float64(win)
		}
		raw = sm
	}
	return loadgen.NewTrace(raw, true)
}

// AgenticBurstCfg shapes the agentic spawn-fan-out family.
type AgenticBurstCfg struct {
	// SessionsPerS is the mean rate of new agent sessions (Poisson).
	SessionsPerS float64
	// Each call spawns on average FanOut·Decay^depth child tool-calls;
	// the cascade stops at MaxDepth.
	FanOut   float64
	Decay    float64
	MaxDepth int
	// SpreadS jitters each depth level's arrivals over [0,SpreadS]
	// extra seconds past the one second per call round-trip.
	SpreadS int
	// BaseRPS is the steady non-agentic background floor.
	BaseRPS float64
}

// MeanCallsPerSession is the expected total requests one session
// generates, root included.
func MeanCallsPerSession(cfg AgenticBurstCfg) float64 {
	total, level := 0.0, 1.0
	for d := 0; d <= cfg.MaxDepth; d++ {
		total += level
		level *= cfg.FanOut * math.Pow(cfg.Decay, float64(d))
	}
	return total
}

// AgenticBurstTrace generates n seconds of agentic load: every second
// draws Poisson(SessionsPerS) new sessions, each spawning a cascade
// whose depth-d calls land d seconds (plus jitter) later. Arrivals past
// the horizon wrap around — the trace loops, so no spawned work is
// lost.
func AgenticBurstTrace(n int, cfg AgenticBurstCfg, seed int64) *loadgen.Trace {
	r := rng.New(seed)
	rps := make([]float64, n)
	for t := 0; t < n; t++ {
		rps[t] += cfg.BaseRPS
		sessions := poisson(r, cfg.SessionsPerS)
		for s := 0; s < sessions; s++ {
			calls := 1
			for d := 0; calls > 0 && d <= cfg.MaxDepth; d++ {
				for c := 0; c < calls; c++ {
					at := t + d
					if cfg.SpreadS > 0 {
						at += r.Intn(cfg.SpreadS + 1)
					}
					rps[at%n]++
				}
				if d < cfg.MaxDepth {
					mean := float64(calls) * cfg.FanOut * math.Pow(cfg.Decay, float64(d))
					calls = poisson(r, mean)
				} else {
					calls = 0
				}
			}
		}
	}
	return loadgen.NewTrace(rps, true)
}

// DiurnalMobilityCfg shapes the cellular diurnal family.
type DiurnalMobilityCfg struct {
	// PeriodS is the day length; PhaseS shifts this node's day, so a
	// ring of phase-shifted cells models users moving between them.
	PeriodS int
	PhaseS  int
	// NightFrac is the load floor at the bottom of the cycle.
	NightFrac float64
	// Harmonic adds a second harmonic (the morning/evening double peak).
	Harmonic float64
	// Jitter is multiplicative Gaussian noise on every sample.
	Jitter float64
}

// DiurnalMobilityTrace generates n seconds of phase-shifted diurnal
// load peaking at peakRPS.
func DiurnalMobilityTrace(peakRPS float64, n int, cfg DiurnalMobilityCfg, seed int64) *loadgen.Trace {
	r := rng.New(seed)
	rps := make([]float64, n)
	for t := 0; t < n; t++ {
		x := 2 * math.Pi * float64(t+cfg.PhaseS) / float64(cfg.PeriodS)
		s := 0.5*(1+math.Sin(x)) + cfg.Harmonic*math.Sin(2*x+1)
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		v := peakRPS * (cfg.NightFrac + (1-cfg.NightFrac)*s) * (1 + cfg.Jitter*r.NormFloat64())
		if v < 0 {
			v = 0
		}
		rps[t] = v
	}
	return loadgen.NewTrace(rps, true)
}

// poisson draws a Poisson variate: Knuth's product method for small
// means, the Gaussian approximation above 30 (where Knuth's running
// product would underflow).
func poisson(r *rng.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := math.Round(mean + math.Sqrt(mean)*r.NormFloat64())
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= r.Float64()
	}
	return k - 1
}
