// Package scenario is the declarative scenario engine: it composes
// service profiles, platform descriptions and seeded trace generators
// into runnable worlds. A Spec names a scenario — node classes with
// their own core counts, DVFS ranges and inter-tier latency tax, a
// service mix per class, and a trace-generator family — and Worlds
// expands it deterministically into one world per node, ready to drive
// a sim.Server. The named presets (cloud-edge, agentic-burst, diurnal)
// are the workload families ROADMAP item 4 opens: tiered cloud-edge
// load per TD3-Sched, spawn-fan-out agentic bursts per SwarmX, and
// cellular-style diurnal traffic with per-node phase shifts.
//
// The package sits below internal/experiments (which sweeps scenarios)
// and must not import it; QoS targets are calibrated by the caller
// against each world's own platform.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
)

// TraceGen names a trace-generator family.
type TraceGen string

// The built-in generator families.
const (
	// GenCloudEdge is tiered load: a mean-reverting walk, smoothed and
	// calm on aggregation tiers, spiky with Poisson offload bursts on
	// edge tiers (TD3-Sched's cloud-edge traffic shape).
	GenCloudEdge TraceGen = "cloud-edge"
	// GenAgenticBurst is a long tail of short tool-call-like requests:
	// Poisson agent sessions each spawning a depth-decaying fan-out
	// cascade over the following seconds (SwarmX's request shape).
	GenAgenticBurst TraceGen = "agentic-burst"
	// GenDiurnal is a sinusoidal day/night cycle with a secondary
	// harmonic and mobility-style phase shifts between nodes (the
	// cellular RAN load model).
	GenDiurnal TraceGen = "diurnal"
)

// ServiceMix is one service in a node class's colocation mix.
type ServiceMix struct {
	// Service names a built-in profile.
	Service string
	// LoadFrac scales the profile's MaxLoadRPS to this scenario's peak
	// offered load for the service.
	LoadFrac float64
}

// NodeClass describes one homogeneous group of nodes.
type NodeClass struct {
	Name  string
	Count int
	// Platform is the node SKU; the zero value selects the paper's
	// 2×18-core Xeon with the full 1.2–2.0 GHz DVFS range.
	Platform platform.Config
	// LatencyTaxMs is the inter-tier network round-trip charged on
	// every request served from this class (sim.Config.LatencyTaxMs).
	LatencyTaxMs float64
	// Burstiness in [0,1] shapes the class's traffic: 0 is a smooth
	// aggregated tier, 1 a spiky leaf tier. Generators interpret it.
	Burstiness float64
	// Mix is the colocated service set every node of this class hosts.
	Mix []ServiceMix
}

// platformConfig resolves the class SKU, defaulting to the paper node.
func (c NodeClass) platformConfig() platform.Config {
	if c.Platform.Sockets == 0 && c.Platform.CoresPerSocket == 0 {
		p := platform.DefaultConfig()
		p.MinFreqGHz, p.MaxFreqGHz = c.Platform.MinFreqGHz, c.Platform.MaxFreqGHz
		return p
	}
	return c.Platform
}

// Spec is a declarative scenario: classes × mix × generator.
type Spec struct {
	Name        string
	Description string
	Classes     []NodeClass
	// Gen selects the trace-generator family for every node.
	Gen TraceGen
	// DurationS is the generated trace length; traces loop past it, so
	// runs of any length draw from the same deterministic series.
	DurationS int
}

// TotalNodes is the number of worlds the spec expands to.
func (s Spec) TotalNodes() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Count
	}
	return n
}

// Validate checks the spec is expandable: known services and generator,
// sane counts, fractions, platforms and taxes.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	switch s.Gen {
	case GenCloudEdge, GenAgenticBurst, GenDiurnal:
	default:
		return fmt.Errorf("scenario %s: unknown trace generator %q", s.Name, s.Gen)
	}
	if s.DurationS < 60 {
		return fmt.Errorf("scenario %s: duration %d s is shorter than one monitoring minute", s.Name, s.DurationS)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario %s: no node classes", s.Name)
	}
	for _, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("scenario %s: class has no name", s.Name)
		}
		if c.Count < 1 {
			return fmt.Errorf("scenario %s: class %s has count %d", s.Name, c.Name, c.Count)
		}
		p := c.platformConfig()
		if p.Sockets < 1 || p.CoresPerSocket < 1 {
			return fmt.Errorf("scenario %s: class %s platform %+v is not a machine", s.Name, c.Name, p)
		}
		if lo, hi := p.FreqRange(); math.IsNaN(lo) || math.IsNaN(hi) || lo < 0.1 || hi < lo {
			return fmt.Errorf("scenario %s: class %s DVFS range [%v,%v] is invalid", s.Name, c.Name, lo, hi)
		}
		if !(c.LatencyTaxMs >= 0) || math.IsInf(c.LatencyTaxMs, 0) {
			return fmt.Errorf("scenario %s: class %s latency tax %v ms is not finite and non-negative", s.Name, c.Name, c.LatencyTaxMs)
		}
		if c.Burstiness < 0 || c.Burstiness > 1 || math.IsNaN(c.Burstiness) {
			return fmt.Errorf("scenario %s: class %s burstiness %v outside [0,1]", s.Name, c.Name, c.Burstiness)
		}
		if len(c.Mix) == 0 {
			return fmt.Errorf("scenario %s: class %s hosts no services", s.Name, c.Name)
		}
		for _, m := range c.Mix {
			if _, err := service.Lookup(m.Service); err != nil {
				return fmt.Errorf("scenario %s: class %s: %w", s.Name, c.Name, err)
			}
			if !(m.LoadFrac > 0) || m.LoadFrac > 1.5 {
				return fmt.Errorf("scenario %s: class %s service %s load fraction %v outside (0,1.5]", s.Name, c.Name, m.Service, m.LoadFrac)
			}
		}
	}
	return nil
}

// World is one expanded node: its class, its position in the scenario,
// and one generated trace per service in the class mix.
type World struct {
	// Scenario and Name identify the world, e.g. "cloud-edge" and
	// "cloud-edge/edge1".
	Scenario string
	Name     string
	Class    NodeClass
	// NodeIndex is the world's global index across the whole spec; the
	// diurnal phase shift and the trace seeds derive from it.
	NodeIndex int
	// Services lists the profile names, aligned with Traces.
	Services []string
	Traces   []*loadgen.Trace
}

// SimConfig assembles the simulator configuration for this world: the
// class SKU, its latency tax, and the managed socket pinned to the last
// socket (on a 1-socket edge box the only one).
func (w World) SimConfig(measurementSeed int64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Platform = w.Class.platformConfig()
	cfg.ManagedSocket = cfg.Platform.Sockets - 1
	cfg.LatencyTaxMs = w.Class.LatencyTaxMs
	cfg.MeasurementSeed = measurementSeed
	return cfg
}

// Patterns exposes the traces as load patterns, one per service.
func (w World) Patterns() []loadgen.Pattern {
	out := make([]loadgen.Pattern, len(w.Traces))
	for i, tr := range w.Traces {
		out[i] = tr
	}
	return out
}

// ServiceSpecs builds the simulator service specs; qosMs maps a profile
// name to the QoS target calibrated for this world's platform.
func (w World) ServiceSpecs(seed int64, qosMs func(name string) float64) []sim.ServiceSpec {
	specs := make([]sim.ServiceSpec, len(w.Services))
	for i, name := range w.Services {
		specs[i] = sim.ServiceSpec{
			Profile:     service.MustLookup(name),
			QoSTargetMs: qosMs(name),
			Seed:        seed + int64(i)*101,
		}
	}
	return specs
}

// Worlds expands the spec deterministically: one world per node, one
// trace per (node, service) seeded as seed + nodeIndex·10007 +
// serviceIndex·101. Equal (spec, seed) pairs yield byte-identical
// traces; the seed never perturbs the expansion order.
func (s Spec) Worlds(seed int64) ([]World, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := s.TotalNodes()
	worlds := make([]World, 0, total)
	idx := 0
	for _, cl := range s.Classes {
		for j := 0; j < cl.Count; j++ {
			w := World{
				Scenario:  s.Name,
				Name:      fmt.Sprintf("%s/%s%d", s.Name, cl.Name, j),
				Class:     cl,
				NodeIndex: idx,
			}
			for si, m := range cl.Mix {
				peak := m.LoadFrac * service.MustLookup(m.Service).MaxLoadRPS
				tseed := seed + int64(idx)*10007 + int64(si)*101
				w.Services = append(w.Services, m.Service)
				w.Traces = append(w.Traces, s.generate(peak, cl, idx, total, tseed))
			}
			worlds = append(worlds, w)
			idx++
		}
	}
	return worlds, nil
}

// generate builds one trace of the spec's family for a service peaking
// at peak RPS on node idx of total.
func (s Spec) generate(peak float64, cl NodeClass, idx, total int, seed int64) *loadgen.Trace {
	switch s.Gen {
	case GenCloudEdge:
		cfg := CloudEdgeCfg{
			MeanFrac:   0.55,
			Volatility: 0.02 + 0.10*cl.Burstiness,
			Revert:     0.15,
		}
		if cl.Burstiness < 0.5 {
			// Aggregation tier: many edge flows averaged out.
			cfg.SmoothS = 30
		} else {
			// Leaf tier: offload bursts land here.
			cfg.BurstEveryS = 240
			cfg.BurstMul = 1.8
			cfg.BurstS = 20
		}
		return CloudEdgeTrace(peak, s.DurationS, cfg, seed)
	case GenAgenticBurst:
		cfg := AgenticBurstCfg{
			FanOut:   2.2,
			Decay:    0.55,
			MaxDepth: 4,
			SpreadS:  2,
			BaseRPS:  0.10 * peak,
		}
		// Size the session rate so the long-run mean lands at ~60% of
		// the scenario peak, leaving the cascades room to spike.
		cfg.SessionsPerS = (0.60*peak - cfg.BaseRPS) / MeanCallsPerSession(cfg)
		return AgenticBurstTrace(s.DurationS, cfg, seed)
	case GenDiurnal:
		period := 1800
		return DiurnalMobilityTrace(peak, s.DurationS, DiurnalMobilityCfg{
			PeriodS:   period,
			PhaseS:    idx * period / total,
			NightFrac: 0.25,
			Harmonic:  0.15,
			Jitter:    0.02 + 0.04*cl.Burstiness,
		}, seed)
	}
	panic("scenario: unreachable generator " + string(s.Gen)) // Validate rejects unknown
}

// presets returns the built-in scenarios, rebuilt per call so callers
// can mutate their copy freely.
func presets() map[string]Spec {
	edgeSKU := platform.Config{Sockets: 1, CoresPerSocket: 10, MinFreqGHz: 1.2, MaxFreqGHz: 1.6}
	return map[string]Spec{
		"cloud-edge": {
			Name:        "cloud-edge",
			Description: "two-tier deployment: one paper-SKU cloud node behind a 6 ms WAN tax, two capped 10-core edge nodes close to users",
			Gen:         GenCloudEdge,
			DurationS:   3600,
			Classes: []NodeClass{
				{
					Name: "cloud", Count: 1, LatencyTaxMs: 6, Burstiness: 0.2,
					Mix: []ServiceMix{{Service: "xapian", LoadFrac: 0.5}, {Service: "moses", LoadFrac: 0.4}},
				},
				{
					Name: "edge", Count: 2, Platform: edgeSKU, LatencyTaxMs: 1, Burstiness: 0.8,
					Mix: []ServiceMix{{Service: "xapian", LoadFrac: 0.25}, {Service: "masstree", LoadFrac: 0.3}},
				},
			},
		},
		"agentic-burst": {
			Name:        "agentic-burst",
			Description: "agentic serving pods: Poisson tool-call sessions spawning depth-decaying fan-out cascades over a memcached/masstree/xapian mix",
			Gen:         GenAgenticBurst,
			DurationS:   3600,
			Classes: []NodeClass{
				{
					Name: "pod", Count: 2, Burstiness: 1,
					Mix: []ServiceMix{
						{Service: "memcached", LoadFrac: 0.05},
						{Service: "masstree", LoadFrac: 0.25},
						{Service: "xapian", LoadFrac: 0.3},
					},
				},
			},
		},
		"diurnal": {
			Name:        "diurnal",
			Description: "three cellular-style cells with phase-shifted day/night sinusoids plus a harmonic, so load migrates between nodes as users move",
			Gen:         GenDiurnal,
			DurationS:   3600,
			Classes: []NodeClass{
				{
					Name: "cell", Count: 3, Burstiness: 0.5,
					Mix: []ServiceMix{{Service: "masstree", LoadFrac: 0.5}, {Service: "moses", LoadFrac: 0.4}},
				},
			},
		},
	}
}

// Names lists the built-in scenario presets, sorted.
func Names() []string {
	ps := presets()
	out := make([]string, 0, len(ps))
	for n := range ps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Named returns a built-in preset by name.
func Named(name string) (Spec, error) {
	if s, ok := presets()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, Names())
}

// MustNamed is Named for known-good names; it panics otherwise.
func MustNamed(name string) Spec {
	s, err := Named(name)
	if err != nil {
		panic(err)
	}
	return s
}
