package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/replay"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// Table3Result reproduces Table III: the per-interval overhead of
// running Twig. The paper reports 25 ms (GPU) / 48 ms (CPU) for the
// gradient-descent computation, 2 ms for PMC gathering/pre-processing,
// 7 ms for core allocation + DVFS changes, and 352 B/s of PMC data per
// service. Our numbers are CPU-only Go.
type Table3Result struct {
	GradientDescent time.Duration
	PMCGather       time.Duration
	Mapping         time.Duration
	Total           time.Duration
	// PMCDataBytes is the per-second PMC payload per service: 11
	// float64 counters plus the metadata the paper counts (352 B/s).
	PMCDataBytes int
}

// Table3 measures the overheads with the paper-size network (512/256
// shared, 128 per branch) over iters repetitions.
func Table3(iters int) Table3Result {
	sc := PaperScale()
	k := 2
	spec := bdq.Spec{
		StateDim:     k * int(pmc.NumCounters),
		Agents:       k,
		Dims:         []int{18, 9},
		SharedHidden: sc.SharedHidden,
		BranchHidden: sc.BranchHidden,
		Dropout:      sc.Dropout,
	}
	agent := bdq.NewAgent(bdq.AgentConfig{
		Spec:      spec,
		BatchSize: sc.BatchSize,
		UsePER:    true,
		Seed:      1,
	})
	state := make([]float64, spec.StateDim)
	for i := range state {
		state[i] = 0.3
	}
	// Warm the replay buffer.
	for i := 0; i < 2*sc.BatchSize; i++ {
		acts := agent.SelectActions(state)
		flat := []int{acts[0][0], acts[0][1], acts[1][0], acts[1][1]}
		agent.Observe(replay.Transition{State: state, Actions: flat, Rewards: []float64{1, 1}, NextState: state})
	}

	var res Table3Result
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		agent.TrainStep()
	}
	res.GradientDescent = time.Since(t0) / time.Duration(iters)

	monitor := core.NewMonitor(k, 5)
	samples := make([]pmc.Sample, k)
	t0 = time.Now()
	for i := 0; i < iters*10; i++ {
		monitor.Observe(samples)
	}
	res.PMCGather = time.Since(t0) / time.Duration(iters*10)

	cores := make([]int, 18)
	for i := range cores {
		cores[i] = i
	}
	mapper := core.NewMapper(cores)
	reqs := []core.Request{{Cores: 7, FreqGHz: 1.6}, {Cores: 9, FreqGHz: 1.8}}
	t0 = time.Now()
	for i := 0; i < iters*10; i++ {
		mapper.Map(reqs)
	}
	res.Mapping = time.Since(t0) / time.Duration(iters*10)

	res.Total = res.GradientDescent + res.PMCGather + res.Mapping
	res.PMCDataBytes = int(pmc.NumCounters) * 8 * 4 // 4 samples/s like the paper's 352 B/s
	return res
}

// String renders a Table III analogue.
func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: per-interval Twig overhead (CPU-only Go)\n")
	fmt.Fprintf(&b, "  gradient descent  %10v   (paper: 25 ms GPU / 48 ms CPU)\n", r.GradientDescent.Round(time.Microsecond))
	fmt.Fprintf(&b, "  PMC gather+smooth %10v   (paper: 2 ms)\n", r.PMCGather.Round(time.Microsecond))
	fmt.Fprintf(&b, "  core/DVFS mapping %10v   (paper: 7 ms, dominated by sysfs)\n", r.Mapping.Round(time.Microsecond))
	fmt.Fprintf(&b, "  total             %10v   (paper: 34 ms GPU / 57 ms CPU)\n", r.Total.Round(time.Microsecond))
	fmt.Fprintf(&b, "  PMC data per service: %d B/s (paper: 352 B/s)\n", r.PMCDataBytes)
	return b.String()
}
