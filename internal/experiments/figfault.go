package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// FaultCell is one (scenario, manager, guarded?) run of the robustness
// matrix.
type FaultCell struct {
	Scenario string
	Manager  string
	Guarded  bool
	// MeanQoS and MinQoS summarise the per-service QoS guarantees over
	// the evaluation window; intervals where a service is dark count as
	// violations.
	MeanQoS float64
	MinQoS  float64
	EnergyJ float64
	// MeanRecoveryS is the mean number of intervals from a service's
	// restart until its first interval back under the QoS target;
	// Recoveries counts the episodes measured.
	MeanRecoveryS float64
	Recoveries    int
	// DecidePanics and StepErrors are the loop-level interventions (a
	// guarded controller should drive both to zero on its own).
	DecidePanics int
	StepErrors   int
	// Guard reports the wrapper's internal interventions (zero when
	// Guarded is false).
	Guard ctrl.GuardHealth
}

// FigFaultResult is the full robustness matrix: every manager with and
// without the Guard wrapper under every graded fault scenario.
type FigFaultResult struct {
	Scenarios []string
	Services  []string
	Cells     []FaultCell
}

// figFaultManagers enumerates the compared managers.
var figFaultManagers = []string{"twig-c", "parties", "static"}

// FigFault runs the robustness comparison: masstree and xapian colocated
// at a moderate fixed load, managed by Twig-C and two baselines, each
// with and without the resilient Guard wrapper, under the named fault
// scenarios. It is the harness behind the "fault model" section of
// DESIGN.md rather than a figure of the original paper.
func FigFault(sc Scale, seed int64) FigFaultResult {
	scenarios := []string{"none", "sensor", "actuator", "crash", "hostile"}
	res := FigFaultResult{Scenarios: scenarios, Services: []string{"masstree", "xapian"}}
	for _, scen := range scenarios {
		fs := faults.MustNamed(scen)
		adaptScenario(&fs, sc.LearnS+sc.SummaryS)
		for _, mgr := range figFaultManagers {
			for _, guarded := range []bool{false, true} {
				res.Cells = append(res.Cells, FaultCellRun(sc, seed, fs, mgr, guarded, res.Services))
			}
		}
	}
	return res
}

// adaptScenario rescales crash episodes so short runs still see several
// crash/restart cycles inside the evaluation window.
func adaptScenario(fs *faults.Scenario, totalS int) {
	if fs.CrashPeriodS <= 0 {
		return
	}
	if totalS < 2*fs.CrashPeriodS {
		fs.CrashPeriodS = totalS / 5
		if fs.CrashPeriodS < 30 {
			fs.CrashPeriodS = 30
		}
	}
	if fs.CrashOfflineS >= fs.CrashPeriodS/2 {
		fs.CrashOfflineS = fs.CrashPeriodS / 3
		if fs.CrashOfflineS < 1 {
			fs.CrashOfflineS = 1
		}
	}
}

// FaultCellRun executes one cell of the robustness matrix.
func FaultCellRun(sc Scale, seed int64, fs faults.Scenario, manager string, guarded bool, names []string) FaultCell {
	srv := NewFaultyServer(seed, &fs, names...)
	var inner ctrl.Controller
	switch manager {
	case "twig-c":
		inner = NewTwig(srv, sc, seed, names...)
	case "parties":
		inner = baselines.NewParties(baselines.DefaultPartiesConfig(), srv.ManagedCores(), len(names))
	case "static":
		inner = baselines.NewStatic(srv.ManagedCores(), len(names))
	default:
		panic("experiments: unknown fault-matrix manager " + manager)
	}

	c := inner
	var guard *ctrl.Guard
	if guarded {
		guard = ctrl.NewGuard(inner, ctrl.DefaultGuardConfig(srv.ManagedCores()))
		c = guard
	}

	patterns := make([]loadgen.Pattern, len(names))
	for i, n := range names {
		patterns[i] = loadgen.Fixed(0.3 * service.MustLookup(n).MaxLoadRPS)
	}

	k := len(names)
	crashActive := make([]bool, k)
	restartAt := make([]int, k)
	for i := range restartAt {
		restartAt[i] = -1
	}
	recSum, recN := 0, 0

	sum := Run(RunConfig{
		Server:       srv,
		Controller:   c,
		Patterns:     patterns,
		Seconds:      sc.LearnS + sc.SummaryS,
		SummaryFromS: sc.LearnS,
		Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
			for i := 0; i < k; i++ {
				now := false
				for _, e := range r.Faults {
					if e.Kind == faults.ServiceCrash && e.Service == i {
						now = true
					}
				}
				if crashActive[i] && !now {
					restartAt[i] = t // first interval back up
				}
				crashActive[i] = now
				if restartAt[i] >= 0 && !now {
					sv := r.Services[i]
					if !math.IsNaN(sv.P99Ms) && sv.P99Ms <= sv.QoSTargetMs {
						recSum += t - restartAt[i]
						recN++
						restartAt[i] = -1
					}
				}
			}
		},
	})

	cell := FaultCell{
		Scenario:     fs.Name,
		Manager:      manager,
		Guarded:      guarded,
		MinQoS:       1,
		EnergyJ:      sum.EnergyJ,
		DecidePanics: sum.DecidePanics,
		StepErrors:   sum.StepErrors,
		Recoveries:   recN,
	}
	for _, q := range sum.QoSGuarantee {
		cell.MeanQoS += q
		if q < cell.MinQoS {
			cell.MinQoS = q
		}
	}
	cell.MeanQoS /= float64(len(sum.QoSGuarantee))
	if recN > 0 {
		cell.MeanRecoveryS = float64(recSum) / float64(recN)
	}
	if guard != nil {
		cell.Guard = guard.Health()
	}
	return cell
}

// String renders the matrix grouped by scenario.
func (r FigFaultResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault matrix: %s colocated, guarded vs unguarded managers\n",
		strings.Join(r.Services, " + "))
	for _, scen := range r.Scenarios {
		fmt.Fprintf(&b, "  scenario %-10s\n", scen)
		for _, c := range r.Cells {
			if c.Scenario != scen {
				continue
			}
			name := c.Manager
			if c.Guarded {
				name += "+guard"
			}
			fmt.Fprintf(&b, "    %-14s QoS mean %5.1f%% min %5.1f%%, energy %8.0f J",
				name, c.MeanQoS*100, c.MinQoS*100, c.EnergyJ)
			if c.Recoveries > 0 {
				fmt.Fprintf(&b, ", recovery %.1f s over %d crashes", c.MeanRecoveryS, c.Recoveries)
			}
			if c.DecidePanics > 0 || c.StepErrors > 0 {
				fmt.Fprintf(&b, ", loop saves %d panics/%d rejects", c.DecidePanics, c.StepErrors)
			}
			if c.Guarded {
				g := c.Guard
				fmt.Fprintf(&b, ", guard[obs %d stale %d panics %d clamps %d trips %d]",
					g.ObsRepaired, g.StaleExceeded, g.PanicsRecovered, g.ActionsClamped, g.BreakerTrips)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
