package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig13Cell is one (pair, load, manager) measurement.
type Fig13Cell struct {
	PairA, PairB string
	LoadFrac     float64
	Manager      string
	QoSGuarantee [2]float64
	EnergyNorm   float64 // normalised to static at the same pair/load
	Migrations   int
}

// Fig13Result reproduces Fig. 13: Twig-C vs PARTIES vs static across
// service pairs at low (20%), mid (50%) and high (80%) fractions of the
// pair's colocated operable maximum.
type Fig13Result struct {
	Scale string
	Cells []Fig13Cell
}

// Fig13Managers lists the colocated managers compared.
var Fig13Managers = []string{"static", "parties", "twig-c"}

// Fig13 runs the comparison over the given pairs (all six Tailbench
// pairs in the paper; tests and benches may pass a subset). Cells fan
// out over the experiments worker pool like Fig5, with the same
// byte-identical-to-serial guarantee; normalisation against the static
// cell of each (pair, load) group is a serial post-pass.
func Fig13(pairs [][2]string, sc Scale, seed int64) Fig13Result {
	for _, pair := range pairs {
		QoSTarget(pair[0])
		QoSTarget(pair[1])
	}
	type job struct {
		pair [2]string
		lf   float64
		mgr  string
	}
	var jobs []job
	for _, pair := range pairs {
		for _, lf := range []float64{0.2, 0.5, 0.8} {
			for _, mgr := range Fig13Managers {
				jobs = append(jobs, job{pair, lf, mgr})
			}
		}
	}
	total := sc.LearnS + 2*sc.SummaryS // PARTIES summarised over 600 s
	cells := make([]Fig13Cell, len(jobs))
	energy := make([]float64, len(jobs))
	forEachCell(len(jobs), func(i int) {
		j := jobs[i]
		frac := PairMaxFraction(j.pair[0], j.pair[1])
		a := service.MustLookup(j.pair[0])
		b := service.MustLookup(j.pair[1])
		srv := NewServer(seed, j.pair[0], j.pair[1])
		var c ctrl.Controller
		switch j.mgr {
		case "static":
			c = baselines.NewStatic(srv.ManagedCores(), 2)
		case "parties":
			c = baselines.NewParties(baselines.DefaultPartiesConfig(), srv.ManagedCores(), 2)
		case "twig-c":
			c = NewTwig(srv, sc, seed, j.pair[0], j.pair[1])
		}
		sum := Run(RunConfig{
			Server:     srv,
			Controller: c,
			Patterns: []loadgen.Pattern{
				loadgen.Fixed(j.lf * frac * a.MaxLoadRPS),
				loadgen.Fixed(j.lf * frac * b.MaxLoadRPS),
			},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
		})
		energy[i] = sum.EnergyJ
		cells[i] = Fig13Cell{
			PairA: j.pair[0], PairB: j.pair[1],
			LoadFrac:     j.lf,
			Manager:      j.mgr,
			QoSGuarantee: [2]float64{sum.QoSGuarantee[0], sum.QoSGuarantee[1]},
			Migrations:   sum.Migrations,
		}
	})
	group := len(Fig13Managers)
	for i := range cells {
		base := i - i%group
		for k := base; k < base+group; k++ {
			if jobs[k].mgr == "static" {
				cells[i].EnergyNorm = energy[i] / energy[k]
				break
			}
		}
	}
	return Fig13Result{Scale: sc.Name, Cells: cells}
}

// AvgEnergyNorm averages one manager's normalised energy over all cells.
func (r Fig13Result) AvgEnergyNorm(manager string) float64 {
	var s float64
	n := 0
	for _, c := range r.Cells {
		if c.Manager == manager {
			s += c.EnergyNorm
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// AvgQoS averages one manager's QoS guarantee over all cells/services.
func (r Fig13Result) AvgQoS(manager string) float64 {
	var s float64
	n := 0
	for _, c := range r.Cells {
		if c.Manager == manager {
			s += c.QoSGuarantee[0] + c.QoSGuarantee[1]
			n += 2
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// String renders the table.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.13 (Twig-C vs PARTIES vs static, %s scale)\n", r.Scale)
	fmt.Fprintf(&b, "  %-20s %5s %-8s %7s %7s %9s %6s\n", "pair", "load", "manager", "QoS-a", "QoS-b", "energy/n", "migr")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-20s %4.0f%% %-8s %6.1f%% %6.1f%% %9.3f %6d\n",
			c.PairA+"+"+c.PairB, c.LoadFrac*100, c.Manager,
			c.QoSGuarantee[0]*100, c.QoSGuarantee[1]*100, c.EnergyNorm, c.Migrations)
	}
	for _, m := range Fig13Managers {
		fmt.Fprintf(&b, "  avg %-8s QoS %.1f%% energy %.3f\n", m, r.AvgQoS(m)*100, r.AvgEnergyNorm(m))
	}
	return b.String()
}
