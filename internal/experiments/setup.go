package experiments

import (
	"math/rand"
	"sync"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Scale selects between the paper's full-size configuration and a
// scaled-down profile that preserves the learning dynamics at a fraction
// of the compute, used by tests and benchmarks. One simulated second is
// one control step either way.
type Scale struct {
	Name         string
	SharedHidden []int
	BranchHidden int
	Dropout      float64
	BatchSize    int
	TargetSync   int
	PERAnneal    int
	Gamma        float64
	TrainPerStep int
	Epsilon      bdq.EpsilonSchedule
	// LearnS is the learning-phase length (excluded from summaries, as
	// in Sec. V-A); SummaryS is the evaluation window after it.
	LearnS   int
	SummaryS int
}

// PaperScale reproduces Sec. IV exactly: 512/256 shared units, 128 per
// branch, dropout 0.5, minibatch 64, ε annealed over 10 000 s then
// 25 000 s, summaries over the last 300 s after a 10 000 s learning
// phase.
func PaperScale() Scale {
	return Scale{
		Name:         "paper",
		SharedHidden: []int{512, 256},
		BranchHidden: 128,
		Dropout:      0.5,
		BatchSize:    64,
		TargetSync:   150,
		PERAnneal:    25_000,
		Gamma:        0.99,
		TrainPerStep: 1,
		Epsilon:      bdq.EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.01, MidStep: 10_000, EndStep: 25_000},
		LearnS:       10_000,
		SummaryS:     300,
	}
}

// QuickScale shrinks the network and compresses the ε schedule ~6×,
// which keeps every qualitative result while making the full experiment
// suite runnable in minutes on a laptop.
func QuickScale() Scale {
	return Scale{
		Name:         "quick",
		SharedHidden: []int{64, 48},
		BranchHidden: 32,
		Dropout:      0,
		BatchSize:    32,
		TargetSync:   100,
		PERAnneal:    5000,
		Gamma:        0.9,
		TrainPerStep: 3,
		Epsilon:      bdq.EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.01, MidStep: 2000, EndStep: 3800},
		LearnS:       4000,
		SummaryS:     300,
	}
}

var (
	qosMu    sync.Mutex
	qosCache = map[string]float64{}

	pmMu    sync.Mutex
	pmCache = map[string]*core.PowerModel{}
)

// QoSTarget returns the calibrated p99 target for a built-in service on
// the default platform (Table II methodology), cached across calls.
func QoSTarget(name string) float64 {
	qosMu.Lock()
	defer qosMu.Unlock()
	if v, ok := qosCache[name]; ok {
		return v
	}
	p := service.MustLookup(name)
	v := sim.CalibrateQoSTarget(p, sim.DefaultConfig(), 120, 1000)
	qosCache[name] = v
	return v
}

// PowerModelFor profiles and fits the Eq. 2 model for a built-in
// service, cached across calls.
func PowerModelFor(name string) *core.PowerModel {
	pmMu.Lock()
	defer pmMu.Unlock()
	if m, ok := pmCache[name]; ok {
		return m
	}
	spec := sim.ServiceSpec{Profile: service.MustLookup(name), Seed: 77}
	samples := core.ProfilePower(spec, sim.DefaultConfig(), 12, 77)
	m, err := core.FitPowerModel(samples, sim.NewServer(sim.DefaultConfig(), []sim.ServiceSpec{spec}).IdlePowerW(), rand.New(rand.NewSource(77)))
	if err != nil {
		panic(err)
	}
	pmCache[name] = m
	return m
}

// NewServer builds a default simulated server hosting the named services
// with calibrated QoS targets.
func NewServer(seed int64, names ...string) *sim.Server {
	specs := make([]sim.ServiceSpec, len(names))
	for i, n := range names {
		specs[i] = sim.ServiceSpec{
			Profile:     service.MustLookup(n),
			QoSTargetMs: QoSTarget(n),
			Seed:        seed + int64(i)*101,
		}
	}
	cfg := sim.DefaultConfig()
	cfg.MeasurementSeed = seed
	return sim.NewServer(cfg, specs)
}

// NewFaultyServer is NewServer with a fault-injection scenario armed.
// The schedule is fully determined by the scenario and seed, so runs are
// reproducible fault-for-fault.
func NewFaultyServer(seed int64, fs *faults.Scenario, names ...string) *sim.Server {
	specs := make([]sim.ServiceSpec, len(names))
	for i, n := range names {
		specs[i] = sim.ServiceSpec{
			Profile:     service.MustLookup(n),
			QoSTargetMs: QoSTarget(n),
			Seed:        seed + int64(i)*101,
		}
	}
	cfg := sim.DefaultConfig()
	cfg.MeasurementSeed = seed
	cfg.Faults = fs
	return sim.NewServer(cfg, specs)
}

// NewTwig builds a Twig manager (Twig-S for one name, Twig-C for more)
// at the given scale with fitted power models.
func NewTwig(srv *sim.Server, sc Scale, seed int64, names ...string) *core.Manager {
	return core.NewManager(twigConfig(srv, sc, seed, names...), srv.ManagedCores())
}

// NewTwigPooled is NewTwig with the manager's agent attached to a
// shared AgentPool: identical trajectories bit-for-bit, batched
// grouped-GEMM execution.
func NewTwigPooled(srv *sim.Server, sc Scale, seed int64, pools *bdq.Pools, names ...string) *core.Manager {
	return core.NewManagerPooled(twigConfig(srv, sc, seed, names...), srv.ManagedCores(), pools)
}

// twigConfig assembles the manager configuration NewTwig uses; ablation
// experiments mutate it before construction.
func twigConfig(srv *sim.Server, sc Scale, seed int64, names ...string) core.Config {
	services := make([]core.ServiceConfig, len(names))
	for i, n := range names {
		services[i] = core.ServiceConfig{
			Name:        n,
			QoSTargetMs: QoSTarget(n),
			MaxLoadRPS:  service.MustLookup(n).MaxLoadRPS,
			Power:       PowerModelFor(n),
		}
	}
	cfg := core.Config{
		Services:  services,
		NumCores:  len(srv.ManagedCores()),
		MaxPowerW: srv.MaxPowerW(),
		Eta:       5,
		Reward:    core.DefaultRewardConfig(),
		// The paper recommends pure exploitation after the learning
		// phase to cut overhead; the evaluation keeps learning at
		// ε=End so a policy that drifts into violations self-corrects.
		Agent: bdq.AgentConfig{
			Spec: bdq.Spec{
				SharedHidden: sc.SharedHidden,
				BranchHidden: sc.BranchHidden,
				Dropout:      sc.Dropout,
			},
			Gamma:          sc.Gamma,
			TrainPerStep:   sc.TrainPerStep,
			BatchSize:      sc.BatchSize,
			TargetSync:     sc.TargetSync,
			PERAnnealSteps: sc.PERAnneal,
			Epsilon:        sc.Epsilon,
			UsePER:         true,
			MaxGradNorm:    0,
			Seed:           seed,
		},
	}
	return cfg
}
