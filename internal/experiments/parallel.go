package experiments

import (
	"sync"
	"sync/atomic"
)

// parallelism is the experiment-cell fan-out. The default of 1 keeps
// every figure runner strictly serial; cmd/twig-experiments raises it via
// the -parallel flag and the benchmarks via SetParallelism.
var cellParallelism int32 = 1

// SetParallelism sets how many experiment cells (independent
// server+controller runs) may execute concurrently. Values below 1 are
// treated as 1 (serial). Results are byte-identical regardless of the
// setting: every cell owns its server, controller and RNG chain, and is
// written to a result slot fixed by its cell index.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	atomic.StoreInt32(&cellParallelism, int32(n))
}

// Parallelism returns the current experiment-cell fan-out.
func Parallelism() int { return int(atomic.LoadInt32(&cellParallelism)) }

// forEachCell runs fn(i) for every i in [0, n), fanning out over a worker
// pool of Parallelism() goroutines. fn must only write to state owned by
// cell i (typically results[i]) so the outcome does not depend on
// scheduling order.
func forEachCell(n int, fn func(i int)) {
	w := Parallelism()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for j := 0; j < w; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
