package experiments

import (
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// End-to-end golden differentials for the pooled/batched engine: a full
// experiment cell driven by a pooled Twig manager must reproduce the
// per-agent run record-for-record (hex-float identical), and a resumed
// run restored INTO a pooled manager must continue the per-agent
// reference bit-for-bit across the cut.

// runCellRecords runs one fig5-style fixed-load cell and returns the
// per-interval full-observability records.
func runCellRecords(mgr *core.Manager, srv *sim.Server, svcName string, lf float64, seconds int) []string {
	prof := service.MustLookup(svcName)
	var recs []string
	Run(RunConfig{
		Server:     srv,
		Controller: mgr,
		Patterns:   []loadgen.Pattern{loadgen.Fixed(lf * prof.MaxLoadRPS)},
		Seconds:    seconds,
		Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
			recs = append(recs, record(tt, res, asg))
		},
	})
	return recs
}

func TestPooledFig5CellBitIdentical(t *testing.T) {
	for _, par := range []int{1, 4} {
		saved := mat.Parallelism()
		mat.SetParallelism(par)
		sc := QuickScale()
		const svcName, lf, seed = "masstree", 0.5, 33
		seconds := sc.LearnS/2 + 10

		srv1 := NewServer(seed, svcName)
		solo := NewTwig(srv1, sc, seed, svcName)
		ref := runCellRecords(solo, srv1, svcName, lf, seconds)

		srv2 := NewServer(seed, svcName)
		pooled := NewTwigPooled(srv2, sc, seed, bdq.NewPools(), svcName)
		got := runCellRecords(pooled, srv2, svcName, lf, seconds)
		mat.SetParallelism(saved)

		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("par=%d interval %d: pooled cell diverges from per-agent run:\nref: %s\ngot: %s",
					par, i, ref[i], got[i])
			}
		}
		if a, b := checkpoint.Marshal(solo), checkpoint.Marshal(pooled); string(a) != string(b) {
			t.Fatalf("par=%d: pooled manager checkpoint bytes diverged", par)
		}
		pooled.Close()
	}
}

// TestPooledResumeAfterCutBitIdentical: the uninterrupted reference runs
// per-agent; the interrupted run executes its pre-cut leg pooled, cuts a
// checkpoint, and restores into a fresh pooled manager (a fresh pool —
// nothing survives the crash but the checkpoint bytes). Every interval
// must match the reference exactly.
func TestPooledResumeAfterCutBitIdentical(t *testing.T) {
	sc := QuickScale()
	const total, cut, seed = 60, 40, 21
	names := []string{"masstree", "xapian"}
	patterns := []loadgen.Pattern{loadgen.Fixed(500), loadgen.Fixed(300)}

	var ref []string
	{
		srv, mgr := buildResumeWorld(sc, seed, names)
		Run(RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns, Seconds: total,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				ref = append(ref, record(tt, res, asg))
			},
		})
	}

	var got []string
	var ckpt []byte
	{
		fs := resumeScenario()
		srv := NewFaultyServer(seed, &fs, names...)
		mgr := NewTwigPooled(srv, sc, seed, bdq.NewPools(), names...)
		ls := NewLoopState()
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns, Seconds: cut,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
			AfterInterval: func(tt int, obs ctrl.Observation, lastValid sim.Assignment) {
				if tt == cut-1 {
					ls.Next, ls.Obs, ls.LastValid = tt+1, obs, lastValid
					ckpt = checkpoint.Marshal(srv, mgr, ls)
				}
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
		mgr.Close()
	}
	if ckpt == nil {
		t.Fatal("no checkpoint captured at the cut interval")
	}

	{
		fs := resumeScenario()
		srv := NewFaultyServer(seed, &fs, names...)
		mgr := NewTwigPooled(srv, sc, seed, bdq.NewPools(), names...)
		ls := NewLoopState()
		if err := checkpoint.Unmarshal(ckpt, srv, mgr, ls); err != nil {
			t.Fatalf("restore into pooled manager: %v", err)
		}
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns, Seconds: total,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
	}

	if len(got) != total {
		t.Fatalf("stitched run has %d intervals, want %d", len(got), total)
	}
	for i := range ref {
		if got[i] != ref[i] {
			leg := "pre-cut pooled"
			if i >= cut {
				leg = "resumed pooled"
			}
			t.Fatalf("interval %d (%s leg) diverges from per-agent reference:\nref: %s\ngot: %s",
				i, leg, ref[i], got[i])
		}
	}
}
