package experiments

import (
	"testing"
)

func TestFig6TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig6(sc, 1)
	if len(r.Traces) != 3 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	for _, tr := range r.Traces {
		total := 0
		for _, n := range tr.CoreHistogram {
			total += n
		}
		if total != sc.SummaryS {
			t.Fatalf("%s core histogram covers %d of %d intervals", tr.Manager, total, sc.SummaryS)
		}
		if tr.Tardiness == nil || tr.Tardiness.Total != sc.SummaryS {
			t.Fatalf("%s tardiness histogram incomplete", tr.Manager)
		}
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig8TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig8(sc, 1)
	if len(r.Targets) != 3 {
		t.Fatalf("targets = %d", len(r.Targets))
	}
	for _, tgt := range r.Targets {
		if len(tgt.Scratch) == 0 || len(tgt.Transfer) == 0 {
			t.Fatalf("%s curves missing", tgt.Service)
		}
		for _, v := range append(append([]float64{}, tgt.Scratch...), tgt.Transfer...) {
			if v < 0 || v > 1 {
				t.Fatalf("curve value %v", v)
			}
		}
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig9TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig9(sc, 1)
	if len(r.ScratchXapian) == 0 || len(r.TransferXapian) == 0 {
		t.Fatal("curves missing")
	}
	if r.ScratchPowerW <= 0 || r.TransferPowerW <= 0 {
		t.Fatal("power missing")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig10TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig10(sc, 1)
	if len(r.Traces) != 3 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	for _, tr := range r.Traces {
		if len(tr.Cores) == 0 || len(tr.Cores) != len(tr.FreqGHz) || len(tr.Cores) != len(tr.LoadRPS) {
			t.Fatalf("%s trace lengths %d/%d/%d", tr.Manager, len(tr.Cores), len(tr.FreqGHz), len(tr.LoadRPS))
		}
		if tr.EnergyJ <= 0 {
			t.Fatalf("%s energy", tr.Manager)
		}
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig11TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig11(sc, 1)
	if len(r.MosesLoadRPS) == 0 {
		t.Fatal("trace missing")
	}
	if len(r.QoSGuarantee) != 2 {
		t.Fatalf("QoS entries = %d", len(r.QoSGuarantee))
	}
	// The step-wise generator must actually vary Moses' load.
	lo, hi := r.MosesLoadRPS[0], r.MosesLoadRPS[0]
	for _, v := range r.MosesLoadRPS {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		t.Fatal("moses load never varied")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig12TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig12(sc, 1)
	if len(r.Traces) != 2 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	names := map[string]bool{}
	for _, tr := range r.Traces {
		names[tr.Manager] = true
		if len(tr.CoreHist) != 2 {
			t.Fatalf("%s service histograms = %d", tr.Manager, len(tr.CoreHist))
		}
	}
	if !names["parties"] || !names["twig-c"] {
		t.Fatalf("managers = %v", names)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestAblationsTinyPlumbing(t *testing.T) {
	sc := tinyScale()
	for _, r := range []AblationResult{
		AblationReplay(sc, 1),
		AblationEta(sc, 1),
		AblationReward(sc, 1),
		AblationTargetMode(sc, 1),
	} {
		if len(r.Cells) < 2 {
			t.Fatalf("%s cells = %d", r.Name, len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.QoSGuarantee < 0 || c.QoSGuarantee > 1 || c.AvgPowerW <= 0 {
				t.Fatalf("%s cell %+v", r.Name, c)
			}
		}
		if r.String() == "" {
			t.Fatal("String")
		}
	}
}

func TestExtensionCATTinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := ExtensionCAT(sc, 1)
	for _, q := range append(r.WithoutQoS[:], r.WithQoS[:]...) {
		if q < 0 || q > 1 {
			t.Fatalf("QoS %v", q)
		}
	}
	if r.WithW <= 0 || r.WithoutW <= 0 {
		t.Fatal("power")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestBatchColocTinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := BatchColoc(sc, 1)
	if len(r.Cells) != 3 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	var staticWork, twigWork float64
	for _, c := range r.Cells {
		if c.Manager == "static" {
			staticWork = c.BatchWork
		}
		if c.Manager == "twig-s" {
			twigWork = c.BatchWork
		}
	}
	// Static owns every core, so the batch starves under it; any
	// manager that reclaims cores must beat it.
	if staticWork != 0 {
		t.Fatalf("static batch work = %v, want 0 (no free cores)", staticWork)
	}
	if twigWork <= 0 {
		t.Fatalf("twig batch work = %v, want > 0", twigWork)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}
