package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig12Trace is one manager's mapping distribution over the window.
type Fig12Trace struct {
	Manager string
	// CoreHist[k][c] counts intervals where service k held c cores.
	CoreHist []map[int]int
	// Migrations counts per-service core-set changes over the window;
	// PARTIES "ping-pongs across mapping decisions" while Twig-C stays
	// stable.
	Migrations   int
	QoSGuarantee []float64
	AvgPowerW    float64
}

// Fig12Result reproduces Fig. 12: the core-mapping distributions of
// PARTIES and Twig-C for Masstree at 20% and Moses at 80% of their
// colocated operable maxima over a 600 s window.
type Fig12Result struct {
	WindowS int
	Traces  []Fig12Trace
}

// Fig12 runs the comparison.
func Fig12(sc Scale, seed int64) Fig12Result {
	frac := PairMaxFraction("masstree", "moses")
	massLoad := 0.2 * frac * service.MustLookup("masstree").MaxLoadRPS
	mosesLoad := 0.8 * frac * service.MustLookup("moses").MaxLoadRPS
	window := 2 * sc.SummaryS // the paper summarises PARTIES over 600 s
	total := sc.LearnS + window
	res := Fig12Result{WindowS: window}

	for _, name := range []string{"parties", "twig-c"} {
		srv := NewServer(seed, "masstree", "moses")
		var c ctrl.Controller
		if name == "parties" {
			c = baselines.NewParties(baselines.DefaultPartiesConfig(), srv.ManagedCores(), 2)
		} else {
			c = NewTwig(srv, sc, seed, "masstree", "moses")
		}
		tr := Fig12Trace{Manager: name, CoreHist: []map[int]int{{}, {}}}
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(massLoad), loadgen.Fixed(mosesLoad)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				if t < sc.LearnS {
					return
				}
				for k := 0; k < 2; k++ {
					tr.CoreHist[k][r.Services[k].NumCores]++
				}
			},
		})
		tr.Migrations = sum.Migrations
		tr.QoSGuarantee = sum.QoSGuarantee
		tr.AvgPowerW = sum.AvgPowerW
		res.Traces = append(res.Traces, tr)
	}
	return res
}

// String renders the mapping distributions.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.12 mapping distributions, masstree@20%% + moses@80%% of pair max (%d s window)\n", r.WindowS)
	for _, tr := range r.Traces {
		fmt.Fprintf(&b, "  %-8s QoS [%.1f%% %.1f%%], power %.1f W, %d migrations\n",
			tr.Manager, tr.QoSGuarantee[0]*100, tr.QoSGuarantee[1]*100, tr.AvgPowerW, tr.Migrations)
		for k, svc := range []string{"masstree", "moses"} {
			fmt.Fprintf(&b, "    %-9s cores:", svc)
			for c := 1; c <= 18; c++ {
				if n := tr.CoreHist[k][c]; n > 0 {
					fmt.Fprintf(&b, " %d×%d", c, n)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
