package experiments

import (
	"reflect"
	"testing"

	"github.com/twig-sched/twig/internal/mat"
)

// TestParallelCellsByteIdentical verifies the concurrent experiment
// runner's core guarantee: fanning cells out over workers produces
// exactly the result of a serial sweep, because every cell owns its
// server, controller and RNG chain and writes to an index-fixed slot.
func TestParallelCellsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	old := Parallelism()
	defer SetParallelism(old)

	SetParallelism(1)
	serialFig5 := Fig5([]string{"masstree"}, sc, 7)
	serialAbl := AblationReplay(sc, 7)
	SetParallelism(4)
	parallelFig5 := Fig5([]string{"masstree"}, sc, 7)
	parallelAbl := AblationReplay(sc, 7)

	if !reflect.DeepEqual(serialFig5, parallelFig5) {
		t.Fatalf("Fig5 differs between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialFig5, parallelFig5)
	}
	if !reflect.DeepEqual(serialAbl, parallelAbl) {
		t.Fatalf("AblationReplay differs between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialAbl, parallelAbl)
	}
}

// TestParallelGEMMInsideRun exercises the full control loop with the
// parallel matrix kernels enabled and checks the summary matches the
// serial-GEMM run exactly (the kernels are bit-identical by design).
func TestParallelGEMMInsideRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	oldMat := mat.Parallelism()
	defer mat.SetParallelism(oldMat)

	mat.SetParallelism(1)
	serial := Fig7(sc, 5)
	mat.SetParallelism(4)
	parallel := Fig7(sc, 5)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig7 differs between serial and parallel GEMM:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestForEachCellCoversAllIndices(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	for _, w := range []int{1, 3, 16} {
		SetParallelism(w)
		const n = 37
		seen := make([]int, n)
		forEachCell(n, func(i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d visited %d times", w, i, c)
			}
		}
	}
	forEachCell(0, func(int) { t.Fatal("fn called for n=0") })
}
