package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// AblationCell is one variant's outcome on the standard Twig-S workload
// (Masstree at 50% load).
type AblationCell struct {
	Variant      string
	QoSGuarantee float64
	AvgPowerW    float64
	Migrations   int
}

// AblationResult compares design-choice variants called out in
// DESIGN.md §5: prioritised vs uniform replay, the η smoothing window,
// the θ power-reward weight, and the per-branch vs mean TD target.
type AblationResult struct {
	Name  string
	Cells []AblationCell
}

// ablationVariant names one config mutation of an ablation study.
type ablationVariant struct {
	Label  string
	Mutate func(*core.Config)
}

// runAblationVariants runs every variant as an independent cell on the
// experiments worker pool; each writes to its own slot so results are
// byte-identical to a serial sweep.
func runAblationVariants(sc Scale, seed int64, vs []ablationVariant) []AblationCell {
	cells := make([]AblationCell, len(vs))
	forEachCell(len(vs), func(i int) {
		cells[i] = runAblationVariant(sc, seed, vs[i].Label, vs[i].Mutate)
	})
	return cells
}

// runAblationVariant runs Twig-S with a config mutator applied.
func runAblationVariant(sc Scale, seed int64, variant string, mutate func(*core.Config)) AblationCell {
	const svcName = "masstree"
	prof := service.MustLookup(svcName)
	srv := NewServer(seed, svcName)
	cfg := twigConfig(srv, sc, seed, svcName)
	mutate(&cfg)
	mgr := core.NewManager(cfg, srv.ManagedCores())
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   mgr,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(0.5 * prof.MaxLoadRPS)},
		Seconds:      sc.LearnS + sc.SummaryS,
		SummaryFromS: sc.LearnS,
	})
	return AblationCell{
		Variant:      variant,
		QoSGuarantee: sum.QoSGuarantee[0],
		AvgPowerW:    sum.AvgPowerW,
		Migrations:   sum.Migrations,
	}
}

// AblationReplay compares prioritised vs uniform experience replay.
func AblationReplay(sc Scale, seed int64) AblationResult {
	return AblationResult{
		Name: "prioritised vs uniform replay",
		Cells: runAblationVariants(sc, seed, []ablationVariant{
			{"PER", func(c *core.Config) {}},
			{"uniform", func(c *core.Config) { c.Agent.UsePER = false }},
		}),
	}
}

// AblationEta compares the PMC smoothing window η ∈ {1, 5, 10}. The
// paper found η = 5 best.
func AblationEta(sc Scale, seed int64) AblationResult {
	var vs []ablationVariant
	for _, eta := range []int{1, 5, 10} {
		e := eta
		vs = append(vs, ablationVariant{
			fmt.Sprintf("eta=%d", e), func(c *core.Config) { c.Eta = e }})
	}
	return AblationResult{Name: "PMC smoothing window η", Cells: runAblationVariants(sc, seed, vs)}
}

// AblationReward compares the power-reward weight θ ∈ {0, 0.5, 2}. With
// θ = 0 Twig has no incentive to save energy; with a large θ it risks
// QoS.
func AblationReward(sc Scale, seed int64) AblationResult {
	var vs []ablationVariant
	for _, theta := range []float64{0, 0.5, 2} {
		th := theta
		vs = append(vs, ablationVariant{
			fmt.Sprintf("theta=%.1f", th), func(c *core.Config) { c.Reward.Theta = th }})
	}
	return AblationResult{Name: "power-reward weight θ", Cells: runAblationVariants(sc, seed, vs)}
}

// AblationMultiAgentValue ablates the paper's multi-agent contribution:
// Twig-C on a colocated pair with per-agent state-value streams
// (Sec. III-A) versus a single value stream shared by both agents.
func AblationMultiAgentValue(sc Scale, seed int64) AblationResult {
	frac := PairMaxFraction("masstree", "moses")
	loads := []loadgen.Pattern{
		loadgen.Fixed(0.5 * frac * service.MustLookup("masstree").MaxLoadRPS),
		loadgen.Fixed(0.5 * frac * service.MustLookup("moses").MaxLoadRPS),
	}
	run := func(shared bool, label string) AblationCell {
		srv := NewServer(seed, "masstree", "moses")
		cfg := twigConfig(srv, sc, seed, "masstree", "moses")
		cfg.Agent.Spec.SharedValue = shared
		mgr := core.NewManager(cfg, srv.ManagedCores())
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   mgr,
			Patterns:     loads,
			Seconds:      sc.LearnS + sc.SummaryS,
			SummaryFromS: sc.LearnS,
		})
		return AblationCell{
			Variant:      label,
			QoSGuarantee: (sum.QoSGuarantee[0] + sum.QoSGuarantee[1]) / 2,
			AvgPowerW:    sum.AvgPowerW,
			Migrations:   sum.Migrations,
		}
	}
	variants := []struct {
		shared bool
		label  string
	}{
		{false, "per-agent V"},
		{true, "shared V"},
	}
	cells := make([]AblationCell, len(variants))
	forEachCell(len(variants), func(i int) {
		cells[i] = run(variants[i].shared, variants[i].label)
	})
	return AblationResult{
		Name:  "per-agent vs shared state value (Twig-C)",
		Cells: cells,
	}
}

// AblationTargetMode compares the mean-across-branches TD target (the
// BDQ paper's recommendation, Twig's default) with per-branch targets.
func AblationTargetMode(sc Scale, seed int64) AblationResult {
	return AblationResult{
		Name: "TD target aggregation",
		Cells: runAblationVariants(sc, seed, []ablationVariant{
			{"mean-branches", func(c *core.Config) {
				c.Agent.TargetMode = bdq.TargetMeanBranches
			}},
			{"per-branch", func(c *core.Config) {
				c.Agent.TargetMode = bdq.TargetPerBranch
			}},
		}),
	}
}

// String renders the variant table.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s (masstree @ 50%%)\n", r.Name)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-14s QoS %6.1f%%  power %6.1f W  %d migrations\n",
			c.Variant, c.QoSGuarantee*100, c.AvgPowerW, c.Migrations)
	}
	return b.String()
}
