package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// AblationCell is one variant's outcome on the standard Twig-S workload
// (Masstree at 50% load).
type AblationCell struct {
	Variant      string
	QoSGuarantee float64
	AvgPowerW    float64
	Migrations   int
}

// AblationResult compares design-choice variants called out in
// DESIGN.md §5: prioritised vs uniform replay, the η smoothing window,
// the θ power-reward weight, and the per-branch vs mean TD target.
type AblationResult struct {
	Name  string
	Cells []AblationCell
}

// runAblationVariant runs Twig-S with a config mutator applied.
func runAblationVariant(sc Scale, seed int64, variant string, mutate func(*core.Config)) AblationCell {
	const svcName = "masstree"
	prof := service.MustLookup(svcName)
	srv := NewServer(seed, svcName)
	cfg := twigConfig(srv, sc, seed, svcName)
	mutate(&cfg)
	mgr := core.NewManager(cfg, srv.ManagedCores())
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   mgr,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(0.5 * prof.MaxLoadRPS)},
		Seconds:      sc.LearnS + sc.SummaryS,
		SummaryFromS: sc.LearnS,
	})
	return AblationCell{
		Variant:      variant,
		QoSGuarantee: sum.QoSGuarantee[0],
		AvgPowerW:    sum.AvgPowerW,
		Migrations:   sum.Migrations,
	}
}

// AblationReplay compares prioritised vs uniform experience replay.
func AblationReplay(sc Scale, seed int64) AblationResult {
	return AblationResult{
		Name: "prioritised vs uniform replay",
		Cells: []AblationCell{
			runAblationVariant(sc, seed, "PER", func(c *core.Config) {}),
			runAblationVariant(sc, seed, "uniform", func(c *core.Config) { c.Agent.UsePER = false }),
		},
	}
}

// AblationEta compares the PMC smoothing window η ∈ {1, 5, 10}. The
// paper found η = 5 best.
func AblationEta(sc Scale, seed int64) AblationResult {
	res := AblationResult{Name: "PMC smoothing window η"}
	for _, eta := range []int{1, 5, 10} {
		e := eta
		res.Cells = append(res.Cells, runAblationVariant(sc, seed,
			fmt.Sprintf("eta=%d", e), func(c *core.Config) { c.Eta = e }))
	}
	return res
}

// AblationReward compares the power-reward weight θ ∈ {0, 0.5, 2}. With
// θ = 0 Twig has no incentive to save energy; with a large θ it risks
// QoS.
func AblationReward(sc Scale, seed int64) AblationResult {
	res := AblationResult{Name: "power-reward weight θ"}
	for _, theta := range []float64{0, 0.5, 2} {
		th := theta
		res.Cells = append(res.Cells, runAblationVariant(sc, seed,
			fmt.Sprintf("theta=%.1f", th), func(c *core.Config) { c.Reward.Theta = th }))
	}
	return res
}

// AblationMultiAgentValue ablates the paper's multi-agent contribution:
// Twig-C on a colocated pair with per-agent state-value streams
// (Sec. III-A) versus a single value stream shared by both agents.
func AblationMultiAgentValue(sc Scale, seed int64) AblationResult {
	frac := PairMaxFraction("masstree", "moses")
	loads := []loadgen.Pattern{
		loadgen.Fixed(0.5 * frac * service.MustLookup("masstree").MaxLoadRPS),
		loadgen.Fixed(0.5 * frac * service.MustLookup("moses").MaxLoadRPS),
	}
	run := func(shared bool, label string) AblationCell {
		srv := NewServer(seed, "masstree", "moses")
		cfg := twigConfig(srv, sc, seed, "masstree", "moses")
		cfg.Agent.Spec.SharedValue = shared
		mgr := core.NewManager(cfg, srv.ManagedCores())
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   mgr,
			Patterns:     loads,
			Seconds:      sc.LearnS + sc.SummaryS,
			SummaryFromS: sc.LearnS,
		})
		return AblationCell{
			Variant:      label,
			QoSGuarantee: (sum.QoSGuarantee[0] + sum.QoSGuarantee[1]) / 2,
			AvgPowerW:    sum.AvgPowerW,
			Migrations:   sum.Migrations,
		}
	}
	return AblationResult{
		Name: "per-agent vs shared state value (Twig-C)",
		Cells: []AblationCell{
			run(false, "per-agent V"),
			run(true, "shared V"),
		},
	}
}

// AblationTargetMode compares the mean-across-branches TD target (the
// BDQ paper's recommendation, Twig's default) with per-branch targets.
func AblationTargetMode(sc Scale, seed int64) AblationResult {
	return AblationResult{
		Name: "TD target aggregation",
		Cells: []AblationCell{
			runAblationVariant(sc, seed, "mean-branches", func(c *core.Config) {
				c.Agent.TargetMode = bdq.TargetMeanBranches
			}),
			runAblationVariant(sc, seed, "per-branch", func(c *core.Config) {
				c.Agent.TargetMode = bdq.TargetPerBranch
			}),
		},
	}
}

// String renders the variant table.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s (masstree @ 50%%)\n", r.Name)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-14s QoS %6.1f%%  power %6.1f W  %d migrations\n",
			c.Variant, c.QoSGuarantee*100, c.AvgPowerW, c.Migrations)
	}
	return b.String()
}
