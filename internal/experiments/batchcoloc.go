package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/batch"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// BatchColocCell is one manager's outcome in the LC + batch scenario.
type BatchColocCell struct {
	Manager      string
	QoSGuarantee float64
	// BatchWork is the best-effort work completed over the summary
	// window, in GHz·core·seconds — the system-throughput dimension the
	// Heracles/PARTIES line of work optimises.
	BatchWork float64
	AvgPowerW float64
}

// BatchColocResult colocates one LC service with a best-effort batch
// workload that soaks every released core, and compares how much batch
// throughput each manager's reclamation produces at what QoS cost. The
// paper evaluates LC-only colocation; this extension recreates the
// LC + batch setting its related-work section frames.
type BatchColocResult struct {
	Service  string
	LoadFrac float64
	Cells    []BatchColocCell
}

// BatchColoc runs the comparison for Img-dnn at 50% load with the
// default analytics batch.
func BatchColoc(sc Scale, seed int64) BatchColocResult {
	const svcName = "img-dnn"
	const lf = 0.5
	prof := service.MustLookup(svcName)
	res := BatchColocResult{Service: svcName, LoadFrac: lf}
	total := sc.LearnS + sc.SummaryS
	for _, mgr := range []string{"static", "heracles", "twig-s"} {
		cfg := sim.DefaultConfig()
		cfg.MeasurementSeed = seed
		spec := batch.DefaultSpec()
		cfg.Batch = &spec
		srv := sim.NewServer(cfg, []sim.ServiceSpec{{
			Profile: prof, QoSTargetMs: QoSTarget(svcName), Seed: seed,
		}})
		var c ctrl.Controller
		switch mgr {
		case "static":
			c = baselines.NewStatic(srv.ManagedCores(), 1)
		case "heracles":
			c = baselines.NewHeracles(baselines.DefaultHeraclesConfig(1.1*srv.MaxPowerW()), srv.ManagedCores())
		case "twig-s":
			c = NewTwig(srv, sc, seed, svcName)
		}
		var work float64
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(lf * prof.MaxLoadRPS)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				if t >= sc.LearnS {
					work += r.Batch.WorkDone
				}
			},
		})
		res.Cells = append(res.Cells, BatchColocCell{
			Manager:      mgr,
			QoSGuarantee: sum.QoSGuarantee[0],
			BatchWork:    work,
			AvgPowerW:    sum.AvgPowerW,
		})
	}
	return res
}

// String renders the throughput comparison.
func (r BatchColocResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: LC + best-effort batch (%s @ %.0f%%)\n", r.Service, r.LoadFrac*100)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-9s QoS %6.1f%%  batch work %8.0f GHz·s  power %5.1f W\n",
			c.Manager, c.QoSGuarantee*100, c.BatchWork, c.AvgPowerW)
	}
	return b.String()
}
