package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/sim/faults"
)

// One chaos cell must be reproducible run-to-run and end invariant-clean:
// every replica either running on a leased node or dead-lettered with a
// reason, accounting balanced.
func TestChaosCellDeterministicAndInvariantClean(t *testing.T) {
	sc := tinyScale()
	cs := faults.MustNamedCluster("chaos")
	adaptClusterScenario(&cs, 160)

	a := ChaosCellRun(sc, 21, cs, false, 3, 160)
	b := ChaosCellRun(sc, 21, cs, false, 3, 160)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical chaos cells diverge:\n%+v\n%+v", a, b)
	}
	if len(a.Invariants) > 0 {
		t.Fatalf("invariant violations at sweep end: %v", a.Invariants)
	}
	if a.EventsInjected == 0 || a.LeaseExpiries == 0 {
		t.Fatalf("chaos scenario injected nothing: %+v", a)
	}
}

// The headline fleet claim: when a node outage is long relative to the
// lease TTL, the adaptive coordinator keeps replicas dark for fewer
// intervals than static partitioning, because it migrates them off the
// dead node instead of waiting out the outage. (Short blips cut the
// other way — waiting beats paying the lease-expiry and backoff
// machinery — which is why the comparison uses a long outage.)
func TestFleetBeatsStaticPinningUnderNodeCrash(t *testing.T) {
	sc := tinyScale()
	cs := faults.ClusterScenario{Name: "longcrash", CrashPeriodS: 60, CrashOfflineS: 30, QuietAfterS: 100}

	fleet := ChaosCellRun(sc, 21, cs, false, 3, 160)
	pinned := ChaosCellRun(sc, 21, cs, true, 3, 160)
	if len(fleet.Invariants) > 0 || len(pinned.Invariants) > 0 {
		t.Fatalf("invariant violations: fleet=%v pinned=%v", fleet.Invariants, pinned.Invariants)
	}
	if fleet.Migrations == 0 {
		t.Fatalf("adaptive fleet never migrated under node crashes: %+v", fleet)
	}
	// Pinned replicas only ever recover onto their home node, so the
	// baseline must show no cross-node restores (recovery re-placements
	// on the home node still count as migrations).
	if pinned.ColdRestores != 0 || pinned.WarmRestores != 0 {
		t.Fatalf("static partitioning restored across nodes: %+v", pinned)
	}
	if fleet.DarkIntervals >= pinned.DarkIntervals {
		t.Fatalf("fleet dark %d s not below pinned %d s", fleet.DarkIntervals, pinned.DarkIntervals)
	}
}

func TestAdaptClusterScenario(t *testing.T) {
	cs := faults.MustNamedCluster("nodecrash") // period 300, offline 25
	adaptClusterScenario(&cs, 200)
	if cs.CrashPeriodS != 50 {
		t.Fatalf("period = %d, want 50", cs.CrashPeriodS)
	}
	if cs.CrashOfflineS > cs.CrashPeriodS/2 {
		t.Fatalf("offline %d too long for period %d", cs.CrashOfflineS, cs.CrashPeriodS)
	}
	if cs.QuietAfterS <= 0 || cs.QuietAfterS > 200-60 {
		t.Fatalf("quiet window = %d", cs.QuietAfterS)
	}
	long := faults.MustNamedCluster("nodecrash")
	adaptClusterScenario(&long, 5000)
	if long.CrashPeriodS != 300 || long.CrashOfflineS != 25 {
		t.Fatalf("long sweeps must keep the scenario untouched: %+v", long)
	}
}

func TestFigChaosRendering(t *testing.T) {
	r := FigChaosResult{
		Scenarios: []string{"chaos"},
		Nodes:     3,
		Seconds:   400,
		Cells: []ChaosCell{
			{Scenario: "chaos", Manager: "twig-fleet", MeanQoS: 0.93, MinQoS: 0.81, DarkIntervals: 40,
				EnergyJ: 9000, EventsInjected: 5, LeaseExpiries: 3, Migrations: 4, WarmRestores: 2, ShedIntervals: 12},
			{Scenario: "chaos", Manager: "static-pin", MeanQoS: 0.74, MinQoS: 0.40, DarkIntervals: 160,
				EnergyJ: 8800, EventsInjected: 5, LeaseExpiries: 3, DeadLetters: 1,
				Invariants: []string{"replica 4 (moses) unresolved at sweep end: pending"}},
		},
	}
	s := r.String()
	for _, want := range []string{
		"twig-fleet", "static-pin", "93.0%", "migrations 4 (2 warm)",
		"dead-letters 1", "INVARIANT VIOLATIONS",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
