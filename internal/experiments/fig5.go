package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig5Cell is one (service, load, manager) measurement of Fig. 5.
type Fig5Cell struct {
	Service      string
	LoadFrac     float64
	Manager      string
	QoSGuarantee float64
	// EnergyNorm is energy normalised to the static mapping at the same
	// service and load, as in the figure.
	EnergyNorm float64
	AvgCores   float64
	AvgFreqGHz float64
	Migrations int
}

// Fig5Result reproduces Fig. 5: Twig-S vs Hipster, Heracles and static
// across fixed loads of 20%, 50% and 80%.
type Fig5Result struct {
	Scale string
	Cells []Fig5Cell
}

// Fig5Managers lists the single-service managers compared in Fig. 5.
var Fig5Managers = []string{"static", "heracles", "hipster", "twig-s"}

// newSingleManager builds a named single-service controller.
func newSingleManager(name string, srv *sim.Server, sc Scale, seed int64, svcName string) ctrl.Controller {
	switch name {
	case "static":
		return baselines.NewStatic(srv.ManagedCores(), 1)
	case "heracles":
		return baselines.NewHeracles(baselines.DefaultHeraclesConfig(1.1*srv.MaxPowerW()), srv.ManagedCores())
	case "hipster":
		cfg := baselines.DefaultHipsterConfig()
		cfg.LearnPhaseS = sc.LearnS / 2
		cfg.Seed = seed
		return baselines.NewHipster(cfg, srv.ManagedCores())
	case "twig-s":
		return NewTwig(srv, sc, seed, svcName)
	default:
		panic("experiments: unknown manager " + name)
	}
}

// Fig5 runs the comparison for the given services (Table II's four by
// default) at 20/50/80% load. Independent (service, load, manager) cells
// fan out over the experiments worker pool (SetParallelism); each cell
// owns its server and controller and writes to its own result slot, so
// the outcome is byte-identical to a serial run. Energy normalisation
// against the static cell of the same (service, load) group happens in a
// serial post-pass once all cells are in.
func Fig5(services []string, sc Scale, seed int64) Fig5Result {
	// QoS calibration is cached per service; warm the cache serially so
	// concurrent cells don't calibrate the same service twice.
	for _, svcName := range services {
		QoSTarget(svcName)
	}
	type job struct {
		svc string
		lf  float64
		mgr string
	}
	var jobs []job
	for _, svcName := range services {
		for _, lf := range []float64{0.2, 0.5, 0.8} {
			for _, mgr := range Fig5Managers {
				jobs = append(jobs, job{svcName, lf, mgr})
			}
		}
	}
	total := sc.LearnS + sc.SummaryS
	cells := make([]Fig5Cell, len(jobs))
	energy := make([]float64, len(jobs))
	forEachCell(len(jobs), func(i int) {
		j := jobs[i]
		prof := service.MustLookup(j.svc)
		srv := NewServer(seed, j.svc)
		c := newSingleManager(j.mgr, srv, sc, seed, j.svc)
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(j.lf * prof.MaxLoadRPS)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
		})
		energy[i] = sum.EnergyJ
		cells[i] = Fig5Cell{
			Service:      j.svc,
			LoadFrac:     j.lf,
			Manager:      j.mgr,
			QoSGuarantee: sum.QoSGuarantee[0],
			AvgCores:     sum.AvgCores[0],
			AvgFreqGHz:   sum.AvgFreqGHz[0],
			Migrations:   sum.Migrations,
		}
	})
	group := len(Fig5Managers)
	for i := range cells {
		base := i - i%group
		for k := base; k < base+group; k++ {
			if jobs[k].mgr == "static" {
				cells[i].EnergyNorm = energy[i] / energy[k]
				break
			}
		}
	}
	return Fig5Result{Scale: sc.Name, Cells: cells}
}

// AvgEnergyNorm returns the mean normalised energy of one manager across
// all cells (the figure's rightmost "avg" bars).
func (r Fig5Result) AvgEnergyNorm(manager string) float64 {
	var s float64
	n := 0
	for _, c := range r.Cells {
		if c.Manager == manager {
			s += c.EnergyNorm
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// AvgQoS returns the mean QoS guarantee of one manager across all cells.
func (r Fig5Result) AvgQoS(manager string) float64 {
	var s float64
	n := 0
	for _, c := range r.Cells {
		if c.Manager == manager {
			s += c.QoSGuarantee
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// String renders the figure as a table.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.5 (Twig-S vs baselines, %s scale)\n", r.Scale)
	fmt.Fprintf(&b, "  %-10s %5s %-9s %8s %9s %6s %6s %6s\n",
		"service", "load", "manager", "QoS", "energy/n", "cores", "GHz", "migr")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-10s %4.0f%% %-9s %7.1f%% %9.3f %6.1f %6.2f %6d\n",
			c.Service, c.LoadFrac*100, c.Manager, c.QoSGuarantee*100, c.EnergyNorm,
			c.AvgCores, c.AvgFreqGHz, c.Migrations)
	}
	for _, m := range Fig5Managers {
		fmt.Fprintf(&b, "  avg %-9s QoS %.1f%% energy %.3f\n", m, r.AvgQoS(m)*100, r.AvgEnergyNorm(m))
	}
	return b.String()
}
