package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig9Result reproduces Fig. 9: Twig-C transfer learning. The manager
// first learns with Moses + Masstree; then Moses is swapped for Xapian.
// With transfer the agent adapts "in under 10 time steps"; without it,
// QoS is low and energy high until re-learning completes.
type Fig9Result struct {
	BucketS int
	// Curves: per-bucket QoS guarantee of the swapped-in service
	// (Xapian) and of Masstree, with and without transfer.
	ScratchXapian    []float64
	TransferXapian   []float64
	ScratchMasstree  []float64
	TransferMasstree []float64
	// AvgPower over the run with and without transfer.
	ScratchPowerW  float64
	TransferPowerW float64
}

// Fig9 runs the colocated transfer comparison. Moses and Xapian run at
// 50% and Masstree at 20% of their colocated operable maxima.
func Fig9(sc Scale, seed int64) Fig9Result {
	frac := PairMaxFraction("moses", "masstree")
	mosesLoad := 0.5 * frac * service.MustLookup("moses").MaxLoadRPS
	massLoad := 0.2 * frac * service.MustLookup("masstree").MaxLoadRPS
	fracX := PairMaxFraction("xapian", "masstree")
	xapianLoad := 0.5 * fracX * service.MustLookup("xapian").MaxLoadRPS

	// Phase 1: learn Moses + Masstree.
	donorSrv := NewServer(seed, "moses", "masstree")
	donor := NewTwig(donorSrv, sc, seed, "moses", "masstree")
	Run(RunConfig{
		Server:       donorSrv,
		Controller:   donor,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(mosesLoad), loadgen.Fixed(massLoad)},
		Seconds:      sc.LearnS,
		SummaryFromS: sc.LearnS - 1,
	})
	var weights bytes.Buffer
	if err := donor.Save(&weights); err != nil {
		panic(err)
	}
	saved := weights.Bytes()

	total := sc.LearnS + sc.SummaryS
	bucket := total / 12
	res := Fig9Result{BucketS: bucket}

	runPhase2 := func(mgr *core.Manager, srv *sim.Server) (xq, mq []float64, power float64) {
		met := [2][]int{}
		count := []int{}
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   mgr,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(xapianLoad), loadgen.Fixed(massLoad)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				bi := t / bucket
				for len(count) <= bi {
					count = append(count, 0)
					met[0] = append(met[0], 0)
					met[1] = append(met[1], 0)
				}
				count[bi]++
				for k := 0; k < 2; k++ {
					if r.Services[k].P99Ms <= r.Services[k].QoSTargetMs {
						met[k][bi]++
					}
				}
			},
		})
		for i := range count {
			xq = append(xq, float64(met[0][i])/float64(count[i]))
			mq = append(mq, float64(met[1][i])/float64(count[i]))
		}
		return xq, mq, sum.AvgPowerW
	}

	// Phase 2a: from scratch.
	srvA := NewServer(seed+20, "xapian", "masstree")
	scratch := NewTwig(srvA, sc, seed+3, "xapian", "masstree")
	res.ScratchXapian, res.ScratchMasstree, res.ScratchPowerW = runPhase2(scratch, srvA)

	// Phase 2b: with transfer.
	srvB := NewServer(seed+20, "xapian", "masstree")
	xfer := NewTwig(srvB, sc, seed+4, "xapian", "masstree")
	if err := xfer.Load(bytes.NewReader(saved)); err != nil {
		panic(err)
	}
	xfer.Transfer(sc.Epsilon.MidStep)
	res.TransferXapian, res.TransferMasstree, res.TransferPowerW = runPhase2(xfer, srvB)

	return res
}

// String renders the four curves.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.9 Twig-C transfer learning (moses+masstree → xapian+masstree, buckets of %d s)\n", r.BucketS)
	row := func(label string, vs []float64) {
		fmt.Fprintf(&b, "  %-18s:", label)
		for _, v := range vs {
			fmt.Fprintf(&b, " %3.0f%%", v*100)
		}
		b.WriteString("\n")
	}
	row("xapian scratch", r.ScratchXapian)
	row("xapian transfer", r.TransferXapian)
	row("masstree scratch", r.ScratchMasstree)
	row("masstree transfer", r.TransferMasstree)
	fmt.Fprintf(&b, "  avg power: scratch %.1f W, transfer %.1f W\n", r.ScratchPowerW, r.TransferPowerW)
	return b.String()
}
