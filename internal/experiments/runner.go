// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the shared machinery to drive any controller
// against the simulated server and summarise QoS guarantee, QoS
// tardiness and energy usage — the metrics of Sec. V.
package experiments

import (
	"math"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// RunConfig drives one controller against one simulated server.
type RunConfig struct {
	Server     *sim.Server
	Controller ctrl.Controller
	// Patterns supplies the offered load per service.
	Patterns []loadgen.Pattern
	// Seconds is the total run length; SummaryFromS is the first second
	// included in the summary (the paper summarises after the learning
	// phase).
	Seconds      int
	SummaryFromS int
	// Hook, when set, observes every interval (for trace figures).
	Hook func(t int, res sim.StepResult, asg sim.Assignment)

	// The remaining fields support crash-consistent resume. A fresh run
	// leaves them zero. To continue a run from checkpointed loop state,
	// set StartSecond to the first interval still to execute and supply
	// the restored Tracker, StartObs (the observation pending for that
	// interval's Decide) and LastValid (the last assignment the simulator
	// accepted). AfterInterval, when set, fires at the end of every
	// interval at the checkpoint-safe boundary: the observation and
	// last-valid assignment it receives, together with the tracker and
	// the components' own state, fully determine interval t+1 onward.
	StartSecond   int
	Tracker       *ctrl.ObservationTracker
	StartObs      *ctrl.Observation
	LastValid     *sim.Assignment
	AfterInterval func(t int, obs ctrl.Observation, lastValid sim.Assignment)
}

// Summary aggregates a run, in the paper's metrics.
type Summary struct {
	Controller string
	Seconds    int
	// QoSGuarantee is, per service, the fraction of summarised samples
	// that met the QoS target.
	QoSGuarantee []float64
	// MeanTardiness and MaxTardiness describe QoS/target per service.
	MeanTardiness []float64
	MaxTardiness  []float64
	// Tardiness retains the raw per-interval tardiness samples (for
	// histograms such as Fig. 6's).
	Tardiness [][]float64
	// EnergyJ is the managed-socket energy over the summary window;
	// AvgPowerW the corresponding mean power.
	EnergyJ   float64
	AvgPowerW float64
	// Migrations counts per-service core-set changes over the summary
	// window (the oscillation metric).
	Migrations int
	// AvgCores and AvgFreqGHz describe the mean allocation per service.
	AvgCores   []float64
	AvgFreqGHz []float64
	// DecidePanics counts controller panics the loop recovered from;
	// StepErrors counts assignments the simulator rejected. In either
	// case the loop re-uses the last valid assignment instead of
	// aborting the run.
	DecidePanics int
	StepErrors   int
}

// nanTardiness is the tardiness recorded for an interval whose latency
// reading is missing (a crashed service or a dropped sample): the QoS
// target is counted as violated and the sample pinned at this penalty so
// means stay finite.
const nanTardiness = 10.0

// Run executes the control loop: every simulated second the controller
// receives the last interval's observation and decides the next
// interval's assignment.
func Run(cfg RunConfig) Summary {
	srv := cfg.Server
	k := srv.NumServices()
	if len(cfg.Patterns) != k {
		panic("experiments: one load pattern per service required")
	}
	if cfg.SummaryFromS >= cfg.Seconds {
		panic("experiments: empty summary window")
	}

	sum := Summary{
		Controller:    cfg.Controller.Name(),
		Seconds:       cfg.Seconds,
		QoSGuarantee:  make([]float64, k),
		MeanTardiness: make([]float64, k),
		MaxTardiness:  make([]float64, k),
		Tardiness:     make([][]float64, k),
		AvgCores:      make([]float64, k),
		AvgFreqGHz:    make([]float64, k),
	}

	obs := ctrl.InitialObservation(srv)
	if cfg.StartObs != nil {
		obs = *cfg.StartObs
	}
	var prevAsg sim.Assignment
	samples := 0
	tracker := cfg.Tracker
	if tracker == nil {
		tracker = &ctrl.ObservationTracker{}
	}

	// lastValid is the most recent assignment the simulator accepted; it
	// stands in when the controller panics or emits a malformed decision,
	// like real hardware holding its previous DVFS/affinity programming.
	lastValid := safeAssignment(srv)
	if cfg.LastValid != nil {
		lastValid = *cfg.LastValid
		// At the end of every interval prevAsg equals the accepted
		// assignment, so a resumed run's migration counting continues
		// exactly where the original left off.
		prevAsg = *cfg.LastValid
	}

	for t := cfg.StartSecond; t < cfg.Seconds; t++ {
		asg, panicked := safeDecide(cfg.Controller, obs)
		if panicked {
			sum.DecidePanics++
			asg = lastValid
		}
		loads := make([]float64, k)
		for i, p := range cfg.Patterns {
			loads[i] = p.RPS(t)
		}
		res, err := srv.Step(asg, loads)
		if err != nil {
			sum.StepErrors++
			asg = lastValid
			if res, err = srv.Step(asg, loads); err != nil {
				panic(err) // lastValid was accepted before; cannot happen
			}
		}
		lastValid = asg
		if cfg.Hook != nil {
			cfg.Hook(t, res, asg)
		}

		inWindow := t >= cfg.SummaryFromS
		if inWindow {
			samples++
			sum.EnergyJ += res.EnergyJ
			sum.AvgPowerW += res.TruePowerW
			if prevAsg.PerService != nil {
				for i := range asg.PerService {
					if !sameCoreSet(prevAsg.PerService[i].Cores, asg.PerService[i].Cores) {
						sum.Migrations++
					}
				}
			}
		}

		obs = tracker.Observe(srv, res)
		for i, sv := range res.Services {
			so := obs.Services[i]

			if inWindow {
				tard := so.Tardiness()
				if math.IsNaN(tard) || math.IsInf(tard, 0) || tard > nanTardiness {
					tard = nanTardiness
				}
				sum.Tardiness[i] = append(sum.Tardiness[i], tard)
				sum.MeanTardiness[i] += tard
				if tard > sum.MaxTardiness[i] {
					sum.MaxTardiness[i] = tard
				}
				if so.QoSMet() {
					sum.QoSGuarantee[i]++
				}
				sum.AvgCores[i] += float64(sv.NumCores)
				sum.AvgFreqGHz[i] += sv.FreqGHz
			}
		}
		prevAsg = asg
		if cfg.AfterInterval != nil {
			cfg.AfterInterval(t, obs, lastValid)
		}
	}

	if samples > 0 {
		n := float64(samples)
		sum.AvgPowerW /= n
		for i := 0; i < k; i++ {
			sum.QoSGuarantee[i] /= n
			sum.MeanTardiness[i] /= n
			sum.AvgCores[i] /= n
			sum.AvgFreqGHz[i] /= n
		}
	}
	return sum
}

// safeDecide runs the controller's Decide, converting a panic into a
// flag so one buggy decision cannot abort a whole experiment run.
func safeDecide(c ctrl.Controller, obs ctrl.Observation) (asg sim.Assignment, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return c.Decide(obs), false
}

// safeAssignment is the conservative fallback mapping: every service on
// every managed core at the node's maximum DVFS setting.
func safeAssignment(srv *sim.Server) sim.Assignment {
	lo, hi := srv.FreqRange()
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, srv.NumServices()),
		IdleFreqGHz: lo,
	}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{Cores: srv.ManagedCores(), FreqGHz: hi}
	}
	return asg
}

func sameCoreSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
