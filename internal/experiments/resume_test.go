package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// hx renders a float by its exact bit pattern (hex float), so any ULP of
// divergence between the reference and resumed runs fails the comparison.
func hx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// record renders one interval as a CSV row covering every observable
// quantity: power and energy, active faults, per-service latency, queue,
// work, allocation echo and normalised PMCs, and the applied assignment.
func record(t int, res sim.StepResult, asg sim.Assignment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d,%s,%s,%s", t, hx(res.PowerW), hx(res.TruePowerW), hx(res.EnergyJ))
	for _, ev := range res.Faults {
		fmt.Fprintf(&b, ",%v", ev)
	}
	for i, sv := range res.Services {
		fmt.Fprintf(&b, ",s%d,%d,%d,%s,%s,%s,%d,%d,%s,%s,%d,%s,%s",
			i, sv.Arrivals, sv.Completed, hx(sv.P99Ms), hx(sv.P95Ms), hx(sv.MeanMs),
			sv.QueueLen, sv.Dropped, hx(sv.WorkDone), hx(sv.InflationApplied),
			sv.NumCores, hx(sv.FreqGHz), hx(sv.OfferedRPS))
		for _, v := range sv.NormPMCs {
			b.WriteByte(',')
			b.WriteString(hx(v))
		}
	}
	for i, a := range asg.PerService {
		fmt.Fprintf(&b, ",a%d,%v,%s,%d", i, a.Cores, hx(a.FreqGHz), a.CacheWays)
	}
	return b.String()
}

// resumeScenario compresses the crash cadence so crash episodes (offline
// then warm-up) and sensor faults interleave with the restore point
// inside a sub-100-interval test run — the injector's schedule position
// and the server's crash bookkeeping both cross the checkpoint.
func resumeScenario() faults.Scenario {
	return faults.Scenario{
		Name:            "resume-crash",
		PMCCorruptPerKs: 120,
		RAPLFailPerKs:   60,
		CrashPeriodS:    20,
		CrashOfflineS:   5,
		CrashWarmupS:    4,
	}
}

func buildResumeWorld(sc Scale, seed int64, names []string) (*sim.Server, *core.Manager) {
	fs := resumeScenario()
	srv := NewFaultyServer(seed, &fs, names...)
	return srv, NewTwig(srv, sc, seed, names...)
}

// resumeRun is the flagship crash-consistency check: run `total`
// intervals uninterrupted, then separately run `cut` intervals,
// checkpoint, discard every live object, restore into freshly
// constructed components and run the remaining intervals. The
// per-interval records of the stitched run must be byte-identical to the
// reference. Each leg may run at its own GEMM parallelism: the restored
// trajectory must not depend on the worker fan-out on either side of the
// crash.
func resumeRun(t *testing.T, sc Scale, total, cut, parRef, parCut, parResume int) {
	t.Helper()
	oldPar := mat.Parallelism()
	defer mat.SetParallelism(oldPar)

	names := []string{"masstree", "xapian"}
	patterns := []loadgen.Pattern{loadgen.Fixed(500), loadgen.Fixed(300)}
	const seed = 21

	mat.SetParallelism(parRef)
	var ref []string
	{
		srv, mgr := buildResumeWorld(sc, seed, names)
		Run(RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns,
			Seconds: total, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				ref = append(ref, record(tt, res, asg))
			},
		})
	}

	mat.SetParallelism(parCut)
	var got []string
	var ckpt []byte
	{
		srv, mgr := buildResumeWorld(sc, seed, names)
		ls := NewLoopState()
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns,
			Seconds: cut, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
			AfterInterval: func(tt int, obs ctrl.Observation, lastValid sim.Assignment) {
				if tt == cut-1 {
					ls.Next, ls.Obs, ls.LastValid = tt+1, obs, lastValid
					ckpt = checkpoint.Marshal(srv, mgr, ls)
				}
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
	}
	if ckpt == nil {
		t.Fatal("no checkpoint captured at the cut interval")
	}

	mat.SetParallelism(parResume)
	{
		srv, mgr := buildResumeWorld(sc, seed, names)
		ls := NewLoopState()
		if err := checkpoint.Unmarshal(ckpt, srv, mgr, ls); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if ls.Next != cut {
			t.Fatalf("restored next interval = %d, want %d", ls.Next, cut)
		}
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: patterns,
			Seconds: total, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
	}

	if len(got) != total || len(ref) != total {
		t.Fatalf("interval counts: stitched %d, reference %d, want %d", len(got), len(ref), total)
	}
	for i := range ref {
		if got[i] != ref[i] {
			leg := "pre-crash"
			if i >= cut {
				leg = "resumed"
			}
			t.Fatalf("interval %d (%s leg) diverges from the uninterrupted run:\nref: %s\ngot: %s",
				i, leg, ref[i], got[i])
		}
	}
}

// Quick scale, everything serial. The cut at 40 lands mid-way between
// two crash episodes; the t=40 crash fires as the first resumed interval.
func TestResumeBitIdenticalQuickSerial(t *testing.T) {
	resumeRun(t, QuickScale(), 60, 40, 1, 1, 1)
}

// Quick scale with the reference serial and both interrupted legs on
// 4-way parallel GEMM: resume correctness must compose with PR 3's
// bit-identical parallel kernels.
func TestResumeBitIdenticalQuickParallel(t *testing.T) {
	resumeRun(t, QuickScale(), 60, 40, 1, 4, 4)
}

// Paper scale (512/256 shared trunk, batch 64): the checkpoint carries
// full-size networks, Adam moments and a PER buffer, restored late in
// the run (72 of 80 intervals).
func TestResumeBitIdenticalPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale networks in -short mode")
	}
	resumeRun(t, PaperScale(), 80, 72, 4, 4, 4)
}
