package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
	"github.com/twig-sched/twig/internal/stats"
)

// Fig6Trace is one manager's mapping behaviour for Fig. 6: the
// distribution of core allocations over the summary window (the left
// colourmaps) and the histogram of QoS tardiness (the right panels).
type Fig6Trace struct {
	Manager string
	// CoreHistogram[c] counts intervals with c cores allocated.
	CoreHistogram map[int]int
	// FreqHistogram[f] counts intervals at DVFS setting f.
	FreqHistogram map[float64]int
	// Tardiness is the histogram of QoS/target over the window.
	Tardiness *stats.Histogram
	// QoSGuarantee and mean allocation for the window.
	QoSGuarantee float64
	AvgCores     float64
	Migrations   int
}

// Fig6Result compares Heracles, Hipster and Twig-S mapping decisions for
// Masstree at 50% of the maximum load over a 300 s window.
type Fig6Result struct {
	Service  string
	LoadFrac float64
	Traces   []Fig6Trace
}

// Fig6 runs the experiment.
func Fig6(sc Scale, seed int64) Fig6Result {
	const svcName = "masstree"
	const lf = 0.5
	prof := service.MustLookup(svcName)
	res := Fig6Result{Service: svcName, LoadFrac: lf}
	total := sc.LearnS + sc.SummaryS
	for _, mgr := range []string{"heracles", "hipster", "twig-s"} {
		srv := NewServer(seed, svcName)
		c := newSingleManager(mgr, srv, sc, seed, svcName)
		trace := Fig6Trace{
			Manager:       mgr,
			CoreHistogram: map[int]int{},
			FreqHistogram: map[float64]int{},
		}
		var tard []float64
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(lf * prof.MaxLoadRPS)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				if t < sc.LearnS {
					return
				}
				sv := r.Services[0]
				trace.CoreHistogram[sv.NumCores]++
				trace.FreqHistogram[sv.FreqGHz]++
				tard = append(tard, sv.P99Ms/sv.QoSTargetMs)
			},
		})
		trace.Tardiness = stats.NewHistogram(tard, 0, 2, 40)
		trace.QoSGuarantee = sum.QoSGuarantee[0]
		trace.AvgCores = sum.AvgCores[0]
		trace.Migrations = sum.Migrations
		res.Traces = append(res.Traces, trace)
	}
	return res
}

// String renders the distributions.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.6 %s at %.0f%% load: mapping + tardiness distributions\n", r.Service, r.LoadFrac*100)
	for _, tr := range r.Traces {
		fmt.Fprintf(&b, "  %-9s QoS %.1f%%, avg %.1f cores, %d migrations\n",
			tr.Manager, tr.QoSGuarantee*100, tr.AvgCores, tr.Migrations)
		fmt.Fprintf(&b, "    cores: ")
		for c := 1; c <= 18; c++ {
			if n := tr.CoreHistogram[c]; n > 0 {
				fmt.Fprintf(&b, "%d×%d ", c, n)
			}
		}
		b.WriteString("\n    tardiness p50/p99 bucket mass: ")
		var below, above int
		for i, n := range tr.Tardiness.Counts {
			if tr.Tardiness.BinCenter(i) <= 1 {
				below += n
			} else {
				above += n
			}
		}
		fmt.Fprintf(&b, "%d met / %d violated\n", below, above)
	}
	return b.String()
}
