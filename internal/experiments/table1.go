package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/service"
	"github.com/twig-sched/twig/internal/stats"
)

// Table1Result reproduces the Table I PMC-selection pipeline of
// Sec. III-B1: gather every counter at a fixed 1 s sampling interval
// across the DVFS × core grid, build a Pearson correlation matrix
// against tail latency, run PCA, keep components covering ≥95% of the
// variance, and rank counters by their weighted loadings.
type Table1Result struct {
	Services []string
	Samples  int
	// Corr[i] is counter i's Pearson correlation with tail latency.
	Corr [pmc.NumCounters]float64
	// Components is the number of principal components needed for the
	// 95% covariance target.
	Components int
	// Importance and Rank follow Table I's fourth column: Rank[i] is
	// counter i's importance rank (1 = most important).
	Importance [pmc.NumCounters]float64
	Rank       [pmc.NumCounters]int
}

// Table1 runs the selection over the given services (the paper profiles
// each service for 1000 s per DVFS/core combination; secondsPerPoint
// scales that down).
func Table1(services []string, secondsPerPoint int, seed int64) Table1Result {
	cols := make([][]float64, pmc.NumCounters)
	var lats []float64
	for si, name := range services {
		prof := service.MustLookup(name)
		cfg := sim.DefaultConfig()
		cfg.MeasurementSeed = seed + int64(si)
		for cores := 4; cores <= cfg.Platform.CoresPerSocket; cores += 4 {
			for step := 0; step < platform.NumFreqSteps; step += 2 {
				srv := sim.NewServer(cfg, []sim.ServiceSpec{{Profile: prof, Seed: seed + int64(si*100+cores+step)}})
				asg := sim.Assignment{
					PerService:  []sim.Allocation{{Cores: srv.ManagedCores()[:cores], FreqGHz: platform.FreqForStep(step)}},
					IdleFreqGHz: platform.MinFreqGHz,
				}
				load := 0.35 * prof.MaxLoadRPS
				for t := 0; t < secondsPerPoint; t++ {
					r := srv.MustStep(asg, []float64{load})
					sv := r.Services[0]
					if t < secondsPerPoint/4 || sv.Completed == 0 {
						continue
					}
					for c := 0; c < int(pmc.NumCounters); c++ {
						cols[c] = append(cols[c], sv.NormPMCs[c])
					}
					lats = append(lats, sv.P99Ms)
				}
			}
		}
	}

	res := Table1Result{Services: services, Samples: len(lats)}
	for c := 0; c < int(pmc.NumCounters); c++ {
		res.Corr[c] = stats.Pearson(cols[c], lats)
	}
	p := stats.PCAFromColumns(cols)
	res.Components = p.ComponentsForCoverage(0.95)
	imp := p.FeatureImportance(res.Components)
	copy(res.Importance[:], imp)

	idx := make([]int, len(imp))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	for rank, i := range idx {
		res.Rank[i] = rank + 1
	}
	return res
}

// String renders a Table I analogue.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: PMC selection over %v (%d samples, %d PCs for 95%% covariance)\n",
		r.Services, r.Samples, r.Components)
	fmt.Fprintf(&b, "  %-30s %10s %10s %5s\n", "Counter", "corr(lat)", "importance", "rank")
	for c := 0; c < int(pmc.NumCounters); c++ {
		fmt.Fprintf(&b, "  %-30s %10.3f %10.3f %5d\n", pmc.Names[c], r.Corr[c], r.Importance[c], r.Rank[c])
	}
	return b.String()
}
