package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig11Result reproduces Fig. 11: Twig-C under dynamic load variation —
// Moses' load climbs from 20% to 100% of its colocated operable maximum
// while Masstree holds 20%. The trace shows Twig-C jumping directly to
// the right core configuration and preferring finer DVFS adaptations.
type Fig11Result struct {
	PeriodS      int
	QoSGuarantee []float64
	EnergyJ      float64
	Migrations   int
	// Per load step: Moses' load and each service's allocation.
	MosesLoadRPS  []float64
	MosesCores    []int
	MosesFreq     []float64
	MasstreeCores []int
	MasstreeFreq  []float64
}

// Fig11 runs the Twig-C varying-load trace. (The paper omits PARTIES
// from this plot for legibility; Fig. 12 carries that comparison.)
func Fig11(sc Scale, seed int64) Fig11Result {
	frac := PairMaxFraction("moses", "masstree")
	moses := service.MustLookup("moses")
	mass := service.MustLookup("masstree")
	period := sc.LearnS / 20
	if period < 10 {
		period = 10
	}
	gen := loadgen.NewStepWise(0.2*frac*moses.MaxLoadRPS, frac*moses.MaxLoadRPS, 0.2, period)
	total := sc.LearnS + sc.SummaryS*3

	srv := NewServer(seed, "moses", "masstree")
	mgr := NewTwig(srv, sc, seed, "moses", "masstree")
	res := Fig11Result{PeriodS: period}
	sum := Run(RunConfig{
		Server:     srv,
		Controller: mgr,
		Patterns: []loadgen.Pattern{
			gen,
			loadgen.Fixed(0.2 * frac * mass.MaxLoadRPS),
		},
		Seconds:      total,
		SummaryFromS: sc.LearnS,
		Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
			if t >= sc.LearnS && t%period == period/2 {
				res.MosesLoadRPS = append(res.MosesLoadRPS, r.Services[0].OfferedRPS)
				res.MosesCores = append(res.MosesCores, r.Services[0].NumCores)
				res.MosesFreq = append(res.MosesFreq, r.Services[0].FreqGHz)
				res.MasstreeCores = append(res.MasstreeCores, r.Services[1].NumCores)
				res.MasstreeFreq = append(res.MasstreeFreq, r.Services[1].FreqGHz)
			}
		},
	})
	res.QoSGuarantee = sum.QoSGuarantee
	res.EnergyJ = sum.EnergyJ
	res.Migrations = sum.Migrations
	return res
}

// String renders the allocation trace.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.11 Twig-C with varying Moses load (period %d s): QoS moses %.1f%%, masstree %.1f%%, %d migrations\n",
		r.PeriodS, r.QoSGuarantee[0]*100, r.QoSGuarantee[1]*100, r.Migrations)
	b.WriteString("  moses load → moses alloc | masstree alloc\n")
	for i := range r.MosesLoadRPS {
		fmt.Fprintf(&b, "    %6.0f rps → %2dc@%.1f | %2dc@%.1f\n",
			r.MosesLoadRPS[i], r.MosesCores[i], r.MosesFreq[i], r.MasstreeCores[i], r.MasstreeFreq[i])
	}
	return b.String()
}
