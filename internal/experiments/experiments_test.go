package experiments

import (
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// tinyScale keeps unit tests fast: the learning behaviour is not under
// test here, only the experiment plumbing.
func tinyScale() Scale {
	sc := QuickScale()
	sc.Name = "tiny"
	sc.SharedHidden = []int{16, 12}
	sc.BranchHidden = 8
	sc.TrainPerStep = 1
	sc.Epsilon.MidStep = 60
	sc.Epsilon.EndStep = 120
	sc.PERAnneal = 200
	sc.LearnS = 150
	sc.SummaryS = 50
	return sc
}

func TestRunSummaryShape(t *testing.T) {
	srv := NewServer(1, "masstree")
	static := baselines.NewStatic(srv.ManagedCores(), 1)
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   static,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(500)},
		Seconds:      40,
		SummaryFromS: 20,
	})
	if sum.Controller != "static" || sum.Seconds != 40 {
		t.Fatalf("summary header %+v", sum)
	}
	if len(sum.QoSGuarantee) != 1 || sum.QoSGuarantee[0] < 0 || sum.QoSGuarantee[0] > 1 {
		t.Fatalf("QoS guarantee %v", sum.QoSGuarantee)
	}
	if sum.EnergyJ <= 0 || sum.AvgPowerW <= 0 {
		t.Fatal("energy accounting")
	}
	if len(sum.Tardiness[0]) != 20 {
		t.Fatalf("tardiness samples = %d", len(sum.Tardiness[0]))
	}
	if sum.AvgCores[0] != 18 || math.Abs(sum.AvgFreqGHz[0]-2.0) > 1e-9 {
		t.Fatalf("static allocation %v %v", sum.AvgCores, sum.AvgFreqGHz)
	}
	if sum.Migrations != 0 {
		t.Fatal("static must not migrate")
	}
}

func TestRunValidation(t *testing.T) {
	srv := NewServer(1, "masstree")
	static := baselines.NewStatic(srv.ManagedCores(), 1)
	for _, bad := range []RunConfig{
		{Server: srv, Controller: static, Patterns: nil, Seconds: 10, SummaryFromS: 5},
		{Server: srv, Controller: static, Patterns: []loadgen.Pattern{loadgen.Fixed(1)}, Seconds: 10, SummaryFromS: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(bad)
		}()
	}
}

func TestRunHookSeesEveryInterval(t *testing.T) {
	srv := NewServer(2, "xapian")
	static := baselines.NewStatic(srv.ManagedCores(), 1)
	n := 0
	Run(RunConfig{
		Server:       srv,
		Controller:   static,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(300)},
		Seconds:      25,
		SummaryFromS: 5,
		Hook:         func(int, sim.StepResult, sim.Assignment) { n++ },
	})
	if n != 25 {
		t.Fatalf("hook saw %d intervals", n)
	}
}

func TestQoSTargetCachedAndPositive(t *testing.T) {
	a := QoSTarget("masstree")
	b := QoSTarget("masstree")
	if a != b || a <= 0 {
		t.Fatalf("QoSTarget = %v / %v", a, b)
	}
}

func TestPowerModelForProducesUsefulGradients(t *testing.T) {
	m := PowerModelFor("masstree")
	// More cores at equal load and frequency must not look cheaper.
	lo := m.Estimate(0.5, 8, 1.6)
	hi := m.Estimate(0.5, 16, 1.6)
	if hi <= lo {
		t.Fatalf("cores gradient inverted: %v vs %v", lo, hi)
	}
	// Higher DVFS at equal load must not look cheaper.
	slow := m.Estimate(0.5, 12, 1.2)
	fast := m.Estimate(0.5, 12, 2.0)
	if fast <= slow {
		t.Fatalf("frequency gradient inverted: %v vs %v", slow, fast)
	}
	if m.R2 < 0.9 {
		t.Fatalf("power model fit R² = %v, want ≥ 0.9 (paper: 0.92)", m.R2)
	}
}

func TestPairMaxFraction(t *testing.T) {
	f := PairMaxFraction("masstree", "xapian")
	if f < 0.1 || f > 1.0 {
		t.Fatalf("pair max fraction = %v", f)
	}
	if f2 := PairMaxFraction("masstree", "xapian"); f2 != f {
		t.Fatal("must be cached/deterministic")
	}
	if len(ServicePairs()) != 6 {
		t.Fatalf("pairs = %v", ServicePairs())
	}
}

func TestFig1SmallRun(t *testing.T) {
	r := Fig1("memcached", 600, 1)
	if r.Samples != 600 {
		t.Fatalf("samples = %d", r.Samples)
	}
	// The headline property: multi-PMC errors are tighter than IPC-only.
	if r.MultiPMC.ErrStdMs >= r.IPCOnly.ErrStdMs {
		t.Fatalf("multi-PMC std %v should beat IPC-only %v",
			r.MultiPMC.ErrStdMs, r.IPCOnly.ErrStdMs)
	}
	if r.ZeroErrorGain <= 1 {
		t.Fatalf("zero-error gain = %v, want > 1 (paper: ≥1.91)", r.ZeroErrorGain)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestTable1SmallRun(t *testing.T) {
	r := Table1([]string{"masstree"}, 10, 1)
	if r.Samples == 0 {
		t.Fatal("no samples gathered")
	}
	if r.Components < 1 {
		t.Fatalf("components = %d", r.Components)
	}
	seen := map[int]bool{}
	for _, rank := range r.Rank {
		if rank < 1 || rank > 11 || seen[rank] {
			t.Fatalf("ranks = %v", r.Rank)
		}
		seen[rank] = true
	}
	// At least one counter must correlate strongly with tail latency —
	// the premise of the whole paper.
	strong := false
	for _, c := range r.Corr {
		if math.Abs(c) > 0.5 {
			strong = true
		}
	}
	if !strong {
		t.Fatalf("no counter correlates with latency: %v", r.Corr)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig4SmallRun(t *testing.T) {
	r := Fig4("masstree", 6, 1)
	if r.Model == nil || r.PAAE <= 0 {
		t.Fatalf("fig4 = %+v", r)
	}
	if r.PAAE > 25 {
		t.Fatalf("PAAE = %v%%, model should be a usable first-order fit", r.PAAE)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestTable2SmallRun(t *testing.T) {
	r := Table2(20, 1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MaxLoadRPS <= 0 || row.QoSTargetMs <= 0 {
			t.Fatalf("row %+v", row)
		}
		// The knee must land within ±40% of the calibrated maximum.
		ratio := row.MaxLoadRPS / row.PaperMaxRPS
		if ratio < 0.6 || ratio > 1.45 {
			t.Fatalf("%s knee at %.2fx of nominal max", row.Service, ratio)
		}
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestTable3Runs(t *testing.T) {
	r := Table3(2)
	if r.GradientDescent <= 0 || r.Total <= 0 {
		t.Fatalf("table3 = %+v", r)
	}
	if r.PMCDataBytes != 352 {
		t.Fatalf("PMC bytes = %d", r.PMCDataBytes)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFigMem(t *testing.T) {
	r := FigMem(3, 30, 25)
	if r.TwigBytes >= 5<<20 {
		t.Fatalf("Twig memory %d ≥ 5 MB", r.TwigBytes)
	}
	if r.HipsterEntries <= 1e14 {
		t.Fatalf("Hipster entries = %v, want the paper's 25·3³⁰ scale", r.HipsterEntries)
	}
	if r.FlatDQNParams <= r.TwigParams {
		t.Fatal("flat DQN must dwarf the BDQ")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

// TestFig5TinyPlumbing exercises the full Fig.5 machinery at tiny scale:
// correctness of the comparison scaffolding, not learning quality.
func TestFig5TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig5([]string{"masstree"}, sc, 1)
	if len(r.Cells) != 3*len(Fig5Managers) {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Manager == "static" && math.Abs(c.EnergyNorm-1) > 1e-9 {
			t.Fatalf("static must normalise to 1, got %v", c.EnergyNorm)
		}
		if c.EnergyNorm <= 0 {
			t.Fatalf("cell %+v", c)
		}
	}
	if r.AvgEnergyNorm("static") != 1 {
		t.Fatal("avg energy for static")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig13TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig13([][2]string{{"masstree", "img-dnn"}}, sc, 1)
	if len(r.Cells) != 3*len(Fig13Managers) {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	if r.AvgQoS("static") <= 0 {
		t.Fatal("static QoS")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFig7TinyPlumbing(t *testing.T) {
	sc := tinyScale()
	r := Fig7(sc, 1)
	if len(r.Curves["twig-s"]) == 0 || len(r.Curves["hipster"]) == 0 {
		t.Fatalf("curves missing: %+v", r.Curves)
	}
	for _, v := range r.Curves["twig-s"] {
		if v < 0 || v > 1 {
			t.Fatalf("curve value %v", v)
		}
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestScalesDiffer(t *testing.T) {
	p, q := PaperScale(), QuickScale()
	if p.SharedHidden[0] != 512 || p.Epsilon.MidStep != 10000 || p.LearnS != 10000 {
		t.Fatalf("paper scale %+v", p)
	}
	if q.LearnS >= p.LearnS || q.SharedHidden[0] >= p.SharedHidden[0] {
		t.Fatal("quick scale must be smaller")
	}
}

// TestRunDeterminism: the whole stack — simulator, PER, BDQ, controller —
// must be reproducible for a fixed seed, as DESIGN.md promises.
func TestRunDeterminism(t *testing.T) {
	sc := tinyScale()
	run := func() Summary {
		srv := NewServer(7, "masstree")
		tw := NewTwig(srv, sc, 7, "masstree")
		return Run(RunConfig{
			Server:       srv,
			Controller:   tw,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(900)},
			Seconds:      sc.LearnS + sc.SummaryS,
			SummaryFromS: sc.LearnS,
		})
	}
	a, b := run(), run()
	if a.EnergyJ != b.EnergyJ || a.QoSGuarantee[0] != b.QoSGuarantee[0] || a.Migrations != b.Migrations {
		t.Fatalf("runs differ: %v/%v vs %v/%v", a.EnergyJ, a.QoSGuarantee[0], b.EnergyJ, b.QoSGuarantee[0])
	}
}
