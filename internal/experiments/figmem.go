package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// FigMemResult reproduces the memory-complexity comparison of
// Sec. V-B1: a server with D action dimensions of N discrete actions
// each. Hipster's Q-table needs b·N^D entries; Twig's BDQ grows linearly
// in D·N; a flat DQN's output head grows as N^D.
type FigMemResult struct {
	Dims          int
	ActionsPerDim int
	Buckets       int

	HipsterEntries float64
	HipsterBytes   float64 // 8 bytes per entry
	TwigParams     int
	TwigBytes      int
	FlatDQNParams  int
	FlatDQNBytes   int
}

// FigMem computes the comparison for the paper's example (D = 3
// dimensions, N = 30 actions, 25 load buckets) using the real network
// constructors, not formulas alone.
func FigMem(dims, actionsPerDim, buckets int) FigMemResult {
	rng := rand.New(rand.NewSource(1))
	dd := make([]int, dims)
	for i := range dd {
		dd[i] = actionsPerDim
	}
	spec := bdq.Spec{
		StateDim:     int(pmc.NumCounters),
		Agents:       1,
		Dims:         dd,
		SharedHidden: []int{512, 256},
		BranchHidden: 128,
	}
	net := bdq.NewNetwork(spec, rng)
	flat := bdq.NewFlatDQN(int(pmc.NumCounters), dd, []int{512, 256}, rng)
	// The paper's Sec. II-B table-size formula is b·D^N (Hipster's
	// state-action table for D dimensions of N actions grows as D^N),
	// giving the 25·3³⁰ example of Sec. V-B1.
	entries := bdq.QTableEntries(buckets, actionsPerDim, dims)
	return FigMemResult{
		Dims:           dims,
		ActionsPerDim:  actionsPerDim,
		Buckets:        buckets,
		HipsterEntries: entries,
		HipsterBytes:   entries * 8,
		TwigParams:     net.NumParams(),
		TwigBytes:      net.MemoryBytes(),
		FlatDQNParams:  flat.NumParams(),
		FlatDQNBytes:   flat.MemoryBytes(),
	}
}

// String renders the comparison.
func (r FigMemResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory complexity (D=%d, N=%d, b=%d):\n", r.Dims, r.ActionsPerDim, r.Buckets)
	fmt.Fprintf(&b, "  Hipster Q-table : %.3g entries ≈ %.3g bytes\n", r.HipsterEntries, r.HipsterBytes)
	fmt.Fprintf(&b, "  Flat DQN        : %d params = %.2f MB\n", r.FlatDQNParams, float64(r.FlatDQNBytes)/(1<<20))
	fmt.Fprintf(&b, "  Twig BDQ        : %d params = %.2f MB (paper: under 5 MB)\n", r.TwigParams, float64(r.TwigBytes)/(1<<20))
	return b.String()
}
