package experiments

import (
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/scenario"
	"github.com/twig-sched/twig/internal/sim"
)

// miniScale shrinks ShortScale further for unit tests: enough intervals
// to exercise learning, decisions and the summary window, not enough to
// show learning outcomes.
func miniScale() Scale {
	sc := ShortScale()
	sc.Name = "mini"
	sc.LearnS = 40
	sc.SummaryS = 20
	return sc
}

// The rendered sweep must be byte-identical across same-seed reruns and
// differ across seeds — the property the CI scenario-smoke job checks
// for the full FigScenShort sweep, pinned here per commit on one preset.
func TestFigScenDeterministic(t *testing.T) {
	sc := miniScale()
	a := figScen(sc, 7, []string{"cloud-edge"}).String()
	b := figScen(sc, 7, []string{"cloud-edge"}).String()
	if a != b {
		t.Fatalf("same-seed reruns diverge:\n%s\nvs\n%s", a, b)
	}
	c := figScen(sc, 8, []string{"cloud-edge"}).String()
	if a == c {
		t.Fatal("different seeds rendered identically")
	}
	for _, want := range []string{"cloud-edge/cloud0", "cloud-edge/edge0", "cloud-edge/edge1", "twig-c", "parties", "static"} {
		if !strings.Contains(a, want) {
			t.Fatalf("rendered sweep is missing %q:\n%s", want, a)
		}
	}
}

func TestScenQoSTargetIsSLO(t *testing.T) {
	ws, err := scenario.MustNamed("cloud-edge").Worlds(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		for _, svc := range w.Services {
			if got, want := ScenQoSTarget(w, svc), QoSTarget(svc); got != want {
				t.Fatalf("world %s service %s: target %v, want the platform-independent SLO %v", w.Name, svc, got, want)
			}
		}
	}
}

// The flagship crash-consistency check under a scenario world: a
// Twig-C run over the agentic-burst pod, cut at interval 40 of 60,
// restored into freshly built components, must replay the uninterrupted
// trajectory bit-for-bit — the new trace generators, the scenario
// plumbing and the heterogeneous-platform checkpoint format all sit on
// the cut path.
func TestScenResumeBitIdenticalAgenticBurst(t *testing.T) {
	const total, cut, seed = 60, 40, 21
	sc := ShortScale()
	ws, err := scenario.MustNamed("agentic-burst").Worlds(seed)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	build := func() (*sim.Server, *core.Manager) {
		srv := scenWorld(w, seed)
		return srv, newScenTwig(srv, w, sc, seed)
	}

	var ref []string
	{
		srv, mgr := build()
		Run(RunConfig{
			Server: srv, Controller: mgr, Patterns: w.Patterns(),
			Seconds: total, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				ref = append(ref, record(tt, res, asg))
			},
		})
	}

	var got []string
	var ckpt []byte
	{
		srv, mgr := build()
		ls := NewLoopState()
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: w.Patterns(),
			Seconds: cut, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
			AfterInterval: func(tt int, obs ctrl.Observation, lastValid sim.Assignment) {
				if tt == cut-1 {
					ls.Next, ls.Obs, ls.LastValid = tt+1, obs, lastValid
					ckpt = checkpoint.Marshal(srv, mgr, ls)
				}
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
	}
	if ckpt == nil {
		t.Fatal("no checkpoint captured at the cut interval")
	}

	{
		srv, mgr := build()
		ls := NewLoopState()
		if err := checkpoint.Unmarshal(ckpt, srv, mgr, ls); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if ls.Next != cut {
			t.Fatalf("restored next interval = %d, want %d", ls.Next, cut)
		}
		cfg := RunConfig{
			Server: srv, Controller: mgr, Patterns: w.Patterns(),
			Seconds: total, SummaryFromS: 0,
			Hook: func(tt int, res sim.StepResult, asg sim.Assignment) {
				got = append(got, record(tt, res, asg))
			},
		}
		ls.Configure(&cfg)
		Run(cfg)
	}

	if len(got) != total || len(ref) != total {
		t.Fatalf("interval counts: stitched %d, reference %d, want %d", len(got), len(ref), total)
	}
	for i := range ref {
		if got[i] != ref[i] {
			leg := "pre-cut"
			if i >= cut {
				leg = "resumed"
			}
			t.Fatalf("interval %d (%s leg) diverges from the uninterrupted run:\nref: %s\ngot: %s",
				i, leg, ref[i], got[i])
		}
	}
}
