package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig10Trace is one manager's behaviour under the varying load.
type Fig10Trace struct {
	Manager      string
	QoSGuarantee float64
	EnergyJ      float64
	Migrations   int
	// Cores and FreqGHz are sampled once per load step for the trace
	// plot.
	Cores   []int
	FreqGHz []float64
	LoadRPS []float64
}

// Fig10Result reproduces Fig. 10: resource allocation of Twig-S, Hipster
// and Heracles under the step-wise monotonic varying load for Img-dnn
// (change factor 20%, steps every 200 s in the paper, scaled down with
// the experiment profile).
type Fig10Result struct {
	Service string
	PeriodS int
	Traces  []Fig10Trace
}

// Fig10 runs the varying-load comparison.
func Fig10(sc Scale, seed int64) Fig10Result {
	const svcName = "img-dnn"
	prof := service.MustLookup(svcName)
	period := sc.LearnS / 20 // the paper's 200 s at 10 000 s learning
	if period < 10 {
		period = 10
	}
	gen := loadgen.NewStepWise(0.2*prof.MaxLoadRPS, 0.9*prof.MaxLoadRPS, 0.2, period)
	total := sc.LearnS + sc.SummaryS*3 // a few ladders after learning
	res := Fig10Result{Service: svcName, PeriodS: period}
	for _, mgr := range []string{"twig-s", "hipster", "heracles"} {
		srv := NewServer(seed, svcName)
		c := newSingleManager(mgr, srv, sc, seed, svcName)
		tr := Fig10Trace{Manager: mgr}
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{gen},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				if t >= sc.LearnS && t%period == period/2 {
					tr.Cores = append(tr.Cores, r.Services[0].NumCores)
					tr.FreqGHz = append(tr.FreqGHz, r.Services[0].FreqGHz)
					tr.LoadRPS = append(tr.LoadRPS, r.Services[0].OfferedRPS)
				}
			},
		})
		tr.QoSGuarantee = sum.QoSGuarantee[0]
		tr.EnergyJ = sum.EnergyJ
		tr.Migrations = sum.Migrations
		res.Traces = append(res.Traces, tr)
	}
	return res
}

// String renders the traces.
func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.10 varying load on %s (step period %d s)\n", r.Service, r.PeriodS)
	for _, tr := range r.Traces {
		fmt.Fprintf(&b, "  %-9s QoS %.1f%%, energy %.0f J, %d migrations\n",
			tr.Manager, tr.QoSGuarantee*100, tr.EnergyJ, tr.Migrations)
		fmt.Fprintf(&b, "    load→alloc:")
		for i := range tr.Cores {
			fmt.Fprintf(&b, " %0.0f:%dc@%.1f", tr.LoadRPS[i], tr.Cores[i], tr.FreqGHz[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
