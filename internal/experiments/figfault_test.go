package experiments

import (
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

// panicEvery panics on a schedule, standing in for a buggy controller.
type panicEvery struct {
	inner  ctrl.Controller
	period int
	calls  int
}

func (p *panicEvery) Name() string { return "flaky" }
func (p *panicEvery) Decide(o ctrl.Observation) sim.Assignment {
	p.calls++
	if p.calls%p.period == 0 {
		panic("injected controller bug")
	}
	return p.inner.Decide(o)
}

// An unguarded controller panic must not abort the run: the loop falls
// back to the last valid assignment and counts the save.
func TestRunSurvivesControllerPanic(t *testing.T) {
	srv := NewServer(3, "masstree")
	flaky := &panicEvery{inner: baselines.NewStatic(srv.ManagedCores(), 1), period: 7}
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   flaky,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(400)},
		Seconds:      50,
		SummaryFromS: 10,
	})
	if sum.DecidePanics == 0 {
		t.Fatal("no panics recorded despite a panicking controller")
	}
	if sum.QoSGuarantee[0] <= 0 {
		t.Fatal("run produced no useful intervals")
	}
}

// A controller emitting malformed assignments must not abort the run
// either: the simulator rejects them and the loop replays the last valid
// assignment.
func TestRunSurvivesMalformedAssignment(t *testing.T) {
	srv := NewServer(4, "masstree")
	bad := &fakeController{decide: func(o ctrl.Observation) sim.Assignment {
		return sim.Assignment{PerService: []sim.Allocation{{Cores: []int{9999}, FreqGHz: 2}}}
	}}
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   bad,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(400)},
		Seconds:      20,
		SummaryFromS: 5,
	})
	if sum.StepErrors != 20 {
		t.Fatalf("StepErrors = %d, want 20", sum.StepErrors)
	}
}

type fakeController struct {
	decide func(ctrl.Observation) sim.Assignment
}

func (f *fakeController) Name() string                             { return "fake" }
func (f *fakeController) Decide(o ctrl.Observation) sim.Assignment { return f.decide(o) }

// The headline robustness claim: under combined crash and PMC-corruption
// faults, the guarded Twig-C holds strictly higher QoS than the same
// controller unguarded.
func TestGuardedTwigBeatsUnguardedUnderFaults(t *testing.T) {
	sc := tinyScale()
	fs := faults.MustNamed("crash")
	fs.PMCCorruptPerKs = 120 // harden the sensor side of the episode
	adaptScenario(&fs, sc.LearnS+sc.SummaryS)
	names := []string{"masstree", "xapian"}

	unguarded := FaultCellRun(sc, 5, fs, "twig-c", false, names)
	guarded := FaultCellRun(sc, 5, fs, "twig-c", true, names)

	if !(guarded.MeanQoS > unguarded.MeanQoS) {
		t.Fatalf("guarded QoS %.3f not above unguarded %.3f", guarded.MeanQoS, unguarded.MeanQoS)
	}
	if guarded.Guard.ObsRepaired == 0 {
		t.Fatal("guard repaired no observations under a sensor-fault scenario")
	}
}

// The deterministic scenario schedule must make whole cells reproducible.
func TestFaultCellReproducible(t *testing.T) {
	sc := tinyScale()
	fs := faults.MustNamed("sensor")
	a := FaultCellRun(sc, 9, fs, "static", true, []string{"masstree"})
	b := FaultCellRun(sc, 9, fs, "static", true, []string{"masstree"})
	if a != b {
		t.Fatalf("identical cells diverge:\n%+v\n%+v", a, b)
	}
}

func TestAdaptScenario(t *testing.T) {
	fs := faults.Scenario{CrashPeriodS: 400, CrashOfflineS: 15}
	adaptScenario(&fs, 200)
	if fs.CrashPeriodS != 40 {
		t.Fatalf("period = %d", fs.CrashPeriodS)
	}
	if fs.CrashOfflineS >= fs.CrashPeriodS/2 {
		t.Fatalf("offline %d too long for period %d", fs.CrashOfflineS, fs.CrashPeriodS)
	}
	long := faults.Scenario{CrashPeriodS: 100, CrashOfflineS: 10}
	adaptScenario(&long, 5000)
	if long.CrashPeriodS != 100 || long.CrashOfflineS != 10 {
		t.Fatal("long runs must keep the scenario untouched")
	}
}

func TestFigFaultRendering(t *testing.T) {
	r := FigFaultResult{
		Scenarios: []string{"none"},
		Services:  []string{"masstree", "xapian"},
		Cells: []FaultCell{
			{Scenario: "none", Manager: "static", MeanQoS: 0.9, MinQoS: 0.8, EnergyJ: 100},
			{Scenario: "none", Manager: "static", Guarded: true, MeanQoS: 0.95, MinQoS: 0.9,
				EnergyJ: 110, Recoveries: 2, MeanRecoveryS: 3, DecidePanics: 1},
		},
	}
	s := r.String()
	for _, want := range []string{"static", "static+guard", "90.0%", "recovery 3.0 s", "guard["} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
