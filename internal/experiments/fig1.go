package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/nn"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
	"github.com/twig-sched/twig/internal/stats"
)

// Fig1Result reproduces Fig. 1: the tail-latency prediction error of a
// learned estimator fed all Table-I PMCs versus one fed only IPC, for
// one service run at maximum cores and DVFS across varying load.
type Fig1Result struct {
	Service string
	Samples int

	MultiPMC Fig1Model
	IPCOnly  Fig1Model

	// ZeroErrorGain is P(error≈0 | multi-PMC) / P(error≈0 | IPC), the
	// paper's headline "probability of zero prediction error increases
	// by ≥1.91×".
	ZeroErrorGain float64
}

// Fig1Model summarises one estimator's held-out error distribution.
type Fig1Model struct {
	ErrMeanMs float64
	ErrStdMs  float64
	// PDF is an area-normalised histogram of errors (Fig. 1a/1c).
	PDF *stats.Histogram
	// Violins groups errors by measured tail latency (Fig. 1b/1d).
	Violins []stats.ViolinBucket
}

// Fig1 runs the experiment for one service ("memcached" or
// "web-search" in the paper). samples counts 1 s monitoring intervals
// (the paper uses 30 000).
func Fig1(svcName string, samples int, seed int64) Fig1Result {
	prof := service.MustLookup(svcName)
	cfg := sim.DefaultConfig()
	cfg.MeasurementSeed = seed
	srv := sim.NewServer(cfg, []sim.ServiceSpec{{Profile: prof, Seed: seed}})
	asg := sim.Assignment{
		PerService:  []sim.Allocation{{Cores: srv.ManagedCores(), FreqGHz: platform.MaxFreqGHz}},
		IdleFreqGHz: platform.MinFreqGHz,
	}

	rng := rand.New(rand.NewSource(seed))
	var feats [][]float64
	var ipcs []float64
	var lats []float64
	load := 0.4 * prof.MaxLoadRPS
	for len(lats) < samples {
		// Random-walk the load between 10% and 95% of max, the "varying
		// the incoming load" protocol of Sec. II-A.
		load += (rng.Float64() - 0.5) * 0.2 * prof.MaxLoadRPS
		load = mat.Clamp(load, 0.1*prof.MaxLoadRPS, 0.95*prof.MaxLoadRPS)
		r := srv.MustStep(asg, []float64{load})
		sv := r.Services[0]
		if sv.Completed == 0 {
			continue
		}
		feats = append(feats, append([]float64(nil), sv.NormPMCs[:]...))
		ipcs = append(ipcs, sv.PMCs.IPC())
		lats = append(lats, sv.P99Ms)
	}

	// Normalise IPC to [0,1] for the single-feature model.
	_, ipcMax := stats.MaxScale([][]float64{ipcs})
	ipcFeats := make([][]float64, len(ipcs))
	for i, v := range ipcs {
		x := v
		if ipcMax[0] > 0 {
			x = v / ipcMax[0]
		}
		ipcFeats[i] = []float64{x}
	}

	split := len(lats) * 7 / 10
	multi := fitAndEval(feats[:split], lats[:split], feats[split:], lats[split:], seed)
	ipc := fitAndEval(ipcFeats[:split], lats[:split], ipcFeats[split:], lats[split:], seed+1)

	res := Fig1Result{
		Service:  svcName,
		Samples:  len(lats),
		MultiPMC: summariseErrors(multi, lats[split:]),
		IPCOnly:  summariseErrors(ipc, lats[split:]),
	}
	pz := res.IPCOnly.PDF.ProbabilityAtZero()
	if pz > 0 {
		res.ZeroErrorGain = res.MultiPMC.PDF.ProbabilityAtZero() / pz
	}
	return res
}

// fitAndEval trains a small MLP regressor (the deep-RL function
// approximator of Sec. II-A) and returns the held-out prediction errors
// (predicted − measured, in ms).
func fitAndEval(trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := len(trainX[0])
	net := nn.NewSequential(
		nn.NewDenseReLU("h1", in, 32, rng),
		nn.NewDenseReLU("h2", 32, 16, rng),
		nn.NewDense("out", 16, 1, rng),
	)
	opt := nn.NewAdam(0.003)

	// Scale targets to keep the regression well-conditioned.
	yMax := stats.Percentile(trainY, 99)
	if yMax <= 0 {
		yMax = 1
	}
	const batch = 64
	epochs := 40
	xb := mat.New(batch, in)
	yb := mat.New(batch, 1)
	for e := 0; e < epochs; e++ {
		for it := 0; it < len(trainX)/batch; it++ {
			for b := 0; b < batch; b++ {
				j := rng.Intn(len(trainX))
				copy(xb.Row(b), trainX[j])
				yb.Set(b, 0, trainY[j]/yMax)
			}
			pred := net.Forward(xb, true)
			_, grad := nn.MSE(pred, yb)
			net.Backward(grad)
			opt.StepAndZeroGrad(net.Params())
		}
	}

	errs := make([]float64, len(testX))
	for i, x := range testX {
		pred := net.Forward(mat.FromSlice(1, in, append([]float64(nil), x...)), false)
		errs[i] = pred.At(0, 0)*yMax - testY[i]
	}
	return errs
}

func summariseErrors(errs, lats []float64) Fig1Model {
	d := stats.Describe(errs)
	span := d.Std * 4
	if span == 0 {
		span = 1
	}
	return Fig1Model{
		ErrMeanMs: d.Mean,
		ErrStdMs:  d.Std,
		PDF:       stats.NewHistogram(errs, -span, span, 60),
		Violins:   stats.ViolinByLatency(lats, errs, 6),
	}
}

// String renders the result in the paper's terms.
func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.1 %s (%d samples)\n", r.Service, r.Samples)
	fmt.Fprintf(&b, "  multi-PMC : mean err %+.3f ms, std %.3f ms\n", r.MultiPMC.ErrMeanMs, r.MultiPMC.ErrStdMs)
	fmt.Fprintf(&b, "  IPC only  : mean err %+.3f ms, std %.3f ms\n", r.IPCOnly.ErrMeanMs, r.IPCOnly.ErrStdMs)
	fmt.Fprintf(&b, "  P(zero error) gain multi-PMC vs IPC: %.2fx\n", r.ZeroErrorGain)
	b.WriteString("  violin (latency bucket → median err, IQR):\n")
	for i, v := range r.MultiPMC.Violins {
		if v.N == 0 {
			continue
		}
		iv := r.IPCOnly.Violins[i]
		fmt.Fprintf(&b, "    [%6.2f–%6.2f ms] multi %+7.3f (iqr %6.3f)   ipc %+7.3f (iqr %6.3f)\n",
			v.LatencyLo, v.LatencyHi, v.Median, v.Spread, iv.Median, iv.Spread)
	}
	return b.String()
}
