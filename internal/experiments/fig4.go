package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/service"
	"github.com/twig-sched/twig/internal/stats"
)

// Fig4Result reproduces Fig. 4: the percentage absolute average error
// (PAAE) of the Eq. 2 per-service power model at each profiled load
// level, and the fit quality the paper reports in Sec. IV (MSE, R²).
type Fig4Result struct {
	Service string
	Model   *core.PowerModel
	// PAAEByLoad maps the profiled load fraction to the PAAE over all
	// core/DVFS points at that load.
	PAAEByLoad map[float64]float64
	// PAAE is the overall percentage absolute average error (the paper
	// reports a mean of 5.46%, max 7%).
	PAAE float64
}

// Fig4 profiles one service (the paper shows Xapian and Masstree) and
// fits Eq. 2 with random grid search + 5-fold CV.
func Fig4(svcName string, secondsPerPoint int, seed int64) Fig4Result {
	prof := service.MustLookup(svcName)
	cfg := sim.DefaultConfig()
	cfg.MeasurementSeed = seed
	spec := sim.ServiceSpec{Profile: prof, Seed: seed}
	samples := core.ProfilePower(spec, cfg, secondsPerPoint, seed)
	rng := rand.New(rand.NewSource(seed))
	model, err := core.FitPowerModel(samples, sim.NewServer(cfg, []sim.ServiceSpec{spec}).IdlePowerW(), rng)
	if err != nil {
		panic(err)
	}

	res := Fig4Result{Service: svcName, Model: model, PAAEByLoad: map[float64]float64{}}
	// PAAE is computed on the power the operator observes (idle
	// baseline + per-service dynamic power), as in Fig. 4.
	perLoad := map[float64][2][]float64{} // load → (pred, truth)
	var allPred, allTruth []float64
	for _, s := range samples {
		pred := model.Estimate(s.LoadFrac, s.Cores, s.FreqGHz) + model.IdleW
		truth := s.DynamicW + model.IdleW
		pair := perLoad[s.OfferedFrac]
		pair[0] = append(pair[0], pred)
		pair[1] = append(pair[1], truth)
		perLoad[s.OfferedFrac] = pair
		allPred = append(allPred, pred)
		allTruth = append(allTruth, truth)
	}
	for load, pair := range perLoad {
		res.PAAEByLoad[load] = stats.PAAE(pair[0], pair[1], 0.5)
	}
	res.PAAE = stats.PAAE(allPred, allTruth, 0.5)
	return res
}

// String renders the per-load PAAE bars of Fig. 4.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.4 %s power model: κ=%.2f σ=%.2f ω²=%.2f (MSE %.2f W², R²=%.3f)\n",
		r.Service, r.Model.Kappa, r.Model.Sigma, r.Model.Omega*r.Model.Omega, r.Model.MSE, r.Model.R2)
	for _, load := range []float64{0.2, 0.5, 0.8} {
		if paae, ok := r.PAAEByLoad[load]; ok {
			fmt.Fprintf(&b, "  load %.0f%%: PAAE %.2f%%\n", load*100, paae)
		}
	}
	fmt.Fprintf(&b, "  overall PAAE %.2f%%\n", r.PAAE)
	return b.String()
}
