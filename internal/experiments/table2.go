package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
	"github.com/twig-sched/twig/internal/stats"
)

// Table2Row is one service's capacity characterisation.
type Table2Row struct {
	Service string
	// MaxLoadRPS is the measured saturation load: the paper's "increase
	// the incoming load step by step until the latency increases
	// exponentially", with the server pinned to all cores at the
	// highest DVFS setting.
	MaxLoadRPS float64
	// QoSTargetMs is the p99 target fixed at that operating point.
	QoSTargetMs float64
	// PaperMaxRPS and PaperQoSMs are Table II's values for reference.
	PaperMaxRPS float64
	PaperQoSMs  float64
}

// Table2Result reproduces Table II for the four Tailbench services.
type Table2Result struct {
	Rows []Table2Row
}

var paperTable2 = map[string][2]float64{
	"masstree": {2400, 1.39},
	"xapian":   {1000, 3.71},
	"moses":    {2800, 6.04},
	"img-dnn":  {1100, 5.07},
}

// Table2 measures each service's capacity knee by ramping load in 5%
// steps of the profiled maximum and detecting where p99 latency grows
// super-linearly (>2.5× the p99 at half load, the "exponential
// increase").
func Table2(secondsPerStep int, seed int64) Table2Result {
	var res Table2Result
	cfg := sim.DefaultConfig()
	for _, name := range service.TailbenchNames() {
		prof := service.MustLookup(name)
		row := Table2Row{
			Service:     name,
			PaperMaxRPS: paperTable2[name][0],
			PaperQoSMs:  paperTable2[name][1],
		}

		var baseP99 float64
		maxFrac := 0.0
		for frac := 0.3; frac <= 1.45; frac += 0.05 {
			srv := sim.NewServer(cfg, []sim.ServiceSpec{{Profile: prof, Seed: seed}})
			asg := sim.Assignment{
				PerService: []sim.Allocation{{Cores: srv.ManagedCores(), FreqGHz: platform.MaxFreqGHz}},
			}
			var lat []float64
			for t := 0; t < secondsPerStep; t++ {
				r := srv.MustStep(asg, []float64{frac * prof.MaxLoadRPS})
				if t >= secondsPerStep/3 {
					lat = append(lat, r.Services[0].P99Ms)
				}
			}
			p99 := stats.Percentile(lat, 50)
			if frac <= 0.5 {
				baseP99 = p99
				maxFrac = frac
				continue
			}
			if p99 > 2.5*baseP99*frac/0.5 {
				break
			}
			maxFrac = frac
		}
		row.MaxLoadRPS = maxFrac * prof.MaxLoadRPS
		row.QoSTargetMs = sim.CalibrateQoSTarget(prof, cfg, 3*secondsPerStep, seed)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders a Table II analogue with the paper's values alongside.
func (r Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table II: service capacities (measured on the simulated platform vs paper)\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s %14s %14s\n", "Service", "max RPS", "QoS (ms)", "paper RPS", "paper QoS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %14.0f %14.2f %14.0f %14.2f\n",
			row.Service, row.MaxLoadRPS, row.QoSTargetMs, row.PaperMaxRPS, row.PaperQoSMs)
	}
	return b.String()
}
