package experiments

import (
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
)

// LoopState is the runner-side state a crash-consistent checkpoint
// carries alongside the server's and controller's own sections: the next
// interval to execute, the observation pending for that interval's
// Decide, the last assignment the simulator accepted, and the tracker's
// queue memory. Together with those sections it pins down everything the
// remainder of a run depends on — restoring all of them makes the
// resumed trajectory bit-identical to the uninterrupted one.
type LoopState struct {
	Next      int
	Obs       ctrl.Observation
	LastValid sim.Assignment
	Tracker   *ctrl.ObservationTracker
}

// NewLoopState returns the loop state of a run that has not started.
func NewLoopState() *LoopState {
	return &LoopState{Tracker: &ctrl.ObservationTracker{}}
}

// CheckpointName implements checkpoint.Checkpointable.
func (l *LoopState) CheckpointName() string { return "run-loop" }

// EncodeState implements checkpoint.Checkpointable.
func (l *LoopState) EncodeState(e *checkpoint.Encoder) {
	e.Int(l.Next)
	ctrl.EncodeObservation(e, l.Obs)
	sim.EncodeAssignment(e, l.LastValid)
	l.Tracker.EncodeState(e)
}

// DecodeState implements checkpoint.Checkpointable.
func (l *LoopState) DecodeState(d *checkpoint.Decoder) error {
	l.Next = d.Int()
	obs, err := ctrl.DecodeObservation(d)
	if err != nil {
		return err
	}
	l.Obs = obs
	asg, err := sim.DecodeAssignment(d)
	if err != nil {
		return err
	}
	l.LastValid = asg
	return l.Tracker.DecodeState(d)
}

// Configure points cfg at this loop state: the run starts at l.Next with
// l's tracker, pending observation and last valid assignment. Call it on
// a restored LoopState before Run; a fresh LoopState configures a run
// from second zero (only the tracker is shared, so AfterInterval
// checkpoints see its live state).
func (l *LoopState) Configure(cfg *RunConfig) {
	cfg.StartSecond = l.Next
	cfg.Tracker = l.Tracker
	if l.Next > 0 {
		cfg.StartObs = &l.Obs
		cfg.LastValid = &l.LastValid
	}
}
