package experiments

import (
	"sync"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

var (
	pairMu    sync.Mutex
	pairCache = map[[2]string]float64{}
)

// PairMaxFraction finds the largest common fraction of each service's
// solo maximum load at which the two colocated services both meet their
// QoS targets under an even static split — the paper's offline sweep
// ("we do an offline sweep of all service combinations in steps of 10%
// load increments"). Colocated services typically top out around 40–60%
// of their solo maxima, as the paper observes.
func PairMaxFraction(a, b string) float64 {
	pairMu.Lock()
	defer pairMu.Unlock()
	key := [2]string{a, b}
	if v, ok := pairCache[key]; ok {
		return v
	}
	best := 0.1
	for f := 0.1; f <= 1.001; f += 0.1 {
		if pairFeasible(a, b, f) {
			best = f
		} else {
			break
		}
	}
	pairCache[key] = best
	return best
}

// pairFeasible runs a short static colocation at fraction f of each solo
// maximum and checks that both services hold ≥95% QoS guarantee.
func pairFeasible(a, b string, f float64) bool {
	srv := NewServer(9000, a, b)
	static := baselines.NewStatic(srv.ManagedCores(), 2)
	sum := Run(RunConfig{
		Server:     srv,
		Controller: static,
		Patterns: []loadgen.Pattern{
			loadgen.Fixed(f * service.MustLookup(a).MaxLoadRPS),
			loadgen.Fixed(f * service.MustLookup(b).MaxLoadRPS),
		},
		Seconds:      90,
		SummaryFromS: 30,
	})
	return sum.QoSGuarantee[0] >= 0.95 && sum.QoSGuarantee[1] >= 0.95
}

// ServicePairs enumerates the NC2 Tailbench pairs of the colocation
// evaluation, in a stable order.
func ServicePairs() [][2]string {
	names := service.TailbenchNames()
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, [2]string{names[i], names[j]})
		}
	}
	return out
}

// interface check: baselines satisfy ctrl.Controller.
var _ ctrl.Controller = (*baselines.Static)(nil)
var _ ctrl.Controller = (*baselines.Hipster)(nil)
var _ ctrl.Controller = (*baselines.Heracles)(nil)
var _ ctrl.Controller = (*baselines.Parties)(nil)
