package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig8Target is one target service's with/without-transfer comparison.
type Fig8Target struct {
	Service string
	// Scratch and Transfer are per-bucket QoS-guarantee curves.
	Scratch  []float64
	Transfer []float64
	// BucketsTo80 counts buckets until the curve holds ≥80% QoS
	// (−1 = never). Transfer learning should cut this by ~1/3.
	ScratchTo80  int
	TransferTo80 int
	// MeanTardiness over the final window, with transfer (the paper
	// shows transfer reaches similar tardiness as learning from
	// scratch, i.e. it still minimises energy).
	ScratchTardiness  float64
	TransferTardiness float64
}

// Fig8Result reproduces Fig. 8: Twig-S transfer learning. The network is
// trained on Masstree, then its weights seed managers for Moses, Img-dnn
// and Xapian (each at 50% load) with the output layers re-initialised.
type Fig8Result struct {
	Donor   string
	BucketS int
	Targets []Fig8Target
}

// Fig8 runs the transfer-learning comparison.
func Fig8(sc Scale, seed int64) Fig8Result {
	const donor = "masstree"
	const lf = 0.5

	// Train the donor.
	donorSrv := NewServer(seed, donor)
	donorMgr := NewTwig(donorSrv, sc, seed, donor)
	Run(RunConfig{
		Server:       donorSrv,
		Controller:   donorMgr,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(lf * service.MustLookup(donor).MaxLoadRPS)},
		Seconds:      sc.LearnS,
		SummaryFromS: sc.LearnS - 1,
	})
	var weights bytes.Buffer
	if err := donorMgr.Save(&weights); err != nil {
		panic(err)
	}
	saved := weights.Bytes()

	total := sc.LearnS + sc.SummaryS
	bucket := total / 12
	res := Fig8Result{Donor: donor, BucketS: bucket}
	for _, target := range []string{"moses", "img-dnn", "xapian"} {
		tt := Fig8Target{Service: target}
		load := lf * service.MustLookup(target).MaxLoadRPS

		runCurve := func(mgr *core.Manager, srv *sim.Server) ([]float64, int, float64) {
			met := []int{}
			count := []int{}
			sum := Run(RunConfig{
				Server:       srv,
				Controller:   mgr,
				Patterns:     []loadgen.Pattern{loadgen.Fixed(load)},
				Seconds:      total,
				SummaryFromS: sc.LearnS,
				Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
					bi := t / bucket
					for len(met) <= bi {
						met = append(met, 0)
						count = append(count, 0)
					}
					count[bi]++
					if r.Services[0].P99Ms <= r.Services[0].QoSTargetMs {
						met[bi]++
					}
				},
			})
			curve := make([]float64, len(met))
			to80 := -1
			for i := range met {
				curve[i] = float64(met[i]) / float64(count[i])
				if to80 < 0 && curve[i] >= 0.8 {
					to80 = i
				}
			}
			return curve, to80, sum.MeanTardiness[0]
		}

		// From scratch.
		scratchSrv := NewServer(seed+10, target)
		scratch := NewTwig(scratchSrv, sc, seed+1, target)
		tt.Scratch, tt.ScratchTo80, tt.ScratchTardiness = runCurve(scratch, scratchSrv)

		// With transfer: load donor weights, re-init the output layers,
		// restart ε at the mid point ("retrain for a short interval").
		xferSrv := NewServer(seed+10, target)
		xfer := NewTwig(xferSrv, sc, seed+2, target)
		if err := xfer.Load(bytes.NewReader(saved)); err != nil {
			panic(err)
		}
		xfer.Transfer(sc.Epsilon.MidStep)
		tt.Transfer, tt.TransferTo80, tt.TransferTardiness = runCurve(xfer, xferSrv)

		res.Targets = append(res.Targets, tt)
	}
	return res
}

// String renders the curves.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.8 Twig-S transfer learning from %s (buckets of %d s)\n", r.Donor, r.BucketS)
	for _, t := range r.Targets {
		fmt.Fprintf(&b, "  %-8s scratch :", t.Service)
		for _, v := range t.Scratch {
			fmt.Fprintf(&b, " %3.0f%%", v*100)
		}
		fmt.Fprintf(&b, "  (≥80%% at %d, tardiness %.2f)\n", t.ScratchTo80, t.ScratchTardiness)
		fmt.Fprintf(&b, "  %-8s transfer:", t.Service)
		for _, v := range t.Transfer {
			fmt.Fprintf(&b, " %3.0f%%", v*100)
		}
		fmt.Fprintf(&b, "  (≥80%% at %d, tardiness %.2f)\n", t.TransferTo80, t.TransferTardiness)
	}
	return b.String()
}
