package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Fig7Result reproduces Fig. 7: the QoS guarantee over time (learning
// curve) of Twig-S and Hipster on Masstree, bucketed into windows (the
// paper uses 500 s buckets over 10 000 s with ε annealed to 0.1 by
// 5000 s).
type Fig7Result struct {
	Service string
	BucketS int
	// Curves maps manager name to its per-bucket QoS guarantee.
	Curves map[string][]float64
	// CrossedAt80 maps manager to the first bucket index whose QoS
	// guarantee exceeds 80% (Twig should get there first).
	CrossedAt80 map[string]int
}

// Fig7 runs the learning-time comparison.
func Fig7(sc Scale, seed int64) Fig7Result {
	const svcName = "masstree"
	const lf = 0.5
	prof := service.MustLookup(svcName)
	total := sc.LearnS + sc.SummaryS
	bucket := total / 12
	if bucket < 1 {
		bucket = 1
	}
	res := Fig7Result{
		Service:     svcName,
		BucketS:     bucket,
		Curves:      map[string][]float64{},
		CrossedAt80: map[string]int{},
	}
	managers := []string{"hipster", "twig-s"}
	curves := make([][]float64, len(managers))
	crossedAt := make([]int, len(managers))
	QoSTarget(svcName)
	forEachCell(len(managers), func(mi int) {
		mgr := managers[mi]
		srv := NewServer(seed, svcName)
		c := newSingleManager(mgr, srv, sc, seed, svcName)
		met := make([]int, 0, total/bucket+1)
		count := make([]int, 0, total/bucket+1)
		Run(RunConfig{
			Server:       srv,
			Controller:   c,
			Patterns:     []loadgen.Pattern{loadgen.Fixed(lf * prof.MaxLoadRPS)},
			Seconds:      total,
			SummaryFromS: sc.LearnS,
			Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
				bi := t / bucket
				for len(met) <= bi {
					met = append(met, 0)
					count = append(count, 0)
				}
				count[bi]++
				sv := r.Services[0]
				if sv.P99Ms <= sv.QoSTargetMs {
					met[bi]++
				}
			},
		})
		curve := make([]float64, len(met))
		crossed := -1
		for i := range met {
			curve[i] = float64(met[i]) / float64(count[i])
			if crossed < 0 && curve[i] >= 0.8 {
				crossed = i
			}
		}
		curves[mi] = curve
		crossedAt[mi] = crossed
	})
	for mi, mgr := range managers {
		res.Curves[mgr] = curves[mi]
		res.CrossedAt80[mgr] = crossedAt[mi]
	}
	return res
}

// String renders the two learning curves.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.7 learning curves on %s (buckets of %d s)\n", r.Service, r.BucketS)
	for _, mgr := range []string{"hipster", "twig-s"} {
		fmt.Fprintf(&b, "  %-8s:", mgr)
		for _, v := range r.Curves[mgr] {
			fmt.Fprintf(&b, " %3.0f%%", v*100)
		}
		fmt.Fprintf(&b, "   (≥80%% at bucket %d)\n", r.CrossedAt80[mgr])
	}
	return b.String()
}
