package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/baselines"
	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/scenario"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/service"
)

// ScenCell is one (scenario world, manager) run of the cross-scenario
// comparison.
type ScenCell struct {
	Scenario string
	World    string
	Manager  string
	// MeanQoS and MinQoS summarise the per-service QoS guarantees over
	// the evaluation window.
	MeanQoS float64
	MinQoS  float64
	EnergyJ float64
	// AvgPowerW is the mean managed-socket power over the window —
	// comparable within a world, not across SKUs.
	AvgPowerW float64
	// Migrations counts core-set changes (the oscillation metric).
	Migrations   int
	DecidePanics int
	StepErrors   int
}

// FigScenResult is the full sweep: every world of every scenario preset
// under every compared manager.
type FigScenResult struct {
	Scale     string
	Scenarios []string
	Cells     []ScenCell
}

// figScenManagers enumerates the compared managers.
var figScenManagers = []string{"twig-c", "parties", "static"}

// ScenQoSTarget returns the p99 target for one service of a scenario
// world. Targets are application-level SLOs — the Table II calibration
// on the reference platform — and deliberately identical across tiers:
// a WAN-distant tier's latency tax eats into the same budget rather
// than relaxing it, and a capped edge SKU must meet the same contract
// with less silicon. That asymmetry is what the scenario comparison
// measures; calibrating per tier would define it away.
func ScenQoSTarget(w scenario.World, name string) float64 {
	return QoSTarget(name)
}

// scenWorld builds the simulated node for one world: its class SKU and
// latency tax, SLO targets, and the world's own generated traces as
// load patterns.
func scenWorld(w scenario.World, seed int64) *sim.Server {
	cfg := w.SimConfig(seed)
	specs := w.ServiceSpecs(seed, func(name string) float64 { return ScenQoSTarget(w, name) })
	return sim.NewServer(cfg, specs)
}

// scenManager builds one compared manager for a world's server.
func scenManager(manager string, srv *sim.Server, w scenario.World, sc Scale, seed int64) ctrl.Controller {
	switch manager {
	case "twig-c":
		return newScenTwig(srv, w, sc, seed)
	case "parties":
		return baselines.NewParties(baselines.DefaultPartiesConfig(), srv.ManagedCores(), len(w.Services))
	case "static":
		return baselines.NewStatic(srv.ManagedCores(), len(w.Services))
	}
	panic("experiments: unknown scenario manager " + manager)
}

// newScenTwig is NewTwig against a scenario world's server: same SLO
// targets (they must match what the world's server reports or tardiness
// would be computed against the wrong bar), but NumCores/MaxPowerW
// taken from the world's SKU. The power models stay the
// reference-platform fits — the Eq. 2 shape transfers across SKUs and
// only steers the reward.
func newScenTwig(srv *sim.Server, w scenario.World, sc Scale, seed int64) *core.Manager {
	services := make([]core.ServiceConfig, len(w.Services))
	for i, n := range w.Services {
		services[i] = core.ServiceConfig{
			Name:        n,
			QoSTargetMs: ScenQoSTarget(w, n),
			MaxLoadRPS:  service.MustLookup(n).MaxLoadRPS,
			Power:       PowerModelFor(n),
		}
	}
	cfg := core.Config{
		Services:  services,
		NumCores:  len(srv.ManagedCores()),
		MaxPowerW: srv.MaxPowerW(),
		Eta:       5,
		Reward:    core.DefaultRewardConfig(),
		Agent: bdq.AgentConfig{
			Spec: bdq.Spec{
				SharedHidden: sc.SharedHidden,
				BranchHidden: sc.BranchHidden,
				Dropout:      sc.Dropout,
			},
			Gamma:          sc.Gamma,
			TrainPerStep:   sc.TrainPerStep,
			BatchSize:      sc.BatchSize,
			TargetSync:     sc.TargetSync,
			PERAnnealSteps: sc.PERAnneal,
			Epsilon:        sc.Epsilon,
			UsePER:         true,
			Seed:           seed,
		},
	}
	return core.NewManager(cfg, srv.ManagedCores())
}

// ScenCellRun executes one cell: one manager driving one world for the
// scale's learning + evaluation window under the world's traces.
func ScenCellRun(sc Scale, seed int64, w scenario.World, manager string) ScenCell {
	srv := scenWorld(w, seed)
	c := scenManager(manager, srv, w, sc, seed)
	sum := Run(RunConfig{
		Server:       srv,
		Controller:   c,
		Patterns:     w.Patterns(),
		Seconds:      sc.LearnS + sc.SummaryS,
		SummaryFromS: sc.LearnS,
	})
	cell := ScenCell{
		Scenario:     w.Scenario,
		World:        w.Name,
		Manager:      manager,
		MinQoS:       1,
		EnergyJ:      sum.EnergyJ,
		AvgPowerW:    sum.AvgPowerW,
		Migrations:   sum.Migrations,
		DecidePanics: sum.DecidePanics,
		StepErrors:   sum.StepErrors,
	}
	for _, q := range sum.QoSGuarantee {
		cell.MeanQoS += q
		if q < cell.MinQoS {
			cell.MinQoS = q
		}
	}
	cell.MeanQoS /= float64(len(sum.QoSGuarantee))
	return cell
}

// FigScen sweeps every built-in scenario preset: each world of each
// preset is driven by Twig-C, PARTIES and static. Deterministic for a
// given (scale, seed) — reruns render byte-identically.
func FigScen(sc Scale, seed int64) FigScenResult {
	return figScen(sc, seed, scenario.Names())
}

func figScen(sc Scale, seed int64, names []string) FigScenResult {
	res := FigScenResult{Scale: sc.Name, Scenarios: names}
	type cellSpec struct {
		w       scenario.World
		manager string
		seed    int64
	}
	var cells []cellSpec
	for _, name := range names {
		worlds, err := scenario.MustNamed(name).Worlds(seed)
		if err != nil {
			panic(err)
		}
		for _, w := range worlds {
			for mi, mgr := range figScenManagers {
				cells = append(cells, cellSpec{
					w: w, manager: mgr,
					seed: seed + int64(w.NodeIndex)*10007 + int64(mi)*97,
				})
			}
		}
	}
	res.Cells = make([]ScenCell, len(cells))
	forEachCell(len(cells), func(i int) {
		res.Cells[i] = ScenCellRun(sc, cells[i].seed, cells[i].w, cells[i].manager)
	})
	return res
}

// FigScenShort is the CI harness: the full preset sweep at a shrunken
// scale whose cells finish in seconds. Determinism is the point — the
// scenario-smoke job runs it twice and diffs the output.
func FigScenShort(seed int64) FigScenResult {
	return FigScen(ShortScale(), seed)
}

// ShortScale shrinks QuickScale to smoke-test size: tiny networks and a
// 200-interval run, preserving the mechanics rather than the learning
// outcome.
func ShortScale() Scale {
	sc := QuickScale()
	sc.Name = "short"
	sc.SharedHidden = []int{16, 12}
	sc.BranchHidden = 8
	sc.BatchSize = 16
	sc.Epsilon = bdq.EpsilonSchedule{Start: 1, Mid: 0.2, End: 0.05, MidStep: 60, EndStep: 120}
	sc.PERAnneal = 150
	sc.LearnS = 150
	sc.SummaryS = 50
	return sc
}

// String renders the sweep grouped by scenario and world.
func (r FigScenResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario sweep (%s scale): Twig-C vs baselines per workload family\n", r.Scale)
	for _, scen := range r.Scenarios {
		sp := scenario.MustNamed(scen)
		fmt.Fprintf(&b, "  scenario %-14s %s\n", scen, sp.Description)
		world := ""
		for _, c := range r.Cells {
			if c.Scenario != scen {
				continue
			}
			if c.World != world {
				world = c.World
				fmt.Fprintf(&b, "    %s\n", world)
			}
			fmt.Fprintf(&b, "      %-8s QoS mean %5.1f%% min %5.1f%%, energy %9.0f J, power %6.1f W, migrations %d",
				c.Manager, c.MeanQoS*100, c.MinQoS*100, c.EnergyJ, c.AvgPowerW, c.Migrations)
			if c.DecidePanics > 0 || c.StepErrors > 0 {
				fmt.Fprintf(&b, ", loop saves %d panics/%d rejects", c.DecidePanics, c.StepErrors)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
