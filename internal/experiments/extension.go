package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// ExtensionCATResult evaluates the cache-partitioning extension: the
// paper's memory-complexity example anticipates a third action dimension
// (Intel CAT way allocation) that its production servers could not
// enable. Here Twig-C manages Moses + Xapian — whose combined LLC
// footprints (34 + 20 MB) overflow the 45 MB cache — with and without
// the cache branch.
type ExtensionCATResult struct {
	// Without and With are the two-service QoS guarantees and average
	// power without and with CAT actions.
	WithoutQoS [2]float64
	WithQoS    [2]float64
	WithoutW   float64
	WithW      float64
}

// ExtensionCAT runs the comparison.
func ExtensionCAT(sc Scale, seed int64) ExtensionCATResult {
	frac := PairMaxFraction("moses", "xapian")
	loads := []loadgen.Pattern{
		loadgen.Fixed(0.6 * frac * service.MustLookup("moses").MaxLoadRPS),
		loadgen.Fixed(0.6 * frac * service.MustLookup("xapian").MaxLoadRPS),
	}
	run := func(manage bool) ([]float64, float64) {
		srv := NewServer(seed, "moses", "xapian")
		cfg := twigConfig(srv, sc, seed, "moses", "xapian")
		cfg.ManageCache = manage
		mgr := core.NewManager(cfg, srv.ManagedCores())
		sum := Run(RunConfig{
			Server:       srv,
			Controller:   mgr,
			Patterns:     loads,
			Seconds:      sc.LearnS + sc.SummaryS,
			SummaryFromS: sc.LearnS,
		})
		return sum.QoSGuarantee, sum.AvgPowerW
	}
	var res ExtensionCATResult
	q, w := run(false)
	res.WithoutQoS = [2]float64{q[0], q[1]}
	res.WithoutW = w
	q, w = run(true)
	res.WithQoS = [2]float64{q[0], q[1]}
	res.WithW = w
	return res
}

// String renders the comparison.
func (r ExtensionCATResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: Twig-C with a third (Intel CAT) action branch, moses+xapian\n")
	fmt.Fprintf(&b, "  without CAT: QoS [%.1f%% %.1f%%], power %.1f W\n",
		r.WithoutQoS[0]*100, r.WithoutQoS[1]*100, r.WithoutW)
	fmt.Fprintf(&b, "  with CAT   : QoS [%.1f%% %.1f%%], power %.1f W\n",
		r.WithQoS[0]*100, r.WithQoS[1]*100, r.WithW)
	return b.String()
}
