package experiments

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/cluster"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

// FleetFactory builds the per-node controller stack the chaos fleet
// runs: a full Twig manager sized to the node's current replica
// membership, with fitted power models and calibrated learning at the
// given scale. The manager is also the node's checkpointable component,
// so its learning state travels in warm snapshots and fleet
// checkpoints.
func FleetFactory(sc Scale) cluster.ControllerFactory {
	return func(srv *sim.Server, specs []cluster.ReplicaSpec, seed int64) (ctrl.Controller, []checkpoint.Checkpointable) {
		mgr := core.NewManager(fleetManagerConfig(sc, srv, specs, seed), srv.ManagedCores())
		return mgr, []checkpoint.Checkpointable{mgr}
	}
}

// PooledFleetFactory is FleetFactory with every node's agent attached
// to a shared AgentPool: same managers, same trajectories bit-for-bit,
// but action selection and TD-target inference across the whole fleet
// run as batched grouped-GEMM sweeps. The returned flush runs one fleet
// sweep; pass it as cluster.Config.Flush so the coordinator drives the
// PrepareDecide / flush / FinishDecide phases. Node rebuilds, drains
// and failovers release arena slots through ctrl.Closer.
func PooledFleetFactory(sc Scale) (cluster.ControllerFactory, func()) {
	pools := bdq.NewPools()
	factory := func(srv *sim.Server, specs []cluster.ReplicaSpec, seed int64) (ctrl.Controller, []checkpoint.Checkpointable) {
		mgr := core.NewManagerPooled(fleetManagerConfig(sc, srv, specs, seed), srv.ManagedCores(), pools)
		return mgr, []checkpoint.Checkpointable{mgr}
	}
	return factory, pools.FlushStep
}

// fleetManagerConfig sizes one node's Twig manager to its current
// replica membership at the given learning scale.
func fleetManagerConfig(sc Scale, srv *sim.Server, specs []cluster.ReplicaSpec, seed int64) core.Config {
	services := make([]core.ServiceConfig, len(specs))
	for i, sp := range specs {
		services[i] = core.ServiceConfig{
			Name:        sp.Service,
			QoSTargetMs: sp.QoSTargetMs,
			MaxLoadRPS:  service.MustLookup(sp.Service).MaxLoadRPS,
			Power:       PowerModelFor(sp.Service),
		}
	}
	return core.Config{
		Services:  services,
		NumCores:  len(srv.ManagedCores()),
		MaxPowerW: srv.MaxPowerW(),
		Eta:       5,
		Reward:    core.DefaultRewardConfig(),
		Agent: bdq.AgentConfig{
			Spec: bdq.Spec{
				SharedHidden: sc.SharedHidden,
				BranchHidden: sc.BranchHidden,
				Dropout:      sc.Dropout,
			},
			Gamma:          sc.Gamma,
			TrainPerStep:   sc.TrainPerStep,
			BatchSize:      sc.BatchSize,
			TargetSync:     sc.TargetSync,
			PERAnnealSteps: sc.PERAnneal,
			Epsilon:        sc.Epsilon,
			UsePER:         true,
			Seed:           seed,
		},
	}
}

// ChaosMix is the replica set every chaos cell admits at t=0: three LC
// replicas at distinct priorities plus two batch replicas, five
// replicas over six fleet slots so a single node outage forces the
// degradation policy to choose.
func ChaosMix() []cluster.ReplicaSpec {
	return []cluster.ReplicaSpec{
		{Service: "masstree", LoadFrac: 0.35, QoSTargetMs: QoSTarget("masstree"), Class: cluster.LC, Priority: 2},
		{Service: "xapian", LoadFrac: 0.35, QoSTargetMs: QoSTarget("xapian"), Class: cluster.LC, Priority: 1},
		{Service: "img-dnn", LoadFrac: 0.3, QoSTargetMs: QoSTarget("img-dnn"), Class: cluster.LC, Priority: 0},
		{Service: "moses", LoadFrac: 0.2, QoSTargetMs: QoSTarget("moses"), Class: cluster.Batch},
		{Service: "masstree", LoadFrac: 0.2, QoSTargetMs: QoSTarget("masstree"), Class: cluster.Batch, Priority: 1},
	}
}

// ChaosCell is one (scenario, placement policy) fleet run.
type ChaosCell struct {
	Scenario string
	Manager  string // "twig-fleet" or "static-pin"
	// MeanQoS and MinQoS summarise the per-replica QoS guarantees with
	// dark intervals counted as violations, so a policy that leaves
	// replicas dark cannot hide it.
	MeanQoS float64
	MinQoS  float64
	EnergyJ float64
	// DarkIntervals sums every interval any replica spent unserved.
	DarkIntervals  int
	Migrations     int
	WarmRestores   int
	ColdRestores   int
	DeadLetters    int
	ShedIntervals  int
	LeaseExpiries  int
	PlacementFails int
	EventsInjected int
	// Invariants lists end-of-sweep invariant violations (empty = clean).
	Invariants []string
}

// FigChaosResult is the fleet robustness comparison: the Twig fleet
// coordinator (warm failover, class-aware shedding) against static
// partitioning (replica i pinned to node i mod N) under graded
// whole-node fault scenarios.
type FigChaosResult struct {
	Scenarios []string
	Nodes     int
	Seconds   int
	Cells     []ChaosCell
}

// FigChaos runs the chaos sweep at both placement policies under every
// named cluster scenario. Runs are deterministic: the same (scale,
// seed) reruns byte-identically, which TestFigChaos pins.
func FigChaos(sc Scale, seed int64) FigChaosResult {
	seconds := 400
	if sc.Name == "paper" {
		seconds = 1500
	}
	return FigChaosN(sc, seed, 3, seconds)
}

// FigChaosN is FigChaos with an explicit fleet size and sweep length.
func FigChaosN(sc Scale, seed int64, nodes, seconds int) FigChaosResult {
	scenarios := []string{"none", "nodecrash", "partition", "chaos"}
	res := FigChaosResult{Scenarios: scenarios, Nodes: nodes, Seconds: seconds}
	for _, scen := range scenarios {
		cs := faults.MustNamedCluster(scen)
		adaptClusterScenario(&cs, seconds)
		for _, pin := range []bool{false, true} {
			res.Cells = append(res.Cells, ChaosCellRun(sc, seed, cs, pin, nodes, seconds))
		}
	}
	return res
}

// adaptClusterScenario rescales outage periods so short sweeps still see
// several whole-node episodes, and ends scheduling early enough that
// every placement can settle before the invariant check.
func adaptClusterScenario(cs *faults.ClusterScenario, totalS int) {
	shrink := func(period *int) {
		if *period > 0 && totalS < 2**period {
			*period = totalS / 4
			if *period < 20 {
				*period = 20
			}
		}
	}
	shrink(&cs.CrashPeriodS)
	shrink(&cs.PartitionPeriodS)
	if cs.CrashOfflineS > cs.CrashPeriodS/2 && cs.CrashPeriodS > 0 {
		cs.CrashOfflineS = cs.CrashPeriodS / 3
	}
	settle := totalS / 5
	if settle < 60 {
		settle = 60
	}
	if cs.QuietAfterS == 0 || cs.QuietAfterS > totalS-settle {
		cs.QuietAfterS = totalS - settle
	}
}

// ChaosCellRun executes one chaos cell: a fleet of Twig nodes under one
// scenario, with the coordinator's adaptive placement or the pinned
// static baseline.
func ChaosCellRun(sc Scale, seed int64, cs faults.ClusterScenario, pin bool, nodes, seconds int) ChaosCell {
	factory, flush := PooledFleetFactory(sc)
	c, err := cluster.New(cluster.Config{
		Nodes:        nodes,
		NodeCapacity: 2,
		Seed:         seed,
		Scenario:     cs,
		// A real retry budget: with 0 the first failed attempt
		// dead-letters, which would let the pinned baseline freeze its
		// dark-interval accounting instead of waiting out the outage.
		MaxRetries:  4,
		PinReplicas: pin,
		Factory:     factory,
		Flush:       flush,
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	for _, spec := range ChaosMix() {
		if _, err := c.Admit(spec); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	for t := 0; t < seconds; t++ {
		c.Step()
	}
	sum := c.Summary()

	manager := "twig-fleet"
	if pin {
		manager = "static-pin"
	}
	cell := ChaosCell{
		Scenario:       cs.Name,
		Manager:        manager,
		MinQoS:         1,
		EnergyJ:        sum.EnergyJ,
		Migrations:     sum.Migrations,
		WarmRestores:   sum.WarmRestores,
		ColdRestores:   sum.ColdRestores,
		DeadLetters:    sum.DeadLetters,
		ShedIntervals:  sum.ShedIntervals,
		LeaseExpiries:  sum.LeaseExpiries,
		PlacementFails: sum.PlacementFails,
		EventsInjected: sum.EventsInjected,
		Invariants:     ChaosInvariantErrors(sum),
	}
	for _, r := range sum.Replicas {
		cell.MeanQoS += r.QoS
		if r.QoS < cell.MinQoS {
			cell.MinQoS = r.QoS
		}
		cell.DarkIntervals += r.DarkIntervals
	}
	if len(sum.Replicas) > 0 {
		cell.MeanQoS /= float64(len(sum.Replicas))
	}
	return cell
}

// ChaosInvariantErrors checks the end-of-sweep fleet invariants the
// chaos harness guarantees after the scenario's quiet window: every
// replica is either running on a node whose lease is valid (and listed
// in that node's routing table) or terminally dead-lettered with a
// reason; no replica is still shed; and every replica's carried
// accounting balances — one tick per interval it existed, violations
// bounded by dark intervals below and total ticks above.
func ChaosInvariantErrors(sum cluster.Summary) []string {
	var errs []string
	nodeByID := map[int]cluster.NodeView{}
	for _, n := range sum.Nodes {
		nodeByID[n.ID] = n
	}
	for _, r := range sum.Replicas {
		tag := fmt.Sprintf("replica %d (%s)", r.ID, r.Service)
		switch r.State {
		case "running":
			n, ok := nodeByID[r.Node]
			if !ok || n.State != "up" || !n.Lease {
				errs = append(errs, fmt.Sprintf("%s running on unhealthy node %d", tag, r.Node))
				break
			}
			listed := false
			for _, id := range n.Replicas {
				if id == r.ID {
					listed = true
				}
			}
			if !listed {
				errs = append(errs, fmt.Sprintf("%s not in node %d routing table", tag, r.Node))
			}
		case "dead-letter":
			if r.Reason == "" {
				errs = append(errs, tag+" dead-lettered without a reason")
			}
		default:
			errs = append(errs, fmt.Sprintf("%s unresolved at sweep end: %s", tag, r.State))
		}
		if r.Shed {
			errs = append(errs, tag+" still shed after the quiet window")
		}
		ticks := r.Intervals + r.DarkIntervals
		if r.State != "dead-letter" && ticks != sum.Time {
			errs = append(errs, fmt.Sprintf("%s accounting leak: %d ticks over %d intervals", tag, ticks, sum.Time))
		}
		if r.Violations < r.DarkIntervals || r.Violations > ticks {
			errs = append(errs, fmt.Sprintf("%s violations %d outside [%d,%d]", tag, r.Violations, r.DarkIntervals, ticks))
		}
	}
	return errs
}

// String renders the comparison grouped by scenario.
func (r FigChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos fleet: %d nodes, %d replicas, %d s sweeps, Twig fleet vs static partitioning\n",
		r.Nodes, len(ChaosMix()), r.Seconds)
	for _, scen := range r.Scenarios {
		fmt.Fprintf(&b, "  scenario %-10s\n", scen)
		for _, c := range r.Cells {
			if c.Scenario != scen {
				continue
			}
			fmt.Fprintf(&b, "    %-11s QoS mean %5.1f%% min %5.1f%%, dark %4d s, energy %8.0f J",
				c.Manager, c.MeanQoS*100, c.MinQoS*100, c.DarkIntervals, c.EnergyJ)
			if c.EventsInjected > 0 {
				fmt.Fprintf(&b, ", events %d, expiries %d, migrations %d (%d warm), shed %d s",
					c.EventsInjected, c.LeaseExpiries, c.Migrations, c.WarmRestores, c.ShedIntervals)
			}
			if c.DeadLetters > 0 {
				fmt.Fprintf(&b, ", dead-letters %d", c.DeadLetters)
			}
			if len(c.Invariants) > 0 {
				fmt.Fprintf(&b, ", INVARIANT VIOLATIONS %v", c.Invariants)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
