package baselines

import (
	"testing"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

func cores18() []int {
	out := make([]int, 18)
	for i := range out {
		out[i] = i
	}
	return out
}

func obs(p99s ...float64) ctrl.Observation {
	o := ctrl.Observation{PowerW: 60}
	for _, p := range p99s {
		o.Services = append(o.Services, ctrl.ServiceObs{
			P99Ms: p, QoSTargetMs: 10, MeasuredRPS: 500, MaxLoadRPS: 1000,
		})
	}
	return o
}

func TestStaticSingle(t *testing.T) {
	s := NewStatic(cores18(), 1)
	if s.Name() != "static" {
		t.Fatal("name")
	}
	asg := s.Decide(obs(5))
	if len(asg.PerService[0].Cores) != 18 || asg.PerService[0].FreqGHz != platform.MaxFreqGHz {
		t.Fatalf("static single = %+v", asg.PerService[0])
	}
	if asg.IdleFreqGHz != platform.MaxFreqGHz {
		t.Fatal("static leaves all cores at max DVFS")
	}
}

func TestStaticEvenSplit(t *testing.T) {
	s := NewStatic(cores18(), 2)
	asg := s.Decide(obs(5, 5))
	if len(asg.PerService[0].Cores) != 9 || len(asg.PerService[1].Cores) != 9 {
		t.Fatalf("split = %d/%d", len(asg.PerService[0].Cores), len(asg.PerService[1].Cores))
	}
	// Disjoint.
	seen := map[int]bool{}
	for _, a := range asg.PerService {
		for _, c := range a.Cores {
			if seen[c] {
				t.Fatal("static split must be disjoint")
			}
			seen[c] = true
		}
	}
}

func TestStaticValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStatic(nil, 1)
}

func TestHipsterActionLadderOrdered(t *testing.T) {
	h := NewHipster(DefaultHipsterConfig(), cores18())
	if h.Name() != "hipster" {
		t.Fatal("name")
	}
	for i := 1; i < len(h.actions); i++ {
		if h.actions[i].powerProxy() < h.actions[i-1].powerProxy() {
			t.Fatal("ladder must be sorted by power")
		}
	}
	if len(h.actions) != 18*platform.NumFreqSteps {
		t.Fatalf("actions = %d", len(h.actions))
	}
	// Paper: 25 buckets at 4%, 162 configs on 18 cores × 9 states.
	if h.QTableEntries() != 26*162 {
		t.Fatalf("QTableEntries = %d", h.QTableEntries())
	}
}

func TestHipsterHeuristicGrowsOnPressure(t *testing.T) {
	cfg := DefaultHipsterConfig()
	cfg.LearnPhaseS = 1000
	h := NewHipster(cfg, cores18())
	// Starts generous; heavy slack lets it walk down the ladder.
	before := h.cur
	for i := 0; i < 50; i++ {
		h.Decide(obs(1)) // tardiness 0.1 → reclaim
	}
	if h.cur >= before {
		t.Fatal("slack must walk the ladder down")
	}
	down := h.cur
	// Violation jumps it back up aggressively.
	h.Decide(obs(50))
	if h.cur <= down {
		t.Fatal("violation must jump the ladder up")
	}
}

func TestHipsterAssignmentShape(t *testing.T) {
	h := NewHipster(DefaultHipsterConfig(), cores18())
	asg := h.Decide(obs(5))
	if len(asg.PerService) != 1 {
		t.Fatal("hipster manages one service")
	}
	a := asg.PerService[0]
	if len(a.Cores) < 1 || len(a.Cores) > 18 {
		t.Fatalf("cores = %v", a.Cores)
	}
	if asg.IdleFreqGHz != platform.MinFreqGHz {
		t.Fatal("idle DVFS")
	}
}

func TestHipsterBucketOf(t *testing.T) {
	h := NewHipster(DefaultHipsterConfig(), cores18())
	if b := h.bucketOf(ctrl.ServiceObs{MeasuredRPS: 480, MaxLoadRPS: 1000}); b != 12 {
		t.Fatalf("bucket(48%%) = %d", b)
	}
	if b := h.bucketOf(ctrl.ServiceObs{MeasuredRPS: 5000, MaxLoadRPS: 1000}); b != h.numBuckets()-1 {
		t.Fatal("overload clamps to last bucket")
	}
	if b := h.bucketOf(ctrl.ServiceObs{}); b != 0 {
		t.Fatal("zero max load")
	}
}

func TestHipsterQLearningUpdates(t *testing.T) {
	cfg := DefaultHipsterConfig()
	cfg.LearnPhaseS = 5
	cfg.Epsilon = 0
	h := NewHipster(cfg, cores18())
	for i := 0; i < 30; i++ {
		h.Decide(obs(5))
	}
	visited := 0
	for b := range h.visited {
		for a := range h.visited[b] {
			if h.visited[b][a] {
				visited++
			}
		}
	}
	if visited == 0 {
		t.Fatal("Q-table never updated")
	}
}

func TestHeraclesGrowsOnLatencyPressure(t *testing.T) {
	cfg := DefaultHeraclesConfig(120)
	h := NewHeracles(cfg, cores18())
	// Drain down first with comfortable latency.
	for i := 0; i < 40; i++ {
		h.Decide(heraclesObs(2, 0.1, 60))
	}
	low := h.allocated
	if low >= 18 {
		t.Fatal("comfortable latency must release cores")
	}
	// Pressure at 85% of target grows the allocation.
	before := h.allocated
	for i := 0; i < 10; i++ {
		h.Decide(heraclesObs(8.6, 0.1, 60))
	}
	if h.allocated <= before {
		t.Fatal("latency pressure must add cores")
	}
}

func heraclesObs(p99, llcMiss, powerW float64) ctrl.Observation {
	var s pmc.Sample
	s[pmc.LLCMisses] = llcMiss
	return ctrl.Observation{
		PowerW: powerW,
		Services: []ctrl.ServiceObs{{
			P99Ms: p99, QoSTargetMs: 10, MeasuredRPS: 300, MaxLoadRPS: 1000, NormPMCs: s,
		}},
	}
}

func TestHeraclesViolationLockout(t *testing.T) {
	cfg := DefaultHeraclesConfig(120)
	h := NewHeracles(cfg, cores18())
	// Shrink a bit first.
	for i := 0; i < 40; i++ {
		h.Decide(heraclesObs(2, 0.1, 60))
	}
	// A violation at a main-controller tick allocates everything...
	for h.step%cfg.MainPeriodS != 0 {
		h.Decide(heraclesObs(2, 0.1, 60))
	}
	asg := h.Decide(heraclesObs(50, 0.1, 60))
	if len(asg.PerService[0].Cores) != 18 {
		t.Fatalf("violation must trigger full allocation, got %d cores", len(asg.PerService[0].Cores))
	}
	// ... and holds it for the lockout period despite comfort.
	for i := 0; i < 100; i++ {
		asg = h.Decide(heraclesObs(1, 0.1, 60))
	}
	if len(asg.PerService[0].Cores) != 18 {
		t.Fatal("lockout must hold the full allocation")
	}
}

func TestHeraclesPowerController(t *testing.T) {
	cfg := DefaultHeraclesConfig(100)
	h := NewHeracles(cfg, cores18())
	// Power at the cap forces DVFS down.
	h.Decide(heraclesObs(8.6, 0.1, 95))
	h.Decide(heraclesObs(8.6, 0.1, 95))
	if h.freqStep >= platform.NumFreqSteps-1 {
		t.Fatal("power cap must lower DVFS")
	}
	// Comfortable power restores it.
	for i := 0; i < 40; i++ {
		h.Decide(heraclesObs(8.6, 0.1, 30))
	}
	if h.freqStep != platform.NumFreqSteps-1 {
		t.Fatalf("low power must restore DVFS, step=%d", h.freqStep)
	}
}

func TestHeraclesMemoryBandwidthGrowth(t *testing.T) {
	cfg := DefaultHeraclesConfig(120)
	h := NewHeracles(cfg, cores18())
	for i := 0; i < 20; i++ {
		h.Decide(heraclesObs(2, 0.1, 60))
	}
	before := h.allocated
	// A jump in LLC misses ("memory bandwidth increased") adds a core
	// even though latency is comfortable.
	h.Decide(heraclesObs(2, 0.5, 60))
	h.Decide(heraclesObs(2, 0.5, 60))
	if h.allocated <= before-2 {
		t.Fatalf("bandwidth growth should not keep shrinking: %d vs %d", h.allocated, before)
	}
}

func TestPartiesUpsizesWorstService(t *testing.T) {
	p := NewParties(DefaultPartiesConfig(), cores18(), 2)
	if p.Name() != "parties" {
		t.Fatal("name")
	}
	start := p.alloc[1]
	// Service 1 at the edge, service 0 comfortable; free a core first
	// by reclaiming from service 0.
	for i := 0; i < 30; i++ {
		p.Decide(obs(1, 9.6))
	}
	if p.alloc[1] <= start && p.freqStep[1] < platform.NumFreqSteps-1 {
		t.Fatalf("pressured service should have been upsized: %+v", p.alloc)
	}
	if p.Decisions() == 0 {
		t.Fatal("decisions counter")
	}
}

func TestPartiesReclaimsFromSlack(t *testing.T) {
	p := NewParties(DefaultPartiesConfig(), cores18(), 2)
	for i := 0; i < 60; i++ {
		p.Decide(obs(1, 1)) // everyone has huge slack
	}
	if p.alloc[0]+p.alloc[1] >= 18 && p.freqStep[0] == platform.NumFreqSteps-1 {
		t.Fatal("slack must lead to reclaiming")
	}
}

func TestPartiesRevertOnViolation(t *testing.T) {
	cfg := DefaultPartiesConfig()
	cfg.PeriodS = 1
	p := NewParties(cfg, cores18(), 1)
	// Reclaim once.
	p.Decide(obs(1))
	if !p.last.valid || p.last.delta != -1 {
		t.Fatalf("expected a reclaim, got %+v", p.last)
	}
	sv, res := p.last.svc, p.last.resource
	valBefore := p.resourceValue(sv, res)
	// Violation right after → revert and block.
	p.Decide(obs(50))
	if p.resourceValue(sv, res) != valBefore+1 {
		t.Fatal("violation must revert the reclaim")
	}
	if p.blocked[sv][res] <= p.step {
		t.Fatal("reverted resource must be blocked for a while")
	}
}

// resourceValue helps the revert test read the adjusted knob.
func (p *Parties) resourceValue(svc int, res partiesResource) int {
	if res == resCores {
		return p.alloc[svc]
	}
	return p.freqStep[svc]
}

func TestPartiesAssignmentContiguousDisjoint(t *testing.T) {
	p := NewParties(DefaultPartiesConfig(), cores18(), 3)
	asg := p.Decide(obs(5, 5, 5))
	seen := map[int]bool{}
	for _, a := range asg.PerService {
		for _, c := range a.Cores {
			if seen[c] {
				t.Fatal("overlapping cores")
			}
			seen[c] = true
		}
	}
	if asg.IdleFreqGHz != platform.MaxFreqGHz {
		t.Fatal("PARTIES leaves reclaimed cores hot for batch work")
	}
}

func TestPartiesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewParties(DefaultPartiesConfig(), cores18(), 0)
}
