package baselines

import (
	"math/rand"
	"sort"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// HipsterConfig carries the knobs Sec. V-A fixes for the comparison:
// bucket size 4% (25 load buckets), learning rate 0.6, discount 0.9.
type HipsterConfig struct {
	BucketPct    float64 // load bucket width in percent of max load
	LearnPhaseS  int     // heuristic-driven phase length in intervals
	LearningRate float64
	Discount     float64
	Epsilon      float64 // exploration after the learning phase
	Seed         int64
}

// DefaultHipsterConfig returns the settings used in the paper's
// evaluation (learning phase 7500 s).
func DefaultHipsterConfig() HipsterConfig {
	return HipsterConfig{
		BucketPct:    4,
		LearnPhaseS:  7500,
		LearningRate: 0.6,
		Discount:     0.9,
		Epsilon:      0.05,
	}
}

// hipsterAction is one mapping configuration (cores + DVFS).
type hipsterAction struct {
	cores int
	freq  float64
}

// powerProxy orders configurations by increasing power: the heuristic's
// "increasing order of power efficiency" ladder.
func (a hipsterAction) powerProxy() float64 {
	return float64(a.cores) * (0.45*a.freq*a.freq*a.freq + 0.7*a.freq)
}

// Hipster is the hybrid task manager of Nishtala et al. (HPCA'17): a
// heuristic state machine walks a power-ordered ladder of mapping
// configurations during the learning phase while feeding a tabular
// Q-learner whose state is the quantised load; afterwards the Q-table
// drives decisions ε-greedily, falling back to the heuristic for unseen
// states. It manages a single LC service.
type Hipster struct {
	cfg     HipsterConfig
	cores   []int
	actions []hipsterAction
	q       [][]float64
	visited [][]bool
	rng     *rand.Rand

	cur        int // ladder position (heuristic state)
	prevBucket int
	prevAction int
	havePrev   bool
	step       int
}

// NewHipster builds the controller over the managed cores.
func NewHipster(cfg HipsterConfig, managedCores []int) *Hipster {
	if cfg.BucketPct <= 0 {
		cfg.BucketPct = 4
	}
	cp := append([]int(nil), managedCores...)
	sort.Ints(cp)
	h := &Hipster{cfg: cfg, cores: cp, rng: rand.New(rand.NewSource(cfg.Seed))}
	for c := 1; c <= len(cp); c++ {
		for s := 0; s < platform.NumFreqSteps; s++ {
			h.actions = append(h.actions, hipsterAction{cores: c, freq: platform.FreqForStep(s)})
		}
	}
	sort.Slice(h.actions, func(i, j int) bool {
		return h.actions[i].powerProxy() < h.actions[j].powerProxy()
	})
	buckets := h.numBuckets()
	h.q = make([][]float64, buckets)
	h.visited = make([][]bool, buckets)
	for b := range h.q {
		h.q[b] = make([]float64, len(h.actions))
		h.visited[b] = make([]bool, len(h.actions))
	}
	h.cur = len(h.actions) - 1 // start at the most generous config
	return h
}

func (h *Hipster) numBuckets() int { return int(100/h.cfg.BucketPct) + 1 }

// Name implements ctrl.Controller.
func (h *Hipster) Name() string { return "hipster" }

// QTableEntries reports the table size, the memory-complexity metric.
func (h *Hipster) QTableEntries() int { return h.numBuckets() * len(h.actions) }

func (h *Hipster) bucketOf(s ctrl.ServiceObs) int {
	if s.MaxLoadRPS <= 0 {
		return 0
	}
	pct := 100 * s.MeasuredRPS / s.MaxLoadRPS
	b := int(pct / h.cfg.BucketPct)
	if b < 0 {
		b = 0
	}
	if b >= h.numBuckets() {
		b = h.numBuckets() - 1
	}
	return b
}

// reward mirrors Hipster's QoS-gated power reward: cheap configurations
// earn more when the target is met; violations earn a large penalty
// scaled by how bad they were.
func (h *Hipster) reward(s ctrl.ServiceObs, action int) float64 {
	if s.QoSMet() {
		// Normalised power rank: cheapest action → ~1, most expensive → ~0.
		return 1 - float64(action)/float64(len(h.actions)-1)
	}
	r := -5 * s.Tardiness()
	if r < -50 {
		r = -50
	}
	return r
}

// Decide implements ctrl.Controller for a single LC service.
func (h *Hipster) Decide(obs ctrl.Observation) sim.Assignment {
	s := obs.Services[0]
	bucket := h.bucketOf(s)

	// Q-update for the previous decision.
	if h.havePrev {
		r := h.reward(s, h.prevAction)
		best := maxFloat(h.q[bucket])
		old := h.q[h.prevBucket][h.prevAction]
		h.q[h.prevBucket][h.prevAction] = old + h.cfg.LearningRate*(r+h.cfg.Discount*best-old)
		h.visited[h.prevBucket][h.prevAction] = true
	}

	var action int
	switch {
	case h.step < h.cfg.LearnPhaseS:
		action = h.heuristicStep(s)
	case !s.QoSMet():
		// Safety net: on a violation fall back to the heuristic, which
		// jumps to a more generous configuration.
		action = h.heuristicStep(s)
	case h.rng.Float64() < h.cfg.Epsilon:
		action = h.rng.Intn(len(h.actions))
		h.cur = action
	default:
		// Exploit the Q-table, but only over configurations that have
		// been tried for this load bucket; unexplored entries would
		// otherwise win with their optimistic zero value.
		action = -1
		bestQ := 0.0
		for a, visited := range h.visited[bucket] {
			if visited && (action < 0 || h.q[bucket][a] > bestQ) {
				action, bestQ = a, h.q[bucket][a]
			}
		}
		if action < 0 {
			action = h.heuristicStep(s)
		} else {
			h.cur = action
		}
	}

	h.prevBucket, h.prevAction, h.havePrev = bucket, action, true
	h.step++
	a := h.actions[action]
	return sim.Assignment{
		PerService:  []sim.Allocation{{Cores: append([]int(nil), h.cores[:a.cores]...), FreqGHz: a.freq}},
		IdleFreqGHz: platform.MinFreqGHz,
	}
}

// heuristicStep walks the power-ordered ladder: move to a more generous
// configuration when the tail latency is too close to (or beyond) the
// target, reclaim when there is ample slack.
func (h *Hipster) heuristicStep(s ctrl.ServiceObs) int {
	ratio := s.Tardiness()
	switch {
	case ratio > 1: // violating: jump up aggressively
		h.cur += len(h.actions) / 10
	case ratio > 0.85: // too close to the target
		h.cur += 3
	case ratio < 0.60: // large slack: reclaim one step
		h.cur--
	}
	if h.cur < 0 {
		h.cur = 0
	}
	if h.cur >= len(h.actions) {
		h.cur = len(h.actions) - 1
	}
	return h.cur
}

func maxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func argmaxFloat(xs []float64) int {
	b := 0
	for i, x := range xs {
		if x > xs[b] {
			b = i
		}
	}
	return b
}

func anyVisited(v []bool) bool {
	for _, x := range v {
		if x {
			return true
		}
	}
	return false
}
