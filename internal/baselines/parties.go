package baselines

import (
	"sort"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// PartiesConfig holds the controller parameters from the paper's
// description (Sec. V-A): a 2 s decision period, upsizing when a service
// reaches 95% of its target, and reclaiming resources from the service
// with the highest slack otherwise.
type PartiesConfig struct {
	PeriodS       int
	UpsizeThresh  float64 // act when tardiness ≥ this
	ReclaimThresh float64 // only reclaim from services below this
	// RevertHoldS is how long a reverted resource stays off-limits for
	// reclaiming ("adjusts another resource next time").
	RevertHoldS int
	Seed        int64
}

// DefaultPartiesConfig returns the published parameters.
func DefaultPartiesConfig() PartiesConfig {
	return PartiesConfig{PeriodS: 2, UpsizeThresh: 0.95, ReclaimThresh: 0.60, RevertHoldS: 120}
}

// partiesResource enumerates the resources PARTIES adjusts one at a
// time. Intel CAT is unavailable on the evaluation platform (as in the
// paper), leaving core count and DVFS.
type partiesResource int

const (
	resCores partiesResource = iota
	resDVFS
	numResources
)

// partiesAction remembers the last adjustment for the revert logic.
type partiesAction struct {
	valid    bool
	svc      int
	resource partiesResource
	delta    int // applied change (negative = reclaim)
}

// Parties is the incremental resource controller of Chen et al.
// (ASPLOS'19): every period it either upsizes the service closest to its
// target or reclaims one resource unit from the service with the most
// slack, reverting an adjustment that caused a violation and switching
// to another resource next time.
type Parties struct {
	cfg   PartiesConfig
	cores []int

	alloc     []int // per-service core count
	freqStep  []int // per-service DVFS step
	nextRes   []partiesResource
	blocked   [][]int // blocked[svc][res] = step until which reclaiming is barred
	last      partiesAction
	step      int
	decisions int
}

// NewParties builds the controller for k services over the managed
// cores, starting from an even split at the highest DVFS setting.
func NewParties(cfg PartiesConfig, managedCores []int, k int) *Parties {
	if k <= 0 {
		panic("baselines: parties needs at least one service")
	}
	if cfg.PeriodS <= 0 {
		cfg.PeriodS = 2
	}
	cp := append([]int(nil), managedCores...)
	sort.Ints(cp)
	p := &Parties{cfg: cfg, cores: cp}
	p.alloc = make([]int, k)
	p.freqStep = make([]int, k)
	p.nextRes = make([]partiesResource, k)
	p.blocked = make([][]int, k)
	for i := 0; i < k; i++ {
		p.alloc[i] = len(cp) / k
		p.freqStep[i] = platform.NumFreqSteps - 1
		p.blocked[i] = make([]int, numResources)
	}
	return p
}

// Name implements ctrl.Controller.
func (p *Parties) Name() string { return "parties" }

// Decisions returns the number of resource adjustments made (the
// ping-pong metric discussed in Sec. V-B2).
func (p *Parties) Decisions() int { return p.decisions }

// Decide implements ctrl.Controller.
func (p *Parties) Decide(obs ctrl.Observation) sim.Assignment {
	t := p.step
	p.step++
	if t%p.cfg.PeriodS == 0 {
		p.adjust(obs)
	}
	return p.assignment()
}

func (p *Parties) adjust(obs ctrl.Observation) {
	k := len(p.alloc)
	// Revert logic: if the last adjustment was a reclaim and that
	// service now violates, undo it and rotate to the other resource.
	if p.last.valid && p.last.delta < 0 {
		s := obs.Services[p.last.svc]
		if !s.QoSMet() {
			p.apply(p.last.svc, p.last.resource, -p.last.delta)
			p.nextRes[p.last.svc] = (p.last.resource + 1) % numResources
			// Bar this resource from reclaiming for a while so the
			// controller does not immediately re-probe the violation.
			p.blocked[p.last.svc][p.last.resource] = p.step + p.cfg.RevertHoldS
			p.last = partiesAction{}
			return
		}
	}
	p.last = partiesAction{}

	// Find the services closest to and furthest from their targets.
	worst, best := -1, -1
	for i := 0; i < k; i++ {
		ti := obs.Services[i].Tardiness()
		if worst < 0 || ti > obs.Services[worst].Tardiness() {
			worst = i
		}
		if best < 0 || ti < obs.Services[best].Tardiness() {
			best = i
		}
	}

	if obs.Services[worst].Tardiness() >= p.cfg.UpsizeThresh {
		// Upsize one resource of the most pressured service. When the
		// core pool is empty, migrate a core from the service with the
		// most slack instead (PARTIES shifts resources between
		// services, not only from a free pool).
		res := p.nextRes[worst]
		if !p.canGrow(worst, res) {
			res = (res + 1) % numResources
		}
		switch {
		case p.canGrow(worst, res):
			p.apply(worst, res, +1)
			p.decisions++
			p.last = partiesAction{valid: true, svc: worst, resource: res, delta: +1}
			p.nextRes[worst] = (res + 1) % numResources
		case best != worst && p.alloc[best] > 1 &&
			obs.Services[best].Tardiness() < p.cfg.ReclaimThresh:
			p.alloc[best]--
			p.alloc[worst]++
			p.decisions++
			p.last = partiesAction{valid: true, svc: best, resource: resCores, delta: -1}
		}
		return
	}

	// Everyone comfortable: reclaim from the service with the most
	// slack, one resource unit at a time.
	if obs.Services[best].Tardiness() < p.cfg.ReclaimThresh {
		res := p.nextRes[best]
		if !p.canReclaim(best, res) {
			res = (res + 1) % numResources
		}
		if p.canReclaim(best, res) {
			p.apply(best, res, -1)
			p.decisions++
			p.last = partiesAction{valid: true, svc: best, resource: res, delta: -1}
			p.nextRes[best] = (res + 1) % numResources
		}
	}
}

func (p *Parties) freeCores() int {
	used := 0
	for _, c := range p.alloc {
		used += c
	}
	return len(p.cores) - used
}

func (p *Parties) canGrow(svc int, res partiesResource) bool {
	switch res {
	case resCores:
		return p.freeCores() > 0
	default:
		return p.freqStep[svc] < platform.NumFreqSteps-1
	}
}

func (p *Parties) canShrink(svc int, res partiesResource) bool {
	switch res {
	case resCores:
		return p.alloc[svc] > 1
	default:
		return p.freqStep[svc] > 0
	}
}

// canReclaim additionally honours the post-revert hold.
func (p *Parties) canReclaim(svc int, res partiesResource) bool {
	return p.canShrink(svc, res) && p.step >= p.blocked[svc][res]
}

func (p *Parties) apply(svc int, res partiesResource, delta int) {
	switch res {
	case resCores:
		p.alloc[svc] += delta
	default:
		p.freqStep[svc] += delta
	}
}

// assignment lays the services out contiguously from core 0. Cores
// reclaimed from LC services are destined for batch work in PARTIES'
// design, so they are left at the highest DVFS state — PARTIES manages
// QoS and throughput, not power, which is why it trails Twig-C on energy
// (Sec. V-B2).
func (p *Parties) assignment() sim.Assignment {
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, len(p.alloc)),
		IdleFreqGHz: platform.MaxFreqGHz,
	}
	pos := 0
	for i, c := range p.alloc {
		ids := append([]int(nil), p.cores[pos:pos+c]...)
		asg.PerService[i] = sim.Allocation{Cores: ids, FreqGHz: platform.FreqForStep(p.freqStep[i])}
		pos += c
	}
	return asg
}
