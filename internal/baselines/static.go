// Package baselines implements the task managers Twig is evaluated
// against: the static mapping, Hipster (HPCA'17, hybrid heuristic +
// tabular Q-learning), Heracles (ISCA'15, multi-level feedback
// controllers) and PARTIES (ASPLOS'19, one-resource-at-a-time upsizing/
// downsizing). Heracles and PARTIES are re-implemented from their
// papers' descriptions, as in Sec. V-A ("we implemented PARTIES and
// Heracles based on available documentation").
package baselines

import (
	"sort"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// Static is the baseline mapping of Sec. V-A: every core runs at the
// highest DVFS setting and the socket is split evenly among the hosted
// services (for a single service, it owns the whole socket).
type Static struct {
	cores    []int
	services int
}

// NewStatic creates the static mapping over the managed cores.
func NewStatic(managedCores []int, services int) *Static {
	if services <= 0 || len(managedCores) == 0 {
		panic("baselines: invalid static configuration")
	}
	cp := append([]int(nil), managedCores...)
	sort.Ints(cp)
	return &Static{cores: cp, services: services}
}

// Name implements ctrl.Controller.
func (s *Static) Name() string { return "static" }

// Decide returns the fixed assignment regardless of the observation.
func (s *Static) Decide(ctrl.Observation) sim.Assignment {
	asg := sim.Assignment{PerService: make([]sim.Allocation, s.services)}
	n := len(s.cores)
	for k := 0; k < s.services; k++ {
		lo := k * n / s.services
		hi := (k + 1) * n / s.services
		asg.PerService[k] = sim.Allocation{
			Cores:   append([]int(nil), s.cores[lo:hi]...),
			FreqGHz: platform.MaxFreqGHz,
		}
	}
	// Static leaves every core at the highest DVFS state.
	asg.IdleFreqGHz = platform.MaxFreqGHz
	return asg
}
