package baselines

import (
	"sort"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// HeraclesConfig holds the controller periods and thresholds from the
// paper's description (Sec. V-A): the main controller polls every 15 s
// and allocates everything for 5 min on a violation or >85% load; the
// core/memory controller polls every 2 s and grows the allocation when
// latency reaches 80% of the target or memory bandwidth rises; the power
// controller polls every 2 s and lowers DVFS when power reaches 90% of
// TDP.
type HeraclesConfig struct {
	MainPeriodS    int
	CorePeriodS    int
	PowerPeriodS   int
	LockoutS       int     // "all cores" period after a violation
	LatencyGrow    float64 // grow when p99 ≥ this fraction of target
	LoadPanic      float64 // main controller load threshold
	TDPW           float64
	PowerCapFrac   float64
	BWGrowRelDelta float64 // relative LLC-miss increase treated as "memory bandwidth increased"
}

// DefaultHeraclesConfig returns the thresholds described in Sec. V-A.
func DefaultHeraclesConfig(tdpW float64) HeraclesConfig {
	return HeraclesConfig{
		MainPeriodS:    15,
		CorePeriodS:    2,
		PowerPeriodS:   2,
		LockoutS:       300,
		LatencyGrow:    0.80,
		LoadPanic:      0.85,
		TDPW:           tdpW,
		PowerCapFrac:   0.90,
		BWGrowRelDelta: 0.10,
	}
}

// Heracles is the feedback controller of Lo et al. (ISCA'15), adapted as
// in the paper: a main controller that falls back to a full allocation
// on trouble, a core controller that grows/shrinks the core count, and a
// power controller that manages DVFS against the TDP. It manages a
// single LC service.
type Heracles struct {
	cfg   HeraclesConfig
	cores []int

	allocated  int
	freqStep   int
	lockoutEnd int
	prevMisses float64
	step       int
}

// NewHeracles builds the controller over the managed cores.
func NewHeracles(cfg HeraclesConfig, managedCores []int) *Heracles {
	cp := append([]int(nil), managedCores...)
	sort.Ints(cp)
	return &Heracles{
		cfg:       cfg,
		cores:     cp,
		allocated: len(cp),
		freqStep:  platform.NumFreqSteps - 1,
	}
}

// Name implements ctrl.Controller.
func (h *Heracles) Name() string { return "heracles" }

// Decide implements ctrl.Controller for a single LC service.
func (h *Heracles) Decide(obs ctrl.Observation) sim.Assignment {
	s := obs.Services[0]
	t := h.step
	h.step++

	// Main controller: on a violation or high load, allocate all cores
	// for the lockout period.
	if t%h.cfg.MainPeriodS == 0 {
		load := 0.0
		if s.MaxLoadRPS > 0 {
			load = s.MeasuredRPS / s.MaxLoadRPS
		}
		if !s.QoSMet() || load > h.cfg.LoadPanic {
			h.allocated = len(h.cores)
			h.lockoutEnd = t + h.cfg.LockoutS
		}
	}

	// Core & memory controller.
	if t%h.cfg.CorePeriodS == 0 && t >= h.lockoutEnd {
		misses := s.NormPMCs[pmc.LLCMisses]
		bwGrew := h.prevMisses > 0 && misses > h.prevMisses*(1+h.cfg.BWGrowRelDelta)
		if s.Tardiness() >= h.cfg.LatencyGrow || bwGrew {
			h.allocated++
		} else {
			h.allocated--
		}
		h.prevMisses = misses
		if h.allocated < 1 {
			h.allocated = 1
		}
		if h.allocated > len(h.cores) {
			h.allocated = len(h.cores)
		}
	}

	// Power controller: back off DVFS at the power cap, restore when
	// comfortably below it.
	if t%h.cfg.PowerPeriodS == 0 {
		switch {
		case obs.PowerW >= h.cfg.PowerCapFrac*h.cfg.TDPW && h.freqStep > 0:
			h.freqStep--
		case obs.PowerW < 0.7*h.cfg.TDPW && h.freqStep < platform.NumFreqSteps-1:
			h.freqStep++
		}
	}

	return sim.Assignment{
		PerService: []sim.Allocation{{
			Cores:   append([]int(nil), h.cores[:h.allocated]...),
			FreqGHz: platform.FreqForStep(h.freqStep),
		}},
		// Heracles does not manage idle cores' DVFS.
		IdleFreqGHz: platform.FreqForStep(h.freqStep),
	}
}
