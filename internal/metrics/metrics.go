// Package metrics is a minimal Prometheus-text-format registry shared
// by the twigd daemon and the cluster coordinator: enough to expose
// counters and gauges on /metrics without pulling a client library into
// the module. It was extracted from internal/daemon when the fleet
// control plane grew its own metric families.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels attaches dimension values to one metric series.
type Labels map[string]string

// Registry is a minimal Prometheus-text-format metrics registry: enough
// for twigd to expose counters and gauges on /metrics without pulling a
// client library into the module. Families are declared once with a
// type and help string; series within a family are keyed by their
// sorted, escaped label rendering, so Render output is byte-stable for
// a deterministic run — which is what the golden scrape test pins.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // declaration order is preserved in Render
}

type family struct {
	typ, help string
	series    map[string]float64
	keys      []string // insertion order of series keys
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Describe declares a metric family. typ is "counter" or "gauge".
// Redeclaring a name is a programming error and panics.
func (r *Registry) Describe(name, typ, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: metric %q declared twice", name))
	}
	r.families[name] = &family{typ: typ, help: help, series: map[string]float64{}}
	r.names = append(r.names, name)
}

// Add increments a counter series by delta (creating it at delta).
func (r *Registry) Add(name string, labels Labels, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.mustFamily(name)
	k := renderLabels(labels)
	if _, ok := f.series[k]; !ok {
		f.keys = append(f.keys, k)
	}
	f.series[k] += delta
}

// Set overwrites a gauge series with v (creating it if needed).
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.mustFamily(name)
	k := renderLabels(labels)
	if _, ok := f.series[k]; !ok {
		f.keys = append(f.keys, k)
	}
	f.series[k] = v
}

// Get returns the current value of a series (0 if absent); tests use it
// to assert counters without scraping.
func (r *Registry) Get(name string, labels Labels) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	return f.series[renderLabels(labels)]
}

func (r *Registry) mustFamily(name string) *family {
	f, ok := r.families[name]
	if !ok {
		panic(fmt.Sprintf("metrics: metric %q used before Describe", name))
	}
	return f
}

// Render writes the registry in the Prometheus text exposition format.
// Families appear in declaration order; series within a family in
// sorted label order, so equal state renders equal bytes.
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(name)
			b.WriteString(k)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(f.series[k], 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// renderLabels produces the canonical {k="v",...} suffix (empty for no
// labels), with keys sorted and values escaped per the text format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
