package metrics

import "testing"

func TestRegistryRenderFormat(t *testing.T) {
	r := NewRegistry()
	r.Describe("a_total", "counter", "First family.")
	r.Describe("b", "gauge", "Second family.")
	r.Add("a_total", Labels{"svc": "x"}, 2)
	r.Add("a_total", Labels{"svc": "x"}, 1)
	r.Add("a_total", Labels{"svc": `we"ird\na`, "z": "1"}, 1)
	r.Set("b", nil, 2.5)
	got := r.Render()
	want := `# HELP a_total First family.
# TYPE a_total counter
a_total{svc="we\"ird\\na",z="1"} 1
a_total{svc="x"} 3
# HELP b Second family.
# TYPE b gauge
b 2.5
`
	if got != want {
		t.Errorf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if v := r.Get("a_total", Labels{"svc": "x"}); v != 3 {
		t.Errorf("Get = %v, want 3", v)
	}
	if v := r.Get("missing", nil); v != 0 {
		t.Errorf("Get on unknown family = %v, want 0", v)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.Describe("x", "counter", "")
	mustPanic(t, "redeclare", func() { r.Describe("x", "gauge", "") })
	mustPanic(t, "undescribed", func() { r.Add("y", nil, 1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
