// Package cluster is the fleet control plane: N simulated nodes, each
// running the per-node Twig control loop, under one coordinator that
// owns service placement. The coordinator tracks node health with
// heartbeat leases, detects whole-node crash and partition episodes
// (injected deterministically by faults.ClusterInjector), and drives a
// placement state machine per replica — pending → placed → running →
// migrating → dead-letter — with bounded retries and deterministic
// exponential backoff. Failover restores the victim node's agent state
// from an in-memory warm snapshot when the whole group can move to an
// empty node, so learning survives the move; otherwise replicas restart
// cold on whatever capacity remains. When capacity drops below demand a
// degradation policy sheds replicas by QoS class — batch first, then
// latency-critical in ascending priority.
//
// Everything is deterministic for a given (config, seed, admission
// schedule): node fault schedules, placement decisions, backoff, world
// seeds and controller rebuild seeds are all derived, never drawn from
// wall-clock or map order. Combined with the crash-consistent fleet
// checkpoint (see RestoreFleet), a resumed run is bit-identical to an
// uninterrupted one.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/metrics"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Named admission errors.
var (
	ErrUnknownService = errors.New("cluster: unknown service profile")
	ErrBadLoad        = errors.New("cluster: load fraction must be a finite value in (0, 1.5]")
	ErrBadQoS         = errors.New("cluster: QoS target must be a finite positive latency")
)

// ControllerFactory builds the per-node controller stack for a node's
// current membership: the Decide implementation plus the checkpointable
// components (typically the Twig manager) that must travel in warm
// snapshots and fleet checkpoints. It is injected — rather than the
// cluster importing the experiment harness — so the experiments package
// can drive fleets of full Twig managers while cluster tests use cheap
// static controllers. The factory must be deterministic in its
// arguments.
type ControllerFactory func(srv *sim.Server, specs []ReplicaSpec, seed int64) (ctrl.Controller, []checkpoint.Checkpointable)

// Config assembles a fleet coordinator.
type Config struct {
	// Nodes is the fleet size (at least 1).
	Nodes int
	// NodeCapacity is the maximum number of replicas one node hosts
	// (values < 1 become 4). Fleet capacity is Nodes × NodeCapacity over
	// the nodes whose lease is valid.
	NodeCapacity int
	// Seed fixes every random stream; equal seeds give bit-identical
	// runs.
	Seed int64
	// Scenario is the whole-node fault schedule (zero injects nothing).
	Scenario faults.ClusterScenario
	// LeaseTTL is the heartbeat lease in intervals: a node unheard for
	// TTL intervals is declared dead by the coordinator, and a
	// partitioned node self-fences after the same TTL, so no replica is
	// ever served by two nodes (values < 1 become 3).
	LeaseTTL int
	// BackoffBase scales the placement retry backoff: a replica's n-th
	// consecutive failure defers the next attempt by
	// BackoffBase << min(n-1, 6) intervals (values < 1 become 2).
	BackoffBase int
	// MaxRetries bounds consecutive placement failures before a replica
	// dead-letters (values < 0 become 5; 0 dead-letters on the first
	// failure).
	MaxRetries int
	// SnapshotEvery is the warm-snapshot cadence in intervals (values
	// < 1 become 10).
	SnapshotEvery int
	// EstateGraceS is how many intervals a dead node's replica group is
	// reserved for a warm whole-group restore before falling back to
	// individual cold placement (values < 1 become 2×LeaseTTL).
	EstateGraceS int
	// PinReplicas switches the coordinator to static partitioning, the
	// figchaos baseline: replica i may only ever be placed on node
	// i mod Nodes, warm failover is disabled, and a dead home node
	// leaves its replicas dark until it returns.
	PinReplicas bool
	// Factory builds each node's controller stack (required).
	Factory ControllerFactory
	// Flush, when set, switches stepWorlds to fleet-batched decisions:
	// every node controller implementing ctrl.PhasedController gets
	// PrepareDecide, then Flush runs once (e.g. one batched grouped-GEMM
	// sweep over every node's pooled agent), then FinishDecide collects
	// the assignments. Per-node trajectories are bit-identical to the
	// unbatched path; only the execution shape changes. Controllers that
	// are not phased keep the plain Decide path.
	Flush func()
	// Store enables periodic crash-consistent fleet checkpoints (nil
	// disables); CheckpointEvery is the cadence in intervals (values
	// < 1 become 60).
	Store           *checkpoint.Store
	CheckpointEvery int
	// NodeSims, when non-empty, gives each node its own simulator
	// configuration (platform SKU, DVFS range, inter-tier latency tax) —
	// a heterogeneous fleet, e.g. a cloud-edge scenario's node classes.
	// Its length must equal Nodes; MeasurementSeed is overridden with
	// the node's derived seed. Empty keeps every node on the default
	// paper SKU.
	NodeSims []sim.Config
	// FastMath opts the process into the fused FMA/AVX-512 GEMM kernels
	// (mat.SetFastMath). Fast mode forfeits bit-identical resume and
	// cross-machine reproducibility; checkpoint formats and the default
	// path are unchanged. A no-op on CPUs without FMA.
	FastMath bool
}

func (c *Config) normalize() {
	if c.NodeCapacity < 1 {
		c.NodeCapacity = 4
	}
	if c.LeaseTTL < 1 {
		c.LeaseTTL = 3
	}
	if c.BackoffBase < 1 {
		c.BackoffBase = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 5
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 10
	}
	if c.EstateGraceS < 1 {
		c.EstateGraceS = 2 * c.LeaseTTL
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 60
	}
}

// estate is a dead node's replica group reserved for warm restore: the
// snapshot container, the replica IDs it covers (in simulator order)
// and the interval the reservation lapses.
type estate struct {
	ids      []int
	snapshot []byte
	expires  int
}

// counters are the coordinator's cumulative event counts; they travel
// in the fleet checkpoint so a resumed run reports identical totals.
type counters struct {
	LeaseExpiries  int
	RestartsSeen   int
	WarmRestores   int
	ColdRestores   int
	Migrations     int
	DeadLetters    int
	PlacementFails int
	ShedEpisodes   int
	ShedLC         int // intervals LC replicas spent shed
	ShedBatch      int // intervals batch replicas spent shed
	DecidePanics   int
	StepErrors     int
	EventsInjected int
	SnapshotsTaken int
}

// StepSummary reports one coordinator interval.
type StepSummary struct {
	Time int
	// EnergyJ is the fleet-wide energy spent this interval.
	EnergyJ float64
	// Active lists the node outages in effect.
	Active []faults.NodeEvent
}

// Coordinator is the fleet control plane. Construct with New, admit
// replicas, then call Step once per monitoring interval.
type Coordinator struct {
	mu  sync.Mutex
	cfg Config

	nodes    []*node
	knownInc []int // coordinator's view of each node's incarnation
	replicas []*Replica
	estates  []estate
	inj      *faults.ClusterInjector

	clock    int
	admitted int
	energyJ  float64
	ctr      counters

	events []string // recent coordinator decisions, newest last

	metrics *metrics.Registry
	writer  *checkpoint.AsyncWriter
}

// New builds a coordinator over an empty fleet.
func New(cfg Config) (*Coordinator, error) {
	cfg.normalize()
	if cfg.FastMath {
		mat.SetFastMath(true)
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: at least one node required")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("cluster: a ControllerFactory is required")
	}
	if len(cfg.NodeSims) != 0 && len(cfg.NodeSims) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d node sim configs for %d nodes", len(cfg.NodeSims), cfg.Nodes)
	}
	c := &Coordinator{
		cfg:      cfg,
		inj:      faults.NewClusterInjector(cfg.Scenario, cfg.Seed+13, cfg.Nodes),
		metrics:  metrics.NewRegistry(),
		knownInc: make([]int, cfg.Nodes),
	}
	c.describeMetrics()
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &node{
			id: i, alive: true, coordLive: true,
			lastSeen: -1, lastHeard: -1,
		})
	}
	if cfg.Store != nil {
		c.writer = checkpoint.NewAsyncWriter(cfg.Store)
	}
	return c, nil
}

// Admit registers a replica; it is placed at the next Step. Returns the
// replica ID.
func (c *Coordinator) Admit(spec ReplicaSpec) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := service.Lookup(spec.Service); err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownService, spec.Service)
	}
	if math.IsNaN(spec.LoadFrac) || math.IsInf(spec.LoadFrac, 0) || spec.LoadFrac <= 0 || spec.LoadFrac > 1.5 {
		return 0, fmt.Errorf("%w: got %v", ErrBadLoad, spec.LoadFrac)
	}
	if math.IsNaN(spec.QoSTargetMs) || math.IsInf(spec.QoSTargetMs, 0) || spec.QoSTargetMs <= 0 {
		return 0, fmt.Errorf("%w: got %v", ErrBadQoS, spec.QoSTargetMs)
	}
	r := &Replica{
		ID:        c.admitted,
		Spec:      spec,
		Node:      -1,
		LastNode:  -1,
		AdmitStep: c.clock,
		DeadStep:  -1,
		seed:      c.cfg.Seed + int64(c.admitted)*101,
	}
	c.admitted++
	c.replicas = append(c.replicas, r)
	c.logf("t=%d admit replica %d (%s, %s prio %d)", c.clock, r.ID, spec.Service, spec.Class, spec.Priority)
	return r.ID, nil
}

// Clock returns the next interval to execute.
func (c *Coordinator) Clock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// Metrics exposes the registry backing the cluster /metrics families.
func (c *Coordinator) Metrics() *metrics.Registry { return c.metrics }

// Replicas returns a copy of every replica's current record.
func (c *Coordinator) Replicas() []Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Replica, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = *r
	}
	return out
}

// Step runs one coordinator interval: advance the fault schedule, apply
// machine transitions, exchange heartbeats and fence expired leases,
// shed or restore by QoS class, drive placements (warm group restores
// first, then individual cold placement with backoff), step every
// reachable node's control loop, account every replica exactly one
// tick, and cut warm snapshots and fleet checkpoints on cadence.
func (c *Coordinator) Step() StepSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.clock
	active := append([]faults.NodeEvent(nil), c.inj.Advance()...)

	crashed := make([]bool, len(c.nodes))
	parted := make([]bool, len(c.nodes))
	for _, ev := range active {
		switch ev.Kind {
		case faults.NodeCrash:
			crashed[ev.Node] = true
		case faults.NodePartition:
			parted[ev.Node] = true
		}
		if ev.Start == t {
			c.ctr.EventsInjected++
			c.logf("t=%d inject %v", t, ev)
		}
	}

	c.applyMachineState(t, crashed, parted)
	c.exchangeHeartbeats(t)
	c.expireLeases(t)
	c.applyDegradation(t)
	c.restoreEstates(t)
	c.placeReplicas(t)
	energy := c.stepWorlds(t)
	c.takeSnapshots(t)
	c.updateMetrics()

	c.clock = t + 1
	c.energyJ += energy
	if c.writer != nil && c.clock%c.cfg.CheckpointEvery == 0 {
		c.writer.Submit(uint64(c.clock), c.marshalLocked())
	}
	return StepSummary{Time: t, EnergyJ: energy, Active: active}
}

// applyMachineState applies this interval's injected outages to the
// machines themselves: crash onset loses the node's world on the spot;
// crash recovery and partition-heal-after-fence rejoin the node empty
// under a new incarnation.
func (c *Coordinator) applyMachineState(t int, crashed, parted []bool) {
	for i, n := range c.nodes {
		if crashed[i] && n.alive {
			n.alive = false
			n.dropWorld()
			c.logf("t=%d node %d crashed (world lost)", t, i)
		}
		if !crashed[i] && !n.alive {
			// The machine is back, empty, under a new incarnation. The
			// coordinator's routing entries (n.replicas) survive until
			// failover reassigns them — at lease expiry, or at the
			// incarnation-mismatch heartbeat if the outage was shorter
			// than the lease.
			n.alive = true
			n.fenced = false
			n.rejoins++
			c.logf("t=%d node %d rejoined empty (incarnation %d)", t, i, n.rejoins)
		}
		wasParted := n.partitioned
		n.partitioned = parted[i]
		if wasParted && !parted[i] && n.fenced {
			n.fenced = false
			n.rejoins++
			c.logf("t=%d node %d partition healed, rejoined empty (incarnation %d)", t, i, n.rejoins)
		}
	}
}

// exchangeHeartbeats renews leases for reachable nodes and self-fences
// nodes partitioned past the TTL. A heartbeat carries the node's
// incarnation; a mismatch tells the coordinator the node restarted
// inside the lease window (an outage shorter than the TTL), and its
// replicas fail over exactly as if the lease had expired.
func (c *Coordinator) exchangeHeartbeats(t int) {
	for i, n := range c.nodes {
		switch {
		case n.alive && !n.partitioned:
			if !n.coordLive {
				n.coordLive = true
				c.logf("t=%d node %d lease restored", t, i)
			}
			if c.knownInc[i] != n.rejoins {
				c.ctr.RestartsSeen++
				c.failOver(t, n, fmt.Sprintf("node %d restarted within its lease", i))
				c.knownInc[i] = n.rejoins
			}
			n.lastSeen = t
			n.lastHeard = t
		case n.alive && n.partitioned && !n.fenced:
			// The node cannot reach the coordinator; at lease expiry it
			// must assume it was declared dead and stop serving.
			if t-n.lastHeard >= c.cfg.LeaseTTL {
				n.fenced = true
				n.dropWorld()
				c.logf("t=%d node %d self-fenced (no coordinator for %d intervals)", t, i, t-n.lastHeard)
			}
		}
	}
}

// expireLeases declares nodes unheard for TTL intervals dead and fails
// their replicas over. Because the node side fences at the same TTL,
// the two decisions land in the same interval.
func (c *Coordinator) expireLeases(t int) {
	for i, n := range c.nodes {
		if n.coordLive && t-n.lastSeen >= c.cfg.LeaseTTL {
			n.coordLive = false
			c.ctr.LeaseExpiries++
			c.logf("t=%d node %d lease expired (last heartbeat t=%d)", t, i, n.lastSeen)
			c.failOver(t, n, fmt.Sprintf("node %d lease expired", i))
		}
	}
}

// failOver moves every replica assigned to n into Migrating and, when a
// warm snapshot covers exactly the current group, reserves the group as
// an estate for whole-group restore. Static partitioning (PinReplicas)
// never reserves estates: replicas restart cold on their home node.
func (c *Coordinator) failOver(t int, n *node, reason string) {
	if len(n.replicas) == 0 {
		n.snapshot, n.snapReplicas = nil, nil
		return
	}
	if !c.cfg.PinReplicas && n.snapshot != nil && equalInts(n.snapReplicas, n.replicas) {
		c.estates = append(c.estates, estate{
			ids:      append([]int(nil), n.snapReplicas...),
			snapshot: n.snapshot,
			expires:  t + c.cfg.EstateGraceS,
		})
		c.logf("t=%d reserving %d-replica estate of node %d (snapshot t=%d)", t, len(n.snapReplicas), n.id, n.snapClock)
	}
	for _, id := range n.replicas {
		r := c.replicas[id]
		r.State = Migrating
		r.LastNode = r.Node
		r.Node = -1
		r.Retries = 0
		r.NextAttempt = t
		r.Reason = reason
		c.logf("t=%d replica %d migrating: %s", t, id, reason)
	}
	n.replicas = nil
	n.snapshot, n.snapReplicas = nil, nil
}

// applyDegradation sheds the lowest-ranked replicas while fleet
// capacity is below demand — batch class first, then latency-critical
// replicas in ascending priority — and lifts the suspension as soon as
// capacity returns.
func (c *Coordinator) applyDegradation(t int) {
	capacity := 0
	for _, n := range c.nodes {
		if n.coordLive {
			capacity += c.cfg.NodeCapacity
		}
	}
	var live []*Replica
	for _, r := range c.replicas {
		if !r.State.Terminal() {
			live = append(live, r)
		}
	}
	overflow := len(live) - capacity
	shedSet := map[int]bool{}
	if overflow > 0 {
		ranked := append([]*Replica(nil), live...)
		sort.SliceStable(ranked, func(i, j int) bool { return shedRank(ranked[i], ranked[j]) })
		for _, r := range ranked[:overflow] {
			shedSet[r.ID] = true
		}
	}
	for _, r := range live {
		switch {
		case shedSet[r.ID]:
			if !r.Shed {
				r.Shed = true
				r.Reason = "shed: fleet capacity below demand"
				c.ctr.ShedEpisodes++
				c.logf("t=%d shed replica %d (%s prio %d)", t, r.ID, r.Spec.Class, r.Spec.Priority)
			}
			// An unreachable host keeps nominally serving a shed replica;
			// eviction is retried every interval so it lands as soon as
			// the host is reachable (or its lease expires first).
			if r.Node >= 0 {
				n := c.nodes[r.Node]
				if n.alive && !n.partitioned && n.srv != nil {
					if idx := indexOf(n.replicas, r.ID); idx >= 0 {
						if err := c.evict(n, idx); err == nil {
							r.State = Pending
							r.LastNode = r.Node
							r.Node = -1
						}
					}
				}
			}
		case !shedSet[r.ID] && r.Shed:
			r.Shed = false
			r.NextAttempt = t
			r.Retries = 0
			c.logf("t=%d unshed replica %d", t, r.ID)
		}
	}
}

// restoreEstates attempts warm whole-group failover: an estate whose
// members are all still Migrating moves onto an empty reachable node
// with enough capacity, and every component resumes from the snapshot —
// the learned policy survives the node loss. Lapsed or broken estates
// fall back to individual cold placement.
func (c *Coordinator) restoreEstates(t int) {
	var keep []estate
	for _, es := range c.estates {
		valid := t < es.expires && len(es.ids) <= c.cfg.NodeCapacity
		for _, id := range es.ids {
			r := c.replicas[id]
			if r.State != Migrating || r.Shed {
				valid = false
			}
		}
		if !valid {
			continue // members dead-lettered, shed, placed, or grace lapsed
		}
		target := -1
		for _, n := range c.nodes {
			if n.coordLive && n.lastSeen == t && n.srv == nil && len(n.replicas) == 0 {
				target = n.id
				break
			}
		}
		if target < 0 {
			keep = append(keep, es) // retry while the grace window lasts
			continue
		}
		n := c.nodes[target]
		if err := c.restoreSnapshot(n, es.snapshot, es.ids); err != nil {
			c.logf("t=%d warm restore onto node %d failed: %v", t, target, err)
			continue // snapshot unusable; cold path takes over
		}
		for _, id := range es.ids {
			r := c.replicas[id]
			r.State = Placed
			r.Node = target
			r.Shed = false
			r.Retries = 0
			r.Reason = ""
			r.Migrations++
			r.WarmRestores++
			c.ctr.Migrations++
			c.ctr.WarmRestores++
		}
		c.logf("t=%d warm-restored %d replicas onto node %d", t, len(es.ids), target)
	}
	c.estates = keep
}

// placeReplicas drives individual placement: every unshed Pending or
// Migrating replica whose backoff has elapsed (and that no live estate
// reserves) is placed cold on the least-loaded reachable node with
// spare capacity — or, under static partitioning, only on its home
// node. A failed attempt backs off exponentially; exhausting the retry
// budget dead-letters the replica with the failure recorded.
func (c *Coordinator) placeReplicas(t int) {
	reserved := map[int]bool{}
	for _, es := range c.estates {
		for _, id := range es.ids {
			reserved[id] = true
		}
	}
	var due []*Replica
	for _, r := range c.replicas {
		if (r.State == Pending || r.State == Migrating) && !r.Shed && !reserved[r.ID] && r.NextAttempt <= t {
			due = append(due, r)
		}
	}
	sort.SliceStable(due, func(i, j int) bool { return placeRank(due[i], due[j]) })
	for _, r := range due {
		target := c.pickNode(t, r)
		if target < 0 {
			c.failPlacement(t, r, "no reachable node with capacity")
			continue
		}
		n := c.nodes[target]
		if err := c.place(n, r); err != nil {
			// Only a buggy factory or profile can fail here; treat it
			// like any other failed attempt so the loop stays alive.
			c.failPlacement(t, r, err.Error())
			continue
		}
		wasMigrating := r.State == Migrating
		r.State = Placed
		r.Node = target
		r.Retries = 0
		r.Reason = ""
		if wasMigrating {
			r.Migrations++
			c.ctr.Migrations++
			if target != r.LastNode {
				c.ctr.ColdRestores++
			}
		}
		c.logf("t=%d placed replica %d on node %d", t, r.ID, target)
	}
}

// failPlacement records one failed placement attempt for r: exponential
// backoff while retries remain, terminal dead-letter with the last
// failure recorded once the budget is exhausted.
func (c *Coordinator) failPlacement(t int, r *Replica, cause string) {
	c.ctr.PlacementFails++
	r.Retries++
	if r.Retries > c.cfg.MaxRetries {
		r.State = DeadLetter
		r.DeadStep = t
		r.Node = -1
		r.Reason = fmt.Sprintf("placement retries exhausted (%d attempts, last: %s)", r.Retries, cause)
		c.ctr.DeadLetters++
		c.logf("t=%d replica %d dead-lettered: %s", t, r.ID, r.Reason)
		return
	}
	shift := r.Retries - 1
	if shift > 6 {
		shift = 6
	}
	r.NextAttempt = t + c.cfg.BackoffBase<<shift
	r.Reason = "placement failed: " + cause
	c.logf("t=%d replica %d placement failed (retry %d, next t=%d): %s", t, r.ID, r.Retries, r.NextAttempt, cause)
}

// pickNode selects the placement target for r: the reachable node (a
// valid lease renewed this interval) with the most spare capacity,
// lowest ID breaking ties — or only the home node under static
// partitioning.
func (c *Coordinator) pickNode(t int, r *Replica) int {
	best, bestLoad := -1, c.cfg.NodeCapacity
	for _, n := range c.nodes {
		if !n.coordLive || n.lastSeen != t {
			continue
		}
		if c.cfg.PinReplicas && n.id != r.ID%len(c.nodes) {
			continue
		}
		if len(n.replicas) < bestLoad {
			best, bestLoad = n.id, len(n.replicas)
		}
	}
	return best
}

// stepWorlds advances every live, unfenced node's control loop one
// interval and performs the per-replica accounting: exactly one tick
// per live replica — an Intervals tick (plus a violation when the tail
// target is missed) for replicas served this interval, a DarkIntervals
// tick (always a violation) for everything pending, migrating, shed,
// warming or hosted on a node that is down or unreachable.
func (c *Coordinator) stepWorlds(t int) float64 {
	var energy float64
	ticked := make(map[int]bool, len(c.replicas))

	// Fleet-batched phase: enqueue every phased controller's learning
	// and selection work, then run one shared flush for the whole fleet.
	var phased map[*node]ctrl.PhasedController
	var phaseFailed map[*node]bool
	if c.cfg.Flush != nil {
		phased = make(map[*node]ctrl.PhasedController)
		phaseFailed = make(map[*node]bool)
		for _, n := range c.nodes {
			if !n.alive || n.fenced || n.srv == nil {
				continue
			}
			pc, ok := n.controller.(ctrl.PhasedController)
			if !ok {
				continue
			}
			if safePrepare(pc, n.obs) {
				phased[n] = pc
			} else {
				phaseFailed[n] = true
			}
		}
		c.cfg.Flush()
	}

	for _, n := range c.nodes {
		if !n.alive || n.fenced || n.srv == nil {
			continue
		}
		loads := make([]float64, len(n.replicas))
		for i, id := range n.replicas {
			r := c.replicas[id]
			if r.State == Running {
				loads[i] = r.Spec.LoadFrac * service.MustLookup(r.Spec.Service).MaxLoadRPS
			}
		}
		var asg sim.Assignment
		var panicked bool
		switch {
		case phased[n] != nil:
			asg, panicked = safeFinish(phased[n])
		case phaseFailed[n]:
			panicked = true
		default:
			asg, panicked = safeDecide(n.controller, n.obs)
		}
		if panicked {
			c.ctr.DecidePanics++
			asg = n.lastValid
		}
		res, err := n.srv.Step(asg, loads)
		if err != nil {
			c.ctr.StepErrors++
			asg = n.lastValid
			if res, err = n.srv.Step(asg, loads); err != nil {
				// The safe fallback cannot be rejected unless the world
				// itself is broken; freeze the node for this interval.
				continue
			}
		}
		n.lastValid = asg
		n.obs = n.tracker.Observe(n.srv, res)
		energy += res.EnergyJ

		for i, id := range n.replicas {
			r := c.replicas[id]
			ticked[id] = true
			switch r.State {
			case Running:
				r.Intervals++
				sv := res.Services[i]
				if math.IsNaN(sv.P99Ms) || sv.P99Ms > r.Spec.QoSTargetMs {
					r.Violations++
				}
			default: // Placed: one warm-up interval without load
				r.DarkIntervals++
				r.Violations++
				r.State = Running
			}
		}
	}
	// Everything not served this interval accrues a dark tick.
	for _, r := range c.replicas {
		if r.State.Terminal() || ticked[r.ID] {
			continue
		}
		r.DarkIntervals++
		r.Violations++
		if r.Shed {
			if r.Spec.Class == Batch {
				c.ctr.ShedBatch++
			} else {
				c.ctr.ShedLC++
			}
		}
	}
	return energy
}

// takeSnapshots cuts warm in-memory failover snapshots of every
// reachable node on cadence. Snapshot bytes never leave the coordinator
// process; the durable fleet checkpoint is separate (see Marshal).
func (c *Coordinator) takeSnapshots(t int) {
	if (t+1)%c.cfg.SnapshotEvery != 0 {
		return
	}
	for _, n := range c.nodes {
		if n.coordLive && n.lastSeen == t && n.srv != nil {
			c.takeSnapshot(n)
			c.ctr.SnapshotsTaken++
		}
	}
}

// logf appends a line to the bounded coordinator event log.
func (c *Coordinator) logf(format string, args ...interface{}) {
	const keep = 256
	c.events = append(c.events, fmt.Sprintf(format, args...))
	if len(c.events) > keep {
		c.events = c.events[len(c.events)-keep:]
	}
}

// Events returns a copy of the recent coordinator event log.
func (c *Coordinator) Events() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
