package cluster

import (
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/mat"
)

// NodeView is the status representation of one fleet node.
type NodeView struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	Lease    bool   `json:"lease_valid"`
	LastSeen int    `json:"last_seen"`
	Rejoins  int    `json:"rejoins"`
	Replicas []int  `json:"replicas"`
}

// ReplicaView is the status representation of one replica.
type ReplicaView struct {
	ID            int     `json:"id"`
	Service       string  `json:"service"`
	Class         string  `json:"class"`
	Priority      int     `json:"priority"`
	State         string  `json:"state"`
	Node          int     `json:"node"`
	Shed          bool    `json:"shed"`
	Retries       int     `json:"retries"`
	Reason        string  `json:"reason,omitempty"`
	Intervals     int     `json:"intervals"`
	Violations    int     `json:"violations"`
	DarkIntervals int     `json:"dark_intervals"`
	Migrations    int     `json:"migrations"`
	WarmRestores  int     `json:"warm_restores"`
	QoS           float64 `json:"qos_guarantee"`
}

// Summary is the fleet-wide roll-up the chaos experiment and the twigd
// status page report.
type Summary struct {
	Time     int           `json:"time"`
	EnergyJ  float64       `json:"energy_j"`
	Nodes    []NodeView    `json:"nodes"`
	Replicas []ReplicaView `json:"replicas"`

	// Kernel, CPUFeatures and FastMath record the GEMM dispatch
	// provenance of the process hosting the fleet (fast math forfeits
	// bit-identical resume).
	Kernel      string `json:"kernel"`
	CPUFeatures string `json:"cpu_features"`
	FastMath    bool   `json:"fast_math"`

	LeaseExpiries  int `json:"lease_expiries"`
	RestartsSeen   int `json:"restarts_detected"`
	Migrations     int `json:"migrations"`
	WarmRestores   int `json:"warm_restores"`
	ColdRestores   int `json:"cold_restores"`
	DeadLetters    int `json:"dead_letters"`
	PlacementFails int `json:"placement_failures"`
	ShedEpisodes   int `json:"shed_episodes"`
	ShedIntervals  int `json:"shed_intervals"`
	DecidePanics   int `json:"decide_panics"`
	StepErrors     int `json:"step_errors"`
	EventsInjected int `json:"node_events_injected"`
}

// Summary builds the current fleet roll-up.
func (c *Coordinator) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		Time:           c.clock,
		EnergyJ:        c.energyJ,
		Kernel:         mat.KernelName(),
		CPUFeatures:    mat.CPUFeatures(),
		FastMath:       mat.FastMath(),
		LeaseExpiries:  c.ctr.LeaseExpiries,
		RestartsSeen:   c.ctr.RestartsSeen,
		Migrations:     c.ctr.Migrations,
		WarmRestores:   c.ctr.WarmRestores,
		ColdRestores:   c.ctr.ColdRestores,
		DeadLetters:    c.ctr.DeadLetters,
		PlacementFails: c.ctr.PlacementFails,
		ShedEpisodes:   c.ctr.ShedEpisodes,
		ShedIntervals:  c.ctr.ShedLC + c.ctr.ShedBatch,
		DecidePanics:   c.ctr.DecidePanics,
		StepErrors:     c.ctr.StepErrors,
		EventsInjected: c.ctr.EventsInjected,
	}
	for _, n := range c.nodes {
		s.Nodes = append(s.Nodes, NodeView{
			ID:       n.id,
			State:    n.machineState(),
			Lease:    n.coordLive,
			LastSeen: n.lastSeen,
			Rejoins:  n.rejoins,
			Replicas: append([]int(nil), n.replicas...),
		})
	}
	for _, r := range c.replicas {
		v := ReplicaView{
			ID:            r.ID,
			Service:       r.Spec.Service,
			Class:         r.Spec.Class.String(),
			Priority:      r.Spec.Priority,
			State:         r.State.String(),
			Node:          r.Node,
			Shed:          r.Shed,
			Retries:       r.Retries,
			Reason:        r.Reason,
			Intervals:     r.Intervals,
			Violations:    r.Violations,
			DarkIntervals: r.DarkIntervals,
			Migrations:    r.Migrations,
			WarmRestores:  r.WarmRestores,
		}
		if ticks := r.Ticks(); ticks > 0 {
			v.QoS = 1 - float64(r.Violations)/float64(ticks)
		} else {
			v.QoS = 1
		}
		s.Replicas = append(s.Replicas, v)
	}
	return s
}

// StatusText renders the fleet for the twigd status page: one node row
// per fleet member, then the replica table with placement state,
// carried accounting and failure reasons.
func (s Summary) StatusText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet t=%d  energy %.0f J  leases expired %d  migrations %d (%d warm)  dead-letters %d\n",
		s.Time, s.EnergyJ, s.LeaseExpiries, s.Migrations, s.WarmRestores, s.DeadLetters)
	for _, n := range s.Nodes {
		lease := "lease ok"
		if !n.Lease {
			lease = "lease EXPIRED"
		}
		fmt.Fprintf(&b, "  node %d  %-11s %-13s rejoins %d  replicas %v\n",
			n.ID, n.State, lease, n.Rejoins, n.Replicas)
	}
	for _, r := range s.Replicas {
		shed := ""
		if r.Shed {
			shed = " SHED"
		}
		fmt.Fprintf(&b, "  replica %d  %-10s %-5s prio %d  %-11s node %2d%s  qos %5.1f%%  up %d dark %d mig %d(warm %d)",
			r.ID, r.Service, r.Class, r.Priority, r.State, r.Node, shed,
			r.QoS*100, r.Intervals, r.DarkIntervals, r.Migrations, r.WarmRestores)
		if r.Reason != "" {
			fmt.Fprintf(&b, "  [%s]", r.Reason)
		}
		b.WriteString("\n")
	}
	return b.String()
}
