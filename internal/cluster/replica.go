package cluster

import "fmt"

// Class is a replica's QoS class, the unit of the degradation policy:
// when live capacity drops below demand the coordinator sheds batch
// replicas first, then latency-critical replicas in ascending Priority
// order.
type Class uint8

const (
	// LC is a latency-critical replica with a tail-latency target.
	LC Class = iota
	// Batch is a best-effort replica: first to be shed, last to return.
	Batch
)

// String returns the lower-case class name used in metrics and status.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "lc"
}

// ReplicaSpec is the admission request for one service replica.
type ReplicaSpec struct {
	// Service names a built-in service profile.
	Service string
	// LoadFrac is the offered load as a fraction of the profile's
	// saturation RPS.
	LoadFrac float64
	// QoSTargetMs is the tail-latency target violations are counted
	// against.
	QoSTargetMs float64
	// Class selects the degradation class; Priority orders shedding
	// within the LC class (lower priorities shed first).
	Class    Class
	Priority int
}

// ReplicaState is a position in the placement state machine:
//
//	Pending ──place──▶ Placed ──next interval──▶ Running
//	   ▲                                            │
//	   │ (shed / placement retry)             node dies (lease expires)
//	   │                                            ▼
//	   └───────────place on new node◀────────── Migrating ──retries
//	                                                        exhausted──▶ DeadLetter
type ReplicaState uint8

const (
	// Pending: admitted (or shed) and waiting for a placement slot.
	Pending ReplicaState = iota
	// Placed: hosted by a node, warming for one interval before load.
	Placed
	// Running: serving load under the node's controller.
	Running
	// Migrating: its node's lease expired; waiting for failover.
	Migrating
	// DeadLetter: placement retries exhausted; terminal, with Reason set.
	DeadLetter

	numReplicaStates = int(DeadLetter) + 1
)

// String returns the lower-case state name.
func (s ReplicaState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Placed:
		return "placed"
	case Running:
		return "running"
	case Migrating:
		return "migrating"
	case DeadLetter:
		return "dead-letter"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether the state can never be left.
func (s ReplicaState) Terminal() bool { return s == DeadLetter }

// Replica is one managed service replica: its spec, placement position,
// retry/backoff bookkeeping and the QoS accounting it carries across
// migrations. All fields are owned by the coordinator; readers get
// copies.
type Replica struct {
	ID   int
	Spec ReplicaSpec

	State ReplicaState
	// Node is the hosting node while Placed/Running (-1 otherwise);
	// LastNode the node it was last hosted on (-1 before first
	// placement), which static partitioning and the migration counter
	// compare against.
	Node     int
	LastNode int
	// Shed marks a replica suspended by the degradation policy; a shed
	// replica is never placed until capacity returns.
	Shed bool
	// Retries counts failed placement attempts since the replica last
	// ran; NextAttempt is the first interval the next attempt may run
	// (deterministic exponential backoff).
	Retries     int
	NextAttempt int
	// Reason records why the replica dead-lettered, or the most recent
	// placement failure / shed cause.
	Reason string

	// AdmitStep is the coordinator interval the replica was admitted at;
	// DeadStep the interval it dead-lettered (-1 while live).
	AdmitStep int
	DeadStep  int

	// Carried accounting, preserved across every migration: every
	// interval a live replica exists it accrues exactly one tick, either
	// Intervals (hosted on a stepped node) or DarkIntervals (pending,
	// migrating, shed, or on a node that is down). Violations counts
	// intervals over the QoS target; dark intervals always count as
	// violations. Migrations counts failovers onto a new node;
	// WarmRestores the subset restored from a snapshot.
	Intervals     int
	Violations    int
	DarkIntervals int
	Migrations    int
	WarmRestores  int

	seed int64
}

// Ticks returns the number of accounted intervals. For every replica
// the invariant Ticks == (DeadStep or now) − AdmitStep holds; the chaos
// harness asserts it at every sweep end.
func (r *Replica) Ticks() int { return r.Intervals + r.DarkIntervals }

// shedRank orders replicas for the degradation policy: smaller ranks
// shed first. Batch replicas shed before any LC replica; within a class
// lower priorities shed first and younger replicas break ties.
func shedRank(a, b *Replica) bool {
	if a.Spec.Class != b.Spec.Class {
		return a.Spec.Class == Batch
	}
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority < b.Spec.Priority
	}
	return a.ID > b.ID
}

// placeRank orders replicas for placement: the most important first.
// LC before batch, higher priorities first, older replicas break ties.
func placeRank(a, b *Replica) bool {
	if a.Spec.Class != b.Spec.Class {
		return a.Spec.Class == LC
	}
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.ID < b.ID
}
