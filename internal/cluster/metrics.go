package cluster

import (
	"fmt"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/metrics"
)

// describeMetrics declares every exported family up front so the scrape
// layout is fixed for the life of the coordinator.
func (c *Coordinator) describeMetrics() {
	m := c.metrics
	m.Describe("twig_cluster_intervals_total", "counter", "Coordinator intervals executed.")
	m.Describe("twig_cluster_nodes", "gauge", "Fleet nodes by machine state (up, crashed, partitioned, fenced).")
	m.Describe("twig_cluster_replicas", "gauge", "Replicas by placement state.")
	m.Describe("twig_cluster_replicas_shed", "gauge", "Replicas currently suspended by the degradation policy.")
	m.Describe("twig_cluster_lease_expiries_total", "counter", "Node leases the coordinator declared expired.")
	m.Describe("twig_cluster_node_restarts_detected_total", "counter", "Node restarts detected by heartbeat incarnation mismatch.")
	m.Describe("twig_cluster_failovers_total", "counter", "Replica failovers, by mode (warm snapshot restore or cold restart).")
	m.Describe("twig_cluster_placement_failures_total", "counter", "Placement attempts that found no reachable node with capacity.")
	m.Describe("twig_cluster_dead_letters_total", "counter", "Replicas terminally dead-lettered after exhausting placement retries.")
	m.Describe("twig_cluster_shed_episodes_total", "counter", "Degradation-policy shed decisions.")
	m.Describe("twig_cluster_shed_intervals_total", "counter", "Intervals replicas spent shed, by QoS class.")
	m.Describe("twig_cluster_decide_panics_total", "counter", "Node controller panics converted into the last valid assignment.")
	m.Describe("twig_cluster_step_errors_total", "counter", "Node assignments the simulator rejected.")
	m.Describe("twig_cluster_snapshots_total", "counter", "Warm failover snapshots cut.")
	m.Describe("twig_cluster_node_events_total", "counter", "Whole-node fault events injected.")
	m.Describe("twig_cluster_energy_joules", "gauge", "Cumulative fleet energy.")
	m.Describe("twig_cluster_kernel_info", "gauge", "GEMM dispatch provenance: selected microkernel, detected CPU features and fast-math state (value is always 1).")
	m.Set("twig_cluster_kernel_info", metrics.Labels{
		"kernel":    mat.KernelName(),
		"cpu":       mat.CPUFeatures(),
		"fast_math": fmt.Sprintf("%v", mat.FastMath()),
	}, 1)
}

var replicaStateNames = func() []string {
	names := make([]string, numReplicaStates)
	for s := 0; s < numReplicaStates; s++ {
		names[s] = ReplicaState(s).String()
	}
	return names
}()

// updateMetrics refreshes the registry after one interval (caller holds
// the coordinator lock). Totals backed by the checkpointed counters are
// Set from them, which keeps scrape values exact across a fleet
// restore.
func (c *Coordinator) updateMetrics() {
	m := c.metrics
	// Set rather than Add: updateMetrics runs before the clock bump, so
	// c.clock+1 intervals have completed, and a restored coordinator
	// reports the true total rather than only post-restore steps.
	m.Set("twig_cluster_intervals_total", nil, float64(c.clock+1))

	states := map[string]int{"up": 0, "crashed": 0, "partitioned": 0, "fenced": 0}
	for _, n := range c.nodes {
		states[n.machineState()]++
	}
	for _, name := range []string{"up", "crashed", "partitioned", "fenced"} {
		m.Set("twig_cluster_nodes", metrics.Labels{"state": name}, float64(states[name]))
	}

	byState := make([]int, numReplicaStates)
	shed := 0
	for _, r := range c.replicas {
		byState[r.State]++
		if r.Shed {
			shed++
		}
	}
	for s, name := range replicaStateNames {
		m.Set("twig_cluster_replicas", metrics.Labels{"state": name}, float64(byState[s]))
	}
	m.Set("twig_cluster_replicas_shed", nil, float64(shed))

	m.Set("twig_cluster_lease_expiries_total", nil, float64(c.ctr.LeaseExpiries))
	m.Set("twig_cluster_node_restarts_detected_total", nil, float64(c.ctr.RestartsSeen))
	m.Set("twig_cluster_failovers_total", metrics.Labels{"mode": "warm"}, float64(c.ctr.WarmRestores))
	m.Set("twig_cluster_failovers_total", metrics.Labels{"mode": "cold"}, float64(c.ctr.ColdRestores))
	m.Set("twig_cluster_placement_failures_total", nil, float64(c.ctr.PlacementFails))
	m.Set("twig_cluster_dead_letters_total", nil, float64(c.ctr.DeadLetters))
	m.Set("twig_cluster_shed_episodes_total", nil, float64(c.ctr.ShedEpisodes))
	m.Set("twig_cluster_shed_intervals_total", metrics.Labels{"class": "lc"}, float64(c.ctr.ShedLC))
	m.Set("twig_cluster_shed_intervals_total", metrics.Labels{"class": "batch"}, float64(c.ctr.ShedBatch))
	m.Set("twig_cluster_decide_panics_total", nil, float64(c.ctr.DecidePanics))
	m.Set("twig_cluster_step_errors_total", nil, float64(c.ctr.StepErrors))
	m.Set("twig_cluster_snapshots_total", nil, float64(c.ctr.SnapshotsTaken))
	m.Set("twig_cluster_node_events_total", nil, float64(c.ctr.EventsInjected))
	m.Set("twig_cluster_energy_joules", nil, c.energyJ)
}

// machineState classifies a node for the node-state gauge, most severe
// condition first.
func (n *node) machineState() string {
	switch {
	case !n.alive:
		return "crashed"
	case n.fenced:
		return "fenced"
	case n.partitioned:
		return "partitioned"
	default:
		return "up"
	}
}
