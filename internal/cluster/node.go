package cluster

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/service"
)

// node is one fleet member: a simulated server running the per-node
// Twig control loop, plus the lease bookkeeping both sides of the
// heartbeat protocol act on. A node with no replicas holds no world
// (srv == nil); the world is built at first placement and dropped on
// crash, self-fence or last eviction.
type node struct {
	id int

	// alive is the machine's power state: false for the duration of an
	// injected NodeCrash. partitioned means the node runs but no
	// heartbeat crosses in either direction. fenced means the node
	// self-fenced after its lease expired mid-partition: it dropped its
	// world and serves nothing until it rejoins.
	alive       bool
	partitioned bool
	fenced      bool

	// coordLive is the coordinator's view: true while the node's lease
	// is valid. lastSeen is the last interval the coordinator received a
	// heartbeat; lastHeard the last interval the node heard the
	// coordinator. Both sides fence at lease expiry using the same TTL,
	// so they agree on the fencing interval and no replica is ever
	// served by two nodes.
	coordLive bool
	lastSeen  int
	lastHeard int

	// rejoins counts crash/fence recoveries; it perturbs the node seed
	// so a rejoined node's measurement streams do not replay.
	rejoins int
	// gen counts controller rebuilds, seeding fresh learners
	// deterministically on every membership change.
	gen int

	// replicas holds the hosted replica IDs in simulator index order.
	replicas []int
	// hadWorld is only meaningful during RestoreFleet: whether the
	// checkpoint recorded a running world for this node.
	hadWorld bool

	srv        *sim.Server
	controller ctrl.Controller
	comps      []checkpoint.Checkpointable
	tracker    *ctrl.ObservationTracker
	obs        ctrl.Observation
	lastValid  sim.Assignment

	// snapshot is the latest warm in-memory checkpoint of the node's
	// world and controller stack, the source for warm failover;
	// snapReplicas the replica IDs it covers, snapClock the coordinator
	// interval it was cut at.
	snapshot     []byte
	snapReplicas []int
	snapClock    int
}

// seedFor derives the node's base seed: distinct per node and per
// rejoin so no two worlds ever share a measurement stream.
func (c *Coordinator) seedFor(n *node) int64 {
	return c.cfg.Seed + int64(n.id)*10007 + int64(n.rejoins)*379
}

// specFor builds the simulator spec for one replica. The service seed
// is derived from the replica ID alone, so a migrated replica's fresh
// instance draws the same request stream wherever it lands.
func (c *Coordinator) specFor(r *Replica) sim.ServiceSpec {
	return sim.ServiceSpec{
		Profile:     service.MustLookup(r.Spec.Service),
		QoSTargetMs: r.Spec.QoSTargetMs,
		Seed:        r.seed,
	}
}

// buildWorld constructs a fresh world on n hosting the given replicas
// (cold instances) and a fresh controller stack. A heterogeneous fleet
// (Config.NodeSims) gives the node its own SKU; the measurement seed is
// always the node's derived one.
func (c *Coordinator) buildWorld(n *node, ids []int) {
	cfg := sim.DefaultConfig()
	if len(c.cfg.NodeSims) > 0 {
		cfg = c.cfg.NodeSims[n.id]
	}
	cfg.MeasurementSeed = c.seedFor(n)
	specs := make([]sim.ServiceSpec, len(ids))
	for i, id := range ids {
		specs[i] = c.specFor(c.replicas[id])
	}
	n.replicas = append([]int(nil), ids...)
	n.srv = sim.NewServer(cfg, specs)
	c.buildController(n)
}

// buildController rebuilds n's controller stack for its current
// membership at the next generation. Mirrors the daemon engine: a
// membership change means a fresh learner (the agent's network shape is
// fixed by the service count), seeded deterministically by the
// generation; the simulator state is untouched.
func (c *Coordinator) buildController(n *node) {
	closeController(n.controller)
	n.gen++
	specs := make([]ReplicaSpec, len(n.replicas))
	for i, id := range n.replicas {
		specs[i] = c.replicas[id].Spec
	}
	n.controller, n.comps = c.cfg.Factory(n.srv, specs, c.seedFor(n)+int64(n.gen)*7919)
	n.tracker = &ctrl.ObservationTracker{}
	n.obs = ctrl.InitialObservation(n.srv)
	n.lastValid = safeAssignment(n.srv)
}

// dropWorld discards n's world and controller stack (crash or fence).
// The hosted replica IDs are left on the node: the coordinator only
// reassigns them once the lease expires.
func (n *node) dropWorld() {
	closeController(n.controller)
	n.srv = nil
	n.controller = nil
	n.comps = nil
	n.tracker = nil
	n.obs = ctrl.Observation{}
	n.lastValid = sim.Assignment{}
}

// evict removes the replica at simulator index idx from n's world.
func (c *Coordinator) evict(n *node, idx int) error {
	if err := n.srv.RemoveService(idx); err != nil {
		return err
	}
	n.replicas = append(n.replicas[:idx], n.replicas[idx+1:]...)
	if len(n.replicas) == 0 {
		n.dropWorld()
		return nil
	}
	c.buildController(n)
	return nil
}

// place adds replica r to n's world (cold instance).
func (c *Coordinator) place(n *node, r *Replica) error {
	if n.srv == nil {
		c.buildWorld(n, []int{r.ID})
		return nil
	}
	if err := n.srv.AddService(c.specFor(r)); err != nil {
		return err
	}
	n.replicas = append(n.replicas, r.ID)
	c.buildController(n)
	return nil
}

// nodeLoopState checkpoints the per-node control-loop position that
// travels with the world in snapshots and fleet checkpoints: the
// pending observation, the last valid assignment and the tracker's
// queue memory. It reads and writes the node directly, so decoding a
// section restores the loop position in place.
type nodeLoopState struct {
	n *node
}

// CheckpointName implements checkpoint.Checkpointable.
func (s *nodeLoopState) CheckpointName() string { return "cluster-node-loop" }

// EncodeState implements checkpoint.Checkpointable.
func (s *nodeLoopState) EncodeState(e *checkpoint.Encoder) {
	ctrl.EncodeObservation(e, s.n.obs)
	sim.EncodeAssignment(e, s.n.lastValid)
	s.n.tracker.EncodeState(e)
}

// DecodeState implements checkpoint.Checkpointable.
func (s *nodeLoopState) DecodeState(d *checkpoint.Decoder) error {
	obs, err := ctrl.DecodeObservation(d)
	if err != nil {
		return err
	}
	s.n.obs = obs
	asg, err := sim.DecodeAssignment(d)
	if err != nil {
		return err
	}
	s.n.lastValid = asg
	if s.n.tracker == nil {
		s.n.tracker = &ctrl.ObservationTracker{}
	}
	return s.n.tracker.DecodeState(d)
}

// worldComponents lists every checkpointable of n's running world in
// snapshot section order: simulator, controller components, loop state.
func (n *node) worldComponents() []checkpoint.Checkpointable {
	comps := []checkpoint.Checkpointable{n.srv}
	comps = append(comps, n.comps...)
	comps = append(comps, &nodeLoopState{n: n})
	return comps
}

// takeSnapshot cuts n's in-memory warm-failover container.
func (c *Coordinator) takeSnapshot(n *node) {
	n.snapshot = checkpoint.Marshal(n.worldComponents()...)
	n.snapReplicas = append([]int(nil), n.replicas...)
	n.snapClock = c.clock
}

// restoreSnapshot rebuilds the snapshot's world group onto n (which
// must be empty): same membership shape, then every component's state
// overwritten from the container — weights, optimiser moments, replay,
// RNG positions — so learning survives the move.
func (c *Coordinator) restoreSnapshot(n *node, snapshot []byte, ids []int) error {
	if n.srv != nil {
		return fmt.Errorf("cluster: node %d is not empty", n.id)
	}
	c.buildWorld(n, ids)
	if err := checkpoint.Unmarshal(snapshot, n.worldComponents()...); err != nil {
		n.replicas = nil
		n.dropWorld()
		return err
	}
	return nil
}

func safeDecide(ctl ctrl.Controller, obs ctrl.Observation) (asg sim.Assignment, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return ctl.Decide(obs), false
}

// safePrepare runs PrepareDecide with the same panic conversion as
// safeDecide; a false return routes the node to its fallback mapping.
func safePrepare(pc ctrl.PhasedController, obs ctrl.Observation) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	pc.PrepareDecide(obs)
	return true
}

// safeFinish collects a phased controller's assignment after the fleet
// flush, converting a panic into the fallback path.
func safeFinish(pc ctrl.PhasedController) (asg sim.Assignment, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return pc.FinishDecide(), false
}

// closeController releases shared resources (pooled arena slots) held
// by a controller stack being discarded.
func closeController(ctl ctrl.Controller) {
	if cl, ok := ctl.(ctrl.Closer); ok {
		cl.Close()
	}
}

// safeAssignment is the conservative fallback mapping: every service on
// every managed core at the node's maximum DVFS setting.
func safeAssignment(srv *sim.Server) sim.Assignment {
	lo, hi := srv.FreqRange()
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, srv.NumServices()),
		IdleFreqGHz: lo,
	}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{Cores: srv.ManagedCores(), FreqGHz: hi}
	}
	return asg
}
