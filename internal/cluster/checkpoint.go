package cluster

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// clusterState is the coordinator's own checkpoint section: the
// interval clock, the replica table with its carried accounting, every
// node's lease/incarnation position and warm snapshot, the reserved
// estates, the injector's schedule position and the cumulative
// counters. Together with one renamed world section group per hosted
// node it pins down the whole fleet; see RestoreFleet.
type clusterState struct {
	c *Coordinator
}

// CheckpointName implements checkpoint.Checkpointable.
func (s *clusterState) CheckpointName() string { return "twig-cluster" }

// EncodeState implements checkpoint.Checkpointable.
func (s *clusterState) EncodeState(e *checkpoint.Encoder) {
	c := s.c
	e.Int(len(c.nodes))
	e.Bool(c.cfg.PinReplicas)
	e.Int(c.clock)
	e.Int(c.admitted)
	e.F64(c.energyJ)

	e.Int(c.ctr.LeaseExpiries)
	e.Int(c.ctr.RestartsSeen)
	e.Int(c.ctr.WarmRestores)
	e.Int(c.ctr.ColdRestores)
	e.Int(c.ctr.Migrations)
	e.Int(c.ctr.DeadLetters)
	e.Int(c.ctr.PlacementFails)
	e.Int(c.ctr.ShedEpisodes)
	e.Int(c.ctr.ShedLC)
	e.Int(c.ctr.ShedBatch)
	e.Int(c.ctr.DecidePanics)
	e.Int(c.ctr.StepErrors)
	e.Int(c.ctr.EventsInjected)
	e.Int(c.ctr.SnapshotsTaken)

	c.inj.EncodeState(e)

	e.Int(len(c.replicas))
	for _, r := range c.replicas {
		e.Int(r.ID)
		e.String(r.Spec.Service)
		e.F64(r.Spec.LoadFrac)
		e.F64(r.Spec.QoSTargetMs)
		e.Int(int(r.Spec.Class))
		e.Int(r.Spec.Priority)
		e.Int(int(r.State))
		e.Int(r.Node)
		e.Int(r.LastNode)
		e.Bool(r.Shed)
		e.Int(r.Retries)
		e.Int(r.NextAttempt)
		e.String(r.Reason)
		e.Int(r.AdmitStep)
		e.Int(r.DeadStep)
		e.Int(r.Intervals)
		e.Int(r.Violations)
		e.Int(r.DarkIntervals)
		e.Int(r.Migrations)
		e.Int(r.WarmRestores)
		e.I64(r.seed)
	}

	for i, n := range c.nodes {
		e.Bool(n.alive)
		e.Bool(n.partitioned)
		e.Bool(n.fenced)
		e.Bool(n.coordLive)
		e.Int(n.lastSeen)
		e.Int(n.lastHeard)
		e.Int(n.rejoins)
		e.Int(c.knownInc[i])
		e.Int(n.gen)
		e.Ints(n.replicas)
		e.Bool(n.srv != nil)
		e.Blob(n.snapshot)
		e.Ints(n.snapReplicas)
		e.Int(n.snapClock)
	}

	e.Int(len(c.estates))
	for _, es := range c.estates {
		e.Ints(es.ids)
		e.Blob(es.snapshot)
		e.Int(es.expires)
	}

	e.Int(len(c.events))
	for _, ev := range c.events {
		e.String(ev)
	}
}

// DecodeState implements checkpoint.Checkpointable. The coordinator
// must be freshly constructed with the same Config the checkpoint was
// taken under; node worlds are rebuilt afterwards by RestoreFleet.
func (s *clusterState) DecodeState(d *checkpoint.Decoder) (err error) {
	c := s.c
	if got := d.Int(); got != len(c.nodes) {
		if e := d.Err(); e != nil {
			return e
		}
		return fmt.Errorf("cluster: checkpoint covers %d nodes, config has %d", got, len(c.nodes))
	}
	if got := d.Bool(); got != c.cfg.PinReplicas {
		if e := d.Err(); e != nil {
			return e
		}
		return fmt.Errorf("cluster: checkpoint was taken with pinned=%v, configured pinned=%v", got, c.cfg.PinReplicas)
	}
	c.clock = d.Int()
	c.admitted = d.Int()
	c.energyJ = d.F64()

	c.ctr.LeaseExpiries = d.Int()
	c.ctr.RestartsSeen = d.Int()
	c.ctr.WarmRestores = d.Int()
	c.ctr.ColdRestores = d.Int()
	c.ctr.Migrations = d.Int()
	c.ctr.DeadLetters = d.Int()
	c.ctr.PlacementFails = d.Int()
	c.ctr.ShedEpisodes = d.Int()
	c.ctr.ShedLC = d.Int()
	c.ctr.ShedBatch = d.Int()
	c.ctr.DecidePanics = d.Int()
	c.ctr.StepErrors = d.Int()
	c.ctr.EventsInjected = d.Int()
	c.ctr.SnapshotsTaken = d.Int()

	if err := c.inj.DecodeState(d); err != nil {
		return err
	}

	nr := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nr < 0 || nr > d.Remaining() {
		return fmt.Errorf("cluster: checkpoint claims %d replicas", nr)
	}
	c.replicas = make([]*Replica, nr)
	for i := range c.replicas {
		r := &Replica{}
		r.ID = d.Int()
		r.Spec.Service = d.String()
		r.Spec.LoadFrac = d.F64()
		r.Spec.QoSTargetMs = d.F64()
		r.Spec.Class = Class(d.Int())
		r.Spec.Priority = d.Int()
		st := d.Int()
		r.State = ReplicaState(st)
		r.Node = d.Int()
		r.LastNode = d.Int()
		r.Shed = d.Bool()
		r.Retries = d.Int()
		r.NextAttempt = d.Int()
		r.Reason = d.String()
		r.AdmitStep = d.Int()
		r.DeadStep = d.Int()
		r.Intervals = d.Int()
		r.Violations = d.Int()
		r.DarkIntervals = d.Int()
		r.Migrations = d.Int()
		r.WarmRestores = d.Int()
		r.seed = d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		if r.ID != i {
			return fmt.Errorf("cluster: replica %d stored at index %d", r.ID, i)
		}
		if st < 0 || st >= numReplicaStates {
			return fmt.Errorf("cluster: replica %d has unknown state %d", r.ID, st)
		}
		c.replicas[i] = r
	}

	for i, n := range c.nodes {
		n.alive = d.Bool()
		n.partitioned = d.Bool()
		n.fenced = d.Bool()
		n.coordLive = d.Bool()
		n.lastSeen = d.Int()
		n.lastHeard = d.Int()
		n.rejoins = d.Int()
		c.knownInc[i] = d.Int()
		n.gen = d.Int()
		n.replicas = d.Ints()
		n.hadWorld = d.Bool()
		n.snapshot = d.Blob()
		n.snapReplicas = d.Ints()
		n.snapClock = d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		for _, id := range n.replicas {
			if id < 0 || id >= nr {
				return fmt.Errorf("cluster: node %d hosts unknown replica %d", i, id)
			}
		}
	}

	ne := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if ne < 0 || ne > d.Remaining() {
		return fmt.Errorf("cluster: checkpoint claims %d estates", ne)
	}
	c.estates = nil
	for i := 0; i < ne; i++ {
		es := estate{ids: d.Ints(), snapshot: d.Blob(), expires: d.Int()}
		if err := d.Err(); err != nil {
			return err
		}
		c.estates = append(c.estates, es)
	}

	nev := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nev < 0 || nev > d.Remaining() {
		return fmt.Errorf("cluster: checkpoint claims %d log lines", nev)
	}
	c.events = nil
	for i := 0; i < nev; i++ {
		c.events = append(c.events, d.String())
	}
	return d.Err()
}

// worldSectionComponents returns n's world components renamed with the
// node prefix, the section group one hosted node contributes to the
// fleet container.
func (c *Coordinator) worldSectionComponents(n *node) []checkpoint.Checkpointable {
	var out []checkpoint.Checkpointable
	for _, comp := range n.worldComponents() {
		out = append(out, checkpoint.Renamed(comp, fmt.Sprintf("node%d-%s", n.id, comp.CheckpointName())))
	}
	return out
}

// marshalLocked encodes the full fleet (caller holds the lock): the
// cluster section plus one renamed world section group per hosted node.
func (c *Coordinator) marshalLocked() []byte {
	comps := []checkpoint.Checkpointable{&clusterState{c: c}}
	for _, n := range c.nodes {
		if n.srv != nil {
			comps = append(comps, c.worldSectionComponents(n)...)
		}
	}
	return checkpoint.Marshal(comps...)
}

// Marshal encodes the full fleet state into one crash-consistent
// container.
func (c *Coordinator) Marshal() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.marshalLocked()
}

// CheckpointNow synchronously cuts a fleet checkpoint at the current
// boundary and waits for it to reach disk (no-op without a store).
func (c *Coordinator) CheckpointNow() error {
	if c.writer == nil {
		return nil
	}
	c.mu.Lock()
	data := c.marshalLocked()
	seq := uint64(c.clock)
	c.mu.Unlock()
	c.writer.Submit(seq, data)
	return c.writer.Flush()
}

// FlushCheckpoints waits for every submitted fleet checkpoint to reach
// disk.
func (c *Coordinator) FlushCheckpoints() error {
	if c.writer == nil {
		return nil
	}
	return c.writer.Flush()
}

// RestoreFleet rebuilds a coordinator from the newest valid fleet
// checkpoint in cfg.Store. The restore is two-phase, mirroring the
// daemon's: the cluster section alone is decoded first to learn the
// replica table and each node's membership, then a world of the
// checkpointed shape is rebuilt on every hosted node and its renamed
// sections are decoded into it. Because every component's DecodeState
// fully overwrites its random streams and learning state, the resumed
// fleet trajectory is bit-identical to an uninterrupted run.
func RestoreFleet(cfg Config) (*Coordinator, uint64, error) {
	if cfg.Store == nil {
		return nil, 0, fmt.Errorf("cluster: no checkpoint store configured")
	}
	c, err := New(cfg)
	if err != nil {
		return nil, 0, err
	}
	seq, data, err := cfg.Store.ReadLatest()
	if err != nil {
		return nil, 0, err
	}
	if err := checkpoint.Unmarshal(data, &clusterState{c: c}); err != nil {
		return nil, 0, fmt.Errorf("cluster: reading fleet checkpoint %d: %w", seq, err)
	}
	var comps []checkpoint.Checkpointable
	for _, n := range c.nodes {
		if !n.hadWorld {
			continue
		}
		gen := n.gen
		ids := append([]int(nil), n.replicas...)
		c.buildWorld(n, ids)
		n.gen = gen // buildController bumped it; keep future rebuilds aligned
		comps = append(comps, c.worldSectionComponents(n)...)
	}
	if len(comps) > 0 {
		if err := checkpoint.Unmarshal(data, comps...); err != nil {
			return nil, 0, fmt.Errorf("cluster: restoring fleet checkpoint %d: %w", seq, err)
		}
	}
	return c, seq, nil
}
