package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// testCtl is a cheap deterministic controller: every service on every
// managed core at max frequency. It counts Decide calls and checkpoints
// the count, so warm-failover tests can prove controller state survived
// a node loss.
type testCtl struct {
	srv   *sim.Server
	steps int
}

func (t *testCtl) Name() string                            { return "test-static" }
func (t *testCtl) Decide(ctrl.Observation) sim.Assignment  { t.steps++; return safeAssignment(t.srv) }
func (t *testCtl) CheckpointName() string                  { return "test-ctl" }
func (t *testCtl) EncodeState(e *checkpoint.Encoder)       { e.Int(t.steps) }
func (t *testCtl) DecodeState(d *checkpoint.Decoder) error { t.steps = d.Int(); return d.Err() }

func testFactory(srv *sim.Server, _ []ReplicaSpec, _ int64) (ctrl.Controller, []checkpoint.Checkpointable) {
	ctl := &testCtl{srv: srv}
	return ctl, []checkpoint.Checkpointable{ctl}
}

// lcSpec builds an LC replica spec with a target generous enough that
// violations come only from dark intervals, keeping accounting exact.
func lcSpec(servicename string, prio int) ReplicaSpec {
	return ReplicaSpec{Service: servicename, LoadFrac: 0.3, QoSTargetMs: 1000, Class: LC, Priority: prio}
}

func batchSpec(servicename string) ReplicaSpec {
	return ReplicaSpec{Service: servicename, LoadFrac: 0.3, QoSTargetMs: 1000, Class: Batch, Priority: 5}
}

func mustAdmit(t *testing.T, c *Coordinator, specs ...ReplicaSpec) {
	t.Helper()
	for i, sp := range specs {
		id, err := c.Admit(sp)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("admit %d: got ID %d", i, id)
		}
	}
}

func stepN(c *Coordinator, n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// checkTicks asserts the carried-accounting invariant for every replica:
// exactly one tick per interval alive, Ticks == (DeadStep or now) − AdmitStep.
func checkTicks(t *testing.T, c *Coordinator) {
	t.Helper()
	now := c.Clock()
	for _, r := range c.Replicas() {
		end := now
		if r.DeadStep >= 0 {
			end = r.DeadStep
		}
		if got, want := r.Ticks(), end-r.AdmitStep; got != want {
			t.Errorf("replica %d: Ticks=%d (up %d dark %d), want %d", r.ID, got, r.Intervals, r.DarkIntervals, want)
		}
		if r.Violations < r.DarkIntervals || r.Violations > r.Ticks() {
			t.Errorf("replica %d: violations %d outside [dark %d, ticks %d]", r.ID, r.Violations, r.DarkIntervals, r.Ticks())
		}
	}
}

func TestAdmissionValidation(t *testing.T) {
	c, err := New(Config{Nodes: 1, Factory: testFactory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(ReplicaSpec{Service: "nope", LoadFrac: 0.3, QoSTargetMs: 5}); err == nil {
		t.Error("unknown service admitted")
	}
	if _, err := c.Admit(ReplicaSpec{Service: "memcached", LoadFrac: 0, QoSTargetMs: 5}); err == nil {
		t.Error("zero load admitted")
	}
	if _, err := c.Admit(ReplicaSpec{Service: "memcached", LoadFrac: 0.3, QoSTargetMs: -1}); err == nil {
		t.Error("negative QoS target admitted")
	}
	if _, err := c.Admit(lcSpec("memcached", 0)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSteadyStateFleet(t *testing.T) {
	c, err := New(Config{Nodes: 3, NodeCapacity: 2, Seed: 42, Factory: testFactory})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 1), lcSpec("xapian", 0), batchSpec("masstree"), lcSpec("img-dnn", 2))
	stepN(c, 30)

	s := c.Summary()
	if s.Time != 30 || s.EnergyJ <= 0 {
		t.Fatalf("summary time/energy: %d %.1f", s.Time, s.EnergyJ)
	}
	hosted := 0
	for _, n := range s.Nodes {
		if n.State != "up" || !n.Lease {
			t.Errorf("node %d not healthy: %+v", n.ID, n)
		}
		if len(n.Replicas) > 2 {
			t.Errorf("node %d over capacity: %v", n.ID, n.Replicas)
		}
		hosted += len(n.Replicas)
	}
	if hosted != 4 {
		t.Fatalf("hosted %d replicas, want 4", hosted)
	}
	for _, r := range s.Replicas {
		if r.State != "running" {
			t.Errorf("replica %d state %s", r.ID, r.State)
		}
		if r.Migrations != 0 || r.DarkIntervals != 1 { // one warm-up interval at placement
			t.Errorf("replica %d: migrations %d dark %d", r.ID, r.Migrations, r.DarkIntervals)
		}
	}
	if s.LeaseExpiries != 0 || s.DeadLetters != 0 || s.ShedEpisodes != 0 {
		t.Errorf("unexpected fault counters in steady state: %+v", s)
	}
	checkTicks(t, c)

	txt := s.StatusText()
	for _, want := range []string{"fleet t=30", "node 0", "replica 3", "running"} {
		if !strings.Contains(txt, want) {
			t.Errorf("status text missing %q:\n%s", want, txt)
		}
	}
	scrape := c.Metrics().Render()
	for _, want := range []string{
		`twig_cluster_intervals_total 30`,
		`twig_cluster_nodes{state="up"} 3`,
		`twig_cluster_replicas{state="running"} 4`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestWarmFailoverPreservesControllerState(t *testing.T) {
	// Node 0 crashes at t=20. Its replica group (replica 0 alone) was
	// snapshotted at t=19; node 2 is empty, so at lease expiry (t=21)
	// the estate warm-restores there — including the controller's
	// Decide counter, proving learning state survived the node loss.
	c, err := New(Config{
		Nodes: 3, NodeCapacity: 2, Seed: 7, Factory: testFactory,
		LeaseTTL: 2, SnapshotEvery: 5,
		Scenario: faults.ClusterScenario{Name: "one-crash", CrashPeriodS: 20, CrashOfflineS: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 0))
	stepN(c, 30)

	r0 := c.Replicas()[0]
	if r0.State != Running || r0.Node != 2 {
		t.Fatalf("replica 0: state %v node %d, want running on node 2", r0.State, r0.Node)
	}
	if r0.Migrations != 1 || r0.WarmRestores != 1 {
		t.Fatalf("replica 0: migrations %d warm %d, want 1/1", r0.Migrations, r0.WarmRestores)
	}
	// The snapshot carried 20 Decide calls (t=0..19); the restored node
	// decides t=21..29. A cold restart would show only 9.
	ctl := c.nodes[2].comps[0].(*testCtl)
	if ctl.steps != 29 {
		t.Fatalf("restored controller Decide count = %d, want 29 (snapshot state lost?)", ctl.steps)
	}
	if c.ctr.WarmRestores != 1 || c.ctr.LeaseExpiries != 1 {
		t.Fatalf("counters: warm %d expiries %d", c.ctr.WarmRestores, c.ctr.LeaseExpiries)
	}
	checkTicks(t, c)
}

func TestPartitionFencesAndColdFailover(t *testing.T) {
	// Node 1 is partitioned t=10..15. Coordinator lease expiry and node
	// self-fence land in the same interval (t=11), so the replica is
	// never served by two nodes; node 0 is busy, so after the estate
	// grace lapses the replica restarts cold on node 0 at t=15.
	c, err := New(Config{
		Nodes: 2, NodeCapacity: 2, Seed: 11, Factory: testFactory,
		LeaseTTL: 2, SnapshotEvery: 5, EstateGraceS: 4,
		Scenario: faults.ClusterScenario{Name: "one-partition", PartitionPeriodS: 10, PartitionOfflineS: 6, QuietAfterS: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 0))
	for c.Clock() < 12 {
		c.Step()
	}
	if n := c.nodes[1]; !n.fenced || n.srv != nil {
		t.Fatalf("node 1 not fenced after TTL without coordinator (fenced=%v srv=%v)", n.fenced, n.srv != nil)
	}
	if got := c.Replicas()[1].State; got != Migrating {
		t.Fatalf("replica 1 state %v after lease expiry, want migrating", got)
	}
	stepN(c, 19-c.Clock())

	r1 := c.Replicas()[1]
	if r1.State != Running || r1.Node != 0 {
		t.Fatalf("replica 1: state %v node %d, want running on node 0", r1.State, r1.Node)
	}
	if r1.Migrations != 1 || r1.WarmRestores != 0 {
		t.Fatalf("replica 1: migrations %d warm %d, want cold failover", r1.Migrations, r1.WarmRestores)
	}
	// Served t=0..10 except the warm-up (t=0), dark t=11..15 while
	// migrating through the estate grace, served again t=16..18.
	if r1.DarkIntervals != 6 {
		t.Fatalf("replica 1 dark intervals = %d, want 6", r1.DarkIntervals)
	}
	if c.ctr.LeaseExpiries != 1 || c.ctr.ColdRestores != 1 {
		t.Fatalf("counters: expiries %d cold %d", c.ctr.LeaseExpiries, c.ctr.ColdRestores)
	}
	if n := c.nodes[1]; n.fenced || !n.coordLive || len(n.replicas) != 0 {
		t.Fatalf("node 1 should have rejoined empty: fenced=%v lease=%v replicas=%v", n.fenced, n.coordLive, n.replicas)
	}
	checkTicks(t, c)
}

func TestDegradationShedsByClassThenPriority(t *testing.T) {
	// Node 0 crashes t=15..19, halving capacity: 4 live replicas over 2
	// slots. The batch replica sheds first, then the lowest-priority LC
	// replica; both are restored when the node rejoins at t=20.
	c, err := New(Config{
		Nodes: 2, NodeCapacity: 2, Seed: 5, Factory: testFactory,
		LeaseTTL: 2, SnapshotEvery: 5,
		Scenario: faults.ClusterScenario{Name: "one-crash", CrashPeriodS: 15, CrashOfflineS: 5, QuietAfterS: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c,
		lcSpec("memcached", 1), // replica 0 → node 0
		lcSpec("xapian", 0),    // replica 1 → node 1, lowest LC priority
		batchSpec("masstree"),  // replica 2 → node 0, batch
		lcSpec("img-dnn", 2),   // replica 3 → node 1
	)
	for c.Clock() < 17 {
		c.Step()
	}
	rs := c.Replicas()
	if !rs[2].Shed || !rs[1].Shed {
		t.Fatalf("want batch replica 2 and LC-prio-0 replica 1 shed; got shed flags %v %v %v %v",
			rs[0].Shed, rs[1].Shed, rs[2].Shed, rs[3].Shed)
	}
	if rs[0].Shed || rs[3].Shed {
		t.Fatalf("higher-priority LC replicas shed out of order")
	}
	// Placement ranks LC priority first, so node 0 hosted replicas 3 and
	// 1: the shed LC replica's host died (it stays migrating) while the
	// batch replica is evicted from the surviving node.
	if rs[1].State != Migrating {
		t.Errorf("shed replica 1 (host dead) should stay migrating, got %v", rs[1].State)
	}
	if rs[2].State != Pending {
		t.Errorf("shed replica 2 should be evicted to pending, got %v", rs[2].State)
	}
	stepN(c, 28-c.Clock())

	for _, r := range c.Replicas() {
		if r.State != Running || r.Shed {
			t.Errorf("replica %d not restored after capacity returned: %v shed=%v", r.ID, r.State, r.Shed)
		}
	}
	if c.ctr.ShedEpisodes != 2 {
		t.Errorf("shed episodes = %d, want 2", c.ctr.ShedEpisodes)
	}
	// Both shed replicas sat dark t=16..19.
	if c.ctr.ShedBatch != 4 || c.ctr.ShedLC != 4 {
		t.Errorf("shed intervals lc=%d batch=%d, want 4/4", c.ctr.ShedLC, c.ctr.ShedBatch)
	}
	checkTicks(t, c)
}

func TestBackoffScheduleAndDeadLetter(t *testing.T) {
	// Static partitioning pins replica 0 to node 0, which crashes at
	// t=10 and never returns. Placement attempts then follow the
	// deterministic backoff schedule t=11, 13, 17, 25 (base 2, doubling)
	// until the retry budget (3) is exhausted and the replica
	// dead-letters with the failure recorded.
	c, err := New(Config{
		Nodes: 2, NodeCapacity: 2, Seed: 3, Factory: testFactory,
		LeaseTTL: 2, BackoffBase: 2, MaxRetries: 3, PinReplicas: true,
		Scenario: faults.ClusterScenario{Name: "perma-crash", CrashPeriodS: 10, CrashOfflineS: 100, QuietAfterS: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 0))
	stepN(c, 40)

	r0 := c.Replicas()[0]
	if r0.State != DeadLetter {
		t.Fatalf("replica 0 state %v, want dead-letter", r0.State)
	}
	if r0.DeadStep != 25 {
		t.Fatalf("dead-lettered at t=%d, want 25 (backoff schedule 11,13,17,25)", r0.DeadStep)
	}
	if !strings.Contains(r0.Reason, "placement retries exhausted (4 attempts") {
		t.Fatalf("dead-letter reason %q", r0.Reason)
	}
	if r0.Ticks() != 25 { // frozen at DeadStep − AdmitStep
		t.Fatalf("dead replica ticks %d, want 25", r0.Ticks())
	}
	if c.ctr.DeadLetters != 1 || c.ctr.PlacementFails != 4 || c.ctr.WarmRestores != 0 {
		t.Fatalf("counters: dead %d fails %d warm %d", c.ctr.DeadLetters, c.ctr.PlacementFails, c.ctr.WarmRestores)
	}
	// The healthy pinned replica is untouched.
	if r1 := c.Replicas()[1]; r1.State != Running || r1.Node != 1 || r1.Migrations != 0 {
		t.Fatalf("replica 1 disturbed: %+v", r1)
	}
	// The dead letter is visible in status with its reason.
	txt := c.Summary().StatusText()
	if !strings.Contains(txt, "dead-letter") || !strings.Contains(txt, "retries exhausted") {
		t.Errorf("status text does not surface the dead letter:\n%s", txt)
	}
	checkTicks(t, c)
}

func TestRestartWithinLeaseDetectedByIncarnation(t *testing.T) {
	// Node 0 crashes at t=10 and is back at t=12 — inside the 5-interval
	// lease, so the lease never expires. The heartbeat incarnation
	// mismatch still triggers failover: without it the coordinator would
	// keep routing to a node that lost its world.
	c, err := New(Config{
		Nodes: 2, NodeCapacity: 2, Seed: 9, Factory: testFactory,
		LeaseTTL: 5,
		Scenario: faults.ClusterScenario{Name: "blip", CrashPeriodS: 10, CrashOfflineS: 2, QuietAfterS: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 0))
	stepN(c, 25)

	if c.ctr.RestartsSeen != 1 || c.ctr.LeaseExpiries != 0 {
		t.Fatalf("restarts %d expiries %d, want 1/0", c.ctr.RestartsSeen, c.ctr.LeaseExpiries)
	}
	r0 := c.Replicas()[0]
	if r0.State != Running || r0.Migrations != 1 {
		t.Fatalf("replica 0 not failed over after blip: state %v migrations %d", r0.State, r0.Migrations)
	}
	// The pre-crash snapshot lives in the coordinator, so even a blip
	// restores the replica warm.
	if r0.WarmRestores != 1 {
		t.Errorf("blip failover warm restores = %d, want 1", r0.WarmRestores)
	}
	checkTicks(t, c)
}

// chaosConfig is the shared fixture for the determinism, resume and
// invariant tests: periodic and random crashes plus partitions, then a
// quiet tail long enough for every placement (and the slowest backoff)
// to resolve.
func chaosConfig(seed int64) Config {
	return Config{
		Nodes: 3, NodeCapacity: 2, Seed: seed, Factory: testFactory,
		SnapshotEvery: 5,
		Scenario: faults.ClusterScenario{
			Name:         "test-chaos",
			CrashPeriodS: 40, CrashOfflineS: 10,
			PartitionPeriodS: 35, PartitionOfflineS: 8,
			CrashPerKs: 15, PartitionPerKs: 15, MaxOutageS: 12,
			QuietAfterS: 120,
		},
	}
}

func admitChaosMix(t *testing.T, c *Coordinator) {
	mustAdmit(t, c,
		lcSpec("memcached", 2),
		lcSpec("xapian", 0),
		batchSpec("masstree"),
		lcSpec("img-dnn", 1),
	)
}

const chaosSteps = 220

func TestChaosSweepDeterministicAndInvariantClean(t *testing.T) {
	a, err := New(chaosConfig(1234))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(chaosConfig(1234))
	if err != nil {
		t.Fatal(err)
	}
	admitChaosMix(t, a)
	admitChaosMix(t, b)
	stepN(a, chaosSteps)
	stepN(b, chaosSteps)

	// Same seed → byte-identical fleet state and identical scrape.
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("two runs with identical config/seed diverged")
	}
	if a.Metrics().Render() != b.Metrics().Render() {
		t.Fatal("metric renders diverged")
	}
	if !reflect.DeepEqual(a.Summary(), b.Summary()) {
		t.Fatal("summaries diverged")
	}

	// The sweep actually exercised the fault machinery.
	s := a.Summary()
	if s.EventsInjected == 0 || s.LeaseExpiries == 0 || s.Migrations == 0 {
		t.Fatalf("chaos sweep too quiet: %+v", s)
	}

	// End-of-sweep invariant: after the quiet tail every replica is
	// either running on a live leased node that lists it, or terminally
	// dead-lettered with the reason recorded.
	for _, r := range a.Replicas() {
		switch r.State {
		case Running:
			if r.Node < 0 {
				t.Errorf("replica %d running nowhere", r.ID)
				continue
			}
			n := a.nodes[r.Node]
			if !n.alive || !n.coordLive || n.fenced || indexOf(n.replicas, r.ID) < 0 {
				t.Errorf("replica %d running on unhealthy node %d", r.ID, r.Node)
			}
		case DeadLetter:
			if r.Reason == "" || r.DeadStep < 0 {
				t.Errorf("replica %d dead-lettered without reason", r.ID)
			}
		default:
			t.Errorf("replica %d still %v at sweep end", r.ID, r.State)
		}
		if r.Shed {
			t.Errorf("replica %d still shed at sweep end", r.ID)
		}
	}
	checkTicks(t, a)
}

func TestFleetCheckpointResumeBitIdentical(t *testing.T) {
	storeA, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := chaosConfig(99)
	cfgA.Store = storeA
	cfgA.CheckpointEvery = 50
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	admitChaosMix(t, a)
	stepN(a, chaosSteps)
	want := a.Marshal()

	// Run a second fleet to t=130, "crash" it, and restore from its
	// newest durable checkpoint (cut at t=100).
	storeB, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := chaosConfig(99)
	cfgB.Store = storeB
	cfgB.CheckpointEvery = 50
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	admitChaosMix(t, b)
	stepN(b, 130)
	if err := b.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}

	r, seq, err := RestoreFleet(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 100 || r.Clock() != 100 {
		t.Fatalf("restored at seq %d clock %d, want 100", seq, r.Clock())
	}
	stepN(r, chaosSteps-100)
	if !bytes.Equal(r.Marshal(), want) {
		t.Fatal("resumed fleet diverged from the uninterrupted run")
	}
	if r.Metrics().Render() != a.Metrics().Render() {
		t.Fatal("resumed fleet scrape diverged from the uninterrupted run")
	}
	checkTicks(t, r)
}

func TestDeadLetterSurvivesCheckpointRoundTrip(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: 2, NodeCapacity: 2, Seed: 3, Factory: testFactory,
		LeaseTTL: 2, BackoffBase: 2, MaxRetries: 3, PinReplicas: true,
		Store: store, CheckpointEvery: 40,
		Scenario: faults.ClusterScenario{Name: "perma-crash", CrashPeriodS: 10, CrashOfflineS: 100, QuietAfterS: 11},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 0))
	stepN(c, 40)
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	before := c.Replicas()[0]
	if before.State != DeadLetter {
		t.Fatalf("precondition: replica 0 is %v, want dead-letter", before.State)
	}

	r, _, err := RestoreFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := r.Replicas()[0]
	if after.State != DeadLetter || after.Reason != before.Reason || after.DeadStep != before.DeadStep {
		t.Fatalf("dead letter mutated by round trip: before %+v after %+v", before, after)
	}
	if after.Ticks() != before.Ticks() || after.Violations != before.Violations {
		t.Fatalf("accounting mutated by round trip")
	}
	if !strings.Contains(r.Summary().StatusText(), "retries exhausted") {
		t.Error("restored status text lost the dead-letter reason")
	}
}

// TestHeterogeneousFleet runs a cloud-edge-shaped fleet: node 0 on the
// paper SKU, nodes 1–2 on a capped 10-core edge SKU with a latency tax.
// Placement must land worlds on the per-node platforms and steps must
// run clean on all of them.
func TestHeterogeneousFleet(t *testing.T) {
	edge := sim.DefaultConfig()
	edge.Platform = platform.Config{Sockets: 1, CoresPerSocket: 10, MinFreqGHz: 1.2, MaxFreqGHz: 1.6}
	edge.ManagedSocket = 0
	edge.LatencyTaxMs = 1
	sims := []sim.Config{sim.DefaultConfig(), edge, edge}
	c, err := New(Config{Nodes: 3, NodeCapacity: 2, Seed: 21, Factory: testFactory, NodeSims: sims})
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, lcSpec("memcached", 0), lcSpec("xapian", 1), lcSpec("masstree", 2))
	stepN(c, 20)
	placed := 0
	for i, n := range c.nodes {
		if n.srv == nil {
			continue
		}
		placed++
		want := sims[i].Platform
		if want.Sockets == 0 {
			want = platform.DefaultConfig()
		}
		got := n.srv.Platform().Config()
		if got.Sockets != want.Sockets || got.CoresPerSocket != want.CoresPerSocket {
			t.Fatalf("node %d runs %+v, want %+v", i, got, want)
		}
		if i > 0 {
			if _, hi := n.srv.FreqRange(); hi != 1.6 {
				t.Fatalf("edge node %d DVFS ceiling %v", i, hi)
			}
		}
	}
	if placed == 0 {
		t.Fatal("no worlds placed")
	}
	for _, r := range c.Replicas() {
		if r.State != Running {
			t.Fatalf("replica %d state %v", r.ID, r.State)
		}
	}
	checkTicks(t, c)
}

func TestNodeSimsLengthValidated(t *testing.T) {
	_, err := New(Config{Nodes: 3, Factory: testFactory, NodeSims: []sim.Config{sim.DefaultConfig()}})
	if err == nil {
		t.Fatal("mismatched NodeSims length must be rejected")
	}
}
