package daemon

import "github.com/twig-sched/twig/internal/metrics"

// The metrics registry lives in internal/metrics so the cluster
// coordinator can share it without importing the daemon (which would
// cycle through internal/experiments). The daemon API keeps the old
// names as aliases.

// Labels attaches dimension values to one metric series.
type Labels = metrics.Labels

// Registry is the Prometheus-text-format metrics registry backing
// /metrics; see internal/metrics.
type Registry = metrics.Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }
