package daemon

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func TestRegistryRenderFormat(t *testing.T) {
	r := NewRegistry()
	r.Describe("a_total", "counter", "First family.")
	r.Describe("b", "gauge", "Second family.")
	r.Add("a_total", Labels{"svc": "x"}, 2)
	r.Add("a_total", Labels{"svc": "x"}, 1)
	r.Add("a_total", Labels{"svc": `we"ird\na`, "z": "1"}, 1)
	r.Set("b", nil, 2.5)
	got := r.Render()
	want := `# HELP a_total First family.
# TYPE a_total counter
a_total{svc="we\"ird\\na",z="1"} 1
a_total{svc="x"} 3
# HELP b Second family.
# TYPE b gauge
b 2.5
`
	if got != want {
		t.Errorf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if v := r.Get("a_total", Labels{"svc": "x"}); v != 3 {
		t.Errorf("Get = %v, want 3", v)
	}
	if v := r.Get("missing", nil); v != 0 {
		t.Errorf("Get on unknown family = %v, want 0", v)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.Describe("x", "counter", "")
	mustPanic(t, "redeclare", func() { r.Describe("x", "gauge", "") })
	mustPanic(t, "undescribed", func() { r.Add("y", nil, 1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestMetricsGoldenScrape pins the complete /metrics exposition of a
// deterministic 30-interval run against a committed golden file: family
// names, types, help strings, label sets, and — because the simulator,
// the learner and the injected fake clock are all seeded — the values
// themselves. Regenerate with:
//
//	go test ./internal/daemon/ -run TestMetricsGoldenScrape -update
func TestMetricsGoldenScrape(t *testing.T) {
	// A fake wall clock makes the wall-time-derived gauges (control
	// interval cost) deterministic: Step reads it exactly twice.
	now := time.Unix(1700000000, 0)
	cfg := Config{
		Scale: tinyScale(),
		Seed:  42,
		Guard: true,
		Now: func() time.Time {
			now = now.Add(time.Millisecond)
			return now
		},
	}
	e, err := New(cfg, []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}

	w := httptest.NewRecorder()
	NewMux(e).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := w.Body.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics scrape drifted from %s (regenerate with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff for the golden mismatch report.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			b.WriteString("- " + w + "\n+ " + g + "\n")
		}
	}
	return b.String()
}
