package daemon

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestMetricsGoldenScrape pins the complete /metrics exposition of a
// deterministic 30-interval run against a committed golden file: family
// names, types, help strings, label sets, and — because the simulator,
// the learner and the injected fake clock are all seeded — the values
// themselves. Regenerate with:
//
//	go test ./internal/daemon/ -run TestMetricsGoldenScrape -update
func TestMetricsGoldenScrape(t *testing.T) {
	// A fake wall clock makes the wall-time-derived gauges (control
	// interval cost) deterministic: Step reads it exactly twice.
	now := time.Unix(1700000000, 0)
	cfg := Config{
		Scale: tinyScale(),
		Seed:  42,
		Guard: true,
		Now: func() time.Time {
			now = now.Add(time.Millisecond)
			return now
		},
	}
	e, err := New(cfg, []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}

	w := httptest.NewRecorder()
	NewMux(e).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := scrubMachineInfo(w.Body.String())

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics scrape drifted from %s (regenerate with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// scrubMachineInfo pins the machine-dependent twigd_kernel_info sample
// (kernel flavour, detected CPU features) to a fixed placeholder so the
// golden stays portable across build hosts; the family's HELP/TYPE
// lines and its presence are still covered.
func scrubMachineInfo(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "twigd_kernel_info{") {
			lines[i] = `twigd_kernel_info{scrubbed="true"} 1`
		}
	}
	return strings.Join(lines, "\n")
}

// diffLines renders a minimal line diff for the golden mismatch report.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			b.WriteString("- " + w + "\n+ " + g + "\n")
		}
	}
	return b.String()
}
