package daemon

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{Scale: tinyScale(), Seed: 11, DrainTimeoutS: 15},
		[]AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAPIHealthAndListing(t *testing.T) {
	mux := NewMux(testEngine(t))
	if w := do(t, mux, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	w := do(t, mux, "GET", "/services", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /services = %d", w.Code)
	}
	var views []ServiceView
	if err := json.Unmarshal(w.Body.Bytes(), &views); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	if len(views) != 1 || views[0].Name != "masstree" || views[0].State != "running" {
		t.Fatalf("listing = %+v", views)
	}
}

// Malformed and invalid admissions must come back 4xx with a JSON error
// body — never a 200, never a panic, never a default-valued admission.
func TestAPIAdmissionRejectsBadInput(t *testing.T) {
	mux := NewMux(testEngine(t))
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", `{"name": "xapian",`, http.StatusBadRequest},
		{"unknown field", `{"name": "xapian", "laod": 0.5}`, http.StatusBadRequest},
		{"trailing garbage", `{"name": "xapian", "load": 0.5} extra`, http.StatusBadRequest},
		{"unknown profile", `{"name": "postgres", "load": 0.5}`, http.StatusBadRequest},
		{"zero load", `{"name": "xapian", "load": 0}`, http.StatusBadRequest},
		{"negative load", `{"name": "xapian", "load": -0.5}`, http.StatusBadRequest},
		{"absurd load", `{"name": "xapian", "load": 7}`, http.StatusBadRequest},
		{"unknown pattern", `{"name": "xapian", "load": 0.5, "pattern": "sawtooth"}`, http.StatusBadRequest},
		{"duplicate", `{"name": "masstree", "load": 0.5}`, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, mux, "POST", "/services", tc.body)
			if w.Code != tc.code {
				t.Fatalf("POST /services %s = %d (%s), want %d", tc.body, w.Code, w.Body.String(), tc.code)
			}
			var e apiError
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not a JSON error envelope", w.Body.String())
			}
		})
	}
	// The registry must be untouched by all of the rejections.
	w := do(t, mux, "GET", "/services", "")
	var views []ServiceView
	_ = json.Unmarshal(w.Body.Bytes(), &views)
	if len(views) != 1 {
		t.Fatalf("rejected admissions leaked into the registry: %+v", views)
	}
}

func TestAPIAdmitDrainDeleteFlow(t *testing.T) {
	e := testEngine(t)
	mux := NewMux(e)

	if w := do(t, mux, "POST", "/services", `{"name": "xapian", "load": 0.4}`); w.Code != http.StatusAccepted {
		t.Fatalf("admit = %d (%s)", w.Code, w.Body.String())
	}
	// Pending until the next boundary; then placed and running.
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}

	if w := do(t, mux, "POST", "/drain", `{"name": "xapian"}`); w.Code != http.StatusAccepted {
		t.Fatalf("drain = %d (%s)", w.Code, w.Body.String())
	}
	// Drain-while-draining conflicts (the lifecycle rejects the event).
	if w := do(t, mux, "POST", "/drain", `{"name": "xapian"}`); w.Code != http.StatusConflict {
		t.Fatalf("double drain = %d (%s), want 409", w.Code, w.Body.String())
	}
	if w := do(t, mux, "POST", "/drain", `{"name": "nope"}`); w.Code != http.StatusNotFound {
		t.Fatalf("drain unknown = %d, want 404", w.Code)
	}

	// Run the drain to completion, then DELETE removes the entry.
	for i := 0; i < 20; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w := do(t, mux, "DELETE", "/services/xapian", "")
	if w.Code != http.StatusOK {
		t.Fatalf("delete stopped service = %d (%s), want 200", w.Code, w.Body.String())
	}
	if w := do(t, mux, "DELETE", "/services/xapian", ""); w.Code != http.StatusNotFound {
		t.Fatalf("delete again = %d, want 404", w.Code)
	}
	var views []ServiceView
	_ = json.Unmarshal(do(t, mux, "GET", "/services", "").Body.Bytes(), &views)
	if len(views) != 1 || views[0].Name != "masstree" {
		t.Fatalf("registry after delete = %+v", views)
	}
}

func TestAPIReloadWithoutStoreConflicts(t *testing.T) {
	mux := NewMux(testEngine(t))
	if w := do(t, mux, "POST", "/reload", ""); w.Code != http.StatusConflict {
		t.Fatalf("reload without store = %d, want 409", w.Code)
	}
}

// TestAPIStatusEncodesNaNSafely plants non-finite measurements in the
// last step result and checks /status still returns valid JSON with the
// -1 sentinel.
func TestAPIStatusEncodesNaNSafely(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.lastRes.TruePowerW = math.NaN()
	e.lastRes.Services[0].P99Ms = math.Inf(1)
	e.mu.Unlock()

	w := do(t, NewMux(e), "GET", "/status", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var s struct {
		PowerW   float64 `json:"power_w"`
		Services []struct {
			Name  string  `json:"name"`
			State string  `json:"state"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"services"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
		t.Fatalf("status body is not valid JSON: %v\n%s", err, w.Body.String())
	}
	if s.PowerW != -1 {
		t.Errorf("NaN power encoded as %v, want -1", s.PowerW)
	}
	if len(s.Services) != 1 || s.Services[0].P99Ms != -1 {
		t.Errorf("Inf p99 encoded as %+v, want -1", s.Services)
	}
	if s.Services[0].State != "running" {
		t.Errorf("status lacks lifecycle state: %+v", s.Services[0])
	}
}

// TestAPIConcurrentAccess hammers every endpoint while the control loop
// steps; run under -race this is the daemon's thread-safety proof.
func TestAPIConcurrentAccess(t *testing.T) {
	e := testEngine(t)
	mux := NewMux(e)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := e.Step(); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
		close(stop)
	}()

	paths := []struct{ method, path, body string }{
		{"GET", "/status", ""},
		{"GET", "/services", ""},
		{"GET", "/metrics", ""},
		{"GET", "/healthz", ""},
		{"POST", "/services", `{"name": "masstree", "load": 0.5}`}, // always a 409 duplicate
		{"POST", "/drain", `{"name": "missing"}`},                  // always a 404
	}
	for _, p := range paths {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(p.method, p.path, strings.NewReader(p.body))
				mux.ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Wait()
}
