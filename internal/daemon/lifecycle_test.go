package daemon

import (
	"errors"
	"testing"
)

// legal is the complete expected transition table; every (state, event)
// pair absent from it must be rejected. Fail successors are the raw
// table positions — retry exhaustion (Pending → DeadLetter) is asserted
// separately, since it depends on the budget, not the table.
var legal = map[State]map[Event]State{
	Pending:  {Place: Placed, Drain: Stopped, Fail: Pending},
	Placed:   {Start: Running, Drain: Draining, Fail: Pending},
	Running:  {Drain: Draining, Fail: Pending},
	Draining: {Drained: Stopped, Fail: Stopped},
}

var allStates = []State{Pending, Placed, Running, Draining, Stopped, DeadLetter}
var allEvents = []Event{Place, Start, Drain, Drained, Fail}

// Exhaustive (state, event) coverage: the Transition function must agree
// with the expected table on every one of the numStates×numEvents pairs.
func TestLifecycleTransitionTableExhaustive(t *testing.T) {
	if len(allStates) != numStates || len(allEvents) != numEvents {
		t.Fatalf("test table covers %d states / %d events, machine has %d / %d",
			len(allStates), len(allEvents), numStates, numEvents)
	}
	for _, s := range allStates {
		for _, ev := range allEvents {
			want, wantOK := legal[s][ev]
			got, ok := Transition(s, ev)
			if ok != wantOK {
				t.Errorf("Transition(%s, %s): legal=%v, want %v", s, ev, ok, wantOK)
				continue
			}
			if ok && got != want {
				t.Errorf("Transition(%s, %s) = %s, want %s", s, ev, got, want)
			}
			if !ok && got != s {
				t.Errorf("Transition(%s, %s) illegal but moved to %s", s, ev, got)
			}

			// Fire must agree with Transition, including leaving the
			// state untouched and naming the error on rejection.
			lc := &Lifecycle{state: s, maxRetries: 5}
			fired, err := lc.Fire(ev)
			if wantOK {
				if err != nil {
					t.Errorf("Fire(%s, %s): unexpected error %v", s, ev, err)
				} else if fired != want {
					t.Errorf("Fire(%s, %s) = %s, want %s", s, ev, fired, want)
				}
			} else {
				if !errors.Is(err, ErrIllegalTransition) {
					t.Errorf("Fire(%s, %s): err = %v, want ErrIllegalTransition", s, ev, err)
				}
				if lc.State() != s {
					t.Errorf("Fire(%s, %s) rejected but state moved to %s", s, ev, lc.State())
				}
			}
		}
	}
}

func TestLifecycleTerminalStates(t *testing.T) {
	for _, s := range allStates {
		wantTerminal := s == Stopped || s == DeadLetter
		if s.Terminal() != wantTerminal {
			t.Errorf("%s.Terminal() = %v, want %v", s, s.Terminal(), wantTerminal)
		}
		if !wantTerminal {
			continue
		}
		for _, ev := range allEvents {
			lc := &Lifecycle{state: s}
			if _, err := lc.Fire(ev); !errors.Is(err, ErrIllegalTransition) {
				t.Errorf("Fire(%s, %s) on terminal state: err = %v, want ErrIllegalTransition", s, ev, err)
			}
		}
	}
}

// Retry accounting: each requeue-ing Fail consumes one retry; the Fail
// after the budget is spent dead-letters instead of re-enqueueing.
func TestLifecycleRetryBudgetAndDeadLetter(t *testing.T) {
	const budget = 3
	lc := NewLifecycle(budget)
	for i := 0; i < budget; i++ {
		if _, err := lc.Fire(Place); err != nil {
			t.Fatalf("retry %d: Place: %v", i, err)
		}
		if st, err := lc.Fire(Fail); err != nil || st != Pending {
			t.Fatalf("retry %d: Fail → (%s, %v), want Pending", i, st, err)
		}
		if lc.Retries() != i+1 {
			t.Fatalf("retry %d: count = %d, want %d", i, lc.Retries(), i+1)
		}
	}
	if st, err := lc.Fire(Fail); err != nil || st != DeadLetter {
		t.Fatalf("exhausted Fail → (%s, %v), want DeadLetter", st, err)
	}
	if lc.Retries() != budget {
		t.Fatalf("dead-letter entry grew retries to %d, budget %d", lc.Retries(), budget)
	}
}

func TestLifecycleZeroBudgetDeadLettersImmediately(t *testing.T) {
	lc := NewLifecycle(0)
	if st, err := lc.Fire(Fail); err != nil || st != DeadLetter {
		t.Fatalf("Fail with zero budget → (%s, %v), want DeadLetter", st, err)
	}
}

func TestRestoreLifecycleValidation(t *testing.T) {
	if _, err := RestoreLifecycle(Running, 2, 3); err != nil {
		t.Fatalf("valid restore rejected: %v", err)
	}
	if _, err := RestoreLifecycle(State(42), 0, 3); err == nil {
		t.Fatal("unknown state accepted")
	}
	if _, err := RestoreLifecycle(Running, 4, 3); err == nil {
		t.Fatal("retries above budget accepted")
	}
	if _, err := RestoreLifecycle(Running, -1, 3); err == nil {
		t.Fatal("negative retries accepted")
	}
}

// FuzzLifecycle replays arbitrary event sequences and asserts the
// machine's invariants: the state stays inside the known set, nothing
// leaves a terminal state, the retry count never exceeds the budget and
// only ever grows, and a rejected event never mutates anything.
func FuzzLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 4, 4, 4, 4, 2, 3})
	f.Add([]byte{4, 4, 4, 4, 4})
	f.Add([]byte{0, 2, 3, 0})
	f.Fuzz(func(t *testing.T, seq []byte) {
		const budget = 2
		lc := NewLifecycle(budget)
		terminalAt := -1
		for i, b := range seq {
			ev := Event(b % byte(numEvents))
			before, beforeRetries := lc.State(), lc.Retries()
			st, err := lc.Fire(ev)

			if int(st) >= numStates {
				t.Fatalf("step %d: state escaped the machine: %d", i, st)
			}
			if err != nil {
				if !errors.Is(err, ErrIllegalTransition) {
					t.Fatalf("step %d: unnamed rejection: %v", i, err)
				}
				if lc.State() != before || lc.Retries() != beforeRetries {
					t.Fatalf("step %d: rejected event mutated state %s→%s retries %d→%d",
						i, before, lc.State(), beforeRetries, lc.Retries())
				}
			}
			if terminalAt >= 0 && (err == nil || lc.State() != before) {
				t.Fatalf("step %d: transition out of terminal state reached at step %d", i, terminalAt)
			}
			if lc.Retries() > budget {
				t.Fatalf("step %d: retries %d exceed budget %d", i, lc.Retries(), budget)
			}
			if lc.Retries() < beforeRetries {
				t.Fatalf("step %d: retry count shrank %d→%d", i, beforeRetries, lc.Retries())
			}
			if terminalAt < 0 && lc.State().Terminal() {
				terminalAt = i
			}
		}
	})
}
