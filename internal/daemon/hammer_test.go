package daemon

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHammerAdmitDrainWhilePoolSteps races the admission API against
// the batched control loop: while Step() drives the pooled manager
// (grouped-GEMM sweeps over the shared parameter arena), concurrent
// goroutines admit, drain and delete services as fast as the API lets
// them. Membership churn maps to arena slot release/adopt inside
// controller rebuilds; run under -race this proves no torn arena slots
// and no unsynchronised pool access. Expected lifecycle conflicts
// (drain of a pending service, duplicate admit) are fine — panics,
// races and a wedged control loop are not.
func TestHammerAdmitDrainWhilePoolSteps(t *testing.T) {
	e, err := New(Config{Scale: tinyScale(), Seed: 99, DrainTimeoutS: 3},
		[]AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Manager().Pooled() {
		t.Fatal("daemon manager is not pooled")
	}

	const steps = 150
	var stop atomic.Bool
	var wg sync.WaitGroup
	churn := func(name string, load float64) {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			switch i % 3 {
			case 0:
				e.Admit(AdmitRequest{Name: name, Load: load}) // may conflict; ignored
			case 1:
				e.Drain(name)
			default:
				e.Delete(name)
			}
			// Interleave reads the way /status and /services handlers do.
			e.Services()
			e.Status()
		}
	}
	wg.Add(2)
	go churn("xapian", 0.4)
	go churn("moses", 0.3)

	for i := 0; i < steps; i++ {
		if _, err := e.Step(); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("step %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// The loop must still be healthy after the churn storm: the pooled
	// manager decides, the world steps, and the live services are
	// consistent between the registry and the simulator.
	for i := 0; i < 10; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatalf("post-hammer step %d: %v", i, err)
		}
	}
	live := 0
	for _, v := range e.Services() {
		if v.State == "running" || v.State == "draining" {
			live++
		}
	}
	if live < 1 {
		t.Fatalf("no live services after hammer: %v", fmt.Sprint(e.Services()))
	}
}
