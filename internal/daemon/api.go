package daemon

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"time"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/mat"
)

// status is the JSON document served at /status, shape-compatible with
// the original twigd snapshot (time, power, per-service allocation and
// tail latency, fault events, guard health) plus the lifecycle state of
// every registered service. Non-finite measurements (a crashed
// service's latency, a failed RAPL read) are reported as -1 so the
// snapshot always encodes as valid JSON.
type status struct {
	Time     int             `json:"time"`
	PowerW   float64         `json:"power_w"`
	Services []serviceStatus `json:"services"`
	// Faults lists the fault events active this interval (when armed).
	Faults []string `json:"faults,omitempty"`
	// Guard carries the wrapper's intervention counters (when enabled).
	Guard *ctrl.GuardHealth `json:"guard,omitempty"`
	// Resumed is the checkpoint sequence the daemon restored from
	// (absent for a fresh start).
	Resumed uint64 `json:"resumed_from,omitempty"`
	// Kernel, CPUFeatures and FastMath record the GEMM dispatch
	// provenance: the selected microkernel flavour, the CPU features the
	// build detected, and whether the fused fast-math kernels are active
	// (which forfeits bit-identical resume).
	Kernel      string `json:"kernel"`
	CPUFeatures string `json:"cpu_features"`
	FastMath    bool   `json:"fast_math"`
}

type serviceStatus struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Cores       int     `json:"cores"`
	FreqGHz     float64 `json:"freq_ghz"`
	P99Ms       float64 `json:"p99_ms"`
	QoSTargetMs float64 `json:"qos_target_ms"`
	OfferedRPS  float64 `json:"offered_rps"`
}

// Status snapshots the run for /status.
func (e *Engine) Status() status {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := status{
		Time:        e.next - 1,
		Resumed:     e.resumed,
		Kernel:      mat.KernelName(),
		CPUFeatures: mat.CPUFeatures(),
		FastMath:    mat.FastMath(),
	}
	if e.haveRes {
		s.Time = e.lastRes.Time
		s.PowerW = jsonSafe(e.lastRes.TruePowerW)
		for _, ev := range e.lastRes.Faults {
			s.Faults = append(s.Faults, ev.String())
		}
	}
	live := e.liveEntries()
	for _, en := range e.entries {
		sv := serviceStatus{
			Name:        en.name,
			State:       en.lc.State().String(),
			QoSTargetMs: en.qosMs,
		}
		if e.haveRes {
			for i, ln := range live {
				if ln == en && i < len(e.lastRes.Services) {
					r := e.lastRes.Services[i]
					sv.Cores = r.NumCores
					sv.FreqGHz = r.FreqGHz
					sv.P99Ms = jsonSafe(r.P99Ms)
					sv.OfferedRPS = r.OfferedRPS
				}
			}
		}
		s.Services = append(s.Services, sv)
	}
	if e.guard != nil {
		h := e.guard.Health()
		s.Guard = &h
	}
	return s
}

// jsonSafe maps non-finite measurements to -1: encoding/json rejects
// NaN and Inf, and a dropped sensor must not take /status down with it.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// apiError is the JSON error envelope for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// httpStatusFor maps a named engine error to its HTTP status: malformed
// or unknown input is 400, a missing service 404, and a request that
// conflicts with the current state (duplicate name, illegal lifecycle
// transition, pinned membership, absent store) is 409.
func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownService),
		errors.Is(err, ErrBadLoad),
		errors.Is(err, ErrUnknownPattern):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoSuchService):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate),
		errors.Is(err, ErrIllegalTransition),
		errors.Is(err, ErrFaultsArmed),
		errors.Is(err, ErrNoStore):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatusFor(err), apiError{Error: err.Error()})
}

// drainRequest is the POST /drain body.
type drainRequest struct {
	Name string `json:"name"`
}

// NewMux routes the admission API onto a fresh ServeMux:
//
//	GET    /healthz          liveness probe
//	GET    /status           JSON run snapshot
//	GET    /metrics          Prometheus text exposition
//	GET    /services         registry listing
//	POST   /services         admit a service (AdmitRequest body)
//	DELETE /services/{name}  drain-then-deregister a service
//	POST   /drain            gracefully drain a service (keep registered)
//	POST   /reload           hot-reload manager weights from the store
func NewMux(e *Engine) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Status())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(e.Metrics().Render()))
	})

	mux.HandleFunc("GET /services", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Services())
	})

	mux.HandleFunc("POST /services", func(w http.ResponseWriter, r *http.Request) {
		var req AdmitRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		view, err := e.Admit(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("DELETE /services/{name}", func(w http.ResponseWriter, r *http.Request) {
		view, gone, err := e.Delete(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		code := http.StatusAccepted
		if gone {
			code = http.StatusOK
		}
		writeJSON(w, code, view)
	})

	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		var req drainRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		view, err := e.Drain(req.Name)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		if err := e.RequestReload(); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "reload scheduled"})
	})

	return mux
}

// maxBodyBytes caps every admission-API request body; no legitimate
// request is more than a few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON request body strictly: bodies over
// maxBodyBytes are cut off (and the connection closed, via the passed
// ResponseWriter), unknown fields and trailing garbage are rejected, so
// a typoed field fails loudly instead of silently admitting a
// default-valued service.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("daemon: trailing data after JSON body")
	}
	return nil
}

// NewServer wraps NewMux in a hardened http.Server (timeouts on every
// phase, bounded header size; bodies are bounded per-handler by
// decodeBody), so a slow or hostile client cannot pin the daemon.
func NewServer(addr string, e *Engine) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewMux(e),
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      5 * time.Second,
		IdleTimeout:       30 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
}
