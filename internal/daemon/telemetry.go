package daemon

import (
	"fmt"
	"math"
	"time"

	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim"
)

// describeMetrics declares every exported family up front so the scrape
// layout (names, types, help) is fixed for the life of the process —
// the golden test pins it.
func (e *Engine) describeMetrics() {
	m := e.metrics
	m.Describe("twigd_intervals_total", "counter", "Monitoring intervals executed since daemon start.")
	m.Describe("twigd_decide_panics_total", "counter", "Controller panics converted into the last valid assignment.")
	m.Describe("twigd_step_errors_total", "counter", "Assignments the simulator rejected (fell back to last valid).")
	m.Describe("twigd_placement_failures_total", "counter", "Boundary placements that failed (capacity bound or simulator rejection).")
	m.Describe("twigd_qos_violations_total", "counter", "Intervals whose measured p99 missed the QoS target, per service.")
	m.Describe("twigd_lifecycle_transitions_total", "counter", "Service lifecycle transitions, by from/to state.")
	m.Describe("twigd_weight_reloads_total", "counter", "Hot weight reloads from the checkpoint store, by result.")
	m.Describe("twigd_service_state", "gauge", "Service lifecycle position (1 for the current state, 0 otherwise).")
	m.Describe("twigd_service_p99_ms", "gauge", "Measured p99 latency of the last interval, per service.")
	m.Describe("twigd_service_qos_target_ms", "gauge", "QoS tail-latency target, per service.")
	m.Describe("twigd_service_cores", "gauge", "Cores allocated in the last interval, per service.")
	m.Describe("twigd_service_freq_ghz", "gauge", "DVFS frequency applied in the last interval, per service.")
	m.Describe("twigd_service_queue_len", "gauge", "Request backlog carried into the next interval, per service.")
	m.Describe("twigd_power_watts", "gauge", "True managed-socket power of the last interval.")
	m.Describe("twigd_guard_obs_repaired_total", "counter", "Observation fields repaired by the guard.")
	m.Describe("twigd_guard_stale_exceeded_total", "counter", "Intervals a latency gap outlived the staleness bound.")
	m.Describe("twigd_guard_panics_recovered_total", "counter", "Inner-controller panics contained by the guard.")
	m.Describe("twigd_guard_actions_clamped_total", "counter", "Decisions repaired in place by the guard.")
	m.Describe("twigd_guard_fallback_intervals_total", "counter", "Intervals decided entirely by the safe fallback.")
	m.Describe("twigd_guard_breaker_trips_total", "counter", "QoS circuit-breaker trip transitions.")
	m.Describe("twigd_guard_breaker_intervals_total", "counter", "Intervals spent with the breaker escalated.")
	m.Describe("twigd_guard_breaker_engaged", "gauge", "Whether the QoS circuit breaker is escalated, per service.")
	m.Describe("twigd_checkpoint_writes_total", "counter", "Checkpoints that reached disk.")
	m.Describe("twigd_checkpoint_failed_total", "counter", "Checkpoint writes that returned an error.")
	m.Describe("twigd_checkpoint_corrupt_total", "counter", "Checkpoints skipped as corrupt during a restore or reload fallback scan.")
	m.Describe("twigd_checkpoint_dropped_total", "counter", "Snapshots dropped by the latest-wins writer policy.")
	m.Describe("twigd_checkpoint_last_seq", "gauge", "Sequence number of the newest durable checkpoint.")
	m.Describe("twigd_checkpoint_write_seconds", "gauge", "Wall-clock cost of the most recent checkpoint write.")
	m.Describe("twigd_checkpoint_age_seconds", "gauge", "Wall-clock age of the newest durable checkpoint.")
	m.Describe("twigd_control_interval_seconds", "gauge", "Wall-clock cost of the most recent control interval.")
	m.Describe("twigd_kernel_info", "gauge", "GEMM dispatch provenance: selected microkernel, detected CPU features and fast-math state (value is always 1).")
	m.Set("twigd_kernel_info", Labels{
		"kernel":    mat.KernelName(),
		"cpu":       mat.CPUFeatures(),
		"fast_math": fmt.Sprintf("%v", mat.FastMath()),
	}, 1)
}

var stateNames = func() []string {
	names := make([]string, numStates)
	for s := 0; s < numStates; s++ {
		names[s] = State(s).String()
	}
	return names
}()

// updateMetrics refreshes the registry after one interval (caller holds
// the engine lock). Counters derived from cumulative sources (guard
// health, writer stats) are Set to the source value rather than
// incremented, which keeps them exact across controller rebuilds.
func (e *Engine) updateMetrics(res sim.StepResult, live []*entry, elapsed time.Duration) {
	m := e.metrics
	m.Add("twigd_intervals_total", nil, 1)
	m.Set("twigd_power_watts", nil, res.TruePowerW)
	m.Set("twigd_control_interval_seconds", nil, elapsed.Seconds())

	for i, en := range live {
		sv := res.Services[i]
		lbl := Labels{"service": en.name}
		if math.IsNaN(sv.P99Ms) || sv.P99Ms > en.qosMs {
			m.Add("twigd_qos_violations_total", lbl, 1)
		}
		m.Set("twigd_service_p99_ms", lbl, sv.P99Ms)
		m.Set("twigd_service_qos_target_ms", lbl, en.qosMs)
		m.Set("twigd_service_cores", lbl, float64(sv.NumCores))
		m.Set("twigd_service_freq_ghz", lbl, sv.FreqGHz)
		m.Set("twigd_service_queue_len", lbl, float64(sv.QueueLen))
	}
	for _, en := range e.entries {
		cur := en.lc.State().String()
		for _, name := range stateNames {
			v := 0.0
			if name == cur {
				v = 1
			}
			m.Set("twigd_service_state", Labels{"service": en.name, "state": name}, v)
		}
	}

	if e.guard != nil {
		h := e.guard.Health()
		m.Set("twigd_guard_obs_repaired_total", nil, float64(h.ObsRepaired))
		m.Set("twigd_guard_stale_exceeded_total", nil, float64(h.StaleExceeded))
		m.Set("twigd_guard_panics_recovered_total", nil, float64(h.PanicsRecovered))
		m.Set("twigd_guard_actions_clamped_total", nil, float64(h.ActionsClamped))
		m.Set("twigd_guard_fallback_intervals_total", nil, float64(h.FallbackIntervals))
		m.Set("twigd_guard_breaker_trips_total", nil, float64(h.BreakerTrips))
		m.Set("twigd_guard_breaker_intervals_total", nil, float64(h.BreakerIntervals))
		engaged := e.guard.BreakerEngaged()
		for i, en := range live {
			v := 0.0
			if i < len(engaged) && engaged[i] {
				v = 1
			}
			m.Set("twigd_guard_breaker_engaged", Labels{"service": en.name}, v)
		}
	}

	if e.writer != nil {
		ws := e.writer.Stats()
		m.Set("twigd_checkpoint_writes_total", nil, float64(ws.Writes))
		m.Set("twigd_checkpoint_failed_total", nil, float64(ws.Failed))
		m.Set("twigd_checkpoint_dropped_total", nil, float64(ws.Dropped))
		m.Set("twigd_checkpoint_last_seq", nil, float64(ws.LastSeq))
		m.Set("twigd_checkpoint_write_seconds", nil, ws.LastDuration.Seconds())
		if !ws.LastWrite.IsZero() {
			m.Set("twigd_checkpoint_age_seconds", nil, e.cfg.Now().Sub(ws.LastWrite).Seconds())
		}
	}
}
