package daemon

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// A request body over the admission cap must come back 400 with a JSON
// error envelope, not hang the decoder or admit a truncated document.
func TestAPIOversizedBodyRejected(t *testing.T) {
	mux := NewMux(testEngine(t))
	body := `{"name": "xapian", "load": 0.5, "pattern": "` +
		strings.Repeat("x", maxBodyBytes+1) + `"}`
	w := do(t, mux, "POST", "/services", body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized POST /services = %d, want 400", w.Code)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q not a JSON error envelope", w.Body.String())
	}
	// The registry must be untouched.
	var views []ServiceView
	_ = json.Unmarshal(do(t, mux, "GET", "/services", "").Body.Bytes(), &views)
	if len(views) != 1 {
		t.Fatalf("oversized admission leaked into the registry: %+v", views)
	}
}

// deadLetterConfig bounds the live set at one service with a two-retry
// budget, so a second admission fails placement at three consecutive
// boundaries and dead-letters deterministically.
func deadLetterConfig(store *checkpoint.Store) Config {
	return Config{
		Scale:           tinyScale(),
		Seed:            7,
		Store:           store,
		CheckpointEvery: 10,
		MaxRetries:      2,
		MaxLive:         1,
		DrainTimeoutS:   15,
	}
}

// TestDeadLetterVisibleAndDurable drives the full dead-letter path: a
// service admitted over the live-capacity bound burns its retry budget
// at interval boundaries, lands terminally in DeadLetter with the
// failure reason visible in /services, and both survive a checkpoint
// round trip.
func TestDeadLetterVisibleAndDurable(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(deadLetterConfig(store), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(AdmitRequest{Name: "xapian", Load: 0.4}); err != nil {
		t.Fatal(err)
	}

	// Boundary 1 and 2 consume the two retries; boundary 3 dead-letters.
	states := []string{"pending", "pending", "dead-letter"}
	for i, want := range states {
		if _, err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := findView(t, e, "xapian").State; got != want {
			t.Fatalf("after step %d xapian state = %q, want %q", i+1, got, want)
		}
	}

	check := func(tag string, e *Engine) {
		t.Helper()
		v := findView(t, e, "xapian")
		if v.State != "dead-letter" || v.Retries != 2 {
			t.Fatalf("%s: view = %+v, want terminal dead-letter with 2 retries", tag, v)
		}
		if !strings.Contains(v.Reason, "dead-lettered after 3 attempts") ||
			!strings.Contains(v.Reason, "live-capacity limit 1 reached") {
			t.Fatalf("%s: reason %q does not explain the failure", tag, v.Reason)
		}
	}
	check("live engine", e)

	// Dead-letter is terminal: further intervals must not resurrect it,
	// and the healthy service keeps running.
	for i := 0; i < 5; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	check("after more intervals", e)
	if v := findView(t, e, "masstree"); v.State != "running" {
		t.Fatalf("masstree = %+v, want running", v)
	}
	scrape := e.Metrics().Render()
	if !strings.Contains(scrape, "twigd_placement_failures_total 3") {
		t.Fatalf("scrape missing placement failure count:\n%s", scrape)
	}

	// The terminal state and its reason must survive restore.
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	re, _, err := RestoreLatest(deadLetterConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	check("restored engine", re)
	if _, err := re.Step(); err != nil {
		t.Fatalf("restored engine step: %v", err)
	}
	check("restored engine after step", re)

	// The reason rides through the HTTP listing, where operators see it.
	var views []ServiceView
	_ = json.Unmarshal(do(t, NewMux(re), "GET", "/services", "").Body.Bytes(), &views)
	found := false
	for _, v := range views {
		if v.Name == "xapian" {
			found = v.State == "dead-letter" && strings.Contains(v.Reason, "dead-lettered after 3 attempts")
		}
	}
	if !found {
		t.Fatalf("GET /services does not surface the dead-letter reason: %+v", views)
	}
}

func findView(t *testing.T, e *Engine, name string) ServiceView {
	t.Helper()
	for _, v := range e.Services() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("service %q not in registry", name)
	return ServiceView{}
}

// TestCorruptCheckpointFallbackSurfaced corrupts the newest checkpoint
// on disk and verifies the restore falls back to the previous one while
// naming the rejected file on stderr-equivalent accounting: the
// twigd_checkpoint_corrupt_total counter.
func TestCorruptCheckpointFallbackSurfaced(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(e2eConfig(store), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTo(30, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	seqs, err := store.Sequences()
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want >=2 checkpoints on disk, got %v (%v)", seqs, err)
	}
	newest := seqs[len(seqs)-1]

	// Flip one payload byte in the newest container; its CRC check must
	// reject it and the scan must fall back to the one before.
	path := store.Path(newest)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, seq, err := RestoreLatest(e2eConfig(store))
	if err != nil {
		t.Fatalf("restore did not fall back past the corrupt checkpoint: %v", err)
	}
	if seq != seqs[len(seqs)-2] {
		t.Fatalf("restored from %d, want fallback to %d", seq, seqs[len(seqs)-2])
	}
	scrape := re.Metrics().Render()
	if !strings.Contains(scrape, "twigd_checkpoint_corrupt_total 1") {
		t.Fatalf("scrape does not surface the corrupt checkpoint:\n%s", scrape)
	}
	if _, err := re.Step(); err != nil {
		t.Fatalf("restored engine step: %v", err)
	}
}
