package daemon

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// TestKill9ResumeBitIdentical is the subprocess variant of the crash
// test: it builds the real twigd binary, runs it under load with the
// crash fault scenario armed, SIGKILLs it mid-run, restarts it against
// the same checkpoint directory, and verifies the resumed run (a)
// announces the resume and (b) produces per-interval CSV rows identical
// to an uninterrupted reference run from the resume point onward.
//
// The test shells out and runs several simulated-minute workloads, so
// it is gated: set TWIG_KILL9=1 to run it (CI does, in the
// crash-resume job; see .github/workflows/ci.yml).
func TestKill9ResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	if os.Getenv("TWIG_KILL9") != "1" {
		t.Skip("set TWIG_KILL9=1 to run the subprocess kill -9 test")
	}

	root := moduleRoot(t)
	work := t.TempDir()
	bin := filepath.Join(work, "twigd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/twigd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building twigd: %v\n%s", err, out)
	}

	baseArgs := func(ckptDir, csv string) []string {
		return []string{
			"-services", "masstree",
			"-faults", "crash",
			"-seconds", "450",
			"-seed", "7",
			"-checkpoint-dir", ckptDir,
			"-checkpoint-every", "30",
			"-csv", csv,
			"-log-every", "10000",
		}
	}

	// Reference: uninterrupted run in its own checkpoint dir.
	refCSV := filepath.Join(work, "ref.csv")
	refOut := runTwigd(t, bin, baseArgs(filepath.Join(work, "ckpt-ref"), refCSV))
	if strings.Contains(refOut, "resumed from") {
		t.Fatalf("reference run resumed from a checkpoint:\n%s", refOut)
	}

	// Crashed run: SIGKILL once checkpoints past t=120 are durable.
	crashDir := filepath.Join(work, "ckpt-crash")
	crash := exec.Command(bin, baseArgs(crashDir, filepath.Join(work, "crashed.csv"))...)
	var crashOut bytes.Buffer
	crash.Stdout, crash.Stderr = &crashOut, &crashOut
	if err := crash.Start(); err != nil {
		t.Fatalf("starting twigd: %v", err)
	}
	store, err := checkpoint.NewStore(crashDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		seqs, err := store.Sequences()
		if err == nil && len(seqs) > 0 && seqs[len(seqs)-1] >= 120 {
			if err := crash.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("kill -9: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	err = crash.Wait()
	if !killed {
		t.Fatalf("twigd finished before any checkpoint past t=120 appeared (err=%v):\n%s", err, crashOut.String())
	}
	if err == nil {
		t.Fatalf("SIGKILLed twigd exited cleanly:\n%s", crashOut.String())
	}

	// Resumed run: same checkpoint dir; must announce the resume and
	// complete the remaining intervals.
	resumedCSV := filepath.Join(work, "resumed.csv")
	resumedOut := runTwigd(t, bin, baseArgs(crashDir, resumedCSV))
	if !strings.Contains(resumedOut, "resumed from") {
		t.Fatalf("restarted twigd did not resume from the checkpoint:\n%s", resumedOut)
	}

	// Every interval the resumed run recorded must be byte-identical to
	// the reference at the same simulated second.
	ref := csvByT(t, refCSV)
	res := csvByT(t, resumedCSV)
	if len(res) == 0 {
		t.Fatal("resumed run recorded no intervals")
	}
	if len(res) >= len(ref) {
		t.Fatalf("resumed run recorded %d intervals, reference %d — resume point lost", len(res), len(ref))
	}
	compared := 0
	for tt, row := range res {
		want, ok := ref[tt]
		if !ok {
			t.Fatalf("resumed run has t=%s absent from the reference", tt)
		}
		if row != want {
			t.Fatalf("trajectory diverged at t=%s:\n  reference: %s\n  resumed:   %s", tt, want, row)
		}
		compared++
	}
	t.Logf("resume verified: %d/%d intervals byte-identical to the reference", compared, len(ref))
}

func runTwigd(t *testing.T, bin string, args []string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("twigd %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// csvByT indexes a per-interval CSV by its t column.
func csvByT(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	rows := map[string]string{}
	sc := bufio.NewScanner(f)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first {
			first = false // header
			continue
		}
		tt, _, ok := strings.Cut(line, ",")
		if !ok {
			t.Fatalf("%s: malformed row %q", path, line)
		}
		if prev, dup := rows[tt]; dup {
			t.Fatalf("%s: duplicate t=%s (%q vs %q)", path, tt, prev, line)
		}
		rows[tt] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return rows
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
