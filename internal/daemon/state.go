package daemon

import (
	"fmt"
	"os"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/service"
)

// persistedEntry is the serialisable slice of an entry; the load
// pattern itself is rebuilt from (pattern, load, profile) on restore.
type persistedEntry struct {
	name       string
	state      State
	retries    int
	maxRetries int
	load       float64
	pattern    string
	qosMs      float64
	seed       int64
	inSim      bool
	remove     bool
	drainFor   int
	failReason string
}

// daemonState is the daemon's own checkpoint section: the service
// registry with lifecycle positions, the rebuild/admission counters and
// the control-loop position (pending observation, last valid
// assignment, tracker memory). Together with the sim-server, manager,
// drainer and guard sections it pins down the whole control plane.
type daemonState struct {
	gen         int
	admitted    int
	next        int
	guarded     bool
	faultsArmed bool
	entries     []persistedEntry
	obs         ctrl.Observation
	lastValid   sim.Assignment
	tracker     *ctrl.ObservationTracker
}

// CheckpointName implements checkpoint.Checkpointable.
func (st *daemonState) CheckpointName() string { return "twigd-daemon" }

// EncodeState implements checkpoint.Checkpointable.
func (st *daemonState) EncodeState(e *checkpoint.Encoder) {
	e.Int(st.gen)
	e.Int(st.admitted)
	e.Int(st.next)
	e.Bool(st.guarded)
	e.Bool(st.faultsArmed)
	e.Int(len(st.entries))
	for _, pe := range st.entries {
		e.String(pe.name)
		e.Int(int(pe.state))
		e.Int(pe.retries)
		e.Int(pe.maxRetries)
		e.F64(pe.load)
		e.String(pe.pattern)
		e.F64(pe.qosMs)
		e.I64(pe.seed)
		e.Bool(pe.inSim)
		e.Bool(pe.remove)
		e.Int(pe.drainFor)
		e.String(pe.failReason)
	}
	ctrl.EncodeObservation(e, st.obs)
	sim.EncodeAssignment(e, st.lastValid)
	st.tracker.EncodeState(e)
}

// DecodeState implements checkpoint.Checkpointable.
func (st *daemonState) DecodeState(d *checkpoint.Decoder) error {
	st.gen = d.Int()
	st.admitted = d.Int()
	st.next = d.Int()
	st.guarded = d.Bool()
	st.faultsArmed = d.Bool()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.Remaining() {
		return fmt.Errorf("daemon: checkpoint claims %d services", n)
	}
	st.entries = make([]persistedEntry, n)
	for i := range st.entries {
		pe := &st.entries[i]
		pe.name = d.String()
		pe.state = State(d.Int())
		pe.retries = d.Int()
		pe.maxRetries = d.Int()
		pe.load = d.F64()
		pe.pattern = d.String()
		pe.qosMs = d.F64()
		pe.seed = d.I64()
		pe.inSim = d.Bool()
		pe.remove = d.Bool()
		pe.drainFor = d.Int()
		pe.failReason = d.String()
		if err := d.Err(); err != nil {
			return err
		}
	}
	obs, err := ctrl.DecodeObservation(d)
	if err != nil {
		return err
	}
	st.obs = obs
	asg, err := sim.DecodeAssignment(d)
	if err != nil {
		return err
	}
	st.lastValid = asg
	if st.tracker == nil {
		st.tracker = &ctrl.ObservationTracker{}
	}
	return st.tracker.DecodeState(d)
}

// snapshotState captures the engine's daemon section (caller holds the
// engine lock).
func (e *Engine) snapshotState() *daemonState {
	st := &daemonState{
		gen:         e.gen,
		admitted:    e.admitted,
		next:        e.next,
		guarded:     e.cfg.Guard,
		faultsArmed: e.cfg.faultsArmed(),
		obs:         e.obs,
		lastValid:   e.lastValid,
		tracker:     e.tracker,
	}
	for _, en := range e.entries {
		st.entries = append(st.entries, persistedEntry{
			name:       en.name,
			state:      en.lc.State(),
			retries:    en.lc.Retries(),
			maxRetries: en.lc.MaxRetries(),
			load:       en.load,
			pattern:    en.pattern,
			qosMs:      en.qosMs,
			seed:       en.seed,
			inSim:      en.inSim,
			remove:     en.remove,
			drainFor:   en.drainFor,
			failReason: en.failReason,
		})
	}
	return st
}

// marshal encodes the full control plane (caller holds the engine lock):
// the daemon registry/loop section plus the simulator, manager, drainer
// and (when enabled) guard sections.
func (e *Engine) marshal() []byte {
	comps := []checkpoint.Checkpointable{e.snapshotState(), e.srv, e.mgr, e.drainer}
	if e.guard != nil {
		comps = append(comps, e.guard)
	}
	return checkpoint.Marshal(comps...)
}

// RestoreLatest rebuilds an engine from the newest valid checkpoint in
// cfg.Store and returns it with the restored sequence number. The
// restore is two-phase: first the daemon section alone is decoded to
// learn the registry and membership, then a fresh world of that shape is
// built and every section is decoded into it. Because each component's
// DecodeState fully overwrites its random streams and learning state,
// the resumed trajectory is bit-identical to an uninterrupted run —
// regardless of how the membership evolved before the cut.
func RestoreLatest(cfg Config) (*Engine, uint64, error) {
	cfg.normalize()
	if cfg.FastMath {
		// Applied before any weight math runs; the restored run drifts by
		// trailing ulps from the checkpointed trajectory (documented
		// fast-math contract).
		mat.SetFastMath(true)
	}
	if cfg.Store == nil {
		return nil, 0, ErrNoStore
	}
	// The engine (and its metrics registry) does not exist yet, so count
	// corrupt checkpoints skipped by the fallback scan locally and
	// transfer the tally once the registry is up; the hook is then
	// re-pointed at the live engine for subsequent reloads.
	corrupt := 0
	cfg.Store.SetRejectHook(func(path string, err error) {
		corrupt++
		fmt.Fprintf(os.Stderr, "twigd: skipping corrupt checkpoint %s: %v\n", path, err)
	})
	seq, data, err := cfg.Store.ReadLatest()
	if err != nil {
		return nil, 0, err
	}

	var st daemonState
	if err := checkpoint.Unmarshal(data, &st); err != nil {
		return nil, 0, fmt.Errorf("daemon: reading checkpoint %d: %w", seq, err)
	}
	if st.guarded != cfg.Guard {
		return nil, 0, fmt.Errorf("daemon: checkpoint %d was taken with guard=%v, configured guard=%v", seq, st.guarded, cfg.Guard)
	}
	if st.faultsArmed != cfg.faultsArmed() {
		return nil, 0, fmt.Errorf("daemon: checkpoint %d was taken with faults armed=%v, configured armed=%v", seq, st.faultsArmed, cfg.faultsArmed())
	}

	e := &Engine{cfg: cfg, metrics: NewRegistry(), resumed: seq}
	e.describeMetrics()
	if corrupt > 0 {
		e.metrics.Add("twigd_checkpoint_corrupt_total", nil, float64(corrupt))
	}
	cfg.Store.SetRejectHook(e.corruptHook())
	e.writer = checkpoint.NewAsyncWriter(cfg.Store)
	e.gen = st.gen
	e.admitted = st.admitted

	var specs []sim.ServiceSpec
	for _, pe := range st.entries {
		lc, err := RestoreLifecycle(pe.state, pe.retries, pe.maxRetries)
		if err != nil {
			return nil, 0, fmt.Errorf("daemon: checkpoint %d, service %q: %w", seq, pe.name, err)
		}
		prof, err := service.Lookup(pe.name)
		if err != nil {
			return nil, 0, fmt.Errorf("daemon: checkpoint %d: %w", seq, err)
		}
		pat, err := e.buildPattern(pe.name, pe.pattern, pe.load, prof.MaxLoadRPS)
		if err != nil {
			return nil, 0, fmt.Errorf("daemon: checkpoint %d, service %q: %w", seq, pe.name, err)
		}
		en := &entry{
			lc:         lc,
			name:       pe.name,
			load:       pe.load,
			pattern:    pe.pattern,
			qosMs:      pe.qosMs,
			seed:       pe.seed,
			pat:        pat,
			inSim:      pe.inSim,
			remove:     pe.remove,
			drainFor:   pe.drainFor,
			failReason: pe.failReason,
		}
		e.entries = append(e.entries, en)
		if pe.inSim {
			specs = append(specs, sim.ServiceSpec{Profile: prof, QoSTargetMs: pe.qosMs, Seed: pe.seed})
		}
	}
	if len(specs) == 0 {
		return nil, 0, fmt.Errorf("daemon: checkpoint %d hosts no services", seq)
	}

	// Build a world of the checkpointed shape, then overwrite every
	// component's state from the container. The checkpoint's own
	// validation (section framing, CRC, per-component shape checks)
	// rejects a mismatch.
	e.srv = sim.NewServer(e.simConfig(), specs)
	e.buildController()
	e.next = st.next
	e.obs = st.obs
	e.lastValid = st.lastValid
	e.tracker = st.tracker

	comps := []checkpoint.Checkpointable{e.srv, e.mgr, e.drainer}
	if e.guard != nil {
		comps = append(comps, e.guard)
	}
	if err := checkpoint.Unmarshal(data, comps...); err != nil {
		return nil, 0, fmt.Errorf("daemon: restoring checkpoint %d: %w", seq, err)
	}
	return e, seq, nil
}
