package daemon

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/sim"
)

// tinyScale is a minimal learning profile: small enough that a 90 s
// daemon run is fast, large enough that the manager actually trains
// (replay fills, target syncs, ε anneals) so a checkpoint carries
// non-trivial learning state.
func tinyScale() experiments.Scale {
	return experiments.Scale{
		Name:         "tiny",
		SharedHidden: []int{16},
		BranchHidden: 8,
		BatchSize:    8,
		TargetSync:   25,
		PERAnneal:    200,
		Gamma:        0.9,
		TrainPerStep: 1,
		Epsilon:      bdq.EpsilonSchedule{Start: 1, Mid: 0.5, End: 0.1, MidStep: 30, EndStep: 60},
		LearnS:       50,
		SummaryS:     10,
	}
}

// scriptAction mutates the daemon at a given interval boundary, the way
// an operator would through the admission API mid-run.
type scriptAction func(t *testing.T, e *Engine)

func admitAction(req AdmitRequest) scriptAction {
	return func(t *testing.T, e *Engine) {
		if _, err := e.Admit(req); err != nil {
			t.Fatalf("admit %s: %v", req.Name, err)
		}
	}
}

func drainAction(name string) scriptAction {
	return func(t *testing.T, e *Engine) {
		if _, err := e.Drain(name); err != nil {
			t.Fatalf("drain %s: %v", name, err)
		}
	}
}

// e2eScript is the operator schedule both the reference and the crashed
// run follow: admit a second service mid-run, drain it later. Keys are
// the interval at which the action fires (before that interval runs).
func e2eScript() map[int]scriptAction {
	return map[int]scriptAction{
		30: admitAction(AdmitRequest{Name: "xapian", Load: 0.4}),
		60: drainAction("xapian"),
	}
}

func e2eConfig(store *checkpoint.Store) Config {
	return Config{
		Scale:           tinyScale(),
		Seed:            42,
		Guard:           true,
		Store:           store,
		CheckpointEvery: 10,
		DrainTimeoutS:   15,
	}
}

// row renders one interval's full observable outcome with exact
// float64 bits (hex float formatting), so comparing rows asserts
// byte-identity, not approximate similarity.
func row(res sim.StepResult) string {
	s := fmt.Sprintf("t=%d p=%s", res.Time, hexF(res.TruePowerW))
	for _, sv := range res.Services {
		s += fmt.Sprintf(" [p99=%s c=%d f=%s q=%d rps=%s]",
			hexF(sv.P99Ms), sv.NumCores, hexF(sv.FreqGHz), sv.QueueLen, hexF(sv.OfferedRPS))
	}
	return s
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// runScripted steps e until interval `until`, firing script actions at
// their boundaries, and returns one row per executed interval (indexed
// from the engine's starting interval).
func runScripted(t *testing.T, e *Engine, until int, script map[int]scriptAction) []string {
	t.Helper()
	var rows []string
	for e.Next() < until {
		if act, ok := script[e.Next()]; ok {
			act(t, e)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatalf("step at t=%d: %v", e.Next(), err)
		}
		rows = append(rows, row(res))
	}
	return rows
}

// TestDaemonCrashResumeByteIdentical is the end-to-end property the
// daemon exists for: boot against the simulator, admit and drain
// services mid-run through the engine API, cut the process at a
// seeded-random checkpoint boundary, restore from disk, and verify the
// resumed trajectory matches the uninterrupted reference byte for byte
// — through a membership change on either side of the cut.
func TestDaemonCrashResumeByteIdentical(t *testing.T) {
	const total = 90
	// The cut lands on a random checkpoint boundary (seeded: reproducible
	// but not hand-picked), strictly inside the run so both the admission
	// (t=30) and the drain (t=60) interact with it in different ways
	// across seeds.
	cut := 10 * (1 + rand.New(rand.NewSource(7)).Intn(total/10-1))
	t.Logf("cutting at t=%d", cut)

	// Reference: the uninterrupted run (no store, same script).
	ref, err := New(e2eConfig(nil), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := runScripted(t, ref, total, e2eScript())

	// Crashed run: same config plus a checkpoint store; run to the cut,
	// make the boundary checkpoint durable, then drop the engine on the
	// floor — the in-process equivalent of SIGKILL.
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := New(e2eConfig(store), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, crashed, cut, e2eScript())
	if err := crashed.FlushCheckpoints(); err != nil {
		t.Fatalf("flushing checkpoints: %v", err)
	}

	// Restore from disk and replay the remainder of the script.
	restored, seq, err := RestoreLatest(e2eConfig(store))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if int(seq) != cut {
		t.Fatalf("restored from seq %d, want the cut at %d", seq, cut)
	}
	if restored.Next() != cut {
		t.Fatalf("restored engine resumes at t=%d, want %d", restored.Next(), cut)
	}
	got := runScripted(t, restored, total, e2eScript())
	if err := restored.FlushCheckpoints(); err != nil {
		t.Fatalf("flushing restored engine: %v", err)
	}

	if len(got) != total-cut {
		t.Fatalf("resumed run produced %d rows, want %d", len(got), total-cut)
	}
	for i, g := range got {
		if w := want[cut+i]; g != w {
			t.Fatalf("trajectory diverged at t=%d:\n  reference: %s\n  resumed:   %s", cut+i, w, g)
		}
	}
}

// TestDaemonLifecycleThroughRun drives the same script without a crash
// and checks the registry ends in the expected lifecycle positions:
// the drained service Stopped and evicted, the original still Running.
func TestDaemonLifecycleThroughRun(t *testing.T) {
	e, err := New(e2eConfig(nil), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, e, 90, e2eScript())

	views := e.Services()
	if len(views) != 2 {
		t.Fatalf("registry has %d services, want 2: %+v", len(views), views)
	}
	byName := map[string]ServiceView{}
	for _, v := range views {
		byName[v.Name] = v
	}
	if got := byName["masstree"].State; got != "running" {
		t.Errorf("masstree state = %s, want running", got)
	}
	if got := byName["xapian"].State; got != "stopped" {
		t.Errorf("xapian state = %s, want stopped", got)
	}
	if n := e.Metrics().Get("twigd_intervals_total", nil); n != 90 {
		t.Errorf("twigd_intervals_total = %v, want 90", n)
	}
	// The drain must have ramped the service down before eviction: the
	// transition counter records the full draining path.
	if n := e.Metrics().Get("twigd_lifecycle_transitions_total", Labels{"from": "draining", "to": "stopped"}); n != 1 {
		t.Errorf("draining→stopped transitions = %v, want 1", n)
	}
}

// TestDaemonHotReloadKeepsLoopRunning schedules a weight reload mid-run
// and verifies the control loop does not miss an interval and the
// reload is reported in metrics.
func TestDaemonHotReloadKeepsLoopRunning(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(e2eConfig(store), []AdmitRequest{{Name: "masstree", Load: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	script := map[int]scriptAction{
		25: func(t *testing.T, e *Engine) {
			if err := e.FlushCheckpoints(); err != nil {
				t.Fatalf("flush before reload: %v", err)
			}
			if err := e.RequestReload(); err != nil {
				t.Fatalf("request reload: %v", err)
			}
		},
	}
	runScripted(t, e, 40, script)
	if err := e.FlushCheckpoints(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if n := e.Metrics().Get("twigd_weight_reloads_total", Labels{"result": "ok"}); n != 1 {
		t.Errorf("successful reloads = %v, want 1 (errors: %v)", n,
			e.Metrics().Get("twigd_weight_reloads_total", Labels{"result": "error"}))
	}
	if e.Next() != 40 {
		t.Errorf("loop at t=%d after reload run, want 40", e.Next())
	}
}
