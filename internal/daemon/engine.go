package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Named admission and operation errors. The HTTP layer maps each to a
// 4xx status; tests assert them with errors.Is.
var (
	ErrUnknownService = errors.New("daemon: unknown service profile")
	ErrDuplicate      = errors.New("daemon: service already registered")
	ErrBadLoad        = errors.New("daemon: load fraction must be a finite value in (0, 1.5]")
	ErrUnknownPattern = errors.New("daemon: unknown load pattern (want fixed, stepwise or diurnal)")
	ErrNoSuchService  = errors.New("daemon: no such service")
	ErrFaultsArmed    = errors.New("daemon: membership is fixed while a fault scenario is armed")
	ErrNoStore        = errors.New("daemon: no checkpoint store configured")
)

// AdmitRequest registers one service with the daemon.
type AdmitRequest struct {
	// Name must be a built-in service profile.
	Name string `json:"name"`
	// Load is the offered-load fraction of the profile's maximum RPS.
	Load float64 `json:"load"`
	// Pattern shapes the load over time: fixed, stepwise or diurnal
	// (empty means fixed).
	Pattern string `json:"pattern,omitempty"`
	// QoSTargetMs overrides the calibrated tail-latency target
	// (0 means calibrate, the Table II methodology).
	QoSTargetMs float64 `json:"qos_target_ms,omitempty"`
}

// ServiceView is the API representation of one registered service.
type ServiceView struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Retries     int     `json:"retries"`
	Load        float64 `json:"load"`
	Pattern     string  `json:"pattern"`
	QoSTargetMs float64 `json:"qos_target_ms"`
	// Reason explains the most recent placement failure (set on a failed
	// or dead-lettered service, cleared on successful placement).
	Reason string `json:"reason,omitempty"`
}

// Config assembles a daemon engine.
type Config struct {
	// Scale selects the learning profile (experiments.QuickScale or
	// PaperScale; tests may pass a smaller custom scale). A restored
	// run must be started at the same scale it was checkpointed at.
	Scale experiments.Scale
	// Seed fixes every random stream; equal seeds give bit-identical runs.
	Seed int64
	// Sim, when non-nil, replaces the default simulated platform — a
	// scenario world's SKU, DVFS range and latency tax. The measurement
	// seed and fault scenario are still taken from Seed and Faults. A
	// restored run must be started with the same Sim it was
	// checkpointed at (the platform fingerprint is verified on restore).
	Sim *sim.Config
	// Guard wraps the manager in the resilient ctrl.Guard harness.
	Guard bool
	// Faults, when non-nil and non-zero, arms the named deterministic
	// fault scenario. Runtime admission/removal is rejected while armed
	// (the injector's schedule is sized to the service count).
	Faults *faults.Scenario
	// Store enables periodic crash-consistent checkpoints (nil disables).
	Store *checkpoint.Store
	// CheckpointEvery is the checkpoint cadence in simulated seconds
	// (values < 1 become 60).
	CheckpointEvery int
	// MaxRetries bounds lifecycle Fail→Pending requeues before a
	// service dead-letters (negative values become DefaultMaxRetries).
	MaxRetries int
	// MaxLive bounds how many services the simulator hosts at once
	// (0 means unlimited). A boundary placement over the bound fails and
	// consumes a lifecycle retry, eventually dead-lettering the service.
	MaxLive int
	// DrainTimeoutS force-completes a drain whose queue has not emptied
	// after this many intervals (values < 1 become 30).
	DrainTimeoutS int
	// PatternOverrides substitutes a custom load pattern (e.g. a CSV
	// trace) for a service name; the same override must be supplied
	// again on restart, since a pattern closure cannot be checkpointed.
	PatternOverrides map[string]loadgen.Pattern
	// Now is the wall clock used for timing metrics (nil means time.Now).
	Now func() time.Time
	// FastMath opts the process into the fused FMA/AVX-512 GEMM kernels
	// (mat.SetFastMath). Fast mode forfeits bit-identical resume and
	// cross-machine reproducibility — a checkpoint taken under fast math
	// replays with trailing-ulp drift — but the checkpoint format and the
	// default path are unchanged. A no-op on CPUs without FMA.
	FastMath bool
}

func (c *Config) normalize() {
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 60
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.DrainTimeoutS < 1 {
		c.DrainTimeoutS = 30
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

func (c Config) faultsArmed() bool { return c.Faults != nil && !c.Faults.IsZero() }

// entry is one registered service: its lifecycle plus everything needed
// to rebuild its spec and load pattern deterministically after a crash.
type entry struct {
	lc       *Lifecycle
	name     string
	load     float64
	pattern  string
	qosMs    float64
	seed     int64
	pat        loadgen.Pattern
	inSim      bool   // currently hosted by the simulator
	remove     bool   // deregister once terminal
	drainFor   int    // intervals spent draining, for the timeout
	failReason string // why the last placement failed (sticky on dead-letter)
}

func (en *entry) view() ServiceView {
	return ServiceView{
		Name:        en.name,
		State:       en.lc.State().String(),
		Retries:     en.lc.Retries(),
		Load:        en.load,
		Pattern:     en.pattern,
		QoSTargetMs: en.qosMs,
		Reason:      en.failReason,
	}
}

// Engine is the daemon control plane: the simulated server, the Twig
// manager wrapped in drain (and optionally guard) harnesses, the
// service registry with its lifecycle machines, the metrics registry,
// and the crash-consistent checkpoint cut at interval boundaries. One
// Step is one monitoring interval. The admission API mutates the
// registry under the engine lock; world changes (placement, eviction,
// weight reload) apply at the next interval boundary so the control
// loop itself stays deterministic for a given admission/drain schedule.
type Engine struct {
	mu      sync.Mutex
	cfg     Config
	metrics *Registry
	writer  *checkpoint.AsyncWriter

	entries  []*entry
	gen      int // controller rebuild generation, seeds fresh learners
	admitted int // monotonic admission counter, seeds new services

	srv        *sim.Server
	pools      *bdq.Pools // shared batched-GEMM agent pools, survive rebuilds
	mgr        *core.Manager
	guard      *ctrl.Guard
	drainer    *ctrl.Drainer
	controller ctrl.Controller
	tracker    *ctrl.ObservationTracker
	obs        ctrl.Observation
	lastValid  sim.Assignment
	next       int // first interval still to execute

	reloadReq bool
	lastRes   sim.StepResult
	haveRes   bool
	resumed   uint64 // sequence restored from (0 for a fresh engine)
}

// New builds an engine hosting the initial services (at least one).
// Every initial request is validated and placed synchronously, so the
// first Step already drives a running system.
func New(cfg Config, initial []AdmitRequest) (*Engine, error) {
	cfg.normalize()
	if cfg.FastMath {
		mat.SetFastMath(true)
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("daemon: at least one initial service required")
	}
	if cfg.MaxLive > 0 && len(initial) > cfg.MaxLive {
		return nil, fmt.Errorf("daemon: %d initial services exceed the live-capacity limit %d", len(initial), cfg.MaxLive)
	}
	e := &Engine{cfg: cfg, metrics: NewRegistry()}
	e.describeMetrics()
	if cfg.Store != nil {
		e.writer = checkpoint.NewAsyncWriter(cfg.Store)
		cfg.Store.SetRejectHook(e.corruptHook())
	}
	for _, req := range initial {
		if _, err := e.register(req); err != nil {
			return nil, err
		}
	}
	// The initial membership builds the world in one shot so the fault
	// injector (when armed) is sized to the full initial service count.
	specs := make([]sim.ServiceSpec, len(e.entries))
	for i, en := range e.entries {
		specs[i] = sim.ServiceSpec{
			Profile:     service.MustLookup(en.name),
			QoSTargetMs: en.qosMs,
			Seed:        en.seed,
		}
	}
	e.srv = sim.NewServer(e.simConfig(), specs)
	for _, en := range e.entries {
		en.inSim = true
		e.fire(en, Place)
		e.fire(en, Start)
	}
	e.gen++
	e.buildController()
	return e, nil
}

func (e *Engine) simConfig() sim.Config {
	sc := sim.DefaultConfig()
	if e.cfg.Sim != nil {
		sc = *e.cfg.Sim
	}
	sc.MeasurementSeed = e.cfg.Seed
	if e.cfg.faultsArmed() {
		sc.Faults = e.cfg.Faults
	}
	return sc
}

// register validates an AdmitRequest and appends a Pending entry.
func (e *Engine) register(req AdmitRequest) (*entry, error) {
	prof, err := service.Lookup(req.Name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, req.Name)
	}
	for _, en := range e.entries {
		if en.name == req.Name {
			return nil, fmt.Errorf("%w: %q is %s", ErrDuplicate, req.Name, en.lc.State())
		}
	}
	if math.IsNaN(req.Load) || math.IsInf(req.Load, 0) || req.Load <= 0 || req.Load > 1.5 {
		return nil, fmt.Errorf("%w: got %v", ErrBadLoad, req.Load)
	}
	if req.Pattern == "" {
		req.Pattern = "fixed"
	}
	pat, err := e.buildPattern(req.Name, req.Pattern, req.Load, prof.MaxLoadRPS)
	if err != nil {
		return nil, err
	}
	qos := req.QoSTargetMs
	if qos <= 0 {
		qos = experiments.QoSTarget(req.Name)
	}
	en := &entry{
		lc:      NewLifecycle(e.cfg.MaxRetries),
		name:    req.Name,
		load:    req.Load,
		pattern: req.Pattern,
		qosMs:   qos,
		seed:    e.cfg.Seed + int64(e.admitted)*101,
		pat:     pat,
	}
	e.admitted++
	e.entries = append(e.entries, en)
	return en, nil
}

// buildPattern maps a pattern name to a load generator over the
// service's saturation load, honouring any configured override.
func (e *Engine) buildPattern(svcName, pattern string, frac, maxRPS float64) (loadgen.Pattern, error) {
	if p, ok := e.cfg.PatternOverrides[svcName]; ok {
		return p, nil
	}
	switch pattern {
	case "fixed":
		return loadgen.Fixed(frac * maxRPS), nil
	case "stepwise":
		return loadgen.NewStepWise(0.2*frac*maxRPS, frac*maxRPS, 0.2, 200), nil
	case "diurnal":
		return loadgen.Diurnal{MinRPS: 0.3 * frac * maxRPS, MaxRPS: frac * maxRPS, PeriodS: 3600}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPattern, pattern)
	}
}

// liveEntries returns the hosted entries in simulator index order
// (registry order filtered to inSim).
func (e *Engine) liveEntries() []*entry {
	var out []*entry
	for _, en := range e.entries {
		if en.inSim {
			out = append(out, en)
		}
	}
	return out
}

func (e *Engine) simIndexOf(target *entry) int {
	idx := 0
	for _, en := range e.entries {
		if en == target {
			if !en.inSim {
				return -1
			}
			return idx
		}
		if en.inSim {
			idx++
		}
	}
	return -1
}

// fire applies a lifecycle event to an entry and records the transition
// metric. Illegal transitions are returned to the caller untouched.
func (e *Engine) fire(en *entry, ev Event) (State, error) {
	from := en.lc.State()
	st, err := en.lc.Fire(ev)
	if err == nil {
		e.metrics.Add("twigd_lifecycle_transitions_total",
			Labels{"from": from.String(), "to": st.String()}, 1)
	}
	return st, err
}

// buildController reconstructs the manager and its wrappers for the
// current live membership at the current generation. The BDQ agent's
// network shape is fixed by the service count at construction, so a
// membership change means a fresh learner (seeded by the generation, so
// the rebuild is deterministic); the surviving services' simulator
// state is untouched.
func (e *Engine) buildController() {
	live := e.liveEntries()
	services := make([]core.ServiceConfig, len(live))
	for i, en := range live {
		services[i] = core.ServiceConfig{
			Name:        en.name,
			QoSTargetMs: en.qosMs,
			MaxLoadRPS:  service.MustLookup(en.name).MaxLoadRPS,
			Power:       experiments.PowerModelFor(en.name),
		}
	}
	sc := e.cfg.Scale
	cfg := core.Config{
		Services:  services,
		NumCores:  len(e.srv.ManagedCores()),
		MaxPowerW: e.srv.MaxPowerW(),
		Eta:       5,
		Reward:    core.DefaultRewardConfig(),
		Agent: bdq.AgentConfig{
			Spec: bdq.Spec{
				SharedHidden: sc.SharedHidden,
				BranchHidden: sc.BranchHidden,
				Dropout:      sc.Dropout,
			},
			Gamma:          sc.Gamma,
			TrainPerStep:   sc.TrainPerStep,
			BatchSize:      sc.BatchSize,
			TargetSync:     sc.TargetSync,
			PERAnnealSteps: sc.PERAnneal,
			Epsilon:        sc.Epsilon,
			UsePER:         true,
			Seed:           e.cfg.Seed + int64(e.gen)*7919,
		},
	}
	// The manager's agent lives in a pooled parameter arena shared
	// across controller generations: a rebuild drains the old manager
	// (releasing its arena slots for the next generation, which reuses
	// the same storage) and attaches the fresh learner. The pooled path
	// is bit-identical to the per-agent one, so resume and determinism
	// guarantees are unchanged.
	if e.pools == nil {
		e.pools = bdq.NewPools()
	}
	if e.mgr != nil {
		e.mgr.Close()
	}
	e.mgr = core.NewManagerPooled(cfg, e.srv.ManagedCores(), e.pools)
	var inner ctrl.Controller = e.mgr
	if e.cfg.Guard {
		e.guard = ctrl.NewGuard(e.mgr, ctrl.DefaultGuardConfig(e.srv.ManagedCores()))
		inner = e.guard
	} else {
		e.guard = nil
	}
	e.drainer = ctrl.NewDrainer(inner, len(live))
	for i, en := range live {
		e.drainer.SetDraining(i, en.lc.State() == Draining)
	}
	e.controller = e.drainer
	e.tracker = &ctrl.ObservationTracker{}
	e.obs = ctrl.InitialObservation(e.srv)
	e.lastValid = safeAssignment(e.srv)
}

// Admit registers a service at runtime; it is placed at the next
// interval boundary. Rejected with a named error when the profile is
// unknown, the name is already registered, the load or pattern is
// invalid, or a fault scenario pins the membership.
func (e *Engine) Admit(req AdmitRequest) (ServiceView, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.faultsArmed() {
		return ServiceView{}, ErrFaultsArmed
	}
	en, err := e.register(req)
	if err != nil {
		return ServiceView{}, err
	}
	return en.view(), nil
}

// Drain starts graceful removal: the service stops receiving load and
// its core allocation ramps down; once its queue empties (or the drain
// times out) it stops and is evicted at the next boundary. Draining a
// still-Pending service cancels the admission. A service already
// draining or terminal is rejected with ErrIllegalTransition.
func (e *Engine) Drain(name string) (ServiceView, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.find(name)
	if en == nil {
		return ServiceView{}, fmt.Errorf("%w: %q", ErrNoSuchService, name)
	}
	if e.cfg.faultsArmed() {
		return ServiceView{}, ErrFaultsArmed
	}
	st, err := e.fire(en, Drain)
	if err != nil {
		return ServiceView{}, err
	}
	en.drainFor = 0
	if st == Draining {
		if idx := e.simIndexOf(en); idx >= 0 {
			e.drainer.SetDraining(idx, true)
		}
	}
	return en.view(), nil
}

// Delete deregisters a service. A terminal (stopped or dead-lettered)
// service leaves the registry immediately; otherwise a drain is started
// (as by Drain) and the entry is reaped once it stops. The bool reports
// whether the entry is already gone.
func (e *Engine) Delete(name string) (ServiceView, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.find(name)
	if en == nil {
		return ServiceView{}, false, fmt.Errorf("%w: %q", ErrNoSuchService, name)
	}
	if en.lc.State().Terminal() && !en.inSim {
		e.unregister(en)
		return en.view(), true, nil
	}
	if e.cfg.faultsArmed() {
		return ServiceView{}, false, ErrFaultsArmed
	}
	if !en.lc.State().Terminal() && en.lc.State() != Draining {
		st, err := e.fire(en, Drain)
		if err != nil {
			return ServiceView{}, false, err
		}
		if st == Draining {
			en.drainFor = 0
			if idx := e.simIndexOf(en); idx >= 0 {
				e.drainer.SetDraining(idx, true)
			}
		}
	}
	en.remove = true
	return en.view(), false, nil
}

// RequestReload schedules a hot weight reload from the newest valid
// checkpoint at the next interval boundary, without dropping the
// control loop. Returns ErrNoStore when no store is configured.
func (e *Engine) RequestReload() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Store == nil {
		return ErrNoStore
	}
	e.reloadReq = true
	return nil
}

// Services lists the registry.
func (e *Engine) Services() []ServiceView {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ServiceView, len(e.entries))
	for i, en := range e.entries {
		out[i] = en.view()
	}
	return out
}

func (e *Engine) find(name string) *entry {
	for _, en := range e.entries {
		if en.name == name {
			return en
		}
	}
	return nil
}

func (e *Engine) unregister(target *entry) {
	for i, en := range e.entries {
		if en == target {
			e.entries = append(e.entries[:i], e.entries[i+1:]...)
			return
		}
	}
}

// Next returns the next interval to execute (the simulated time).
func (e *Engine) Next() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next
}

// ResumedFrom returns the checkpoint sequence this engine was restored
// from (0 for a fresh engine).
func (e *Engine) ResumedFrom() uint64 { return e.resumed }

// Manager exposes the current Twig manager for -save/-load plumbing;
// callers must not race it against Step.
func (e *Engine) Manager() *core.Manager {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mgr
}

// Metrics exposes the registry backing /metrics.
func (e *Engine) Metrics() *Registry { return e.metrics }

// NumCores returns the size of the managed core set.
func (e *Engine) NumCores() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.srv.ManagedCores())
}

// Step runs one monitoring interval: apply boundary work (placements,
// evictions, weight reload), decide, actuate, observe, update the
// lifecycle machines and metrics, and cut a checkpoint on cadence.
func (e *Engine) Step() (sim.StepResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	start := e.cfg.Now()
	e.applyBoundary()
	t := e.next

	asg, panicked := safeDecide(e.controller, e.obs)
	if panicked {
		e.metrics.Add("twigd_decide_panics_total", nil, 1)
		asg = e.lastValid
	}

	live := e.liveEntries()
	loads := make([]float64, len(live))
	for i, en := range live {
		if en.lc.State() == Running {
			loads[i] = en.pat.RPS(t)
		}
	}
	res, err := e.srv.Step(asg, loads)
	if err != nil {
		e.metrics.Add("twigd_step_errors_total", nil, 1)
		asg = e.lastValid
		if res, err = e.srv.Step(asg, loads); err != nil {
			return sim.StepResult{}, fmt.Errorf("daemon: fallback assignment rejected: %w", err)
		}
	}
	e.lastValid = asg
	e.lastRes, e.haveRes = res, true
	e.obs = e.tracker.Observe(e.srv, res)
	e.next = t + 1

	// Drained detection: a draining service receives no load, so its
	// queue only shrinks; once it empties (or the drain times out) the
	// service stops and is evicted at the next boundary.
	for i, en := range live {
		if en.lc.State() != Draining {
			continue
		}
		en.drainFor++
		if res.Services[i].QueueLen == 0 || en.drainFor > e.cfg.DrainTimeoutS {
			e.fire(en, Drained)
		}
	}

	e.updateMetrics(res, live, e.cfg.Now().Sub(start))
	if e.writer != nil && e.next%e.cfg.CheckpointEvery == 0 {
		e.writer.Submit(uint64(e.next), e.marshal())
	}
	return res, nil
}

// applyBoundary performs the world changes queued since the previous
// interval, at the checkpoint-safe boundary before Decide.
func (e *Engine) applyBoundary() {
	changed := false
	// Evict terminal services still hosted by the simulator.
	for _, en := range e.entries {
		if en.inSim && en.lc.State().Terminal() {
			if idx := e.simIndexOf(en); idx >= 0 {
				if err := e.srv.RemoveService(idx); err == nil {
					en.inSim = false
					changed = true
				}
			}
		}
	}
	// Place pending admissions, honouring the live-capacity bound.
	for _, en := range e.entries {
		if en.lc.State() != Pending || en.inSim {
			continue
		}
		if e.cfg.MaxLive > 0 && len(e.liveEntries()) >= e.cfg.MaxLive {
			e.failPlacement(en, fmt.Sprintf("live-capacity limit %d reached", e.cfg.MaxLive))
			continue
		}
		err := e.srv.AddService(sim.ServiceSpec{
			Profile:     service.MustLookup(en.name),
			QoSTargetMs: en.qosMs,
			Seed:        en.seed,
		})
		if err != nil {
			e.failPlacement(en, err.Error())
			continue
		}
		en.inSim = true
		en.failReason = ""
		changed = true
		e.fire(en, Place)
		e.fire(en, Start)
	}
	// Reap entries flagged for deregistration once they are terminal.
	for i := 0; i < len(e.entries); {
		en := e.entries[i]
		if en.remove && en.lc.State().Terminal() && !en.inSim {
			e.entries = append(e.entries[:i], e.entries[i+1:]...)
			continue
		}
		i++
	}
	if changed {
		e.gen++
		e.buildController()
	}
	if e.reloadReq {
		e.reloadReq = false
		e.doReload()
	}
}

// failPlacement records one failed boundary placement: the metric is
// bumped, the lifecycle machine consumes a retry (dead-lettering once
// the budget is spent), and the cause is kept on the entry so
// /services and /status can explain why the service is not running.
func (e *Engine) failPlacement(en *entry, cause string) {
	e.metrics.Add("twigd_placement_failures_total", nil, 1)
	st, _ := e.fire(en, Fail)
	if st == DeadLetter {
		en.failReason = fmt.Sprintf("dead-lettered after %d attempts: %s", en.lc.Retries()+1, cause)
	} else {
		en.failReason = "placement failed: " + cause
	}
}

// corruptHook returns the checkpoint-store reject callback: every
// checkpoint skipped as corrupt during a fallback scan is counted and
// named, so silent restore degradation shows up in the scrape and log.
func (e *Engine) corruptHook() func(path string, err error) {
	return func(path string, err error) {
		e.metrics.Add("twigd_checkpoint_corrupt_total", nil, 1)
		fmt.Fprintf(os.Stderr, "twigd: skipping corrupt checkpoint %s: %v\n", path, err)
	}
}

// doReload pulls the newest valid checkpoint's manager section into the
// live manager — weights, optimiser moments, replay and annealing
// position — without touching the simulator or the loop position.
func (e *Engine) doReload() {
	_, data, err := e.cfg.Store.ReadLatest()
	if err == nil {
		err = e.mgr.LoadCheckpoint(bytes.NewReader(data))
	}
	result := "ok"
	if err != nil {
		result = "error"
		fmt.Fprintf(os.Stderr, "twigd: weight reload failed: %v\n", err)
	}
	e.metrics.Add("twigd_weight_reloads_total", Labels{"result": result}, 1)
}

// RunTo advances the engine to the given simulated second, invoking
// hook (when non-nil) after every interval.
func (e *Engine) RunTo(seconds int, hook func(t int, res sim.StepResult)) error {
	for e.Next() < seconds {
		res, err := e.Step()
		if err != nil {
			return err
		}
		if hook != nil {
			hook(res.Time, res)
		}
	}
	return nil
}

// CheckpointNow synchronously cuts a checkpoint at the current boundary
// and waits for it to reach disk (no-op without a store). Call before
// process exit so the final state is durable regardless of cadence.
func (e *Engine) CheckpointNow() error {
	if e.writer == nil {
		return nil
	}
	e.mu.Lock()
	data := e.marshal()
	seq := uint64(e.next)
	e.mu.Unlock()
	e.writer.Submit(seq, data)
	return e.writer.Flush()
}

// FlushCheckpoints waits for every submitted checkpoint to reach disk
// (the e2e harness uses it to make a boundary cut durable before
// simulating a kill).
func (e *Engine) FlushCheckpoints() error {
	if e.writer == nil {
		return nil
	}
	return e.writer.Flush()
}

func safeDecide(c ctrl.Controller, obs ctrl.Observation) (asg sim.Assignment, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return c.Decide(obs), false
}

// safeAssignment is the conservative fallback mapping: every service on
// every managed core at the node's maximum DVFS setting.
func safeAssignment(srv *sim.Server) sim.Assignment {
	lo, hi := srv.FreqRange()
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, srv.NumServices()),
		IdleFreqGHz: lo,
	}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{Cores: srv.ManagedCores(), FreqGHz: hi}
	}
	return asg
}
