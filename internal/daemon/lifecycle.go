// Package daemon promotes twigd from a fire-and-forget demo binary into
// a long-running control-plane daemon: a service lifecycle state machine
// with bounded retries and a dead-letter terminal state, a runtime
// admission HTTP API layered on the status server, Prometheus-style
// metrics export, hot weight reload from the checkpoint store, and the
// crash-consistent checkpoint/restore of the whole control plane that
// makes "kill -9 under load, resume bit-identically" a CI property
// rather than a manual recipe.
package daemon

import (
	"errors"
	"fmt"
)

// State is a lifecycle position of one managed service.
//
//	Pending ──Place──▶ Placed ──Start──▶ Running
//	   │ ▲                │                 │
//	   │ └───Fail(retry)──┴──────Fail───────┤
//	   │                  │                 │
//	 Drain              Drain             Drain
//	   │                  ▼                 ▼
//	   └──────────▶    Stopped ◀─Drained─ Draining ──Fail──▶ Stopped
//
// Fail from Pending/Placed/Running re-enqueues the service as Pending
// until the retry budget is exhausted, after which it lands in
// DeadLetter. Stopped and DeadLetter are terminal: every event on them
// is ErrIllegalTransition.
type State uint8

const (
	// Pending: admitted but not yet hosted by the simulator.
	Pending State = iota
	// Placed: hosted (cores assignable) but not yet serving.
	Placed
	// Running: serving load under the controller.
	Running
	// Draining: load cut to zero, core allocation ramping down.
	Draining
	// Stopped: drained and evicted; terminal.
	Stopped
	// DeadLetter: failed more times than the retry budget; terminal.
	DeadLetter

	numStates = int(DeadLetter) + 1
)

// String returns the lower-case state name used in the API and metrics.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Placed:
		return "placed"
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	case DeadLetter:
		return "dead-letter"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether no event can leave s.
func (s State) Terminal() bool { return s == Stopped || s == DeadLetter }

// Event is a lifecycle input.
type Event uint8

const (
	// Place: the simulator accepted the service.
	Place Event = iota
	// Start: the controller took over; the service is live.
	Start
	// Drain: an operator asked for graceful removal (or cancellation of
	// a not-yet-placed admission).
	Drain
	// Drained: the queue emptied (or the drain timed out).
	Drained
	// Fail: placement or the service itself failed.
	Fail

	numEvents = int(Fail) + 1
)

// String returns the lower-case event name.
func (e Event) String() string {
	switch e {
	case Place:
		return "place"
	case Start:
		return "start"
	case Drain:
		return "drain"
	case Drained:
		return "drained"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// ErrIllegalTransition is wrapped by every Fire rejection, including any
// event on a terminal state.
var ErrIllegalTransition = errors.New("daemon: illegal lifecycle transition")

// DefaultMaxRetries is the Fail→Pending re-enqueue budget before a
// service is dead-lettered.
const DefaultMaxRetries = 3

// Transition returns the successor of (s, ev) in the legal-transition
// table, or ok=false when the pair is illegal. Retry accounting is
// layered on top by Lifecycle.Fire: a Fail whose successor is Pending
// becomes DeadLetter once the budget is spent.
func Transition(s State, ev Event) (State, bool) {
	switch s {
	case Pending:
		switch ev {
		case Place:
			return Placed, true
		case Drain: // cancel an admission that never placed
			return Stopped, true
		case Fail:
			return Pending, true
		}
	case Placed:
		switch ev {
		case Start:
			return Running, true
		case Drain:
			return Draining, true
		case Fail:
			return Pending, true
		}
	case Running:
		switch ev {
		case Drain:
			return Draining, true
		case Fail:
			return Pending, true
		}
	case Draining:
		switch ev {
		case Drained:
			return Stopped, true
		case Fail: // it was leaving anyway; don't resurrect it
			return Stopped, true
		}
	}
	return s, false
}

// Lifecycle tracks one service's state and retry budget.
type Lifecycle struct {
	state      State
	retries    int
	maxRetries int
}

// NewLifecycle returns a Pending lifecycle with the given retry budget
// (negative budgets are treated as zero: the first Fail dead-letters).
func NewLifecycle(maxRetries int) *Lifecycle {
	if maxRetries < 0 {
		maxRetries = 0
	}
	return &Lifecycle{maxRetries: maxRetries}
}

// RestoreLifecycle rebuilds a lifecycle at a known position (checkpoint
// restore). The position must be internally consistent.
func RestoreLifecycle(state State, retries, maxRetries int) (*Lifecycle, error) {
	if int(state) >= numStates {
		return nil, fmt.Errorf("daemon: unknown lifecycle state %d", state)
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if retries < 0 || retries > maxRetries {
		return nil, fmt.Errorf("daemon: retry count %d outside budget [0,%d]", retries, maxRetries)
	}
	return &Lifecycle{state: state, retries: retries, maxRetries: maxRetries}, nil
}

// State returns the current state.
func (l *Lifecycle) State() State { return l.state }

// Retries returns how many Fail→Pending re-enqueues have happened.
func (l *Lifecycle) Retries() int { return l.retries }

// MaxRetries returns the retry budget.
func (l *Lifecycle) MaxRetries() int { return l.maxRetries }

// Fire applies ev. On an illegal pair the state is unchanged and the
// returned error wraps ErrIllegalTransition. A Fail that would re-enqueue
// the service consumes one retry; with the budget spent it dead-letters
// instead.
func (l *Lifecycle) Fire(ev Event) (State, error) {
	next, ok := Transition(l.state, ev)
	if !ok {
		return l.state, fmt.Errorf("%w: %s + %s", ErrIllegalTransition, l.state, ev)
	}
	if ev == Fail && next == Pending {
		if l.retries >= l.maxRetries {
			next = DeadLetter
		} else {
			l.retries++
		}
	}
	l.state = next
	return next, nil
}
