package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// LinearModel is a fitted linear regression y ≈ Σ Coef[i]·x[i] + Intercept.
type LinearModel struct {
	Coef      []float64
	Intercept float64
}

// Predict evaluates the model on one feature vector.
func (m *LinearModel) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic("stats: Predict feature length mismatch")
	}
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

// FitRidge fits a ridge regression (λ = 0 gives ordinary least squares)
// by solving the regularised normal equations with Gaussian elimination.
// X is the design matrix (rows = samples), y the targets. The intercept
// is not regularised.
func FitRidge(X [][]float64, y []float64, lambda float64) (*LinearModel, error) {
	return fitRidge(X, y, lambda, true)
}

// FitRidgeNoIntercept is FitRidge constrained through the origin, for
// physical models like Eq. 2 that have no constant term.
func FitRidgeNoIntercept(X [][]float64, y []float64, lambda float64) (*LinearModel, error) {
	return fitRidge(X, y, lambda, false)
}

func fitRidge(X [][]float64, y []float64, lambda float64, intercept bool) (*LinearModel, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: %d samples vs %d targets", n, len(y))
	}
	d := len(X[0])
	// Optionally augment with a bias column: solve for [coef..., intercept].
	k := d
	if intercept {
		k = d + 1
	}
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k+1) // last column is Aᵀy
	}
	row := make([]float64, k)
	for s := 0; s < n; s++ {
		if len(X[s]) != d {
			return nil, fmt.Errorf("stats: ragged design matrix at row %d", s)
		}
		copy(row, X[s])
		if intercept {
			row[d] = 1
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][k] += row[i] * y[s]
		}
	}
	for i := 0; i < d; i++ { // do not regularise the intercept
		ata[i][i] += lambda
	}
	sol, err := solveGaussian(ata)
	if err != nil {
		return nil, err
	}
	m := &LinearModel{Coef: sol[:d]}
	if intercept {
		m.Intercept = sol[d]
	}
	return m, nil
}

// solveGaussian solves the augmented system [A|b] with partial pivoting.
func solveGaussian(aug [][]float64) ([]float64, error) {
	n := len(aug)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col] / aug[col][col]
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = aug[i][n] / aug[i][i]
	}
	return out, nil
}

// MSE returns the mean squared error of predictions vs targets.
func MSE(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic("stats: MSE length mismatch")
	}
	var s float64
	for i := range pred {
		d := pred[i] - y[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination.
func R2(pred, y []float64) float64 {
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		t := y[i] - my
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// PAAE returns the percentage absolute average error,
// 100·mean(|pred−y| / |y|), the metric of Fig. 4. Targets with |y| below
// eps are skipped to avoid division blow-ups.
func PAAE(pred, y []float64, eps float64) float64 {
	if len(pred) != len(y) {
		panic("stats: PAAE length mismatch")
	}
	var s float64
	n := 0
	for i := range pred {
		if math.Abs(y[i]) < eps {
			continue
		}
		s += math.Abs(pred[i]-y[i]) / math.Abs(y[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// KFoldCV runs k-fold cross-validation of a ridge fit with the given λ
// and returns the mean held-out MSE. Folds are formed from a seeded
// shuffle so results are reproducible.
func KFoldCV(X [][]float64, y []float64, lambda float64, k int, rng *rand.Rand) (float64, error) {
	return kFoldCV(X, y, lambda, k, rng, true)
}

// KFoldCVNoIntercept is KFoldCV for through-the-origin fits.
func KFoldCVNoIntercept(X [][]float64, y []float64, lambda float64, k int, rng *rand.Rand) (float64, error) {
	return kFoldCV(X, y, lambda, k, rng, false)
}

func kFoldCV(X [][]float64, y []float64, lambda float64, k int, rng *rand.Rand, intercept bool) (float64, error) {
	n := len(X)
	if k < 2 || n < k {
		return 0, fmt.Errorf("stats: cannot %d-fold %d samples", k, n)
	}
	perm := rng.Perm(n)
	var total float64
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for i, p := range perm {
			if i%k == fold {
				teX = append(teX, X[p])
				teY = append(teY, y[p])
			} else {
				trX = append(trX, X[p])
				trY = append(trY, y[p])
			}
		}
		m, err := fitRidge(trX, trY, lambda, intercept)
		if err != nil {
			return 0, err
		}
		pred := make([]float64, len(teX))
		for i, x := range teX {
			pred[i] = m.Predict(x)
		}
		total += MSE(pred, teY)
	}
	return total / float64(k), nil
}

// RandomSearchRidge draws trials λ values log-uniformly from
// [lo, hi] and returns the λ with the best k-fold CV error together with
// the model refit on all data — the paper's "random grid search with
// 5-fold cross validation".
func RandomSearchRidge(X [][]float64, y []float64, lo, hi float64, trials, k int, rng *rand.Rand) (*LinearModel, float64, error) {
	return randomSearchRidge(X, y, lo, hi, trials, k, rng, true)
}

// RandomSearchRidgeNoIntercept is RandomSearchRidge for models without a
// constant term, like the paper's Eq. 2.
func RandomSearchRidgeNoIntercept(X [][]float64, y []float64, lo, hi float64, trials, k int, rng *rand.Rand) (*LinearModel, float64, error) {
	return randomSearchRidge(X, y, lo, hi, trials, k, rng, false)
}

func randomSearchRidge(X [][]float64, y []float64, lo, hi float64, trials, k int, rng *rand.Rand, intercept bool) (*LinearModel, float64, error) {
	if lo <= 0 || hi < lo {
		return nil, 0, fmt.Errorf("stats: invalid lambda range [%v, %v]", lo, hi)
	}
	bestLambda, bestErr := lo, math.Inf(1)
	for t := 0; t < trials; t++ {
		l := lo * math.Exp(rng.Float64()*math.Log(hi/lo))
		e, err := kFoldCV(X, y, l, k, rng, intercept)
		if err != nil {
			return nil, 0, err
		}
		if e < bestErr {
			bestErr, bestLambda = e, l
		}
	}
	m, err := fitRidge(X, y, bestLambda, intercept)
	return m, bestLambda, err
}
