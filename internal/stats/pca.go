package stats

import (
	"math"
	"sort"
)

// PCA holds the result of a principal component analysis: eigenvalues in
// descending order with their eigenvectors (components) as rows.
type PCA struct {
	Eigenvalues []float64
	Components  [][]float64 // Components[i] is the i-th principal axis
}

// PCAFromColumns performs PCA on the column series via the covariance
// matrix and a Jacobi eigenvalue decomposition.
func PCAFromColumns(cols [][]float64) *PCA {
	return PCAFromCovariance(CovarianceMatrix(cols))
}

// PCAFromCovariance performs PCA directly on a symmetric covariance (or
// correlation) matrix.
func PCAFromCovariance(cov [][]float64) *PCA {
	vals, vecs := jacobiEigen(cov)
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	p := &PCA{
		Eigenvalues: make([]float64, len(vals)),
		Components:  make([][]float64, len(vals)),
	}
	for rank, i := range idx {
		p.Eigenvalues[rank] = vals[i]
		comp := make([]float64, len(vecs))
		for r := range vecs {
			comp[r] = vecs[r][i] // column i of the eigenvector matrix
		}
		p.Components[rank] = comp
	}
	return p
}

// ComponentsForCoverage returns the smallest k such that the first k
// eigenvalues explain at least the given fraction of total variance
// (the paper uses 0.95).
func (p *PCA) ComponentsForCoverage(frac float64) int {
	var total float64
	for _, v := range p.Eigenvalues {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	var cum float64
	for k, v := range p.Eigenvalues {
		if v > 0 {
			cum += v
		}
		if cum/total >= frac {
			return k + 1
		}
	}
	return len(p.Eigenvalues)
}

// FeatureImportance ranks original features by their weighted loading
// magnitude over the first k components (weights = eigenvalues). Larger
// is more important. This is the scoring behind Table I's "Importance"
// column (after the Malik et al. methodology).
func (p *PCA) FeatureImportance(k int) []float64 {
	if k > len(p.Components) {
		k = len(p.Components)
	}
	n := 0
	if len(p.Components) > 0 {
		n = len(p.Components[0])
	}
	imp := make([]float64, n)
	for c := 0; c < k; c++ {
		w := p.Eigenvalues[c]
		if w < 0 {
			w = 0
		}
		for f, loading := range p.Components[c] {
			imp[f] += w * math.Abs(loading)
		}
	}
	return imp
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric
// matrix using the classical cyclic Jacobi rotation method. vecs[r][c]
// is component r of the eigenvector for eigenvalue vals[c].
func jacobiEigen(sym [][]float64) (vals []float64, vecs [][]float64) {
	n := len(sym)
	a := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = append([]float64(nil), sym[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-30 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}
