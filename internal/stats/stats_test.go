package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 75); got != 7.5 {
		t.Fatalf("p75 of {0,10} = %v", got)
	}
	if P99([]float64{1}) != 1 {
		t.Fatal("P99 single element")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !approx(s.Mean, 2.5, 1e-12) {
		t.Fatalf("Describe = %+v", s)
	}
	if Describe(nil).N != 0 {
		t.Fatal("empty Describe")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-5, 0.1, 0.1, 0.9, 99}, 0, 1, 10)
	if h.Total != 5 {
		t.Fatalf("Total = %d", h.Total)
	}
	// bin width 0.1: -5 clamps to bin0, 0.1→bin1 (×2), 0.9→bin9, 99 clamps to bin9.
	if h.Counts[0] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.Counts[1] != 2 || h.Counts[9] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if !approx(h.BinCenter(0), 0.05, 1e-12) {
		t.Fatalf("BinCenter = %v", h.BinCenter(0))
	}
	// Densities integrate to 1.
	var area float64
	width := 0.1
	for i := range h.Counts {
		area += h.Density(i) * width
	}
	if !approx(area, 1, 1e-9) {
		t.Fatalf("area = %v", area)
	}
}

func TestHistogramProbabilityAtZero(t *testing.T) {
	h := NewHistogram([]float64{-0.05, 0.01, 0.02, 1.5}, -1, 1, 20)
	if h.ProbabilityAtZero() <= 0 {
		t.Fatal("zero-bin density should be positive")
	}
	out := NewHistogram([]float64{5}, 1, 2, 4)
	if out.ProbabilityAtZero() != 0 {
		t.Fatal("zero outside range must have density 0")
	}
}

func TestViolinByLatency(t *testing.T) {
	lat := []float64{1, 1, 1, 10, 10, 10}
	errs := []float64{0, 1, 2, -4, -5, -6}
	v := ViolinByLatency(lat, errs, 2)
	if len(v) != 2 {
		t.Fatalf("buckets = %d", len(v))
	}
	if v[0].Median != 1 || v[1].Median != -5 {
		t.Fatalf("medians = %v, %v", v[0].Median, v[1].Median)
	}
	if v[0].N != 3 || v[1].N != 3 {
		t.Fatal("bucket sizes")
	}
	if ViolinByLatency(nil, nil, 3) != nil {
		t.Fatal("empty input")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if !approx(Pearson(x, y), 1, 1e-12) {
		t.Fatal("perfect positive correlation")
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !approx(Pearson(x, neg), -1, 1e-12) {
		t.Fatal("perfect negative correlation")
	}
	if Pearson(x, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Fatal("constant series must yield 0")
	}
}

func TestCorrelationMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols := make([][]float64, 4)
	for i := range cols {
		cols[i] = make([]float64, 50)
		for j := range cols[i] {
			cols[i][j] = rng.NormFloat64()
		}
	}
	m := CorrelationMatrix(cols)
	for i := range m {
		if m[i][i] != 1 {
			t.Fatal("diagonal must be 1")
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix must be symmetric")
			}
			if m[i][j] < -1 || m[i][j] > 1 {
				t.Fatal("correlation out of [-1,1]")
			}
		}
	}
}

func TestMaxScale(t *testing.T) {
	scaled, maxima := MaxScale([][]float64{{1, 2, 4}, {0, 0, 0}})
	if maxima[0] != 4 || maxima[1] != 0 {
		t.Fatalf("maxima = %v", maxima)
	}
	if scaled[0][2] != 1 || scaled[0][0] != 0.25 {
		t.Fatalf("scaled = %v", scaled[0])
	}
	if scaled[1][0] != 0 {
		t.Fatal("all-zero column must stay zero")
	}
}

func TestPCARecoverVarianceDirection(t *testing.T) {
	// Two features: y = 2x (all variance along (1,2)/√5), plus a tiny
	// independent third feature.
	rng := rand.New(rand.NewSource(3))
	n := 500
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		cols[0][i] = x
		cols[1][i] = 2 * x
		cols[2][i] = rng.NormFloat64() * 0.01
	}
	p := PCAFromColumns(cols)
	if p.Eigenvalues[0] < p.Eigenvalues[1] || p.Eigenvalues[1] < p.Eigenvalues[2] {
		t.Fatalf("eigenvalues not sorted: %v", p.Eigenvalues)
	}
	c := p.Components[0]
	// Expect direction ∝ (1, 2, 0).
	ratio := math.Abs(c[1] / c[0])
	if !approx(ratio, 2, 0.05) {
		t.Fatalf("first component = %v, want ratio 2", c)
	}
	if k := p.ComponentsForCoverage(0.95); k != 1 {
		t.Fatalf("ComponentsForCoverage = %d, want 1", k)
	}
	imp := p.FeatureImportance(1)
	if imp[1] <= imp[0] || imp[0] <= imp[2] {
		t.Fatalf("importance ordering = %v", imp)
	}
}

func TestJacobiEigenIdentity(t *testing.T) {
	vals, _ := jacobiEigen([][]float64{{3, 0}, {0, 7}})
	if !(approx(vals[0], 3, 1e-9) && approx(vals[1], 7, 1e-9)) &&
		!(approx(vals[0], 7, 1e-9) && approx(vals[1], 3, 1e-9)) {
		t.Fatalf("eigenvalues = %v", vals)
	}
}

// Property: the sum of PCA eigenvalues equals the trace of the
// covariance matrix.
func TestPCAEigenvalueSumEqualsTrace(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(4))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		n := 30
		cols := make([][]float64, d)
		for i := range cols {
			cols[i] = make([]float64, n)
			for j := range cols[i] {
				cols[i][j] = rng.NormFloat64()
			}
		}
		cov := CovarianceMatrix(cols)
		p := PCAFromCovariance(cov)
		var trace, sum float64
		for i := 0; i < d; i++ {
			trace += cov[i][i]
			sum += p.Eigenvalues[i]
		}
		return approx(trace, sum, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFitRidgeRecoversOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = 3*a - 2*b + 0.5 + rng.NormFloat64()*0.01
	}
	m, err := FitRidge(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Coef[0], 3, 0.05) || !approx(m.Coef[1], -2, 0.05) || !approx(m.Intercept, 0.5, 0.05) {
		t.Fatalf("fit = %+v", m)
	}
	pred := make([]float64, n)
	for i := range X {
		pred[i] = m.Predict(X[i])
	}
	if R2(pred, y) < 0.99 {
		t.Fatalf("R2 = %v", R2(pred, y))
	}
	if MSE(pred, y) > 0.001 {
		t.Fatalf("MSE = %v", MSE(pred, y))
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		X[i] = []float64{a}
		y[i] = 5 * a
	}
	ols, _ := FitRidge(X, y, 0)
	ridge, _ := FitRidge(X, y, 100)
	if math.Abs(ridge.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Fatalf("ridge %v should shrink vs OLS %v", ridge.Coef[0], ols.Coef[0])
	}
}

func TestFitRidgeErrors(t *testing.T) {
	if _, err := FitRidge(nil, nil, 0); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := FitRidge([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error for ragged design matrix")
	}
}

func TestPAAE(t *testing.T) {
	got := PAAE([]float64{110, 90}, []float64{100, 100}, 1e-9)
	if !approx(got, 10, 1e-12) {
		t.Fatalf("PAAE = %v", got)
	}
	// Zero targets skipped.
	if PAAE([]float64{1}, []float64{0}, 1e-9) != 0 {
		t.Fatal("PAAE with zero target")
	}
}

func TestKFoldCVAndRandomSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 2
		X[i] = []float64{a}
		y[i] = 4*a + 1 + rng.NormFloat64()*0.05
	}
	mse, err := KFoldCV(X, y, 0, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("CV MSE = %v", mse)
	}
	m, lambda, err := RandomSearchRidge(X, y, 1e-6, 1, 10, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Fatalf("lambda = %v", lambda)
	}
	if !approx(m.Coef[0], 4, 0.2) {
		t.Fatalf("coef = %v", m.Coef[0])
	}
	if _, err := KFoldCV(X[:3], y[:3], 0, 5, rng); err == nil {
		t.Fatal("expected error for too few samples")
	}
	if _, _, err := RandomSearchRidge(X, y, 0, 1, 2, 5, rng); err == nil {
		t.Fatal("expected error for invalid lambda range")
	}
}
