// Package stats provides the statistical tooling Twig's methodology
// needs: descriptive statistics and percentiles (tail latency), Pearson
// correlation matrices and principal component analysis (the Table-I PMC
// selection pipeline), ordinary least squares / ridge regression with
// k-fold cross-validation and random search (the Eq. 2 power model), and
// histogram / violin summaries (Figs. 1 and 6).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// P99 returns the 99th percentile, the QoS metric used throughout.
func P99(xs []float64) float64 { return Percentile(xs, 99) }

// Summary bundles the descriptive statistics reported for error
// distributions in Fig. 1.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P99  float64
}

// Describe computes a Summary of xs.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  Std(xs),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  percentileSorted(sorted, 50),
		P99:  percentileSorted(sorted, 99),
	}
}

// Histogram is a fixed-width binned density over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into n equal-width bins spanning [lo, hi]; values
// outside the range are clamped into the edge bins.
func NewHistogram(xs []float64, lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// Density returns the probability density of bin i (area-normalised).
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.Total) * width)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// ProbabilityAtZero reports the probability density at x = 0, used for
// the paper's "probability of zero prediction error" comparison.
func (h *Histogram) ProbabilityAtZero() float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	b := int((0 - h.Lo) / width)
	if b < 0 || b >= len(h.Counts) {
		return 0
	}
	return h.Density(b)
}

// ViolinBucket summarises the prediction-error distribution within one
// tail-latency range, mirroring one violin of Figs. 1b/1d.
type ViolinBucket struct {
	LatencyLo, LatencyHi float64
	Median               float64
	Spread               float64 // inter-quartile range
	N                    int
}

// ViolinByLatency groups (latency, error) pairs into nBuckets equal-width
// latency ranges and summarises the error distribution inside each.
func ViolinByLatency(latency, errs []float64, nBuckets int) []ViolinBucket {
	if len(latency) != len(errs) {
		panic("stats: ViolinByLatency length mismatch")
	}
	if len(latency) == 0 || nBuckets <= 0 {
		return nil
	}
	lo, hi := latency[0], latency[0]
	for _, l := range latency {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nBuckets)
	groups := make([][]float64, nBuckets)
	for i, l := range latency {
		b := int((l - lo) / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		groups[b] = append(groups[b], errs[i])
	}
	out := make([]ViolinBucket, 0, nBuckets)
	for b, g := range groups {
		vb := ViolinBucket{
			LatencyLo: lo + float64(b)*width,
			LatencyHi: lo + float64(b+1)*width,
			N:         len(g),
		}
		if len(g) > 0 {
			sort.Float64s(g)
			vb.Median = percentileSorted(g, 50)
			vb.Spread = percentileSorted(g, 75) - percentileSorted(g, 25)
		}
		out = append(out, vb)
	}
	return out
}
