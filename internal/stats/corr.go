package stats

import "math"

// Pearson returns the Pearson correlation coefficient between x and y,
// or 0 when either series is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix computes the Pearson correlation between every pair
// of columns: cols is a slice of equal-length series.
func CorrelationMatrix(cols [][]float64) [][]float64 {
	n := len(cols)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := Pearson(cols[i], cols[j])
			m[i][j] = c
			m[j][i] = c
		}
	}
	return m
}

// CovarianceMatrix computes the population covariance matrix of the
// column series.
func CovarianceMatrix(cols [][]float64) [][]float64 {
	n := len(cols)
	means := make([]float64, n)
	for i, c := range cols {
		means[i] = Mean(c)
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	if n == 0 || len(cols[0]) == 0 {
		return m
	}
	samples := float64(len(cols[0]))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for t := range cols[i] {
				s += (cols[i][t] - means[i]) * (cols[j][t] - means[j])
			}
			s /= samples
			m[i][j] = s
			m[j][i] = s
		}
	}
	return m
}

// MaxScale feature-scales each column to [0, 1] using max-value
// normalisation with non-zero centralisation (Sec. III-B1): each value is
// divided by the column maximum; all-zero columns are left untouched.
// It returns the scaled copies and the maxima used.
func MaxScale(cols [][]float64) (scaled [][]float64, maxima []float64) {
	scaled = make([][]float64, len(cols))
	maxima = make([]float64, len(cols))
	for i, c := range cols {
		mx := 0.0
		for _, v := range c {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
		maxima[i] = mx
		out := make([]float64, len(c))
		if mx > 0 {
			for j, v := range c {
				out[j] = v / mx
			}
		}
		scaled[i] = out
	}
	return scaled, maxima
}
