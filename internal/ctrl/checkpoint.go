package ctrl

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// EncodeObservation serialises an observation (used for tracker and
// guard state, and by twigd to carry the control loop's pending
// observation across a restart).
func EncodeObservation(e *checkpoint.Encoder, obs Observation) {
	e.Int(obs.Time)
	e.F64(obs.PowerW)
	e.Int(len(obs.Services))
	for _, s := range obs.Services {
		encodeServiceObs(e, s)
	}
}

// DecodeObservation reads an observation written by EncodeObservation.
func DecodeObservation(d *checkpoint.Decoder) (Observation, error) {
	obs := Observation{Time: d.Int(), PowerW: d.F64()}
	n := d.Int()
	if err := d.Err(); err != nil {
		return Observation{}, err
	}
	// Each service entry is 4 float64s + the PMC block + a bool.
	if n < 0 || n*(4*8+1) > d.Remaining() {
		return Observation{}, fmt.Errorf("ctrl: observation claims %d services", n)
	}
	for i := 0; i < n; i++ {
		s, err := decodeServiceObs(d)
		if err != nil {
			return Observation{}, err
		}
		obs.Services = append(obs.Services, s)
	}
	return obs, nil
}

func encodeServiceObs(e *checkpoint.Encoder, s ServiceObs) {
	e.F64(s.P99Ms)
	e.F64(s.QoSTargetMs)
	e.F64(s.MeasuredRPS)
	e.F64(s.MaxLoadRPS)
	e.Int(int(pmc.NumCounters))
	for _, v := range s.NormPMCs {
		e.F64(v)
	}
	e.Bool(s.QueueGrowing)
}

func decodeServiceObs(d *checkpoint.Decoder) (ServiceObs, error) {
	s := ServiceObs{
		P99Ms:       d.F64(),
		QoSTargetMs: d.F64(),
		MeasuredRPS: d.F64(),
		MaxLoadRPS:  d.F64(),
	}
	nc := d.Int()
	if err := d.Err(); err != nil {
		return ServiceObs{}, err
	}
	if nc != int(pmc.NumCounters) {
		return ServiceObs{}, fmt.Errorf("ctrl: checkpoint has %d PMC counters, this build has %d", nc, int(pmc.NumCounters))
	}
	for i := range s.NormPMCs {
		s.NormPMCs[i] = d.F64()
	}
	s.QueueGrowing = d.Bool()
	return s, d.Err()
}

// EncodeState writes the tracker's previous-interval queue depths. The
// nil/allocated distinction matters: a nil tracker has not observed yet
// and compares the first observation against empty queues.
func (tr *ObservationTracker) EncodeState(e *checkpoint.Encoder) {
	e.Bool(tr.prevQueue != nil)
	e.Ints(tr.prevQueue)
}

// DecodeState restores tracker state written by EncodeState.
func (tr *ObservationTracker) DecodeState(d *checkpoint.Decoder) error {
	have := d.Bool()
	q := d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	if !have {
		tr.prevQueue = nil
		return nil
	}
	if q == nil {
		q = []int{} // observed services may legitimately number zero
	}
	tr.prevQueue = q
	return nil
}

// CheckpointName labels the guard's section when it participates in a
// full-loop checkpoint (the wrapped controller checkpoints separately).
func (g *Guard) CheckpointName() string { return "ctrl-guard" }

// EncodeState writes the guard's repair and breaker state: per-service
// last-good observations, staleness and streak counters, breaker trips,
// the bridged power reading and the cumulative health counters. The
// wrapped controller checkpoints itself separately.
func (g *Guard) EncodeState(e *checkpoint.Encoder) {
	e.Int(len(g.lastGood))
	for _, s := range g.lastGood {
		encodeServiceObs(e, s)
	}
	e.Bools(g.haveGood)
	e.Ints(g.staleFor)
	e.Ints(g.violStreak)
	e.Ints(g.metStreak)
	e.Bools(g.tripped)
	e.F64(g.lastPowerW)
	e.Bool(g.havePower)
	h := g.health
	e.Int(h.ObsRepaired)
	e.Int(h.StaleExceeded)
	e.Int(h.PanicsRecovered)
	e.Int(h.ActionsClamped)
	e.Int(h.FallbackIntervals)
	e.Int(h.BreakerTrips)
	e.Int(h.BreakerIntervals)
}

// DecodeState restores guard state written by EncodeState.
func (g *Guard) DecodeState(d *checkpoint.Decoder) error {
	k := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if k < 0 || k*(4*8+1) > d.Remaining() {
		return fmt.Errorf("ctrl: guard checkpoint claims %d services", k)
	}
	lastGood := make([]ServiceObs, k)
	for i := range lastGood {
		s, err := decodeServiceObs(d)
		if err != nil {
			return err
		}
		lastGood[i] = s
	}
	haveGood := d.Bools()
	staleFor := d.Ints()
	violStreak := d.Ints()
	metStreak := d.Ints()
	tripped := d.Bools()
	lastPowerW := d.F64()
	havePower := d.Bool()
	var h GuardHealth
	h.ObsRepaired = d.Int()
	h.StaleExceeded = d.Int()
	h.PanicsRecovered = d.Int()
	h.ActionsClamped = d.Int()
	h.FallbackIntervals = d.Int()
	h.BreakerTrips = d.Int()
	h.BreakerIntervals = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	for _, l := range [][2]int{{len(haveGood), k}, {len(staleFor), k}, {len(violStreak), k}, {len(metStreak), k}, {len(tripped), k}} {
		if l[0] != l[1] {
			return fmt.Errorf("ctrl: guard checkpoint slice lengths disagree (%d vs %d services)", l[0], l[1])
		}
	}
	// init() sizes the slices lazily on the first Decide; a k of zero
	// means the guard had not decided yet, so leave everything nil.
	if k == 0 {
		g.lastGood, g.haveGood, g.staleFor = nil, nil, nil
		g.violStreak, g.metStreak, g.tripped = nil, nil, nil
	} else {
		g.lastGood, g.haveGood, g.staleFor = lastGood, haveGood, staleFor
		g.violStreak, g.metStreak, g.tripped = violStreak, metStreak, tripped
	}
	g.lastPowerW = lastPowerW
	g.havePower = havePower
	g.health = h
	return nil
}
