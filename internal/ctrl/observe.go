package ctrl

import "github.com/twig-sched/twig/internal/sim"

// ObservationTracker converts simulation step results into controller
// observations. It remembers each service's queue depth from the previous
// interval so ServiceObs.QueueGrowing reflects an actual increase — the
// signal Twig's reward (Eq. 1) and the Hipster baseline key off. The zero
// value is ready to use; the first observation compares against empty
// queues.
type ObservationTracker struct {
	prevQueue []int
}

// Observe builds the observation for the interval after res.
func (tr *ObservationTracker) Observe(srv *sim.Server, res sim.StepResult) Observation {
	if tr.prevQueue == nil {
		tr.prevQueue = make([]int, srv.NumServices())
	}
	obs := Observation{Time: res.Time + 1, PowerW: res.PowerW}
	obs.Services = make([]ServiceObs, 0, len(res.Services))
	for i, sv := range res.Services {
		obs.Services = append(obs.Services, ServiceObs{
			P99Ms:        sv.P99Ms,
			QoSTargetMs:  sv.QoSTargetMs,
			MeasuredRPS:  float64(sv.Completed),
			MaxLoadRPS:   srv.Spec(i).Profile.MaxLoadRPS,
			NormPMCs:     sv.NormPMCs,
			QueueGrowing: sv.QueueLen > tr.prevQueue[i],
		})
		tr.prevQueue[i] = sv.QueueLen
	}
	return obs
}

// ObservationFromStep is the stateless one-shot variant: QueueGrowing is
// set whenever the queue is non-empty, since no previous depth is known.
// Control loops should prefer an ObservationTracker.
func ObservationFromStep(srv *sim.Server, res sim.StepResult) Observation {
	var tr ObservationTracker
	return tr.Observe(srv, res)
}

// InitialObservation bootstraps a control loop before any measurement
// exists: only the static per-service fields (QoS target, profiled peak
// load) are populated.
func InitialObservation(srv *sim.Server) Observation {
	obs := Observation{Services: make([]ServiceObs, 0, srv.NumServices())}
	for i := 0; i < srv.NumServices(); i++ {
		spec := srv.Spec(i)
		obs.Services = append(obs.Services, ServiceObs{
			QoSTargetMs: spec.QoSTargetMs,
			MaxLoadRPS:  spec.Profile.MaxLoadRPS,
		})
	}
	return obs
}
