package ctrl

import "testing"

func TestQoSMetAndTardiness(t *testing.T) {
	s := ServiceObs{P99Ms: 4, QoSTargetMs: 5}
	if !s.QoSMet() {
		t.Fatal("4 ≤ 5 must meet QoS")
	}
	if got := s.Tardiness(); got != 0.8 {
		t.Fatalf("Tardiness = %v", got)
	}
	v := ServiceObs{P99Ms: 10, QoSTargetMs: 5}
	if v.QoSMet() {
		t.Fatal("10 > 5 must violate")
	}
	if v.Tardiness() != 2 {
		t.Fatalf("Tardiness = %v", v.Tardiness())
	}
	zero := ServiceObs{P99Ms: 1}
	if zero.Tardiness() != 0 {
		t.Fatal("zero target must not divide by zero")
	}
	// Boundary: exactly at target counts as met.
	b := ServiceObs{P99Ms: 5, QoSTargetMs: 5}
	if !b.QoSMet() {
		t.Fatal("equality must meet QoS")
	}
}
