package ctrl

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// Drainer wraps a controller with graceful-eviction semantics: a service
// marked draining has its core allocation halved every interval (never
// below one core, so the queue can still empty) and is pinned to the
// minimum DVFS state with no cache reservation. The freed cores return
// to whatever the inner controller and the platform's idle policy do
// with them — under colocation they become best-effort throughput.
//
// Drainer sits OUTSIDE any Guard in the controller chain: the guard's
// circuit breaker would otherwise re-escalate a draining service to
// maximum resources the moment its (inevitable) QoS violations start,
// defeating the drain. A Drainer is itself a Controller and is
// checkpointable, so an interrupted drain resumes exactly where the
// ramp-down left off.
type Drainer struct {
	inner Controller
	// draining flags each service; coresLeft is the ramp position (-1
	// until the first draining decision observes the current width).
	draining  []bool
	coresLeft []int
}

// NewDrainer wraps inner for k services, none of them draining.
func NewDrainer(inner Controller, k int) *Drainer {
	d := &Drainer{inner: inner, draining: make([]bool, k), coresLeft: make([]int, k)}
	for i := range d.coresLeft {
		d.coresLeft[i] = -1
	}
	return d
}

// Name labels runs with the wrapped controller's name.
func (d *Drainer) Name() string { return d.inner.Name() + "+drain" }

// SetDraining marks service i as draining (or cancels a drain, which
// also resets the ramp).
func (d *Drainer) SetDraining(i int, on bool) {
	if i < 0 || i >= len(d.draining) {
		return
	}
	d.draining[i] = on
	if !on {
		d.coresLeft[i] = -1
	}
}

// Draining returns a copy of the per-service draining flags.
func (d *Drainer) Draining() []bool { return append([]bool(nil), d.draining...) }

// Decide runs the inner controller, then overrides every draining
// service's allocation with the ramp-down.
func (d *Drainer) Decide(obs Observation) sim.Assignment {
	asg := d.inner.Decide(obs)
	for i := range d.draining {
		if !d.draining[i] || i >= len(asg.PerService) {
			continue
		}
		al := &asg.PerService[i]
		width := d.coresLeft[i]
		if width < 0 {
			// First draining interval: start from what the inner
			// controller just granted (at least one core).
			width = len(al.Cores)
			if width < 1 {
				width = 1
			}
		} else {
			width /= 2
			if width < 1 {
				width = 1
			}
		}
		d.coresLeft[i] = width
		if len(al.Cores) > width {
			al.Cores = append([]int(nil), al.Cores[:width]...)
		}
		al.FreqGHz = platform.MinFreqGHz
		al.CacheWays = 0
	}
	return asg
}

// CheckpointName implements checkpoint.Checkpointable.
func (d *Drainer) CheckpointName() string { return "ctrl-drainer" }

// EncodeState writes the draining flags and ramp positions.
func (d *Drainer) EncodeState(e *checkpoint.Encoder) {
	e.Bools(d.draining)
	e.Ints(d.coresLeft)
}

// DecodeState restores state written by EncodeState into a drainer
// constructed for the same number of services.
func (d *Drainer) DecodeState(dec *checkpoint.Decoder) error {
	draining := dec.Bools()
	coresLeft := dec.Ints()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(draining) != len(d.draining) || len(coresLeft) != len(d.coresLeft) {
		return fmt.Errorf("ctrl: drainer checkpoint covers %d/%d services, this drainer has %d",
			len(draining), len(coresLeft), len(d.draining))
	}
	d.draining = draining
	d.coresLeft = coresLeft
	return nil
}
