package ctrl

import (
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// wideController always grants each service eight cores at 2.0 GHz.
type wideController struct{}

func (wideController) Name() string { return "wide" }
func (wideController) Decide(obs Observation) sim.Assignment {
	asg := sim.Assignment{PerService: make([]sim.Allocation, len(obs.Services))}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{
			Cores:   []int{0, 1, 2, 3, 4, 5, 6, 7},
			FreqGHz: 2.0, CacheWays: 4,
		}
	}
	return asg
}

func twoServiceObs() Observation {
	return Observation{Services: make([]ServiceObs, 2)}
}

func TestDrainerPassThroughWhenIdle(t *testing.T) {
	d := NewDrainer(wideController{}, 2)
	asg := d.Decide(twoServiceObs())
	for i, al := range asg.PerService {
		if len(al.Cores) != 8 || al.FreqGHz != 2.0 || al.CacheWays != 4 {
			t.Fatalf("service %d modified while not draining: %+v", i, al)
		}
	}
}

func TestDrainerRampsDownToOneCore(t *testing.T) {
	d := NewDrainer(wideController{}, 2)
	d.SetDraining(1, true)

	want := []int{8, 4, 2, 1, 1, 1}
	for step, w := range want {
		asg := d.Decide(twoServiceObs())
		if got := len(asg.PerService[1].Cores); got != w {
			t.Fatalf("drain step %d: %d cores, want %d", step, got, w)
		}
		if asg.PerService[1].FreqGHz != platform.MinFreqGHz {
			t.Fatalf("drain step %d: freq %v, want min", step, asg.PerService[1].FreqGHz)
		}
		if asg.PerService[1].CacheWays != 0 {
			t.Fatalf("drain step %d: cache ways %d, want 0", step, asg.PerService[1].CacheWays)
		}
		// The non-draining service is untouched.
		if len(asg.PerService[0].Cores) != 8 || asg.PerService[0].FreqGHz != 2.0 {
			t.Fatalf("drain step %d: non-draining service modified: %+v", step, asg.PerService[0])
		}
	}
}

func TestDrainerCancelResetsRamp(t *testing.T) {
	d := NewDrainer(wideController{}, 1)
	d.SetDraining(0, true)
	d.Decide(Observation{Services: make([]ServiceObs, 1)})
	d.Decide(Observation{Services: make([]ServiceObs, 1)})
	d.SetDraining(0, false)
	asg := d.Decide(Observation{Services: make([]ServiceObs, 1)})
	if len(asg.PerService[0].Cores) != 8 {
		t.Fatalf("after cancel: %d cores, want full 8", len(asg.PerService[0].Cores))
	}
}

// A checkpointed drain resumes exactly where the ramp left off.
func TestDrainerCheckpointRoundTrip(t *testing.T) {
	d := NewDrainer(wideController{}, 2)
	d.SetDraining(0, true)
	d.Decide(twoServiceObs()) // ramp: 8
	d.Decide(twoServiceObs()) // ramp: 4

	data := checkpoint.Marshal(d)
	restored := NewDrainer(wideController{}, 2)
	if err := checkpoint.Unmarshal(data, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	a := d.Decide(twoServiceObs())
	b := restored.Decide(twoServiceObs())
	if len(a.PerService[0].Cores) != 2 || len(b.PerService[0].Cores) != 2 {
		t.Fatalf("resumed ramp diverged: original %d cores, restored %d",
			len(a.PerService[0].Cores), len(b.PerService[0].Cores))
	}

	wrong := NewDrainer(wideController{}, 3)
	if err := checkpoint.Unmarshal(data, wrong); err == nil {
		t.Fatal("restoring a 2-service drainer checkpoint into a 3-service drainer succeeded")
	}
}
