package ctrl

import (
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
)

type fakeCtrl struct {
	name   string
	decide func(Observation) sim.Assignment
}

func (f *fakeCtrl) Name() string                        { return f.name }
func (f *fakeCtrl) Decide(o Observation) sim.Assignment { return f.decide(o) }

var testCores = []int{18, 19, 20, 21}

func smallAlloc(o Observation) sim.Assignment {
	asg := sim.Assignment{PerService: make([]sim.Allocation, len(o.Services))}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{Cores: []int{18}, FreqGHz: platform.MinFreqGHz}
	}
	return asg
}

func obs1(p99 float64) Observation {
	return Observation{Services: []ServiceObs{{P99Ms: p99, QoSTargetMs: 5, MeasuredRPS: 100}}, PowerW: 50}
}

func TestGuardName(t *testing.T) {
	g := NewGuard(&fakeCtrl{name: "twig-c", decide: smallAlloc}, DefaultGuardConfig(testCores))
	if g.Name() != "twig-c+guard" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestGuardBridgesThenPessimises(t *testing.T) {
	var seen []float64
	inner := &fakeCtrl{name: "probe", decide: func(o Observation) sim.Assignment {
		seen = append(seen, o.Services[0].P99Ms)
		return smallAlloc(o)
	}}
	cfg := DefaultGuardConfig(testCores)
	cfg.MaxStaleS = 2
	g := NewGuard(inner, cfg)

	g.Decide(obs1(3)) // good sample
	for i := 0; i < 4; i++ {
		g.Decide(obs1(math.NaN()))
	}
	want := []float64{3, 3, 3, 1.25 * 5, 1.25 * 5}
	if len(seen) != len(want) {
		t.Fatalf("inner saw %d obs", len(seen))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("interval %d: inner saw p99 %v, want %v", i, seen[i], want[i])
		}
	}
	h := g.Health()
	if h.ObsRepaired != 4 || h.StaleExceeded != 2 {
		t.Fatalf("health %+v", h)
	}
}

func TestGuardSanitisesPMCsAndPower(t *testing.T) {
	var got Observation
	inner := &fakeCtrl{name: "probe", decide: func(o Observation) sim.Assignment {
		got = o
		return smallAlloc(o)
	}}
	g := NewGuard(inner, DefaultGuardConfig(testCores))

	good := obs1(3)
	good.Services[0].NormPMCs[0] = 0.4
	g.Decide(good)

	bad := obs1(3)
	bad.Services[0].NormPMCs[0] = math.NaN()
	bad.Services[0].NormPMCs[1] = 7 // over the normalised ceiling
	bad.Services[0].MeasuredRPS = math.Inf(1)
	bad.PowerW = math.NaN()
	g.Decide(bad)

	s := got.Services[0]
	if s.NormPMCs[0] != 0.4 {
		t.Fatalf("NaN counter not bridged: %v", s.NormPMCs[0])
	}
	if s.NormPMCs[1] != 1 {
		t.Fatalf("counter not clamped: %v", s.NormPMCs[1])
	}
	if s.MeasuredRPS != 100 {
		t.Fatalf("RPS not bridged: %v", s.MeasuredRPS)
	}
	if got.PowerW != 50 {
		t.Fatalf("power not bridged: %v", got.PowerW)
	}
}

func TestGuardRecoversPanicToSafeAssignment(t *testing.T) {
	inner := &fakeCtrl{name: "bomb", decide: func(o Observation) sim.Assignment {
		panic("controller bug")
	}}
	g := NewGuard(inner, DefaultGuardConfig(testCores))
	asg := g.Decide(obs1(3))
	if len(asg.PerService) != 1 {
		t.Fatal("shape")
	}
	if len(asg.PerService[0].Cores) != len(testCores) || asg.PerService[0].FreqGHz != platform.MaxFreqGHz {
		t.Fatalf("fallback not max allocation: %+v", asg.PerService[0])
	}
	h := g.Health()
	if h.PanicsRecovered != 1 || h.FallbackIntervals != 1 {
		t.Fatalf("health %+v", h)
	}
}

func TestGuardClampsActions(t *testing.T) {
	inner := &fakeCtrl{name: "rogue", decide: func(o Observation) sim.Assignment {
		return sim.Assignment{
			PerService: []sim.Allocation{{
				Cores:     []int{99, 18, 18, -1},
				FreqGHz:   5.0,
				CacheWays: 99,
			}},
			IdleFreqGHz: math.NaN(),
		}
	}}
	g := NewGuard(inner, DefaultGuardConfig(testCores))
	asg := g.Decide(obs1(3))
	al := asg.PerService[0]
	if len(al.Cores) != 1 || al.Cores[0] != 18 {
		t.Fatalf("cores = %v", al.Cores)
	}
	if al.FreqGHz != platform.MaxFreqGHz {
		t.Fatalf("freq = %v", al.FreqGHz)
	}
	if al.CacheWays != platform.NumCacheWays {
		t.Fatalf("ways = %v", al.CacheWays)
	}
	if asg.IdleFreqGHz != platform.MaxFreqGHz {
		t.Fatalf("idle freq = %v", asg.IdleFreqGHz)
	}
	if g.Health().ActionsClamped == 0 {
		t.Fatal("clamp not counted")
	}
}

func TestGuardFillsEmptyAllocation(t *testing.T) {
	inner := &fakeCtrl{name: "empty", decide: func(o Observation) sim.Assignment {
		return sim.Assignment{PerService: []sim.Allocation{{FreqGHz: 1.5}}}
	}}
	g := NewGuard(inner, DefaultGuardConfig(testCores))
	asg := g.Decide(obs1(3))
	if len(asg.PerService[0].Cores) != len(testCores) {
		t.Fatalf("empty allocation not widened: %v", asg.PerService[0].Cores)
	}
}

func TestGuardRejectsWrongShape(t *testing.T) {
	inner := &fakeCtrl{name: "short", decide: func(o Observation) sim.Assignment {
		return sim.Assignment{} // zero services for a one-service observation
	}}
	g := NewGuard(inner, DefaultGuardConfig(testCores))
	asg := g.Decide(obs1(3))
	if len(asg.PerService) != 1 || len(asg.PerService[0].Cores) != len(testCores) {
		t.Fatalf("wrong-shape decision not replaced: %+v", asg)
	}
}

func TestGuardBreakerTripsAndResets(t *testing.T) {
	inner := &fakeCtrl{name: "meek", decide: smallAlloc}
	cfg := DefaultGuardConfig(testCores)
	cfg.BreakerK = 3
	cfg.BreakerResetR = 2
	g := NewGuard(inner, cfg)

	escalated := func(asg sim.Assignment) bool {
		return len(asg.PerService[0].Cores) == len(testCores) &&
			asg.PerService[0].FreqGHz == platform.MaxFreqGHz
	}

	// Two violations: not yet tripped.
	for i := 0; i < 2; i++ {
		if escalated(g.Decide(obs1(10))) {
			t.Fatalf("breaker tripped after %d violations", i+1)
		}
	}
	// Third consecutive violation trips it.
	if !escalated(g.Decide(obs1(10))) {
		t.Fatal("breaker did not trip after K violations")
	}
	// One met interval is not enough to reset.
	if !escalated(g.Decide(obs1(1))) {
		t.Fatal("breaker reset too eagerly")
	}
	// Second consecutive met interval hands control back.
	if escalated(g.Decide(obs1(1))) {
		t.Fatal("breaker did not reset after R met intervals")
	}
	h := g.Health()
	if h.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", h.BreakerTrips)
	}
	if h.BreakerIntervals != 2 {
		t.Fatalf("escalated intervals = %d, want 2", h.BreakerIntervals)
	}
}

func TestGuardOutputAlwaysValid(t *testing.T) {
	// Whatever garbage the inner controller emits, the simulator must
	// accept the guarded assignment.
	garbage := []func(Observation) sim.Assignment{
		func(o Observation) sim.Assignment { panic("boom") },
		func(o Observation) sim.Assignment { return sim.Assignment{} },
		func(o Observation) sim.Assignment {
			return sim.Assignment{PerService: []sim.Allocation{{Cores: []int{-5}, FreqGHz: math.Inf(1)}}}
		},
	}
	srv := sim.NewServer(sim.DefaultConfig(), []sim.ServiceSpec{
		{Profile: service.MustLookup("masstree"), QoSTargetMs: 5, Seed: 1},
	})
	for gi, dec := range garbage {
		g := NewGuard(&fakeCtrl{name: "g", decide: dec}, DefaultGuardConfig(srv.ManagedCores()))
		asg := g.Decide(obs1(3))
		if err := srv.Validate(asg, []float64{100}); err != nil {
			t.Fatalf("garbage %d: guarded assignment rejected: %v", gi, err)
		}
	}
}
