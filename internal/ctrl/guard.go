package ctrl

import (
	"math"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// GuardConfig tunes the resilient wrapper around a controller.
type GuardConfig struct {
	// ManagedCores is the set of core IDs any decision may use; cores
	// outside it are stripped from the inner controller's assignments.
	ManagedCores []int
	// MaxStaleS bounds how many consecutive intervals a missing latency
	// sample may be bridged with the last good one before the guard
	// switches to a pessimistic estimate.
	MaxStaleS int
	// PessimismFactor scales the QoS target to synthesise a latency once
	// staleness exceeds MaxStaleS: the service is assumed to be violating
	// so that downstream logic (the inner controller, the breaker) reacts.
	PessimismFactor float64
	// BreakerK is the number of consecutive QoS violations after which
	// the circuit breaker escalates a service to maximum resources.
	BreakerK int
	// BreakerResetR is the number of consecutive met intervals required
	// before a tripped breaker hands control back to the inner controller.
	BreakerResetR int
}

// DefaultGuardConfig returns the recommended guard settings for the
// given managed core set.
func DefaultGuardConfig(managed []int) GuardConfig {
	return GuardConfig{
		ManagedCores:    append([]int(nil), managed...),
		MaxStaleS:       5,
		PessimismFactor: 1.25,
		BreakerK:        3,
		BreakerResetR:   2,
	}
}

// GuardHealth counts every intervention the guard made. All counters are
// cumulative over the guard's lifetime.
type GuardHealth struct {
	// ObsRepaired counts observation fields (latency, PMCs, power)
	// replaced because they were missing or non-finite.
	ObsRepaired int
	// StaleExceeded counts intervals where a latency gap outlived
	// MaxStaleS and the pessimistic estimate was substituted.
	StaleExceeded int
	// PanicsRecovered counts inner-controller panics converted into the
	// safe fallback assignment.
	PanicsRecovered int
	// ActionsClamped counts decisions repaired in place (cores filtered,
	// frequencies clamped, empty allocations filled).
	ActionsClamped int
	// FallbackIntervals counts intervals decided entirely by the safe
	// fallback rather than the inner controller.
	FallbackIntervals int
	// BreakerTrips counts violation→escalation transitions;
	// BreakerIntervals counts intervals spent escalated.
	BreakerTrips     int
	BreakerIntervals int
}

// Guard wraps any Controller with the degraded-mode defenses of Sec.
// "Fault model" in DESIGN.md: observation sanitising, panic containment,
// action validation and a per-service QoS circuit breaker. A Guard is
// itself a Controller, so it drops into every existing harness.
type Guard struct {
	inner  Controller
	cfg    GuardConfig
	health GuardHealth

	// Per-service repair state, sized lazily from the first observation.
	lastGood []ServiceObs
	haveGood []bool
	staleFor []int
	// Breaker state.
	violStreak []int
	metStreak  []int
	tripped    []bool

	lastPowerW float64
	havePower  bool
}

// NewGuard wraps inner. The config's ManagedCores must be non-empty;
// zero-valued tuning fields fall back to the defaults.
func NewGuard(inner Controller, cfg GuardConfig) *Guard {
	if len(cfg.ManagedCores) == 0 {
		panic("ctrl: guard needs a managed core set")
	}
	def := DefaultGuardConfig(cfg.ManagedCores)
	if cfg.MaxStaleS <= 0 {
		cfg.MaxStaleS = def.MaxStaleS
	}
	if cfg.PessimismFactor <= 1 {
		cfg.PessimismFactor = def.PessimismFactor
	}
	if cfg.BreakerK <= 0 {
		cfg.BreakerK = def.BreakerK
	}
	if cfg.BreakerResetR <= 0 {
		cfg.BreakerResetR = def.BreakerResetR
	}
	return &Guard{inner: inner, cfg: cfg}
}

// Name labels runs with the wrapped controller's name.
func (g *Guard) Name() string { return g.inner.Name() + "+guard" }

// Health returns the cumulative intervention counters.
func (g *Guard) Health() GuardHealth { return g.health }

// BreakerEngaged reports, per service, whether the QoS circuit breaker
// currently holds the service escalated to maximum resources. The slice
// is a copy and is empty before the first Decide sizes the guard.
func (g *Guard) BreakerEngaged() []bool { return append([]bool(nil), g.tripped...) }

// Decide sanitises the observation, runs the inner controller inside a
// panic boundary, validates its decision and applies the circuit
// breaker. The returned assignment always passes sim.Server.Validate.
func (g *Guard) Decide(obs Observation) sim.Assignment {
	g.init(len(obs.Services))
	clean := g.sanitize(obs)

	asg, panicked := g.tryInner(clean)
	if panicked {
		g.health.PanicsRecovered++
		g.health.FallbackIntervals++
		asg = g.safeAssignment(len(obs.Services))
	} else {
		asg = g.validate(asg, len(obs.Services))
	}

	g.breaker(clean, &asg)
	return asg
}

func (g *Guard) init(k int) {
	if len(g.lastGood) == k {
		return
	}
	g.lastGood = make([]ServiceObs, k)
	g.haveGood = make([]bool, k)
	g.staleFor = make([]int, k)
	g.violStreak = make([]int, k)
	g.metStreak = make([]int, k)
	g.tripped = make([]bool, k)
}

// sanitize repairs missing or corrupt sensor readings so the inner
// controller always sees finite, plausible numbers.
func (g *Guard) sanitize(obs Observation) Observation {
	out := obs
	out.Services = append([]ServiceObs(nil), obs.Services...)

	if !isFinite(out.PowerW) || out.PowerW < 0 {
		g.health.ObsRepaired++
		if g.havePower {
			out.PowerW = g.lastPowerW
		} else {
			out.PowerW = 0
		}
	} else {
		g.lastPowerW = out.PowerW
		g.havePower = true
	}

	for i := range out.Services {
		s := &out.Services[i]

		// Latency: bridge short gaps with the last good sample, then
		// turn pessimistic so a long-dark service looks like a violator.
		if !isFinite(s.P99Ms) || s.P99Ms < 0 {
			g.health.ObsRepaired++
			g.staleFor[i]++
			if g.haveGood[i] && g.staleFor[i] <= g.cfg.MaxStaleS {
				s.P99Ms = g.lastGood[i].P99Ms
			} else {
				g.health.StaleExceeded++
				s.P99Ms = g.cfg.PessimismFactor * s.QoSTargetMs
			}
		} else {
			g.staleFor[i] = 0
		}

		// Throughput: never negative or non-finite.
		if !isFinite(s.MeasuredRPS) || s.MeasuredRPS < 0 {
			g.health.ObsRepaired++
			if g.haveGood[i] {
				s.MeasuredRPS = g.lastGood[i].MeasuredRPS
			} else {
				s.MeasuredRPS = 0
			}
		}

		// PMC features: per-counter replacement with the last good value,
		// then clamp into the normalised [0,1] envelope.
		for c := range s.NormPMCs {
			v := s.NormPMCs[c]
			if !isFinite(v) || v < 0 {
				g.health.ObsRepaired++
				if g.haveGood[i] {
					v = g.lastGood[i].NormPMCs[c]
				} else {
					v = 0
				}
			}
			if v > 1 {
				v = 1
			}
			s.NormPMCs[c] = v
		}

		if g.staleFor[i] == 0 {
			g.lastGood[i] = *s
			g.haveGood[i] = true
		}
	}
	return out
}

// tryInner runs the wrapped controller's Decide behind a recover.
func (g *Guard) tryInner(obs Observation) (asg sim.Assignment, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return g.inner.Decide(obs), false
}

// validate repairs a decision in place: wrong shape falls back entirely;
// otherwise cores are filtered to the managed set, empty allocations are
// widened to every managed core, and frequencies and cache ways are
// clamped into hardware range.
func (g *Guard) validate(asg sim.Assignment, k int) sim.Assignment {
	if len(asg.PerService) != k {
		g.health.ActionsClamped++
		g.health.FallbackIntervals++
		return g.safeAssignment(k)
	}

	managed := make(map[int]bool, len(g.cfg.ManagedCores))
	for _, c := range g.cfg.ManagedCores {
		managed[c] = true
	}

	out := sim.Assignment{
		PerService:  make([]sim.Allocation, k),
		IdleFreqGHz: asg.IdleFreqGHz,
	}
	clamped := false
	if out.IdleFreqGHz != 0 {
		fixed := clampFreq(out.IdleFreqGHz)
		if fixed != out.IdleFreqGHz {
			clamped = true
			out.IdleFreqGHz = fixed
		}
	}
	for i, al := range asg.PerService {
		seen := make(map[int]bool, len(al.Cores))
		cores := make([]int, 0, len(al.Cores))
		for _, c := range al.Cores {
			if managed[c] && !seen[c] {
				seen[c] = true
				cores = append(cores, c)
			}
		}
		if len(cores) != len(al.Cores) {
			clamped = true
		}
		if len(cores) == 0 {
			clamped = true
			cores = append([]int(nil), g.cfg.ManagedCores...)
		}
		freq := clampFreq(al.FreqGHz)
		if freq != al.FreqGHz {
			clamped = true
		}
		ways := al.CacheWays
		if ways < 0 {
			ways, clamped = 0, true
		} else if ways > platform.NumCacheWays {
			ways, clamped = platform.NumCacheWays, true
		}
		out.PerService[i] = sim.Allocation{Cores: cores, FreqGHz: freq, CacheWays: ways}
	}
	if clamped {
		g.health.ActionsClamped++
	}
	return out
}

// breaker escalates any service that has violated QoS for BreakerK
// consecutive intervals to every managed core at maximum frequency, and
// holds it there until BreakerResetR consecutive met intervals.
func (g *Guard) breaker(obs Observation, asg *sim.Assignment) {
	for i, s := range obs.Services {
		if s.QoSTargetMs > 0 && s.P99Ms > s.QoSTargetMs {
			g.violStreak[i]++
			g.metStreak[i] = 0
		} else {
			g.metStreak[i]++
			g.violStreak[i] = 0
		}
		if !g.tripped[i] && g.violStreak[i] >= g.cfg.BreakerK {
			g.tripped[i] = true
			g.health.BreakerTrips++
		}
		if g.tripped[i] && g.metStreak[i] >= g.cfg.BreakerResetR {
			g.tripped[i] = false
		}
		if g.tripped[i] && i < len(asg.PerService) {
			g.health.BreakerIntervals++
			asg.PerService[i] = sim.Allocation{
				Cores:     append([]int(nil), g.cfg.ManagedCores...),
				FreqGHz:   platform.MaxFreqGHz,
				CacheWays: platform.NumCacheWays,
			}
		}
	}
}

// safeAssignment is the static maximum-resource fallback: every service
// on every managed core at the highest frequency.
func (g *Guard) safeAssignment(k int) sim.Assignment {
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, k),
		IdleFreqGHz: platform.MinFreqGHz,
	}
	for i := range asg.PerService {
		asg.PerService[i] = sim.Allocation{
			Cores:   append([]int(nil), g.cfg.ManagedCores...),
			FreqGHz: platform.MaxFreqGHz,
		}
	}
	return asg
}

func clampFreq(f float64) float64 {
	if !isFinite(f) {
		return platform.MaxFreqGHz
	}
	if f < platform.MinFreqGHz {
		return platform.MinFreqGHz
	}
	if f > platform.MaxFreqGHz {
		return platform.MaxFreqGHz
	}
	return f
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
