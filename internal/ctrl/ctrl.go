// Package ctrl defines the narrow interface every task manager in this
// repository — Twig and the Heracles/Hipster/PARTIES/static baselines —
// implements, together with the observation each one receives every
// monitoring interval. Controllers see only what their real counterparts
// could: per-service tail latency (log-file interface), normalised PMCs
// (perfmon), measured socket power (RAPL) and their own previous
// decisions.
package ctrl

import (
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// ServiceObs is one service's view for the interval that just finished.
type ServiceObs struct {
	// P99Ms is the measured 99th-percentile latency.
	P99Ms float64
	// QoSTargetMs is the service's tail-latency target.
	QoSTargetMs float64
	// MeasuredRPS is the observed completion throughput.
	MeasuredRPS float64
	// MaxLoadRPS is the profiled saturation load (known to managers
	// that bucket load, such as Hipster).
	MaxLoadRPS float64
	// NormPMCs are the feature-scaled Table-I counters.
	NormPMCs pmc.Sample
	// QueueGrowing hints that the service is falling behind (visible in
	// the log as rising latencies).
	QueueGrowing bool
}

// Observation is the system view for one monitoring interval.
type Observation struct {
	// Time is the interval index (seconds since experiment start).
	Time int
	// Services holds one entry per managed service.
	Services []ServiceObs
	// PowerW is the measured socket power.
	PowerW float64
}

// Controller decides the next interval's resource assignment from the
// current observation. Decide is called once per monitoring interval.
type Controller interface {
	Name() string
	Decide(obs Observation) sim.Assignment
}

// PhasedController is an optional Controller extension for fleet-level
// batching: a coordinator that drives several controllers per tick may
// split each Decide into PrepareDecide (observe + enqueue learning and
// action-selection work) and FinishDecide (collect the selected actions
// and emit the assignment), with one shared flush — e.g. a batched
// grouped-GEMM sweep over every controller's network — in between.
// PrepareDecide/FinishDecide must compose to exactly Decide: calling
// them around a flush yields the bit-identical assignment and learning
// trajectory.
type PhasedController interface {
	Controller
	PrepareDecide(obs Observation)
	FinishDecide() sim.Assignment
}

// Closer is an optional Controller extension for controllers holding
// shared resources (e.g. pooled parameter-arena slots). Coordinators
// call Close when a controller is discarded — rebuild, drain, eviction.
type Closer interface {
	Close()
}

// QoSMet reports whether a latency sample met its target.
func (s ServiceObs) QoSMet() bool { return s.P99Ms <= s.QoSTargetMs }

// Tardiness returns measured QoS over target (>1 means a violation).
func (s ServiceObs) Tardiness() float64 {
	if s.QoSTargetMs == 0 {
		return 0
	}
	return s.P99Ms / s.QoSTargetMs
}
