package mat

import "sync"

// Pool recycles fixed-shape scratch matrices. Workspace owners (the nn
// layers) draw from it when they first see a batch size and return
// evicted buffers to it, so alternating batch shapes — one-row inference
// interleaved with minibatch training — reach steady state with zero
// heap allocations. A Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[[2]int][]*Matrix
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a rows×cols matrix, reusing a previously Put one when a
// shape match is available. The contents are unspecified; call Zero if
// the caller needs a cleared matrix.
func (p *Pool) Get(rows, cols int) *Matrix {
	key := [2]int{rows, cols}
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	return New(rows, cols)
}

// Put returns m to the pool for reuse. The caller must not use m again.
// Nil matrices are ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil {
		return
	}
	key := [2]int{m.Rows, m.Cols}
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[[2]int][]*Matrix)
	}
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
}

// scratch is the package-level pool behind GetScratch/PutScratch.
var scratch = NewPool()

// GetScratch draws a rows×cols matrix from the shared scratch pool.
func GetScratch(rows, cols int) *Matrix { return scratch.Get(rows, cols) }

// PutScratch returns a matrix to the shared scratch pool.
func PutScratch(m *Matrix) { scratch.Put(m) }
