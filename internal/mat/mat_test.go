package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := m.Row(1)[2]; got != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", got)
	}
	if got := m.Col(2); got[1] != 7 || got[0] != 0 {
		t.Fatalf("Col(2) = %v", got)
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := New(2, 2)
	Mul(c, a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim mismatch")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(4, 2))
}

// TestMulTransConsistency checks MulTransA and MulTransB against explicit
// transposition followed by Mul, on random matrices.
func TestMulTransConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMat(rng, k, m) // aᵀ is m×k
		b := randMat(rng, k, n)
		got := New(m, n)
		MulTransA(got, a, b)
		want := New(m, n)
		Mul(want, transpose(a), b)
		assertMatEq(t, "MulTransA", got, want, 1e-12)

		a2 := randMat(rng, m, k)
		b2 := randMat(rng, n, k) // b2ᵀ is k×n
		got2 := New(m, n)
		MulTransB(got2, a2, b2)
		want2 := New(m, n)
		Mul(want2, a2, transpose(b2))
		assertMatEq(t, "MulTransB", got2, want2, 1e-12)
	}
}

func transpose(a *Matrix) *Matrix {
	o := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			o.Set(j, i, a.At(i, j))
		}
	}
	return o
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func assertMatEq(t *testing.T, label string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], tol) {
			t.Fatalf("%s: data[%d] = %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := New(2, 2)
	Add(c, a, b)
	if c.At(1, 1) != 12 {
		t.Fatalf("Add = %v", c.Data)
	}
	Sub(c, b, a)
	if c.At(0, 0) != 4 {
		t.Fatalf("Sub = %v", c.Data)
	}
	Hadamard(c, a, b)
	if c.At(1, 0) != 21 {
		t.Fatalf("Hadamard = %v", c.Data)
	}
	c.Scale(2)
	if c.At(1, 0) != 42 {
		t.Fatalf("Scale = %v", c.Data)
	}
	c.AddScaled(1, a)
	if c.At(1, 0) != 45 {
		t.Fatalf("AddScaled = %v", c.Data)
	}
	Apply(c, a, func(x float64) float64 { return -x })
	if c.At(0, 1) != -2 {
		t.Fatalf("Apply = %v", c.Data)
	}
}

func TestBroadcastAndReductions(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowBroadcast([]float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowBroadcast = %v", m.Data)
	}
	s := m.ColSums()
	if s[0] != 24 || s[1] != 46 {
		t.Fatalf("ColSums = %v", s)
	}
	means := m.RowMeans()
	if means[0] != 16.5 {
		t.Fatalf("RowMeans = %v", means)
	}
	if m.MaxAbs() != 24 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if !almostEq(FromRows([][]float64{{3, 4}}).FrobeniusNorm(), 5, 1e-12) {
		t.Fatal("FrobeniusNorm")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	if Argmax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("Argmax should return first max")
	}
	if Max([]float64{-3, -1, -2}) != -1 || Min([]float64{-3, -1, -2}) != -3 {
		t.Fatal("Max/Min")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp")
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("Mean/Std of empty")
	}
	if !almostEq(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Fatal("Std")
	}
	v := []float64{1, 2}
	Scale(3, v)
	if v[1] != 6 {
		t.Fatal("Scale vec")
	}
	c := Clone(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

// Property: matrix multiplication distributes over addition:
// A·(B+C) == A·B + A·C.
func TestMulDistributesOverAdd(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c := randMat(rng, k, n)
		bc := New(k, n)
		Add(bc, b, c)
		left := New(m, n)
		Mul(left, a, bc)
		ab := New(m, n)
		Mul(ab, a, b)
		ac := New(m, n)
		Mul(ac, a, c)
		right := New(m, n)
		Add(right, ab, ac)
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		if !almostEq(Dot(a, b), Dot(b, a), 1e-9) {
			return false
		}
		a2 := Clone(a)
		Scale(2, a2)
		return almostEq(Dot(a2, b), 2*Dot(a, b), 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
