package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Fast-math mode tests. The fast kernels (FMA, AVX-512) are NOT bitwise
// equal to the default path — the contract is a per-element error bound
// against the naive reference, plus: identical accumulation order,
// identical ±0 zero-skip semantics, and exact equality whenever every
// product is exactly representable (fused and split rounding agree on
// exact arithmetic).

// withFast toggles fast-math dispatch and restores the prior setting.
func withFast(t *testing.T, on bool) func() {
	t.Helper()
	saved := fastMath
	fastMath = on
	return func() { fastMath = saved }
}

// fastFill fills data with moderate-magnitude values (plus exact zeros
// for the skip path); no 1e150 outliers, so the relative error bound
// below is meaningful.
func fastFill(data []float64, rng *rand.Rand) {
	for i := range data {
		switch rng.Intn(8) {
		case 0:
			data[i] = 0
		case 1:
			data[i] = math.Copysign(0, -1)
		default:
			data[i] = rng.NormFloat64()
		}
	}
}

// requireTolEqual checks |got−want| ≤ relTol·Σ|a_ik·b_kj| + absTol per
// destination element — the error budget of re-rounding k fused terms.
func requireTolEqual(t *testing.T, tag string, got, want, absRef *Matrix) {
	t.Helper()
	const relTol = 1e-12
	const absTol = 1e-300
	for i, w := range want.Data {
		g := got.Data[i]
		if math.IsNaN(w) {
			if !math.IsNaN(g) {
				t.Fatalf("%s: element %d: got %v want NaN", tag, i, g)
			}
			continue
		}
		if diff := math.Abs(g - w); diff > relTol*absRef.Data[i]+absTol {
			t.Fatalf("%s: element %d: got %v want %v (diff %g, budget %g)",
				tag, i, g, w, diff, relTol*absRef.Data[i]+absTol)
		}
	}
}

// absMulRef computes Σ|a_ik|·|b_kj| per destination element.
func absMulRef(a, b *Matrix) *Matrix {
	ref := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for x := 0; x < a.Cols; x++ {
				s += math.Abs(a.At(i, x)) * math.Abs(b.At(x, j))
			}
			ref.Set(i, j, s)
		}
	}
	return ref
}

func fastShapes() [][3]int {
	return [][3]int{
		{1, 22, 512}, {3, 17, 9}, {4, 8, 8}, {7, 33, 16}, {8, 22, 512},
		{9, 1, 8}, {12, 5, 24}, {16, 16, 16}, {17, 64, 40}, {64, 22, 512},
		{64, 512, 256}, {33, 7, 68},
	}
}

// TestFastKernelsTolerance runs every product entry point in fast mode
// against the default bit-exact result and checks the error bound, at
// serial and parallel fan-out.
func TestFastKernelsTolerance(t *testing.T) {
	if !haveFMA {
		t.Skip("no FMA on this machine (or force-disabled)")
	}
	rng := rand.New(rand.NewSource(11))
	for _, sh := range fastShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(k, n)
		bias := make([]float64, n)
		fastFill(a.Data, rng)
		fastFill(b.Data, rng)
		fastFill(bias, rng)
		absRef := absMulRef(a, b)

		withParallelism(t, func(par int) {
			want, got := New(m, n), New(m, n)
			Mul(want, a, b)
			restore := withFast(t, true)
			Mul(got, a, b)
			restore()
			requireTolEqual(t, "Mul", got, want, absRef)

			MulBiasAct(want, a, b, bias, ActReLU)
			restore = withFast(t, true)
			MulBiasAct(got, a, b, bias, ActReLU)
			restore()
			requireTolEqual(t, "MulBiasAct", got, want, absRef)

			pb := PackB(b)
			MulPackedBiasAct(want, a, pb, bias, ActIdentity)
			restore = withFast(t, true)
			MulPackedBiasAct(got, a, pb, bias, ActIdentity)
			restore()
			requireTolEqual(t, "MulPackedBiasAct", got, want, absRef)

			// MulTransAAcc: dst = atᵀ·b where at is k'×m' — reuse a as
			// the transposed operand (dst is k×n sized from aᵀ? no:
			// operands (m×k)ᵀ·(m×n)). Build a fresh pair.
			at := New(m, k)
			bt := New(m, n)
			fastFill(at.Data, rng)
			fastFill(bt.Data, rng)
			accWant, accGot := New(k, n), New(k, n)
			fastFill(accWant.Data, rng)
			copy(accGot.Data, accWant.Data)
			MulTransAAcc(accWant, at, bt)
			restore = withFast(t, true)
			MulTransAAcc(accGot, at, bt)
			restore()
			atT := New(k, m)
			for i := 0; i < m; i++ {
				for j := 0; j < k; j++ {
					atT.Set(j, i, at.At(i, j))
				}
			}
			requireTolEqual(t, "MulTransAAcc", accGot, accWant, absMulRef(atT, bt))

			// MulTransB: dst = a·bTᵀ with bT n×k.
			bT := New(n, k)
			for i := 0; i < k; i++ {
				for j := 0; j < n; j++ {
					bT.Set(j, i, b.At(i, j))
				}
			}
			MulTransB(want, a, bT)
			restore = withFast(t, true)
			MulTransB(got, a, bT)
			restore()
			requireTolEqual(t, "MulTransB", got, want, absRef)
		})
	}
}

// TestFastKernelsExactOnPowersOfTwo: with power-of-two operands every
// product and partial sum is exact, so fused and split rounding must
// agree bit for bit — a strong correctness check of the FMA/ZMM tiles
// (lane routing, zero-skip, edge tiles) independent of rounding.
func TestFastKernelsExactOnPowersOfTwo(t *testing.T) {
	if !haveFMA {
		t.Skip("no FMA on this machine (or force-disabled)")
	}
	rng := rand.New(rand.NewSource(7))
	pow2 := func(data []float64) {
		for i := range data {
			if rng.Intn(6) == 0 {
				data[i] = 0 // exercise the skip branches
			} else {
				data[i] = math.Ldexp(1, rng.Intn(7)-3) * float64(1-2*rng.Intn(2))
			}
		}
	}
	for _, sh := range fastShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(k, n)
		pow2(a.Data)
		pow2(b.Data)
		want, got := New(m, n), New(m, n)
		Mul(want, a, b)
		restore := withFast(t, true)
		Mul(got, a, b)
		restore()
		requireBitsEqual(t, "Mul/pow2", got, want)
	}
}

// TestFastModeUnavailableFallsBack: with FMA and AVX-512 force-disabled,
// SetFastMath(true) must leave dispatch on the default kernels and stay
// bitwise identical.
func TestFastModeUnavailableFallsBack(t *testing.T) {
	savedF, saved512 := haveFMA, haveAVX512
	defer func() { haveFMA, haveAVX512 = savedF, saved512 }()
	haveFMA, haveAVX512 = false, false

	name := SetFastMath(true)
	defer SetFastMath(false)
	if FastMath() {
		t.Fatal("FastMath() reported active without FMA/AVX-512")
	}
	wantName := "avx2"
	if !haveAVX2 {
		wantName = "portable"
	}
	if name != wantName {
		t.Fatalf("KernelName = %q, want %q", name, wantName)
	}

	rng := rand.New(rand.NewSource(3))
	a, b := New(17, 22), New(22, 40)
	fuzzFill(a.Data, rng)
	fuzzFill(b.Data, rng)
	want, got := New(17, 40), New(17, 40)
	fastMath = false
	Mul(want, a, b)
	fastMath = true
	Mul(got, a, b)
	requireBitsEqual(t, "Mul/fast-unavailable", got, want)
}

// TestKernelNameProvenance pins the dispatch strings for every flag
// combination.
func TestKernelNameProvenance(t *testing.T) {
	savedA, savedF, saved512, savedFast := haveAVX2, haveFMA, haveAVX512, fastMath
	defer func() { haveAVX2, haveFMA, haveAVX512, fastMath = savedA, savedF, saved512, savedFast }()

	cases := []struct {
		avx2, fma, avx512, fast bool
		want                    string
	}{
		{false, false, false, false, "portable"},
		{false, true, true, true, "portable"},
		{true, false, false, false, "avx2"},
		{true, true, true, false, "avx2"},
		{true, true, false, true, "avx2-fma"},
		{true, true, true, true, "avx512f-fma"},
	}
	for _, c := range cases {
		haveAVX2, haveFMA, haveAVX512, fastMath = c.avx2, c.fma, c.avx512, c.fast
		if got := KernelName(); got != c.want {
			t.Errorf("KernelName(avx2=%v fma=%v avx512=%v fast=%v) = %q, want %q",
				c.avx2, c.fma, c.avx512, c.fast, got, c.want)
		}
	}
}

// TestCPUFeaturesString pins the provenance string shape.
func TestCPUFeaturesString(t *testing.T) {
	savedA, savedF, saved512 := haveAVX2, haveFMA, haveAVX512
	defer func() { haveAVX2, haveFMA, haveAVX512 = savedA, savedF, saved512 }()
	haveAVX2, haveFMA, haveAVX512 = true, true, true
	if got := CPUFeatures(); got != "avx2+fma+avx512f" {
		t.Errorf("CPUFeatures = %q", got)
	}
	haveAVX2, haveFMA, haveAVX512 = false, false, false
	if got := CPUFeatures(); got != "none" {
		t.Errorf("CPUFeatures = %q", got)
	}
}

// FuzzFastMulTolerance is the tolerance-demoted differential oracle for
// fast mode: arbitrary shapes, fast vs default kernels, error-bound
// comparison (CI fuzz-smoke runs this next to the bitwise oracles).
func FuzzFastMulTolerance(f *testing.F) {
	f.Add(int64(1), byte(64), byte(22), byte(512%68))
	f.Add(int64(2), byte(1), byte(22), byte(512%68))
	f.Add(int64(3), byte(8), byte(8), byte(8))
	f.Add(int64(4), byte(17), byte(33), byte(9))
	f.Add(int64(5), byte(9), byte(0), byte(9))
	f.Add(int64(6), byte(16), byte(5), byte(40))
	f.Fuzz(func(t *testing.T, seed int64, mb, kb, nb byte) {
		if !haveFMA {
			t.Skip("no FMA on this machine")
		}
		m, k, n := clampDim(mb), clampDim(kb), clampDim(nb)
		rng := rand.New(rand.NewSource(seed))
		a, b := New(m, k), New(k, n)
		fastFill(a.Data, rng)
		fastFill(b.Data, rng)
		absRef := absMulRef(a, b)
		want, got := New(m, n), New(m, n)
		Mul(want, a, b)
		restore := withFast(t, true)
		Mul(got, a, b)
		restore()
		requireTolEqual(t, "Mul/fast", got, want, absRef)
	})
}
