package mat

import (
	"math/rand"
	"testing"
)

// The grouped/packed path's contract is the same as the tiled one:
// bitwise equality with the per-agent MulBiasAct calls it replaces, at
// every kernel and fan-out. These tests are the mat-layer half of the
// PR 8 golden differential — the bdq pool tests build on them.

func TestMulPackedBiasActMatchesMulBiasAct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 22, 512},  // batch-1 select: streaming per-agent, packed pooled
		{3, 22, 512},  // below minPackRows, ragged tile edge
		{8, 512, 256}, // at the gate
		{64, 256, 128},
		{5, 128, 18}, // ragged n
		{1, 0, 7},    // degenerate depth
		{4, 7, 0},    // degenerate width
	}
	for _, sh := range shapes {
		a := New(sh.m, sh.k)
		b := New(sh.k, sh.n)
		bias := make([]float64, sh.n)
		fuzzFill(a.Data, rng)
		fuzzFill(b.Data, rng)
		fuzzFill(bias, rng)

		for _, act := range []Activation{ActIdentity, ActReLU} {
			want := New(sh.m, sh.n)
			MulBiasAct(want, a, b, bias, act)
			withKernels(t, func(kernel string) {
				withParallelism(t, func(par int) {
					pb := PackB(b)
					got := New(sh.m, sh.n)
					fuzzFill(got.Data, rng)
					MulPackedBiasAct(got, a, pb, bias, act)
					requireBitsEqual(t, "MulPackedBiasAct/"+kernel, got, want)

					// RepackFrom reuses the buffer and stays identical.
					pb.RepackFrom(b)
					MulPackedBiasAct(got, a, pb, bias, act)
					requireBitsEqual(t, "RepackFrom/"+kernel, got, want)
				})
			})
		}
	}
}

func TestMulGroupedBiasActMatchesPerAgent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct{ groups, rowsPer, k, n int }{
		{36, 1, 22, 512},  // fleet batch-1 select, S=36
		{8, 1, 512, 256},  // trunk second layer
		{4, 3, 22, 512},   // narrow bands below mr
		{3, 32, 256, 128}, // wide bands (per-band tiled path)
		{5, 4, 128, 18},   // exactly mr rows per band
		{2, 1, 0, 9},      // degenerate depth
		{2, 2, 9, 0},      // degenerate width
	}
	for _, tc := range cases {
		a := New(tc.groups*tc.rowsPer, tc.k)
		fuzzFill(a.Data, rng)
		groups := make([]Group, tc.groups)
		bs := make([]*Matrix, tc.groups)
		for g := range groups {
			bs[g] = New(tc.k, tc.n)
			fuzzFill(bs[g].Data, rng)
			bias := make([]float64, tc.n)
			fuzzFill(bias, rng)
			groups[g] = Group{B: bs[g], Bias: bias}
		}

		for _, act := range []Activation{ActIdentity, ActReLU} {
			// Reference: one MulBiasAct per band, exactly the per-agent loop.
			want := New(a.Rows, tc.n)
			for g := range groups {
				r0 := g * tc.rowsPer
				MulBiasAct(want.RowsView(r0, r0+tc.rowsPer), a.RowsView(r0, r0+tc.rowsPer),
					bs[g], groups[g].Bias, act)
			}
			withKernels(t, func(kernel string) {
				withParallelism(t, func(par int) {
					// Raw operands (scratch packing per call).
					got := New(a.Rows, tc.n)
					fuzzFill(got.Data, rng)
					MulGroupedBiasAct(got, a, tc.rowsPer, groups, act)
					requireBitsEqual(t, "grouped-raw/"+kernel, got, want)

					// Persistent packed panels (the pooled select cache).
					packed := make([]Group, len(groups))
					for g := range groups {
						packed[g] = Group{Packed: PackB(bs[g]), Bias: groups[g].Bias}
					}
					fuzzFill(got.Data, rng)
					MulGroupedBiasAct(got, a, tc.rowsPer, packed, act)
					requireBitsEqual(t, "grouped-packed/"+kernel, got, want)
				})
			})
		}
	}
}

// TestMulGroupedBackwardMatchesPerAgent: the grouped training sweeps
// (weight-gradient accumulate, upstream gradient) must be bitwise equal
// to the per-agent MulTransAAcc/MulTransB loop they replace, at every
// kernel and fan-out — the mat-layer half of the pooled-training golden.
func TestMulGroupedBackwardMatchesPerAgent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ groups, rowsPer, k, n int }{
		{8, 8, 22, 512},  // fleet minibatch: rows = batch per member
		{3, 64, 512, 256}, // wide bands, trunk second layer
		{4, 8, 128, 18},  // head gradients, ragged n
		{2, 3, 16, 9},    // bands below the pack gate
		{2, 4, 0, 9},     // degenerate depth
		{3, 2, 9, 0},     // degenerate width
	}
	for _, tc := range cases {
		rows := tc.groups * tc.rowsPer
		a := New(rows, tc.k) // stacked activations
		g := New(rows, tc.n) // stacked output gradient
		fuzzFill(a.Data, rng)
		fuzzFill(g.Data, rng)
		ws := make([]*Matrix, tc.groups) // per-member weights k×n
		for i := range ws {
			ws[i] = New(tc.k, tc.n)
			fuzzFill(ws[i].Data, rng)
		}

		// References: the per-agent backward loop, band by band.
		wantGrads := make([]*Matrix, tc.groups)
		accInit := make([]*Matrix, tc.groups)
		wantIn := New(rows, tc.k)
		for i := range ws {
			r0 := i * tc.rowsPer
			accInit[i] = New(tc.k, tc.n)
			fuzzFill(accInit[i].Data, rng) // nonzero: Acc must accumulate
			wantGrads[i] = accInit[i].Clone()
			MulTransAAcc(wantGrads[i], a.RowsView(r0, r0+tc.rowsPer), g.RowsView(r0, r0+tc.rowsPer))
			MulTransB(wantIn.RowsView(r0, r0+tc.rowsPer), g.RowsView(r0, r0+tc.rowsPer), ws[i])
		}

		withKernels(t, func(kernel string) {
			withParallelism(t, func(par int) {
				grads := make([]*Matrix, tc.groups)
				for i := range grads {
					grads[i] = accInit[i].Clone()
				}
				MulGroupedTransAAcc(grads, a, g, tc.rowsPer)
				for i := range grads {
					requireBitsEqual(t, "grouped-transA/"+kernel, grads[i], wantGrads[i])
				}

				gotIn := New(rows, tc.k)
				fuzzFill(gotIn.Data, rng)
				MulGroupedTransB(gotIn, g, tc.rowsPer, ws)
				requireBitsEqual(t, "grouped-transB/"+kernel, gotIn, wantIn)
			})
		})
	}
}

// TestMulDispatchBenchShapes pins the execution path of every shape the
// committed bench baselines record, so a future threshold change cannot
// silently move gemm/mul_1x22x512 off the streaming path (or the
// batched shapes off the tiled path) without this test flagging it.
func TestMulDispatchBenchShapes(t *testing.T) {
	cases := []struct {
		m, k, n int
		path    string
	}{
		{1, 22, 512, "streaming"}, // batch-1 select — below minPackRows
		{64, 22, 512, "tiled"},
		{64, 512, 256, "tiled"},
		{64, 256, 128, "tiled"},
		{64, 128, 18, "tiled"},
		{minPackRows - 1, 64, 64, "streaming"},
		{minPackRows, 64, 64, "tiled"},
		{8, 0, 64, "streaming"}, // degenerate depth never packs
		{8, 64, 0, "streaming"},
	}
	for _, tc := range cases {
		info := MulDispatch(tc.m, tc.k, tc.n)
		if info.Path != tc.path {
			t.Errorf("MulDispatch(%d,%d,%d).Path = %q, want %q", tc.m, tc.k, tc.n, info.Path, tc.path)
		}
		if info.Kernel != KernelName() {
			t.Errorf("MulDispatch(%d,%d,%d).Kernel = %q, want %q", tc.m, tc.k, tc.n, info.Kernel, KernelName())
		}
	}
	// The packed path runs tiled at every row count — that is the point.
	if got := PackedDispatch(1, 22, 512); got.Path != "tiled" {
		t.Errorf("PackedDispatch(1,22,512).Path = %q, want tiled", got.Path)
	}
	if KernelName() != "avx2" && KernelName() != "portable" {
		t.Errorf("KernelName() = %q, want avx2 or portable", KernelName())
	}
	if MinPackRows() != minPackRows {
		t.Errorf("MinPackRows() = %d, want %d", MinPackRows(), minPackRows)
	}
}

// TestDispatchParallelGate pins the parallel fan-out decision to the
// actual gate at a non-default parallelism.
func TestDispatchParallelGate(t *testing.T) {
	saved := Parallelism()
	defer SetParallelism(saved)
	SetParallelism(8)
	if MulDispatch(64, 512, 256).Parallel != useParallel(64, 64*512*256) {
		t.Error("MulDispatch parallel flag disagrees with useParallel")
	}
	SetParallelism(1)
	if MulDispatch(64, 512, 256).Parallel {
		t.Error("MulDispatch reports parallel at fan-out 1")
	}
}

func TestRowsView(t *testing.T) {
	m := New(6, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	v := m.RowsView(2, 5)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("RowsView shape %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, -1)
	if m.At(2, 0) != -1 {
		t.Error("RowsView does not share storage")
	}
	f := FromSlice(2, 3, m.Data[:6])
	f.Set(1, 2, -2)
	if m.At(1, 2) != -2 {
		t.Error("FromSlice does not share storage")
	}
}
