package mat

import "math"

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Sum returns Σ v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Argmax returns the index of the largest element of v (first on ties).
// It panics on an empty slice.
func Argmax(v []float64) int {
	if len(v) == 0 {
		panic("mat: Argmax of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element of v. It panics on an empty slice.
func Max(v []float64) float64 { return v[Argmax(v)] }

// Min returns the smallest element of v. It panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("mat: Min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Scale multiplies every element of v by s in place.
func Scale(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
