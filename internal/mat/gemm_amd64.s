//go:build amd64

#include "textflag.h"

// AVX2 GEMM microkernels. Panel layout: nr=8 destination columns per
// panel, k-major — the t-th step reads panel[8t : 8t+8] as two 256-bit
// vectors. Accumulators live in Y4..Y11 (one pair per destination row);
// each update is VMULPD then VADDPD with the accumulator as the first
// addend, matching the rounding and NaN-propagation order of the scalar
// `acc = acc + av*bv`. Zero-skip tests the a element's bits shifted left
// by one: zero iff the value is ±0, never for NaN.

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8 // OSXSAVE | AVX
	CMPL R8, $(1<<27 | 1<<28)
	JNE  novx
	XORL CX, CX
	XGETBV                    // XCR0 → DX:AX
	ANDL $6, AX
	CMPL AX, $6               // XMM and YMM state OS-enabled
	JNE  novx
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX         // AVX2
	JZ   novx
	MOVB $1, ret+0(FP)
	RET
novx:
	MOVB $0, ret+0(FP)
	RET

// func kern4x8s(k int, a0, a1, a2, a3, panel *float64, acc *[32]float64)
TEXT ·kern4x8s(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), SI
	MOVQ acc+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	TESTQ CX, CX
	JZ   done4s
loop4s:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   r1s
	VBROADCASTSD (R8), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y5, Y5
r1s:
	MOVQ (R9), AX
	ADDQ AX, AX
	JZ   r2s
	VBROADCASTSD (R9), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y6, Y6
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y7, Y7
r2s:
	MOVQ (R10), AX
	ADDQ AX, AX
	JZ   r3s
	VBROADCASTSD (R10), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y8, Y8
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y9, Y9
r3s:
	MOVQ (R11), AX
	ADDQ AX, AX
	JZ   nexts
	VBROADCASTSD (R11), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y10, Y10
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y11, Y11
nexts:
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $64, SI
	DECQ CX
	JNZ  loop4s
done4s:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VMOVUPD Y8, 128(DI)
	VMOVUPD Y9, 160(DI)
	VMOVUPD Y10, 192(DI)
	VMOVUPD Y11, 224(DI)
	VZEROUPPER
	RET

// func kern4x8n(k int, a0, a1, a2, a3, panel *float64, acc *[32]float64)
TEXT ·kern4x8n(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), SI
	MOVQ acc+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	TESTQ CX, CX
	JZ   done4n
loop4n:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VBROADCASTSD (R8), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y5, Y5
	VBROADCASTSD (R9), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y6, Y6
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y7, Y7
	VBROADCASTSD (R10), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y8, Y8
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y9, Y9
	VBROADCASTSD (R11), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y10, Y10
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y11, Y11
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $64, SI
	DECQ CX
	JNZ  loop4n
done4n:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VMOVUPD Y8, 128(DI)
	VMOVUPD Y9, 160(DI)
	VMOVUPD Y10, 192(DI)
	VMOVUPD Y11, 224(DI)
	VZEROUPPER
	RET

// func kern1x8s(k int, a0, panel *float64, acc *[8]float64)
TEXT ·kern1x8s(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ panel+16(FP), SI
	MOVQ acc+24(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	TESTQ CX, CX
	JZ   done1s
loop1s:
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   next1s
	VBROADCASTSD (R8), Y2
	VMULPD (SI), Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD 32(SI), Y2, Y3
	VADDPD Y3, Y5, Y5
next1s:
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loop1s
done1s:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VZEROUPPER
	RET

// func kernRowPanelsS(k, panels int, a0, panel, acc *float64)
//
// Fused row sweep: `panels` consecutive nr-wide panels of one packed
// operand against one a-row, accumulators flushed to acc[8p : 8p+8] per
// panel. Each panel runs exactly the kern1x8s loop (same zero-skip,
// same VMULPD/VADDPD order), so the result is bitwise kern1x8s called
// panel by panel — minus the per-panel call overhead, which dominates
// batch-1 pooled selects at small k.
TEXT ·kernRowPanelsS(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), BX
	MOVQ panels+8(FP), R9
	MOVQ a0+16(FP), R10
	MOVQ panel+24(FP), SI
	MOVQ acc+32(FP), DI
	TESTQ R9, R9
	JZ   doneRS
panelRS:
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	MOVQ R10, R8
	MOVQ BX, CX
	TESTQ CX, CX
	JZ   flushRS
loopRS:
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   nextRS
	VBROADCASTSD (R8), Y2
	VMULPD (SI), Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD 32(SI), Y2, Y3
	VADDPD Y3, Y5, Y5
nextRS:
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loopRS
flushRS:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, DI
	DECQ R9
	JNZ  panelRS
doneRS:
	VZEROUPPER
	RET

// func kernRowPanelsN(k, panels int, a0, panel, acc *float64)
//
// The no-skip twin of kernRowPanelsS (kern1x8n per panel).
TEXT ·kernRowPanelsN(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), BX
	MOVQ panels+8(FP), R9
	MOVQ a0+16(FP), R10
	MOVQ panel+24(FP), SI
	MOVQ acc+32(FP), DI
	TESTQ R9, R9
	JZ   doneRN
panelRN:
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	MOVQ R10, R8
	MOVQ BX, CX
	TESTQ CX, CX
	JZ   flushRN
loopRN:
	VBROADCASTSD (R8), Y2
	VMULPD (SI), Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD 32(SI), Y2, Y3
	VADDPD Y3, Y5, Y5
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loopRN
flushRN:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, DI
	DECQ R9
	JNZ  panelRN
doneRN:
	VZEROUPPER
	RET

// func kern1x8n(k int, a0, panel *float64, acc *[8]float64)
TEXT ·kern1x8n(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ panel+16(FP), SI
	MOVQ acc+24(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	TESTQ CX, CX
	JZ   done1n
loop1n:
	VBROADCASTSD (R8), Y2
	VMULPD (SI), Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD 32(SI), Y2, Y3
	VADDPD Y3, Y5, Y5
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loop1n
done1n:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VZEROUPPER
	RET

// ---------------------------------------------------------------------------
// Opt-in fast-math kernels (SetFastMath). Each VMULPD/VADDPD pair above
// becomes a single VFMADD231PD: the product feeds the add with one
// rounding instead of two, so results differ from the default kernels in
// the last ulps but keep the same ascending-k accumulation order and the
// same zero-skip semantics (skip only ±0, never NaN). The 8×8 ZMM tile
// additionally widens a panel step to one embedded-broadcast FMA per
// destination row. None of these run unless mat.SetFastMath(true) AND
// the CPU reports the feature with OS-enabled state.

// func cpuHasFMA() bool
TEXT ·cpuHasFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28 | 1<<12), R8 // OSXSAVE | AVX | FMA
	CMPL R8, $(1<<27 | 1<<28 | 1<<12)
	JNE  nofma
	XORL CX, CX
	XGETBV                    // XCR0 → DX:AX
	ANDL $6, AX
	CMPL AX, $6               // XMM and YMM state OS-enabled
	JNE  nofma
	MOVB $1, ret+0(FP)
	RET
nofma:
	MOVB $0, ret+0(FP)
	RET

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8 // OSXSAVE | AVX
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no512
	XORL CX, CX
	XGETBV                    // XCR0 → DX:AX
	ANDL $0xE6, AX
	CMPL AX, $0xE6            // XMM | YMM | opmask | ZMM_Hi256 | Hi16_ZMM
	JNE  no512
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<16), BX        // AVX512F
	JZ   no512
	MOVB $1, ret+0(FP)
	RET
no512:
	MOVB $0, ret+0(FP)
	RET

// func kern4x8sF(k int, a0, a1, a2, a3, panel *float64, acc *[32]float64)
TEXT ·kern4x8sF(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), SI
	MOVQ acc+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	TESTQ CX, CX
	JZ   done4sf
loop4sf:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   r1sf
	VBROADCASTSD (R8), Y2
	VFMADD231PD Y0, Y2, Y4
	VFMADD231PD Y1, Y2, Y5
r1sf:
	MOVQ (R9), AX
	ADDQ AX, AX
	JZ   r2sf
	VBROADCASTSD (R9), Y2
	VFMADD231PD Y0, Y2, Y6
	VFMADD231PD Y1, Y2, Y7
r2sf:
	MOVQ (R10), AX
	ADDQ AX, AX
	JZ   r3sf
	VBROADCASTSD (R10), Y2
	VFMADD231PD Y0, Y2, Y8
	VFMADD231PD Y1, Y2, Y9
r3sf:
	MOVQ (R11), AX
	ADDQ AX, AX
	JZ   nextsf
	VBROADCASTSD (R11), Y2
	VFMADD231PD Y0, Y2, Y10
	VFMADD231PD Y1, Y2, Y11
nextsf:
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $64, SI
	DECQ CX
	JNZ  loop4sf
done4sf:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VMOVUPD Y8, 128(DI)
	VMOVUPD Y9, 160(DI)
	VMOVUPD Y10, 192(DI)
	VMOVUPD Y11, 224(DI)
	VZEROUPPER
	RET

// func kern4x8nF(k int, a0, a1, a2, a3, panel *float64, acc *[32]float64)
TEXT ·kern4x8nF(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), SI
	MOVQ acc+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	TESTQ CX, CX
	JZ   done4nf
loop4nf:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VBROADCASTSD (R8), Y2
	VFMADD231PD Y0, Y2, Y4
	VFMADD231PD Y1, Y2, Y5
	VBROADCASTSD (R9), Y2
	VFMADD231PD Y0, Y2, Y6
	VFMADD231PD Y1, Y2, Y7
	VBROADCASTSD (R10), Y2
	VFMADD231PD Y0, Y2, Y8
	VFMADD231PD Y1, Y2, Y9
	VBROADCASTSD (R11), Y2
	VFMADD231PD Y0, Y2, Y10
	VFMADD231PD Y1, Y2, Y11
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $64, SI
	DECQ CX
	JNZ  loop4nf
done4nf:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VMOVUPD Y8, 128(DI)
	VMOVUPD Y9, 160(DI)
	VMOVUPD Y10, 192(DI)
	VMOVUPD Y11, 224(DI)
	VZEROUPPER
	RET

// func kern1x8sF(k int, a0, panel *float64, acc *[8]float64)
TEXT ·kern1x8sF(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ panel+16(FP), SI
	MOVQ acc+24(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	TESTQ CX, CX
	JZ   done1sf
loop1sf:
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   next1sf
	VBROADCASTSD (R8), Y2
	VFMADD231PD (SI), Y2, Y4
	VFMADD231PD 32(SI), Y2, Y5
next1sf:
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loop1sf
done1sf:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VZEROUPPER
	RET

// func kern1x8nF(k int, a0, panel *float64, acc *[8]float64)
TEXT ·kern1x8nF(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ panel+16(FP), SI
	MOVQ acc+24(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	TESTQ CX, CX
	JZ   done1nf
loop1nf:
	VBROADCASTSD (R8), Y2
	VFMADD231PD (SI), Y2, Y4
	VFMADD231PD 32(SI), Y2, Y5
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loop1nf
done1nf:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VZEROUPPER
	RET

// func kernRowPanelsSF(k, panels int, a0, panel, acc *float64)
//
// FMA twin of kernRowPanelsS: same fused multi-panel row sweep and
// zero-skip, one rounding per term.
TEXT ·kernRowPanelsSF(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), BX
	MOVQ panels+8(FP), R9
	MOVQ a0+16(FP), R10
	MOVQ panel+24(FP), SI
	MOVQ acc+32(FP), DI
	TESTQ R9, R9
	JZ   doneRSF
panelRSF:
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	MOVQ R10, R8
	MOVQ BX, CX
	TESTQ CX, CX
	JZ   flushRSF
loopRSF:
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   nextRSF
	VBROADCASTSD (R8), Y2
	VFMADD231PD (SI), Y2, Y4
	VFMADD231PD 32(SI), Y2, Y5
nextRSF:
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loopRSF
flushRSF:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, DI
	DECQ R9
	JNZ  panelRSF
doneRSF:
	VZEROUPPER
	RET

// func kernRowPanelsNF(k, panels int, a0, panel, acc *float64)
//
// FMA twin of kernRowPanelsN (no zero-skip).
TEXT ·kernRowPanelsNF(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), BX
	MOVQ panels+8(FP), R9
	MOVQ a0+16(FP), R10
	MOVQ panel+24(FP), SI
	MOVQ acc+32(FP), DI
	TESTQ R9, R9
	JZ   doneRNF
panelRNF:
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	MOVQ R10, R8
	MOVQ BX, CX
	TESTQ CX, CX
	JZ   flushRNF
loopRNF:
	VBROADCASTSD (R8), Y2
	VFMADD231PD (SI), Y2, Y4
	VFMADD231PD 32(SI), Y2, Y5
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  loopRNF
flushRNF:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, DI
	DECQ R9
	JNZ  panelRNF
doneRNF:
	VZEROUPPER
	RET

// func kern8x8sZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[64]float64)
//
// AVX-512 8×8 tile: one ZMM accumulator per destination row covers the
// whole 8-wide panel, one embedded-broadcast FMA per (row, k) step.
// Zero-skip per a element, like kern4x8s. R14/R15 are left alone (g
// register / linker scratch); the eight row pointers live in
// R8-R13, BX, DX.
TEXT ·kern8x8sZ(SB), NOSPLIT, $0-88
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ a4+40(FP), R12
	MOVQ a5+48(FP), R13
	MOVQ a6+56(FP), BX
	MOVQ a7+64(FP), DX
	MOVQ panel+72(FP), SI
	MOVQ acc+80(FP), DI
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	TESTQ CX, CX
	JZ   done8sz
loop8sz:
	VMOVUPD (SI), Z0
	MOVQ (R8), AX
	ADDQ AX, AX
	JZ   z1s
	VFMADD231PD.BCST (R8), Z0, Z4
z1s:
	MOVQ (R9), AX
	ADDQ AX, AX
	JZ   z2s
	VFMADD231PD.BCST (R9), Z0, Z5
z2s:
	MOVQ (R10), AX
	ADDQ AX, AX
	JZ   z3s
	VFMADD231PD.BCST (R10), Z0, Z6
z3s:
	MOVQ (R11), AX
	ADDQ AX, AX
	JZ   z4s
	VFMADD231PD.BCST (R11), Z0, Z7
z4s:
	MOVQ (R12), AX
	ADDQ AX, AX
	JZ   z5s
	VFMADD231PD.BCST (R12), Z0, Z8
z5s:
	MOVQ (R13), AX
	ADDQ AX, AX
	JZ   z6s
	VFMADD231PD.BCST (R13), Z0, Z9
z6s:
	MOVQ (BX), AX
	ADDQ AX, AX
	JZ   z7s
	VFMADD231PD.BCST (BX), Z0, Z10
z7s:
	MOVQ (DX), AX
	ADDQ AX, AX
	JZ   next8sz
	VFMADD231PD.BCST (DX), Z0, Z11
next8sz:
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	ADDQ $8, BX
	ADDQ $8, DX
	ADDQ $64, SI
	DECQ CX
	JNZ  loop8sz
done8sz:
	VMOVUPD Z4, (DI)
	VMOVUPD Z5, 64(DI)
	VMOVUPD Z6, 128(DI)
	VMOVUPD Z7, 192(DI)
	VMOVUPD Z8, 256(DI)
	VMOVUPD Z9, 320(DI)
	VMOVUPD Z10, 384(DI)
	VMOVUPD Z11, 448(DI)
	VZEROUPPER
	RET

// func kern8x8nZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[64]float64)
//
// The no-skip twin of kern8x8sZ.
TEXT ·kern8x8nZ(SB), NOSPLIT, $0-88
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ a4+40(FP), R12
	MOVQ a5+48(FP), R13
	MOVQ a6+56(FP), BX
	MOVQ a7+64(FP), DX
	MOVQ panel+72(FP), SI
	MOVQ acc+80(FP), DI
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	TESTQ CX, CX
	JZ   done8nz
loop8nz:
	VMOVUPD (SI), Z0
	VFMADD231PD.BCST (R8), Z0, Z4
	VFMADD231PD.BCST (R9), Z0, Z5
	VFMADD231PD.BCST (R10), Z0, Z6
	VFMADD231PD.BCST (R11), Z0, Z7
	VFMADD231PD.BCST (R12), Z0, Z8
	VFMADD231PD.BCST (R13), Z0, Z9
	VFMADD231PD.BCST (BX), Z0, Z10
	VFMADD231PD.BCST (DX), Z0, Z11
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	ADDQ $8, BX
	ADDQ $8, DX
	ADDQ $64, SI
	DECQ CX
	JNZ  loop8nz
done8nz:
	VMOVUPD Z4, (DI)
	VMOVUPD Z5, 64(DI)
	VMOVUPD Z6, 128(DI)
	VMOVUPD Z7, 192(DI)
	VMOVUPD Z8, 256(DI)
	VMOVUPD Z9, 320(DI)
	VMOVUPD Z10, 384(DI)
	VMOVUPD Z11, 448(DI)
	VZEROUPPER
	RET
