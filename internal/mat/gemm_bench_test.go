package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// gemmShapes are the real layer shapes of the paper-size BDQ network
// (StateDim 22, shared 512/256, branch 128, dims 18/9) at the training
// batch size of 64 plus the batch-1 inference shape — the products that
// dominate Twig's per-interval cost (Table III row 1).
var gemmShapes = []struct{ m, k, n int }{
	{64, 22, 512},  // shared0 forward
	{64, 512, 256}, // shared1 forward
	{64, 256, 128}, // branch hidden forward
	{64, 128, 18},  // advantage head forward
	{1, 22, 512},   // batch-1 action selection
}

func benchMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkGEMM(b *testing.B) {
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	rng := rand.New(rand.NewSource(1))
	for _, s := range gemmShapes {
		a := benchMat(s.m, s.k, rng)
		bb := benchMat(s.k, s.n, rng)
		dst := New(s.m, s.n)
		flops := 2 * s.m * s.k * s.n
		b.Run(fmt.Sprintf("Mul/%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Mul(dst, a, bb)
			}
			b.ReportMetric(float64(flops)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOPS")
		})
	}
	// Backward-pass shapes: dW = xᵀ·g and gradIn = g·Wᵀ for the widest layer.
	x := benchMat(64, 512, rng)
	g := benchMat(64, 256, rng)
	w := benchMat(512, 256, rng)
	dw := New(512, 256)
	gin := New(64, 512)
	b.Run("MulTransA/512x64x256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulTransA(dw, x, g)
		}
		b.ReportMetric(float64(2*64*512*256)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOPS")
	})
	b.Run("MulTransB/64x256x512", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulTransB(gin, g, w)
		}
		b.ReportMetric(float64(2*64*256*512)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOPS")
	})
}
