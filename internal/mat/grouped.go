package mat

import "fmt"

// Pooled multi-agent dispatch: persistent packed B panels and a
// block-diagonal ("grouped") GEMM. S agents sharing one architecture
// stack their activations row-wise into a single matrix; each band of
// rows multiplies its own agent's weight matrix. Every destination
// element still accumulates its k terms in ascending order with
// individual roundings on the shared microkernels, so a grouped product
// is bit-identical to the per-agent Mul/MulBiasAct calls it replaces —
// including batch-1 bands, which the per-agent path runs on the
// streaming kernel and the grouped path on the packed 1×8 kernel.

// PackedB is a B operand packed once into nr-wide column panels and
// kept (owned storage, not the scratch pool) so repeated products
// against the same weights — the pooled action-selection sweep — skip
// the per-call packing that makes batch-1 GEMMs memory-bound.
type PackedB struct {
	K, N int // operand shape: K rows (depth) × N cols
	Data []float64
}

// PackB packs b into a persistent panel buffer.
func PackB(b *Matrix) *PackedB {
	pb := &PackedB{}
	pb.RepackFrom(b)
	return pb
}

// RepackFrom re-packs b in place, reusing the panel buffer when the
// shape still fits. Call after the underlying weights change.
func (pb *PackedB) RepackFrom(b *Matrix) {
	k, n := b.Rows, b.Cols
	panels := (n + nr - 1) / nr
	need := panels * nr * k
	if cap(pb.Data) < need {
		pb.Data = make([]float64, need)
	}
	pb.Data = pb.Data[:need]
	pb.K, pb.N = k, n
	packBInto(pb.Data, b)
}

// MulPackedBiasAct computes dst = act(a·b + bias) against a pre-packed
// operand. Unlike MulBiasAct it runs the packed kernels at every row
// count — a single-row product pays no packing and still gets the
// register-tiled microkernel. Bitwise it equals MulBiasAct(dst, a, b,
// bias, act) for the b that was packed.
func MulPackedBiasAct(dst, a *Matrix, pb *PackedB, bias []float64, act Activation) {
	if a.Cols != pb.K || dst.Rows != a.Rows || dst.Cols != pb.N {
		panic(fmt.Sprintf("mat: MulPackedBiasAct dims (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, pb.K, pb.N, dst.Rows, dst.Cols))
	}
	if bias != nil && len(bias) != pb.N {
		panic("mat: MulPackedBiasAct bias length mismatch")
	}
	mulPackedInto(dst, a, pb.Data, 0, a.Rows, bias, act)
}

// mulPackedInto runs rows [r0, r1) of a packed product with the shared
// parallel gate. The degenerate shapes (k = 0 or n = 0) zero-fill and
// apply the epilogue exactly like the streaming kernel.
func mulPackedInto(dst, a *Matrix, bp []float64, r0, r1 int, bias []float64, act Activation) {
	if a.Cols == 0 || dst.Cols == 0 {
		for i := r0; i < r1; i++ {
			row := dst.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
		biasActRange(dst, r0, r1, bias, act)
		return
	}
	rows := r1 - r0
	if rows < mr {
		// Narrow products (solo batch-1 action selection on persistent
		// packs): the fused multi-panel row kernel skips the per-panel
		// call dispatch. Bitwise identical to the per-row tile loop.
		k, n := a.Cols, dst.Cols
		rowScr := GetScratch(1, (n+nr-1)/nr*nr)
		for i := r0; i < r1; i++ {
			gemmPackedRowFused(dst.Row(i), a.Row(i), bp, rowScr.Data, k, n, true, false, bias, act)
		}
		PutScratch(rowScr)
		return
	}
	flops := rows * a.Cols * dst.Cols
	if useParallel(rows, flops) {
		parallelRows(rows, func(c0, c1 int) {
			gemmPackedRange(dst, a, bp, r0+c0, r0+c1, true, false, bias, act)
		})
		return
	}
	gemmPackedRange(dst, a, bp, r0, r1, true, false, bias, act)
}

// Group is one band of a grouped product: the operand (packed when the
// caller caches panels, raw otherwise) and its bias.
type Group struct {
	// B is the raw operand, packed into scratch per call when Packed is
	// nil. Ignored when Packed is set.
	B *Matrix
	// Packed is the pre-packed operand (see PackB), used as-is.
	Packed *PackedB
	// Bias is broadcast-added in the epilogue (nil for none).
	Bias []float64
}

// MulGroupedBiasAct computes the block-diagonal product: a and dst are
// split into len(groups) bands of rowsPer consecutive rows, and band g
// is act(a_g·B_g + bias_g). Every operand must share the depth a.Cols
// and the output width dst.Cols (agents share one architecture). Each
// band is bit-identical to MulBiasAct over that band alone.
func MulGroupedBiasAct(dst, a *Matrix, rowsPer int, groups []Group, act Activation) {
	if rowsPer <= 0 {
		panic("mat: MulGroupedBiasAct rowsPer must be positive")
	}
	if a.Rows != rowsPer*len(groups) || dst.Rows != a.Rows {
		panic(fmt.Sprintf("mat: MulGroupedBiasAct has %d rows for %d groups of %d",
			a.Rows, len(groups), rowsPer))
	}
	k, n := a.Cols, dst.Cols
	for g := range groups {
		gk, gn := groupShape(&groups[g])
		if gk != k || gn != n {
			panic(fmt.Sprintf("mat: MulGroupedBiasAct group %d is %dx%d, want %dx%d", g, gk, gn, k, n))
		}
		if groups[g].Bias != nil && len(groups[g].Bias) != n {
			panic("mat: MulGroupedBiasAct bias length mismatch")
		}
	}
	if len(groups) == 0 {
		return
	}
	if rowsPer >= mr {
		// Wide bands: each band runs the full tiled range (4×8 kernel,
		// per-band parallel fan-out), packing into scratch when the
		// caller holds no persistent panels.
		for g := range groups {
			r0 := g * rowsPer
			bp, scratch := groupPanels(&groups[g])
			mulPackedInto(dst, a, bp, r0, r0+rowsPer, groups[g].Bias, act)
			if scratch != nil {
				PutScratch(scratch)
			}
		}
		return
	}
	// Narrow bands (pooled batch-1 action selection): fan out across the
	// whole stacked row set; each row resolves its own group's panels.
	if rowsPer == 1 && k > 0 && n > 0 && allPacked(groups) {
		// Every group pre-packed (the pooled steady state): no panel
		// indirection to build, no scratch bookkeeping — the row loop
		// reads each group's panels straight out of its PackedB.
		run := func(r0, r1 int) {
			rowScr := GetScratch(1, (n+nr-1)/nr*nr)
			defer PutScratch(rowScr)
			rowAcc := rowScr.Data
			for i := r0; i < r1; i++ {
				gemmPackedRowFused(dst.Row(i), a.Row(i), groups[i].Packed.Data, rowAcc, k, n, true, false, groups[i].Bias, act)
			}
		}
		if useParallel(a.Rows, a.Rows*k*n) {
			parallelRows(a.Rows, run)
		} else {
			run(0, a.Rows)
		}
		return
	}
	var scratches []*Matrix
	panels := make([][]float64, len(groups))
	for g := range groups {
		bp, scratch := groupPanels(&groups[g])
		panels[g] = bp
		if scratch != nil {
			scratches = append(scratches, scratch)
		}
	}
	if k == 0 || n == 0 {
		dst.Zero()
		biasActRange(dst, 0, dst.Rows, nil, ActIdentity)
		for g := range groups {
			r0 := g * rowsPer
			biasActRange(dst, r0, r0+rowsPer, groups[g].Bias, act)
		}
	} else {
		run := func(r0, r1 int) {
			// Per-goroutine row accumulator for the fused row kernel.
			rowScr := GetScratch(1, (n+nr-1)/nr*nr)
			defer PutScratch(rowScr)
			rowAcc := rowScr.Data
			if rowsPer == 1 {
				// Batch-1 select: row i IS group i; skip the divide.
				for i := r0; i < r1; i++ {
					gemmPackedRowFused(dst.Row(i), a.Row(i), panels[i], rowAcc, k, n, true, false, groups[i].Bias, act)
				}
				return
			}
			for i := r0; i < r1; i++ {
				g := i / rowsPer
				gemmPackedRowFused(dst.Row(i), a.Row(i), panels[g], rowAcc, k, n, true, false, groups[g].Bias, act)
			}
		}
		if useParallel(a.Rows, a.Rows*k*n) {
			parallelRows(a.Rows, run)
		} else {
			run(0, a.Rows)
		}
	}
	for _, s := range scratches {
		PutScratch(s)
	}
}

// MulGroupedTransAAcc is the block-diagonal weight-gradient sweep of
// the pooled training path: a and b are split into len(dsts) bands of
// rowsPer consecutive rows, and band g accumulates dsts[g] += a_gᵀ·b_g.
// Each band runs the exact MulTransAAcc dispatch (packed gather kernel
// or streaming fallback), so every destination is bit-identical to the
// per-agent call it replaces.
func MulGroupedTransAAcc(dsts []*Matrix, a, b *Matrix, rowsPer int) {
	if rowsPer <= 0 {
		panic("mat: MulGroupedTransAAcc rowsPer must be positive")
	}
	if a.Rows != rowsPer*len(dsts) || b.Rows != a.Rows {
		panic(fmt.Sprintf("mat: MulGroupedTransAAcc has %dx%d rows for %d groups of %d",
			a.Rows, b.Rows, len(dsts), rowsPer))
	}
	ab := Matrix{Rows: rowsPer, Cols: a.Cols}
	bb := Matrix{Rows: rowsPer, Cols: b.Cols}
	for g, dst := range dsts {
		r0 := g * rowsPer
		ab.Data = a.Data[r0*a.Cols : (r0+rowsPer)*a.Cols]
		bb.Data = b.Data[r0*b.Cols : (r0+rowsPer)*b.Cols]
		MulTransAAcc(dst, &ab, &bb)
	}
}

// MulGroupedTransB is the block-diagonal upstream-gradient sweep: band
// g of dst is a_g·bs[g]ᵀ. Every bs must share the shape (agents share
// one architecture). Bit-identical per band to MulTransB.
func MulGroupedTransB(dst, a *Matrix, rowsPer int, bs []*Matrix) {
	if rowsPer <= 0 {
		panic("mat: MulGroupedTransB rowsPer must be positive")
	}
	if a.Rows != rowsPer*len(bs) || dst.Rows != a.Rows {
		panic(fmt.Sprintf("mat: MulGroupedTransB has %d rows for %d groups of %d",
			a.Rows, len(bs), rowsPer))
	}
	ab := Matrix{Rows: rowsPer, Cols: a.Cols}
	db := Matrix{Rows: rowsPer, Cols: dst.Cols}
	for g, b := range bs {
		r0 := g * rowsPer
		ab.Data = a.Data[r0*a.Cols : (r0+rowsPer)*a.Cols]
		db.Data = dst.Data[r0*dst.Cols : (r0+rowsPer)*dst.Cols]
		MulTransB(&db, &ab, b)
	}
}

// allPacked reports whether every group carries persistent panels.
func allPacked(groups []Group) bool {
	for g := range groups {
		if groups[g].Packed == nil {
			return false
		}
	}
	return true
}

func groupShape(g *Group) (k, n int) {
	if g.Packed != nil {
		return g.Packed.K, g.Packed.N
	}
	return g.B.Rows, g.B.Cols
}

// groupPanels resolves a group's packed panels, packing into scratch
// (returned for release) when no persistent pack is attached.
func groupPanels(g *Group) (bp []float64, scratch *Matrix) {
	if g.Packed != nil {
		return g.Packed.Data, nil
	}
	scratch = packB(g.B)
	return scratch.Data, scratch
}

// DispatchInfo describes the execution path Mul/MulBiasAct selects for
// a given product shape, so benchmarks and tests can assert which
// kernel a shape actually exercises instead of inferring it from
// timings.
type DispatchInfo struct {
	// Path is "tiled" (packed-panel microkernels) or "streaming" (the
	// row-streaming kernel batch-1 shapes stay on).
	Path string
	// Kernel is the microkernel implementation the tiled path uses on
	// this machine: "avx2" or "portable".
	Kernel string
	// Parallel reports whether the product fans out across goroutines
	// at the current SetParallelism setting.
	Parallel bool
}

// MulDispatch reports the path an m×k · k×n Mul/MulBiasAct takes. It
// mirrors the dispatch gate exactly (minPackRows row threshold,
// ParallelFlopThreshold); a threshold change shows up here and in the
// committed bench report, not silently.
func MulDispatch(m, k, n int) DispatchInfo {
	info := DispatchInfo{Path: "streaming", Kernel: KernelName()}
	if m >= minPackRows && k > 0 && n > 0 {
		info.Path = "tiled"
	}
	info.Parallel = useParallel(m, m*k*n)
	return info
}

// PackedDispatch reports the path a packed product (MulPackedBiasAct,
// grouped bands) takes: always tiled, at any row count.
func PackedDispatch(m, k, n int) DispatchInfo {
	return DispatchInfo{Path: "tiled", Kernel: KernelName(), Parallel: useParallel(m, m*k*n)}
}

// MinPackRows exposes the streaming→tiled row threshold for tests and
// reports.
func MinPackRows() int { return minPackRows }

// KernelName names the microkernel implementation dispatch currently
// selects: "portable" (pure-Go fallback), "avx2" (default bit-exact
// assembly), or — with SetFastMath(true) on capable hardware —
// "avx2-fma" / "avx512f-fma". Benchmark reports record it so baselines
// from different machines and modes are comparable.
func KernelName() string {
	switch {
	case !haveAVX2:
		return "portable"
	case fastMath && haveAVX512:
		return "avx512f-fma"
	case fastMath && haveFMA:
		return "avx2-fma"
	default:
		return "avx2"
	}
}
