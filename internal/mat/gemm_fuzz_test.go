package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Differential fuzzing of the tiled GEMM path against the retained naive
// kernels (mulRange / mulTransARange / mulTransBRange). The contract is
// bitwise equality — math.Float64bits, not tolerance — for arbitrary
// shapes (including 0-row/0-col and non-multiples of the 4×8 tile),
// data with exact zeros (exercising the skip path), and both the AVX2
// and portable microkernels at serial and parallel fan-out.

// fuzzFill deterministically fills data from the seed, planting exact
// zeros, negative zeros, denormals and large-magnitude values so the
// skip logic and rounding behaviour are both exercised.
func fuzzFill(data []float64, rng *rand.Rand) {
	for i := range data {
		switch rng.Intn(8) {
		case 0:
			data[i] = 0
		case 1:
			data[i] = math.Copysign(0, -1)
		case 2:
			data[i] = rng.NormFloat64() * 1e-308 // denormal-ish
		case 3:
			data[i] = rng.NormFloat64() * 1e150
		default:
			data[i] = rng.NormFloat64()
		}
	}
}

// clampDim maps a raw fuzz byte to a dimension in [0, 67], covering
// empty matrices, the minPackRows boundary and ragged tile edges.
func clampDim(b byte) int { return int(b) % 68 }

// requireBitsEqual fails if got and want differ in any bit.
func requireBitsEqual(t *testing.T, tag string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		g := got.Data[i]
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: element %d: got %x (%v) want %x (%v)",
				tag, i, math.Float64bits(g), g, math.Float64bits(w), w)
		}
	}
}

// withKernels runs fn under every microkernel selection available on
// this platform (AVX2 assembly and the portable Go path) and restores
// the detected default.
func withKernels(t *testing.T, fn func(kernel string)) {
	t.Helper()
	saved := haveAVX2
	defer func() { haveAVX2 = saved }()
	haveAVX2 = false
	fn("go")
	if saved {
		haveAVX2 = true
		fn("avx2")
	}
}

// withParallelism runs fn at fan-out 1 and 8 and restores the setting.
func withParallelism(t *testing.T, fn func(par int)) {
	t.Helper()
	saved := Parallelism()
	defer SetParallelism(saved)
	for _, par := range []int{1, 8} {
		SetParallelism(par)
		fn(par)
	}
}

func FuzzMulMatchesNaive(f *testing.F) {
	f.Add(int64(1), byte(64), byte(22), byte(512%68))
	f.Add(int64(2), byte(1), byte(22), byte(512%68))
	f.Add(int64(3), byte(0), byte(5), byte(7))
	f.Add(int64(4), byte(9), byte(0), byte(9))
	f.Add(int64(5), byte(9), byte(9), byte(0))
	f.Add(int64(6), byte(7), byte(3), byte(11)) // below minPackRows
	f.Add(int64(7), byte(8), byte(1), byte(8))  // exactly at the gate
	f.Add(int64(8), byte(13), byte(5), byte(17))
	f.Fuzz(func(t *testing.T, seed int64, mb, kb, nb byte) {
		m, k, n := clampDim(mb), clampDim(kb), clampDim(nb)
		rng := rand.New(rand.NewSource(seed))
		a := New(m, k)
		b := New(k, n)
		fuzzFill(a.Data, rng)
		fuzzFill(b.Data, rng)

		want := New(m, n)
		mulRange(want, a, b, 0, m) // retained naive reference

		withKernels(t, func(kernel string) {
			withParallelism(t, func(par int) {
				got := New(m, n)
				fuzzFill(got.Data, rng) // ensure dst is fully overwritten
				Mul(got, a, b)
				requireBitsEqual(t, "Mul/"+kernel, got, want)

				// MulTransB against its naive reference, reusing the
				// same operands: dst2 = a·(bᵀ)ᵀ needs b transposed.
				bt := New(n, k)
				for i := 0; i < k; i++ {
					for j := 0; j < n; j++ {
						bt.Set(j, i, b.At(i, j))
					}
				}
				want2 := New(m, n)
				mulTransBRange(want2, a, bt, 0, m)
				got2 := New(m, n)
				fuzzFill(got2.Data, rng)
				MulTransB(got2, a, bt)
				requireBitsEqual(t, "MulTransB/"+kernel, got2, want2)
			})
		})
	})
}

func FuzzMulTransAMatchesNaive(f *testing.F) {
	f.Add(int64(1), byte(64), byte(512%68), byte(256%68))
	f.Add(int64(2), byte(64), byte(18), byte(18))
	f.Add(int64(3), byte(0), byte(5), byte(7))
	f.Add(int64(4), byte(9), byte(0), byte(9))
	f.Add(int64(5), byte(9), byte(9), byte(0))
	f.Add(int64(6), byte(3), byte(7), byte(11)) // dst rows below minPackRows
	f.Add(int64(7), byte(5), byte(8), byte(8))  // exactly at the gate
	f.Fuzz(func(t *testing.T, seed int64, kb, mb, nb byte) {
		k, m, n := clampDim(kb), clampDim(mb), clampDim(nb)
		rng := rand.New(rand.NewSource(seed))
		a := New(k, m) // dst = aᵀ·b is m×n
		b := New(k, n)
		fuzzFill(a.Data, rng)
		fuzzFill(b.Data, rng)

		want := New(m, n)
		mulTransARange(want, a, b, 0, m) // retained naive reference

		// The accumulate variant's reference is the unfused pair it
		// replaces — tmp = aᵀ·b (naive), dst += 1·tmp — starting from a
		// non-trivial dst.
		dst0 := New(m, n)
		fuzzFill(dst0.Data, rng)
		wantAcc := dst0.Clone()
		tmp := New(m, n)
		mulTransARange(tmp, a, b, 0, m)
		wantAcc.AddScaled(1, tmp)

		withKernels(t, func(kernel string) {
			withParallelism(t, func(par int) {
				got := New(m, n)
				fuzzFill(got.Data, rng)
				MulTransA(got, a, b)
				requireBitsEqual(t, "MulTransA/"+kernel, got, want)

				gotAcc := dst0.Clone()
				MulTransAAcc(gotAcc, a, b)
				requireBitsEqual(t, "MulTransAAcc/"+kernel, gotAcc, wantAcc)
			})
		})
	})
}
