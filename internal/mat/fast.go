package mat

import "os"

// Opt-in fast-math mode. The default kernels round every multiply and
// add separately (the repo-wide bit-exactness contract: tiled, naive,
// serial and parallel paths agree bitwise, which the determinism and
// resume guarantees ride on). SetFastMath(true) swaps in fused
// multiply-add variants — VFMADD YMM twins of every kernel plus an
// 8×8 ZMM tile on AVX-512 — that keep the same ascending-k accumulation
// order and the same ±0 zero-skip, but round each term once instead of
// twice. Results then differ from the default path in the trailing ulps,
// so fast mode forfeits bit-identical resume and cross-machine
// reproducibility; checkpoint formats, the default path, and all
// observable control behaviour at matching weights are unchanged.
//
// zr is the fast-path register tile height (8 destination rows per
// AVX-512 kernel call).
const zr = 8

// fastMath is the process-wide opt-in. It is read racily on the GEMM
// hot path by design: set it once at startup (cmd flag plumbing),
// before compute goroutines exist.
var fastMath bool

func init() {
	// Force-disable switches for CI fallback matrices and debugging.
	// AVX2 is the base ISA for every assembly kernel, FMA for every
	// fast kernel (the ZMM tile fuses too), so the disables cascade.
	if os.Getenv("TWIG_DISABLE_AVX2") != "" {
		haveAVX2, haveFMA, haveAVX512 = false, false, false
	}
	if os.Getenv("TWIG_DISABLE_FMA") != "" {
		haveFMA, haveAVX512 = false, false
	}
	if os.Getenv("TWIG_DISABLE_AVX512") != "" {
		haveAVX512 = false
	}
}

// SetFastMath toggles fast-math kernel dispatch and returns the
// resulting KernelName. On CPUs without FMA (or with it force-disabled)
// the toggle records the request but dispatch stays on the default
// bit-exact kernels — callers can tell from the returned name.
func SetFastMath(on bool) string {
	fastMath = on
	return KernelName()
}

// FastMath reports whether fast-math kernels are both requested and
// available — i.e. whether results may differ from the bit-exact path.
func FastMath() bool {
	return fastMath && (haveFMA || haveAVX512)
}

// CPUFeatures reports the detected SIMD features with OS-enabled state,
// after TWIG_DISABLE_* overrides — the provenance string benchmark
// reports record next to KernelName.
func CPUFeatures() string {
	s := ""
	if haveAVX2 {
		s = "avx2"
	}
	if haveFMA {
		s += "+fma"
	}
	if haveAVX512 {
		s += "+avx512f"
	}
	if s == "" {
		return "none"
	}
	return s
}

// fastFMA gates the YMM FMA kernel twins at dispatch sites.
func fastFMA() bool { return fastMath && haveFMA }

// fastZMM gates the 8×8 AVX-512 tile at dispatch sites.
func fastZMM() bool { return fastMath && haveAVX512 }
