//go:build !amd64

package mat

// Non-amd64 builds use the portable kernRowGo microkernel exclusively;
// it is bitwise identical to the AVX2 path (see gemm_amd64.go). The
// fast-math kernels (SetFastMath) are amd64-only, so fast mode is a
// no-op here.
var (
	haveAVX2   = false
	haveFMA    = false
	haveAVX512 = false
)

func kern4x8s(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern4x8n(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern1x8s(k int, a0, panel *float64, acc *[nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern1x8n(k int, a0, panel *float64, acc *[nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kernRowPanelsS(k, panels int, a0, panel, acc *float64) {
	panic("mat: asm kernel on non-amd64")
}

func kernRowPanelsN(k, panels int, a0, panel, acc *float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern4x8sF(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern4x8nF(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern1x8sF(k int, a0, panel *float64, acc *[nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern1x8nF(k int, a0, panel *float64, acc *[nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kernRowPanelsSF(k, panels int, a0, panel, acc *float64) {
	panic("mat: asm kernel on non-amd64")
}

func kernRowPanelsNF(k, panels int, a0, panel, acc *float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern8x8sZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[zr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}

func kern8x8nZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[zr * nr]float64) {
	panic("mat: asm kernel on non-amd64")
}
