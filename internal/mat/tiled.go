package mat

// Cache-blocked, register-tiled GEMM path. The three products (Mul,
// MulTransA, MulTransB) share one microkernel shape: a tile of mr
// destination rows × nr destination columns accumulates over the full k
// depth in registers, reading the B operand from a packed panel buffer
// (nr consecutive destination columns stored contiguously per k step,
// zero-padded at the right edge).
//
// Bit-exactness contract: for every destination element the k terms are
// multiplied and added in ascending k order with individual roundings
// (never fused multiply-add), exactly like the naive kernels in
// parallel.go. Tiling only regroups *independent* destination elements,
// so the tiled, naive, serial and parallel paths all agree bitwise —
// the property PR 3's determinism tests and PR 4's bit-identical resume
// depend on. Mul and MulTransA skip a-operand zeros exactly like their
// naive counterparts; MulTransB, like Dot, never skips.
const (
	// nr is the register tile width: one packed panel covers nr
	// destination columns (two 4-lane AVX2 vectors).
	nr = 8
	// mr is the register tile height in destination rows.
	mr = 4
	// minPackRows is the destination row count below which packing the
	// B operand cannot be amortised and the streaming kernels win
	// (batch-1 action selection stays on the naive path).
	minPackRows = 8
)

// Activation selects the fused epilogue applied while a GEMM result is
// written back (see MulBiasAct).
type Activation uint8

const (
	// ActIdentity stores the raw product (plus bias when given).
	ActIdentity Activation = iota
	// ActReLU stores max(0, v) — NaN and −0 map to +0, matching the
	// standalone nn ReLU layer element-for-element.
	ActReLU
)

// packB packs b into nr-wide column panels: panel p holds destination
// columns [p·nr, p·nr+nr), laid out k-major so the microkernel streams
// it linearly. Columns past b.Cols are zero-padded (the pad lanes
// accumulate only ±0·av terms that never reach the destination).
func packB(b *Matrix) *Matrix {
	k, n := b.Rows, b.Cols
	panels := (n + nr - 1) / nr
	pm := GetScratch(1, panels*nr*k)
	packBInto(pm.Data, b)
	return pm
}

// packBInto packs b into bp (length ≥ panels·nr·k), the shared core of
// the scratch packB and the persistent PackedB.
func packBInto(bp []float64, b *Matrix) {
	k, n := b.Rows, b.Cols
	panels := (n + nr - 1) / nr
	for p := 0; p < panels; p++ {
		j0 := p * nr
		w := n - j0
		if w > nr {
			w = nr
		}
		out := bp[p*nr*k : (p+1)*nr*k]
		for t := 0; t < k; t++ {
			src := b.Data[t*n+j0 : t*n+j0+w]
			dst := out[t*nr : t*nr+nr]
			copy(dst, src)
			for jj := w; jj < nr; jj++ {
				dst[jj] = 0
			}
		}
	}
}

// packBT packs bᵀ into nr-wide panels for MulTransB: panel p holds
// destination columns [p·nr, p·nr+nr), i.e. rows of b, transposed so the
// microkernel streams k-major.
func packBT(b *Matrix) *Matrix {
	n, k := b.Rows, b.Cols // destination has n columns, depth k
	panels := (n + nr - 1) / nr
	pm := GetScratch(1, panels*nr*k)
	bp := pm.Data
	for p := 0; p < panels; p++ {
		j0 := p * nr
		w := n - j0
		if w > nr {
			w = nr
		}
		out := bp[p*nr*k : (p+1)*nr*k]
		for jj := 0; jj < w; jj++ {
			row := b.Data[(j0+jj)*k : (j0+jj+1)*k]
			for t, v := range row {
				out[t*nr+jj] = v
			}
		}
		for jj := w; jj < nr; jj++ {
			for t := 0; t < k; t++ {
				out[t*nr+jj] = 0
			}
		}
	}
	return pm
}

// gemmPackedRange computes destination rows [r0, r1) of dst = a·(packed
// panels) with the fused epilogue. When skip is true, a-operand zeros
// contribute nothing (Mul/MulTransA semantics); otherwise every term is
// accumulated (Dot/MulTransB semantics). When accumulate is true the
// per-element register sum is added to dst with a single addition
// (MulTransAAcc semantics) and bias/act must be nil/ActIdentity.
func gemmPackedRange(dst, a *Matrix, bp []float64, r0, r1 int, skip, accumulate bool, bias []float64, act Activation) {
	k := a.Cols
	n := dst.Cols
	panels := (n + nr - 1) / nr
	i := r0
	if haveAVX2 {
		if fastZMM() {
			// Fast mode, AVX-512: 8-row ZMM tiles first, leftovers fall
			// through to the 4-row (FMA) loop below.
			var accZ [zr * nr]float64
			for ; i+zr <= r1; i += zr {
				a0 := &a.Data[i*k]
				a1 := &a.Data[(i+1)*k]
				a2 := &a.Data[(i+2)*k]
				a3 := &a.Data[(i+3)*k]
				a4 := &a.Data[(i+4)*k]
				a5 := &a.Data[(i+5)*k]
				a6 := &a.Data[(i+6)*k]
				a7 := &a.Data[(i+7)*k]
				for p := 0; p < panels; p++ {
					if skip {
						kern8x8sZ(k, a0, a1, a2, a3, a4, a5, a6, a7, &bp[p*nr*k], &accZ)
					} else {
						kern8x8nZ(k, a0, a1, a2, a3, a4, a5, a6, a7, &bp[p*nr*k], &accZ)
					}
					j0 := p * nr
					w := n - j0
					if w > nr {
						w = nr
					}
					for r := 0; r < zr; r++ {
						storeTile(dst.Row(i+r)[j0:j0+w], accZ[r*nr:], accumulate, bias, act, j0)
					}
				}
			}
		}
		fastF := fastFMA()
		var acc [mr * nr]float64
		for ; i+mr <= r1; i += mr {
			a0 := &a.Data[i*k]
			a1 := &a.Data[(i+1)*k]
			a2 := &a.Data[(i+2)*k]
			a3 := &a.Data[(i+3)*k]
			for p := 0; p < panels; p++ {
				switch {
				case skip && fastF:
					kern4x8sF(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				case skip:
					kern4x8s(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				case fastF:
					kern4x8nF(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				default:
					kern4x8n(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				}
				j0 := p * nr
				w := n - j0
				if w > nr {
					w = nr
				}
				storeTile(dst.Row(i)[j0:j0+w], acc[0:], accumulate, bias, act, j0)
				storeTile(dst.Row(i+1)[j0:j0+w], acc[nr:], accumulate, bias, act, j0)
				storeTile(dst.Row(i+2)[j0:j0+w], acc[2*nr:], accumulate, bias, act, j0)
				storeTile(dst.Row(i+3)[j0:j0+w], acc[3*nr:], accumulate, bias, act, j0)
			}
		}
	}
	for ; i < r1; i++ {
		gemmPackedRow(dst.Row(i), a.Row(i), bp, k, n, skip, accumulate, bias, act)
	}
}

// gemmPackedRowFused computes one destination row against every packed
// panel with a single fused kernel call (all panels in one asm sweep)
// and a single epilogue pass over the row. rowAcc is caller scratch of
// at least ceil(n/nr)*nr elements. Bitwise it equals gemmPackedRow: the
// fused kernel runs the identical per-panel loop, and the epilogue
// applies the same per-element arithmetic in the same order. Batch-1
// pooled selects call this once per row per layer instead of paying
// per-panel call dispatch at small k.
func gemmPackedRowFused(drow, arow, bp, rowAcc []float64, k, n int, skip, accumulate bool, bias []float64, act Activation) {
	panels := (n + nr - 1) / nr
	if haveAVX2 {
		switch fastF := fastFMA(); {
		case skip && fastF:
			kernRowPanelsSF(k, panels, &arow[0], &bp[0], &rowAcc[0])
		case skip:
			kernRowPanelsS(k, panels, &arow[0], &bp[0], &rowAcc[0])
		case fastF:
			kernRowPanelsNF(k, panels, &arow[0], &bp[0], &rowAcc[0])
		default:
			kernRowPanelsN(k, panels, &arow[0], &bp[0], &rowAcc[0])
		}
	} else {
		var tmp [nr]float64
		for p := 0; p < panels; p++ {
			kernRowGo(arow[:k], bp[p*nr*k:(p+1)*nr*k], &tmp, skip)
			copy(rowAcc[p*nr:p*nr+nr], tmp[:])
		}
	}
	d := drow[:n]
	acc := rowAcc[:n]
	switch {
	case accumulate:
		for j := range d {
			d[j] += acc[j]
		}
	case bias == nil && act == ActIdentity:
		copy(d, acc)
	case bias == nil: // ActReLU
		for j := range d {
			v := acc[j]
			if !(v > 0) {
				v = 0
			}
			d[j] = v
		}
	case act == ActReLU:
		b := bias[:n]
		for j := range d {
			v := acc[j] + b[j]
			if !(v > 0) {
				v = 0
			}
			d[j] = v
		}
	default: // bias, identity
		b := bias[:n]
		for j := range d {
			d[j] = acc[j] + b[j]
		}
	}
}

// gemmPackedRow computes one destination row against every packed
// panel. The epilogue is inlined per tile rather than routed through
// storeTile: batch-1 pooled selects issue millions of 8-wide tiles, and
// the call overhead alone was ~20% of the sweep.
func gemmPackedRow(drow, arow, bp []float64, k, n int, skip, accumulate bool, bias []float64, act Activation) {
	panels := (n + nr - 1) / nr
	var acc [nr]float64
	ap := &arow[0]
	for p := 0; p < panels; p++ {
		if haveAVX2 {
			switch fastF := fastFMA(); {
			case skip && fastF:
				kern1x8sF(k, ap, &bp[p*nr*k], &acc)
			case skip:
				kern1x8s(k, ap, &bp[p*nr*k], &acc)
			case fastF:
				kern1x8nF(k, ap, &bp[p*nr*k], &acc)
			default:
				kern1x8n(k, ap, &bp[p*nr*k], &acc)
			}
		} else {
			kernRowGo(arow[:k], bp[p*nr*k:(p+1)*nr*k], &acc, skip)
		}
		j0 := p * nr
		w := n - j0
		if w >= nr {
			// Full tile: array pointers drop every bounds check and fix
			// the trip count at nr.
			d := (*[nr]float64)(drow[j0:])
			switch {
			case accumulate:
				for jj := 0; jj < nr; jj++ {
					d[jj] += acc[jj]
				}
			case bias == nil && act == ActIdentity:
				*d = acc
			case bias == nil: // ActReLU
				for jj := 0; jj < nr; jj++ {
					v := acc[jj]
					if !(v > 0) {
						v = 0
					}
					d[jj] = v
				}
			case act == ActReLU:
				b := (*[nr]float64)(bias[j0:])
				for jj := 0; jj < nr; jj++ {
					v := acc[jj] + b[jj]
					if !(v > 0) {
						v = 0
					}
					d[jj] = v
				}
			default: // bias, identity
				b := (*[nr]float64)(bias[j0:])
				for jj := 0; jj < nr; jj++ {
					d[jj] = acc[jj] + b[jj]
				}
			}
			continue
		}
		d := drow[j0 : j0+w]
		switch {
		case accumulate:
			for jj := range d {
				d[jj] += acc[jj]
			}
		case bias == nil && act == ActIdentity:
			copy(d, acc[:len(d)])
		case bias == nil: // ActReLU
			for jj := range d {
				v := acc[jj]
				if !(v > 0) {
					v = 0
				}
				d[jj] = v
			}
		case act == ActReLU:
			b := bias[j0 : j0+w]
			for jj := range d {
				v := acc[jj] + b[jj]
				if !(v > 0) {
					v = 0
				}
				d[jj] = v
			}
		default: // bias, identity
			b := bias[j0 : j0+w]
			for jj := range d {
				d[jj] = acc[jj] + b[jj]
			}
		}
	}
}

// kernRowGo is the portable microkernel: one destination row × one
// packed panel, eight independent accumulator chains, ascending k,
// multiply-then-add per term — bitwise identical to the AVX2 kernels.
func kernRowGo(arow, panel []float64, acc *[nr]float64, skip bool) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float64
	if skip {
		for t, av := range arow {
			if av == 0 {
				continue
			}
			q := panel[t*nr : t*nr+nr]
			c0 += av * q[0]
			c1 += av * q[1]
			c2 += av * q[2]
			c3 += av * q[3]
			c4 += av * q[4]
			c5 += av * q[5]
			c6 += av * q[6]
			c7 += av * q[7]
		}
	} else {
		for t, av := range arow {
			q := panel[t*nr : t*nr+nr]
			c0 += av * q[0]
			c1 += av * q[1]
			c2 += av * q[2]
			c3 += av * q[3]
			c4 += av * q[4]
			c5 += av * q[5]
			c6 += av * q[6]
			c7 += av * q[7]
		}
	}
	acc[0], acc[1], acc[2], acc[3] = c0, c1, c2, c3
	acc[4], acc[5], acc[6], acc[7] = c4, c5, c6, c7
}

// storeTile writes one microkernel row back into the destination,
// applying the fused epilogue: accumulate (+=), bias broadcast and/or
// activation. drow is the destination slice for columns [j0, j0+w).
func storeTile(drow, acc []float64, accumulate bool, bias []float64, act Activation, j0 int) {
	switch {
	case accumulate:
		for jj := range drow {
			drow[jj] += acc[jj]
		}
	case bias == nil && act == ActIdentity:
		copy(drow, acc[:len(drow)])
	case bias == nil: // ActReLU
		for jj := range drow {
			v := acc[jj]
			if !(v > 0) {
				v = 0
			}
			drow[jj] = v
		}
	case act == ActReLU:
		for jj := range drow {
			v := acc[jj] + bias[j0+jj]
			if !(v > 0) {
				v = 0
			}
			drow[jj] = v
		}
	default: // bias, identity
		for jj := range drow {
			drow[jj] = acc[jj] + bias[j0+jj]
		}
	}
}

// biasActRange applies the bias/activation epilogue to rows [r0, r1) of
// dst in one sweep — the fused tail of the streaming (non-packed) path.
func biasActRange(dst *Matrix, r0, r1 int, bias []float64, act Activation) {
	if bias == nil && act == ActIdentity {
		return
	}
	for i := r0; i < r1; i++ {
		row := dst.Row(i)
		if bias != nil {
			for j := range row {
				row[j] += bias[j]
			}
		}
		if act == ActReLU {
			for j, v := range row {
				if !(v > 0) {
					row[j] = 0
				}
			}
		}
	}
}

// gemmTransAPackedRange computes destination rows [r0, r1) of
// dst = aᵀ·(packed panels): destination row i is column i of a, gathered
// into a contiguous scratch quad so the shared microkernel can stream it.
func gemmTransAPackedRange(dst, a *Matrix, bp []float64, r0, r1 int, accumulate bool) {
	k := a.Rows
	cb := GetScratch(mr, k)
	i := r0
	if haveAVX2 {
		fastF := fastFMA()
		var acc [mr * nr]float64
		n := dst.Cols
		panels := (n + nr - 1) / nr
		for ; i+mr <= r1; i += mr {
			for q := 0; q < mr; q++ {
				a.ColInto(cb.Row(q), i+q)
			}
			a0, a1, a2, a3 := &cb.Data[0], &cb.Data[k], &cb.Data[2*k], &cb.Data[3*k]
			for p := 0; p < panels; p++ {
				if fastF {
					kern4x8sF(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				} else {
					kern4x8s(k, a0, a1, a2, a3, &bp[p*nr*k], &acc)
				}
				j0 := p * nr
				w := n - j0
				if w > nr {
					w = nr
				}
				storeTile(dst.Row(i)[j0:j0+w], acc[0:], accumulate, nil, ActIdentity, j0)
				storeTile(dst.Row(i+1)[j0:j0+w], acc[nr:], accumulate, nil, ActIdentity, j0)
				storeTile(dst.Row(i+2)[j0:j0+w], acc[2*nr:], accumulate, nil, ActIdentity, j0)
				storeTile(dst.Row(i+3)[j0:j0+w], acc[3*nr:], accumulate, nil, ActIdentity, j0)
			}
		}
	}
	// Leftover rows (and the whole range without AVX2) one at a time.
	for ; i < r1; i++ {
		col := cb.Row(0)
		a.ColInto(col, i)
		gemmPackedRow(dst.Row(i), col, bp, k, dst.Cols, true, accumulate, nil, ActIdentity)
	}
	PutScratch(cb)
}
