// Package mat provides small dense float64 matrix and vector primitives
// used by the neural-network and statistics packages. It is deliberately
// minimal: row-major storage, no views, no BLAS — only the operations the
// rest of the repository needs, implemented with cache-friendly loops.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's backing storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowsView returns rows [r0, r1) as a matrix sharing m's backing
// storage — the band view the pooled multi-agent path uses to address
// one agent's rows inside a stacked observation matrix.
func (m *Matrix) RowsView(r0, r1 int) *Matrix {
	if r0 < 0 || r1 < r0 || r1 > m.Rows {
		panic(fmt.Sprintf("mat: RowsView [%d,%d) of %d rows", r0, r1, m.Rows))
	}
	return &Matrix{Rows: r1 - r0, Cols: m.Cols, Data: m.Data[r0*m.Cols : r1*m.Cols]}
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	m.ColInto(out, j)
	return out
}

// ColInto writes column j of m into dst (length Rows) — the
// allocation-free variant of Col for reusable workspaces.
func (m *Matrix) ColInto(dst []float64, j int) {
	if len(dst) != m.Rows {
		panic("mat: ColInto length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Mul computes dst = a·b. dst must be a.Rows×b.Cols and may not alias a
// or b. Large products run on the cache-blocked, register-tiled kernel
// (see tiled.go); small ones stay on the streaming kernel. Both paths
// accumulate every destination element in ascending k order with
// individual roundings, so results are bit-identical across the tiled,
// streaming, serial and parallel (see SetParallelism) variants.
func Mul(dst, a, b *Matrix) {
	MulBiasAct(dst, a, b, nil, ActIdentity)
}

// MulBiasAct computes dst = act(a·b + bias) in one pass: the bias
// broadcast (when bias is non-nil, length b.Cols) and activation are
// applied in the GEMM epilogue while the result tile is still hot,
// instead of re-walking dst afterwards. Bitwise it is exactly
// Mul + AddRowBroadcast + activation applied element-wise.
func MulBiasAct(dst, a, b *Matrix, bias []float64, act Activation) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul dims (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if bias != nil && len(bias) != b.Cols {
		panic("mat: MulBiasAct bias length mismatch")
	}
	flops := a.Rows * a.Cols * b.Cols
	if a.Rows >= minPackRows && a.Cols > 0 && b.Cols > 0 {
		bp := packB(b)
		if useParallel(a.Rows, flops) {
			parallelRows(a.Rows, func(r0, r1 int) {
				gemmPackedRange(dst, a, bp.Data, r0, r1, true, false, bias, act)
			})
		} else {
			gemmPackedRange(dst, a, bp.Data, 0, a.Rows, true, false, bias, act)
		}
		PutScratch(bp)
		return
	}
	if useParallel(a.Rows, flops) {
		parallelRows(a.Rows, func(r0, r1 int) {
			mulRange(dst, a, b, r0, r1)
			biasActRange(dst, r0, r1, bias, act)
		})
	} else {
		mulRange(dst, a, b, 0, a.Rows)
		biasActRange(dst, 0, a.Rows, bias, act)
	}
}

// MulTransA computes dst = aᵀ·b. dst must be a.Cols×b.Cols. Large
// products run on the tiled kernel; all paths are bit-identical.
func MulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: MulTransA dimension mismatch")
	}
	flops := a.Rows * a.Cols * b.Cols
	if a.Cols >= minPackRows && a.Rows > 0 && b.Cols > 0 {
		bp := packB(b)
		if useParallel(a.Cols, flops) {
			parallelRows(a.Cols, func(r0, r1 int) {
				gemmTransAPackedRange(dst, a, bp.Data, r0, r1, false)
			})
		} else {
			gemmTransAPackedRange(dst, a, bp.Data, 0, a.Cols, false)
		}
		PutScratch(bp)
		return
	}
	if useParallel(a.Cols, flops) {
		parallelRows(a.Cols, func(r0, r1 int) { mulTransARange(dst, a, b, r0, r1) })
		return
	}
	// Serial kernel: k-outer streams both operands row-major. Each
	// destination element still accumulates its terms in ascending k,
	// exactly like mulTransARange, so both paths agree bitwise.
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulTransAAcc computes dst += aᵀ·b: each destination element gets its
// fully accumulated register sum added with a single rounding. It fuses
// the gradient-accumulation pattern `tmp = aᵀ·b; dst += tmp` into one
// sweep — bitwise identical to that pair, since `dst[ij] + sum` is the
// exact operation both perform.
func MulTransAAcc(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: MulTransAAcc dimension mismatch")
	}
	flops := a.Rows * a.Cols * b.Cols
	if a.Cols >= minPackRows && a.Rows > 0 && b.Cols > 0 {
		bp := packB(b)
		if useParallel(a.Cols, flops) {
			parallelRows(a.Cols, func(r0, r1 int) {
				gemmTransAPackedRange(dst, a, bp.Data, r0, r1, true)
			})
		} else {
			gemmTransAPackedRange(dst, a, bp.Data, 0, a.Cols, true)
		}
		PutScratch(bp)
		return
	}
	if useParallel(a.Cols, flops) {
		parallelRows(a.Cols, func(r0, r1 int) { mulTransAAccRange(dst, a, b, r0, r1) })
	} else {
		mulTransAAccRange(dst, a, b, 0, a.Cols)
	}
}

// MulTransB computes dst = a·bᵀ. dst must be a.Rows×b.Rows. Large
// products run on the tiled kernel; all paths are bit-identical. Like
// Dot, this product never skips zero operands.
func MulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulTransB dimension mismatch")
	}
	flops := a.Rows * b.Rows * a.Cols
	if a.Rows >= minPackRows && a.Cols > 0 && b.Rows > 0 {
		bp := packBT(b)
		if useParallel(a.Rows, flops) {
			parallelRows(a.Rows, func(r0, r1 int) {
				gemmPackedRange(dst, a, bp.Data, r0, r1, false, false, nil, ActIdentity)
			})
		} else {
			gemmPackedRange(dst, a, bp.Data, 0, a.Rows, false, false, nil, ActIdentity)
		}
		PutScratch(bp)
		return
	}
	if useParallel(a.Rows, flops) {
		parallelRows(a.Rows, func(r0, r1 int) { mulTransBRange(dst, a, b, r0, r1) })
	} else {
		mulTransBRange(dst, a, b, 0, a.Rows)
	}
}

// Add computes dst = a + b element-wise; dst may alias a or b.
func Add(dst, a, b *Matrix) {
	checkSameShape(a, b)
	checkSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a − b element-wise; dst may alias a or b.
func Sub(dst, a, b *Matrix) {
	checkSameShape(a, b)
	checkSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes m += s·a.
func (m *Matrix) AddScaled(s float64, a *Matrix) {
	checkSameShape(m, a)
	for i := range m.Data {
		m.Data[i] += s * a.Data[i]
	}
}

// Hadamard computes dst = a ⊙ b element-wise; dst may alias a or b.
func Hadamard(dst, a, b *Matrix) {
	checkSameShape(a, b)
	checkSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Apply sets dst[i] = f(a[i]) for every element; dst may alias a.
func Apply(dst, a *Matrix, f func(float64) float64) {
	checkSameShape(dst, a)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
}

// AddRowBroadcast adds vector v (length Cols) to every row of m.
func (m *Matrix) AddRowBroadcast(v []float64) {
	if len(v) != m.Cols {
		panic("mat: AddRowBroadcast length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto writes the per-column sums of m into dst (length Cols),
// the allocation-free variant for reusable workspaces.
func (m *Matrix) ColSumsInto(dst []float64) {
	if len(dst) != m.Cols {
		panic("mat: ColSumsInto length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// RowMeans returns the per-row means of m.
func (m *Matrix) RowMeans() []float64 {
	out := make([]float64, m.Rows)
	m.RowMeansInto(out)
	return out
}

// RowMeansInto writes the per-row means of m into dst (length Rows),
// the allocation-free variant for reusable workspaces.
func (m *Matrix) RowMeansInto(dst []float64) {
	if len(dst) != m.Rows {
		panic("mat: RowMeansInto length mismatch")
	}
	if m.Cols == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Sum(m.Row(i)) / float64(m.Cols)
	}
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(Σ m[i]²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
