package mat

import (
	"math/rand"
	"testing"
)

// sparseRandMat is randMat with exact zeros mixed in so the kernels'
// zero-skip path is hit.
func sparseRandMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Intn(8) == 0 {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestParallelGEMMBitIdentical verifies that the parallel kernels produce
// results bitwise equal to serial execution — not merely close — across
// randomized shapes on both sides of ParallelFlopThreshold.
func TestParallelGEMMBitIdentical(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)

	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{3, 4, 5},      // tiny: below threshold, parallel path must defer to serial
		{1, 512, 256},  // single row: cannot split
		{64, 128, 256}, // batch-64 training shape: above threshold
		{70, 65, 33},   // rows not divisible by worker count
		{128, 512, 1},  // thin output
	}
	for trial := 0; trial < 3; trial++ {
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			a := sparseRandMat(rng, m, k)
			b := sparseRandMat(rng, k, n)

			SetParallelism(1)
			mulS, mulP := New(m, n), New(m, n)
			Mul(mulS, a, b)
			SetParallelism(4)
			Mul(mulP, a, b)
			assertBitEqual(t, "Mul", s, mulS, mulP)

			// dst = aᵀ·b needs matching row counts: use a as m×k, c as m×n.
			c := sparseRandMat(rng, m, n)
			taS, taP := New(k, n), New(k, n)
			SetParallelism(1)
			MulTransA(taS, a, c)
			SetParallelism(4)
			MulTransA(taP, a, c)
			assertBitEqual(t, "MulTransA", s, taS, taP)

			// dst = a·dᵀ needs matching column counts: d as n×k.
			d := sparseRandMat(rng, n, k)
			tbS, tbP := New(m, n), New(m, n)
			SetParallelism(1)
			MulTransB(tbS, a, d)
			SetParallelism(4)
			MulTransB(tbP, a, d)
			assertBitEqual(t, "MulTransB", s, tbS, tbP)
		}
	}
}

func assertBitEqual(t *testing.T, op string, shape [3]int, want, got *Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s shape %v: element %d differs: serial %v parallel %v",
				op, shape, i, want.Data[i], got.Data[i])
		}
	}
}

func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-3)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", got)
	}
	SetParallelism(8)
	if got := Parallelism(); got != 8 {
		t.Fatalf("Parallelism() = %d, want 8", got)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	m := p.Get(3, 4)
	m.Fill(7)
	p.Put(m)
	m2 := p.Get(3, 4)
	if m2 != m {
		t.Fatalf("pool did not reuse the returned matrix")
	}
	if got := p.Get(3, 4); got == m {
		t.Fatalf("pool handed out the same matrix twice")
	}
	p.Put(nil) // must not panic
}

func TestIntoVariants(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sums := make([]float64, 3)
	m.ColSumsInto(sums)
	if sums[0] != 5 || sums[1] != 7 || sums[2] != 9 {
		t.Fatalf("ColSumsInto = %v", sums)
	}
	means := make([]float64, 2)
	m.RowMeansInto(means)
	if means[0] != 2 || means[1] != 5 {
		t.Fatalf("RowMeansInto = %v", means)
	}
}
