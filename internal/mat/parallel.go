package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM kernels (Mul, MulTransA, MulTransB) fan out across goroutines
// when the product is large enough to amortise the scheduling overhead.
// Work is partitioned by destination row, so no two workers ever touch
// the same output element and every element accumulates its terms in the
// same order as the serial kernel — parallel results are bit-identical
// to serial ones, not merely close.

// ParallelFlopThreshold is the minimum number of multiply-adds below
// which a product always runs on the calling goroutine. Batch-1
// inference (a single observation through the paper-size network) stays
// serial; batch-64 training steps parallelise.
const ParallelFlopThreshold = 1 << 16

// parallelism is the worker fan-out; 1 disables parallel execution.
var parallelism int32 = int32(runtime.GOMAXPROCS(0))

// SetParallelism sets the maximum number of goroutines a single matrix
// product may use. Values below 1 are treated as 1 (serial). The default
// is GOMAXPROCS at package init.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	atomic.StoreInt32(&parallelism, int32(n))
}

// Parallelism returns the current worker fan-out.
func Parallelism() int { return int(atomic.LoadInt32(&parallelism)) }

// useParallel reports whether a product with the given destination row
// count and multiply-add count should fan out. Callers must check this
// BEFORE constructing the chunk closure for parallelRows: building the
// closure unconditionally would heap-allocate it on every serial call,
// defeating the zero-allocation steady state.
func useParallel(rows, flops int) bool {
	return rows >= 2 && flops >= ParallelFlopThreshold && Parallelism() > 1
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on
// each chunk concurrently. Callers gate on useParallel first.
func parallelRows(rows int, fn func(r0, r1 int)) {
	w := Parallelism()
	if w > rows {
		w = rows
	}
	chunk := (rows + w - 1) / w
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// mulRange computes rows [r0, r1) of dst = a·b.
func mulRange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulTransARange computes rows [r0, r1) of dst = aᵀ·b, where dst row i
// is column i of a. For each destination element the k-terms accumulate
// in ascending order — the same order as the serial kernel's k-outer
// loop — so the result is bit-identical.
func mulTransARange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*a.Cols+i]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulTransAAccRange computes rows [r0, r1) of dst += aᵀ·b: each
// element's k-terms accumulate into a register in ascending order (zero
// a-operands skipped, like mulTransARange) and the finished sum is added
// to dst with one rounding — the streaming twin of the tiled
// accumulate path, bit-identical to it.
func mulTransAAccRange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		drow := dst.Row(i)
		for j := range drow {
			var s float64
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*a.Cols+i]
				if av == 0 {
					continue
				}
				s += av * b.Data[k*b.Cols+j]
			}
			drow[j] += s
		}
	}
}

// mulTransBRange computes rows [r0, r1) of dst = a·bᵀ.
func mulTransBRange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}
