//go:build amd64

package mat

// The AVX2 microkernels compute mr×nr (or 1×nr) destination tiles over
// the full k depth with one accumulator register chain per 4-lane column
// group. Each term is a VMULPD followed by a VADDPD — two individually
// rounded operations, never a fused multiply-add — so every lane matches
// the scalar `acc += av*bv` of the naive kernels bit for bit, in the
// same ascending-k order. The *s variants skip a-operand zeros (±0 by
// integer bit test, NaN never skipped), the *n variants accumulate every
// term like Dot.

// haveAVX2 gates the assembly microkernels; the portable kernRowGo path
// (bitwise identical) is used when false. Tests flip it to cover both.
var haveAVX2 = cpuHasAVX2()

// haveFMA and haveAVX512 gate the opt-in fast-math kernels (see
// SetFastMath). They are detection state only: no fast kernel runs
// unless fastMath is also enabled. The AVX-512 kernels use FMA, so
// disabling FMA (TWIG_DISABLE_FMA) disables both.
var (
	haveFMA    = cpuHasFMA()
	haveAVX512 = cpuHasAVX512()
)

// cpuHasAVX2 reports AVX2 support with OS-enabled YMM state.
func cpuHasAVX2() bool

// cpuHasFMA reports FMA3 support with OS-enabled YMM state.
func cpuHasFMA() bool

// cpuHasAVX512 reports AVX512F support with OS-enabled ZMM/opmask state.
func cpuHasAVX512() bool

//go:noescape
func kern4x8s(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64)

//go:noescape
func kern4x8n(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64)

//go:noescape
func kern1x8s(k int, a0, panel *float64, acc *[nr]float64)

//go:noescape
func kern1x8n(k int, a0, panel *float64, acc *[nr]float64)

//go:noescape
func kernRowPanelsS(k, panels int, a0, panel, acc *float64)

//go:noescape
func kernRowPanelsN(k, panels int, a0, panel, acc *float64)

//go:noescape
func kern4x8sF(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64)

//go:noescape
func kern4x8nF(k int, a0, a1, a2, a3, panel *float64, acc *[mr * nr]float64)

//go:noescape
func kern1x8sF(k int, a0, panel *float64, acc *[nr]float64)

//go:noescape
func kern1x8nF(k int, a0, panel *float64, acc *[nr]float64)

//go:noescape
func kernRowPanelsSF(k, panels int, a0, panel, acc *float64)

//go:noescape
func kernRowPanelsNF(k, panels int, a0, panel, acc *float64)

//go:noescape
func kern8x8sZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[zr * nr]float64)

//go:noescape
func kern8x8nZ(k int, a0, a1, a2, a3, a4, a5, a6, a7, panel *float64, acc *[zr * nr]float64)
