package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeComp is a Checkpointable with a little of every primitive.
type fakeComp struct {
	name  string
	i     int
	f     float64
	b     bool
	s     string
	fs    []float64
	is    []int
	bs    []bool
	u     uint64
	fail  error // returned by DecodeState after reading everything
	extra bool  // read one extra int during decode (under-consume test)
}

func (c *fakeComp) CheckpointName() string { return c.name }

func (c *fakeComp) EncodeState(e *Encoder) {
	e.Int(c.i)
	e.F64(c.f)
	e.Bool(c.b)
	e.String(c.s)
	e.F64s(c.fs)
	e.Ints(c.is)
	e.Bools(c.bs)
	e.U64(c.u)
}

func (c *fakeComp) DecodeState(d *Decoder) error {
	c.i = d.Int()
	c.f = d.F64()
	c.b = d.Bool()
	c.s = d.String()
	c.fs = d.F64s()
	c.is = d.Ints()
	c.bs = d.Bools()
	c.u = d.U64()
	if c.extra {
		d.Int()
	}
	return c.fail
}

func testComp(name string) *fakeComp {
	return &fakeComp{
		name: name,
		i:    -42,
		f:    math.Pi,
		b:    true,
		s:    "twig",
		fs:   []float64{1.5, math.Inf(1), math.Copysign(0, -1), math.NaN()},
		is:   []int{0, -1, 1 << 40},
		bs:   []bool{true, false, true},
		u:    math.MaxUint64,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	a, b := testComp("a"), testComp("b")
	b.i = 7
	data := Marshal(a, b)

	a2, b2 := &fakeComp{name: "a"}, &fakeComp{name: "b"}
	if err := Unmarshal(data, a2, b2); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if a2.i != a.i || a2.f != a.f || !a2.b || a2.s != a.s || a2.u != a.u {
		t.Fatalf("scalar mismatch: %+v vs %+v", a2, a)
	}
	if len(a2.fs) != 4 || a2.fs[0] != 1.5 || !math.IsInf(a2.fs[1], 1) ||
		math.Float64bits(a2.fs[2]) != math.Float64bits(math.Copysign(0, -1)) || !math.IsNaN(a2.fs[3]) {
		t.Fatalf("float slice mismatch: %v", a2.fs)
	}
	if len(a2.is) != 3 || a2.is[2] != 1<<40 {
		t.Fatalf("int slice mismatch: %v", a2.is)
	}
	if len(a2.bs) != 3 || !a2.bs[0] || a2.bs[1] {
		t.Fatalf("bool slice mismatch: %v", a2.bs)
	}
	if b2.i != 7 {
		t.Fatalf("section b not matched by name: %+v", b2)
	}
}

func TestUnmarshalMissingSection(t *testing.T) {
	data := Marshal(testComp("a"))
	err := Unmarshal(data, &fakeComp{name: "other"})
	if err == nil || !strings.Contains(err.Error(), `"other"`) {
		t.Fatalf("want missing-section error naming the section, got %v", err)
	}
}

func TestUnmarshalDuplicateSection(t *testing.T) {
	a := testComp("a")
	e := NewEncoder()
	a.EncodeState(e)
	data := EncodeFile(Version, []Section{
		{Name: "a", Payload: e.Bytes()},
		{Name: "a", Payload: e.Bytes()},
	})
	if err := Unmarshal(data, &fakeComp{name: "a"}); err == nil {
		t.Fatal("duplicate section accepted")
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	e := NewEncoder()
	testComp("a").EncodeState(e)
	e.Int(99) // extra bytes the decoder won't consume
	data := EncodeFile(Version, []Section{{Name: "a", Payload: e.Bytes()}})
	err := Unmarshal(data, &fakeComp{name: "a"})
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestUnmarshalOverConsume(t *testing.T) {
	data := Marshal(testComp("a"))
	err := Unmarshal(data, &fakeComp{name: "a", extra: true})
	if err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestUnmarshalVersionSkew(t *testing.T) {
	e := NewEncoder()
	testComp("a").EncodeState(e)
	data := EncodeFile(Version+1, []Section{{Name: "a", Payload: e.Bytes()}})
	err := Unmarshal(data, &fakeComp{name: "a"})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeFileRejectsCorruption(t *testing.T) {
	data := Marshal(testComp("a"))

	// Truncation at every length must fail (CRC or structural), not panic.
	for n := 0; n < len(data); n++ {
		if _, _, err := DecodeFile(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Any single bit flip must fail the CRC (or the magic check).
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if _, _, err := DecodeFile(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestDecoderHostileLengths(t *testing.T) {
	// A huge length prefix must error without allocating.
	e := NewEncoder()
	e.U32(math.MaxUint32)
	d := NewDecoder(e.Bytes())
	if got := d.F64s(); got != nil || d.Err() == nil {
		t.Fatalf("hostile slice length: got %v, err %v", got, d.Err())
	}
	// Bad bool byte.
	d2 := NewDecoder([]byte{7})
	if d2.Bool(); d2.Err() == nil {
		t.Fatal("bool byte 7 accepted")
	}
	// Sticky error: later reads keep the first error.
	first := d2.Err()
	d2.U64()
	if d2.Err() != first {
		t.Fatal("decoder error not sticky")
	}
}

func TestWriteFileAtomicAndIsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.twig")
	data := Marshal(testComp("a"))
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("file contents differ from submitted data")
	}
	if !IsCheckpoint(got) {
		t.Fatal("IsCheckpoint false on a real checkpoint")
	}
	if IsCheckpoint([]byte("gob junk")) {
		t.Fatal("IsCheckpoint true on junk")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files after atomic write: %d entries", len(entries))
	}
}

func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		comp := testComp("a")
		comp.i = int(seq)
		if err := st.Save(seq, Marshal(comp)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := st.Sequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 4 || seqs[2] != 6 {
		t.Fatalf("retention kept %v, want [4 5 6]", seqs)
	}
}

func TestStoreLoadLatestFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		comp := testComp("a")
		comp.i = int(seq)
		if err := st.Save(seq, Marshal(comp)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest file: keep only a prefix, as if the process died
	// mid-write without the atomic rename (simulating a torn write that
	// somehow reached the final name).
	newest := st.Path(3)
	full, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got := &fakeComp{name: "a"}
	seq, err := st.LoadLatest(func(data []byte) error { return Unmarshal(data, got) })
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if seq != 2 || got.i != 2 {
		t.Fatalf("fell back to seq %d (i=%d), want 2", seq, got.i)
	}
}

func TestStoreLoadLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir, 5)
	if err := os.WriteFile(st.Path(1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadLatest(func(data []byte) error {
		return Unmarshal(data, &fakeComp{name: "a"})
	}); err == nil {
		t.Fatal("all-corrupt store restored")
	}
}

func TestStoreLoadLatestEmpty(t *testing.T) {
	st, _ := NewStore(t.TempDir(), 5)
	_, err := st.LoadLatest(func([]byte) error { return nil })
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist for empty store, got %v", err)
	}
}

func TestAsyncWriterLatestWins(t *testing.T) {
	st, err := NewStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewAsyncWriter(st)
	for seq := uint64(1); seq <= 20; seq++ {
		comp := testComp("a")
		comp.i = int(seq)
		w.Submit(seq, Marshal(comp))
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	seqs, err := st.Sequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 || seqs[len(seqs)-1] != 20 {
		t.Fatalf("latest submission not persisted: %v", seqs)
	}
	got := &fakeComp{name: "a"}
	if seq, err := st.LoadLatest(func(d []byte) error { return Unmarshal(d, got) }); err != nil || seq != 20 || got.i != 20 {
		t.Fatalf("restored seq %d i %d err %v", seq, got.i, err)
	}
}

func TestAsyncWriterReportsErrors(t *testing.T) {
	st, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Break the directory out from under the writer.
	if err := os.RemoveAll(st.Dir()); err != nil {
		t.Fatal(err)
	}
	w := NewAsyncWriter(st)
	w.Submit(1, Marshal(testComp("a")))
	if err := w.Flush(); err == nil {
		t.Fatal("write into removed directory reported no error")
	}
}
