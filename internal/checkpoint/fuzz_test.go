package checkpoint

import (
	"math"
	"testing"
)

// fuzzComp exercises every Decoder primitive so the fuzzer reaches all
// length-validation paths, mirroring the shape of real component
// sections (scalars, strings, slices).
type fuzzComp struct{ name string }

func (c *fuzzComp) CheckpointName() string { return c.name }

func (c *fuzzComp) EncodeState(e *Encoder) {
	e.Int(1)
	e.F64(2.5)
	e.Bool(true)
	e.String("s")
	e.F64s([]float64{1, 2})
	e.Ints([]int{3})
	e.Bools([]bool{true})
	e.U32(7)
	e.U64(9)
}

func (c *fuzzComp) DecodeState(d *Decoder) error {
	d.Int()
	d.F64()
	d.Bool()
	_ = d.String()
	d.F64s()
	d.Ints()
	d.Bools()
	d.U32()
	d.U64()
	return nil
}

// FuzzUnmarshal feeds arbitrary bytes through the full container +
// section decode path. The invariant under fuzzing: Unmarshal either
// succeeds or returns an error — it must never panic, and hostile
// length fields must never cause large allocations (enforced by the
// bounds checks; an OOM would crash the fuzz worker).
func FuzzUnmarshal(f *testing.F) {
	valid := Marshal(&fuzzComp{name: "fuzz"})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("not a checkpoint at all, just some text"))
	// Version-skewed but otherwise valid file.
	f.Add(EncodeFile(Version+1, []Section{{Name: "fuzz", Payload: []byte{1, 2, 3}}}))
	// Truncated and bit-flipped variants of the valid file.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Hostile section count / lengths.
	hostile := append([]byte(Magic), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; error vs success is data-dependent.
		_ = Unmarshal(data, &fuzzComp{name: "fuzz"})

		// The raw container decoder has the same obligation, including
		// for files whose sections we never requested.
		if _, secs, err := DecodeFile(data); err == nil {
			for _, s := range secs {
				d := NewDecoder(s.Payload)
				(&fuzzComp{name: s.Name}).DecodeState(d)
				_ = d.Err()
			}
		}
	})
}

// FuzzDecoderPrimitives hits the Decoder directly with raw payloads, no
// container framing, so sticky-error and bounds paths get coverage even
// on inputs the container CRC would reject.
func FuzzDecoderPrimitives(f *testing.F) {
	e := NewEncoder()
	(&fuzzComp{}).EncodeState(e)
	f.Add(e.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		(&fuzzComp{}).DecodeState(d)
		if err := d.Err(); err == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
		// Zero-value-on-error contract: after an error, reads return zeros.
		if d.Err() != nil {
			if v := d.F64(); v != 0 && !math.IsNaN(v) {
				t.Fatalf("post-error read returned %v", v)
			}
		}
	})
}
