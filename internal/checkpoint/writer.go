package checkpoint

import (
	"sync"
	"time"
)

// AsyncWriter decouples checkpoint persistence from the control loop.
// Encoding must happen synchronously (the components are mutable and
// advance every interval), but the resulting byte slice is immutable,
// so the disk write — fsync included — runs on a background goroutine.
// Submissions are latest-wins: if the disk is slower than the
// checkpoint cadence, intermediate snapshots are dropped rather than
// queued, bounding memory to one in-flight plus one pending snapshot.
type AsyncWriter struct {
	store *Store

	mu      sync.Mutex
	pending *snapshot // next snapshot to write, replaced by newer submissions
	running bool      // a writer goroutine is draining pending
	lastErr error     // most recent write failure
	stats   WriteStats
	wg      sync.WaitGroup
}

// WriteStats describes the writer's persistence activity, for metrics
// export: how many snapshots reached disk, how many were dropped by the
// latest-wins policy, and how long the most recent write (fsync
// included) took and when it completed.
type WriteStats struct {
	// Writes counts completed (successful) disk writes; Failed counts
	// writes that returned an error.
	Writes int
	Failed int
	// Dropped counts snapshots replaced in the pending slot before the
	// writer got to them (disk slower than the checkpoint cadence).
	Dropped int
	// LastSeq is the sequence number of the newest successful write;
	// LastDuration its wall-clock cost; LastWrite its completion time.
	LastSeq      uint64
	LastDuration time.Duration
	LastWrite    time.Time
}

type snapshot struct {
	seq  uint64
	data []byte
}

// NewAsyncWriter wraps store.
func NewAsyncWriter(store *Store) *AsyncWriter {
	return &AsyncWriter{store: store}
}

// Submit hands a snapshot to the background writer and returns
// immediately. data must not be mutated after the call (Marshal returns
// a fresh slice, so this is natural).
func (w *AsyncWriter) Submit(seq uint64, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pending != nil {
		w.stats.Dropped++
	}
	w.pending = &snapshot{seq: seq, data: data}
	if w.running {
		return
	}
	w.running = true
	w.wg.Add(1)
	go w.drain()
}

func (w *AsyncWriter) drain() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		snap := w.pending
		w.pending = nil
		if snap == nil {
			w.running = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()

		start := time.Now()
		err := w.store.Save(snap.seq, snap.data)
		elapsed := time.Since(start)

		w.mu.Lock()
		if err != nil {
			w.lastErr = err
			w.stats.Failed++
		} else {
			w.stats.Writes++
			w.stats.LastSeq = snap.seq
			w.stats.LastDuration = elapsed
			w.stats.LastWrite = start.Add(elapsed)
		}
		w.mu.Unlock()
	}
}

// Stats returns a snapshot of the writer's persistence counters.
func (w *AsyncWriter) Stats() WriteStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Flush blocks until every submitted snapshot has been written (or
// failed) and returns the most recent write error, if any. Call before
// process exit so the final checkpoint is durable.
func (w *AsyncWriter) Flush() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}
