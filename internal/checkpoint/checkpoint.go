// Package checkpoint implements the crash-consistent checkpoint/restore
// format every learning component of this repository serialises into: a
// versioned, CRC-checksummed binary container written atomically (temp
// file + fsync + rename), a keep-last-K on-disk store that falls back
// past corrupt files on restore, and an asynchronous writer so the
// control loop never blocks on disk.
//
// The format is deliberately simple — named sections of length-framed
// little-endian payloads followed by one CRC-32C trailer over the whole
// file — so a torn or bit-flipped write is always detected before any
// component state is touched, and the decoder can be fuzzed cheaply.
// Everything a component needs to continue *bit-identically* goes into
// its section: network weights together with Adam moments and step
// counts, replay contents with exact sum-tree node values, annealing
// positions, smoothing histories and RNG stream positions.
package checkpoint

import "fmt"

// Magic identifies a checkpoint file. Legacy weight-only files (raw gob)
// cannot begin with these bytes, so the two formats are distinguishable
// from the first read.
const Magic = "TWIGCKPT"

// Version is the current container format version. Decoding a file with
// a different version returns ErrVersion — state layouts are not
// guaranteed compatible across versions, and a skewed restore must fail
// loudly rather than corrupt a run.
const Version uint32 = 1

// Checkpointable is the encode/decode contract a stateful component
// implements to participate in a checkpoint. EncodeState must write
// every field needed to continue bit-identically; DecodeState is called
// on a freshly constructed component (same configuration as the one that
// was encoded) and must overwrite all of that state, validating shapes
// against the live structure so a mismatched restore errors instead of
// silently mixing states.
type Checkpointable interface {
	// CheckpointName labels the component's section in the container.
	CheckpointName() string
	EncodeState(*Encoder)
	DecodeState(*Decoder) error
}

// renamed decorates a Checkpointable with a different section name, so
// several components of the same type (e.g. one simulator per cluster
// node) can share a container without colliding.
type renamed struct {
	Checkpointable
	name string
}

func (r renamed) CheckpointName() string { return r.name }

// Renamed returns c relabelled to the given section name. The cluster
// checkpoint uses it to store one "node<i>-…" section per fleet node.
func Renamed(c Checkpointable, name string) Checkpointable {
	return renamed{Checkpointable: c, name: name}
}

// Marshal encodes the components into one checkpoint container, one
// section per component in order.
func Marshal(comps ...Checkpointable) []byte {
	secs := make([]Section, 0, len(comps))
	for _, c := range comps {
		e := NewEncoder()
		c.EncodeState(e)
		secs = append(secs, Section{Name: c.CheckpointName(), Payload: e.Bytes()})
	}
	return EncodeFile(Version, secs)
}

// Verify checks the container framing — magic, version, section frames
// and the CRC trailer — without decoding any component state. It is the
// cheap validity probe the hot-reload path uses to pick a checkpoint
// before handing its bytes to a component decoder.
func Verify(data []byte) error {
	version, _, err := DecodeFile(data)
	if err != nil {
		return err
	}
	if version != Version {
		return fmt.Errorf("checkpoint: %w: file version %d, this build reads %d", ErrVersion, version, Version)
	}
	return nil
}

// Unmarshal verifies data and decodes it into the components, matched by
// section name. Every component must find its section, every section's
// payload must be fully consumed, and any failure leaves an error — the
// caller should treat the components as garbage and rebuild them (or try
// an older checkpoint) rather than continue.
func Unmarshal(data []byte, comps ...Checkpointable) error {
	version, secs, err := DecodeFile(data)
	if err != nil {
		return err
	}
	if version != Version {
		return fmt.Errorf("checkpoint: %w: file version %d, this build reads %d", ErrVersion, version, Version)
	}
	byName := make(map[string][]byte, len(secs))
	for _, s := range secs {
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("checkpoint: duplicate section %q", s.Name)
		}
		byName[s.Name] = s.Payload
	}
	for _, c := range comps {
		payload, ok := byName[c.CheckpointName()]
		if !ok {
			return fmt.Errorf("checkpoint: missing section %q (was the checkpoint written with different flags?)", c.CheckpointName())
		}
		d := NewDecoder(payload)
		if err := c.DecodeState(d); err != nil {
			return fmt.Errorf("checkpoint: section %q: %w", c.CheckpointName(), err)
		}
		if err := d.Err(); err != nil {
			return fmt.Errorf("checkpoint: section %q: %w", c.CheckpointName(), err)
		}
		if d.Remaining() != 0 {
			return fmt.Errorf("checkpoint: section %q: %d trailing bytes", c.CheckpointName(), d.Remaining())
		}
	}
	return nil
}
