package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// WriteFileAtomic writes data to path crash-consistently: the bytes go
// to a temporary file in the same directory, are fsynced, and the temp
// file is renamed over path; finally the directory is fsynced so the
// rename itself survives a crash. A reader therefore sees either the
// old file or the complete new file — never a prefix (and if the disk
// tears the write anyway, the CRC trailer catches it on load).
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best effort; not all filesystems support dir fsync
		d.Close()
	}
	return nil
}

// Store manages a directory of numbered checkpoint files
// (ckpt-<seq>.twig) with keep-last-K retention. Sequence numbers are
// the caller's (typically the simulated interval at which the
// checkpoint was taken), so a restored run resumes numbering where the
// crashed one left off.
type Store struct {
	dir      string
	keep     int
	onReject func(path string, err error)
}

// SetRejectHook registers fn to be invoked for every candidate file
// LoadLatest (and therefore ReadLatest) skips because it failed to
// verify or restore — a torn write, a bit flip, a version skew. The
// daemon uses it to log the rejected filename and count the fallback in
// twigd_checkpoint_corrupt_total instead of silently walking past
// corruption. fn must not call back into the store.
func (s *Store) SetRejectHook(fn func(path string, err error)) { s.onReject = fn }

// filePattern matches store-managed checkpoint files; %012d keeps
// lexicographic order equal to numeric order.
const filePattern = "ckpt-%012d.twig"

// NewStore opens (creating if needed) a checkpoint directory retaining
// the newest keep files. keep < 1 is treated as 1: the newest
// checkpoint is never pruned.
func NewStore(dir string, keep int) (*Store, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Save atomically writes data as checkpoint seq and prunes files beyond
// the retention limit (oldest first, and never the file just written).
func (s *Store) Save(seq uint64, data []byte) error {
	path := filepath.Join(s.dir, fmt.Sprintf(filePattern, seq))
	if err := WriteFileAtomic(path, data); err != nil {
		return err
	}
	seqs, err := s.Sequences()
	if err != nil {
		return nil // written fine; pruning is best-effort
	}
	for len(seqs) > s.keep {
		old := seqs[0]
		seqs = seqs[1:]
		if old == seq {
			continue
		}
		_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf(filePattern, old)))
	}
	return nil
}

// Sequences lists the sequence numbers of files present in the store,
// ascending. Files not matching the naming scheme are ignored.
func (s *Store) Sequences() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read dir: %w", err)
	}
	var seqs []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		var seq uint64
		if n, err := fmt.Sscanf(ent.Name(), filePattern, &seq); err == nil && n == 1 &&
			ent.Name() == fmt.Sprintf(filePattern, seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Path returns the file path for sequence seq.
func (s *Store) Path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf(filePattern, seq))
}

// ReadLatest returns the sequence number and raw bytes of the newest
// checkpoint whose container framing verifies (magic, version, CRC).
// Torn or corrupt files are skipped, newest-first, exactly like
// LoadLatest. This is the hot-reload read path: the caller decodes only
// the sections it wants (e.g. the manager's weights) from the returned
// bytes without restoring the rest of the run.
func (s *Store) ReadLatest() (uint64, []byte, error) {
	var out []byte
	seq, err := s.LoadLatest(func(data []byte) error {
		if err := Verify(data); err != nil {
			return err
		}
		out = data
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return seq, out, nil
}

// LoadLatest finds the newest checkpoint whose bytes restore cleanly
// and returns its sequence number. Candidates are tried newest-first;
// restore is called with each file's contents and may fail (corrupt
// file, version skew, shape mismatch), in which case the next older
// file is tried — the torn-write fallback path. Returns os.ErrNotExist
// when the directory holds no checkpoint files at all, and a combined
// error when files exist but none restores.
func (s *Store) LoadLatest(restore func(data []byte) error) (uint64, error) {
	seqs, err := s.Sequences()
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 0, fmt.Errorf("checkpoint: no checkpoints in %s: %w", s.dir, os.ErrNotExist)
	}
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		seq := seqs[i]
		data, err := os.ReadFile(s.Path(seq))
		if err == nil {
			err = restore(data)
		}
		if err == nil {
			return seq, nil
		}
		if s.onReject != nil {
			s.onReject(s.Path(seq), err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("checkpoint %s: %w", s.Path(seq), err)
		}
	}
	return 0, fmt.Errorf("checkpoint: no valid checkpoint in %s (newest failure: %w)", s.dir, firstErr)
}
