package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Sentinel decode errors, wrapped with context by the callers.
var (
	// ErrCorrupt marks a file that fails structural or CRC validation —
	// a torn write, a bit flip, or not a checkpoint at all.
	ErrCorrupt = errors.New("corrupt checkpoint")
	// ErrVersion marks a structurally valid file written by a different
	// format version.
	ErrVersion = errors.New("checkpoint version mismatch")
	// ErrTruncated marks a decoder read past the end of a payload.
	ErrTruncated = errors.New("truncated checkpoint payload")
)

// castagnoli is the CRC-32C table used for the file trailer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is one named component payload inside a checkpoint file.
type Section struct {
	Name    string
	Payload []byte
}

// EncodeFile frames sections into a checkpoint container:
//
//	magic[8] | version u32 | count u32
//	repeat:    nameLen u16 | name | payloadLen u64 | payload
//	trailer:   crc32c u32 over every preceding byte
func EncodeFile(version uint32, sections []Section) []byte {
	e := NewEncoder()
	e.buf = append(e.buf, Magic...)
	e.U32(version)
	e.U32(uint32(len(sections)))
	for _, s := range sections {
		if len(s.Name) > math.MaxUint16 {
			panic(fmt.Sprintf("checkpoint: section name %d bytes", len(s.Name)))
		}
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(s.Name)))
		e.buf = append(e.buf, n[:]...)
		e.buf = append(e.buf, s.Name...)
		e.U64(uint64(len(s.Payload)))
		e.buf = append(e.buf, s.Payload...)
	}
	e.U32(crc32.Checksum(e.buf, castagnoli))
	return e.buf
}

// IsCheckpoint reports whether data begins with the checkpoint magic —
// the probe that distinguishes the container from legacy gob weight
// files without attempting a full decode.
func IsCheckpoint(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// DecodeFile validates the container (magic, CRC trailer, framing) and
// returns its version and sections. Section payloads alias data; callers
// must not mutate it while decoding. Any structural problem — including
// a torn write that truncated the file anywhere — returns ErrCorrupt
// before a single payload byte is interpreted.
func DecodeFile(data []byte) (version uint32, sections []Section, err error) {
	const headerLen = len(Magic) + 4 + 4
	if len(data) < headerLen+4 {
		return 0, nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(data))
	}
	if !IsCheckpoint(data) {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrCorrupt, want, got)
	}
	version = binary.LittleEndian.Uint32(body[len(Magic):])
	count := binary.LittleEndian.Uint32(body[len(Magic)+4:])
	off := headerLen
	// Every section needs at least nameLen(2) + payloadLen(8) bytes, so
	// an absurd count is rejected before any allocation.
	if uint64(count) > uint64(len(body)-off)/10 {
		return 0, nil, fmt.Errorf("%w: %d sections in %d bytes", ErrCorrupt, count, len(body))
	}
	sections = make([]Section, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(body) {
			return 0, nil, fmt.Errorf("%w: section %d header past EOF", ErrCorrupt, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+8 > len(body) {
			return 0, nil, fmt.Errorf("%w: section %d name/length past EOF", ErrCorrupt, i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		payloadLen := binary.LittleEndian.Uint64(body[off:])
		off += 8
		if payloadLen > uint64(len(body)-off) {
			return 0, nil, fmt.Errorf("%w: section %q claims %d bytes, %d remain", ErrCorrupt, name, payloadLen, len(body)-off)
		}
		sections = append(sections, Section{Name: name, Payload: body[off : off+int(payloadLen)]})
		off += int(payloadLen)
	}
	if off != len(body) {
		return 0, nil, fmt.Errorf("%w: %d bytes after last section", ErrCorrupt, len(body)-off)
	}
	return version, sections, nil
}

// Encoder serialises component state into a section payload. All values
// are little-endian and fixed-width; floats are IEEE-754 bit patterns,
// so NaNs and signed zeros round-trip exactly.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Bool writes a single byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// U32 writes a fixed 32-bit unsigned value.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U64 writes a fixed 64-bit unsigned value.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 writes a fixed 64-bit signed value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes an int as a 64-bit signed value.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 writes the IEEE-754 bit pattern of v.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob writes a length-prefixed opaque byte slice (nil encodes as
// empty). The fleet checkpoint uses it to nest per-node snapshot
// containers inside the cluster section.
func (e *Encoder) Blob(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// F64s writes a length-prefixed float64 slice (nil encodes as empty; use
// an explicit Bool when nil-ness carries meaning).
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Ints writes a length-prefixed int slice.
func (e *Encoder) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Bools writes a length-prefixed bool slice.
func (e *Encoder) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// Decoder reads component state back out of a section payload. Errors
// are sticky: after the first failed read every subsequent read returns
// the zero value, and Err reports the failure. Length-prefixed reads are
// bounded by the remaining payload before allocating, so corrupt or
// hostile length fields cannot cause large allocations.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps a section payload.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

func (d *Decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail("need %d bytes, %d remain at offset %d", n, d.Remaining(), d.off)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Bool reads one byte written by Encoder.Bool. Any non-0/1 value is an
// error so corrupt payloads fail instead of decoding to "true".
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte %#x", b[0])
		return false
	}
}

// U32 reads a fixed 32-bit unsigned value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit unsigned value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed 64-bit signed value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads an IEEE-754 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed opaque byte slice (empty decodes as
// nil). The returned slice is a copy, safe to retain.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	b := d.take(n)
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// sliceLen validates a length prefix against the remaining payload at
// elemSize bytes per element.
func (d *Decoder) sliceLen(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > d.Remaining() {
		d.fail("slice of %d×%dB exceeds %d remaining bytes", n, elemSize, d.Remaining())
		return 0
	}
	return n
}

// F64s reads a length-prefixed float64 slice (empty decodes as nil).
func (d *Decoder) F64s() []float64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Ints reads a length-prefixed int slice (empty decodes as nil).
func (d *Decoder) Ints() []int {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Bools reads a length-prefixed bool slice (empty decodes as nil).
func (d *Decoder) Bools() []bool {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}
