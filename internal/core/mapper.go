package core

import (
	"fmt"
	"sort"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
)

// Request is one service's resource request from the learning agent.
type Request struct {
	Cores   int
	FreqGHz float64
	// CacheWays is the optional CAT partition request (0 = unmanaged).
	CacheWays int
}

// Mapper implements the mapper module of Sec. III-B3: it turns per-
// service (core count, DVFS) requests into concrete core assignments. It
// (1) prioritises core ordering for cache locality by spreading each
// service over its own socket region with stride-2 placement, (2) sets
// the DVFS state of allocated cores, (3) drops the remaining cores to
// the lowest DVFS state, and (4) arbitrates conflicting requests by
// time-sharing the overlapping cores at the highest requested DVFS
// state (Sec. IV, Resource Arbitration).
type Mapper struct {
	cores []int // managed core IDs, ascending
}

// NewMapper creates a mapper over the given managed cores.
func NewMapper(managedCores []int) *Mapper {
	if len(managedCores) == 0 {
		panic("core: mapper needs at least one core")
	}
	cp := append([]int(nil), managedCores...)
	sort.Ints(cp)
	return &Mapper{cores: cp}
}

// NumCores returns the number of managed cores.
func (m *Mapper) NumCores() int { return len(m.cores) }

// Map produces the next interval's assignment from the per-service
// requests.
func (m *Mapper) Map(reqs []Request) sim.Assignment {
	n := len(m.cores)
	total := 0
	for i, r := range reqs {
		if r.Cores < 1 || r.Cores > n {
			panic(fmt.Sprintf("core: request %d wants %d of %d cores", i, r.Cores, n))
		}
		total += r.Cores
	}
	asg := sim.Assignment{
		PerService:  make([]sim.Allocation, len(reqs)),
		IdleFreqGHz: platform.MinFreqGHz,
	}
	if total <= n {
		m.mapDisjoint(reqs, &asg)
	} else {
		m.mapShared(reqs, &asg)
	}
	return asg
}

// mapDisjoint places each service in its own region of the socket with
// stride-2 ordering inside the region to improve cache locality, as in
// the paper's example (sv-1 on cores 0,2,4 and sv-2 on 10,12,14,16).
func (m *Mapper) mapDisjoint(reqs []Request, asg *sim.Assignment) {
	n := len(m.cores)
	k := len(reqs)
	// Region boundaries: proportional to request sizes so large
	// requests get large regions, with every region at least as big as
	// its request (total ≤ n guarantees feasibility).
	total := 0
	for _, r := range reqs {
		total += r.Cores
	}
	start := 0
	for i, r := range reqs {
		size := r.Cores + (n-total)*r.Cores/max(total, 1)
		if i == k-1 || start+size > n {
			size = n - start
		}
		region := m.cores[start : start+size]
		asg.PerService[i] = sim.Allocation{
			Cores:     pickStride2(region, r.Cores),
			FreqGHz:   r.FreqGHz,
			CacheWays: r.CacheWays,
		}
		start += size
	}
}

// pickStride2 selects count cores from region, preferring every other
// core (0, 2, 4, …) and filling in the odd positions only when needed.
func pickStride2(region []int, count int) []int {
	out := make([]int, 0, count)
	for i := 0; i < len(region) && len(out) < count; i += 2 {
		out = append(out, region[i])
	}
	for i := 1; i < len(region) && len(out) < count; i += 2 {
		out = append(out, region[i])
	}
	sort.Ints(out)
	return out
}

// mapShared arbitrates an over-committed request set: services are laid
// out consecutively on a ring of cores, so the overflow wraps around and
// overlapping cores are time-shared. The platform runs each shared core
// at the highest DVFS state among its owners' requests (Sec. IV,
// Resource Arbitration).
func (m *Mapper) mapShared(reqs []Request, asg *sim.Assignment) {
	n := len(m.cores)
	pos := 0
	for i, r := range reqs {
		ids := make([]int, 0, r.Cores)
		for j := 0; j < r.Cores; j++ {
			ids = append(ids, m.cores[(pos+j)%n])
		}
		sort.Ints(ids)
		asg.PerService[i] = sim.Allocation{Cores: ids, FreqGHz: r.FreqGHz, CacheWays: r.CacheWays}
		pos = (pos + r.Cores) % n
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
