package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/stats"
)

// PowerModel is the first-order per-service power model of Eq. 2:
//
//	Power = κ·load + σ·numCores + ω²·DVFS
//
// fitted on dynamic power (measured minus idle). It exists because RAPL
// only reports socket-level power while each agent needs the power
// consumed by its own allocation for the reward.
//
// Offset extends Eq. 2 with a fitted baseline constant: on this
// simulated platform the "dynamic power" of a configuration with most
// cores hot-unplugged falls below the global idle baseline, so a
// through-the-origin fit (the paper's literal form) collapses the DVFS
// coefficient. The offset restores the κ/σ/ω² semantics; see DESIGN.md.
type PowerModel struct {
	Kappa  float64 // load coefficient (load as fraction of max)
	Sigma  float64 // per-core coefficient
	Omega  float64 // DVFS coefficient (applied as Omega², so ≥ 0 effect)
	Offset float64 // fitted baseline constant (see above)
	// IdleW is the idle power baseline subtracted during fitting.
	IdleW float64
	// MSE and R2 are the fit quality on the training data.
	MSE float64
	R2  float64
}

// Estimate returns the estimated dynamic power of a service at the given
// load fraction, core count and DVFS setting.
func (m *PowerModel) Estimate(loadFrac float64, cores int, freqGHz float64) float64 {
	p := m.Kappa*loadFrac + m.Sigma*float64(cores) + m.Omega*m.Omega*freqGHz + m.Offset
	if p < 0 {
		p = 0
	}
	return p
}

// PowerSample is one profiling measurement.
type PowerSample struct {
	// LoadFrac is the load the service actually processed, as a
	// fraction of its maximum (saturated grid points process less than
	// offered). OfferedFrac is the grid label (0.2/0.5/0.8).
	LoadFrac    float64
	OfferedFrac float64
	Cores       int
	FreqGHz     float64
	// DynamicW is measured socket power minus idle power.
	DynamicW float64
}

// FitPowerModel fits Eq. 2 to profiling samples using the paper's
// methodology: random grid search over the regularisation strength with
// 5-fold cross-validation, then a refit on all data.
func FitPowerModel(samples []PowerSample, idleW float64, rng *rand.Rand) (*PowerModel, error) {
	if len(samples) < 10 {
		return nil, fmt.Errorf("core: %d power samples, need ≥ 10", len(samples))
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = []float64{s.LoadFrac, float64(s.Cores), s.FreqGHz}
		y[i] = s.DynamicW
	}
	model, _, err := stats.RandomSearchRidge(X, y, 1e-6, 10, 12, 5, rng)
	if err != nil {
		return nil, err
	}
	pred := make([]float64, len(X))
	for i := range X {
		pred[i] = model.Predict(X[i])
	}
	omega := 0.0
	if model.Coef[2] > 0 {
		omega = math.Sqrt(model.Coef[2])
	}
	return &PowerModel{
		Kappa:  model.Coef[0],
		Sigma:  model.Coef[1],
		Omega:  omega,
		Offset: model.Intercept,
		IdleW:  idleW,
		MSE:    stats.MSE(pred, y),
		R2:     stats.R2(pred, y),
	}, nil
}

// ProfilePower runs the paper's profiling campaign on a simulated server
// hosting a single service: three load levels (20%, 50%, 80% of max),
// alternate core counts and alternate DVFS states, measuring dynamic
// power each second with unused cores hot-unplugged. It returns the
// samples for FitPowerModel.
func ProfilePower(spec sim.ServiceSpec, cfg sim.Config, secondsPerPoint int, seed int64) []PowerSample {
	var samples []PowerSample
	loads := []float64{0.2, 0.5, 0.8}
	maxCores := cfg.Platform.CoresPerSocket
	// Global idle baseline, as in Sec. IV: the power of the idle system
	// (all cores online at the lowest DVFS state, nothing scheduled).
	idle := sim.NewServer(cfg, []sim.ServiceSpec{spec}).IdlePowerW()
	for _, lf := range loads {
		for cores := 2; cores <= maxCores; cores += 2 { // alternate core counts
			for step := 0; step < platform.NumFreqSteps; step += 2 { // alternate DVFS states
				freq := platform.FreqForStep(step)
				srv := sim.NewServer(cfg, []sim.ServiceSpec{spec})
				ids := srv.ManagedCores()[:cores]
				// Hot-unplug the unused cores, as in Sec. IV.
				for _, id := range srv.ManagedCores()[cores:] {
					srv.Platform().SetOnline(id, false)
				}
				asg := sim.Assignment{PerService: []sim.Allocation{{Cores: ids, FreqGHz: freq}}}
				var pw, rps float64
				n := 0
				for t := 0; t < secondsPerPoint; t++ {
					r := srv.MustStep(asg, []float64{lf * spec.Profile.MaxLoadRPS})
					if t >= secondsPerPoint/3 {
						pw += r.PowerW
						rps += float64(r.Services[0].Completed)
						n++
					}
				}
				// Record the load the service actually processed: an
				// under-provisioned grid point saturates below the
				// offered load and its power reflects that throughput,
				// which is what the profiler observes.
				samples = append(samples, PowerSample{
					LoadFrac:    rps / float64(n) / spec.Profile.MaxLoadRPS,
					OfferedFrac: lf,
					Cores:       cores,
					FreqGHz:     freq,
					DynamicW:    pw/float64(n) - idle,
				})
			}
		}
	}
	return samples
}
