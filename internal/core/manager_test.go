package core

import (
	"bytes"
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

func smallManager(k int) *Manager {
	services := make([]ServiceConfig, k)
	for i := range services {
		services[i] = ServiceConfig{
			Name:        "svc",
			QoSTargetMs: 5,
			MaxLoadRPS:  1000,
		}
	}
	cfg := Config{
		Services:  services,
		MaxPowerW: 100,
		Agent: bdq.AgentConfig{
			Spec:      bdq.Spec{SharedHidden: []int{16, 12}, BranchHidden: 8},
			BatchSize: 8,
			Epsilon:   bdq.EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.05, MidStep: 50, EndStep: 100},
			Seed:      1,
		},
	}
	return NewManager(cfg, coresRange(18))
}

func obsFor(k int, p99 float64) ctrl.Observation {
	obs := ctrl.Observation{PowerW: 50}
	for i := 0; i < k; i++ {
		var s pmc.Sample
		for j := range s {
			s[j] = 0.3
		}
		obs.Services = append(obs.Services, ctrl.ServiceObs{
			P99Ms: p99, QoSTargetMs: 5, MeasuredRPS: 500, MaxLoadRPS: 1000, NormPMCs: s,
		})
	}
	return obs
}

func TestManagerDecideShape(t *testing.T) {
	m := smallManager(2)
	if m.Name() != "twig-c" {
		t.Fatalf("Name = %q", m.Name())
	}
	asg := m.Decide(obsFor(2, 3))
	if len(asg.PerService) != 2 {
		t.Fatalf("allocations = %d", len(asg.PerService))
	}
	for _, a := range asg.PerService {
		if len(a.Cores) < 1 || len(a.Cores) > 18 {
			t.Fatalf("core count %d out of range", len(a.Cores))
		}
		if a.FreqGHz < platform.MinFreqGHz || a.FreqGHz > platform.MaxFreqGHz {
			t.Fatalf("freq %v out of range", a.FreqGHz)
		}
	}
	if asg.IdleFreqGHz != platform.MinFreqGHz {
		t.Fatal("Twig parks idle cores at the lowest DVFS state")
	}
}

func TestManagerSingleServiceName(t *testing.T) {
	if smallManager(1).Name() != "twig-s" {
		t.Fatal("single-service manager is Twig-S")
	}
}

func TestManagerTrainsAfterWarmup(t *testing.T) {
	m := smallManager(1)
	for i := 0; i < 30; i++ {
		m.Decide(obsFor(1, 3))
	}
	if m.Agent().ReplayLen() < 20 {
		t.Fatalf("replay has %d transitions", m.Agent().ReplayLen())
	}
	if m.Agent().Step() != 30 {
		t.Fatalf("agent steps = %d", m.Agent().Step())
	}
}

func TestManagerObservationValidation(t *testing.T) {
	m := smallManager(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Decide(obsFor(1, 3))
}

func TestManagerPureExploitStopsTraining(t *testing.T) {
	services := []ServiceConfig{{Name: "s", QoSTargetMs: 5, MaxLoadRPS: 1000}}
	cfg := Config{
		Services:         services,
		MaxPowerW:        100,
		PureExploitAfter: 5,
		Agent: bdq.AgentConfig{
			Spec:      bdq.Spec{SharedHidden: []int{16, 12}, BranchHidden: 8},
			BatchSize: 4,
			Seed:      1,
		},
	}
	m := NewManager(cfg, coresRange(18))
	for i := 0; i < 5; i++ {
		m.Decide(obsFor(1, 3))
	}
	replayAt5 := m.Agent().ReplayLen()
	stepAt5 := m.Agent().Step()
	for i := 0; i < 10; i++ {
		m.Decide(obsFor(1, 3))
	}
	if m.Agent().ReplayLen() != replayAt5 {
		t.Fatal("pure exploitation must stop storing transitions")
	}
	if m.Agent().Step() != stepAt5 {
		t.Fatal("pure exploitation must use greedy selection")
	}
}

func TestManagerRewardUsesPowerModel(t *testing.T) {
	m := smallManager(1)
	m.prevReqs = []Request{{Cores: 4, FreqGHz: 1.2}}
	// Without a model: fallback estimate.
	rNoModel := m.rewardFor(0, ctrl.ServiceObs{P99Ms: 4, QoSTargetMs: 5, MeasuredRPS: 500, MaxLoadRPS: 1000})
	m.SetService(0, ServiceConfig{
		Name: "s", QoSTargetMs: 5, MaxLoadRPS: 1000,
		Power: &PowerModel{Kappa: 1, Sigma: 10, Omega: 1}, // expensive per core
	})
	rModel := m.rewardFor(0, ctrl.ServiceObs{P99Ms: 4, QoSTargetMs: 5, MeasuredRPS: 500, MaxLoadRPS: 1000})
	if rModel == rNoModel {
		t.Fatal("power model must change the reward")
	}
	// Violation path is model-independent.
	rViol := m.rewardFor(0, ctrl.ServiceObs{P99Ms: 50, QoSTargetMs: 5, MeasuredRPS: 500, MaxLoadRPS: 1000})
	if rViol != -100 {
		t.Fatalf("deep violation reward = %v", rViol)
	}
}

func TestManagerMigrationsCounted(t *testing.T) {
	m := smallManager(1)
	for i := 0; i < 40; i++ {
		m.Decide(obsFor(1, 3))
	}
	// With ε = 1 early on, allocations change nearly every step.
	if m.Migrations() == 0 {
		t.Fatal("exploration must produce migrations")
	}
}

func TestManagerTransferClearsState(t *testing.T) {
	m := smallManager(1)
	for i := 0; i < 150; i++ {
		m.Decide(obsFor(1, 3))
	}
	if m.Agent().Epsilon() > 0.2 {
		t.Fatalf("epsilon before transfer = %v", m.Agent().Epsilon())
	}
	m.Transfer(0)
	if m.Agent().Epsilon() != 1 {
		t.Fatal("Transfer must restart exploration")
	}
	if m.prevState != nil {
		t.Fatal("Transfer must clear the (s,a) memory")
	}
}

func TestManagerSaveLoad(t *testing.T) {
	m := smallManager(1)
	for i := 0; i < 30; i++ {
		m.Decide(obsFor(1, 3))
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := smallManager(1)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	// Same greedy decision on an identical state.
	st := make([]float64, 11)
	for i := range st {
		st[i] = 0.4
	}
	g1 := m.Agent().SelectGreedy(st)
	g2 := m2.Agent().SelectGreedy(st)
	if g1[0][0] != g2[0][0] || g1[0][1] != g2[0][1] {
		t.Fatal("loaded manager decides differently")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig([]ServiceConfig{{Name: "a"}}, 18, 100)
	if cfg.Eta != 5 || cfg.Reward != DefaultRewardConfig() || !cfg.Agent.UsePER {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}
