package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// Property: the mapper always honours every request exactly — correct
// core counts, every core within the managed set, the requested DVFS —
// and produces disjoint allocations whenever the total fits.
func TestMapperInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15) // 4..18 managed cores
		cores := make([]int, n)
		for i := range cores {
			cores[i] = 100 + i
		}
		m := NewMapper(cores)
		k := 1 + rng.Intn(3)
		reqs := make([]Request, k)
		total := 0
		for i := range reqs {
			reqs[i] = Request{
				Cores:   1 + rng.Intn(n),
				FreqGHz: platform.FreqForStep(rng.Intn(platform.NumFreqSteps)),
			}
			total += reqs[i].Cores
		}
		asg := m.Map(reqs)
		seen := map[int]int{}
		for i, alloc := range asg.PerService {
			if len(alloc.Cores) != reqs[i].Cores {
				return false
			}
			if alloc.FreqGHz != reqs[i].FreqGHz {
				return false
			}
			for _, c := range alloc.Cores {
				if c < 100 || c >= 100+n {
					return false
				}
				seen[c]++
			}
		}
		if total <= n {
			for _, owners := range seen {
				if owners > 1 {
					return false // disjoint when feasible
				}
			}
		}
		return asg.IdleFreqGHz == platform.MinFreqGHz
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the monitor's smoothed state stays inside [0,1] for
// normalised inputs and has the fixed dimensionality.
func TestMonitorBoundsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		m := NewMonitor(k, 1+rng.Intn(8))
		for step := 0; step < 12; step++ {
			samples := make([]pmc.Sample, k)
			for i := range samples {
				for c := range samples[i] {
					samples[i][c] = rng.Float64()
				}
			}
			state := m.Observe(samples)
			if len(state) != k*int(pmc.NumCounters) {
				return false
			}
			for _, v := range state {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 1's reward is monotone — more power savings never hurt
// when QoS is met, and deeper violations never earn more.
func TestRewardMonotonicityProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	rc := DefaultRewardConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Met: increasing powerRew must not decrease the reward.
		ratio := rng.Float64() // ≤ 1 → met
		p1 := rng.Float64() * 20
		p2 := p1 + rng.Float64()*20
		if rc.Reward(ratio, p2) < rc.Reward(ratio, p1) {
			return false
		}
		// Violated: increasing tardiness must not increase the reward.
		v1 := 1 + rng.Float64()*5
		v2 := v1 + rng.Float64()*5
		if rc.Reward(v2, p1) > rc.Reward(v1, p1) {
			return false
		}
		// The floor is a hard bound.
		return rc.Reward(1000, p1) >= rc.Floor
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the power model estimate is non-negative and monotone in
// each Eq. 2 term when the fitted coefficients are non-negative.
func TestPowerModelMonotoneProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &PowerModel{
			Kappa:  rng.Float64() * 50,
			Sigma:  rng.Float64() * 2,
			Omega:  rng.Float64() * 5,
			Offset: rng.Float64()*20 - 10,
		}
		load := rng.Float64()
		c := 1 + rng.Intn(18)
		fq := 1.2 + rng.Float64()*0.8
		base := m.Estimate(load, c, fq)
		if base < 0 {
			return false
		}
		return m.Estimate(load, c+1, fq) >= base &&
			m.Estimate(load, c, fq+0.1) >= base &&
			m.Estimate(load+0.01, c, fq) >= base
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
