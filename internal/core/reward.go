package core

import "math"

// RewardConfig holds the Eq. 1 parameters. The paper's empirically best
// values are θ = 0.5, φ = 3, ϕ = −100.
type RewardConfig struct {
	// Theta balances QoS against power savings.
	Theta float64
	// Phi is the exponent of the violation penalty.
	Phi float64
	// Floor (ϕ) caps the negative reward.
	Floor float64
}

// DefaultRewardConfig returns the paper's θ, φ, ϕ.
func DefaultRewardConfig() RewardConfig {
	return RewardConfig{Theta: 0.5, Phi: 3, Floor: -100}
}

// Reward computes Eq. 1 for one service.
//
//	r = QoSrew + θ·Powerrew        if QoS ≤ target
//	r = max(−QoSrew^φ, ϕ)          otherwise
//
// qosRatio is measured QoS over target (QoSrew); powerRew is the ratio
// of the maximum measured system power to the estimated power of this
// service (larger = more savings).
func (c RewardConfig) Reward(qosRatio, powerRew float64) float64 {
	if qosRatio <= 1 {
		return qosRatio + c.Theta*powerRew
	}
	penalty := -math.Pow(qosRatio, c.Phi)
	if penalty < c.Floor {
		penalty = c.Floor
	}
	return penalty
}
