package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// Differential tests for the pooled manager path: a Manager attached to
// a shared AgentPool must make bit-identical decisions — assignments,
// losses and full agent checkpoint bytes — to an unpooled Manager fed
// the same observations, both standalone (Decide drives its own flush)
// and under a fleet coordinator that batches many managers through one
// PrepareDecide / FlushStep / FinishDecide round.

func pooledTestConfig(seed int64, k int) Config {
	services := make([]ServiceConfig, k)
	for i := range services {
		services[i] = ServiceConfig{Name: fmt.Sprintf("svc%d", i), QoSTargetMs: 5, MaxLoadRPS: 1000}
	}
	return Config{
		Services:  services,
		MaxPowerW: 100,
		Agent: bdq.AgentConfig{
			Spec:      bdq.Spec{SharedHidden: []int{16, 12}, BranchHidden: 8},
			BatchSize: 8,
			Epsilon:   bdq.EpsilonSchedule{Start: 1, Mid: 0.1, End: 0.05, MidStep: 20, EndStep: 60},
			Seed:      seed,
		},
	}
}

// pooledObs varies PMCs and latency deterministically per manager and
// interval so trajectories are non-trivial.
func pooledObs(k, mi, t int) ctrl.Observation {
	obs := ctrl.Observation{Time: t, PowerW: 40 + 10*math.Sin(float64(mi+t))}
	for i := 0; i < k; i++ {
		var s pmc.Sample
		for j := range s {
			s[j] = 0.5 + 0.4*math.Sin(float64(mi*101+t*7+i*13+j))
		}
		obs.Services = append(obs.Services, ctrl.ServiceObs{
			P99Ms:       4 + 3*math.Sin(float64(mi*11+t*3+i)),
			QoSTargetMs: 5, MeasuredRPS: 500 + 100*math.Cos(float64(t+i)), MaxLoadRPS: 1000,
			NormPMCs: s,
		})
	}
	return obs
}

func managerAgentBytes(m *Manager) []byte {
	e := checkpoint.NewEncoder()
	m.agent.EncodeState(e)
	return e.Bytes()
}

func TestPooledManagerDecideBitIdentical(t *testing.T) {
	pools := bdq.NewPools()
	solo := NewManager(pooledTestConfig(7, 2), coresRange(18))
	pooled := NewManagerPooled(pooledTestConfig(7, 2), coresRange(18), pools)
	if !pooled.Pooled() || solo.Pooled() {
		t.Fatal("pooled flag wrong")
	}
	for tt := 0; tt < 40; tt++ {
		obs := pooledObs(2, 0, tt)
		a, b := solo.Decide(obs), pooled.Decide(obs)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("t=%d: pooled assignment diverged\nsolo:   %v\npooled: %v", tt, a, b)
		}
		if solo.LastLoss() != pooled.LastLoss() {
			t.Fatalf("t=%d: loss %v != %v", tt, solo.LastLoss(), pooled.LastLoss())
		}
	}
	if !bytes.Equal(managerAgentBytes(solo), managerAgentBytes(pooled)) {
		t.Fatal("pooled agent checkpoint bytes diverged from solo")
	}
	pooled.Close()
	pooled.Close() // idempotent
}

// TestPooledFleetPhasedBitIdentical drives three managers the way a
// fleet coordinator does — PrepareDecide on all, one shared flush,
// FinishDecide on all — and checks every node against its solo twin.
func TestPooledFleetPhasedBitIdentical(t *testing.T) {
	const S = 3
	pools := bdq.NewPools()
	var solos, pooled []*Manager
	for i := 0; i < S; i++ {
		solos = append(solos, NewManager(pooledTestConfig(int64(30+i), 2), coresRange(18)))
		pooled = append(pooled, NewManagerPooled(pooledTestConfig(int64(30+i), 2), coresRange(18), pools))
	}
	for tt := 0; tt < 35; tt++ {
		want := make([]string, S)
		for i, m := range solos {
			want[i] = fmt.Sprint(m.Decide(pooledObs(2, i, tt)))
		}
		for i, m := range pooled {
			var pc ctrl.PhasedController = m
			pc.PrepareDecide(pooledObs(2, i, tt))
		}
		pools.FlushStep()
		for i, m := range pooled {
			if got := fmt.Sprint(m.FinishDecide()); got != want[i] {
				t.Fatalf("t=%d node %d: phased pooled assignment diverged", tt, i)
			}
		}
	}
	for i := range solos {
		if !bytes.Equal(managerAgentBytes(solos[i]), managerAgentBytes(pooled[i])) {
			t.Fatalf("node %d: pooled agent checkpoint diverged", i)
		}
	}
	// Drain one node mid-fleet; survivors keep matching their twins.
	pooled[1].Close()
	for tt := 35; tt < 45; tt++ {
		for _, i := range []int{0, 2} {
			want := fmt.Sprint(solos[i].Decide(pooledObs(2, i, tt)))
			pooled[i].PrepareDecide(pooledObs(2, i, tt))
			pools.FlushStep()
			if got := fmt.Sprint(pooled[i].FinishDecide()); got != want {
				t.Fatalf("t=%d node %d after drain: diverged", tt, i)
			}
		}
	}
}

func TestManagerPhaseMisuse(t *testing.T) {
	m := smallManager(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("FinishDecide without PrepareDecide did not panic")
			}
		}()
		m.FinishDecide()
	}()
	m.PrepareDecide(obsFor(1, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("double PrepareDecide did not panic")
		}
	}()
	m.PrepareDecide(obsFor(1, 3))
}
