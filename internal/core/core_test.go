package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/sim/pmc"
)

func TestMonitorSmoothing(t *testing.T) {
	m := NewMonitor(1, 3)
	mk := func(v float64) pmc.Sample {
		var s pmc.Sample
		for i := range s {
			s[i] = v
		}
		return s
	}
	s1 := m.Observe([]pmc.Sample{mk(1)})
	if len(s1) != int(pmc.NumCounters) {
		t.Fatalf("state dim = %d", len(s1))
	}
	if s1[0] != 1 {
		t.Fatalf("single sample smoothing = %v", s1[0])
	}
	m.Observe([]pmc.Sample{mk(0)})
	s3 := m.Observe([]pmc.Sample{mk(0)})
	// Weights 1,2,3 over values 1,0,0 → 1/6.
	if math.Abs(s3[0]-1.0/6) > 1e-12 {
		t.Fatalf("weighted smoothing = %v, want 1/6", s3[0])
	}
	// Window slides: a fourth zero evicts the 1.
	s4 := m.Observe([]pmc.Sample{mk(0)})
	if s4[0] != 0 {
		t.Fatalf("window should have evicted old sample: %v", s4[0])
	}
	m.Reset()
	if m.State()[0] != 0 {
		t.Fatal("Reset must clear history")
	}
	if m.StateDim() != int(pmc.NumCounters) {
		t.Fatal("StateDim")
	}
}

func TestMonitorNewestWeighsMost(t *testing.T) {
	m := NewMonitor(1, 5)
	var lo, hi pmc.Sample
	hi[0] = 1
	m.Observe([]pmc.Sample{hi})
	state := m.Observe([]pmc.Sample{lo})
	// History [1, 0] with weights [1, 2] → 1/3; newest (0) dominates.
	if state[0] >= 0.5 {
		t.Fatalf("newest sample must dominate, got %v", state[0])
	}
}

func TestMonitorMultiService(t *testing.T) {
	m := NewMonitor(2, 5)
	var a, b pmc.Sample
	a[0], b[0] = 0.25, 0.75
	state := m.Observe([]pmc.Sample{a, b})
	if len(state) != 2*int(pmc.NumCounters) {
		t.Fatalf("state dim = %d", len(state))
	}
	if state[0] != 0.25 || state[int(pmc.NumCounters)] != 0.75 {
		t.Fatal("per-service blocks misplaced")
	}
}

func TestMonitorRepairsCorruptSamples(t *testing.T) {
	m := NewMonitor(1, 3)
	mk := func(v float64) pmc.Sample {
		var s pmc.Sample
		for i := range s {
			s[i] = v
		}
		return s
	}

	m.Observe([]pmc.Sample{mk(0.5)})

	// A fully corrupt sample must be replaced by the last good one, so
	// the smoothed state stays exactly where it was.
	bad := mk(math.NaN())
	bad[1] = math.Inf(1)
	bad[2] = -4
	state := m.Observe([]pmc.Sample{bad})
	for c, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("counter %d: corrupt value leaked into state: %v", c, v)
		}
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("counter %d: repaired state = %v, want 0.5", c, v)
		}
	}

	// A spike above the normalised ceiling is clamped, not replaced.
	state = m.Observe([]pmc.Sample{mk(40)})
	for c, v := range state {
		if v > 1 {
			t.Fatalf("counter %d: spike not clamped: %v", c, v)
		}
	}
}

func TestMonitorCorruptBeforeAnyGoodSample(t *testing.T) {
	// With no history at all, corrupt counters fall back to zero rather
	// than propagating NaN into the BDQ input.
	m := NewMonitor(1, 3)
	var s pmc.Sample
	for i := range s {
		s[i] = math.NaN()
	}
	for c, v := range m.Observe([]pmc.Sample{s}) {
		if v != 0 {
			t.Fatalf("counter %d: %v, want 0", c, v)
		}
	}
}

func TestMonitorResetClearsLastGood(t *testing.T) {
	m := NewMonitor(1, 3)
	var good pmc.Sample
	good[0] = 0.9
	m.Observe([]pmc.Sample{good})
	m.Reset()
	var bad pmc.Sample
	bad[0] = math.NaN()
	if st := m.Observe([]pmc.Sample{bad}); st[0] != 0 {
		t.Fatalf("stale last-good survived Reset: %v", st[0])
	}
}

func TestMonitorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMonitor(0, 5)
}

func TestRewardEquation1(t *testing.T) {
	cfg := DefaultRewardConfig()
	// Met: r = ratio + θ·powerRew.
	if got := cfg.Reward(0.8, 4); math.Abs(got-(0.8+0.5*4)) > 1e-12 {
		t.Fatalf("met reward = %v", got)
	}
	// Exactly at target still counts as met.
	if got := cfg.Reward(1.0, 2); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("boundary reward = %v", got)
	}
	// Mild violation: −ratio³.
	if got := cfg.Reward(2, 10); math.Abs(got-(-8)) > 1e-12 {
		t.Fatalf("violation reward = %v", got)
	}
	// Deep violation capped at ϕ = −100.
	if got := cfg.Reward(10, 10); got != -100 {
		t.Fatalf("capped reward = %v", got)
	}
	// A better (lower) power estimate must earn more when QoS is met.
	if cfg.Reward(0.8, 8) <= cfg.Reward(0.8, 2) {
		t.Fatal("power savings must increase the reward")
	}
	// Just meeting the target earns more than overshooting it
	// (the QoS term encourages configurations that just meet QoS).
	if cfg.Reward(0.95, 3) <= cfg.Reward(0.2, 3) {
		t.Fatal("just-meeting must beat overshooting at equal power")
	}
}

func TestPowerModelEstimate(t *testing.T) {
	m := &PowerModel{Kappa: 10, Sigma: 0.5, Omega: 2}
	// 10·0.5 + 0.5·8 + 4·1.5 = 15.
	if got := m.Estimate(0.5, 8, 1.5); math.Abs(got-15) > 1e-12 {
		t.Fatalf("Estimate = %v", got)
	}
	neg := &PowerModel{Kappa: -100}
	if neg.Estimate(1, 0, 0) != 0 {
		t.Fatal("estimate must clamp at 0")
	}
}

func TestFitPowerModelRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []PowerSample
	for load := 0.2; load <= 0.8; load += 0.3 {
		for cores := 2; cores <= 18; cores += 4 {
			for f := 1.2; f <= 2.01; f += 0.2 {
				truth := 20*load + 1.5*float64(cores) + 9*f
				samples = append(samples, PowerSample{
					LoadFrac: load, Cores: cores, FreqGHz: f,
					DynamicW: truth + rng.NormFloat64()*0.1,
				})
			}
		}
	}
	m, err := FitPowerModel(samples, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Kappa-20) > 1 || math.Abs(m.Sigma-1.5) > 0.2 || math.Abs(m.Omega*m.Omega-9) > 1 {
		t.Fatalf("fit κ=%v σ=%v ω²=%v", m.Kappa, m.Sigma, m.Omega*m.Omega)
	}
	if m.R2 < 0.99 {
		t.Fatalf("R² = %v", m.R2)
	}
	if m.IdleW != 30 {
		t.Fatal("idle baseline not recorded")
	}
}

func TestFitPowerModelTooFewSamples(t *testing.T) {
	if _, err := FitPowerModel(make([]PowerSample, 3), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitPowerModelNegativeFreqCoefficient(t *testing.T) {
	// A decreasing-in-frequency plant must yield ω = 0 (ω² can never be
	// negative in Eq. 2).
	rng := rand.New(rand.NewSource(2))
	var samples []PowerSample
	for i := 0; i < 60; i++ {
		f := 1.2 + rng.Float64()*0.8
		samples = append(samples, PowerSample{
			LoadFrac: rng.Float64(), Cores: 4, FreqGHz: f,
			DynamicW: 20 - 5*f,
		})
	}
	m, err := FitPowerModel(samples, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Omega != 0 {
		t.Fatalf("Omega = %v, want 0 for negative frequency effect", m.Omega)
	}
}
