package core

import (
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/sim/platform"
)

func cacheManager() *Manager {
	cfg := Config{
		Services: []ServiceConfig{
			{Name: "a", QoSTargetMs: 5, MaxLoadRPS: 1000},
			{Name: "b", QoSTargetMs: 5, MaxLoadRPS: 1000},
		},
		MaxPowerW:   100,
		ManageCache: true,
		Agent: bdq.AgentConfig{
			Spec:      bdq.Spec{SharedHidden: []int{16, 12}, BranchHidden: 8},
			BatchSize: 8,
			Seed:      1,
		},
	}
	return NewManager(cfg, coresRange(18))
}

func TestManageCacheAddsThirdBranch(t *testing.T) {
	m := cacheManager()
	spec := m.Agent().Config().Spec
	if len(spec.Dims) != 3 {
		t.Fatalf("dims = %v", spec.Dims)
	}
	if spec.Dims[2] != platform.NumCacheWays {
		t.Fatalf("cache dim = %d, want %d", spec.Dims[2], platform.NumCacheWays)
	}
}

func TestManageCacheRequestsWays(t *testing.T) {
	m := cacheManager()
	asg := m.Decide(obsFor(2, 3))
	for k, a := range asg.PerService {
		if a.CacheWays < 1 || a.CacheWays > platform.NumCacheWays {
			t.Fatalf("service %d cache ways = %d", k, a.CacheWays)
		}
	}
}

func TestMapperPassesCacheWays(t *testing.T) {
	mapper := NewMapper(coresRange(10))
	asg := mapper.Map([]Request{
		{Cores: 3, FreqGHz: 1.6, CacheWays: 7},
		{Cores: 4, FreqGHz: 1.8, CacheWays: 12},
	})
	if asg.PerService[0].CacheWays != 7 || asg.PerService[1].CacheWays != 12 {
		t.Fatalf("cache ways lost: %+v", asg.PerService)
	}
	// Overcommitted (shared) path keeps them too.
	shared := mapper.Map([]Request{
		{Cores: 8, FreqGHz: 1.6, CacheWays: 5},
		{Cores: 6, FreqGHz: 1.8, CacheWays: 9},
	})
	if shared.PerService[0].CacheWays != 5 || shared.PerService[1].CacheWays != 9 {
		t.Fatalf("cache ways lost under arbitration: %+v", shared.PerService)
	}
}
