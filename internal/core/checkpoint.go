package core

import (
	"fmt"
	"io"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

func encodeSample(e *checkpoint.Encoder, s pmc.Sample) {
	for _, v := range s {
		e.F64(v)
	}
}

func decodeSample(d *checkpoint.Decoder) pmc.Sample {
	var s pmc.Sample
	for i := range s {
		s[i] = d.F64()
	}
	return s
}

// EncodeState writes the smoothing window contents and last-good repair
// values. η itself is configuration; it goes in as a fingerprint.
func (m *Monitor) EncodeState(e *checkpoint.Encoder) {
	e.Int(m.eta)
	e.Int(len(m.history))
	for _, h := range m.history {
		e.Int(len(h))
		for _, s := range h {
			encodeSample(e, s)
		}
	}
	for _, s := range m.lastGood {
		encodeSample(e, s)
	}
}

// DecodeState restores monitor state written by EncodeState.
func (m *Monitor) DecodeState(d *checkpoint.Decoder) error {
	eta, k := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if eta != m.eta || k != len(m.history) {
		return fmt.Errorf("core: monitor checkpoint is for %d services with η=%d, this monitor has %d with η=%d",
			k, eta, len(m.history), m.eta)
	}
	sampleBytes := int(pmc.NumCounters) * 8
	history := make([][]pmc.Sample, k)
	for i := range history {
		n := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if n < 0 || n > m.eta || n*sampleBytes > d.Remaining() {
			return fmt.Errorf("core: monitor history length %d exceeds η=%d", n, m.eta)
		}
		if n > 0 {
			history[i] = make([]pmc.Sample, n)
			for j := range history[i] {
				history[i][j] = decodeSample(d)
			}
		}
	}
	lastGood := make([]pmc.Sample, k)
	for i := range lastGood {
		lastGood[i] = decodeSample(d)
	}
	if err := d.Err(); err != nil {
		return err
	}
	m.history = history
	m.lastGood = lastGood
	return nil
}

// CheckpointName implements checkpoint.Checkpointable.
func (m *Manager) CheckpointName() string { return "twig-manager" }

// EncodeState writes the full learning state of the Twig manager: the
// Algorithm 1 interval counter and oscillation metric, the pending
// (s, a) pair awaiting its reward, the previous mapping decision, the
// monitor's smoothing window, and the BDQ agent (networks, optimiser,
// replay buffer, RNG). Service names and the core count go in first as
// a fingerprint.
func (m *Manager) EncodeState(e *checkpoint.Encoder) {
	e.Int(len(m.cfg.Services))
	for _, svc := range m.cfg.Services {
		e.String(svc.Name)
	}
	e.Int(m.cfg.NumCores)
	e.Int(m.steps)
	e.Int(m.migrations)
	e.F64(m.lastLoss)
	e.Bool(m.prevState != nil)
	e.F64s(m.prevState)
	e.Int(len(m.prevActions))
	for _, a := range m.prevActions {
		e.Ints(a)
	}
	e.Int(len(m.prevReqs))
	for _, r := range m.prevReqs {
		e.Int(r.Cores)
		e.F64(r.FreqGHz)
		e.Int(r.CacheWays)
	}
	sim.EncodeAssignment(e, m.lastAsg)
	m.monitor.EncodeState(e)
	m.agent.EncodeState(e)
}

// DecodeState restores state written by EncodeState into a manager
// built with the same configuration.
func (m *Manager) DecodeState(d *checkpoint.Decoder) error {
	k := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if k != len(m.cfg.Services) {
		return fmt.Errorf("core: checkpoint manages %d services, this manager %d", k, len(m.cfg.Services))
	}
	for i := 0; i < k; i++ {
		name := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		if name != m.cfg.Services[i].Name {
			return fmt.Errorf("core: checkpoint service %d is %q, this manager runs %q", i, name, m.cfg.Services[i].Name)
		}
	}
	numCores := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if numCores != m.cfg.NumCores {
		return fmt.Errorf("core: checkpoint is for %d managed cores, this manager has %d", numCores, m.cfg.NumCores)
	}
	steps, migrations := d.Int(), d.Int()
	lastLoss := d.F64()
	havePrev := d.Bool()
	prevState := d.F64s()
	na := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if steps < 0 || migrations < 0 {
		return fmt.Errorf("core: negative counters (%d, %d) in checkpoint", steps, migrations)
	}
	if na < 0 || na*4 > d.Remaining() {
		return fmt.Errorf("core: checkpoint claims %d action vectors", na)
	}
	var prevActions [][]int
	for i := 0; i < na; i++ {
		prevActions = append(prevActions, d.Ints())
	}
	nr := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nr < 0 || nr*(4+8+4) > d.Remaining() {
		return fmt.Errorf("core: checkpoint claims %d resource requests", nr)
	}
	var prevReqs []Request
	for i := 0; i < nr; i++ {
		prevReqs = append(prevReqs, Request{
			Cores:     d.Int(),
			FreqGHz:   d.F64(),
			CacheWays: d.Int(),
		})
	}
	lastAsg, err := sim.DecodeAssignment(d)
	if err != nil {
		return err
	}
	if err := m.monitor.DecodeState(d); err != nil {
		return err
	}
	if err := m.agent.DecodeState(d); err != nil {
		return err
	}
	m.steps = steps
	m.migrations = migrations
	m.lastLoss = lastLoss
	if havePrev {
		if prevState == nil {
			prevState = []float64{}
		}
		m.prevState = prevState
	} else {
		m.prevState = nil
	}
	m.prevActions = prevActions
	m.prevReqs = prevReqs
	m.lastAsg = lastAsg
	return nil
}

// SaveCheckpoint writes a standalone manager checkpoint in the versioned
// container format — the learning state plus everything Decide carries
// between intervals. Unlike Save (legacy gob weights), a restored
// checkpoint continues training bit-identically.
func (m *Manager) SaveCheckpoint(w io.Writer) error {
	_, err := w.Write(checkpoint.Marshal(m))
	return err
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint.
func (m *Manager) LoadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return checkpoint.Unmarshal(data, m)
}
