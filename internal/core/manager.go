package core

import (
	"fmt"
	"io"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/replay"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// ServiceConfig is what Twig must know about one managed service: its
// QoS target, the profiled maximum load (used to express load as a
// fraction in the Eq. 2 power model) and the fitted power model itself.
type ServiceConfig struct {
	Name        string
	QoSTargetMs float64
	MaxLoadRPS  float64
	// Power is the fitted Eq. 2 model. When nil, a generic fallback
	// (per-core linear estimate) is used so Twig remains a drop-in
	// manager even before profiling.
	Power *PowerModel
}

// Config configures a Twig manager. NewManager fills the BDQ spec
// (state dimension, agents, action dimensions) automatically.
type Config struct {
	Services []ServiceConfig
	// NumCores is the size of the managed socket.
	NumCores int
	// MaxPowerW is the stress-microbenchmark power used to normalise
	// the power reward.
	MaxPowerW float64
	// Eta is the PMC smoothing window (Sec. III-B1; the paper uses 5).
	Eta int
	// Reward holds the Eq. 1 parameters.
	Reward RewardConfig
	// Agent carries the learning hyper-parameters; its Spec is
	// overwritten by NewManager.
	Agent bdq.AgentConfig
	// PureExploitAfter, when positive, switches to pure exploitation
	// (greedy actions, no gradient descent) after that many steps, the
	// low-overhead mode recommended in Sec. V.
	PureExploitAfter int
	// ManageCache adds a third action branch per agent that partitions
	// the LLC with Intel CAT-style way reservations — the extension the
	// paper anticipates in its D=3 memory-complexity example but could
	// not enable on its production servers.
	ManageCache bool
}

// DefaultConfig returns the paper's Twig configuration for the given
// services on an 18-core socket.
func DefaultConfig(services []ServiceConfig, numCores int, maxPowerW float64) Config {
	return Config{
		Services:  services,
		NumCores:  numCores,
		MaxPowerW: maxPowerW,
		Eta:       5,
		Reward:    DefaultRewardConfig(),
		Agent: bdq.AgentConfig{
			UsePER: true,
		},
	}
}

// Manager is the Twig task manager: system monitor + multi-agent BDQ
// learning agent + mapper module, run as one Decide call per monitoring
// interval (Algorithm 1). It implements ctrl.Controller; Twig-S is a
// Manager over one service, Twig-C over several.
type Manager struct {
	cfg     Config
	monitor *Monitor
	agent   *bdq.Agent
	mapper  *Mapper

	// pag is non-nil when the manager's agent lives in a shared
	// AgentPool: learning and action selection then run through the
	// pool's batched grouped-GEMM sweep. Checkpointing still goes
	// through agent, which the pool shares.
	pag *bdq.PooledAgent

	prevState   []float64
	prevActions [][]int
	prevReqs    []Request
	lastAsg     sim.Assignment

	// pendState carries the observed state between PrepareDecide and
	// FinishDecide; pendTrained records whether a transition was queued
	// this interval (so lastLoss mirrors the per-agent path exactly).
	pendState   []float64
	pendTrained bool
	pending     bool

	steps      int
	migrations int
	lastLoss   float64
}

// NewManager builds a Twig manager over the given managed cores.
func NewManager(cfg Config, managedCores []int) *Manager {
	if len(cfg.Services) == 0 {
		panic("core: no services configured")
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 5
	}
	if cfg.Reward == (RewardConfig{}) {
		cfg.Reward = DefaultRewardConfig()
	}
	if cfg.NumCores == 0 {
		cfg.NumCores = len(managedCores)
	}
	k := len(cfg.Services)
	dims := []int{cfg.NumCores, platform.NumFreqSteps}
	if cfg.ManageCache {
		dims = append(dims, platform.NumCacheWays)
	}
	cfg.Agent.Spec = bdq.Spec{
		StateDim:     k * int(pmc.NumCounters),
		Agents:       k,
		Dims:         dims,
		SharedHidden: cfg.Agent.Spec.SharedHidden,
		BranchHidden: cfg.Agent.Spec.BranchHidden,
		Dropout:      cfg.Agent.Spec.Dropout,
		SharedValue:  cfg.Agent.Spec.SharedValue,
	}
	if cfg.Agent.Spec.SharedHidden == nil {
		cfg.Agent.Spec.SharedHidden = []int{512, 256}
	}
	if cfg.Agent.Spec.BranchHidden == 0 {
		cfg.Agent.Spec.BranchHidden = 128
	}
	return &Manager{
		cfg:     cfg,
		monitor: NewMonitor(k, cfg.Eta),
		agent:   bdq.NewAgent(cfg.Agent),
		mapper:  NewMapper(managedCores),
	}
}

// NewManagerPooled builds a manager whose agent joins the shared pool
// for its architecture: parameters move into the pool's arena and all
// inference/training runs through the fleet's batched GEMM sweeps.
// Behaviour is bit-identical to NewManager; only the execution shape
// changes. The caller must Close the manager when discarding it so the
// arena slots are released.
func NewManagerPooled(cfg Config, managedCores []int, pools *bdq.Pools) *Manager {
	m := NewManager(cfg, managedCores)
	if pools != nil {
		m.pag = pools.For(m.cfg.Agent).Attach(m.agent)
	}
	return m
}

// Close releases the manager's pooled arena slots (no-op for unpooled
// managers). The agent keeps a private copy of its state and remains
// checkpointable. Implements ctrl.Closer.
func (m *Manager) Close() {
	if m.pag != nil {
		m.pag.Close()
		m.pag = nil
	}
}

// Pooled reports whether the manager runs through a shared AgentPool.
func (m *Manager) Pooled() bool { return m.pag != nil }

// Name implements ctrl.Controller.
func (m *Manager) Name() string {
	if len(m.cfg.Services) == 1 {
		return "twig-s"
	}
	return "twig-c"
}

// Agent exposes the learning agent (experiments inspect ε and step
// counts).
func (m *Manager) Agent() *bdq.Agent { return m.agent }

// Migrations returns the cumulative count of per-service core-set
// changes, the oscillation metric of Sec. V-B1.
func (m *Manager) Migrations() int { return m.migrations }

// LastLoss returns the most recent training minibatch loss.
func (m *Manager) LastLoss() float64 { return m.lastLoss }

// pureExploit reports whether the manager is past its learning phase.
func (m *Manager) pureExploit() bool {
	return m.cfg.PureExploitAfter > 0 && m.steps >= m.cfg.PureExploitAfter
}

// Decide implements Algorithm 1 for one monitoring interval: observe the
// state s (smoothed PMCs), reward the previous action from the observed
// QoS and estimated per-service power, train, and emit the mapping for
// the next interval. Pooled managers route the learning and selection
// work through their AgentPool (one flush for this manager alone);
// fleet coordinators instead call PrepareDecide / FinishDecide around a
// single shared flush.
func (m *Manager) Decide(obs ctrl.Observation) sim.Assignment {
	m.PrepareDecide(obs)
	if m.pag != nil {
		m.pag.Pool().FlushStep()
	}
	return m.FinishDecide()
}

// PrepareDecide is the first half of Decide: observe the state, reward
// and enqueue the previous interval's transition, and enqueue this
// interval's action selection. For unpooled managers the learning step
// runs inline; the selection is deferred to FinishDecide either way.
// Implements ctrl.PhasedController.
func (m *Manager) PrepareDecide(obs ctrl.Observation) {
	if len(obs.Services) != len(m.cfg.Services) {
		panic(fmt.Sprintf("core: observation has %d services, manager %d",
			len(obs.Services), len(m.cfg.Services)))
	}
	if m.pending {
		panic("core: PrepareDecide called twice without FinishDecide")
	}
	samples := make([]pmc.Sample, len(obs.Services))
	for k, s := range obs.Services {
		samples[k] = s.NormPMCs
	}
	state := m.monitor.Observe(samples)

	m.pendTrained = false
	if m.prevState != nil && !m.pureExploit() {
		rewards := make([]float64, len(obs.Services))
		for k, s := range obs.Services {
			rewards[k] = m.rewardFor(k, s)
		}
		flat := make([]int, 0, len(m.prevActions)*2)
		for _, a := range m.prevActions {
			flat = append(flat, a...)
		}
		t := replay.Transition{
			State:     m.prevState,
			Actions:   flat,
			Rewards:   rewards,
			NextState: state,
		}
		if m.pag != nil {
			m.pag.QueueObserve(t)
			m.pendTrained = true
		} else {
			m.lastLoss = m.agent.Observe(t)
		}
	}
	if m.pag != nil {
		m.pag.QueueSelect(state, m.pureExploit())
	}
	m.pendState = state
	m.pending = true
}

// FinishDecide is the second half of Decide: collect the selected
// actions (from the pool flush, or inline for unpooled managers) and
// emit the next interval's assignment. Implements ctrl.PhasedController.
func (m *Manager) FinishDecide() sim.Assignment {
	if !m.pending {
		panic("core: FinishDecide without PrepareDecide")
	}
	m.pending = false
	state := m.pendState
	m.pendState = nil

	var actions [][]int
	switch {
	case m.pag != nil:
		actions = m.pag.TakeActions()
		if m.pendTrained {
			m.lastLoss = m.pag.TakeLoss()
		}
	case m.pureExploit():
		actions = m.agent.SelectGreedy(state)
	default:
		actions = m.agent.SelectActions(state)
	}
	reqs := make([]Request, len(actions))
	for k, a := range actions {
		reqs[k] = Request{Cores: a[0] + 1, FreqGHz: platform.FreqForStep(a[1])}
		if m.cfg.ManageCache {
			reqs[k].CacheWays = a[2] + 1
		}
	}
	asg := m.mapper.Map(reqs)
	m.countMigrations(asg)

	m.prevState = state
	m.prevActions = actions
	m.prevReqs = reqs
	m.lastAsg = asg
	m.steps++
	return asg
}

// rewardFor computes Eq. 1 for service k given the interval outcome.
func (m *Manager) rewardFor(k int, s ctrl.ServiceObs) float64 {
	qosRatio := s.Tardiness()
	svc := m.cfg.Services[k]
	loadFrac := 0.0
	if svc.MaxLoadRPS > 0 {
		loadFrac = s.MeasuredRPS / svc.MaxLoadRPS
	}
	req := m.prevReqs[k]
	var est float64
	if svc.Power != nil {
		est = svc.Power.Estimate(loadFrac, req.Cores, req.FreqGHz)
	} else {
		// Fallback first-order estimate: ~1.5 W per core plus a small
		// frequency term, keeps Power_rew well-scaled before profiling.
		est = 1.5*float64(req.Cores) + 2*req.FreqGHz + 5*loadFrac
	}
	if est < 1 {
		est = 1
	}
	powerRew := m.cfg.MaxPowerW / est
	return m.cfg.Reward.Reward(qosRatio, powerRew)
}

func (m *Manager) countMigrations(asg sim.Assignment) {
	if m.lastAsg.PerService == nil {
		return
	}
	for k := range asg.PerService {
		if !sameCores(m.lastAsg.PerService[k].Cores, asg.PerService[k].Cores) {
			m.migrations++
		}
	}
}

func sameCores(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Transfer applies transfer learning (Sec. IV): the output layers of the
// BDQ are re-initialised, exploration restarts at the given ε-schedule
// step, and the monitor history is cleared. Call it after swapping in a
// new service (update the ServiceConfig first via SetService).
func (m *Manager) Transfer(restartStep int) {
	m.agent.Transfer(restartStep)
	m.monitor.Reset()
	m.prevState = nil
	m.prevActions = nil
}

// SetService replaces the configuration of service k (QoS target, max
// load, power model) when a new service is swapped onto the node.
func (m *Manager) SetService(k int, cfg ServiceConfig) {
	m.cfg.Services[k] = cfg
}

// ResetLearningState clears the (s, a) memory so the next Decide does
// not reward across a discontinuity (e.g. an experiment phase change).
func (m *Manager) ResetLearningState() {
	m.prevState = nil
	m.prevActions = nil
}

// Save persists the learned network weights.
func (m *Manager) Save(w io.Writer) error { return m.agent.Save(w) }

// Load restores network weights saved by Save.
func (m *Manager) Load(r io.Reader) error { return m.agent.Load(r) }
