package core

import (
	"testing"

	"github.com/twig-sched/twig/internal/sim/platform"
)

func coresRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 18 + i // socket-1 style IDs
	}
	return out
}

func TestMapperSingleService(t *testing.T) {
	m := NewMapper(coresRange(18))
	asg := m.Map([]Request{{Cores: 3, FreqGHz: 1.6}})
	a := asg.PerService[0]
	if len(a.Cores) != 3 || a.FreqGHz != 1.6 {
		t.Fatalf("allocation = %+v", a)
	}
	// Stride-2 locality: 18, 20, 22.
	want := []int{18, 20, 22}
	for i, c := range a.Cores {
		if c != want[i] {
			t.Fatalf("cores = %v, want %v", a.Cores, want)
		}
	}
	if asg.IdleFreqGHz != platform.MinFreqGHz {
		t.Fatal("idle cores must drop to the lowest DVFS state")
	}
}

func TestMapperTwoServicesDisjoint(t *testing.T) {
	m := NewMapper(coresRange(16))
	asg := m.Map([]Request{
		{Cores: 3, FreqGHz: 1.6},
		{Cores: 4, FreqGHz: 1.8},
	})
	seen := map[int]int{}
	for _, alloc := range asg.PerService {
		for _, c := range alloc.Cores {
			seen[c]++
		}
	}
	for c, n := range seen {
		if n > 1 {
			t.Fatalf("core %d assigned %d times in a feasible mapping", c, n)
		}
	}
	// Services occupy separate regions (paper's example: sv-1 low cores,
	// sv-2 high cores).
	max0 := asg.PerService[0].Cores[len(asg.PerService[0].Cores)-1]
	min1 := asg.PerService[1].Cores[0]
	if max0 >= min1 {
		t.Fatalf("regions overlap: sv0 up to %d, sv1 from %d", max0, min1)
	}
}

func TestMapperFillsOddPositionsWhenDense(t *testing.T) {
	m := NewMapper(coresRange(8))
	asg := m.Map([]Request{{Cores: 6, FreqGHz: 2.0}})
	if len(asg.PerService[0].Cores) != 6 {
		t.Fatalf("cores = %v", asg.PerService[0].Cores)
	}
}

func TestMapperArbitrationOverlap(t *testing.T) {
	// Paper example: 10 cores, sv-1 wants 8 @1.2, sv-2 wants 5 @2.0 →
	// 3 cores time-shared.
	m := NewMapper(coresRange(10))
	asg := m.Map([]Request{
		{Cores: 8, FreqGHz: 1.2},
		{Cores: 5, FreqGHz: 2.0},
	})
	if len(asg.PerService[0].Cores) != 8 || len(asg.PerService[1].Cores) != 5 {
		t.Fatalf("requested core counts must be honoured: %v / %v",
			asg.PerService[0].Cores, asg.PerService[1].Cores)
	}
	shared := map[int]bool{}
	owners := map[int]int{}
	for _, alloc := range asg.PerService {
		for _, c := range alloc.Cores {
			owners[c]++
			if owners[c] > 1 {
				shared[c] = true
			}
		}
	}
	if len(shared) != 3 {
		t.Fatalf("expected 3 time-shared cores, got %d", len(shared))
	}
}

func TestMapperRequestValidation(t *testing.T) {
	m := NewMapper(coresRange(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized request")
		}
	}()
	m.Map([]Request{{Cores: 5, FreqGHz: 2.0}})
}

func TestMapperEmptyCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMapper(nil)
}

func TestPickStride2(t *testing.T) {
	region := []int{0, 1, 2, 3, 4, 5}
	got := pickStride2(region, 3)
	want := []int{0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pickStride2 = %v", got)
		}
	}
	// Needing more than the even positions fills odd ones too.
	got = pickStride2(region, 5)
	if len(got) != 5 {
		t.Fatalf("pickStride2 dense = %v", got)
	}
}
