// Package core implements the Twig task manager of Sec. III: the system
// monitor (per-service PMC gathering with η-step weighted smoothing and
// feature scaling), the reward function of Eq. 1 backed by the Eq. 2
// per-service power model, the mapper module (cache-local core ordering,
// DVFS programming, resource arbitration), and the Algorithm 1 control
// loop around the multi-agent BDQ. Twig-S and Twig-C are the same
// manager instantiated with one or several services.
package core

import (
	"math"

	"github.com/twig-sched/twig/internal/sim/pmc"
)

// Monitor smooths each service's normalised PMC vector over the last η
// monitoring intervals with linearly decaying weights (most recent
// sample heaviest), as described in Sec. III-B1. The paper found η = 5
// to work best.
type Monitor struct {
	eta      int
	history  [][]pmc.Sample // per service, most recent last
	lastGood []pmc.Sample   // last finite value per service and counter
}

// NewMonitor creates a monitor for k services with window η.
func NewMonitor(k, eta int) *Monitor {
	if k <= 0 || eta <= 0 {
		panic("core: invalid monitor parameters")
	}
	return &Monitor{
		eta:      eta,
		history:  make([][]pmc.Sample, k),
		lastGood: make([]pmc.Sample, k),
	}
}

// Observe records the latest normalised samples (one per service) and
// returns the concatenated smoothed state vector of length
// k × NumCounters, each entry in [0, 1]. A corrupt counter reading —
// NaN, infinite or negative, as a perfmon dropout or an injected fault
// produces — is replaced by that counter's last good value so one bad
// sample cannot poison η intervals of smoothed state.
func (m *Monitor) Observe(samples []pmc.Sample) []float64 {
	if len(samples) != len(m.history) {
		panic("core: sample count mismatch")
	}
	for k, s := range samples {
		for c, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				s[c] = m.lastGood[k][c]
				continue
			}
			if v > 1 {
				s[c] = 1
			}
			m.lastGood[k][c] = s[c]
		}
		m.history[k] = append(m.history[k], s)
		if len(m.history[k]) > m.eta {
			m.history[k] = m.history[k][1:]
		}
	}
	return m.State()
}

// State returns the current smoothed state without adding a sample.
func (m *Monitor) State() []float64 {
	out := make([]float64, 0, len(m.history)*int(pmc.NumCounters))
	for _, h := range m.history {
		var smoothed pmc.Sample
		if n := len(h); n > 0 {
			var wsum float64
			for j, s := range h {
				w := float64(j + 1) // oldest weight 1 … newest weight n
				wsum += w
				for c := range smoothed {
					smoothed[c] += w * s[c]
				}
			}
			for c := range smoothed {
				smoothed[c] /= wsum
			}
		}
		out = append(out, smoothed[:]...)
	}
	return out
}

// Reset clears the history (e.g. when a service is swapped in transfer
// learning experiments).
func (m *Monitor) Reset() {
	for k := range m.history {
		m.history[k] = nil
		m.lastGood[k] = pmc.Sample{}
	}
}

// StateDim returns the length of the state vector.
func (m *Monitor) StateDim() int { return len(m.history) * int(pmc.NumCounters) }
