// Package replay implements experience-replay buffers for deep
// Q-learning: a plain uniform ring buffer and the prioritised replay of
// Schaul et al. (2015) backed by a sum-tree, as used by Twig with a
// buffer of 10⁶ transitions, priority exponent α = 0.6 and
// importance-sampling exponent β annealed from 0.4 to 1.
package replay

import "fmt"

// sumTree is a complete binary tree whose leaves hold priorities and
// whose internal nodes hold subtree sums, supporting O(log n) updates and
// prefix-sum sampling.
type sumTree struct {
	capacity int
	nodes    []float64 // 2*capacity-1 nodes; leaves start at capacity-1
}

func newSumTree(capacity int) *sumTree {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: sum-tree capacity %d", capacity))
	}
	return &sumTree{capacity: capacity, nodes: make([]float64, 2*capacity-1)}
}

// total returns the sum of all leaf priorities.
func (t *sumTree) total() float64 { return t.nodes[0] }

// set assigns priority p to leaf i and updates ancestor sums.
func (t *sumTree) set(i int, p float64) {
	if p < 0 {
		panic("replay: negative priority")
	}
	idx := i + t.capacity - 1
	delta := p - t.nodes[idx]
	t.nodes[idx] = p
	for idx > 0 {
		idx = (idx - 1) / 2
		t.nodes[idx] += delta
	}
}

// get returns the priority of leaf i.
func (t *sumTree) get(i int) float64 { return t.nodes[i+t.capacity-1] }

// find returns the leaf index whose cumulative priority interval contains
// mass, where 0 ≤ mass < total().
func (t *sumTree) find(mass float64) int {
	idx := 0
	for idx < t.capacity-1 {
		left := 2*idx + 1
		if mass < t.nodes[left] {
			idx = left
		} else {
			mass -= t.nodes[left]
			idx = left + 1
		}
	}
	return idx - (t.capacity - 1)
}
