package replay

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// Kind tags distinguish buffer implementations inside an agent section
// so a checkpoint written with PER cannot silently restore into a
// uniform buffer (or vice versa).
const (
	kindUniform     = 1
	kindPrioritized = 2
)

// EncodeBufferKind writes the implementation tag for b.
func EncodeBufferKind(e *checkpoint.Encoder, b Buffer) {
	switch b.(type) {
	case *Uniform:
		e.Int(kindUniform)
	case *Prioritized:
		e.Int(kindPrioritized)
	default:
		panic(fmt.Sprintf("replay: unknown buffer type %T", b))
	}
}

// CheckBufferKind reads the tag and verifies it matches b.
func CheckBufferKind(d *checkpoint.Decoder, b Buffer) error {
	kind := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	var want int
	switch b.(type) {
	case *Uniform:
		want = kindUniform
	case *Prioritized:
		want = kindPrioritized
	default:
		return fmt.Errorf("replay: unknown buffer type %T", b)
	}
	if kind != want {
		return fmt.Errorf("replay: checkpoint buffer kind %d does not match live buffer %T", kind, b)
	}
	return nil
}

func encodeTransition(e *checkpoint.Encoder, t Transition) {
	e.F64s(t.State)
	e.Ints(t.Actions)
	e.F64s(t.Rewards)
	e.F64s(t.NextState)
	e.Bool(t.Done)
}

func decodeTransition(d *checkpoint.Decoder) Transition {
	return Transition{
		State:     d.F64s(),
		Actions:   d.Ints(),
		Rewards:   d.F64s(),
		NextState: d.F64s(),
		Done:      d.Bool(),
	}
}

// transitionMinBytes is the smallest encoding of one transition (four
// empty slices plus the Done byte); it bounds count fields on decode.
const transitionMinBytes = 4*4 + 1

// EncodeState writes the ring contents and cursor. Capacity goes in as
// a fingerprint: restoring into a buffer of different capacity would
// scramble ring arithmetic.
func (u *Uniform) EncodeState(e *checkpoint.Encoder) {
	e.Int(cap(u.data))
	e.Int(len(u.data))
	for _, t := range u.data {
		encodeTransition(e, t)
	}
	e.Int(u.next)
	e.Bool(u.full)
}

// DecodeState restores state written by EncodeState into a buffer
// constructed with the same capacity.
func (u *Uniform) DecodeState(d *checkpoint.Decoder) error {
	capacity := d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if capacity != cap(u.data) {
		return fmt.Errorf("replay: checkpoint capacity %d, live uniform buffer %d", capacity, cap(u.data))
	}
	if n < 0 || n > capacity || n*transitionMinBytes > d.Remaining() {
		return fmt.Errorf("replay: stored count %d out of range", n)
	}
	u.data = u.data[:0]
	for i := 0; i < n; i++ {
		u.data = append(u.data, decodeTransition(d))
	}
	u.next = d.Int()
	u.full = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if u.next < 0 || u.next >= capacity {
		return fmt.Errorf("replay: ring cursor %d out of range [0,%d)", u.next, capacity)
	}
	return nil
}

// EncodeState writes the stored transitions, ring cursors, max-priority
// and β-anneal position, plus the sum-tree's exact node values as a
// sparse (index, value) list. The internal node sums are NOT rebuilt
// from the leaves on restore: they carry the floating-point history of
// every delta propagation, and Sample's prefix-sum descent reads them
// directly, so bit-identical resumed draws need the exact bits.
func (p *Prioritized) EncodeState(e *checkpoint.Encoder) {
	e.Int(p.capacity)
	e.Int(p.size)
	for i := 0; i < p.size; i++ {
		encodeTransition(e, p.data[i])
	}
	e.Int(p.next)
	e.F64(p.maxPrio)
	e.Int(p.samples)

	nonzero := 0
	for _, v := range p.tree.nodes {
		if v != 0 {
			nonzero++
		}
	}
	e.Int(nonzero)
	for i, v := range p.tree.nodes {
		if v != 0 {
			e.Int(i)
			e.F64(v)
		}
	}
}

// DecodeState restores state written by EncodeState into a buffer
// constructed with the same capacity.
func (p *Prioritized) DecodeState(d *checkpoint.Decoder) error {
	capacity := d.Int()
	size := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if capacity != p.capacity {
		return fmt.Errorf("replay: checkpoint capacity %d, live prioritized buffer %d", capacity, p.capacity)
	}
	if size < 0 || size > capacity || size*transitionMinBytes > d.Remaining() {
		return fmt.Errorf("replay: stored count %d out of range", size)
	}
	for i := range p.data {
		p.data[i] = Transition{}
	}
	for i := 0; i < size; i++ {
		p.data[i] = decodeTransition(d)
	}
	p.size = size
	p.next = d.Int()
	p.maxPrio = d.F64()
	p.samples = d.Int()
	nonzero := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if p.next < 0 || p.next >= capacity {
		return fmt.Errorf("replay: ring cursor %d out of range [0,%d)", p.next, capacity)
	}
	// maxPrio starts at 1 and only ever grows through ordered
	// comparisons, so anything below 1 (including NaN) cannot be live
	// state. +Inf can: an unguarded manager fed faulted observations
	// produces infinite TD errors, and a faithful restore keeps them.
	if !(p.maxPrio >= 1) {
		return fmt.Errorf("replay: max priority %v cannot occur in a live buffer", p.maxPrio)
	}
	if p.samples < 0 {
		return fmt.Errorf("replay: negative sample count %d", p.samples)
	}
	numNodes := len(p.tree.nodes)
	if nonzero < 0 || nonzero > numNodes || nonzero*16 > d.Remaining() {
		return fmt.Errorf("replay: sum-tree node count %d out of range", nonzero)
	}
	for i := range p.tree.nodes {
		p.tree.nodes[i] = 0
	}
	for i := 0; i < nonzero; i++ {
		idx := d.Int()
		val := d.F64()
		if err := d.Err(); err != nil {
			return err
		}
		if idx < 0 || idx >= numNodes {
			return fmt.Errorf("replay: sum-tree node index %d out of range [0,%d)", idx, numNodes)
		}
		// Negative priorities cannot arise (|td|+ε raised to α ≥ 0), but
		// NaN and +Inf can when the learner was fed faulted observations;
		// restoring them exactly is required for bit-identical resume.
		if val < 0 {
			return fmt.Errorf("replay: sum-tree node %d value %v must be non-negative", idx, val)
		}
		p.tree.nodes[idx] = val
	}
	return d.Err()
}
