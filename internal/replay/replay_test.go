package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tr(id float64) Transition {
	return Transition{State: []float64{id}, Actions: []int{0}, Rewards: []float64{id}}
}

func TestSumTreeSetGetTotal(t *testing.T) {
	st := newSumTree(4)
	st.set(0, 1)
	st.set(1, 2)
	st.set(2, 3)
	st.set(3, 4)
	if st.total() != 10 {
		t.Fatalf("total = %v", st.total())
	}
	st.set(2, 0)
	if st.total() != 7 || st.get(2) != 0 {
		t.Fatalf("after update total = %v", st.total())
	}
}

func TestSumTreeFindBoundaries(t *testing.T) {
	st := newSumTree(4)
	st.set(0, 1)
	st.set(1, 2)
	st.set(2, 3)
	st.set(3, 4)
	cases := []struct {
		mass float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.99, 1}, {3, 2}, {5.99, 2}, {6, 3}, {9.99, 3},
	}
	for _, c := range cases {
		if got := st.find(c.mass); got != c.want {
			t.Fatalf("find(%v) = %d, want %d", c.mass, got, c.want)
		}
	}
}

func TestSumTreeNonPowerOfTwoCapacity(t *testing.T) {
	st := newSumTree(5)
	for i := 0; i < 5; i++ {
		st.set(i, float64(i+1))
	}
	if st.total() != 15 {
		t.Fatalf("total = %v", st.total())
	}
	// Every unit of mass must land on a valid leaf.
	for m := 0.0; m < 15; m += 0.5 {
		idx := st.find(m)
		if idx < 0 || idx >= 5 {
			t.Fatalf("find(%v) = %d out of range", m, idx)
		}
	}
}

// Property: for a freshly built tree, the leaf found for mass m is the
// unique i with prefix(i) ≤ m < prefix(i+1).
func TestSumTreeFindMatchesPrefixSums(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		st := newSumTree(n)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64() * 10
			st.set(i, prios[i])
		}
		// For non-power-of-two capacities the heap layout visits leaves
		// in in-order traversal order, not array order; sampling is
		// proportional to priority either way. Check containment against
		// prefix sums in traversal order.
		order := inOrderLeaves(st)
		const tol = 1e-9
		for trial := 0; trial < 20; trial++ {
			m := rng.Float64() * st.total()
			idx := st.find(m)
			if idx < 0 || idx >= n {
				return false
			}
			var prefix float64
			for _, leaf := range order {
				if leaf == idx {
					break
				}
				prefix += prios[leaf]
			}
			if m < prefix-tol || m >= prefix+prios[idx]+tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// inOrderLeaves returns leaf indices in the order the descent in find
// visits them (left subtree before right subtree).
func inOrderLeaves(st *sumTree) []int {
	var out []int
	var walk func(node int)
	walk = func(node int) {
		if node >= st.capacity-1 {
			out = append(out, node-(st.capacity-1))
			return
		}
		walk(2*node + 1)
		walk(2*node + 2)
	}
	walk(0)
	return out
}

func TestUniformRingEviction(t *testing.T) {
	u := NewUniform(3)
	for i := 0; i < 5; i++ {
		u.Add(tr(float64(i)))
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d", u.Len())
	}
	// Remaining elements must be {2,3,4}.
	seen := map[float64]bool{}
	for _, d := range u.data {
		seen[d.State[0]] = true
	}
	for _, want := range []float64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("element %v evicted wrongly, have %v", want, seen)
		}
	}
}

func TestUniformSampleWeightsAreOne(t *testing.T) {
	u := NewUniform(10)
	u.Add(tr(1))
	b := u.Sample(4, rand.New(rand.NewSource(1)))
	for _, w := range b.Weights {
		if w != 1 {
			t.Fatalf("weights = %v", b.Weights)
		}
	}
}

func TestUniformEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(4).Sample(1, rand.New(rand.NewSource(1)))
}

func TestPrioritizedSamplingBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPrioritized(8, 1.0, 1.0, 0) // α=1 so probabilities ∝ priority
	for i := 0; i < 8; i++ {
		p.Add(tr(float64(i)))
	}
	// Give transition 7 priority 50, everyone else 1.
	idx := make([]int, 8)
	prio := make([]float64, 8)
	for i := range idx {
		idx[i] = i
		prio[i] = 1
	}
	prio[7] = 50
	p.UpdatePriorities(idx, prio)

	counts := map[float64]int{}
	const draws = 2000
	for i := 0; i < draws; i++ {
		b := p.Sample(1, rng)
		counts[b.Transitions[0].State[0]]++
	}
	frac := float64(counts[7]) / draws
	// Expected ≈ (50+ε)/(57+8ε) ≈ 0.877.
	if frac < 0.75 {
		t.Fatalf("high-priority transition sampled %.2f of the time, want ≫ 1/8", frac)
	}
}

func TestPrioritizedImportanceWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPrioritized(4, 0.6, 0.4, 100)
	for i := 0; i < 4; i++ {
		p.Add(tr(float64(i)))
	}
	p.UpdatePriorities([]int{0, 1, 2, 3}, []float64{10, 1, 1, 1})
	b := p.Sample(32, rng)
	// Weights are normalised to max 1, and frequently sampled (high
	// priority) transitions must have smaller weights.
	maxW := 0.0
	var wHigh, wLow float64
	for i, trn := range b.Transitions {
		if b.Weights[i] > maxW {
			maxW = b.Weights[i]
		}
		if trn.State[0] == 0 {
			wHigh = b.Weights[i]
		} else {
			wLow = b.Weights[i]
		}
	}
	if math.Abs(maxW-1) > 1e-12 {
		t.Fatalf("max weight = %v, want 1", maxW)
	}
	if wHigh != 0 && wLow != 0 && wHigh >= wLow {
		t.Fatalf("IS weight of high-priority sample (%v) should be < low-priority (%v)", wHigh, wLow)
	}
}

func TestPrioritizedBetaAnnealing(t *testing.T) {
	p := NewPrioritized(4, 0.6, 0.4, 10)
	if b := p.beta(); math.Abs(b-0.4) > 1e-12 {
		t.Fatalf("initial beta = %v", b)
	}
	p.Add(tr(0))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		p.Sample(1, rng)
	}
	if b := p.beta(); b != 1 {
		t.Fatalf("annealed beta = %v, want 1", b)
	}
}

func TestPrioritizedNewTransitionsGetMaxPriority(t *testing.T) {
	p := NewPrioritized(8, 0.6, 0.4, 0)
	p.Add(tr(0))
	p.UpdatePriorities([]int{0}, []float64{100})
	p.Add(tr(1))
	// Leaf 1 must carry the max priority (100+ε)^α, same as leaf 0.
	if math.Abs(p.tree.get(1)-p.tree.get(0)) > 1e-9 {
		t.Fatalf("new transition priority %v != max priority %v", p.tree.get(1), p.tree.get(0))
	}
}

func TestPrioritizedRingWraparound(t *testing.T) {
	p := NewPrioritized(4, 0.6, 0.4, 0)
	for i := 0; i < 9; i++ {
		p.Add(tr(float64(i)))
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	rng := rand.New(rand.NewSource(5))
	b := p.Sample(16, rng)
	for _, trn := range b.Transitions {
		if trn.State[0] < 5 {
			t.Fatalf("sampled evicted transition %v", trn.State[0])
		}
	}
}

func TestNegativePriorityPanics(t *testing.T) {
	st := newSumTree(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.set(0, -1)
}
