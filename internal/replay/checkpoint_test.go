package replay

import (
	"math/rand"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
)

func randomTransition(rng *rand.Rand, stateDim, branches, agents int) Transition {
	t := Transition{
		State:     make([]float64, stateDim),
		NextState: make([]float64, stateDim),
		Actions:   make([]int, branches),
		Rewards:   make([]float64, agents),
		Done:      rng.Float64() < 0.1,
	}
	for i := range t.State {
		t.State[i] = rng.NormFloat64()
		t.NextState[i] = rng.NormFloat64()
	}
	for i := range t.Actions {
		t.Actions[i] = rng.Intn(7)
	}
	for i := range t.Rewards {
		t.Rewards[i] = rng.NormFloat64()
	}
	return t
}

func sameTransition(a, b Transition) bool {
	if a.Done != b.Done || len(a.State) != len(b.State) || len(a.Actions) != len(b.Actions) ||
		len(a.Rewards) != len(b.Rewards) || len(a.NextState) != len(b.NextState) {
		return false
	}
	for i := range a.State {
		if a.State[i] != b.State[i] || a.NextState[i] != b.NextState[i] {
			return false
		}
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	for i := range a.Rewards {
		if a.Rewards[i] != b.Rewards[i] {
			return false
		}
	}
	return true
}

// exercise fills a prioritised buffer with adds, samples and priority
// updates so the sum-tree internal nodes accumulate genuine
// floating-point update history (the thing a rebuild-from-leaves
// restore would get wrong).
func exercisePrioritized(p *Prioritized, rng *rand.Rand, steps int) {
	for i := 0; i < steps; i++ {
		p.Add(randomTransition(rng, 6, 4, 2))
		if p.Len() >= 8 && i%3 == 0 {
			b := p.Sample(8, rng)
			td := make([]float64, len(b.Indices))
			for j := range td {
				td[j] = rng.NormFloat64()
			}
			p.UpdatePriorities(b.Indices, td)
		}
	}
}

func TestPrioritizedRoundTrip(t *testing.T) {
	const capacity = 64
	rng := rand.New(rand.NewSource(11))
	orig := NewPrioritized(capacity, 0.6, 0.4, 1000)
	exercisePrioritized(orig, rng, 150) // > capacity: the ring has wrapped

	e := checkpoint.NewEncoder()
	orig.EncodeState(e)

	restored := NewPrioritized(capacity, 0.6, 0.4, 1000)
	d := checkpoint.NewDecoder(e.Bytes())
	if err := restored.DecodeState(d); err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after decode", d.Remaining())
	}

	// Exact sum-tree state: total, every node, every per-slot priority.
	if got, want := restored.tree.total(), orig.tree.total(); got != want {
		t.Fatalf("tree total %v != %v", got, want)
	}
	for i := range orig.tree.nodes {
		if restored.tree.nodes[i] != orig.tree.nodes[i] {
			t.Fatalf("tree node %d: %v != %v", i, restored.tree.nodes[i], orig.tree.nodes[i])
		}
	}
	for i := 0; i < orig.size; i++ {
		if restored.tree.get(i) != orig.tree.get(i) {
			t.Fatalf("slot %d priority %v != %v", i, restored.tree.get(i), orig.tree.get(i))
		}
	}
	// Scalar state: β-anneal position, max-priority, cursors.
	if restored.samples != orig.samples || restored.beta() != orig.beta() {
		t.Fatalf("β-anneal position: samples %d/β %v, want %d/%v",
			restored.samples, restored.beta(), orig.samples, orig.beta())
	}
	if restored.maxPrio != orig.maxPrio || restored.next != orig.next || restored.size != orig.size {
		t.Fatalf("cursors: maxPrio %v next %d size %d, want %v %d %d",
			restored.maxPrio, restored.next, restored.size, orig.maxPrio, orig.next, orig.size)
	}
	for i := 0; i < orig.size; i++ {
		if !sameTransition(restored.data[i], orig.data[i]) {
			t.Fatalf("transition %d differs after round-trip", i)
		}
	}

	// Subsequent draws from identical RNG streams must match exactly —
	// indices, weights and transition identities — through further
	// mutation (adds and priority updates) on both sides.
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	mutA := rand.New(rand.NewSource(7))
	mutB := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		ba := orig.Sample(16, rngA)
		bb := restored.Sample(16, rngB)
		for i := range ba.Indices {
			if ba.Indices[i] != bb.Indices[i] {
				t.Fatalf("round %d draw %d: index %d != %d", round, i, ba.Indices[i], bb.Indices[i])
			}
			if ba.Weights[i] != bb.Weights[i] {
				t.Fatalf("round %d draw %d: weight %v != %v", round, i, ba.Weights[i], bb.Weights[i])
			}
			if !sameTransition(ba.Transitions[i], bb.Transitions[i]) {
				t.Fatalf("round %d draw %d: transitions differ", round, i)
			}
		}
		td := make([]float64, len(ba.Indices))
		for j := range td {
			td[j] = mutA.NormFloat64()
		}
		orig.UpdatePriorities(ba.Indices, td)
		tdB := make([]float64, len(bb.Indices))
		for j := range tdB {
			tdB[j] = mutB.NormFloat64()
		}
		restored.UpdatePriorities(bb.Indices, tdB)
		orig.Add(randomTransition(mutA, 6, 4, 2))
		restored.Add(randomTransition(mutB, 6, 4, 2))
	}
}

func TestUniformRoundTrip(t *testing.T) {
	const capacity = 32
	rng := rand.New(rand.NewSource(5))
	orig := NewUniform(capacity)
	for i := 0; i < 50; i++ { // wraps the ring
		orig.Add(randomTransition(rng, 4, 3, 2))
	}
	e := checkpoint.NewEncoder()
	orig.EncodeState(e)

	restored := NewUniform(capacity)
	if err := restored.DecodeState(checkpoint.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.next != orig.next || restored.full != orig.full || restored.Len() != orig.Len() {
		t.Fatalf("cursors differ: next %d full %v len %d, want %d %v %d",
			restored.next, restored.full, restored.Len(), orig.next, orig.full, orig.Len())
	}
	rngA, rngB := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	ba, bb := orig.Sample(16, rngA), restored.Sample(16, rngB)
	for i := range ba.Indices {
		if ba.Indices[i] != bb.Indices[i] || !sameTransition(ba.Transitions[i], bb.Transitions[i]) {
			t.Fatalf("draw %d differs after round-trip", i)
		}
	}
}

func TestBufferKindMismatch(t *testing.T) {
	e := checkpoint.NewEncoder()
	EncodeBufferKind(e, NewUniform(4))
	if err := CheckBufferKind(checkpoint.NewDecoder(e.Bytes()), NewPrioritized(4, 0.6, 0.4, 10)); err == nil {
		t.Fatal("uniform checkpoint accepted by prioritized buffer")
	}
}

func TestDecodeCapacityMismatch(t *testing.T) {
	orig := NewPrioritized(16, 0.6, 0.4, 10)
	orig.Add(randomTransition(rand.New(rand.NewSource(1)), 4, 2, 1))
	e := checkpoint.NewEncoder()
	orig.EncodeState(e)
	other := NewPrioritized(32, 0.6, 0.4, 10)
	if err := other.DecodeState(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}
