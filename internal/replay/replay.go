package replay

import (
	"math"
	"math/rand"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// Transition is one (s, a, r, s′) interaction of the multi-agent BDQ with
// the environment. Actions holds one chosen action index per branch
// (flattened across agents); Rewards holds one reward per agent.
type Transition struct {
	State     []float64
	Actions   []int
	Rewards   []float64
	NextState []float64
	Done      bool
}

// Batch is a sampled minibatch together with the bookkeeping needed by
// prioritised replay: the buffer indices of each transition (for priority
// updates) and the normalised importance-sampling weights.
type Batch struct {
	Transitions []Transition
	Indices     []int
	Weights     []float64
}

// grow resizes b's slices to length n, reusing their backing arrays when
// capacity allows so a caller-owned Batch stops allocating once warm.
func (b *Batch) grow(n int) {
	if cap(b.Transitions) >= n {
		b.Transitions = b.Transitions[:n]
	} else {
		b.Transitions = make([]Transition, n)
	}
	if cap(b.Indices) >= n {
		b.Indices = b.Indices[:n]
	} else {
		b.Indices = make([]int, n)
	}
	if cap(b.Weights) >= n {
		b.Weights = b.Weights[:n]
	} else {
		b.Weights = make([]float64, n)
	}
}

// Buffer is the interface shared by the uniform and prioritised buffers.
type Buffer interface {
	// Add stores a transition. Prioritised buffers assign it the current
	// maximum priority so every new experience is replayed at least once.
	Add(t Transition)
	// Sample draws a minibatch of size n. It panics if the buffer is empty.
	Sample(n int, rng *rand.Rand) Batch
	// SampleInto fills a caller-owned batch with n transitions, reusing
	// the batch's backing slices when they have capacity. Semantics are
	// otherwise identical to Sample.
	SampleInto(b *Batch, n int, rng *rand.Rand)
	// UpdatePriorities sets new priorities (|TD error|) for the sampled
	// indices. A no-op for the uniform buffer.
	UpdatePriorities(indices []int, tdErrors []float64)
	// Len returns the number of stored transitions.
	Len() int
	// EncodeState and DecodeState checkpoint the buffer contents —
	// transitions, ring cursors and, for the prioritised buffer, exact
	// sum-tree node values and the β-anneal position — so resumed
	// Sample draws are bit-identical. DecodeState expects a buffer
	// constructed with the same capacity and configuration.
	EncodeState(e *checkpoint.Encoder)
	DecodeState(d *checkpoint.Decoder) error
}

// Uniform is a fixed-capacity ring buffer with uniform sampling.
type Uniform struct {
	data []Transition
	next int
	full bool
}

// NewUniform creates a uniform replay buffer with the given capacity.
func NewUniform(capacity int) *Uniform {
	return &Uniform{data: make([]Transition, 0, capacity)}
}

// Add stores t, evicting the oldest transition when full.
func (u *Uniform) Add(t Transition) {
	if len(u.data) < cap(u.data) {
		u.data = append(u.data, t)
		return
	}
	u.data[u.next] = t
	u.next = (u.next + 1) % cap(u.data)
	u.full = true
}

// Sample draws n transitions uniformly with replacement.
func (u *Uniform) Sample(n int, rng *rand.Rand) Batch {
	var b Batch
	u.SampleInto(&b, n, rng)
	return b
}

// SampleInto draws n transitions uniformly with replacement into b.
func (u *Uniform) SampleInto(b *Batch, n int, rng *rand.Rand) {
	if len(u.data) == 0 {
		panic("replay: sampling from empty buffer")
	}
	b.grow(n)
	for i := 0; i < n; i++ {
		j := rng.Intn(len(u.data))
		b.Transitions[i] = u.data[j]
		b.Indices[i] = j
		b.Weights[i] = 1
	}
}

// UpdatePriorities is a no-op for the uniform buffer.
func (u *Uniform) UpdatePriorities([]int, []float64) {}

// Len returns the number of stored transitions.
func (u *Uniform) Len() int { return len(u.data) }

// Prioritized is proportional prioritised experience replay. Priorities
// are (|δ| + ε)^α; sampling probability is proportional to priority; the
// importance-sampling correction w_i = (N·P(i))^−β is annealed towards
// full correction by increasing β to 1 over BetaAnnealSteps samples.
type Prioritized struct {
	Alpha           float64
	Beta0           float64
	BetaAnnealSteps int
	Epsilon         float64

	capacity int
	tree     *sumTree
	data     []Transition
	next     int
	size     int
	maxPrio  float64
	samples  int // Sample() calls, drives β annealing
}

// NewPrioritized creates a prioritised buffer with the paper's defaults
// unless overridden: α = 0.6, β₀ = 0.4 annealed to 1.
func NewPrioritized(capacity int, alpha, beta0 float64, betaAnnealSteps int) *Prioritized {
	return &Prioritized{
		Alpha:           alpha,
		Beta0:           beta0,
		BetaAnnealSteps: betaAnnealSteps,
		Epsilon:         1e-3,
		capacity:        capacity,
		tree:            newSumTree(capacity),
		data:            make([]Transition, capacity),
		maxPrio:         1,
	}
}

// Add stores t with the maximum priority seen so far.
func (p *Prioritized) Add(t Transition) {
	p.data[p.next] = t
	p.tree.set(p.next, math.Pow(p.maxPrio, p.Alpha))
	p.next = (p.next + 1) % p.capacity
	if p.size < p.capacity {
		p.size++
	}
}

// beta returns the current importance-sampling exponent.
func (p *Prioritized) beta() float64 {
	if p.BetaAnnealSteps <= 0 {
		return 1
	}
	frac := float64(p.samples) / float64(p.BetaAnnealSteps)
	if frac > 1 {
		frac = 1
	}
	return p.Beta0 + (1-p.Beta0)*frac
}

// Sample draws n transitions proportionally to priority, stratified over
// the priority mass, and returns max-normalised importance weights.
func (p *Prioritized) Sample(n int, rng *rand.Rand) Batch {
	var b Batch
	p.SampleInto(&b, n, rng)
	return b
}

// SampleInto draws n transitions proportionally to priority into b,
// reusing b's backing slices when they have capacity.
func (p *Prioritized) SampleInto(b *Batch, n int, rng *rand.Rand) {
	if p.size == 0 {
		panic("replay: sampling from empty buffer")
	}
	b.grow(n)
	beta := p.beta()
	p.samples++
	total := p.tree.total()
	seg := total / float64(n)
	maxW := 0.0
	for i := 0; i < n; i++ {
		mass := (float64(i) + rng.Float64()) * seg
		if mass >= total {
			mass = math.Nextafter(total, 0)
		}
		idx := p.tree.find(mass)
		if idx >= p.size { // unfilled leaf with zero priority; clamp
			idx = p.size - 1
		}
		prob := p.tree.get(idx) / total
		if prob <= 0 {
			prob = 1 / float64(p.size)
		}
		w := math.Pow(float64(p.size)*prob, -beta)
		b.Transitions[i] = p.data[idx]
		b.Indices[i] = idx
		b.Weights[i] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range b.Weights {
			b.Weights[i] /= maxW
		}
	}
}

// UpdatePriorities assigns new |TD error| priorities to sampled indices.
func (p *Prioritized) UpdatePriorities(indices []int, tdErrors []float64) {
	for i, idx := range indices {
		prio := math.Abs(tdErrors[i]) + p.Epsilon
		if prio > p.maxPrio {
			p.maxPrio = prio
		}
		p.tree.set(idx, math.Pow(prio, p.Alpha))
	}
}

// Len returns the number of stored transitions.
func (p *Prioritized) Len() int { return p.size }
