package replay

import (
	"math/rand"
	"testing"
)

func benchTransition(i int) Transition {
	return Transition{
		State:     []float64{float64(i), 0.5, 0.2},
		Actions:   []int{i % 18, i % 9},
		Rewards:   []float64{float64(i % 7)},
		NextState: []float64{float64(i + 1), 0.5, 0.2},
	}
}

func BenchmarkPrioritizedAdd(b *testing.B) {
	p := NewPrioritized(1_000_000, 0.6, 0.4, 25_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(benchTransition(i))
	}
}

func BenchmarkPrioritizedSample64(b *testing.B) {
	p := NewPrioritized(1_000_000, 0.6, 0.4, 25_000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		p.Add(benchTransition(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := p.Sample(64, rng)
		p.UpdatePriorities(batch.Indices, batch.Weights)
	}
}

func BenchmarkUniformSample64(b *testing.B) {
	u := NewUniform(1_000_000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		u.Add(benchTransition(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Sample(64, rng)
	}
}
