package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
)

func faultyServer(fs faults.Scenario, seed int64, names ...string) *Server {
	cfg := DefaultConfig()
	cfg.MeasurementSeed = seed
	cfg.Faults = &fs
	specs := make([]ServiceSpec, len(names))
	for i, n := range names {
		specs[i] = ServiceSpec{Profile: service.MustLookup(n), QoSTargetMs: 5, Seed: int64(i + 1)}
	}
	return NewServer(cfg, specs)
}

func TestValidateRejectsMalformedAssignments(t *testing.T) {
	s := newTestServer("masstree")
	good := fullAlloc(s)
	cases := []struct {
		name  string
		asg   Assignment
		loads []float64
	}{
		{"wrong service count", Assignment{}, []float64{100}},
		{"wrong load count", good, []float64{100, 100}},
		{"NaN load", good, []float64{math.NaN()}},
		{"negative load", good, []float64{-1}},
		{"infinite load", good, []float64{math.Inf(1)}},
		{"core out of range", Assignment{PerService: []Allocation{{Cores: []int{99}, FreqGHz: 2}}}, []float64{100}},
		{"negative core", Assignment{PerService: []Allocation{{Cores: []int{-1}, FreqGHz: 2}}}, []float64{100}},
		{"NaN freq", Assignment{PerService: []Allocation{{Cores: []int{18}, FreqGHz: math.NaN()}}}, []float64{100}},
		{"negative freq", Assignment{PerService: []Allocation{{Cores: []int{18}, FreqGHz: -2}}}, []float64{100}},
		{"cache ways", Assignment{PerService: []Allocation{{Cores: []int{18}, FreqGHz: 2, CacheWays: 99}}}, []float64{100}},
		{"NaN idle freq", Assignment{PerService: []Allocation{{Cores: []int{18}, FreqGHz: 2}}, IdleFreqGHz: math.NaN()}, []float64{100}},
	}
	for _, tc := range cases {
		if _, err := s.Step(tc.asg, tc.loads); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if s.Clock() != 0 {
			t.Fatalf("%s: rejected step advanced the clock", tc.name)
		}
	}
	if _, err := s.Step(good, []float64{100}); err != nil {
		t.Fatalf("good assignment rejected: %v", err)
	}
}

// The tentpole determinism guarantee end to end: the same scenario and
// seed reproduce the identical fault schedule and identical observable
// results across two servers.
func TestFaultScheduleDeterministicThroughSim(t *testing.T) {
	run := func() ([][]faults.Event, []float64) {
		s := faultyServer(faults.MustNamed("hostile"), 11, "masstree")
		asg := fullAlloc(s)
		var evs [][]faults.Event
		var p99 []float64
		for i := 0; i < 400; i++ {
			r := s.MustStep(asg, []float64{800})
			evs = append(evs, append([]faults.Event(nil), r.Faults...))
			p99 = append(p99, r.Services[0].P99Ms)
		}
		return evs, p99
	}
	evA, latA := run()
	evB, latB := run()
	if !reflect.DeepEqual(evA, evB) {
		t.Fatal("fault schedules differ between identical runs")
	}
	var seen int
	for _, e := range evA {
		seen += len(e)
	}
	if seen == 0 {
		t.Fatal("hostile scenario injected nothing in 400 intervals")
	}
	for i := range latA {
		same := latA[i] == latB[i] || (math.IsNaN(latA[i]) && math.IsNaN(latB[i]))
		if !same {
			t.Fatalf("latency diverges at t=%d: %v vs %v", i, latA[i], latB[i])
		}
	}
}

func TestCrashEpisodeGoesDarkAndRecovers(t *testing.T) {
	fs := faults.Scenario{CrashPeriodS: 50, CrashOfflineS: 5, CrashWarmupS: 3}
	s := faultyServer(fs, 3, "masstree")
	asg := fullAlloc(s)
	load := 0.4 * service.MustLookup("masstree").MaxLoadRPS

	sawNaN := false
	for i := 0; i < 120; i++ {
		r := s.MustStep(asg, []float64{load})
		inCrash := false
		for _, e := range r.Faults {
			if e.Kind == faults.ServiceCrash {
				inCrash = true
			}
		}
		sv := r.Services[0]
		if inCrash {
			sawNaN = true
			if !math.IsNaN(sv.P99Ms) {
				t.Fatalf("t=%d: crashed service reported p99 %v, want NaN", i, sv.P99Ms)
			}
			if sv.Completed != 0 || sv.QueueLen != 0 {
				t.Fatalf("t=%d: crashed service completed %d, queue %d", i, sv.Completed, sv.QueueLen)
			}
		}
	}
	if !sawNaN {
		t.Fatal("no crash interval observed in 120 s with period 50")
	}
	// After the run the service must be processing again.
	r := s.MustStep(asg, []float64{load})
	if r.Services[0].Completed == 0 {
		t.Fatal("service did not recover after crash episodes")
	}
}

func TestSensorFaultsVisible(t *testing.T) {
	fs := faults.Scenario{
		PMCDropoutPerKs: 400, RAPLFailPerKs: 400,
		LatencyDropPerKs: 400, MaxFaultS: 2,
	}
	s := faultyServer(fs, 7, "masstree")
	asg := fullAlloc(s)
	var sawPMCDrop, sawRAPL, sawLatDrop bool
	for i := 0; i < 100; i++ {
		r := s.MustStep(asg, []float64{500})
		for _, e := range r.Faults {
			switch e.Kind {
			case faults.PMCDropout:
				sawPMCDrop = true
				for _, v := range r.Services[0].PMCs {
					if v != 0 {
						t.Fatalf("t=%d: dropped PMC sample has %v", i, v)
					}
				}
			case faults.RAPLFail:
				sawRAPL = true
				if !math.IsNaN(r.PowerW) {
					t.Fatalf("t=%d: RAPL fault but power %v", i, r.PowerW)
				}
				if math.IsNaN(r.TruePowerW) || r.TruePowerW <= 0 {
					t.Fatal("true power must stay real")
				}
			case faults.LatencyDropout:
				sawLatDrop = true
				if !math.IsNaN(r.Services[0].P99Ms) {
					t.Fatalf("t=%d: latency dropout but p99 %v", i, r.Services[0].P99Ms)
				}
			}
		}
	}
	if !sawPMCDrop || !sawRAPL || !sawLatDrop {
		t.Fatalf("faults not exercised: pmc=%v rapl=%v lat=%v", sawPMCDrop, sawRAPL, sawLatDrop)
	}
}

func TestCoreFailureOverridesController(t *testing.T) {
	fs := faults.Scenario{CoreFailPerKs: 120, MaxFaultS: 4}
	s := faultyServer(fs, 5, "masstree")
	asg := fullAlloc(s)
	lost := false
	for i := 0; i < 80; i++ {
		r := s.MustStep(asg, []float64{300})
		if r.Services[0].NumCores < 18 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no interval lost a core despite CoreFail faults")
	}
	// All cores must eventually come back online.
	for i := 0; i < 40; i++ {
		s.MustStep(asg, []float64{300})
	}
	online := 0
	for _, id := range s.ManagedCores() {
		if s.Platform().Core(id).Online {
			online++
		}
	}
	if online == 0 {
		t.Fatal("every core stuck offline")
	}
}

func TestActuationDropHoldsPreviousProgramming(t *testing.T) {
	// Force a dropped actuation on (essentially) every interval: the
	// first interval has nothing applied yet, so no service owns cores.
	fs := faults.Scenario{ActuationDropPerKs: 1000, MaxFaultS: 1}
	s := faultyServer(fs, 9, "masstree")
	r := s.MustStep(fullAlloc(s), []float64{100})
	if r.Services[0].NumCores != 0 {
		t.Fatalf("dropped first actuation still assigned %d cores", r.Services[0].NumCores)
	}
}

func TestLoadSpikeMultipliesOfferedLoad(t *testing.T) {
	fs := faults.Scenario{LoadSpikePerKs: 1000, LoadSpikeFactor: 4, MaxFaultS: 1}
	s := faultyServer(fs, 13, "masstree")
	r := s.MustStep(fullAlloc(s), []float64{100})
	if r.Services[0].OfferedRPS != 400 {
		t.Fatalf("offered RPS %v, want 400 under a 4x flash crowd", r.Services[0].OfferedRPS)
	}
}

func TestOfflineCoreAssignmentIsDroppedNotFatal(t *testing.T) {
	s := newTestServer("masstree")
	cores := s.ManagedCores()
	s.Platform().SetOnline(cores[0], false)
	asg := Assignment{PerService: []Allocation{{Cores: cores, FreqGHz: platform.MaxFreqGHz}}}
	r, err := s.Step(asg, []float64{100})
	if err != nil {
		t.Fatalf("assignment spanning an offline core must not error: %v", err)
	}
	if r.Services[0].NumCores != len(cores)-1 {
		t.Fatalf("got %d cores, want %d (offline core dropped)", r.Services[0].NumCores, len(cores)-1)
	}
}
