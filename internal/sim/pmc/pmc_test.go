package pmc

import (
	"math"
	"math/rand"
	"testing"
)

func testRates() Rates {
	return Rates{
		IPCBase:        1.2,
		BranchRatio:    0.2,
		BranchMissRate: 0.02,
		MemAccessRate:  0.01,
		L1DRate:        0.35,
		L1IRate:        0.1,
		UopFactor:      1.3,
	}
}

func TestNamesCoverAllCounters(t *testing.T) {
	if int(NumCounters) != 11 {
		t.Fatalf("NumCounters = %d, Table I has 11", NumCounters)
	}
	for i, n := range Names {
		if n == "" {
			t.Fatalf("counter %d unnamed", i)
		}
	}
}

func TestSynthesizeBasicRelations(t *testing.T) {
	s := NewSynthesizer(nil, 0)
	gt := GroundTruth{
		BusyCoreSeconds: 4,
		AvgFreqGHz:      1.6,
		WorkDone:        5,
		Inflation:       1,
		LLCMissFactor:   1,
	}
	out := s.Synthesize(gt, testRates())
	if got := out[UnhaltedCoreCycles]; math.Abs(got-4*1.6e9) > 1 {
		t.Fatalf("cycles = %v", got)
	}
	if out[PerfCountHWCPUCycles] != out[UnhaltedCoreCycles] {
		t.Fatal("noiseless CPU cycles must equal core cycles")
	}
	if got := out[UnhaltedReferenceCycles]; math.Abs(got-4*2e9) > 1 {
		t.Fatalf("ref cycles = %v", got)
	}
	instr := out[InstructionRetired]
	if math.Abs(instr-5e9*1.2) > 1 {
		t.Fatalf("instructions = %v", instr)
	}
	if math.Abs(out[UopsRetired]-instr*1.3) > 1 {
		t.Fatal("uops")
	}
	if math.Abs(out[BranchInstructionsRetired]-instr*0.2) > 1 {
		t.Fatal("branches")
	}
	if out[MispredictedBranchRetired] != out[PerfCountHWBranchMisses] {
		t.Fatal("branch miss counters must agree without noise")
	}
	if math.Abs(out[PerfCountHWCacheL1D]-instr*0.35) > 1 {
		t.Fatal("L1D")
	}
}

func TestInterferenceLowersIPCAndRaisesMisses(t *testing.T) {
	s := NewSynthesizer(nil, 0)
	clean := s.Synthesize(GroundTruth{
		BusyCoreSeconds: 2, AvgFreqGHz: 2, WorkDone: 4, Inflation: 1, LLCMissFactor: 1,
	}, testRates())
	// Same true work, but inflation means more busy time for it.
	dirty := s.Synthesize(GroundTruth{
		BusyCoreSeconds: 3, AvgFreqGHz: 2, WorkDone: 4, Inflation: 1.5, LLCMissFactor: 2,
	}, testRates())
	if dirty.IPC() >= clean.IPC() {
		t.Fatalf("interference must lower IPC: %v vs %v", dirty.IPC(), clean.IPC())
	}
	if dirty[LLCMisses] <= clean[LLCMisses] {
		t.Fatal("interference must raise LLC misses")
	}
	if dirty[InstructionRetired] != clean[InstructionRetired] {
		t.Fatal("instructions depend on true work, not inflation")
	}
}

func TestNoiseIsBoundedAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSynthesizer(rng, 0.02)
	gt := GroundTruth{BusyCoreSeconds: 1, AvgFreqGHz: 2, WorkDone: 1, Inflation: 1, LLCMissFactor: 1}
	base := NewSynthesizer(nil, 0).Synthesize(gt, testRates())
	for trial := 0; trial < 50; trial++ {
		noisy := s.Synthesize(gt, testRates())
		for i := range noisy {
			if noisy[i] < 0 {
				t.Fatal("negative counter")
			}
			if base[i] > 0 && math.Abs(noisy[i]-base[i])/base[i] > 0.15 {
				t.Fatalf("counter %d deviates %v vs %v", i, noisy[i], base[i])
			}
		}
	}
}

func TestCalibrationMaximaDominateRealistic(t *testing.T) {
	// A plausible fully-loaded service must stay under the calibration
	// maxima for every counter (so normalised values stay ≤ 1).
	max := CalibrationMaxima(18, 2.0)
	s := NewSynthesizer(nil, 0)
	gt := GroundTruth{
		BusyCoreSeconds: 18, // all cores busy for a full second
		AvgFreqGHz:      2.0,
		WorkDone:        36,
		Inflation:       1,
		LLCMissFactor:   3,
	}
	out := s.Synthesize(gt, testRates())
	for i := range out {
		if out[i] > max[i] {
			t.Fatalf("counter %s: %v exceeds calibration max %v", Names[i], out[i], max[i])
		}
	}
}

func TestNormalize(t *testing.T) {
	var s, m Sample
	s[0], m[0] = 5, 10
	s[1], m[1] = 20, 10 // over max clamps to 1
	s[2], m[2] = 3, 0   // zero max stays 0
	n := Normalize(s, m)
	if n[0] != 0.5 || n[1] != 1 || n[2] != 0 {
		t.Fatalf("Normalize = %v", n[:3])
	}
}

func TestIPCZeroCycles(t *testing.T) {
	var s Sample
	if s.IPC() != 0 {
		t.Fatal("IPC of empty sample")
	}
}
