// Package pmc synthesises the eleven Table-I hardware performance
// monitoring counters from simulator ground truth, and provides the
// calibration microbenchmarks the paper uses to find each counter's
// maximum value (a CPU-intensive kernel for the cycle/instruction
// counters, a branchy kernel for the branch counters, and STREAM for the
// cache counters). Counters are per-service, summed over the service's
// threads, exactly as libpfm would report them.
package pmc

import "math/rand"

// Index identifies one of the Table-I counters.
type Index int

// The Table-I counters, in the paper's order. The paper's PCA ranks
// PERF_COUNT_HW_BRANCH_MISSES most important, followed by LLC_MISSES.
const (
	UnhaltedCoreCycles Index = iota
	InstructionRetired
	PerfCountHWCPUCycles
	UnhaltedReferenceCycles
	UopsRetired
	BranchInstructionsRetired
	MispredictedBranchRetired
	PerfCountHWBranchMisses
	LLCMisses
	PerfCountHWCacheL1D
	PerfCountHWCacheL1I
	NumCounters
)

// Names lists the Table-I counter names in order.
var Names = [NumCounters]string{
	"UNHALTED_CORE_CYCLES",
	"INSTRUCTION_RETIRED",
	"PERF_COUNT_HW_CPU_CYCLES",
	"UNHALTED_REFERENCE_CYCLES",
	"UOPS_RETIRED",
	"BRANCH_INSTRUCTIONS_RETIRED",
	"MISPREDICTED_BRANCH_RETIRED",
	"PERF_COUNT_HW_BRANCH_MISSES",
	"LLC_MISSES",
	"PERF_COUNT_HW_CACHE_L1D",
	"PERF_COUNT_HW_CACHE_L1I",
}

// Sample is one interval's counter vector for one service.
type Sample [NumCounters]float64

// GroundTruth is what the simulator knows about a service's interval;
// the synthesiser turns it into counters.
type GroundTruth struct {
	// BusyCoreSeconds is Σ over the service's cores of busy time.
	BusyCoreSeconds float64
	// AvgFreqGHz is the work-weighted average frequency of those cores.
	AvgFreqGHz float64
	// WorkDone is the uninflated work processed (GHz·core·seconds):
	// instructions executed are proportional to it.
	WorkDone float64
	// Inflation is the interference inflation that was in effect;
	// inflated work burns cycles without retiring extra instructions.
	Inflation float64
	// LLCMissFactor scales the baseline LLC miss rate.
	LLCMissFactor float64
}

// Rates captures the per-service microarchitectural ratios (copied from
// the service profile to keep this package free of that dependency).
type Rates struct {
	IPCBase        float64
	BranchRatio    float64
	BranchMissRate float64
	MemAccessRate  float64
	L1DRate        float64
	L1IRate        float64
	UopFactor      float64
}

// Synthesizer produces noisy counter samples.
type Synthesizer struct {
	rng   *rand.Rand
	noise float64
}

// NewSynthesizer creates a synthesiser with the given relative
// measurement noise (the paper's perfmon samples are noisy at the ~2%
// level); rng may be nil for noiseless output.
func NewSynthesizer(rng *rand.Rand, noise float64) *Synthesizer {
	return &Synthesizer{rng: rng, noise: noise}
}

// Synthesize converts ground truth into a Table-I counter sample.
//
// Derivations: cycles = busy·f·1e9; reference cycles use the 2.0 GHz
// reference clock; instructions ∝ uninflated work (interference makes
// the same instructions take more cycles, lowering IPC); branch and
// cache events are fixed per-instruction ratios, with contention raising
// the LLC miss rate through LLCMissFactor.
func (s *Synthesizer) Synthesize(gt GroundTruth, r Rates) Sample {
	var out Sample
	cycles := gt.BusyCoreSeconds * gt.AvgFreqGHz * 1e9
	refCycles := gt.BusyCoreSeconds * 2.0 * 1e9
	// Instructions are proportional to true (uninflated) work at the
	// profile's base IPC referenced to cycles at the actual frequency.
	instr := gt.WorkDone * 1e9 * r.IPCBase
	out[UnhaltedCoreCycles] = cycles
	out[PerfCountHWCPUCycles] = cycles
	out[UnhaltedReferenceCycles] = refCycles
	out[InstructionRetired] = instr
	out[UopsRetired] = instr * r.UopFactor
	branches := instr * r.BranchRatio
	out[BranchInstructionsRetired] = branches
	out[MispredictedBranchRetired] = branches * r.BranchMissRate
	out[PerfCountHWBranchMisses] = branches * r.BranchMissRate
	out[LLCMisses] = instr * r.MemAccessRate * gt.LLCMissFactor
	out[PerfCountHWCacheL1D] = instr * r.L1DRate
	out[PerfCountHWCacheL1I] = instr * r.L1IRate
	if s.rng != nil && s.noise > 0 {
		for i := range out {
			out[i] *= 1 + s.rng.NormFloat64()*s.noise
			if out[i] < 0 {
				out[i] = 0
			}
		}
	}
	return out
}

// IPC returns instructions per cycle of a sample (0 when no cycles).
func (sa Sample) IPC() float64 {
	if sa[UnhaltedCoreCycles] == 0 {
		return 0
	}
	return sa[InstructionRetired] / sa[UnhaltedCoreCycles]
}

// CalibrationMaxima returns, per counter, the maximum per-second value
// obtainable on numCores cores at maxFreq GHz, derived from the three
// calibration microbenchmarks of Sec. IV:
//
//   - counters 1–5 from a CPU-intensive kernel with no memory accesses
//     (IPC ≈ 4 on the Broadwell 4-wide front end),
//   - counters 6–8 from a branch-heavy kernel aggregating an unsorted
//     vector (≈ 1 branch per 4 instructions, 25% mispredicted),
//   - counters 9–11 from STREAM (one LLC miss per 8 accesses at full
//     bandwidth).
func CalibrationMaxima(numCores int, maxFreqGHz float64) Sample {
	var m Sample
	cores := float64(numCores)
	cycles := cores * maxFreqGHz * 1e9
	m[UnhaltedCoreCycles] = cycles
	m[PerfCountHWCPUCycles] = cycles
	m[UnhaltedReferenceCycles] = cores * 2.0 * 1e9
	instrMax := cycles * 4 // 4-wide retire
	m[InstructionRetired] = instrMax
	m[UopsRetired] = instrMax * 1.5

	branchInstr := cycles * 2 // branchy kernel: lower IPC, dense branches
	m[BranchInstructionsRetired] = branchInstr * 0.25
	m[MispredictedBranchRetired] = branchInstr * 0.25 * 0.25
	m[PerfCountHWBranchMisses] = branchInstr * 0.25 * 0.25

	streamInstr := cycles * 0.8 // STREAM: memory bound, low IPC
	m[PerfCountHWCacheL1D] = streamInstr * 0.6
	m[PerfCountHWCacheL1I] = streamInstr * 0.15
	m[LLCMisses] = streamInstr * 0.6 / 8
	return m
}

// Normalize feature-scales a sample into [0,1] by the calibration
// maxima (max-value normalisation, Sec. III-B1), clamping at 1.
func Normalize(s, maxima Sample) Sample {
	var out Sample
	for i := range s {
		if maxima[i] > 0 {
			v := s[i] / maxima[i]
			if v > 1 {
				v = 1
			}
			out[i] = v
		}
	}
	return out
}
