// Package interference models socket-level shared-resource contention
// between colocated services: a memory-bandwidth roofline and LLC
// occupancy pressure. Contention inflates the work of every request of
// an affected service, which is exactly how the controller perceives it:
// higher tail latency at the same allocation.
package interference

// Config describes the shared resources of one socket.
type Config struct {
	// BandwidthGBs is the socket memory-bandwidth capacity.
	BandwidthGBs float64
	// LLCMB is the last-level cache size.
	LLCMB float64
	// BWKneeFraction is the fraction of bandwidth at which queueing
	// delays start to grow (roofline knee).
	BWKneeFraction float64
}

// DefaultConfig approximates a Xeon E5-2695v4 socket: ~68 GB/s DDR4-2400
// across 4 channels and a 45 MB LLC.
func DefaultConfig() Config {
	return Config{BandwidthGBs: 68, LLCMB: 45, BWKneeFraction: 0.5}
}

// Demand is one service's pressure on the shared resources during an
// interval.
type Demand struct {
	// BandwidthGBs is the service's offered memory traffic.
	BandwidthGBs float64
	// CacheMB is the LLC footprint the service wants.
	CacheMB float64
	// ReservedMB, when positive, is an explicit LLC partition assigned
	// to the service (Intel CAT-style way allocation). Zero means the
	// service competes for the unreserved capacity.
	ReservedMB float64
	// BWSensitivity and CacheSensitivity scale how strongly contention
	// inflates this service's work.
	BWSensitivity    float64
	CacheSensitivity float64
}

// Result describes the contention outcome for one service.
type Result struct {
	// Inflation multiplies the service's request work (≥ 1).
	Inflation float64
	// LLCMissFactor multiplies the service's baseline LLC miss rate
	// (≥ 1); it feeds the synthetic PMCs.
	LLCMissFactor float64
	// CacheShareMB is the LLC capacity the service actually obtained.
	CacheShareMB float64
}

// Model computes contention for the services sharing one socket.
type Model struct {
	cfg Config
}

// New creates a contention model.
func New(cfg Config) *Model {
	if cfg.BandwidthGBs <= 0 || cfg.LLCMB <= 0 {
		panic("interference: invalid config")
	}
	if cfg.BWKneeFraction <= 0 || cfg.BWKneeFraction > 1 {
		cfg.BWKneeFraction = 0.5
	}
	return &Model{cfg: cfg}
}

// Config returns the socket resource description.
func (m *Model) Config() Config { return m.cfg }

// Compute returns the per-service contention results for the given
// simultaneous demands.
//
// Bandwidth: below the knee there is no penalty; between the knee and
// the roofline the penalty grows quadratically; past the roofline it
// grows linearly with overload. The penalty felt by service k is the
// total pressure scaled by the service's own sensitivity — this captures
// the paper's Masstree/Moses asymmetry where a low-bandwidth service can
// still suffer badly from a high-bandwidth neighbour.
//
// Cache: when the summed footprints exceed the LLC, each service obtains
// a proportional share and suffers inflation on the deficit, scaled by
// its cache sensitivity. The same pressure raises its LLC miss rate.
func (m *Model) Compute(demands []Demand) []Result {
	out := make([]Result, len(demands))
	var totalBW, totalCache float64
	for _, d := range demands {
		totalBW += d.BandwidthGBs
		totalCache += d.CacheMB
	}

	// Bandwidth pressure ∈ [0, ∞): 0 below the knee.
	knee := m.cfg.BWKneeFraction * m.cfg.BandwidthGBs
	var bwPressure float64
	switch {
	case totalBW <= knee:
		bwPressure = 0
	case totalBW <= m.cfg.BandwidthGBs:
		f := (totalBW - knee) / (m.cfg.BandwidthGBs - knee)
		bwPressure = 0.5 * f * f
	default:
		bwPressure = 0.5 + 2*(totalBW/m.cfg.BandwidthGBs-1)
	}

	// LLC partitioning: services with an explicit CAT-style reservation
	// get exactly their reserved capacity (capped at the cache size);
	// the rest compete proportionally for whatever remains.
	rawReserved := 0.0
	var freeDemand float64
	for _, d := range demands {
		if d.ReservedMB > 0 {
			rawReserved += d.ReservedMB
		} else {
			freeDemand += d.CacheMB
		}
	}
	// Over-committed reservations are scaled down proportionally, like
	// overlapping CAT masks sharing ways.
	reserveScale := 1.0
	if rawReserved > m.cfg.LLCMB {
		reserveScale = m.cfg.LLCMB / rawReserved
	}
	freeCache := m.cfg.LLCMB - rawReserved*reserveScale
	if freeCache < 0 {
		freeCache = 0
	}

	for i, d := range demands {
		var share float64
		if d.ReservedMB > 0 {
			share = d.ReservedMB * reserveScale
			if share > d.CacheMB {
				share = d.CacheMB
			}
		} else {
			share = d.CacheMB
			if freeDemand > freeCache && freeDemand > 0 {
				share = d.CacheMB * freeCache / freeDemand
			}
		}
		cachePressure := 0.0
		if d.CacheMB > 0 && share < d.CacheMB {
			cachePressure = (d.CacheMB - share) / d.CacheMB
		}
		inflation := 1 + d.BWSensitivity*bwPressure + d.CacheSensitivity*cachePressure
		out[i] = Result{
			Inflation:     inflation,
			LLCMissFactor: 1 + 2.5*cachePressure + 0.5*bwPressure,
			CacheShareMB:  share,
		}
	}
	return out
}
