package interference

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoContentionBelowKnee(t *testing.T) {
	m := New(DefaultConfig())
	res := m.Compute([]Demand{
		{BandwidthGBs: 10, CacheMB: 10, BWSensitivity: 2, CacheSensitivity: 2},
		{BandwidthGBs: 10, CacheMB: 10, BWSensitivity: 1, CacheSensitivity: 1},
	})
	for i, r := range res {
		if r.Inflation != 1 {
			t.Fatalf("service %d inflated %v with no contention", i, r.Inflation)
		}
		if r.LLCMissFactor != 1 {
			t.Fatalf("service %d miss factor %v", i, r.LLCMissFactor)
		}
	}
}

func TestBandwidthPressureGrows(t *testing.T) {
	m := New(DefaultConfig())
	cap := DefaultConfig().BandwidthGBs
	prev := 0.0
	for _, frac := range []float64{0.5, 0.8, 1.0, 1.3, 2.0} {
		res := m.Compute([]Demand{{BandwidthGBs: frac * cap, BWSensitivity: 1}})
		infl := res[0].Inflation
		if infl < prev {
			t.Fatalf("inflation not monotone at %vx: %v < %v", frac, infl, prev)
		}
		prev = infl
	}
	if prev <= 1.2 {
		t.Fatalf("2x overload inflation = %v, expected substantial", prev)
	}
}

// TestAsymmetricSensitivity reproduces the Masstree/Moses asymmetry: a
// low-bandwidth, high-sensitivity service suffers more from a
// bandwidth-hog neighbour than a high-bandwidth, low-sensitivity one.
func TestAsymmetricSensitivity(t *testing.T) {
	m := New(DefaultConfig())
	res := m.Compute([]Demand{
		{BandwidthGBs: 5, BWSensitivity: 2.2},  // masstree-like
		{BandwidthGBs: 60, BWSensitivity: 1.0}, // moses-like
	})
	if res[0].Inflation <= res[1].Inflation {
		t.Fatalf("sensitive service %v should suffer more than hog %v",
			res[0].Inflation, res[1].Inflation)
	}
}

func TestCachePartitioning(t *testing.T) {
	cfg := DefaultConfig() // 45 MB LLC
	m := New(cfg)
	res := m.Compute([]Demand{
		{CacheMB: 30, CacheSensitivity: 1},
		{CacheMB: 30, CacheSensitivity: 1},
	})
	// Proportional shares: 22.5 MB each.
	for i, r := range res {
		if r.CacheShareMB <= 22 || r.CacheShareMB >= 23 {
			t.Fatalf("service %d share = %v", i, r.CacheShareMB)
		}
		if r.Inflation <= 1 {
			t.Fatalf("service %d must be inflated by cache pressure", i)
		}
		if r.LLCMissFactor <= 1 {
			t.Fatalf("service %d must see more LLC misses", i)
		}
	}
	// Fits: full share, no penalty.
	fits := m.Compute([]Demand{{CacheMB: 20, CacheSensitivity: 1}, {CacheMB: 20, CacheSensitivity: 1}})
	if fits[0].CacheShareMB != 20 || fits[0].Inflation != 1 {
		t.Fatalf("fitting workloads must be unpenalised: %+v", fits[0])
	}
}

// Property: inflation ≥ 1 always, and adding a neighbour never reduces
// anyone's inflation.
func TestInflationMonotoneInNeighbours(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	m := New(DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d1 := Demand{
			BandwidthGBs:     rng.Float64() * 50,
			CacheMB:          rng.Float64() * 30,
			BWSensitivity:    rng.Float64() * 2,
			CacheSensitivity: rng.Float64() * 2,
		}
		d2 := Demand{
			BandwidthGBs:     rng.Float64() * 50,
			CacheMB:          rng.Float64() * 30,
			BWSensitivity:    rng.Float64() * 2,
			CacheSensitivity: rng.Float64() * 2,
		}
		solo := m.Compute([]Demand{d1})[0]
		pair := m.Compute([]Demand{d1, d2})[0]
		return solo.Inflation >= 1 && pair.Inflation >= solo.Inflation-1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{BandwidthGBs: 0, LLCMB: 45})
}

func TestKneeFractionDefaulted(t *testing.T) {
	m := New(Config{BandwidthGBs: 50, LLCMB: 45, BWKneeFraction: 0})
	if m.Config().BWKneeFraction != 0.5 {
		t.Fatalf("knee = %v", m.Config().BWKneeFraction)
	}
}

// TestCATReservations: explicit way reservations isolate a service from
// cache contention, while the unreserved competitor squeezes into the
// remainder.
func TestCATReservations(t *testing.T) {
	m := New(DefaultConfig()) // 45 MB LLC
	// Both want 30 MB; service 0 reserves 30 MB worth of ways.
	res := m.Compute([]Demand{
		{CacheMB: 30, ReservedMB: 30, CacheSensitivity: 1},
		{CacheMB: 30, CacheSensitivity: 1},
	})
	if res[0].CacheShareMB != 30 || res[0].Inflation != 1 {
		t.Fatalf("reserved service should be isolated: %+v", res[0])
	}
	// The competitor gets only the remaining 15 MB.
	if res[1].CacheShareMB > 15.001 || res[1].Inflation <= 1 {
		t.Fatalf("unreserved service should be squeezed: %+v", res[1])
	}
}

// TestCATOvercommitScales: reservations beyond the cache are scaled down
// proportionally, like overlapping CAT masks.
func TestCATOvercommitScales(t *testing.T) {
	m := New(DefaultConfig())
	res := m.Compute([]Demand{
		{CacheMB: 60, ReservedMB: 60, CacheSensitivity: 1},
		{CacheMB: 30, ReservedMB: 30, CacheSensitivity: 1},
	})
	// 90 MB requested over a 45 MB cache → halves.
	if res[0].CacheShareMB > 30.001 || res[1].CacheShareMB > 15.001 {
		t.Fatalf("overcommit should scale: %v / %v", res[0].CacheShareMB, res[1].CacheShareMB)
	}
	if res[0].Inflation <= 1 {
		t.Fatal("scaled reservation must feel pressure")
	}
}

// TestCATReservationCapsAtFootprint: reserving more than the footprint
// wastes ways but cannot give more than the service wants.
func TestCATReservationCapsAtFootprint(t *testing.T) {
	m := New(DefaultConfig())
	res := m.Compute([]Demand{{CacheMB: 10, ReservedMB: 40, CacheSensitivity: 1}})
	if res[0].CacheShareMB != 10 {
		t.Fatalf("share = %v, want capped at footprint", res[0].CacheShareMB)
	}
}
