package service

import "fmt"

// Built-in profiles for the services used in the paper's evaluation. The
// maximum loads are Table II's; the remaining parameters were chosen so
// the simulated capacity sweep (experiment table2) lands near the
// paper's QoS targets and so the interference interactions the paper
// highlights hold: Masstree barely uses memory bandwidth but is very
// sensitive to bandwidth interference, Moses is cache- and
// bandwidth-hungry, Img-dnn is compute-bound.
var builtin = map[string]Profile{
	"masstree": {
		Name:             "masstree",
		MaxLoadRPS:       2400,
		RhoMax:           0.80,
		WorkSigma:        0.35,
		FreqSensitivity:  0.75,
		SerialFraction:   0.004,
		BWPerWork:        0.25,
		BWSensitivity:    2.2,
		CacheMB:          8,
		CacheSensitivity: 1.6,
		IPCBase:          1.1,
		BranchRatio:      0.18,
		BranchMissRate:   0.015,
		MemAccessRate:    0.012,
		L1DRate:          0.34,
		L1IRate:          0.10,
		UopFactor:        1.25,
	},
	"xapian": {
		Name:             "xapian",
		MaxLoadRPS:       1000,
		RhoMax:           0.80,
		WorkSigma:        0.40,
		FreqSensitivity:  0.80,
		SerialFraction:   0.006,
		BWPerWork:        0.55,
		BWSensitivity:    1.2,
		CacheMB:          20,
		CacheSensitivity: 1.0,
		IPCBase:          1.3,
		BranchRatio:      0.22,
		BranchMissRate:   0.022,
		MemAccessRate:    0.008,
		L1DRate:          0.38,
		L1IRate:          0.13,
		UopFactor:        1.30,
	},
	"moses": {
		Name:             "moses",
		MaxLoadRPS:       2800,
		RhoMax:           0.80,
		WorkSigma:        0.52,
		FreqSensitivity:  0.70,
		SerialFraction:   0.005,
		BWPerWork:        1.8,
		BWSensitivity:    1.0,
		CacheMB:          34,
		CacheSensitivity: 0.9,
		IPCBase:          1.0,
		BranchRatio:      0.20,
		BranchMissRate:   0.018,
		MemAccessRate:    0.020,
		L1DRate:          0.40,
		L1IRate:          0.11,
		UopFactor:        1.35,
	},
	"img-dnn": {
		Name:             "img-dnn",
		MaxLoadRPS:       1100,
		RhoMax:           0.88,
		WorkSigma:        0.50,
		FreqSensitivity:  0.95,
		SerialFraction:   0.003,
		BWPerWork:        0.45,
		BWSensitivity:    0.6,
		CacheMB:          12,
		CacheSensitivity: 0.5,
		IPCBase:          1.8,
		BranchRatio:      0.10,
		BranchMissRate:   0.006,
		MemAccessRate:    0.006,
		L1DRate:          0.45,
		L1IRate:          0.08,
		UopFactor:        1.40,
	},
	// Memcached and Web-Search drive the Fig. 1 tail-latency
	// characterisation experiments (Sec. II-A).
	"memcached": {
		Name:             "memcached",
		MaxLoadRPS:       32000,
		RhoMax:           0.75,
		WorkSigma:        0.35,
		FreqSensitivity:  0.65,
		SerialFraction:   0.002,
		BWPerWork:        0.35,
		BWSensitivity:    1.8,
		CacheMB:          10,
		CacheSensitivity: 1.4,
		IPCBase:          0.9,
		BranchRatio:      0.16,
		BranchMissRate:   0.010,
		MemAccessRate:    0.014,
		L1DRate:          0.36,
		L1IRate:          0.09,
		UopFactor:        1.20,
	},
	"web-search": {
		Name:             "web-search",
		MaxLoadRPS:       1200,
		RhoMax:           0.85,
		WorkSigma:        0.45,
		FreqSensitivity:  0.85,
		SerialFraction:   0.006,
		BWPerWork:        0.60,
		BWSensitivity:    1.1,
		CacheMB:          24,
		CacheSensitivity: 1.0,
		IPCBase:          1.4,
		BranchRatio:      0.21,
		BranchMissRate:   0.020,
		MemAccessRate:    0.010,
		L1DRate:          0.37,
		L1IRate:          0.12,
		UopFactor:        1.30,
	},
}

// TailbenchNames lists the four Tailbench services of the evaluation in
// the paper's Table II order.
func TailbenchNames() []string { return []string{"masstree", "xapian", "moses", "img-dnn"} }

// Lookup returns the built-in profile with the given name.
func Lookup(name string) (Profile, error) {
	p, ok := builtin[name]
	if !ok {
		return Profile{}, fmt.Errorf("service: unknown profile %q", name)
	}
	return p, nil
}

// MustLookup is Lookup for known-good names; it panics on failure.
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all built-in profile names (unordered).
func Names() []string {
	out := make([]string, 0, len(builtin))
	for n := range builtin {
		out = append(out, n)
	}
	return out
}
