// Package service models latency-critical cloud services as open-loop
// queueing systems. A service receives Poisson request arrivals; each
// request carries a log-normally distributed amount of work (measured in
// GHz·core·seconds); the cores allocated to the service form a fluid
// server whose aggregate capacity depends on core count, per-core DVFS
// setting, the service's frequency sensitivity, software scalability and
// the interference inflation imposed by colocated services. This
// reproduces the behaviours Twig's controller exploits: tail latency
// rises with load, falls with cores and frequency, and blows up
// exponentially at saturation (the Table II capacity knee).
package service

import (
	"fmt"
	"math"
	"sort"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/rng"
)

// Profile is the static characterisation of one service.
type Profile struct {
	// Name identifies the service ("masstree", "moses", ...).
	Name string
	// MaxLoadRPS is the saturation load with a full socket at the
	// highest DVFS setting (Table II).
	MaxLoadRPS float64
	// RhoMax is the target utilisation of a full socket at MaxLoadRPS;
	// it calibrates the mean work per request.
	RhoMax float64
	// WorkSigma is the σ of the log-normal request-work distribution;
	// larger values give heavier latency tails.
	WorkSigma float64
	// FreqSensitivity α ∈ [0,1]: the fraction of request work that
	// scales with core frequency (compute-bound ≈ 1, memory-bound < 1).
	FreqSensitivity float64
	// SerialFraction is the Amdahl serial fraction limiting software
	// scalability across cores.
	SerialFraction float64

	// Interference characterisation.
	// BWPerWork is the memory bandwidth demand in GB per unit of work.
	BWPerWork float64
	// BWSensitivity scales how much bandwidth contention inflates work.
	BWSensitivity float64
	// CacheMB is the LLC footprint the service wants.
	CacheMB float64
	// CacheSensitivity scales how much cache pressure inflates work.
	CacheSensitivity float64

	// Microarchitectural rates used to synthesise PMCs.
	IPCBase        float64 // instructions per cycle when uncontended
	BranchRatio    float64 // branch instructions per instruction
	BranchMissRate float64 // mispredictions per branch
	MemAccessRate  float64 // LLC-bound accesses per instruction
	L1DRate        float64 // L1D accesses per instruction
	L1IRate        float64 // L1I accesses per instruction
	UopFactor      float64 // µops per instruction
}

// ReferenceFreqGHz is the frequency that defines one unit of work per
// core-second (the platform's maximum DVFS setting).
const ReferenceFreqGHz = 2.0

// MeanWork returns the calibrated mean request work in GHz·core·seconds:
// at MaxLoadRPS a full socket of fullCores cores at the reference
// frequency runs at utilisation RhoMax.
func (p Profile) MeanWork(fullCores int) float64 {
	return p.RhoMax * float64(fullCores) * ReferenceFreqGHz / p.MaxLoadRPS
}

// CapacityGHz returns the aggregate service capacity, in work units per
// second, of an allocation described by per-core (shareₖ, freqₖ) pairs,
// before interference inflation. Frequency sensitivity blends the actual
// frequency with the reference; the Amdahl term models software
// scalability limits.
func (p Profile) CapacityGHz(shares, freqs []float64) float64 {
	if len(shares) != len(freqs) {
		panic("service: shares/freqs length mismatch")
	}
	var total, effCores float64
	for i, sh := range shares {
		if sh <= 0 {
			continue
		}
		rate := p.FreqSensitivity*freqs[i] + (1-p.FreqSensitivity)*ReferenceFreqGHz
		total += sh * rate
		effCores += sh
	}
	if effCores > 1 && p.SerialFraction > 0 {
		total /= 1 + p.SerialFraction*(effCores-1)
	}
	return total
}

// Request is one in-flight request.
type Request struct {
	Arrival float64 // absolute seconds
	Work    float64 // remaining work, GHz·core·seconds
}

// IntervalStats summarises one monitoring interval of a service.
type IntervalStats struct {
	// Arrivals and Completed count requests in this interval.
	Arrivals  int
	Completed int
	// P99Ms and P95Ms are tail-latency percentiles over the trailing
	// measurement window (LatencyWindowIntervals); MeanMs is the mean
	// sojourn of requests completed this interval. All in milliseconds.
	P99Ms, P95Ms, MeanMs float64
	// MaxMs is the worst sojourn observed this interval.
	MaxMs float64
	// QueueLen is the backlog carried into the next interval.
	QueueLen int
	// WorkDone is the work processed, in GHz·core·seconds.
	WorkDone float64
	// BusySeconds is the wall-clock time the fluid server was busy.
	BusySeconds float64
	// CapacityGHz is the capacity that was available.
	CapacityGHz float64
	// Dropped counts arrivals discarded because the backlog cap was hit
	// (deep overload only).
	Dropped int
	// InflationApplied is the interference inflation factor in effect.
	InflationApplied float64
}

// LatencyWindowIntervals is the number of trailing monitoring intervals
// whose completed-request sojourns back the reported p99 — the log-file
// interface of Sec. IV computes the latency distribution over a short
// trailing window rather than a single second, which keeps the
// percentile estimate stable at moderate request rates.
const LatencyWindowIntervals = 2

// Instance is the mutable runtime state of one service.
type Instance struct {
	Profile  Profile
	meanWork float64
	lnMu     float64

	rng     *rng.Rand
	pending []Request
	now     float64

	// window holds the per-interval sojourn samples (seconds) backing
	// the trailing-window latency percentiles.
	window [][]float64

	// maxBacklog bounds the pending queue during deep saturation.
	maxBacklog int
}

// NewInstance creates a service instance calibrated for a full socket of
// fullCores cores.
func NewInstance(p Profile, fullCores int, seed int64) *Instance {
	if p.MaxLoadRPS <= 0 || p.RhoMax <= 0 {
		panic(fmt.Sprintf("service: profile %q missing load calibration", p.Name))
	}
	mean := p.MeanWork(fullCores)
	// The pending queue is bounded at roughly a tenth of a second of
	// maximum load — real LC services bound connection backlogs at a few
	// hundred requests, and anything deeper is hopeless once it is far
	// past the tail-latency target. Saturation therefore recovers within
	// one monitoring interval, as it does on the paper's testbed where
	// queues hold milliseconds of work.
	backlog := int(0.1 * p.MaxLoadRPS)
	if backlog < 200 {
		backlog = 200
	}
	return &Instance{
		Profile:    p,
		meanWork:   mean,
		lnMu:       math.Log(mean) - p.WorkSigma*p.WorkSigma/2,
		rng:        rng.New(seed),
		maxBacklog: backlog,
	}
}

// MeanWork returns the calibrated mean request work.
func (s *Instance) MeanWork() float64 { return s.meanWork }

// Now returns the instance's current simulated time in seconds.
func (s *Instance) Now() float64 { return s.now }

// QueueLen returns the current backlog.
func (s *Instance) QueueLen() int { return len(s.pending) }

// ResetQueue drops all pending requests (used between experiments).
func (s *Instance) ResetQueue() { s.pending = s.pending[:0] }

// drawWork samples one request's work demand.
func (s *Instance) drawWork() float64 {
	return math.Exp(s.lnMu + s.Profile.WorkSigma*s.rng.NormFloat64())
}

// RunInterval advances the service by dt seconds with Poisson arrivals at
// rateRPS and the given aggregate capacity (work units per second, after
// frequency scaling) under the given interference inflation factor
// (≥ 1; inflation multiplies every request's work).
func (s *Instance) RunInterval(rateRPS, capacity, inflation, dt float64) IntervalStats {
	if inflation < 1 {
		inflation = 1
	}
	start := s.now
	end := start + dt
	st := IntervalStats{CapacityGHz: capacity, InflationApplied: inflation}

	// Generate Poisson arrivals within [start, end).
	var arrivals []Request
	if rateRPS > 0 {
		t := start
		for {
			t += s.rng.ExpFloat64() / rateRPS
			if t >= end {
				break
			}
			arrivals = append(arrivals, Request{Arrival: t, Work: s.drawWork() * inflation})
		}
	}
	st.Arrivals = len(arrivals)

	// The backlog requests arrived earlier; process FIFO by arrival.
	queue := s.pending
	s.pending = nil

	var sojourns []float64
	free := start // when the fluid server is next free
	ai := 0
	pop := func() (Request, bool) {
		if len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			return r, true
		}
		if ai < len(arrivals) {
			r := arrivals[ai]
			ai++
			return r, true
		}
		return Request{}, false
	}

	if capacity <= 0 {
		// No capacity: everything queues.
		s.pending = append(queue, arrivals[ai:]...)
		st.QueueLen = len(s.pending)
		s.now = end
		if len(s.pending) > 0 {
			st.P99Ms = (end - s.pending[0].Arrival) * 1000
			st.MaxMs = st.P99Ms
			st.MeanMs = st.P99Ms
		}
		s.capBacklog(&st)
		return st
	}

	for {
		r, ok := pop()
		if !ok {
			break
		}
		begin := free
		if r.Arrival > begin {
			begin = r.Arrival
		}
		if begin >= end {
			// Cannot start this interval: requeue untouched.
			s.pending = append(s.pending, r)
			continue
		}
		need := r.Work / capacity
		finish := begin + need
		if finish <= end {
			st.WorkDone += r.Work
			st.BusySeconds += finish - begin
			free = finish
			sojourns = append(sojourns, finish-r.Arrival)
			st.Completed++
			continue
		}
		// Partially processed: consume the remaining interval.
		processed := (end - begin) * capacity
		st.WorkDone += processed
		st.BusySeconds += end - begin
		r.Work -= processed
		s.pending = append(s.pending, r)
		free = end
	}

	s.now = end
	st.QueueLen = len(s.pending)
	s.capBacklog(&st)

	// Push this interval's samples into the trailing window.
	s.window = append(s.window, sojourns)
	if len(s.window) > LatencyWindowIntervals {
		s.window = s.window[1:]
	}
	var windowed []float64
	for _, w := range s.window {
		windowed = append(windowed, w...)
	}

	if len(sojourns) > 0 {
		st.MaxMs = sojourns[len(sojourns)-1] * 1000 // sorted below first
	}
	if len(windowed) > 0 {
		sort.Float64s(windowed)
		st.P99Ms = quantileSorted(windowed, 0.99) * 1000
		st.P95Ms = quantileSorted(windowed, 0.95) * 1000
	}
	if len(sojourns) > 0 {
		sort.Float64s(sojourns)
		st.MaxMs = sojourns[len(sojourns)-1] * 1000
		var sum float64
		for _, v := range sojourns {
			sum += v
		}
		st.MeanMs = sum / float64(len(sojourns)) * 1000
	}
	if len(windowed) == 0 && len(s.pending) > 0 {
		// Nothing completed recently: report the age of the oldest
		// queued request as the latency proxy the log-file would show.
		age := (end - s.pending[0].Arrival) * 1000
		st.P99Ms, st.P95Ms, st.MeanMs, st.MaxMs = age, age, age, age
	}
	return st
}

// ResetWindow clears the trailing latency window (used with ResetQueue).
func (s *Instance) ResetWindow() { s.window = nil }

func (s *Instance) capBacklog(st *IntervalStats) {
	if len(s.pending) > s.maxBacklog {
		st.Dropped = len(s.pending) - s.maxBacklog
		s.pending = s.pending[st.Dropped:]
	}
}

// EncodeState writes the instance's mutable runtime state: clock,
// in-flight queue, trailing latency window and RNG position. Static
// calibration (meanWork, lnMu, maxBacklog) is re-derived from the
// profile at construction; the profile name goes in as a fingerprint so
// a checkpoint cannot restore into the wrong service.
func (s *Instance) EncodeState(e *checkpoint.Encoder) {
	e.String(s.Profile.Name)
	e.F64(s.now)
	e.Int(len(s.pending))
	for _, r := range s.pending {
		e.F64(r.Arrival)
		e.F64(r.Work)
	}
	e.Int(len(s.window))
	for _, w := range s.window {
		e.F64s(w)
	}
	s.rng.Source().EncodeState(e)
}

// DecodeState restores state written by EncodeState into an instance
// built from the same profile.
func (s *Instance) DecodeState(d *checkpoint.Decoder) error {
	name := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	if name != s.Profile.Name {
		return fmt.Errorf("service: checkpoint is for %q, this instance runs %q", name, s.Profile.Name)
	}
	s.now = d.F64()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n*16 > d.Remaining() {
		return fmt.Errorf("service: pending queue length %d exceeds payload", n)
	}
	s.pending = s.pending[:0]
	for i := 0; i < n; i++ {
		s.pending = append(s.pending, Request{Arrival: d.F64(), Work: d.F64()})
	}
	m := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if m < 0 || m > LatencyWindowIntervals {
		return fmt.Errorf("service: latency window of %d intervals exceeds maximum %d", m, LatencyWindowIntervals)
	}
	s.window = nil
	for i := 0; i < m; i++ {
		s.window = append(s.window, d.F64s())
	}
	return s.rng.Source().DecodeState(d)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
