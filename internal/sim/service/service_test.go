package service

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fullShares(n int, freq float64) (shares, freqs []float64) {
	shares = make([]float64, n)
	freqs = make([]float64, n)
	for i := range shares {
		shares[i] = 1
		freqs[i] = freq
	}
	return
}

func TestProfilesLookup(t *testing.T) {
	for _, name := range TailbenchNames() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.MaxLoadRPS <= 0 {
			t.Fatalf("profile %q = %+v", name, p)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	if len(Names()) < 6 {
		t.Fatalf("Names = %v", Names())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup should panic")
		}
	}()
	MustLookup("nope")
}

func TestTableIIMaxLoads(t *testing.T) {
	want := map[string]float64{"masstree": 2400, "xapian": 1000, "moses": 2800, "img-dnn": 1100}
	for name, rps := range want {
		if p := MustLookup(name); p.MaxLoadRPS != rps {
			t.Fatalf("%s MaxLoadRPS = %v, want %v (Table II)", name, p.MaxLoadRPS, rps)
		}
	}
}

func TestMeanWorkCalibration(t *testing.T) {
	p := MustLookup("masstree")
	// At max load on 18 reference-frequency cores, utilisation = RhoMax.
	mw := p.MeanWork(18)
	util := p.MaxLoadRPS * mw / (18 * ReferenceFreqGHz)
	if math.Abs(util-p.RhoMax) > 1e-9 {
		t.Fatalf("utilisation = %v, want %v", util, p.RhoMax)
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	p := MustLookup("xapian")
	sh4, fq4 := fullShares(4, 2.0)
	sh8, fq8 := fullShares(8, 2.0)
	if p.CapacityGHz(sh8, fq8) <= p.CapacityGHz(sh4, fq4) {
		t.Fatal("more cores must give more capacity")
	}
	shLo, fqLo := fullShares(4, 1.2)
	if p.CapacityGHz(sh4, fq4) <= p.CapacityGHz(shLo, fqLo) {
		t.Fatal("higher frequency must give more capacity")
	}
}

func TestCapacityFrequencySensitivity(t *testing.T) {
	compute := Profile{FreqSensitivity: 1}
	memory := Profile{FreqSensitivity: 0.2}
	sh, fLo := fullShares(1, 1.2)
	_, fHi := fullShares(1, 2.0)
	gainCompute := compute.CapacityGHz(sh, fHi) / compute.CapacityGHz(sh, fLo)
	gainMemory := memory.CapacityGHz(sh, fHi) / memory.CapacityGHz(sh, fLo)
	if gainCompute <= gainMemory {
		t.Fatalf("compute-bound gain %v must exceed memory-bound gain %v", gainCompute, gainMemory)
	}
	if math.Abs(gainCompute-2.0/1.2) > 1e-9 {
		t.Fatalf("fully compute-bound gain = %v", gainCompute)
	}
}

func TestAmdahlPenalty(t *testing.T) {
	serial := Profile{FreqSensitivity: 1, SerialFraction: 0.05}
	ideal := Profile{FreqSensitivity: 1}
	sh, fq := fullShares(18, 2.0)
	if serial.CapacityGHz(sh, fq) >= ideal.CapacityGHz(sh, fq) {
		t.Fatal("serial fraction must reduce capacity")
	}
	sh1, fq1 := fullShares(1, 2.0)
	if math.Abs(serial.CapacityGHz(sh1, fq1)-ideal.CapacityGHz(sh1, fq1)) > 1e-9 {
		t.Fatal("single core must be unaffected by serial fraction")
	}
}

func TestRunIntervalLowLoadLatency(t *testing.T) {
	p := MustLookup("masstree")
	inst := NewInstance(p, 18, 1)
	sh, fq := fullShares(18, 2.0)
	capGHz := p.CapacityGHz(sh, fq)
	var p99s []float64
	for i := 0; i < 30; i++ {
		st := inst.RunInterval(0.2*p.MaxLoadRPS, capGHz, 1, 1)
		if i >= 10 {
			p99s = append(p99s, st.P99Ms)
		}
	}
	m := mean(p99s)
	if m <= 0 || m > 3 {
		t.Fatalf("low-load p99 = %v ms, want small positive", m)
	}
}

func TestRunIntervalOverloadGrows(t *testing.T) {
	p := MustLookup("masstree")
	inst := NewInstance(p, 18, 1)
	sh, fq := fullShares(4, 2.0) // far below the 50% load requirement
	capGHz := p.CapacityGHz(sh, fq)
	// With the bounded backlog, overload saturates within a couple of
	// intervals: latency jumps far past any sane target and a backlog
	// persists until capacity returns.
	var prev float64
	for i := 0; i < 10; i++ {
		st := inst.RunInterval(0.5*p.MaxLoadRPS, capGHz, 1, 1)
		prev = st.P99Ms
		if i >= 2 && prev < 50 {
			t.Fatalf("interval %d: overload p99 = %v ms, expected saturation", i, prev)
		}
		if i == 9 && st.QueueLen == 0 {
			t.Fatal("overload must leave a backlog")
		}
	}
	if prev < 100 {
		t.Fatalf("overload p99 = %v ms, expected saturation-level latency", prev)
	}
}

func TestRunIntervalInflationHurts(t *testing.T) {
	p := MustLookup("masstree")
	sh, fq := fullShares(10, 2.0)
	capGHz := p.CapacityGHz(sh, fq)
	clean := NewInstance(p, 18, 7)
	dirty := NewInstance(p, 18, 7)
	var cl, dl []float64
	for i := 0; i < 40; i++ {
		c := clean.RunInterval(0.4*p.MaxLoadRPS, capGHz, 1, 1)
		d := dirty.RunInterval(0.4*p.MaxLoadRPS, capGHz, 1.4, 1)
		if i >= 10 {
			cl = append(cl, c.P99Ms)
			dl = append(dl, d.P99Ms)
		}
	}
	if mean(dl) <= mean(cl) {
		t.Fatalf("interference inflation must raise latency: %v vs %v", mean(dl), mean(cl))
	}
}

func TestRunIntervalZeroCapacityQueuesEverything(t *testing.T) {
	p := MustLookup("xapian")
	inst := NewInstance(p, 18, 2)
	st := inst.RunInterval(100, 0, 1, 1)
	if st.Completed != 0 {
		t.Fatal("no capacity yet requests completed")
	}
	if st.QueueLen != st.Arrivals {
		t.Fatalf("queue %d != arrivals %d", st.QueueLen, st.Arrivals)
	}
	if st.P99Ms <= 0 {
		t.Fatal("latency proxy must be positive while queueing")
	}
	// Capacity restored: the backlog drains.
	sh, fq := fullShares(18, 2.0)
	st2 := inst.RunInterval(0, p.CapacityGHz(sh, fq), 1, 1)
	if st2.Completed == 0 || inst.QueueLen() != 0 {
		t.Fatalf("backlog should drain: completed=%d queue=%d", st2.Completed, inst.QueueLen())
	}
}

func TestWorkConservation(t *testing.T) {
	// Work in = work done + work still queued (within FP tolerance),
	// checked over a run that includes overload and recovery.
	p := MustLookup("moses")
	inst := NewInstance(p, 18, 3)
	sh, fq := fullShares(6, 1.6)
	lowCap := p.CapacityGHz(sh, fq)
	shF, fqF := fullShares(18, 2.0)
	fullCap := p.CapacityGHz(shF, fqF)

	var done float64
	for i := 0; i < 10; i++ {
		st := inst.RunInterval(0.9*p.MaxLoadRPS, lowCap, 1, 1)
		done += st.WorkDone
		if st.BusySeconds > 1+1e-9 {
			t.Fatalf("busy %v > interval", st.BusySeconds)
		}
	}
	for i := 0; i < 40 && inst.QueueLen() > 0; i++ {
		st := inst.RunInterval(0, fullCap, 1, 1)
		done += st.WorkDone
	}
	if inst.QueueLen() != 0 {
		t.Fatal("queue did not drain")
	}
	if done <= 0 {
		t.Fatal("no work processed")
	}
}

// Property: completed + queued == arrivals over any single interval
// starting from an empty queue.
func TestArrivalAccounting(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}
	p := MustLookup("img-dnn")
	f := func(seed int64) bool {
		inst := NewInstance(p, 18, seed)
		capGHz := 5 + float64(seed%20)
		st := inst.RunInterval(500, capGHz, 1, 1)
		return st.Completed+st.QueueLen == st.Arrivals
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDrawWorkDistribution(t *testing.T) {
	p := MustLookup("masstree")
	inst := NewInstance(p, 18, 11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		w := inst.drawWork()
		if w <= 0 {
			t.Fatal("work must be positive")
		}
		sum += w
	}
	got := sum / n
	if math.Abs(got-inst.MeanWork())/inst.MeanWork() > 0.05 {
		t.Fatalf("empirical mean work %v vs calibrated %v", got, inst.MeanWork())
	}
}

func TestBadProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInstance(Profile{Name: "x"}, 18, 1)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
