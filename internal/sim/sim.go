// Package sim wires the simulated platform, services, interference,
// power and PMC models into a stepped server simulation: one Step is one
// monitoring interval (1 s). Controllers — Twig and the baselines — only
// interact with the world through what the paper's implementation could
// observe (tail latency from the service log, per-service PMCs, RAPL
// socket power) and control (core affinity, per-core DVFS, hotplug).
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/twig-sched/twig/internal/rng"
	"github.com/twig-sched/twig/internal/sim/batch"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/interference"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/power"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Config assembles a simulated server.
type Config struct {
	Platform     platform.Config
	Interference interference.Config
	Power        power.Config
	// ManagedSocket is the socket hosting the LC servers (clients sit
	// on the other socket, per the Tailbench loopback configuration).
	ManagedSocket int
	// PMCNoise is the relative noise of counter measurements.
	PMCNoise float64
	// MeasurementSeed seeds measurement noise (PMC + RAPL).
	MeasurementSeed int64
	// Batch, when non-nil, adds a best-effort batch workload that soaks
	// every online managed core no LC service owns — the colocation
	// setting Heracles and PARTIES target, where reclaimed resources
	// become throughput instead of idle savings.
	Batch *batch.Spec
	// Faults, when non-nil and non-zero, injects the scenario's
	// deterministic fault schedule into the run (sensor dropout and
	// corruption, lost actuation, core failures, crash episodes, flash
	// crowds). The schedule is seeded from MeasurementSeed and does not
	// depend on controller behaviour.
	Faults *faults.Scenario
	// LatencyTaxMs is a constant network round-trip added to every
	// reported latency line (p99/p95/mean/max): the inter-tier tax a
	// cloud-edge scenario charges requests that traverse the WAN to
	// reach this node. Zero for a single-tier deployment.
	LatencyTaxMs float64
}

// DefaultConfig returns the paper's evaluation platform.
func DefaultConfig() Config {
	return Config{
		Platform:      platform.DefaultConfig(),
		Interference:  interference.DefaultConfig(),
		Power:         power.DefaultConfig(),
		ManagedSocket: 1,
		PMCNoise:      0.02,
	}
}

// ServiceSpec attaches a QoS target to a service profile.
type ServiceSpec struct {
	Profile     service.Profile
	QoSTargetMs float64
	Seed        int64
}

// Allocation is the resource assignment of one service for the next
// interval: a set of cores, all at one DVFS setting (matching the
// papers' managers, which pick one frequency per service).
type Allocation struct {
	Cores   []int
	FreqGHz float64
	// CacheWays, when positive, reserves that many LLC ways for the
	// service (Intel CAT). Zero leaves the service competing for the
	// unreserved capacity.
	CacheWays int
}

// Assignment is the full mapping decision for one interval.
type Assignment struct {
	PerService []Allocation
	// IdleFreqGHz, when positive, is applied to online cores no service
	// owns (Twig's mapper sets the lowest DVFS state to save power).
	IdleFreqGHz float64
}

// ServiceStats is everything observable about one service after a step.
type ServiceStats struct {
	service.IntervalStats
	// PMCs are the raw counters; NormPMCs are feature-scaled to [0,1]
	// by the calibration maxima.
	PMCs     pmc.Sample
	NormPMCs pmc.Sample
	// QoSTargetMs echoes the target for convenience.
	QoSTargetMs float64
	// NumCores and FreqGHz echo the applied allocation.
	NumCores int
	FreqGHz  float64
	// OfferedRPS is the load that was applied.
	OfferedRPS float64
}

// StepResult is the outcome of one monitoring interval.
type StepResult struct {
	Time     int
	Services []ServiceStats
	// Batch reports the best-effort workload's progress (zero when no
	// batch is configured).
	Batch batch.Stats
	// PowerW is the RAPL measurement of the managed socket (NaN when an
	// injected RAPL read failure is active); TruePowerW is the noiseless
	// value; EnergyJ is TruePowerW × 1 s.
	PowerW     float64
	TruePowerW float64
	EnergyJ    float64
	// Faults lists the injected faults active during this interval
	// (empty without a fault scenario).
	Faults []faults.Event
}

// Server is a running simulated node.
type Server struct {
	cfg    Config
	plat   *platform.Platform
	specs  []ServiceSpec
	insts  []*service.Instance
	interf *interference.Model
	pow    *power.Model
	synth  *pmc.Synthesizer
	maxima pmc.Sample

	// Measurement-noise streams, retained for checkpointing.
	powSrc   *rng.Source
	synthSrc *rng.Source

	clock      int
	energyJ    float64
	batchWorkJ float64

	// Fault-injection state.
	inj         *faults.Injector
	downed      map[int]bool // cores offlined by injected CoreFail
	appliedAsg  Assignment   // last assignment actually actuated
	haveApplied bool
	crashPrev   []bool // crash activity in the previous interval
	warmupLeft  []int  // cold-restart warm-up intervals remaining
	lastLat     []ServiceStats
	haveLat     []bool
}

// NewServer builds a simulated server hosting the given services.
func NewServer(cfg Config, specs []ServiceSpec) *Server {
	if !isFinite(cfg.LatencyTaxMs) || cfg.LatencyTaxMs < 0 {
		panic(fmt.Sprintf("sim: latency tax %v ms is not finite and non-negative", cfg.LatencyTaxMs))
	}
	plat := platform.New(cfg.Platform)
	mrng := rng.New(cfg.MeasurementSeed + 1)
	srng := rng.New(cfg.MeasurementSeed + 2)
	s := &Server{
		cfg:       cfg,
		plat:      plat,
		specs:     specs,
		interf:    interference.New(cfg.Interference),
		pow:       power.New(cfg.Power, mrng.Rand),
		synth:     pmc.NewSynthesizer(srng.Rand, cfg.PMCNoise),
		powSrc:    mrng.Source(),
		synthSrc:  srng.Source(),
		maxima:    pmc.CalibrationMaxima(cfg.Platform.CoresPerSocket, maxFreqOf(cfg)),
		downed:    map[int]bool{},
		crashPrev: make([]bool, len(specs)),
		warmupLeft: make([]int, len(specs)),
		lastLat:   make([]ServiceStats, len(specs)),
		haveLat:   make([]bool, len(specs)),
	}
	for i, spec := range specs {
		s.insts = append(s.insts, service.NewInstance(spec.Profile, cfg.Platform.CoresPerSocket, spec.Seed+int64(i)))
	}
	if cfg.Faults != nil && !cfg.Faults.IsZero() {
		s.inj = faults.NewInjector(*cfg.Faults, cfg.MeasurementSeed+3, len(specs), s.ManagedCores())
	}
	return s
}

// ErrFaultsArmed is returned by AddService and RemoveService when a
// fault scenario is armed: the injector's deterministic schedule is
// drawn per-service at construction, so changing the membership would
// silently change every subsequent fault draw and break reproducibility.
var ErrFaultsArmed = errors.New("sim: service membership is fixed while a fault scenario is armed")

// AddService admits a new service to the running server. The instance
// starts cold (empty queue, no affinity) at the current clock; existing
// services keep their state and indices. The caller is responsible for
// seeding spec.Seed deterministically — unlike NewServer, no per-index
// offset is added. Returns ErrFaultsArmed when fault injection is on.
func (s *Server) AddService(spec ServiceSpec) error {
	if s.inj != nil {
		return ErrFaultsArmed
	}
	s.specs = append(s.specs, spec)
	s.insts = append(s.insts, service.NewInstance(spec.Profile, s.cfg.Platform.CoresPerSocket, spec.Seed))
	s.crashPrev = append(s.crashPrev, false)
	s.warmupLeft = append(s.warmupLeft, 0)
	s.lastLat = append(s.lastLat, ServiceStats{})
	s.haveLat = append(s.haveLat, false)
	if s.appliedAsg.PerService != nil {
		s.appliedAsg.PerService = append(s.appliedAsg.PerService, Allocation{})
	}
	return nil
}

// RemoveService evicts service i. Per-service state slices are
// compacted and the platform's core-affinity owner lists are remapped so
// surviving services keep their cores under their shifted indices.
// Returns ErrFaultsArmed when fault injection is on.
func (s *Server) RemoveService(i int) error {
	if s.inj != nil {
		return ErrFaultsArmed
	}
	if i < 0 || i >= len(s.insts) {
		return fmt.Errorf("sim: service %d out of range [0,%d)", i, len(s.insts))
	}
	s.specs = append(s.specs[:i], s.specs[i+1:]...)
	s.insts = append(s.insts[:i], s.insts[i+1:]...)
	s.crashPrev = append(s.crashPrev[:i], s.crashPrev[i+1:]...)
	s.warmupLeft = append(s.warmupLeft[:i], s.warmupLeft[i+1:]...)
	s.lastLat = append(s.lastLat[:i], s.lastLat[i+1:]...)
	s.haveLat = append(s.haveLat[:i], s.haveLat[i+1:]...)
	if s.appliedAsg.PerService != nil && i < len(s.appliedAsg.PerService) {
		s.appliedAsg.PerService = append(s.appliedAsg.PerService[:i], s.appliedAsg.PerService[i+1:]...)
	}
	s.plat.RemapOwners(func(svc int) (int, bool) {
		switch {
		case svc == i:
			return 0, false
		case svc > i:
			return svc - 1, true
		default:
			return svc, true
		}
	})
	return nil
}

// Platform exposes the hardware state (controllers use it to enumerate
// managed cores).
func (s *Server) Platform() *platform.Platform { return s.plat }

// ManagedCores returns the core IDs of the managed socket.
func (s *Server) ManagedCores() []int { return s.plat.SocketCores(s.cfg.ManagedSocket) }

// NumServices returns the number of hosted services.
func (s *Server) NumServices() int { return len(s.insts) }

// Spec returns the i-th service spec.
func (s *Server) Spec(i int) ServiceSpec { return s.specs[i] }

// Clock returns the simulated time in seconds.
func (s *Server) Clock() int { return s.clock }

// EnergyJ returns the cumulative managed-socket energy.
func (s *Server) EnergyJ() float64 { return s.energyJ }

// BatchWork returns the cumulative best-effort batch work completed, in
// GHz·core·seconds (0 when no batch workload is configured).
func (s *Server) BatchWork() float64 { return s.batchWorkJ }

// MaxPowerW returns the stress-microbenchmark socket power used to
// normalise the power reward.
func (s *Server) MaxPowerW() float64 {
	return s.pow.MaxPower(s.cfg.Platform.CoresPerSocket, maxFreqOf(s.cfg))
}

// maxFreqOf is the machine's highest DVFS setting (per-config for
// heterogeneous SKUs, the paper's 2.0 GHz by default).
func maxFreqOf(cfg Config) float64 {
	_, hi := cfg.Platform.FreqRange()
	return hi
}

// FreqRange returns the machine's DVFS bounds; fallback assignments use
// it instead of the paper-platform constants so they stay legal on
// heterogeneous SKUs.
func (s *Server) FreqRange() (lo, hi float64) { return s.cfg.Platform.FreqRange() }

// IdlePowerW returns the all-idle managed-socket power.
func (s *Server) IdlePowerW() float64 {
	return s.pow.IdlePower(s.cfg.Platform.CoresPerSocket)
}

// CalibrationMaxima exposes the PMC normalisation vector.
func (s *Server) CalibrationMaxima() pmc.Sample { return s.maxima }

// Validate checks an assignment and load vector without mutating any
// state. It rejects what only a buggy controller could produce: wrong
// slice lengths, core IDs outside the machine, non-finite or negative
// frequencies and loads, and out-of-range cache-way requests.
// Assignments to offline (failed) cores are NOT errors — on real
// hardware the affinity write is simply lost — and are dropped by Step.
func (s *Server) Validate(asg Assignment, loads []float64) error {
	if len(asg.PerService) != len(s.insts) || len(loads) != len(s.insts) {
		return fmt.Errorf("sim: %d services, got %d allocations and %d loads",
			len(s.insts), len(asg.PerService), len(loads))
	}
	for i, l := range loads {
		if !isFinite(l) || l < 0 {
			return fmt.Errorf("sim: service %d offered load %v is not a finite non-negative rate", i, l)
		}
	}
	n := s.plat.NumCores()
	for i, alloc := range asg.PerService {
		for _, c := range alloc.Cores {
			if c < 0 || c >= n {
				return fmt.Errorf("sim: service %d assigned core %d out of range [0,%d)", i, c, n)
			}
		}
		if f := alloc.FreqGHz; !isFinite(f) || f < 0 {
			return fmt.Errorf("sim: service %d frequency %v GHz is not finite and non-negative", i, f)
		}
		if w := alloc.CacheWays; w < 0 || w > platform.NumCacheWays {
			return fmt.Errorf("sim: service %d cache ways %d out of range [0,%d]", i, w, platform.NumCacheWays)
		}
	}
	if f := asg.IdleFreqGHz; !isFinite(f) || f < 0 {
		return fmt.Errorf("sim: idle frequency %v GHz is not finite and non-negative", f)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// MustStep is Step for callers with known-good assignments (tests,
// calibration sweeps, examples); it panics on a validation error.
func (s *Server) MustStep(asg Assignment, loads []float64) StepResult {
	res, err := s.Step(asg, loads)
	if err != nil {
		panic(err)
	}
	return res
}

// Step advances the simulation by one second under the given assignment
// and offered loads (one RPS per service). A malformed assignment or
// load vector returns an error without advancing the clock, so a buggy
// controller cannot kill a run; see Validate for what is rejected.
func (s *Server) Step(asg Assignment, loads []float64) (StepResult, error) {
	if err := s.Validate(asg, loads); err != nil {
		return StepResult{}, err
	}

	// Draw this interval's injected faults and partition them by effect.
	var active []faults.Event
	if s.inj != nil {
		active = append([]faults.Event(nil), s.inj.Advance()...)
	}
	k := len(s.insts)
	var (
		raplFail, actuationDrop bool

		failedCores = map[int]bool{}
		pmcDrop     = make([]bool, k)
		pmcCorrupt  = make([][]faults.Event, k)
		latDrop     = make([]bool, k)
		latStale    = make([]bool, k)
		crashed     = make([]bool, k)
		spike       = make([]float64, k)
	)
	for i := range spike {
		spike[i] = 1
	}
	for _, e := range active {
		switch e.Kind {
		case faults.RAPLFail:
			raplFail = true
		case faults.ActuationDrop:
			actuationDrop = true
		case faults.CoreFail:
			failedCores[e.Core] = true
		case faults.PMCDropout:
			pmcDrop[e.Service] = true
		case faults.PMCCorrupt:
			pmcCorrupt[e.Service] = append(pmcCorrupt[e.Service], e)
		case faults.LatencyDropout:
			latDrop[e.Service] = true
		case faults.LatencyStale:
			latStale[e.Service] = true
		case faults.ServiceCrash:
			crashed[e.Service] = true
		case faults.LoadSpike:
			spike[e.Service] *= e.Magnitude
		}
	}

	// Transient core failures: offline newly failed cores, restore the
	// ones whose fault expired.
	var recovered []int
	for c := range s.downed {
		if !failedCores[c] {
			recovered = append(recovered, c)
		}
	}
	for _, c := range recovered {
		s.plat.SetOnline(c, true)
		delete(s.downed, c)
	}
	for c := range failedCores {
		if !s.downed[c] {
			s.plat.SetOnline(c, false)
			s.downed[c] = true
		}
	}

	// Actuate, unless this interval's DVFS/affinity writes are dropped,
	// in which case the previously applied settings persist.
	eff := asg
	if actuationDrop {
		if s.haveApplied {
			eff = s.appliedAsg
		} else {
			eff = Assignment{PerService: make([]Allocation, k)}
		}
	} else {
		s.applyAssignment(asg)
		s.appliedAsg = cloneAssignment(asg)
		s.haveApplied = true
	}

	// Flash crowds multiply the offered load.
	effLoads := append([]float64(nil), loads...)
	for i := range effLoads {
		effLoads[i] *= spike[i]
	}
	loads = effLoads

	// Pre-compute per-service shares, frequencies and capacities.
	type allocState struct {
		cores   []int
		shares  []float64
		freqs   []float64
		cap     float64
		avgFreq float64
	}
	states := make([]allocState, len(s.insts))
	for i, inst := range s.insts {
		cores := s.plat.ServiceCores(i)
		st := allocState{cores: cores}
		var freqSum float64
		for _, c := range cores {
			st.shares = append(st.shares, s.plat.ShareOf(i, c))
			f := s.plat.Core(c).FreqGHz
			st.freqs = append(st.freqs, f)
			freqSum += f
		}
		if len(cores) > 0 {
			st.avgFreq = freqSum / float64(len(cores))
		}
		st.cap = inst.Profile.CapacityGHz(st.shares, st.freqs)
		// A freshly restarted service runs at degraded capacity while
		// caches re-warm and its queue rebuilds.
		if w := s.warmupLeft[i]; w > 0 && !crashed[i] {
			total := s.inj.WarmupS()
			st.cap *= 1 - 0.7*float64(w)/float64(total+1)
			s.warmupLeft[i]--
		}
		states[i] = st
	}

	// Interference: offered bandwidth is bounded by what the service
	// can actually process. A crashed service demands nothing.
	demands := make([]interference.Demand, len(s.insts))
	for i, inst := range s.insts {
		if crashed[i] {
			continue
		}
		offered := loads[i] * inst.MeanWork()
		if offered > states[i].cap {
			offered = states[i].cap
		}
		reservedMB := 0.0
		if w := eff.PerService[i].CacheWays; w > 0 {
			reservedMB = float64(w) / platform.NumCacheWays * s.cfg.Interference.LLCMB
		}
		demands[i] = interference.Demand{
			BandwidthGBs:     offered * inst.Profile.BWPerWork,
			CacheMB:          inst.Profile.CacheMB,
			ReservedMB:       reservedMB,
			BWSensitivity:    inst.Profile.BWSensitivity,
			CacheSensitivity: inst.Profile.CacheSensitivity,
		}
	}
	// The batch workload occupies every online managed core with no LC
	// owner and adds its own pressure on the shared resources.
	var batchCores []int
	var batchCap float64
	if s.cfg.Batch != nil {
		for _, id := range s.ManagedCores() {
			c := s.plat.Core(id)
			if c.Online && len(c.Owners) == 0 {
				batchCores = append(batchCores, id)
				batchCap += c.FreqGHz
			}
		}
		demands = append(demands, interference.Demand{
			BandwidthGBs:     batchCap * s.cfg.Batch.BWPerWork,
			CacheMB:          s.cfg.Batch.CacheMB,
			BWSensitivity:    s.cfg.Batch.Sensitivity,
			CacheSensitivity: s.cfg.Batch.Sensitivity,
		})
	}
	contention := s.interf.Compute(demands)

	// Run the queueing models and gather per-core utilisation.
	util := make(map[int]float64)
	res := StepResult{Time: s.clock, Services: make([]ServiceStats, len(s.insts)), Faults: active}
	for i, inst := range s.insts {
		if crashed[i] {
			// The process is down: in-flight requests are lost on the
			// crash edge, arrivals are rejected, the log emits nothing.
			if !s.crashPrev[i] {
				inst.ResetQueue()
				inst.ResetWindow()
			}
			nan := math.NaN()
			res.Services[i] = ServiceStats{
				IntervalStats: service.IntervalStats{
					P99Ms: nan, P95Ms: nan, MeanMs: nan, MaxMs: nan,
					Dropped: int(loads[i]),
				},
				QoSTargetMs: s.specs[i].QoSTargetMs,
				NumCores:    len(states[i].cores),
				FreqGHz:     states[i].avgFreq,
				OfferedRPS:  loads[i],
			}
			continue
		}
		ist := inst.RunInterval(loads[i], states[i].cap, contention[i].Inflation, 1)
		// The inter-tier network tax rides on every request that reached
		// the log, so it shifts the whole reported latency distribution.
		// Applied before the stale-scrape bookkeeping: a repeated line is
		// a taxed line.
		if tax := s.cfg.LatencyTaxMs; tax > 0 {
			ist.P99Ms += tax
			ist.P95Ms += tax
			ist.MeanMs += tax
			ist.MaxMs += tax
		}
		busyFrac := ist.BusySeconds // dt = 1 s
		var busyCoreSeconds float64
		for j, c := range states[i].cores {
			share := states[i].shares[j]
			util[c] += share * busyFrac
			busyCoreSeconds += share * busyFrac
		}
		gt := pmc.GroundTruth{
			BusyCoreSeconds: busyCoreSeconds,
			AvgFreqGHz:      states[i].avgFreq,
			WorkDone:        ist.WorkDone / ist.InflationApplied,
			Inflation:       ist.InflationApplied,
			LLCMissFactor:   contention[i].LLCMissFactor,
		}
		sample := s.synth.Synthesize(gt, ratesOf(inst.Profile))
		// Sensor faults on the counter path.
		if pmcDrop[i] {
			sample = pmc.Sample{}
		}
		for _, e := range pmcCorrupt[i] {
			if e.Magnitude == 0 {
				sample[e.Counter] = math.NaN()
			} else {
				sample[e.Counter] *= e.Magnitude
			}
		}
		res.Services[i] = ServiceStats{
			IntervalStats: ist,
			PMCs:          sample,
			NormPMCs:      pmc.Normalize(sample, s.maxima),
			QoSTargetMs:   s.specs[i].QoSTargetMs,
			NumCores:      len(states[i].cores),
			FreqGHz:       states[i].avgFreq,
			OfferedRPS:    loads[i],
		}
		// Sensor faults on the log-scrape path: a missing sample reads
		// NaN, a stale scrape repeats the last reported line.
		sv := &res.Services[i]
		switch {
		case latDrop[i]:
			nan := math.NaN()
			sv.P99Ms, sv.P95Ms, sv.MeanMs, sv.MaxMs = nan, nan, nan, nan
		case latStale[i] && s.haveLat[i]:
			last := s.lastLat[i]
			sv.P99Ms, sv.P95Ms, sv.MeanMs, sv.MaxMs = last.P99Ms, last.P95Ms, last.MeanMs, last.MaxMs
		}
		if isFinite(sv.P99Ms) {
			s.lastLat[i] = *sv
			s.haveLat[i] = true
		}
	}

	// Crash bookkeeping: a service leaving its offline episode restarts
	// cold and re-warms over the next intervals.
	for i := range s.insts {
		if s.crashPrev[i] && !crashed[i] && s.inj != nil {
			s.warmupLeft[i] = s.inj.WarmupS()
		}
		s.crashPrev[i] = crashed[i]
	}

	// Batch progress: throughput degrades with its contention inflation.
	if s.cfg.Batch != nil && batchCap > 0 {
		infl := contention[len(contention)-1].Inflation
		res.Batch = batch.Stats{Cores: len(batchCores), WorkDone: batchCap / infl}
		s.batchWorkJ += res.Batch.WorkDone
		for _, id := range batchCores {
			util[id] = 1 // best effort keeps its cores fully busy
		}
	}

	// Socket power from per-core states.
	var coreStates []power.CoreState
	for _, id := range s.ManagedCores() {
		c := s.plat.Core(id)
		coreStates = append(coreStates, power.CoreState{
			Online:      c.Online,
			FreqGHz:     c.FreqGHz,
			Utilization: util[id],
			Owned:       len(c.Owners) > 0 || util[id] > 0,
		})
	}
	res.TruePowerW = s.pow.SocketPower(coreStates)
	res.PowerW = s.pow.ReadRAPL(coreStates)
	if raplFail {
		res.PowerW = math.NaN()
	}
	res.EnergyJ = res.TruePowerW
	s.energyJ += res.EnergyJ
	s.clock++
	return res, nil
}

func (s *Server) applyAssignment(asg Assignment) {
	s.plat.ClearAffinity()
	// Cores requested by several services (time-shared after resource
	// arbitration) run at the highest requested DVFS state. Writes to
	// offline (failed or hot-unplugged) cores are lost, as they are on
	// real hardware.
	owned := make(map[int]float64)
	for svc, alloc := range asg.PerService {
		for _, c := range alloc.Cores {
			if !s.plat.Core(c).Online {
				continue
			}
			_ = s.plat.Assign(svc, c)
			if alloc.FreqGHz > owned[c] {
				owned[c] = alloc.FreqGHz
			}
		}
	}
	for c, f := range owned {
		s.plat.SetFreq(c, f)
	}
	if asg.IdleFreqGHz > 0 {
		for _, id := range s.ManagedCores() {
			if _, ok := owned[id]; !ok && s.plat.Core(id).Online {
				s.plat.SetFreq(id, asg.IdleFreqGHz)
			}
		}
	}
}

func cloneAssignment(asg Assignment) Assignment {
	out := Assignment{IdleFreqGHz: asg.IdleFreqGHz}
	out.PerService = make([]Allocation, len(asg.PerService))
	for i, a := range asg.PerService {
		out.PerService[i] = Allocation{
			Cores:     append([]int(nil), a.Cores...),
			FreqGHz:   a.FreqGHz,
			CacheWays: a.CacheWays,
		}
	}
	return out
}

func ratesOf(p service.Profile) pmc.Rates {
	return pmc.Rates{
		IPCBase:        p.IPCBase,
		BranchRatio:    p.BranchRatio,
		BranchMissRate: p.BranchMissRate,
		MemAccessRate:  p.MemAccessRate,
		L1DRate:        p.L1DRate,
		L1IRate:        p.L1IRate,
		UopFactor:      p.UopFactor,
	}
}

// CalibrateQoSTarget measures the p99 latency of a service running solo
// at its maximum load with a full socket at the highest DVFS setting —
// the paper's methodology for fixing Table II's targets. It returns the
// p99 across the final two thirds of the run (the warm-up is skipped).
func CalibrateQoSTarget(p service.Profile, cfg Config, seconds int, seed int64) float64 {
	return CalibrateQoSTargetAt(p, cfg, p.MaxLoadRPS, seconds, seed)
}

// CalibrateQoSTargetAt is CalibrateQoSTarget at an explicit offered
// load. Scenario worlds use it to fix per-tier targets at the
// scenario's own peak for the service — on an edge SKU the profile's
// full MaxLoadRPS may simply exceed the node, which would calibrate a
// saturated (meaningless) target.
func CalibrateQoSTargetAt(p service.Profile, cfg Config, loadRPS float64, seconds int, seed int64) float64 {
	srv := NewServer(cfg, []ServiceSpec{{Profile: p, Seed: seed}})
	cores := srv.ManagedCores()
	asg := Assignment{PerService: []Allocation{{Cores: cores, FreqGHz: maxFreqOf(cfg)}}}
	var lat []float64
	for t := 0; t < seconds; t++ {
		r := srv.MustStep(asg, []float64{loadRPS})
		if t >= seconds/3 {
			lat = append(lat, r.Services[0].P99Ms)
		}
	}
	// Use the median of the per-interval p99s as a stable target.
	return medianOf(lat)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
