// Package sim wires the simulated platform, services, interference,
// power and PMC models into a stepped server simulation: one Step is one
// monitoring interval (1 s). Controllers — Twig and the baselines — only
// interact with the world through what the paper's implementation could
// observe (tail latency from the service log, per-service PMCs, RAPL
// socket power) and control (core affinity, per-core DVFS, hotplug).
package sim

import (
	"fmt"
	"math/rand"

	"github.com/twig-sched/twig/internal/sim/batch"
	"github.com/twig-sched/twig/internal/sim/interference"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/power"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Config assembles a simulated server.
type Config struct {
	Platform     platform.Config
	Interference interference.Config
	Power        power.Config
	// ManagedSocket is the socket hosting the LC servers (clients sit
	// on the other socket, per the Tailbench loopback configuration).
	ManagedSocket int
	// PMCNoise is the relative noise of counter measurements.
	PMCNoise float64
	// MeasurementSeed seeds measurement noise (PMC + RAPL).
	MeasurementSeed int64
	// Batch, when non-nil, adds a best-effort batch workload that soaks
	// every online managed core no LC service owns — the colocation
	// setting Heracles and PARTIES target, where reclaimed resources
	// become throughput instead of idle savings.
	Batch *batch.Spec
}

// DefaultConfig returns the paper's evaluation platform.
func DefaultConfig() Config {
	return Config{
		Platform:      platform.DefaultConfig(),
		Interference:  interference.DefaultConfig(),
		Power:         power.DefaultConfig(),
		ManagedSocket: 1,
		PMCNoise:      0.02,
	}
}

// ServiceSpec attaches a QoS target to a service profile.
type ServiceSpec struct {
	Profile     service.Profile
	QoSTargetMs float64
	Seed        int64
}

// Allocation is the resource assignment of one service for the next
// interval: a set of cores, all at one DVFS setting (matching the
// papers' managers, which pick one frequency per service).
type Allocation struct {
	Cores   []int
	FreqGHz float64
	// CacheWays, when positive, reserves that many LLC ways for the
	// service (Intel CAT). Zero leaves the service competing for the
	// unreserved capacity.
	CacheWays int
}

// Assignment is the full mapping decision for one interval.
type Assignment struct {
	PerService []Allocation
	// IdleFreqGHz, when positive, is applied to online cores no service
	// owns (Twig's mapper sets the lowest DVFS state to save power).
	IdleFreqGHz float64
}

// ServiceStats is everything observable about one service after a step.
type ServiceStats struct {
	service.IntervalStats
	// PMCs are the raw counters; NormPMCs are feature-scaled to [0,1]
	// by the calibration maxima.
	PMCs     pmc.Sample
	NormPMCs pmc.Sample
	// QoSTargetMs echoes the target for convenience.
	QoSTargetMs float64
	// NumCores and FreqGHz echo the applied allocation.
	NumCores int
	FreqGHz  float64
	// OfferedRPS is the load that was applied.
	OfferedRPS float64
}

// StepResult is the outcome of one monitoring interval.
type StepResult struct {
	Time     int
	Services []ServiceStats
	// Batch reports the best-effort workload's progress (zero when no
	// batch is configured).
	Batch batch.Stats
	// PowerW is the RAPL measurement of the managed socket;
	// TruePowerW is the noiseless value; EnergyJ is TruePowerW × 1 s.
	PowerW     float64
	TruePowerW float64
	EnergyJ    float64
}

// Server is a running simulated node.
type Server struct {
	cfg    Config
	plat   *platform.Platform
	specs  []ServiceSpec
	insts  []*service.Instance
	interf *interference.Model
	pow    *power.Model
	synth  *pmc.Synthesizer
	maxima pmc.Sample

	clock      int
	energyJ    float64
	batchWorkJ float64
}

// NewServer builds a simulated server hosting the given services.
func NewServer(cfg Config, specs []ServiceSpec) *Server {
	plat := platform.New(cfg.Platform)
	mrng := rand.New(rand.NewSource(cfg.MeasurementSeed + 1))
	s := &Server{
		cfg:    cfg,
		plat:   plat,
		specs:  specs,
		interf: interference.New(cfg.Interference),
		pow:    power.New(cfg.Power, mrng),
		synth:  pmc.NewSynthesizer(rand.New(rand.NewSource(cfg.MeasurementSeed+2)), cfg.PMCNoise),
		maxima: pmc.CalibrationMaxima(cfg.Platform.CoresPerSocket, platform.MaxFreqGHz),
	}
	for i, spec := range specs {
		s.insts = append(s.insts, service.NewInstance(spec.Profile, cfg.Platform.CoresPerSocket, spec.Seed+int64(i)))
	}
	return s
}

// Platform exposes the hardware state (controllers use it to enumerate
// managed cores).
func (s *Server) Platform() *platform.Platform { return s.plat }

// ManagedCores returns the core IDs of the managed socket.
func (s *Server) ManagedCores() []int { return s.plat.SocketCores(s.cfg.ManagedSocket) }

// NumServices returns the number of hosted services.
func (s *Server) NumServices() int { return len(s.insts) }

// Spec returns the i-th service spec.
func (s *Server) Spec(i int) ServiceSpec { return s.specs[i] }

// Clock returns the simulated time in seconds.
func (s *Server) Clock() int { return s.clock }

// EnergyJ returns the cumulative managed-socket energy.
func (s *Server) EnergyJ() float64 { return s.energyJ }

// BatchWork returns the cumulative best-effort batch work completed, in
// GHz·core·seconds (0 when no batch workload is configured).
func (s *Server) BatchWork() float64 { return s.batchWorkJ }

// MaxPowerW returns the stress-microbenchmark socket power used to
// normalise the power reward.
func (s *Server) MaxPowerW() float64 {
	return s.pow.MaxPower(s.cfg.Platform.CoresPerSocket, platform.MaxFreqGHz)
}

// IdlePowerW returns the all-idle managed-socket power.
func (s *Server) IdlePowerW() float64 {
	return s.pow.IdlePower(s.cfg.Platform.CoresPerSocket)
}

// CalibrationMaxima exposes the PMC normalisation vector.
func (s *Server) CalibrationMaxima() pmc.Sample { return s.maxima }

// Step advances the simulation by one second under the given assignment
// and offered loads (one RPS per service).
func (s *Server) Step(asg Assignment, loads []float64) StepResult {
	if len(asg.PerService) != len(s.insts) || len(loads) != len(s.insts) {
		panic(fmt.Sprintf("sim: %d services, got %d allocations and %d loads",
			len(s.insts), len(asg.PerService), len(loads)))
	}
	s.applyAssignment(asg)

	// Pre-compute per-service shares, frequencies and capacities.
	type allocState struct {
		cores   []int
		shares  []float64
		freqs   []float64
		cap     float64
		avgFreq float64
	}
	states := make([]allocState, len(s.insts))
	for i, inst := range s.insts {
		cores := s.plat.ServiceCores(i)
		st := allocState{cores: cores}
		var freqSum float64
		for _, c := range cores {
			st.shares = append(st.shares, s.plat.ShareOf(i, c))
			f := s.plat.Core(c).FreqGHz
			st.freqs = append(st.freqs, f)
			freqSum += f
		}
		if len(cores) > 0 {
			st.avgFreq = freqSum / float64(len(cores))
		}
		st.cap = inst.Profile.CapacityGHz(st.shares, st.freqs)
		states[i] = st
	}

	// Interference: offered bandwidth is bounded by what the service
	// can actually process.
	demands := make([]interference.Demand, len(s.insts))
	for i, inst := range s.insts {
		offered := loads[i] * inst.MeanWork()
		if offered > states[i].cap {
			offered = states[i].cap
		}
		reservedMB := 0.0
		if w := asg.PerService[i].CacheWays; w > 0 {
			reservedMB = float64(w) / platform.NumCacheWays * s.cfg.Interference.LLCMB
		}
		demands[i] = interference.Demand{
			BandwidthGBs:     offered * inst.Profile.BWPerWork,
			CacheMB:          inst.Profile.CacheMB,
			ReservedMB:       reservedMB,
			BWSensitivity:    inst.Profile.BWSensitivity,
			CacheSensitivity: inst.Profile.CacheSensitivity,
		}
	}
	// The batch workload occupies every online managed core with no LC
	// owner and adds its own pressure on the shared resources.
	var batchCores []int
	var batchCap float64
	if s.cfg.Batch != nil {
		for _, id := range s.ManagedCores() {
			c := s.plat.Core(id)
			if c.Online && len(c.Owners) == 0 {
				batchCores = append(batchCores, id)
				batchCap += c.FreqGHz
			}
		}
		demands = append(demands, interference.Demand{
			BandwidthGBs:     batchCap * s.cfg.Batch.BWPerWork,
			CacheMB:          s.cfg.Batch.CacheMB,
			BWSensitivity:    s.cfg.Batch.Sensitivity,
			CacheSensitivity: s.cfg.Batch.Sensitivity,
		})
	}
	contention := s.interf.Compute(demands)

	// Run the queueing models and gather per-core utilisation.
	util := make(map[int]float64)
	res := StepResult{Time: s.clock, Services: make([]ServiceStats, len(s.insts))}
	for i, inst := range s.insts {
		ist := inst.RunInterval(loads[i], states[i].cap, contention[i].Inflation, 1)
		busyFrac := ist.BusySeconds // dt = 1 s
		var busyCoreSeconds float64
		for j, c := range states[i].cores {
			share := states[i].shares[j]
			util[c] += share * busyFrac
			busyCoreSeconds += share * busyFrac
		}
		gt := pmc.GroundTruth{
			BusyCoreSeconds: busyCoreSeconds,
			AvgFreqGHz:      states[i].avgFreq,
			WorkDone:        ist.WorkDone / ist.InflationApplied,
			Inflation:       ist.InflationApplied,
			LLCMissFactor:   contention[i].LLCMissFactor,
		}
		sample := s.synth.Synthesize(gt, ratesOf(inst.Profile))
		res.Services[i] = ServiceStats{
			IntervalStats: ist,
			PMCs:          sample,
			NormPMCs:      pmc.Normalize(sample, s.maxima),
			QoSTargetMs:   s.specs[i].QoSTargetMs,
			NumCores:      len(states[i].cores),
			FreqGHz:       states[i].avgFreq,
			OfferedRPS:    loads[i],
		}
	}

	// Batch progress: throughput degrades with its contention inflation.
	if s.cfg.Batch != nil && batchCap > 0 {
		infl := contention[len(contention)-1].Inflation
		res.Batch = batch.Stats{Cores: len(batchCores), WorkDone: batchCap / infl}
		s.batchWorkJ += res.Batch.WorkDone
		for _, id := range batchCores {
			util[id] = 1 // best effort keeps its cores fully busy
		}
	}

	// Socket power from per-core states.
	var coreStates []power.CoreState
	for _, id := range s.ManagedCores() {
		c := s.plat.Core(id)
		coreStates = append(coreStates, power.CoreState{
			Online:      c.Online,
			FreqGHz:     c.FreqGHz,
			Utilization: util[id],
			Owned:       len(c.Owners) > 0 || util[id] > 0,
		})
	}
	res.TruePowerW = s.pow.SocketPower(coreStates)
	res.PowerW = s.pow.ReadRAPL(coreStates)
	res.EnergyJ = res.TruePowerW
	s.energyJ += res.EnergyJ
	s.clock++
	return res
}

func (s *Server) applyAssignment(asg Assignment) {
	s.plat.ClearAffinity()
	// Cores requested by several services (time-shared after resource
	// arbitration) run at the highest requested DVFS state.
	owned := make(map[int]float64)
	for svc, alloc := range asg.PerService {
		for _, c := range alloc.Cores {
			if err := s.plat.Assign(svc, c); err != nil {
				panic(err)
			}
			if alloc.FreqGHz > owned[c] {
				owned[c] = alloc.FreqGHz
			}
		}
	}
	for c, f := range owned {
		s.plat.SetFreq(c, f)
	}
	if asg.IdleFreqGHz > 0 {
		for _, id := range s.ManagedCores() {
			if _, ok := owned[id]; !ok && s.plat.Core(id).Online {
				s.plat.SetFreq(id, asg.IdleFreqGHz)
			}
		}
	}
}

func ratesOf(p service.Profile) pmc.Rates {
	return pmc.Rates{
		IPCBase:        p.IPCBase,
		BranchRatio:    p.BranchRatio,
		BranchMissRate: p.BranchMissRate,
		MemAccessRate:  p.MemAccessRate,
		L1DRate:        p.L1DRate,
		L1IRate:        p.L1IRate,
		UopFactor:      p.UopFactor,
	}
}

// CalibrateQoSTarget measures the p99 latency of a service running solo
// at its maximum load with a full socket at the highest DVFS setting —
// the paper's methodology for fixing Table II's targets. It returns the
// p99 across the final two thirds of the run (the warm-up is skipped).
func CalibrateQoSTarget(p service.Profile, cfg Config, seconds int, seed int64) float64 {
	srv := NewServer(cfg, []ServiceSpec{{Profile: p, Seed: seed}})
	cores := srv.ManagedCores()
	asg := Assignment{PerService: []Allocation{{Cores: cores, FreqGHz: platform.MaxFreqGHz}}}
	var lat []float64
	for t := 0; t < seconds; t++ {
		r := srv.Step(asg, []float64{p.MaxLoadRPS})
		if t >= seconds/3 {
			lat = append(lat, r.Services[0].P99Ms)
		}
	}
	// Use the median of the per-interval p99s as a stable target.
	return medianOf(lat)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
