// Package power models socket power consumption and the RAPL-style
// measurement interface Twig polls. Per-core dynamic power follows the
// first-order CMOS shape a·f³ + b·f scaled by utilisation, plus per-core
// idle leakage and a fixed uncore/package term — so, like the real
// platform, only socket-level totals are observable and Twig must build
// its own per-service model (Eq. 2) for the reward.
package power

import "math/rand"

// Config holds the power-model coefficients, in watts with f in GHz.
type Config struct {
	// CubicCoeff and LinearCoeff define per-core active power at
	// utilisation 1: a·f³ + b·f.
	CubicCoeff  float64
	LinearCoeff float64
	// IdleCorePower plus IdleFreqCoeff·f is the power of an online,
	// unowned idle core at f GHz (deep C-states) — idle power grows
	// with the DVFS setting, which is why the mapper drops unused cores
	// to the lowest state. Hot-unplugged cores consume nothing.
	IdleCorePower float64
	IdleFreqCoeff float64
	// ShallowIdleFrac is the fraction of active power an *owned* core
	// burns while idle: a core affined to a service is woken too often
	// to reach deep C-states, which is why allocating fewer cores saves
	// energy even at equal work.
	ShallowIdleFrac float64
	// UncorePower is the fixed per-socket package power.
	UncorePower float64
	// MeasurementNoise is the relative σ of the RAPL readout.
	MeasurementNoise float64
}

// DefaultConfig approximates an 18-core Xeon E5-2695v4 socket (120 W TDP:
// ~5 W per fully busy core at 2 GHz plus ~18 W uncore).
func DefaultConfig() Config {
	return Config{
		CubicCoeff:       0.25,
		LinearCoeff:      1.50,
		IdleCorePower:    0.25,
		IdleFreqCoeff:    0.30,
		ShallowIdleFrac:  0.30,
		UncorePower:      18,
		MeasurementNoise: 0.01,
	}
}

// CoreState is the per-core activity observed during one interval.
type CoreState struct {
	Online  bool
	FreqGHz float64
	// Utilization ∈ [0,1] is the busy fraction of the interval.
	Utilization float64
	// Owned marks cores affined to at least one service; their idle
	// residency is shallow (see Config.ShallowIdleFrac).
	Owned bool
}

// Model computes socket power.
type Model struct {
	cfg Config
	rng *rand.Rand
}

// New creates a power model; rng adds RAPL measurement noise (nil for a
// noiseless model).
func New(cfg Config, rng *rand.Rand) *Model {
	return &Model{cfg: cfg, rng: rng}
}

// Config returns the coefficients.
func (m *Model) Config() Config { return m.cfg }

// CoreActivePower returns the power of one fully busy core at f GHz.
func (m *Model) CoreActivePower(f float64) float64 {
	return m.cfg.CubicCoeff*f*f*f + m.cfg.LinearCoeff*f
}

// CoreIdlePower returns the power of an online idle core at f GHz.
func (m *Model) CoreIdlePower(f float64) float64 {
	return m.cfg.IdleCorePower + m.cfg.IdleFreqCoeff*f
}

// SocketPower returns the true (noiseless) socket power for the given
// core states.
func (m *Model) SocketPower(cores []CoreState) float64 {
	p := m.cfg.UncorePower
	for _, c := range cores {
		if !c.Online {
			continue
		}
		u := c.Utilization
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		idle := m.CoreIdlePower(c.FreqGHz)
		if c.Owned {
			if shallow := m.cfg.ShallowIdleFrac * m.CoreActivePower(c.FreqGHz); shallow > idle {
				idle = shallow
			}
		}
		p += u*m.CoreActivePower(c.FreqGHz) + (1-u)*idle
	}
	return p
}

// ReadRAPL returns the measured socket power: the true power plus
// multiplicative measurement noise, like polling the RAPL MSR.
func (m *Model) ReadRAPL(cores []CoreState) float64 {
	p := m.SocketPower(cores)
	if m.rng != nil && m.cfg.MeasurementNoise > 0 {
		p *= 1 + m.rng.NormFloat64()*m.cfg.MeasurementNoise
	}
	return p
}

// IdlePower returns the socket power with every core online but idle at
// the lowest DVFS setting.
func (m *Model) IdlePower(numCores int) float64 {
	return m.cfg.UncorePower + float64(numCores)*m.CoreIdlePower(1.2)
}

// MaxPower returns the socket power of the stress microbenchmark the
// paper uses for normalisation: every core busy at the maximum DVFS
// setting with no memory accesses.
func (m *Model) MaxPower(numCores int, maxFreqGHz float64) float64 {
	return m.cfg.UncorePower + float64(numCores)*m.CoreActivePower(maxFreqGHz)
}
