package power

import (
	"math"
	"math/rand"
	"testing"
)

func TestActivePowerCubicInFrequency(t *testing.T) {
	m := New(DefaultConfig(), nil)
	p12 := m.CoreActivePower(1.2)
	p20 := m.CoreActivePower(2.0)
	if p20 <= p12 {
		t.Fatal("power must grow with frequency")
	}
	// Cubic term dominance: doubling work rate via frequency costs more
	// than proportionally.
	if p20/p12 <= 2.0/1.2 {
		t.Fatalf("power ratio %v should exceed frequency ratio %v", p20/p12, 2.0/1.2)
	}
}

func TestIdlePowerGrowsWithFrequency(t *testing.T) {
	m := New(DefaultConfig(), nil)
	if m.CoreIdlePower(2.0) <= m.CoreIdlePower(1.2) {
		t.Fatal("idle power must grow with DVFS state")
	}
}

func TestSocketPowerComposition(t *testing.T) {
	m := New(DefaultConfig(), nil)
	cfg := DefaultConfig()
	cores := []CoreState{
		{Online: true, FreqGHz: 2.0, Utilization: 1},
		{Online: true, FreqGHz: 1.2, Utilization: 0},
		{Online: false, FreqGHz: 2.0, Utilization: 1}, // offline: free
	}
	want := cfg.UncorePower + m.CoreActivePower(2.0) + m.CoreIdlePower(1.2)
	if got := m.SocketPower(cores); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SocketPower = %v, want %v", got, want)
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := New(DefaultConfig(), nil)
	over := m.SocketPower([]CoreState{{Online: true, FreqGHz: 2.0, Utilization: 5}})
	exact := m.SocketPower([]CoreState{{Online: true, FreqGHz: 2.0, Utilization: 1}})
	if over != exact {
		t.Fatal("utilisation must clamp to [0,1]")
	}
	under := m.SocketPower([]CoreState{{Online: true, FreqGHz: 2.0, Utilization: -1}})
	idle := m.SocketPower([]CoreState{{Online: true, FreqGHz: 2.0, Utilization: 0}})
	if under != idle {
		t.Fatal("negative utilisation must clamp to 0")
	}
}

func TestRAPLNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(DefaultConfig(), rng)
	cores := []CoreState{{Online: true, FreqGHz: 2.0, Utilization: 0.5}}
	truth := m.SocketPower(cores)
	var deviated bool
	for i := 0; i < 20; i++ {
		r := m.ReadRAPL(cores)
		if math.Abs(r-truth)/truth > 0.1 {
			t.Fatalf("RAPL noise too large: %v vs %v", r, truth)
		}
		if r != truth {
			deviated = true
		}
	}
	if !deviated {
		t.Fatal("RAPL readings should carry noise")
	}
	noiseless := New(DefaultConfig(), nil)
	if noiseless.ReadRAPL(cores) != noiseless.SocketPower(cores) {
		t.Fatal("nil rng must be noiseless")
	}
}

func TestMaxAndIdlePower(t *testing.T) {
	m := New(DefaultConfig(), nil)
	maxP := m.MaxPower(18, 2.0)
	idleP := m.IdlePower(18)
	if maxP <= idleP {
		t.Fatal("max power must exceed idle power")
	}
	// TDP sanity: an 18-core socket flat out lands in a plausible range.
	if maxP < 80 || maxP > 160 {
		t.Fatalf("MaxPower = %v W, implausible for the modelled socket", maxP)
	}
}
